#pragma once
/// \file window.hpp
/// \brief Simulation windows (paper §III-B1).
///
/// A window is the set of intermediate nodes that drive the roots of a
/// batch of equivalence checks: formally TFI(roots) ∩ TFO(inputs), plus the
/// roots (paper Fig. 2). The inputs are either the (union of the)
/// structural supports of the roots — global function checking — or a
/// common cut of the pair — local function checking. Window inputs are
/// kept sorted by increasing node id; that ordering defines the truth-table
/// variable order and is what makes window merging's lexicographic sort
/// meaningful (paper §III-B3).
///
/// Windows are preprocessed for the exhaustive simulator: nodes carry
/// resolved fanin slot indices and are grouped by intra-window topological
/// level (inputs at level 0), so a simulation round is a pure data-parallel
/// sweep with no pointer chasing.

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_analysis.hpp"

namespace simsweep::window {

/// Sentinel slot meaning "constant FALSE" (the constant node does not get
/// a simulation-table entry).
constexpr std::uint32_t kSlotConst0 = 0xFFFFFFFFu;

/// One equivalence check hosted by a window: prove lit a == lit b. Both
/// literals' variables must be window nodes or inputs (or the constant).
/// `tag` is an opaque caller id used to report outcomes.
struct CheckItem {
  aig::Lit a = 0;
  aig::Lit b = 0;
  std::uint32_t tag = 0;
};

/// A node of a window with fanins resolved to window-local slots.
struct WinNode {
  std::uint32_t slot0 = 0;  ///< fanin0 slot (kSlotConst0 for constant)
  std::uint32_t slot1 = 0;
  std::uint8_t compl0 = 0;
  std::uint8_t compl1 = 0;
};

/// Per-item root slots resolved at build time.
struct ItemSlots {
  std::uint32_t slot_a = kSlotConst0;
  std::uint32_t slot_b = kSlotConst0;
  std::uint8_t compl_a = 0;
  std::uint8_t compl_b = 0;
};

struct Window {
  /// Truth-table input variables, ascending ids; variable i of the table.
  std::vector<aig::Var> inputs;
  /// AND nodes of the window in level-major order (constant excluded).
  std::vector<aig::Var> nodes;
  /// Slot-resolved fanins, parallel to `nodes`. Node i owns slot
  /// inputs.size() + i.
  std::vector<WinNode> wnodes;
  /// nodes grouped by local level: level l (1-based) occupies
  /// [level_offset[l-1], level_offset[l]).
  std::vector<std::uint32_t> level_offset;
  /// Checks hosted by this window.
  std::vector<CheckItem> items;
  std::vector<ItemSlots> item_slots;

  unsigned num_inputs() const {
    return static_cast<unsigned>(inputs.size());
  }
  std::size_t num_slots() const { return inputs.size() + nodes.size(); }
  unsigned num_levels() const {
    return static_cast<unsigned>(level_offset.size()) - 1;
  }
  /// Truth-table length in 64-bit words.
  std::size_t tt_words() const {
    return num_inputs() <= 6 ? 1
                             : (std::size_t{1} << (num_inputs() - 6));
  }
};

/// Builds the window hosting `items` over the given input set (sorted
/// ascending, no duplicates). Returns nullopt if the inputs do not block
/// every PI path to some root (i.e. they are not a valid cut/support set),
/// in which case exhaustive simulation over them would be unsound.
///
/// When `schedule` is non-null and matches the AIG, window nodes are
/// staged by their cached *global* levels instead of recomputing local
/// window levels (DESIGN.md §2.7) — valid because a fanin's global level
/// is strictly below its fanout's, so global-level groups are a staged
/// evaluation order too (possibly more stages than the local minimum;
/// the simulated functions are identical either way).
std::optional<Window> build_window(const aig::Aig& aig,
                                   std::vector<aig::Var> inputs,
                                   std::vector<CheckItem> items,
                                   const aig::LevelSchedule* schedule =
                                       nullptr);

}  // namespace simsweep::window
