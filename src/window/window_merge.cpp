#include "window/window_merge.hpp"

#include <algorithm>

#include "aig/aig_analysis.hpp"
#include "fault/fault.hpp"

namespace simsweep::window {

std::vector<Window> merge_windows(const aig::Aig& aig,
                                  std::vector<Window> windows, unsigned k_s,
                                  MergeStats* stats, unsigned growth_slack) {
  if (stats) {
    *stats = MergeStats{};
    stats->windows_before = windows.size();
    for (const Window& w : windows)
      stats->sim_nodes_before += w.num_slots();
  }

  // Lexicographic sort of the input-variable lists: windows with similar
  // (id-sorted) input sets become consecutive (paper §III-B3).
  std::sort(windows.begin(), windows.end(),
            [](const Window& a, const Window& b) {
              return std::lexicographical_compare(
                  a.inputs.begin(), a.inputs.end(), b.inputs.begin(),
                  b.inputs.end());
            });

  std::vector<Window> out;
  std::size_t i = 0;
  while (i < windows.size()) {
    // Greedily extend the run [i, j) while the input union fits in k_s.
    // merged_inputs is a COPY of windows[i].inputs (and the items below are
    // copied too): the originals stay intact until a merged window is
    // actually built, which is what makes the build-failure fallback
    // well-defined (see window_merge.hpp).
    std::vector<aig::Var> merged_inputs = windows[i].inputs;
    std::size_t j = i + 1;
    for (; j < windows.size(); ++j) {
      auto candidate = aig::sorted_union(merged_inputs, windows[j].inputs);
      if (candidate.size() > k_s) {
        if (stats) ++stats->rejected_capacity;
        break;
      }
      // Only accept merges between similar input sets: the union may grow
      // past the larger operand by at most growth_slack variables.
      const std::size_t larger =
          std::max(merged_inputs.size(), windows[j].inputs.size());
      if (candidate.size() > larger + growth_slack) {
        if (stats) ++stats->rejected_similarity;
        break;
      }
      merged_inputs = std::move(candidate);
    }
    if (j == i + 1) {
      out.push_back(std::move(windows[i]));  // nothing merged
    } else {
      std::vector<CheckItem> items;
      for (std::size_t k = i; k < j; ++k)
        items.insert(items.end(), windows[k].items.begin(),
                     windows[k].items.end());
      // Injection site `window_merge.build` (DESIGN.md §2.4): forces the
      // build-failure fallback below — the exact path a real failed
      // merged build takes, since only copies went into the build.
      auto merged = SIMSWEEP_FAULT_POINT(fault::sites::kWindowMergeBuild)
                        ? std::nullopt
                        : build_window(aig, std::move(merged_inputs),
                                       std::move(items));
      if (merged) {
        if (stats) {
          ++stats->merge_groups;
          stats->windows_merged += j - i;
        }
        out.push_back(std::move(*merged));
      } else {
        // Unreachable for windows built on this AIG (the union of valid
        // cuts is a valid cut) but reachable for hand-crafted windows:
        // windows[i..j) were never moved-from — only copies of their
        // inputs/items went into the failed build — so passing them
        // through unmerged is safe.
        if (stats) ++stats->build_failures;
        for (std::size_t k = i; k < j; ++k)
          out.push_back(std::move(windows[k]));
      }
    }
    i = j;
  }

  if (stats) {
    stats->windows_after = out.size();
    for (const Window& w : out) stats->sim_nodes_after += w.num_slots();
  }
  return out;
}

}  // namespace simsweep::window
