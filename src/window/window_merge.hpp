#pragma once
/// \file window_merge.hpp
/// \brief Window merging to reduce total simulation effort (paper §III-B3).
///
/// Overlapping windows force shared nodes to be simulated once per window
/// (their truth-table input orders differ). Merging highly overlapping
/// windows amortizes that cost: the batch of windows is sorted in
/// lexicographic order of their input-variable lists (similar input sets
/// become neighbors), then consecutive windows are maximally merged while
/// the merged input count stays within the threshold k_s. Merged windows
/// host the union of the original windows' check items.
///
/// Merging is only applied to global function checking; local-checking
/// windows are small and do not benefit (paper §III-B3).

#include <vector>

#include "window/window.hpp"

namespace simsweep::window {

/// Statistics of one merge run, reported by the window-merging ablation
/// bench and published by the engine phases under `exhaustive.merge.*`.
struct MergeStats {
  std::size_t windows_before = 0;
  std::size_t windows_after = 0;
  std::size_t sim_nodes_before = 0;  ///< Σ |nodes| + |inputs| before
  std::size_t sim_nodes_after = 0;   ///< Σ |nodes| + |inputs| after
  std::size_t merge_groups = 0;      ///< runs of ≥2 windows merged
  std::size_t windows_merged = 0;    ///< windows absorbed into those runs
  /// Neighbor rejected because the input union would exceed k_s.
  std::size_t rejected_capacity = 0;
  /// Neighbor rejected by the similarity test (union grew past the larger
  /// operand by more than growth_slack variables).
  std::size_t rejected_similarity = 0;
  /// Merged build_window() failures that took the unmerged fallback.
  std::size_t build_failures = 0;
};

/// Merges the batch under threshold k_s (maximum inputs of a merged
/// window). The input windows are consumed.
///
/// Failure fallback contract: when build_window() rejects a merged input
/// union (unreachable for windows built by build_window() on the same AIG —
/// the union of valid cuts is a valid cut — but possible for hand-crafted
/// windows), the run's original windows are emitted unmerged and intact.
/// The merge attempt only ever consumes *copies* of their inputs/items, so
/// the originals are never moved-from on this path.
///
/// `growth_slack` guards against harmful merges: a window joins the
/// current run only if the input union exceeds the larger operand by at
/// most this many variables. Merging two windows with disjoint supports
/// would square the truth-table length for no shared simulation work —
/// the paper's heuristic relies on lexicographic sorting putting *similar*
/// input sets next to each other, and this guard enforces the "similar"
/// part explicitly.
std::vector<Window> merge_windows(const aig::Aig& aig,
                                  std::vector<Window> windows, unsigned k_s,
                                  MergeStats* stats = nullptr,
                                  unsigned growth_slack = 2);

}  // namespace simsweep::window
