#include "window/window.hpp"

#include <algorithm>
#include <cassert>

#include "aig/aig_analysis.hpp"

namespace simsweep::window {

std::optional<Window> build_window(const aig::Aig& aig,
                                   std::vector<aig::Var> inputs,
                                   std::vector<CheckItem> items,
                                   const aig::LevelSchedule* schedule) {
  assert(std::is_sorted(inputs.begin(), inputs.end()));
  Window w;
  w.inputs = std::move(inputs);
  w.items = std::move(items);

  std::vector<aig::Var> roots;
  for (const CheckItem& item : w.items) {
    roots.push_back(aig::lit_var(item.a));
    roots.push_back(aig::lit_var(item.b));
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());

  // Collect TFI(roots) stopping at inputs; validate that no foreign PI is
  // reached (otherwise `inputs` is not a cut of the roots).
  std::vector<aig::Var> cone = aig::tfi_cone(aig, roots, w.inputs);
  for (aig::Var v : cone)
    if (aig.is_pi(v)) return std::nullopt;

  // Keep only AND nodes (the constant contributes no slot).
  w.nodes.clear();
  for (aig::Var v : cone)
    if (aig.is_and(v)) w.nodes.push_back(v);

  // Windows are built in huge numbers (one per buffered cut check), so
  // the per-variable level/slot maps are epoch-stamped thread-local
  // scratch arrays instead of hash maps.
  thread_local std::vector<std::uint64_t> stamp;
  thread_local std::vector<std::uint32_t> level_of_var;
  thread_local std::vector<std::uint32_t> slot_of_var;
  thread_local std::uint64_t epoch = 0;
  if (stamp.size() < aig.num_nodes()) {
    stamp.assign(aig.num_nodes(), 0);
    level_of_var.assign(aig.num_nodes(), 0);
    slot_of_var.assign(aig.num_nodes(), 0);
  }
  ++epoch;

  // Local levels: inputs are level 0 (paper's "topological level").
  auto set_level = [&](aig::Var v, std::uint32_t l) {
    stamp[v] = epoch;
    level_of_var[v] = l;
  };
  auto level = [&](aig::Var v) -> std::uint32_t {
    assert(v == 0 || stamp[v] == epoch);
    return v == 0 ? 0 : level_of_var[v];
  };
  for (aig::Var v : w.inputs) set_level(v, 0);
  std::uint32_t max_level = 0;
  if (schedule != nullptr && schedule->matches(aig)) {
    // Schedule path: stage by cached global levels, compressed to
    // consecutive local levels. Stable sort keeps ascending id within a
    // stage (w.nodes arrives in ascending id order from the cone).
    const std::vector<std::uint32_t>& gl = schedule->levels;
    std::stable_sort(
        w.nodes.begin(), w.nodes.end(),
        [&](aig::Var a, aig::Var b) { return gl[a] < gl[b]; });
    std::uint32_t prev_gl = 0;
    for (aig::Var v : w.nodes) {
      if (max_level == 0 || gl[v] != prev_gl) {
        ++max_level;
        prev_gl = gl[v];
      }
      set_level(v, max_level);
    }
  } else {
    for (aig::Var v : w.nodes) {  // ascending id = topological
      const std::uint32_t l =
          1 + std::max(level(aig::lit_var(aig.fanin0(v))),
                       level(aig::lit_var(aig.fanin1(v))));
      set_level(v, l);
      max_level = std::max(max_level, l);
    }

    // Level-major node order (stable within a level by id).
    std::stable_sort(
        w.nodes.begin(), w.nodes.end(),
        [&](aig::Var a, aig::Var b) { return level(a) < level(b); });
  }

  // Slot assignment: inputs occupy 0..k-1, then nodes in level-major order.
  for (std::size_t i = 0; i < w.inputs.size(); ++i)
    slot_of_var[w.inputs[i]] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < w.nodes.size(); ++i)
    slot_of_var[w.nodes[i]] = static_cast<std::uint32_t>(w.inputs.size() + i);

  auto slot_of = [&](aig::Var v) -> std::uint32_t {
    if (v == 0) return kSlotConst0;
    assert(stamp[v] == epoch);
    return slot_of_var[v];
  };

  w.wnodes.resize(w.nodes.size());
  for (std::size_t i = 0; i < w.nodes.size(); ++i) {
    const aig::Lit f0 = aig.fanin0(w.nodes[i]);
    const aig::Lit f1 = aig.fanin1(w.nodes[i]);
    w.wnodes[i] = WinNode{slot_of(aig::lit_var(f0)), slot_of(aig::lit_var(f1)),
                          aig::lit_compl(f0), aig::lit_compl(f1)};
  }

  // Level offsets over the level-major node array.
  w.level_offset.assign(max_level + 1, 0);
  for (aig::Var v : w.nodes) ++w.level_offset[level(v)];
  // level_offset[l] currently counts level l+1 nodes at index l+... redo:
  // build prefix sums such that level l in [offset[l-1], offset[l]).
  {
    std::vector<std::uint32_t> counts(max_level + 1, 0);
    for (aig::Var v : w.nodes) ++counts[level(v) - 1];
    w.level_offset.assign(max_level + 1, 0);
    for (std::uint32_t l = 1; l <= max_level; ++l)
      w.level_offset[l] = w.level_offset[l - 1] + counts[l - 1];
  }

  w.item_slots.resize(w.items.size());
  for (std::size_t i = 0; i < w.items.size(); ++i) {
    const CheckItem& item = w.items[i];
    w.item_slots[i] =
        ItemSlots{slot_of(aig::lit_var(item.a)), slot_of(aig::lit_var(item.b)),
                  aig::lit_compl(item.a), aig::lit_compl(item.b)};
  }
  return w;
}

}  // namespace simsweep::window
