#pragma once
/// \file solver.hpp
/// \brief A from-scratch CDCL SAT solver (MiniSat-style architecture).
///
/// This is the substrate for the SAT-sweeping baseline ("ABC &cec" stand-in
/// in the reproduction, see DESIGN.md §2). Features: two-watched-literal
/// propagation, first-UIP conflict analysis with clause learning, VSIDS
/// branching with an indexed binary heap, phase saving, Luby restarts,
/// activity-driven learned-clause reduction, incremental solving under
/// assumptions, and conflict budgets (the `-C` knob of ABC's checker).

#include <cstdint>
#include <functional>
#include <vector>

namespace simsweep::sat {

using Var = std::int32_t;

/// A literal: 2*var + sign (sign = 1 means negated).
struct Lit {
  std::int32_t x = -2;

  bool operator==(const Lit&) const = default;
};

constexpr Lit mk_lit(Var v, bool sign = false) {
  return Lit{(v << 1) | static_cast<std::int32_t>(sign)};
}
constexpr Lit operator~(Lit p) { return Lit{p.x ^ 1}; }
constexpr bool sign(Lit p) { return p.x & 1; }
constexpr Var var(Lit p) { return p.x >> 1; }
constexpr Lit lit_undef{-2};

enum class LBool : std::uint8_t { kTrue, kFalse, kUndef };
constexpr LBool operator^(LBool b, bool flip) {
  return b == LBool::kUndef
             ? b
             : (static_cast<int>(b) ^ static_cast<int>(flip)
                    ? LBool::kFalse
                    : LBool::kTrue);
}

class Solver {
 public:
  enum class Result { kSat, kUnsat, kUnknown };

  Solver();

  /// Creates a fresh variable and returns its index.
  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (copied). Returns false if the solver became
  /// inconsistent at level 0 (the instance is UNSAT regardless of future
  /// clauses). Tautologies and duplicate literals are removed.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solves under assumptions. conflict_budget < 0 means unbounded;
  /// otherwise the search gives up with kUnknown after that many
  /// conflicts (counted within this call).
  Result solve(const std::vector<Lit>& assumptions = {},
               std::int64_t conflict_budget = -1);

  /// Model access after kSat.
  LBool model_value(Var v) const { return model_[v]; }
  bool model_bool(Var v) const { return model_[v] == LBool::kTrue; }

  /// Whether the clause database is already unsatisfiable at level 0.
  bool inconsistent() const { return !ok_; }

  /// Optional interrupt hook, polled every few hundred conflicts during
  /// search; returning true aborts the current solve() with kUnknown.
  /// Lets callers enforce wall-clock budgets that a single long SAT call
  /// would otherwise overshoot.
  std::function<bool()> interrupt;

  // Statistics.
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;

 private:
  using CRef = std::uint32_t;
  static constexpr CRef kCRefUndef = 0xFFFFFFFFu;

  struct Clause {
    std::vector<Lit> lits;
    float activity = 0;
    bool learnt = false;
    bool removed = false;
  };

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  LBool value(Lit p) const { return assigns_[var(p)] ^ sign(p); }
  LBool value(Var v) const { return assigns_[v]; }

  void attach(CRef cr);
  void detach(CRef cr);
  void uncheck_enqueue(Lit p, CRef from);
  CRef propagate();
  void analyze(CRef confl, std::vector<Lit>& out_learnt, int& out_btlevel);
  void cancel_until(int level);
  Lit pick_branch_lit();
  void new_decision_level() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void var_bump(Var v);
  void var_decay() { var_inc_ /= 0.95; }
  void cla_bump(Clause& c);
  void cla_decay() { cla_inc_ /= 0.999; }
  void reduce_db();
  Result search(std::int64_t conflict_budget,
                const std::vector<Lit>& assumptions);
  static std::uint32_t luby(std::uint32_t i);

  // Heap of variables ordered by activity (indexed binary max-heap).
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_contains(Var v) const { return heap_pos_[v] >= 0; }
  void heap_sift_up(int i);
  void heap_sift_down(int i);

  bool ok_ = true;
  std::vector<Clause> clauses_;       // arena; CRef = index
  std::vector<CRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit.x
  std::vector<LBool> assigns_;
  std::vector<std::uint8_t> polarity_;  // saved phases (1 = last was false)
  std::vector<double> activity_;
  std::vector<int> level_;
  std::vector<CRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<Var> heap_;
  std::vector<int> heap_pos_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;

  std::vector<std::uint8_t> seen_;  // analyze() scratch
  std::vector<LBool> model_;

  std::size_t max_learnts_ = 4096;
};

}  // namespace simsweep::sat
