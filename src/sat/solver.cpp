#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace simsweep::sat {

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(1);  // MiniSat default: branch negative first
  activity_.push_back(0.0);
  level_.push_back(0);
  reason_.push_back(kCRefUndef);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;

  // Normalize: sort, drop duplicates and false literals, detect tautology
  // and satisfied clauses.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  std::vector<Lit> out;
  out.reserve(lits.size());
  Lit prev = lit_undef;
  for (Lit p : lits) {
    if (value(p) == LBool::kTrue || p == ~prev) return true;  // satisfied
    if (value(p) != LBool::kFalse && p != prev) {
      out.push_back(p);
      prev = p;
    }
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    uncheck_enqueue(out[0], kCRefUndef);
    ok_ = (propagate() == kCRefUndef);
    return ok_;
  }
  const CRef cr = static_cast<CRef>(clauses_.size());
  clauses_.push_back(Clause{std::move(out), 0, false, false});
  attach(cr);
  return true;
}

void Solver::attach(CRef cr) {
  const Clause& c = clauses_[cr];
  assert(c.lits.size() >= 2);
  watches_[(~c.lits[0]).x].push_back(Watcher{cr, c.lits[1]});
  watches_[(~c.lits[1]).x].push_back(Watcher{cr, c.lits[0]});
}

void Solver::detach(CRef cr) {
  const Clause& c = clauses_[cr];
  for (Lit w : {c.lits[0], c.lits[1]}) {
    auto& ws = watches_[(~w).x];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cr) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::uncheck_enqueue(Lit p, CRef from) {
  assert(value(p) == LBool::kUndef);
  assigns_[var(p)] = sign(p) ? LBool::kFalse : LBool::kTrue;
  level_[var(p)] = decision_level();
  reason_[var(p)] = from;
  trail_.push_back(p);
}

Solver::CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations;
    auto& ws = watches_[p.x];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      // Blocker check: clause already satisfied.
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[w.cref];
      // Normalize so the false watch is lits[1].
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      ++i;

      const Lit first = c.lits[0];
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = Watcher{w.cref, first};
        continue;
      }
      // Find a new literal to watch.
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).x].push_back(Watcher{w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;

      // Clause is unit or conflicting.
      ws[j++] = Watcher{w.cref, first};
      if (value(first) == LBool::kFalse) {
        confl = w.cref;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        uncheck_enqueue(first, w.cref);
      }
    }
    ws.resize(j);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void Solver::analyze(CRef confl, std::vector<Lit>& out_learnt,
                     int& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(lit_undef);  // slot for the asserting literal
  int path_count = 0;
  Lit p = lit_undef;
  std::size_t index = trail_.size();

  do {
    assert(confl != kCRefUndef);
    Clause& c = clauses_[confl];
    if (c.learnt) cla_bump(c);
    const std::size_t start = (p == lit_undef) ? 0 : 1;
    for (std::size_t k = start; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      if (!seen_[var(q)] && level_[var(q)] > 0) {
        var_bump(var(q));
        seen_[var(q)] = 1;
        if (level_[var(q)] >= decision_level())
          ++path_count;
        else
          out_learnt.push_back(q);
      }
    }
    // Next literal on the trail that is marked.
    while (!seen_[var(trail_[--index])]) {}
    p = trail_[index];
    confl = reason_[var(p)];
    seen_[var(p)] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization (local): drop literals implied by the
  // remaining clause via their reason clauses.
  std::vector<Lit> minimized;
  minimized.push_back(out_learnt[0]);
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Lit q = out_learnt[i];
    const CRef r = reason_[var(q)];
    bool redundant = false;
    if (r != kCRefUndef) {
      redundant = true;
      for (const Lit l : clauses_[r].lits) {
        if (l == ~q) continue;
        if (!seen_[var(l)] && level_[var(l)] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) minimized.push_back(q);
  }
  out_learnt = std::move(minimized);

  // Backtrack level: second-highest level in the learnt clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i)
      if (level_[var(out_learnt[i])] > level_[var(out_learnt[max_i])])
        max_i = i;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[var(out_learnt[1])];
  }

  for (const Lit q : out_learnt) seen_[var(q)] = 0;
  // seen_ for literals dropped by minimization must also be cleared.
  std::fill(seen_.begin(), seen_.end(), 0);
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[level];
       --i) {
    const Var v = var(trail_[i]);
    polarity_[v] = static_cast<std::uint8_t>(sign(trail_[i]));
    assigns_[v] = LBool::kUndef;
    reason_[v] = kCRefUndef;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(trail_lim_[level]);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (value(v) == LBool::kUndef)
      return mk_lit(v, polarity_[v]);
  }
  return lit_undef;
}

void Solver::var_bump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_update(v);
}

void Solver::cla_bump(Clause& c) {
  c.activity += static_cast<float>(cla_inc_);
  if (c.activity > 1e20f) {
    for (const CRef cr : learnts_) clauses_[cr].activity *= 1e-20f;
    cla_inc_ *= 1e-20;
  }
}

void Solver::reduce_db() {
  // Keep the more active half of learnt clauses; never remove reasons.
  std::vector<CRef> sorted = learnts_;
  std::sort(sorted.begin(), sorted.end(), [this](CRef a, CRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  const std::size_t limit = sorted.size() / 2;
  for (std::size_t i = 0; i < limit; ++i) {
    Clause& c = clauses_[sorted[i]];
    if (c.lits.size() <= 2) continue;
    const Var v0 = var(c.lits[0]);
    if (reason_[v0] == sorted[i] && value(c.lits[0]) == LBool::kTrue)
      continue;  // locked
    detach(sorted[i]);
    c.removed = true;
  }
  std::erase_if(learnts_,
                [this](CRef cr) { return clauses_[cr].removed; });
}

std::uint32_t Solver::luby(std::uint32_t i) {
  // Finite subsequence length containing index i, MiniSat's formulation.
  std::uint32_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::uint32_t{1} << seq;
}

Solver::Result Solver::search(std::int64_t conflict_budget,
                              const std::vector<Lit>& assumptions) {
  std::uint64_t restart_round = 0;
  std::uint64_t conflicts_this_call = 0;
  std::uint64_t next_restart = 100 * luby(0);

  std::vector<Lit> learnt;
  for (;;) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      ++conflicts;
      ++conflicts_this_call;
      if (decision_level() == 0) {
        ok_ = false;
        return Result::kUnsat;
      }
      int bt_level = 0;
      analyze(confl, learnt, bt_level);
      // Never backtrack past the assumption levels unsafely: if the learnt
      // clause asserts at a level below the assumptions, replay happens
      // naturally because assumptions are re-decided after backtracking.
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        uncheck_enqueue(learnt[0], kCRefUndef);
      } else {
        const CRef cr = static_cast<CRef>(clauses_.size());
        clauses_.push_back(Clause{learnt, 0, true, false});
        learnts_.push_back(cr);
        cla_bump(clauses_[cr]);
        attach(cr);
        uncheck_enqueue(learnt[0], cr);
      }
      var_decay();
      cla_decay();

      if (conflict_budget >= 0 &&
          conflicts_this_call >=
              static_cast<std::uint64_t>(conflict_budget)) {
        cancel_until(0);
        return Result::kUnknown;
      }
      if ((conflicts_this_call & 0xFF) == 0 && interrupt && interrupt()) {
        cancel_until(0);
        return Result::kUnknown;
      }
      if (conflicts_this_call >= next_restart) {
        ++restarts;
        ++restart_round;
        next_restart =
            conflicts_this_call +
            100 * luby(static_cast<std::uint32_t>(restart_round));
        cancel_until(0);
      }
      if (learnts_.size() >= max_learnts_) {
        reduce_db();
        max_learnts_ = max_learnts_ * 3 / 2;
      }
      continue;
    }

    // No conflict: extend the assignment.
    if (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
      const Lit p = assumptions[decision_level()];
      if (value(p) == LBool::kTrue) {
        new_decision_level();  // dummy level, already satisfied
        continue;
      }
      if (value(p) == LBool::kFalse) return Result::kUnsat;
      ++decisions;
      new_decision_level();
      uncheck_enqueue(p, kCRefUndef);
      continue;
    }

    const Lit next = pick_branch_lit();
    if (next == lit_undef) {
      // Complete model.
      model_.assign(assigns_.begin(), assigns_.end());
      return Result::kSat;
    }
    ++decisions;
    new_decision_level();
    uncheck_enqueue(next, kCRefUndef);
  }
}

Solver::Result Solver::solve(const std::vector<Lit>& assumptions,
                             std::int64_t conflict_budget) {
  if (!ok_) return Result::kUnsat;
  cancel_until(0);
  const Result r = search(conflict_budget, assumptions);
  cancel_until(0);
  return r;
}

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_pos_[v]);
}

void Solver::heap_update(Var v) { heap_sift_up(heap_pos_[v]); }

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_sift_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

}  // namespace simsweep::sat
