#pragma once
/// \file dimacs.hpp
/// \brief DIMACS CNF parsing/printing, mainly for tests and debugging.

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace simsweep::sat {

/// A CNF as variable count + clause list (literals in DIMACS convention
/// are translated to Lit on load).
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS CNF. Throws std::runtime_error on malformed input.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs_string(const std::string& text);

/// Loads a CNF into a solver (creating variables 0..num_vars-1). Returns
/// false if the solver became inconsistent while adding clauses.
bool load_cnf(Solver& solver, const Cnf& cnf);

}  // namespace simsweep::sat
