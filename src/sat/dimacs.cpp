#include "sat/dimacs.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

namespace simsweep::sat {

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  std::string token;
  bool have_header = false;
  int declared_clauses = 0;
  std::vector<Lit> current;
  while (in >> token) {
    if (token == "c") {
      std::string line;
      std::getline(in, line);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      if (!(in >> fmt >> cnf.num_vars >> declared_clauses) || fmt != "cnf")
        throw std::runtime_error("dimacs: bad problem line");
      have_header = true;
      continue;
    }
    if (!have_header) throw std::runtime_error("dimacs: clause before header");
    const int lit = std::stoi(token);
    if (lit == 0) {
      cnf.clauses.push_back(current);
      current.clear();
    } else {
      const Var v = std::abs(lit) - 1;
      if (v >= cnf.num_vars)
        throw std::runtime_error("dimacs: variable out of range");
      current.push_back(mk_lit(v, lit < 0));
    }
  }
  if (!current.empty())
    throw std::runtime_error("dimacs: unterminated clause");
  return cnf;
}

Cnf parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

bool load_cnf(Solver& solver, const Cnf& cnf) {
  while (solver.num_vars() < cnf.num_vars) solver.new_var();
  for (const auto& clause : cnf.clauses)
    if (!solver.add_clause(clause)) return false;
  return true;
}

}  // namespace simsweep::sat
