#include "opt/isop.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace simsweep::opt {

unsigned Cube::num_literals() const {
  return static_cast<unsigned>(std::popcount(pos) + std::popcount(neg));
}

namespace {

using tt::TruthTable;

/// Minato-Morreale recursion: returns a cover C with L <= C <= U, and
/// writes the function of the cover into `cover_fn`.
std::vector<Cube> isop_rec(const TruthTable& L, const TruthTable& U,
                           unsigned num_vars, TruthTable& cover_fn) {
  if (L.is_const0()) {
    cover_fn = TruthTable::zeros(num_vars);
    return {};
  }
  if (U.is_const1()) {
    cover_fn = TruthTable::ones(num_vars);
    return {Cube{}};  // tautology cube
  }
  // Pick the lowest variable either bound depends on.
  unsigned v = 0;
  while (v < num_vars && L.is_dont_care(v) && U.is_dont_care(v)) ++v;
  assert(v < num_vars);

  const TruthTable L0 = L.cofactor0(v), L1 = L.cofactor1(v);
  const TruthTable U0 = U.cofactor0(v), U1 = U.cofactor1(v);

  // Cubes that must contain literal !v / v.
  TruthTable g0(num_vars), g1(num_vars), g2(num_vars);
  std::vector<Cube> c0 = isop_rec(L0 & ~U1, U0, num_vars, g0);
  std::vector<Cube> c1 = isop_rec(L1 & ~U0, U1, num_vars, g1);
  // Remaining minterms, coverable without v.
  const TruthTable Lnew = (L0 & ~g0) | (L1 & ~g1);
  std::vector<Cube> c2 = isop_rec(Lnew, U0 & U1, num_vars, g2);

  std::vector<Cube> cover;
  cover.reserve(c0.size() + c1.size() + c2.size());
  for (Cube c : c0) {
    c.neg |= static_cast<std::uint16_t>(1u << v);
    cover.push_back(c);
  }
  for (Cube c : c1) {
    c.pos |= static_cast<std::uint16_t>(1u << v);
    cover.push_back(c);
  }
  for (const Cube& c : c2) cover.push_back(c);

  const TruthTable proj = TruthTable::projection(v, num_vars);
  cover_fn = (~proj & g0) | (proj & g1) | g2;
  return cover;
}

}  // namespace

std::vector<Cube> isop(const tt::TruthTable& f) {
  if (f.num_vars() > 16)
    throw std::invalid_argument("isop: more than 16 variables");
  TruthTable cover_fn(f.num_vars());
  std::vector<Cube> cover = isop_rec(f, f, f.num_vars(), cover_fn);
  assert(cover_fn == f);
  return cover;
}

tt::TruthTable cover_to_tt(const std::vector<Cube>& cover,
                           unsigned num_vars) {
  tt::TruthTable out(num_vars);
  for (const Cube& c : cover) {
    tt::TruthTable term = tt::TruthTable::ones(num_vars);
    for (unsigned v = 0; v < num_vars; ++v) {
      if (c.pos & (1u << v)) term = term & tt::TruthTable::projection(v, num_vars);
      if (c.neg & (1u << v)) term = term & ~tt::TruthTable::projection(v, num_vars);
    }
    out = out | term;
  }
  return out;
}

std::size_t cover_literals(const std::vector<Cube>& cover) {
  std::size_t n = 0;
  for (const Cube& c : cover) n += c.num_literals();
  return n;
}

std::size_t cover_aig_cost(const std::vector<Cube>& cover) {
  if (cover.empty()) return 0;
  std::size_t cost = cover.size() - 1;  // OR tree
  for (const Cube& c : cover) {
    const unsigned lits = c.num_literals();
    cost += lits > 0 ? lits - 1 : 0;
  }
  return cost;
}

aig::Lit sop_to_aig(aig::Aig& dst, const std::vector<Cube>& cover,
                    const std::vector<aig::Lit>& leaf_lits) {
  if (cover.empty()) return aig::kLitFalse;

  // Balanced reduction of a literal list under a binary operation.
  auto reduce = [&dst](std::vector<aig::Lit> lits, bool is_or) {
    while (lits.size() > 1) {
      std::vector<aig::Lit> next;
      next.reserve((lits.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < lits.size(); i += 2)
        next.push_back(is_or ? dst.add_or(lits[i], lits[i + 1])
                             : dst.add_and(lits[i], lits[i + 1]));
      if (lits.size() & 1) next.push_back(lits.back());
      lits = std::move(next);
    }
    return lits[0];
  };

  std::vector<aig::Lit> terms;
  terms.reserve(cover.size());
  for (const Cube& c : cover) {
    std::vector<aig::Lit> lits;
    for (unsigned v = 0; v < leaf_lits.size(); ++v) {
      if (c.pos & (1u << v)) lits.push_back(leaf_lits[v]);
      if (c.neg & (1u << v)) lits.push_back(aig::lit_not(leaf_lits[v]));
    }
    terms.push_back(lits.empty() ? aig::kLitTrue : reduce(std::move(lits),
                                                          /*is_or=*/false));
  }
  return reduce(std::move(terms), /*is_or=*/true);
}

}  // namespace simsweep::opt
