#include "opt/balance.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"

namespace simsweep::opt {

aig::Aig balance(const aig::Aig& src) {
  // Only collapse through single-fanout edges: descending into shared AND
  // trees would duplicate them in the rebuilt graph (strashing cannot fold
  // differently-balanced copies back together).
  const std::vector<std::uint32_t> fanout = aig::compute_fanouts(src);
  aig::Aig dst(src.num_pis());
  std::vector<aig::Lit> lit_of(src.num_nodes(), 0);
  lit_of[0] = aig::kLitFalse;
  for (unsigned i = 0; i < src.num_pis(); ++i) lit_of[i + 1] = dst.pi_lit(i);

  // Levels in the *new* AIG, per new variable, for Huffman combination.
  std::vector<std::uint32_t> new_level{0};  // constant node
  new_level.resize(src.num_pis() + 1, 0);
  auto level_of = [&](aig::Lit l) {
    return new_level[aig::lit_var(l)];
  };
  auto record_level = [&](aig::Lit l) {
    const aig::Var v = aig::lit_var(l);
    if (v >= new_level.size()) new_level.resize(v + 1, 0);
  };

  for (aig::Var v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
    // Gather the leaves of the maximal AND tree rooted at v: descend
    // through non-complemented edges into AND children.
    std::vector<aig::Lit> leaves;
    std::vector<aig::Lit> stack{src.fanin0(v), src.fanin1(v)};
    while (!stack.empty()) {
      const aig::Lit e = stack.back();
      stack.pop_back();
      const aig::Var u = aig::lit_var(e);
      if (!aig::lit_compl(e) && src.is_and(u) && fanout[u] <= 1) {
        stack.push_back(src.fanin0(u));
        stack.push_back(src.fanin1(u));
      } else {
        leaves.push_back(
            aig::lit_notcond(lit_of[u], aig::lit_compl(e)));
      }
    }

    // Huffman-style combination: always AND the two shallowest operands.
    auto cmp = [&](aig::Lit a, aig::Lit b) {
      return level_of(a) > level_of(b);  // min-heap on new level
    };
    std::priority_queue<aig::Lit, std::vector<aig::Lit>, decltype(cmp)> heap(
        cmp, std::move(leaves));
    while (heap.size() > 1) {
      const aig::Lit a = heap.top();
      heap.pop();
      const aig::Lit b = heap.top();
      heap.pop();
      const aig::Lit r = dst.add_and(a, b);
      record_level(r);
      new_level[aig::lit_var(r)] =
          aig::lit_var(r) <= dst.num_pis()
              ? 0
              : 1 + std::max(level_of(a), level_of(b));
      heap.push(r);
    }
    lit_of[v] = heap.top();
  }

  for (aig::Lit po : src.pos())
    dst.add_po(aig::lit_notcond(lit_of[aig::lit_var(po)],
                                aig::lit_compl(po)));
  return aig::cleanup(dst).aig;
}

}  // namespace simsweep::opt
