#pragma once
/// \file isop.hpp
/// \brief Irredundant sum-of-products via the Minato-Morreale algorithm,
/// plus SOP-to-AIG synthesis.
///
/// This is the resynthesis kernel of the optimizer (rewrite/refactor): a
/// node's local function over a cut is converted to an irredundant SOP and
/// re-implemented as a balanced AND/OR tree, yielding a functionally
/// identical but structurally different implementation — which is exactly
/// what the benchmark generator needs to fabricate "original vs optimized"
/// CEC instances (paper §IV uses ABC resyn2 for this).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::opt {

/// A product term over at most 16 variables: variable i appears positive
/// if bit i of `pos` is set, negative if bit i of `neg` is set.
struct Cube {
  std::uint16_t pos = 0;
  std::uint16_t neg = 0;

  bool operator==(const Cube&) const = default;
  unsigned num_literals() const;
};

/// Computes an irredundant SOP cover of f (Minato-Morreale ISOP with
/// lower = upper = f, i.e. no don't cares). f must have <= 16 variables.
std::vector<Cube> isop(const tt::TruthTable& f);

/// Evaluates a cover as a truth table (for verification and tests).
tt::TruthTable cover_to_tt(const std::vector<Cube>& cover, unsigned num_vars);

/// Total literal count of a cover (the classic SOP cost measure).
std::size_t cover_literals(const std::vector<Cube>& cover);

/// Estimated AND-node count of the AIG implementation of a cover:
/// Σ (lits(cube) - 1) AND nodes per cube + (cubes - 1) for the OR tree.
std::size_t cover_aig_cost(const std::vector<Cube>& cover);

/// Synthesizes the cover into `dst` as balanced AND/OR trees, with
/// variable i of the cubes mapped to leaf_lits[i].
aig::Lit sop_to_aig(aig::Aig& dst, const std::vector<Cube>& cover,
                    const std::vector<aig::Lit>& leaf_lits);

}  // namespace simsweep::opt
