#pragma once
/// \file balance.hpp
/// \brief AND-tree balancing (the `b` steps of ABC's resyn2).
///
/// Collapses maximal multi-input AND trees (descending through
/// non-complemented AND edges) and rebuilds them as delay-balanced binary
/// trees, combining the two lowest-level operands first (Huffman order).
/// Functionally equivalent by construction; typically reduces depth.

#include "aig/aig.hpp"

namespace simsweep::opt {

aig::Aig balance(const aig::Aig& src);

}  // namespace simsweep::opt
