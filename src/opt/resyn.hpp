#pragma once
/// \file resyn.hpp
/// \brief The resyn2-style optimization pipeline (ABC stand-in).
///
/// ABC's `resyn2` is "b; rw; rf; b; rw; rwz; b; rfz; rwz; b" — alternating
/// balancing, rewriting and refactoring with zero-gain variants. The
/// pipeline here follows the same pattern with our balance/rewrite/
/// refactor; it is used by the benchmark suite to produce the "optimized"
/// member of every CEC pair (paper §IV).

#include "aig/aig.hpp"

namespace simsweep::opt {

/// One full resyn2-style pipeline.
aig::Aig resyn2(const aig::Aig& src);

/// A lighter pipeline (b; rw; b) for quick structural perturbation.
aig::Aig resyn_light(const aig::Aig& src);

}  // namespace simsweep::opt
