#include "opt/resyn.hpp"

#include "opt/balance.hpp"
#include "opt/refactor.hpp"

namespace simsweep::opt {

aig::Aig resyn2(const aig::Aig& src) {
  aig::Aig a = balance(src);
  a = rewrite(a);
  a = refactor(a);  // rf
  a = balance(a);
  a = rewrite(a);
  {
    RefactorParams rwz;  // zero/low-gain rewrite ("rwz")
    rwz.cut_size = 4;
    rwz.num_cuts = 6;
    rwz.slack = 1;
    rwz.min_cone = 2;
    a = refactor(a, rwz);
  }
  a = balance(a);
  {
    RefactorParams rfz;  // zero/low-gain refactor ("rfz")
    rfz.cut_size = 10;
    rfz.num_cuts = 4;
    rfz.slack = 2;
    rfz.min_cone = 3;
    a = refactor(a, rfz);
  }
  return balance(a);
}

aig::Aig resyn_light(const aig::Aig& src) {
  return balance(rewrite(balance(src)));
}

}  // namespace simsweep::opt
