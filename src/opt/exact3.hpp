#pragma once
/// \file exact3.hpp
/// \brief Exact synthesis of 3-input functions and exact-rewriting.
///
/// A one-time breadth-first search over the 256 three-variable functions
/// yields a database of small AIG implementations: functions are
/// discovered in order of increasing *tree* cost (combining previously
/// discovered functions pairwise with all edge polarities), and the
/// recorded implementation is then instantiated through structural
/// hashing, which re-shares duplicated subtrees — e.g. XOR3's tree cost
/// is 9 but its realized AIG has the well-known 6 AND nodes. The
/// `cost()` reported (and used by `exact_rewrite3` for acceptance) is the
/// realized post-strash size, a tight upper bound on the true minimum.
/// The pass replaces 3-cut MFFCs only on strict improvement, so it is the
/// strongest (if smallest-scale) member of the resyn pipeline family.

#include <array>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace simsweep::opt {

/// A minimal implementation of one 3-variable function: a straight-line
/// AND program over literals. Literal encoding inside steps: 0/1 are the
/// constants, 2*(1+i)+c with i < 3 are the (possibly complemented) input
/// variables, 2*(4+s)+c refers to step s's output.
struct Exact3Impl {
  struct Step {
    std::uint8_t lit0 = 0;
    std::uint8_t lit1 = 0;
  };
  std::vector<Step> steps;
  std::uint8_t out_lit = 0;  ///< same encoding; may be constant/input

  std::size_t num_ands() const { return steps.size(); }
};

/// The exact database: minimal implementations for all 256 functions.
class Exact3Db {
 public:
  /// Builds the database (a few milliseconds; BFS over function space).
  Exact3Db();

  /// Process-wide shared instance.
  static const Exact3Db& instance();

  /// The AND-minimal implementation of the 3-variable function with the
  /// given 8-bit truth table.
  const Exact3Impl& lookup(std::uint8_t func) const {
    return impls_[func];
  }

  /// Realized (post-strash) AND count of the function's implementation.
  std::size_t cost(std::uint8_t func) const { return realized_cost_[func]; }

  /// Tree cost of the recorded straight-line program (>= cost()).
  std::size_t tree_cost(std::uint8_t func) const {
    return impls_[func].num_ands();
  }

  /// Instantiates the implementation of `func` in `dst` with the three
  /// cut leaves mapped to `leaf_lits`.
  aig::Lit instantiate(aig::Aig& dst, std::uint8_t func,
                       const std::array<aig::Lit, 3>& leaf_lits) const;

 private:
  std::array<Exact3Impl, 256> impls_;
  std::array<std::uint8_t, 256> realized_cost_{};
};

struct ExactRewriteStats {
  std::size_t cones_considered = 0;
  std::size_t cones_rewritten = 0;
  std::size_t ands_saved = 0;  ///< sum of (mffc - exact) over rewrites
};

/// Exact rewriting with 3-cuts: replaces fanout-free cones by their
/// AND-minimal implementations when strictly smaller. Functionally
/// equivalence-preserving by construction.
aig::Aig exact_rewrite3(const aig::Aig& src,
                        ExactRewriteStats* stats = nullptr);

}  // namespace simsweep::opt
