#include "opt/exact3.hpp"

#include <cassert>
#include <optional>

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "cut/cut_enum.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::opt {

namespace {

/// 8-bit truth tables of the three projection functions.
constexpr std::uint8_t kProj[3] = {0xAA, 0xCC, 0xF0};

}  // namespace

Exact3Db::Exact3Db() {
  // Discovery state: cost per function, 0xFF = unknown.
  std::array<std::uint8_t, 256> cost;
  cost.fill(0xFF);

  auto record = [&](std::uint8_t func, std::uint8_t c, Exact3Impl impl) {
    if (cost[func] != 0xFF) return false;
    cost[func] = c;
    impls_[func] = std::move(impl);
    return true;
  };

  // Cost-0 functions: constants and (complemented) projections.
  std::vector<std::vector<std::uint8_t>> bucket(1);
  auto seed = [&](std::uint8_t func, std::uint8_t out_lit) {
    Exact3Impl impl;
    impl.out_lit = out_lit;
    if (record(func, 0, std::move(impl))) bucket[0].push_back(func);
  };
  seed(0x00, 0);
  seed(0xFF, 1);
  for (unsigned i = 0; i < 3; ++i) {
    seed(kProj[i], static_cast<std::uint8_t>(2 * (1 + i)));
    seed(static_cast<std::uint8_t>(~kProj[i]),
         static_cast<std::uint8_t>(2 * (1 + i) + 1));
  }

  // Breadth-first by AND count: a function of cost c is the AND of two
  // (possibly complemented) functions of costs i + j = c - 1. Tree-minimal
  // by construction (see header).
  std::size_t found = bucket[0].size();
  for (std::uint8_t c = 1; found < 256; ++c) {
    bucket.emplace_back();
    for (std::uint8_t i = 0; i <= (c - 1) / 2; ++i) {
      const std::uint8_t j = static_cast<std::uint8_t>(c - 1 - i);
      if (j >= bucket.size() - 1) continue;
      for (const std::uint8_t ft : bucket[i]) {
        for (const std::uint8_t gt : bucket[j]) {
          const Exact3Impl& fi = impls_[ft];
          const Exact3Impl& gi = impls_[gt];
          for (unsigned pol = 0; pol < 4; ++pol) {
            const bool pf = pol & 1, pg = pol & 2;
            const std::uint8_t h = static_cast<std::uint8_t>(
                (pf ? ~ft : ft) & (pg ? ~gt : gt));
            if (cost[h] != 0xFF && cost[static_cast<std::uint8_t>(~h)] != 0xFF)
              continue;
            // Concatenate the two programs; remap g's step references.
            Exact3Impl impl;
            impl.steps = fi.steps;
            const std::uint8_t shift =
                static_cast<std::uint8_t>(fi.steps.size());
            auto remap = [&](std::uint8_t lit) -> std::uint8_t {
              return lit >= 8 ? static_cast<std::uint8_t>(lit + 2 * shift)
                              : lit;
            };
            for (const Exact3Impl::Step& s : gi.steps)
              impl.steps.push_back(
                  Exact3Impl::Step{remap(s.lit0), remap(s.lit1)});
            impl.steps.push_back(Exact3Impl::Step{
                static_cast<std::uint8_t>(fi.out_lit ^ pf),
                static_cast<std::uint8_t>(remap(gi.out_lit) ^ pg)});
            impl.out_lit = static_cast<std::uint8_t>(
                2 * (4 + impl.steps.size() - 1));

            Exact3Impl compl_impl = impl;
            compl_impl.out_lit ^= 1;
            if (record(h, c, std::move(impl))) {
              bucket[c].push_back(h);
              ++found;
            }
            if (record(static_cast<std::uint8_t>(~h), c,
                       std::move(compl_impl))) {
              bucket[c].push_back(static_cast<std::uint8_t>(~h));
              ++found;
            }
          }
        }
      }
    }
    assert(c < 16 && "exact3 BFS failed to converge");
  }

  // Realized costs: instantiate each program through structural hashing
  // (shared subtrees fold) and count the surviving AND nodes.
  for (unsigned f = 0; f < 256; ++f) {
    aig::Aig scratch(3);
    const aig::Lit out = instantiate(
        scratch, static_cast<std::uint8_t>(f),
        {scratch.pi_lit(0), scratch.pi_lit(1), scratch.pi_lit(2)});
    scratch.add_po(out);
    realized_cost_[f] =
        static_cast<std::uint8_t>(aig::cleanup(scratch).aig.num_ands());
  }
}

const Exact3Db& Exact3Db::instance() {
  static const Exact3Db db;
  return db;
}

aig::Lit Exact3Db::instantiate(aig::Aig& dst, std::uint8_t func,
                               const std::array<aig::Lit, 3>& leaf_lits)
    const {
  const Exact3Impl& impl = impls_[func];
  std::vector<aig::Lit> step_lits(impl.steps.size());
  auto resolve = [&](std::uint8_t lit) -> aig::Lit {
    const unsigned var = lit >> 1;
    const bool c = lit & 1;
    if (var == 0) return c ? aig::kLitTrue : aig::kLitFalse;
    if (var <= 3) return aig::lit_notcond(leaf_lits[var - 1], c);
    return aig::lit_notcond(step_lits[var - 4], c);
  };
  for (std::size_t s = 0; s < impl.steps.size(); ++s)
    step_lits[s] =
        dst.add_and(resolve(impl.steps[s].lit0), resolve(impl.steps[s].lit1));
  return resolve(impl.out_lit);
}

aig::Aig exact_rewrite3(const aig::Aig& src, ExactRewriteStats* stats) {
  if (stats) *stats = ExactRewriteStats{};
  const Exact3Db& db = Exact3Db::instance();

  cut::EnumParams ep;
  ep.cut_size = 3;
  ep.num_cuts = 4;
  cut::PriorityCuts pc(src, ep);
  const cut::CutScorer scorer(src, cut::Pass::kFanout);
  for (aig::Var v = src.num_pis() + 1; v < src.num_nodes(); ++v)
    pc.compute_node(v, scorer, nullptr);

  // Reverse-topological MFFC-restricted selection, as in refactor().
  struct Selection {
    std::array<aig::Var, 3> leaves{};
    unsigned num_leaves = 0;
    std::uint8_t func = 0;
  };
  const std::vector<std::uint32_t> fanout = aig::compute_fanouts(src);
  std::vector<std::optional<Selection>> selected(src.num_nodes());
  std::vector<std::uint8_t> covered(src.num_nodes(), 0);
  std::vector<std::uint32_t> in_cone_refs(src.num_nodes(), 0);
  for (aig::Var v = static_cast<aig::Var>(src.num_nodes()); v-- > 0;) {
    if (!src.is_and(v) || covered[v]) continue;
    for (const cut::Cut& c : pc.cuts(v).cuts()) {
      if (c.size < 2) continue;
      std::vector<aig::Var> leaves(c.leaves.begin(),
                                   c.leaves.begin() + c.size);
      const std::vector<aig::Var> cone = aig::tfi_cone(src, {v}, leaves);
      std::size_t cone_ands = 0;
      for (aig::Var u : cone) cone_ands += src.is_and(u) ? 1 : 0;
      if (cone_ands < 2) continue;

      for (aig::Var u : cone) {
        if (!src.is_and(u)) continue;
        ++in_cone_refs[aig::lit_var(src.fanin0(u))];
        ++in_cone_refs[aig::lit_var(src.fanin1(u))];
      }
      bool fanout_free = true;
      for (aig::Var u : cone)
        if (u != v && src.is_and(u) && in_cone_refs[u] != fanout[u])
          fanout_free = false;
      for (aig::Var u : cone) {
        if (!src.is_and(u)) continue;
        in_cone_refs[aig::lit_var(src.fanin0(u))] = 0;
        in_cone_refs[aig::lit_var(src.fanin1(u))] = 0;
      }
      if (!fanout_free) continue;

      const tt::TruthTable f =
          aig::cone_truth_table(src, aig::make_lit(v), leaves);
      const std::uint8_t func = static_cast<std::uint8_t>(
          f.extend(3).words()[0] & 0xFF);
      if (stats) ++stats->cones_considered;
      if (db.cost(func) >= cone_ands) continue;  // only strict gains

      Selection sel;
      sel.num_leaves = static_cast<unsigned>(leaves.size());
      for (unsigned i = 0; i < sel.num_leaves; ++i) sel.leaves[i] = leaves[i];
      sel.func = func;
      selected[v] = sel;
      if (stats) {
        ++stats->cones_rewritten;
        stats->ands_saved += cone_ands - db.cost(func);
      }
      for (aig::Var u : cone)
        if (u != v) covered[u] = 1;
      break;
    }
  }

  aig::Aig dst(src.num_pis());
  std::vector<aig::Lit> lit_of(src.num_nodes(), 0);
  lit_of[0] = aig::kLitFalse;
  for (unsigned i = 0; i < src.num_pis(); ++i) lit_of[i + 1] = dst.pi_lit(i);
  auto mapped = [&](aig::Lit l) {
    return aig::lit_notcond(lit_of[aig::lit_var(l)], aig::lit_compl(l));
  };
  for (aig::Var v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
    if (selected[v]) {
      std::array<aig::Lit, 3> leaf_lits{aig::kLitFalse, aig::kLitFalse,
                                        aig::kLitFalse};
      for (unsigned i = 0; i < selected[v]->num_leaves; ++i)
        leaf_lits[i] = lit_of[selected[v]->leaves[i]];
      lit_of[v] = db.instantiate(dst, selected[v]->func, leaf_lits);
    } else {
      lit_of[v] = dst.add_and(mapped(src.fanin0(v)), mapped(src.fanin1(v)));
    }
  }
  for (aig::Lit po : src.pos()) dst.add_po(mapped(po));
  return aig::cleanup(dst).aig;
}

}  // namespace simsweep::opt
