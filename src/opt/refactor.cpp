#include "opt/refactor.hpp"

#include <algorithm>
#include <optional>

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "cut/cut_enum.hpp"
#include "opt/isop.hpp"

namespace simsweep::opt {

namespace {

struct Selection {
  std::vector<aig::Var> leaves;
  std::vector<Cube> cover;
};

}  // namespace

aig::Aig refactor(const aig::Aig& src, const RefactorParams& params) {
  // Priority cuts for every node (plain topological order: no pair
  // dependencies here, so ascending id is a valid schedule).
  cut::EnumParams ep;
  ep.cut_size = params.cut_size;
  ep.num_cuts = params.num_cuts;
  cut::PriorityCuts pc(src, ep);
  const cut::CutScorer scorer(src, cut::Pass::kFanout);
  for (aig::Var v = src.num_pis() + 1; v < src.num_nodes(); ++v)
    pc.compute_node(v, scorer, nullptr);

  // Reverse-topological greedy cone selection. A cone is only eligible if
  // its interior is fanout-free relative to the rest of the graph (an
  // MFFC-style condition): every interior node's fanouts must stay inside
  // the cone, so replacing the root makes the interiors dangle and the
  // size estimate cover_aig_cost vs cone size is honest. Without this,
  // shared interior logic gets duplicated and the "optimization" grows
  // the circuit.
  const std::vector<std::uint32_t> fanout = aig::compute_fanouts(src);
  std::vector<std::optional<Selection>> selected(src.num_nodes());
  std::vector<std::uint8_t> covered(src.num_nodes(), 0);
  std::vector<std::uint32_t> in_cone_refs(src.num_nodes(), 0);
  for (aig::Var v = static_cast<aig::Var>(src.num_nodes()); v-- > 0;) {
    if (!src.is_and(v) || covered[v]) continue;
    const cut::CutSet& cuts = pc.cuts(v);
    for (const cut::Cut& c : cuts.cuts()) {
      if (c.size < 2) continue;
      std::vector<aig::Var> leaves(c.leaves.begin(),
                                   c.leaves.begin() + c.size);
      const std::vector<aig::Var> cone = aig::tfi_cone(src, {v}, leaves);
      std::size_t cone_ands = 0;
      for (aig::Var u : cone) cone_ands += src.is_and(u) ? 1 : 0;
      if (cone_ands < params.min_cone) continue;

      // MFFC check: count in-cone references of each interior node and
      // compare with its global fanout count.
      for (aig::Var u : cone) {
        if (!src.is_and(u)) continue;
        ++in_cone_refs[aig::lit_var(src.fanin0(u))];
        ++in_cone_refs[aig::lit_var(src.fanin1(u))];
      }
      bool fanout_free = true;
      for (aig::Var u : cone)
        if (u != v && src.is_and(u) && in_cone_refs[u] != fanout[u])
          fanout_free = false;
      for (aig::Var u : cone) {  // reset the scratch counters
        if (!src.is_and(u)) continue;
        in_cone_refs[aig::lit_var(src.fanin0(u))] = 0;
        in_cone_refs[aig::lit_var(src.fanin1(u))] = 0;
      }
      if (!fanout_free) continue;

      const tt::TruthTable f =
          aig::cone_truth_table(src, aig::make_lit(v), leaves);
      std::vector<Cube> cover = isop(f);
      if (static_cast<long>(cover_aig_cost(cover)) >
          static_cast<long>(cone_ands) + params.slack)
        continue;

      selected[v] = Selection{std::move(leaves), std::move(cover)};
      for (aig::Var u : cone)
        if (u != v) covered[u] = 1;  // interiors can't be roots
      break;
    }
  }

  // Rebuild: selected roots are resynthesized from their mapped leaves,
  // everything else is copied; cleanup drops copies that became dangling.
  aig::Aig dst(src.num_pis());
  std::vector<aig::Lit> lit_of(src.num_nodes(), 0);
  lit_of[0] = aig::kLitFalse;
  for (unsigned i = 0; i < src.num_pis(); ++i) lit_of[i + 1] = dst.pi_lit(i);
  auto mapped = [&](aig::Lit l) {
    return aig::lit_notcond(lit_of[aig::lit_var(l)], aig::lit_compl(l));
  };
  for (aig::Var v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
    if (selected[v]) {
      std::vector<aig::Lit> leaf_lits;
      leaf_lits.reserve(selected[v]->leaves.size());
      for (aig::Var u : selected[v]->leaves)
        leaf_lits.push_back(lit_of[u]);
      lit_of[v] = sop_to_aig(dst, selected[v]->cover, leaf_lits);
    } else {
      lit_of[v] = dst.add_and(mapped(src.fanin0(v)), mapped(src.fanin1(v)));
    }
  }
  for (aig::Lit po : src.pos()) dst.add_po(mapped(po));
  return aig::cleanup(dst).aig;
}

}  // namespace simsweep::opt
