#pragma once
/// \file refactor.hpp
/// \brief Cut-based resynthesis (the `rf`/`rw` steps of ABC's resyn2).
///
/// Walks the AIG in reverse topological order, selects non-overlapping
/// cones rooted at AND nodes (bounded by a k-cut from priority-cut
/// enumeration), and re-implements each selected cone from its cut leaves
/// through ISOP + balanced SOP synthesis. A cone is selected when the
/// estimated new implementation is not larger than the cone plus `slack`
/// nodes (slack > 0 admits zero/negative-gain restructurings, like ABC's
/// -z flag — valuable here because the goal is structural diversity for
/// CEC benchmarks as much as size reduction).

#include "aig/aig.hpp"

namespace simsweep::opt {

struct RefactorParams {
  unsigned cut_size = 10;  ///< k of the enumerated cuts (<= cut::kMaxCutSize)
  unsigned num_cuts = 4;   ///< priority cuts considered per node
  int slack = 0;           ///< accepted growth per cone, in AND nodes
  unsigned min_cone = 3;   ///< smallest cone worth refactoring
};

aig::Aig refactor(const aig::Aig& src, const RefactorParams& params = {});

/// `rewrite` = refactor with small (4-input) cuts and zero-gain
/// acceptance, approximating ABC's DAG-aware rewriting step.
inline aig::Aig rewrite(const aig::Aig& src) {
  RefactorParams p;
  p.cut_size = 4;
  p.num_cuts = 6;
  p.slack = 0;
  p.min_cone = 2;
  return refactor(src, p);
}

}  // namespace simsweep::opt
