#pragma once
/// \file engine.hpp
/// \brief The simulation-based CEC engine (paper §III, Fig. 1 / Fig. 5).
///
/// The engine proves combinational equivalence by exhaustive simulation
/// instead of SAT. Its flow (Fig. 5) is:
///
///   P  — PO checking: prove simulatable miter POs constant-0 directly in
///        terms of their global functions (thresholds k_P / k_p);
///   G  — global function checking: after equivalence classes are
///        initialized by partial random simulation, prove candidate node
///        pairs whose support-union size is at most k_g, collecting CEXs
///        that refine the classes;
///   L* — repeated local function checking phases, each consisting of
///        three cut-generation/checking passes (Table I criteria), until
///        the miter cannot be reduced further.
///
/// Proved pairs are merged by the miter manager (AIG rebuild) between
/// phases. If the miter is not fully reduced the engine returns
/// kUndecided together with the reduced miter, which a SAT-based checker
/// (sweep::SatSweeper here, ABC &cec in the paper) can finish.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "common/verdict.hpp"
#include "fault/governor.hpp"
#include "obs/registry.hpp"
#include "sim/incremental.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::engine {

using simsweep::Verdict;

struct EngineStats;

/// Degradation-ladder state (DESIGN.md §2.4), mutated by the host thread
/// only. Backoff persists across phases: once a fault forced M down or
/// merging off, later phases start from the degraded values — the
/// resource pressure that caused the fault rarely goes away mid-run. It
/// is also part of every checkpoint snapshot (DESIGN.md §2.8), so a
/// resumed run re-enters the ladder where the crashed run left it.
struct DegradeState {
  std::size_t memory_words = 0;  ///< working M (seeded from params)
  bool window_merging = true;    ///< dropped on repeated merge faults
  std::uint64_t ladder_steps = 0;      ///< parameter-backoff steps taken
  std::uint64_t memory_halvings = 0;   ///< M halved (OOM / budget denial)
  std::uint64_t merge_fallbacks = 0;   ///< merged builds that fell back
  std::uint64_t batch_splits = 0;      ///< batches split per-window
  std::uint64_t deadline_expiries = 0; ///< phase deadlines that expired
  std::uint64_t units_abandoned = 0;   ///< windows/passes left undecided
  std::uint64_t pass_retries = 0;      ///< cut passes retried after fault
  std::uint64_t faults_recovered = 0;  ///< failures answered by a retry
};

/// Read-only view handed to EngineParams::checkpoint_hook at every phase
/// boundary of an undecided-but-continuing run (DESIGN.md §2.8). All
/// pointers alias host-thread engine state and are only valid for the
/// duration of the call — a hook that wants durability must copy.
struct EngineCheckpointView {
  const aig::Aig* miter = nullptr;           ///< current reduced miter
  const sim::PatternBank* bank = nullptr;    ///< null before first random sim
  const EngineStats* stats = nullptr;
  const DegradeState* degrade = nullptr;
  const char* boundary = "";  ///< "P", "G", "L" or "G+" (escalated global)
};

struct EngineParams {
  // --- Paper §IV parameter values (defaults). ---
  unsigned k_P = 32;  ///< one-shot PO-checking support threshold
  unsigned k_p = 16;  ///< per-PO simulatable threshold (k_P > k_p)
  unsigned k_g = 16;  ///< global-checking support-union threshold
  unsigned k_l = 8;   ///< local-checking cut-size bound (<= cut::kMaxCutSize)
  unsigned num_cuts = 8;  ///< C, priority cuts per node

  /// Window merging (paper §III-B3); k_s is set per phase to the phase's
  /// support threshold, as in the paper's experiments.
  bool window_merging = true;

  // --- Engine knobs not named in the paper. ---
  std::size_t sim_words = 4;          ///< initial random pattern words
  std::uint64_t seed = 0x5EEDULL;     ///< random-simulation seed
  std::size_t memory_words = std::size_t{1} << 22;  ///< M (Alg. 1)
  std::size_t cut_buffer_capacity = std::size_t{1} << 14;  ///< Alg. 2 buffer
  unsigned max_cuts_per_pair = 8;
  unsigned max_global_iters = 16;    ///< CEX-refinement rounds in G
  unsigned max_local_phases = 4;     ///< cap on repeated L phases
  std::size_t max_pattern_words = 64;  ///< pattern-bank size cap
  std::size_t max_batch_windows = 4096;  ///< windows per exhaustive batch

  // --- Ablation switches (benches). ---
  bool enable_po_phase = true;
  bool enable_global_phase = true;
  std::array<bool, 3> local_passes{true, true, true};  ///< Table I passes
  /// Incremental simulation & EC carry-over (DESIGN.md §2.7). Off =
  /// pre-incremental behaviour — full re-simulation and a fresh class
  /// build at every phase entry and refinement round (the A/B lever of
  /// bench_incremental). The verdict is identical either way; only the
  /// work to reach it differs.
  bool incremental_sim = true;

  // --- Paper §V (Discussion) extensions. ---
  /// Distance-1 CEX simulation [Mishchenko et al., ICCAD'06]: every
  /// collected CEX additionally contributes the patterns obtained by
  /// flipping each assigned support bit, improving EC refinement quality.
  bool distance1_cex = false;
  /// Adaptive L phases: a Table I pass that proves zero pairs in an L
  /// phase is disabled for the remaining phases (paper §V item 2).
  bool adaptive_passes = false;
  /// Simulation-guided pattern generation (paper refs [3], [20]): the
  /// initial pattern bank keeps only candidate words that split signature
  /// classes, reducing false candidate pairs for the same budget.
  bool quality_patterns = false;
  /// Graduated global checking: when the repeated L phases stop reducing
  /// the miter, raise the G-phase support threshold by k_g_step (up to
  /// k_P) and re-run global checking on the reduced miter. SDC-blocked
  /// local pairs often have moderate support unions that one bigger
  /// exhaustive-simulation round settles exactly. This is an extension in
  /// the spirit of the paper's two-threshold P phase (§III-D); disable
  /// for a flow that matches Fig. 5 literally.
  bool escalate_global = true;
  unsigned k_g_step = 4;
  /// Capture intermediate miters after the P and G phases (paper Fig. 7).
  bool capture_snapshots = false;

  /// Cooperative cancellation (portfolio use): checked between phases,
  /// between refinement iterations and between simulation rounds. When it
  /// fires the engine returns kUndecided with the current reduced miter.
  const std::atomic<bool>* cancel = nullptr;

  /// Wall-clock budget in seconds (0 = unbounded). Enforced through the
  /// same cancellation checkpoints via an internal watchdog, so expiry
  /// yields kUndecided with whatever reduction was achieved so far.
  double time_limit = 0;

  // --- Resource governor & degradation ladder (DESIGN.md §2.4). ---
  /// Per-phase wall-clock cap in seconds (0 = unbounded): each P/G/L
  /// phase gets its own fresh deadline on entry, checked at the same
  /// checkpoints as cancellation. Expiry routes the phase's remaining
  /// work to the sound undecided path instead of cancelling the run.
  double phase_time_limit = 0;
  /// Process memory budget in bytes for the governed allocations
  /// (simulation tables; 0 = ungoverned). Ignored when memory_ledger is
  /// set. Denied charges are recoverable faults the ladder answers by
  /// halving M.
  std::uint64_t memory_budget_bytes = 0;
  /// External ledger to charge instead of an engine-private one — lets a
  /// portfolio share one process budget across racing attempts.
  fault::MemoryLedger* memory_ledger = nullptr;
  /// Degradation-ladder bound: retries per failing unit (batch or cut
  /// pass) with parameter backoff before its items are abandoned to the
  /// undecided path.
  unsigned max_fault_retries = 3;
  /// Floor for ladder-driven halving of memory_words.
  std::size_t min_memory_words = std::size_t{1} << 10;

  /// Optional metrics registry (DESIGN.md §2.3). When set, the engine and
  /// its phases publish their module counters (exhaustive.*, cut.*, ec.*,
  /// partial_sim.*, miter.*, engine.*, pool.*) into it; a shared registry
  /// accumulates across engine attempts. When null the engine uses a
  /// private registry so EngineResult::report is always populated.
  obs::Registry* registry = nullptr;

  // --- Checkpoint/resume (DESIGN.md §2.8). ---
  /// Invoked on the host thread at every phase boundary the flow passes
  /// through while still undecided, with a transient view of the current
  /// state. The ckpt layer installs a hook that snapshots and durably
  /// writes it. Exceptions thrown by the hook are swallowed: a failed
  /// checkpoint must never change the run's verdict.
  std::function<void(const EngineCheckpointView&)> checkpoint_hook;
  /// Resume entry: when set (and PI-compatible with the miter), the first
  /// phase that needs a pattern bank starts from a copy of this bank
  /// instead of a fresh random one, so a resumed run re-derives the
  /// crashed run's equivalence classes from its accumulated patterns.
  const sim::PatternBank* initial_bank = nullptr;
};

struct EngineStats {
  double po_seconds = 0;
  double global_seconds = 0;
  double local_seconds = 0;
  double other_seconds = 0;  ///< simulation init, EC building, rebuilds
  double total_seconds = 0;

  std::size_t initial_ands = 0;
  std::size_t final_ands = 0;
  std::size_t pos_total = 0;
  std::size_t pos_proved = 0;
  std::size_t pairs_proved_global = 0;
  std::size_t pairs_proved_local = 0;
  std::size_t pairs_disproved = 0;
  std::size_t cex_count = 0;
  std::size_t local_phases = 0;

  /// Miter size reduction achieved by the engine ("Reduced (%)" column of
  /// paper Table II). 100% means fully proved.
  double reduction_percent() const {
    if (initial_ands == 0) return 100.0;
    return 100.0 * (1.0 - static_cast<double>(final_ands) / initial_ands);
  }
};

struct EngineResult {
  Verdict verdict = Verdict::kUndecided;
  /// The reduced miter (empty of AND nodes iff fully proved).
  aig::Aig reduced;
  /// Disproving PI assignment when kNotEquivalent was established by a
  /// CEX. nullopt when disproof came from a constant-1 PO (any assignment
  /// disproves) — see EngineResult::cex comment in DESIGN.md.
  std::optional<std::vector<bool>> cex;
  EngineStats stats;
  /// Intermediate miters ("P", "PG") when capture_snapshots is set.
  std::vector<std::pair<std::string, aig::Aig>> snapshots;
  /// The engine's final PI pattern bank (random patterns + accumulated
  /// CEXs). Feeding it to the downstream SAT sweeper implements the
  /// paper's §V "EC transferring": pairs the engine disproved are
  /// separated by these patterns, so SAT never re-checks them.
  std::optional<sim::PatternBank> bank;
  /// Metric snapshot taken at the end of the run (the registry's state —
  /// the caller's if EngineParams::registry was set, else the engine's
  /// private one). Serialize with obs::to_json().
  obs::Snapshot report;
};

class SimCecEngine {
 public:
  explicit SimCecEngine(EngineParams params = {}) : params_(params) {}

  /// Checks the equivalence of two circuits (builds the miter internally).
  EngineResult check(const aig::Aig& a, const aig::Aig& b) const {
    return check_miter(aig::make_miter(a, b));
  }

  /// Runs the engine flow on a prebuilt miter (all POs must be intended
  /// constant 0).
  EngineResult check_miter(aig::Aig miter) const;

  const EngineParams& params() const { return params_; }

 private:
  EngineParams params_;
};

namespace detail {

/// Shared state threaded through the phase implementations.
///
/// Concurrency contract: EngineContext is owned by the single host thread
/// driving the phase sequence. Phases hand slices of it to pool workers
/// only through the executor's data-parallel calls, whose bodies write
/// disjoint indices; the executor's submission/retirement protocol
/// provides the happens-before edges back to the host. The only cell read
/// concurrently is params.cancel (an atomic polled by workers and written
/// by the engine watchdog / portfolio — see SimCecEngine::check_miter).
struct EngineContext {
  const EngineParams& params;
  aig::Aig miter;
  EngineStats stats;
  std::vector<std::pair<std::string, aig::Aig>> snapshots;
  std::optional<std::vector<bool>> cex;
  bool disproved = false;
  /// PI pattern bank (random init + accumulated CEXs). PIs are stable
  /// across miter rebuilds, so the bank persists across phases.
  std::optional<sim::PatternBank> bank;
  /// L-phase pass activity (adaptive_passes extension).
  std::array<bool, 3> active_passes{true, true, true};
  /// Metrics sink; set by check_miter() before any phase runs (never null
  /// inside a phase — the engine substitutes a private registry when the
  /// caller provided none).
  obs::Registry* obs = nullptr;
  /// Degradation-ladder state (DESIGN.md §2.4); the type lives at
  /// namespace scope so checkpoint snapshots can carry it (§2.8). The
  /// member alias keeps the phases' historical EngineContext::DegradeState
  /// spelling valid.
  using DegradeState = ::simsweep::engine::DegradeState;
  DegradeState degrade;
  /// Memory governor for this run: the caller's EngineParams::memory_ledger,
  /// an engine-private one (memory_budget_bytes > 0), or null (ungoverned).
  fault::MemoryLedger* ledger = nullptr;
  /// Incremental simulation + EC carry-over state (DESIGN.md §2.7): one
  /// Signatures matrix and one EcManager kept alive across phases,
  /// delta-simulated on CEX absorption and translated through rebuild
  /// lit_maps. check_miter() enables it from EngineParams.
  sim::IncrementalState inc;
  /// Cached level schedule of the current miter, shared by partial
  /// simulation, window building and cut passes. Lazily built by
  /// level_schedule() (phase_common.hpp); reset at every rebuild.
  std::optional<aig::LevelSchedule> schedule;
};

/// Returns false if the miter was disproved (stop immediately).
bool run_po_phase(EngineContext& ctx);
/// Runs global checking with the given support-union threshold (the plain
/// Fig. 5 flow uses params.k_g; escalation passes larger values).
/// Returns the number of pairs proved.
std::size_t run_global_phase(EngineContext& ctx, unsigned k_g);
/// Returns true if this L phase reduced the miter.
bool run_local_phase(EngineContext& ctx);

}  // namespace detail

/// Folds the stats of a finished engine attempt (`prev`) into the stats of
/// the attempt that continued from its reduced miter (`next`), so a chain
/// of attempts reports work and time totals across the whole chain:
/// counters and per-phase seconds accumulate, `initial_ands`/`pos_total`
/// keep the FIRST attempt's view of the original miter, and `final_ands`
/// stays `next`'s (the latest reduction). Used by the portfolio's
/// rewriting-interleaved engine loop.
void accumulate_attempt_stats(EngineStats& next, const EngineStats& prev);

/// Publishes EngineStats as `engine.*` gauges (set semantics — the last
/// publisher into a shared registry wins, so callers that merge stats
/// across attempts republish the merged totals last).
void publish_engine_stats(obs::Registry& registry, const EngineStats& stats);

}  // namespace simsweep::engine
