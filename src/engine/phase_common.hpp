#pragma once
/// \file phase_common.hpp
/// \brief Internal helpers shared by the engine's phase implementations.

#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "engine/engine.hpp"
#include "exhaustive/exhaustive_sim.hpp"
#include "fault/governor.hpp"
#include "obs/metric_names.hpp"
#include "sim/ec_manager.hpp"
#include "sim/incremental.hpp"
#include "window/window_merge.hpp"

namespace simsweep::engine::detail {

/// Expands a sparse window-input CEX (PI variables only) into a complete
/// PI assignment; unassigned PIs default to 0, which is sound because the
/// mismatching pattern fixes only the support variables the roots can
/// depend on.
inline std::vector<bool> expand_cex(
    const aig::Aig& miter,
    const std::vector<std::pair<aig::Var, bool>>& assignment) {
  std::vector<bool> pi_values(miter.num_pis(), false);
  for (const auto& [var, value] : assignment) {
    // Window inputs of global checks are PIs: var in [1, num_pis].
    if (var >= 1 && var <= miter.num_pis()) pi_values[var - 1] = value;
  }
  return pi_values;
}

// --- Phase-side metric publishing (DESIGN.md §2.3). ctx.obs is never null
// inside a phase (check_miter installs a private registry when the caller
// provided none), and all of these run on the host thread at batch/phase
// boundaries — never inside a pool worker body.

/// Publishes one merge_windows() run under `exhaustive.merge.*` and folds
/// build failures into the degradation ladder: a failed merged build
/// already degraded (the originals passed through unmerged — see
/// window_merge.hpp), and a run with more fallbacks than the retry budget
/// drops window merging for the rest of the run.
inline void publish_merge_stats(EngineContext& ctx,
                                const window::MergeStats& ms) {
  obs::Registry& r = *ctx.obs;
  r.add(obs::metric::kMergeRuns);
  r.add(obs::metric::kMergeWindowsBefore, ms.windows_before);
  r.add(obs::metric::kMergeWindowsAfter, ms.windows_after);
  r.add(obs::metric::kMergeSimNodesBefore, ms.sim_nodes_before);
  r.add(obs::metric::kMergeSimNodesAfter, ms.sim_nodes_after);
  r.add(obs::metric::kMergeMergeGroups, ms.merge_groups);
  r.add(obs::metric::kMergeWindowsMerged, ms.windows_merged);
  r.add(obs::metric::kMergeRejectedCapacity, ms.rejected_capacity);
  r.add(obs::metric::kMergeRejectedSimilarity, ms.rejected_similarity);
  r.add(obs::metric::kMergeBuildFailures, ms.build_failures);
  if (ms.build_failures > 0) {
    auto& deg = ctx.degrade;
    deg.merge_fallbacks += ms.build_failures;
    deg.ladder_steps += ms.build_failures;
    deg.faults_recovered += ms.build_failures;
    if (deg.window_merging &&
        deg.merge_fallbacks > ctx.params.max_fault_retries) {
      deg.window_merging = false;  // stop paying for builds that keep failing
      ++deg.ladder_steps;
    }
  }
}

/// Result of run_batch_with_ladder(). `result.outcomes` is valid whenever
/// `cancelled` is false — possibly partial: abandoned items simply have no
/// outcome, which is sound (they stay unproved in the miter and flow to
/// the SAT sweeper).
struct LadderOutcome {
  exhaustive::BatchResult result;
  bool cancelled = false;
  bool deadline_expired = false;
  std::size_t items_abandoned = 0;
};

/// Runs one exhaustive batch under the degradation ladder (DESIGN.md
/// §2.4). On a recoverable failure (bad_alloc in the simulation table or
/// a memory-ledger denial) the ladder retries with backoff, persisting
/// the degraded parameters in ctx.degrade so later batches start there:
///   1. halve the working M (down to params.min_memory_words), at most
///      params.max_fault_retries times per batch;
///   2. split the batch per window and run each alone (smaller tables);
///   3. abandon the remaining items to the undecided path.
/// Deadline expiry is not retried — the phase's remaining work is simply
/// not attempted. Host thread only.
inline LadderOutcome run_batch_with_ladder(EngineContext& ctx,
                                           const aig::Aig& aig,
                                           std::vector<window::Window> windows,
                                           exhaustive::Params sim,
                                           int depth = 0) {
  LadderOutcome out;
  EngineContext::DegradeState& deg = ctx.degrade;
  for (unsigned attempt = 0;; ++attempt) {
    sim.memory_words = deg.memory_words;
    sim.ledger = ctx.ledger;
    exhaustive::BatchResult r = exhaustive::check_batch(aig, windows, sim);
    if (r.cancelled) {
      out.cancelled = true;
      return out;
    }
    if (r.failure == exhaustive::BatchFailure::kNone) {
      out.result = std::move(r);
      return out;
    }
    if (r.failure == exhaustive::BatchFailure::kDeadline) {
      ++deg.deadline_expiries;
      out.deadline_expired = true;
      return out;
    }
    // kAlloc / kMemoryBudget. Rung 1: same batch, half the table budget.
    if (attempt < ctx.params.max_fault_retries &&
        deg.memory_words / 2 >= ctx.params.min_memory_words) {
      deg.memory_words /= 2;
      ++deg.memory_halvings;
      ++deg.ladder_steps;
      ++deg.faults_recovered;
      continue;
    }
    // Rung 2: split the batch per window — each window's table is a
    // fraction of the batch's, so singles can fit where the batch could
    // not. One level deep only.
    if (depth == 0 && windows.size() > 1) {
      ++deg.batch_splits;
      ++deg.ladder_steps;
      ++deg.faults_recovered;
      for (window::Window& w : windows) {
        std::vector<window::Window> one;
        one.push_back(std::move(w));
        LadderOutcome sub =
            run_batch_with_ladder(ctx, aig, std::move(one), sim, 1);
        out.items_abandoned += sub.items_abandoned;
        if (sub.cancelled) {
          out.cancelled = true;
          return out;
        }
        out.result.outcomes.insert(
            out.result.outcomes.end(),
            std::make_move_iterator(sub.result.outcomes.begin()),
            std::make_move_iterator(sub.result.outcomes.end()));
        out.result.cexes.insert(
            out.result.cexes.end(),
            std::make_move_iterator(sub.result.cexes.begin()),
            std::make_move_iterator(sub.result.cexes.end()));
        out.result.rounds = std::max(out.result.rounds, sub.result.rounds);
        out.result.words_simulated += sub.result.words_simulated;
        if (sub.deadline_expired) {
          out.deadline_expired = true;
          return out;
        }
      }
      return out;
    }
    // Rung 3: abandon. The unproved items remain in the miter, so the
    // final verdict stays sound (they reach the SAT sweeper undecided).
    for (const window::Window& w : windows)
      out.items_abandoned += w.items.size();
    deg.units_abandoned += windows.size();
    ++deg.ladder_steps;
    return out;
  }
}

/// Records one miter rebuild under `miter.*` (called at every rebuild
/// site with the AND counts on both sides).
inline void note_rebuild(EngineContext& ctx, std::size_t ands_before,
                         std::size_t ands_after) {
  obs::Registry& r = *ctx.obs;
  r.add(obs::metric::kMiterRebuilds);
  r.add(obs::metric::kMiterAndsBefore, ands_before);
  r.add(obs::metric::kMiterAndsAfter, ands_after);
  if (ands_before > ands_after)
    r.add(obs::metric::kMiterAndsRemoved, ands_before - ands_after);
}

/// Records one sim::simulate() sweep under `partial_sim.*`.
inline void note_partial_sim(EngineContext& ctx, std::size_t bank_words) {
  ctx.obs->add(obs::metric::kPartialSimSimulateCalls);
  ctx.obs->add(obs::metric::kPartialSimPatternWords, bank_words);
}

/// The current miter's cached level schedule (DESIGN.md §2.7), built on
/// first use after each rebuild and shared by partial simulation, window
/// building and the cut passes. Host thread only; the returned pointer is
/// valid until the next rebuild (apply_reduction resets the cache).
inline const aig::LevelSchedule* level_schedule(EngineContext& ctx) {
  if (!ctx.schedule || !ctx.schedule->matches(ctx.miter))
    ctx.schedule = aig::build_level_schedule(ctx.miter);
  return &*ctx.schedule;
}

/// Publishes the full re-simulations one IncrementalState::sync() decided
/// to perform (`before` = ctx.inc.stats() snapshot taken just before the
/// sync). Delta-simulated columns are reported per run under
/// partial_sim.incremental_words by check_miter's finish().
inline void note_sync(EngineContext& ctx, const sim::CarryStats& before) {
  const sim::CarryStats& now = ctx.inc.stats();
  const std::uint64_t resims = now.full_resims - before.full_resims;
  if (resims > 0 && ctx.bank) {
    ctx.obs->add(obs::metric::kPartialSimSimulateCalls, resims);
    ctx.obs->add(obs::metric::kPartialSimPatternWords,
                 resims * ctx.bank->num_words());
  }
}

/// The engine's single rebuild site: applies a substitution map to the
/// miter, carries the incremental simulation state through the rebuild's
/// lit_map (DESIGN.md §2.7), drops the cached level schedule and records
/// the reduction under `miter.*`. A failed carry-over (injected
/// sim.carryover fault, stale state) degrades to a full re-simulation at
/// the next sync — a ladder step the next sync recovers from.
inline void apply_reduction(EngineContext& ctx,
                            const aig::SubstitutionMap& subst) {
  const std::size_t before_ands = ctx.miter.num_ands();
  const std::uint64_t fallbacks_before = ctx.inc.stats().carry_fallbacks;
  aig::RebuildResult rr = aig::rebuild(ctx.miter, subst);
  ctx.inc.apply_rebuild(rr.aig, rr.lit_map);
  if (ctx.inc.stats().carry_fallbacks > fallbacks_before) {
    ++ctx.degrade.ladder_steps;
    ++ctx.degrade.faults_recovered;
  }
  ctx.miter = std::move(rr.aig);
  ctx.schedule.reset();
  note_rebuild(ctx, before_ands, ctx.miter.num_ands());
}

/// Publishes the deltas an EcManager accumulated since `since` under
/// `ec.*` (each phase owns its manager, so publishing its lifetime stats
/// once at phase end never double counts; `since` supports the G phase's
/// per-iteration incremental publishing).
inline void publish_ec_stats(EngineContext& ctx, const sim::EcStats& now,
                             const sim::EcStats& since = {}) {
  obs::Registry& r = *ctx.obs;
  r.add(obs::metric::kEcBuilds, now.builds - since.builds);
  r.add(obs::metric::kEcRefines, now.refines - since.refines);
  r.add(obs::metric::kEcClassesBuilt, now.classes_built - since.classes_built);
  r.add(obs::metric::kEcClassSplits, now.class_splits - since.class_splits);
  r.add(obs::metric::kEcClassesDissolved,
        now.classes_dissolved - since.classes_dissolved);
}

}  // namespace simsweep::engine::detail
