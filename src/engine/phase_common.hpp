#pragma once
/// \file phase_common.hpp
/// \brief Internal helpers shared by the engine's phase implementations.

#include <vector>

#include "aig/aig.hpp"
#include "engine/engine.hpp"
#include "exhaustive/exhaustive_sim.hpp"

namespace simsweep::engine::detail {

/// Expands a sparse window-input CEX (PI variables only) into a complete
/// PI assignment; unassigned PIs default to 0, which is sound because the
/// mismatching pattern fixes only the support variables the roots can
/// depend on.
inline std::vector<bool> expand_cex(
    const aig::Aig& miter,
    const std::vector<std::pair<aig::Var, bool>>& assignment) {
  std::vector<bool> pi_values(miter.num_pis(), false);
  for (const auto& [var, value] : assignment) {
    // Window inputs of global checks are PIs: var in [1, num_pis].
    if (var >= 1 && var <= miter.num_pis()) pi_values[var - 1] = value;
  }
  return pi_values;
}

}  // namespace simsweep::engine::detail
