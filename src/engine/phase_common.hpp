#pragma once
/// \file phase_common.hpp
/// \brief Internal helpers shared by the engine's phase implementations.

#include <vector>

#include "aig/aig.hpp"
#include "engine/engine.hpp"
#include "exhaustive/exhaustive_sim.hpp"
#include "sim/ec_manager.hpp"
#include "window/window_merge.hpp"

namespace simsweep::engine::detail {

/// Expands a sparse window-input CEX (PI variables only) into a complete
/// PI assignment; unassigned PIs default to 0, which is sound because the
/// mismatching pattern fixes only the support variables the roots can
/// depend on.
inline std::vector<bool> expand_cex(
    const aig::Aig& miter,
    const std::vector<std::pair<aig::Var, bool>>& assignment) {
  std::vector<bool> pi_values(miter.num_pis(), false);
  for (const auto& [var, value] : assignment) {
    // Window inputs of global checks are PIs: var in [1, num_pis].
    if (var >= 1 && var <= miter.num_pis()) pi_values[var - 1] = value;
  }
  return pi_values;
}

// --- Phase-side metric publishing (DESIGN.md §2.3). ctx.obs is never null
// inside a phase (check_miter installs a private registry when the caller
// provided none), and all of these run on the host thread at batch/phase
// boundaries — never inside a pool worker body.

/// Publishes one merge_windows() run under `exhaustive.merge.*`.
inline void publish_merge_stats(EngineContext& ctx,
                                const window::MergeStats& ms) {
  obs::Registry& r = *ctx.obs;
  r.add("exhaustive.merge.runs");
  r.add("exhaustive.merge.windows_before", ms.windows_before);
  r.add("exhaustive.merge.windows_after", ms.windows_after);
  r.add("exhaustive.merge.sim_nodes_before", ms.sim_nodes_before);
  r.add("exhaustive.merge.sim_nodes_after", ms.sim_nodes_after);
  r.add("exhaustive.merge.merge_groups", ms.merge_groups);
  r.add("exhaustive.merge.windows_merged", ms.windows_merged);
  r.add("exhaustive.merge.rejected_capacity", ms.rejected_capacity);
  r.add("exhaustive.merge.rejected_similarity", ms.rejected_similarity);
  r.add("exhaustive.merge.build_failures", ms.build_failures);
}

/// Records one miter rebuild under `miter.*` (called at every rebuild
/// site with the AND counts on both sides).
inline void note_rebuild(EngineContext& ctx, std::size_t ands_before,
                         std::size_t ands_after) {
  obs::Registry& r = *ctx.obs;
  r.add("miter.rebuilds");
  r.add("miter.ands_before", ands_before);
  r.add("miter.ands_after", ands_after);
  if (ands_before > ands_after)
    r.add("miter.ands_removed", ands_before - ands_after);
}

/// Records one sim::simulate() sweep under `partial_sim.*`.
inline void note_partial_sim(EngineContext& ctx, std::size_t bank_words) {
  ctx.obs->add("partial_sim.simulate_calls");
  ctx.obs->add("partial_sim.pattern_words", bank_words);
}

/// Publishes the deltas an EcManager accumulated since `since` under
/// `ec.*` (each phase owns its manager, so publishing its lifetime stats
/// once at phase end never double counts; `since` supports the G phase's
/// per-iteration incremental publishing).
inline void publish_ec_stats(EngineContext& ctx, const sim::EcStats& now,
                             const sim::EcStats& since = {}) {
  obs::Registry& r = *ctx.obs;
  r.add("ec.builds", now.builds - since.builds);
  r.add("ec.refines", now.refines - since.refines);
  r.add("ec.classes_built", now.classes_built - since.classes_built);
  r.add("ec.class_splits", now.class_splits - since.class_splits);
  r.add("ec.classes_dissolved",
        now.classes_dissolved - since.classes_dissolved);
}

}  // namespace simsweep::engine::detail
