/// \file phase_global.cpp
/// \brief G phase: global function checking (paper §III-D).
///
/// Equivalence classes are initialized by partial random simulation; then
/// candidate pairs whose support-union size is at most k_g are proved or
/// disproved by exhaustive simulation of their global functions, with
/// window merging (k_s = k_g) amortizing overlapping cones. CEXs of
/// disproved pairs are fed back into the pattern bank to refine the
/// classes, which exposes new candidate pairs; the loop repeats until no
/// eligible pair remains or no progress is made. Proved pairs are merged
/// by one miter rebuild at the end of the phase.

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "engine/phase_common.hpp"
#include "obs/metric_names.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/ec_manager.hpp"
#include "sim/quality_patterns.hpp"
#include "window/window_merge.hpp"

namespace simsweep::engine::detail {

std::size_t run_global_phase(EngineContext& ctx, unsigned k_g) {
  Timer t;
  const EngineParams& p = ctx.params;
  aig::Aig& miter = ctx.miter;

  const aig::SupportInfo supports = aig::compute_supports(miter, k_g);

  if (!ctx.bank) {
    if (p.initial_bank != nullptr &&
        p.initial_bank->num_pis() == miter.num_pis()) {
      // Resume entry (DESIGN.md §2.8): the crashed run's accumulated
      // patterns (random init + CEXs) re-derive its equivalence classes.
      ctx.bank = *p.initial_bank;
    } else if (p.quality_patterns) {
      sim::QualityParams qp;
      qp.base_words = p.sim_words;
      qp.max_words = p.sim_words + 4;
      qp.seed = p.seed;
      ctx.bank = sim::quality_patterns(miter, qp);
    } else {
      ctx.bank =
          sim::PatternBank::random(miter.num_pis(), p.sim_words, p.seed);
    }
  }
  // Incremental entry (DESIGN.md §2.7): the engine-wide signature/class
  // state is brought up to date with (miter, bank) — a cheap delta when
  // state was carried from the previous phase, a full re-simulation on
  // the first phase or after a carry-over fallback. EC stats are deltas
  // against phase entry because the manager now lives across phases.
  const aig::LevelSchedule* sched = level_schedule(ctx);
  const sim::CarryStats cs_entry = ctx.inc.stats();
  const sim::EcStats ec_entry = ctx.inc.ec().stats();
  sim::EcManager& ec = ctx.inc.sync(miter, *ctx.bank, sched);
  note_sync(ctx, cs_entry);
  SIMSWEEP_LOG_INFO("G phase: %zu initial equivalence classes",
                    ec.num_classes());

  aig::SubstitutionMap subst(miter.num_nodes());

  // Per-phase deadline (DESIGN.md §2.4): expiry finishes the phase early
  // with whatever was proved so far — the rest stays soundly undecided.
  const fault::Deadline deadline = fault::Deadline::after(p.phase_time_limit);
  bool phase_expired = false;

  for (unsigned iter = 0; iter < p.max_global_iters && !phase_expired;
       ++iter) {
    // Eligible candidate pairs: support union within k_g.
    std::vector<sim::CandidatePair> eligible;
    std::vector<std::vector<aig::Var>> inputs_of;
    for (const sim::CandidatePair& pair : ec.candidate_pairs()) {
      if (!supports.small(pair.repr) || !supports.small(pair.node)) continue;
      std::vector<aig::Var> inputs = aig::sorted_union(
          supports.sets[pair.repr], supports.sets[pair.node]);
      if (inputs.size() > k_g) continue;
      if (inputs.empty()) continue;  // both constants: nothing to simulate
      eligible.push_back(pair);
      inputs_of.push_back(std::move(inputs));
    }
    if (eligible.empty()) break;
    ctx.obs->add(obs::metric::kEcEligiblePairs, eligible.size());

    // Window per pair, built in parallel.
    std::vector<std::optional<window::Window>> built(eligible.size());
    parallel::parallel_for_chunks(
        0, eligible.size(), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const sim::CandidatePair& pair = eligible[i];
            built[i] = window::build_window(
                miter, inputs_of[i],
                {window::CheckItem{aig::make_lit(pair.repr, pair.phase),
                                   aig::make_lit(pair.node),
                                   static_cast<std::uint32_t>(i)}},
                sched);
          }
        });
    std::vector<window::Window> windows;
    windows.reserve(eligible.size());
    for (auto& w : built)
      if (w) windows.push_back(std::move(*w));

    if (ctx.degrade.window_merging) {
      window::MergeStats ms;
      windows = window::merge_windows(miter, std::move(windows), k_g, &ms);
      publish_merge_stats(ctx, ms);
      SIMSWEEP_LOG_DEBUG("G merge: %zu -> %zu windows, %zu -> %zu sim nodes",
                         ms.windows_before, ms.windows_after,
                         ms.sim_nodes_before, ms.sim_nodes_after);
    }

    exhaustive::Params sim_params;
    sim_params.collect_cex = true;
    sim_params.max_cex = eligible.size();  // guarantee refinement splits
    sim_params.cancel = p.cancel;
    sim_params.obs = ctx.obs;
    sim_params.deadline = &deadline;

    std::size_t proved = 0, disproved = 0;
    sim::CexCollector collector(miter.num_pis());
    for (std::size_t lo = 0; lo < windows.size(); lo += p.max_batch_windows) {
      const std::size_t hi =
          std::min(windows.size(), lo + p.max_batch_windows);
      std::vector<window::Window> batch(
          std::make_move_iterator(windows.begin() + lo),
          std::make_move_iterator(windows.begin() + hi));
      const LadderOutcome ladder =
          run_batch_with_ladder(ctx, miter, std::move(batch), sim_params);
      if (ladder.cancelled) {  // outcomes invalid: finish the phase early
        publish_ec_stats(ctx, ec.stats(), ec_entry);
        if (!subst.empty()) apply_reduction(ctx, subst);
        ctx.stats.global_seconds += t.seconds();
        return subst.num_merged();
      }
      const exhaustive::BatchResult& result = ladder.result;
      for (const auto& [tag, status] : result.outcomes) {
        const sim::CandidatePair& pair = eligible[tag];
        if (status == exhaustive::ItemStatus::kProved) {
          if (subst.merge(pair.node, aig::make_lit(pair.repr, pair.phase))) {
            ec.mark_proved(pair.node);
            ++proved;
          }
        } else {
          ++disproved;
        }
      }
      for (const exhaustive::Cex& cex : result.cexes) {
        std::vector<std::pair<unsigned, bool>> pis;
        pis.reserve(cex.assignment.size());
        for (const auto& [var, value] : cex.assignment)
          if (var >= 1 && var <= miter.num_pis())
            pis.emplace_back(var - 1, value);
        collector.add(pis);
        if (p.distance1_cex) {
          // §V extension: also simulate every distance-1 neighbour of the
          // CEX (one support bit flipped), a cheap way to split classes
          // that the exact CEX pattern alone would not distinguish.
          for (std::size_t flip = 0; flip < pis.size(); ++flip) {
            std::vector<std::pair<unsigned, bool>> nb = pis;
            nb[flip].second = !nb[flip].second;
            collector.add(nb);
          }
        }
      }
      if (ladder.deadline_expired) {  // keep proofs, stop checking
        phase_expired = true;
        break;
      }
    }
    ctx.stats.pairs_proved_global += proved;
    ctx.stats.pairs_disproved += disproved;
    ctx.stats.cex_count += collector.num_cexes();
    ctx.obs->add(obs::metric::kEcPairsProved, proved);
    ctx.obs->add(obs::metric::kEcPairsDisproved, disproved);
    ctx.obs->add(obs::metric::kEcCexsAbsorbed, collector.num_cexes());
    SIMSWEEP_LOG_INFO("G iter %u: %zu proved, %zu disproved (%zu CEX)", iter,
                      proved, disproved, collector.num_cexes());

    if (collector.empty()) break;  // nothing left to refine

    // Refinement round (DESIGN.md §2.7): the CEX columns are appended to
    // the engine-wide bank (batched — a single amortized append) and the
    // incremental state delta-simulates ONLY those new columns, refining
    // the classes in the same step. Before the incremental layer this
    // round simulated a scratch bank over the whole miter AND re-copied
    // the full bank per column.
    collector.flush_into(*ctx.bank);
    const std::size_t dropped = ctx.bank->truncate_front(p.max_pattern_words);
    if (dropped > 0) {
      ctx.obs->add(obs::metric::kPartialSimBankTruncations);
      ctx.obs->add(obs::metric::kPartialSimWordsDropped, dropped);
    }
    const sim::CarryStats cs_round = ctx.inc.stats();
    ctx.inc.sync(miter, *ctx.bank, sched);
    note_sync(ctx, cs_round);
  }

  const std::size_t merged = subst.num_merged();
  publish_ec_stats(ctx, ec.stats(), ec_entry);
  if (!subst.empty()) apply_reduction(ctx, subst);
  ctx.stats.global_seconds += t.seconds();
  return merged;
}

}  // namespace simsweep::engine::detail
