/// \file phase_local.cpp
/// \brief L phase: local function checking (paper §III-C, §III-D).
///
/// One L phase re-initializes the equivalence classes on the current
/// (reduced) miter, then runs up to three cut-generation-and-checking
/// passes with different cut-selection priorities (paper Table I) over the
/// same candidate pairs. Pairs proved by any pass are merged in a single
/// miter rebuild at the end of the phase. Because the miter structure
/// changes after reduction, the next L phase generates different cuts,
/// giving failed pairs new chances (paper §III-D).

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>

#include "aig/rebuild.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "cut/checking_pass.hpp"
#include "engine/phase_common.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"
#include "sim/ec_manager.hpp"

namespace simsweep::engine::detail {

namespace {

/// Publishes one Table I pass under `cut.pass<n>.*` plus the shared
/// enumeration-level histogram (`cut.level_hist.b<k>`, log2 buckets).
void publish_pass_stats(EngineContext& ctx, unsigned pass_index,
                        const cut::PassStats& s) {
  obs::Registry& r = *ctx.obs;
  char prefix[24];
  std::snprintf(prefix, sizeof prefix, "%s%u.", obs::metric::kCutPassPrefix,
                pass_index + 1);
  const auto name = [&](const char* leaf) {
    return std::string(prefix) + leaf;
  };
  r.add(name("runs"));
  r.add(name("common_cuts"), s.common_cuts);
  r.add(name("checks"), s.checks);
  r.add(name("flushes"), s.flushes);
  r.add(name("proved"), s.proved);
  r.add(name("cuts_enumerated"), s.cuts_enumerated);
  r.add(name("cuts_selected"), s.cuts_selected);
  r.add(name("levels"), s.levels);
  // Hit rate of the pass's exhaustive cut checks, cumulative across runs
  // (recomputed from the registry's own counters so it stays consistent).
  // Direct counter reads: taking a full Registry::snapshot() per pass
  // copied every metric in the registry just to read these two cells.
  const double checks = static_cast<double>(r.counter(name("checks")).value());
  const double proved = static_cast<double>(r.counter(name("proved")).value());
  r.set(name("hit_rate"), checks > 0 ? proved / checks : 0.0);
  for (std::size_t b = 0; b < s.level_hist.size(); ++b) {
    if (s.level_hist[b] == 0) continue;
    char leaf[40];
    std::snprintf(leaf, sizeof leaf, "%s%u", obs::metric::kCutLevelHistPrefix,
                  static_cast<unsigned>(b));
    r.add(leaf, s.level_hist[b]);
  }
}

}  // namespace

bool run_local_phase(EngineContext& ctx) {
  Timer t;
  const EngineParams& p = ctx.params;
  aig::Aig& miter = ctx.miter;

  if (!ctx.bank) {
    // Resume entry (DESIGN.md §2.8) mirrors phase_global.cpp: a restored
    // bank takes precedence over a fresh random one.
    if (p.initial_bank != nullptr &&
        p.initial_bank->num_pis() == miter.num_pis())
      ctx.bank = *p.initial_bank;
    else
      ctx.bank =
          sim::PatternBank::random(miter.num_pis(), p.sim_words, p.seed);
  }
  // Incremental entry (DESIGN.md §2.7): classes carried over from the
  // previous phase's rebuild (or delta-refined) instead of a full
  // re-simulation + fresh build; EC stats publish as deltas since the
  // manager lives across phases.
  const aig::LevelSchedule* sched = level_schedule(ctx);
  const sim::CarryStats cs_entry = ctx.inc.stats();
  const sim::EcStats ec_entry = ctx.inc.ec().stats();
  sim::EcManager& ec = ctx.inc.sync(miter, *ctx.bank, sched);
  note_sync(ctx, cs_entry);
  publish_ec_stats(ctx, ec.stats(), ec_entry);

  std::vector<cut::PairTask> tasks;
  for (const sim::CandidatePair& pair : ec.candidate_pairs()) {
    if (!miter.is_and(pair.node)) continue;  // PIs host no cuts
    tasks.push_back(cut::PairTask{pair.repr, pair.node, pair.phase});
  }
  if (tasks.empty()) {
    ctx.stats.local_seconds += t.seconds();
    return false;
  }
  SIMSWEEP_LOG_INFO("L phase: %zu candidate pairs", tasks.size());

  // Per-phase deadline (DESIGN.md §2.4): an expired pass keeps its proofs
  // and the remaining passes of this phase are skipped.
  const fault::Deadline deadline = fault::Deadline::after(p.phase_time_limit);

  cut::PassParams pass_params;
  pass_params.enum_params.cut_size = p.k_l;
  pass_params.enum_params.num_cuts = p.num_cuts;
  pass_params.buffer_capacity = p.cut_buffer_capacity;
  pass_params.max_cuts_per_pair = p.max_cuts_per_pair;
  pass_params.sim_params.cancel = p.cancel;
  pass_params.sim_params.obs = ctx.obs;
  pass_params.sim_params.deadline = &deadline;
  pass_params.sim_params.ledger = ctx.ledger;
  pass_params.max_fault_retries = p.max_fault_retries;
  pass_params.min_memory_words = p.min_memory_words;
  pass_params.schedule = sched;

  std::vector<std::uint8_t> proved(tasks.size(), 0);
  static constexpr cut::Pass kPasses[3] = {
      cut::Pass::kFanout, cut::Pass::kSmallLevel, cut::Pass::kLargeLevel};
  bool phase_expired = false;
  for (unsigned i = 0; i < 3 && !phase_expired; ++i) {
    if (!ctx.active_passes[i]) continue;
    // Per-pass parameter reset: retry backoff below shrinks cut_size /
    // buffer_capacity for THIS pass only — each pass starts from the
    // configured values again (only memory degradation, which tracks a
    // process-wide pressure, sticks in ctx.degrade.memory_words).
    pass_params.enum_params.cut_size = p.k_l;
    pass_params.buffer_capacity = p.cut_buffer_capacity;
    // Degradation ladder around a whole pass: a pass that faults (cut
    // buffer overflow injection, OOM outside the batch path) is retried
    // with smaller cuts and a smaller buffer; after the retry budget the
    // pass is skipped — its unproved pairs stay soundly undecided.
    std::optional<cut::PassResult> result;
    unsigned retries_taken = 0;
    for (unsigned retry = 0;; ++retry) {
      pass_params.sim_params.memory_words = ctx.degrade.memory_words;
      try {
        result = cut::run_checking_pass(miter, tasks, kPasses[i],
                                        pass_params, &proved);
        break;
      } catch (const std::bad_alloc&) {
      } catch (const fault::FaultError&) {
      }
      if (retry >= p.max_fault_retries) {
        ++ctx.degrade.units_abandoned;
        ++ctx.degrade.ladder_steps;
        break;
      }
      ++ctx.degrade.pass_retries;
      ++ctx.degrade.ladder_steps;
      ++retries_taken;
      pass_params.enum_params.cut_size =
          std::max(2u, pass_params.enum_params.cut_size - 2);
      pass_params.buffer_capacity =
          std::max<std::size_t>(256, pass_params.buffer_capacity / 2);
      if (ctx.degrade.memory_words / 2 >= p.min_memory_words) {
        ctx.degrade.memory_words /= 2;
        ++ctx.degrade.memory_halvings;
      }
    }
    // Retries only count as recovered when the pass eventually succeeded;
    // an abandoned pass's retries recovered nothing.
    if (result) ctx.degrade.faults_recovered += retries_taken;
    if (!result) continue;  // pass abandoned
    proved = result->proved;
    SIMSWEEP_LOG_INFO("L pass %u: %zu proved (%zu cut checks, %zu flushes)",
                      i + 1, result->stats.proved, result->stats.checks,
                      result->stats.flushes);
    publish_pass_stats(ctx, i, result->stats);
    // Fold the pass's internal flush-ladder activity into the run state.
    // Halvings count as recovered only when their flush succeeded (the
    // halvings_recovered subset); flushes that halved and still abandoned
    // their checks recovered nothing.
    if (result->stats.ladder_steps > 0) {
      ctx.degrade.ladder_steps += result->stats.ladder_steps;
      ctx.degrade.memory_halvings += result->stats.ladder_steps;
      ctx.degrade.faults_recovered += result->stats.halvings_recovered;
      for (std::size_t h = 0; h < result->stats.ladder_steps; ++h)
        if (ctx.degrade.memory_words / 2 >= p.min_memory_words)
          ctx.degrade.memory_words /= 2;
    }
    ctx.degrade.units_abandoned += result->stats.checks_abandoned;
    if (result->stats.deadline_expired) {
      phase_expired = true;
      ++ctx.degrade.deadline_expiries;
    }
    // Paper §V: disable passes found ineffective on this case.
    if (p.adaptive_passes && result->stats.proved == 0)
      ctx.active_passes[i] = false;
  }

  aig::SubstitutionMap subst(miter.num_nodes());
  std::size_t merged = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (proved[i] &&
        subst.merge(tasks[i].node,
                    aig::make_lit(tasks[i].repr, tasks[i].phase)))
      ++merged;
  ctx.stats.pairs_proved_local += merged;

  if (merged == 0) {
    ctx.stats.local_seconds += t.seconds();
    return false;
  }
  const std::size_t before = miter.num_ands();
  apply_reduction(ctx, subst);
  SIMSWEEP_LOG_INFO("L phase reduced miter: %zu -> %zu AND nodes", before,
                    ctx.miter.num_ands());
  ctx.stats.local_seconds += t.seconds();
  return true;
}

}  // namespace simsweep::engine::detail
