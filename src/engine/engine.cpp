#include "engine/engine.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/log.hpp"
#include "common/timer.hpp"

namespace simsweep::engine {

EngineResult SimCecEngine::check_miter(aig::Aig miter) const {
  Timer total;

  // Watchdog: folds the optional wall-clock budget and the caller's
  // cancellation flag into one flag polled by every phase checkpoint.
  //
  // Shared mutable state of this function (annotation audit): `stop` is
  // written by the watchdog thread and read (relaxed) by the host thread
  // and pool workers via effective.cancel — a monotonic latch, so relaxed
  // order suffices and no lock is needed. `done` is the host-to-watchdog
  // shutdown latch; the join() below provides the final happens-before
  // edge, so everything the watchdog wrote is visible before finish()
  // returns. `total` (Timer) is written once at construction and only
  // read concurrently afterwards.
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::thread watchdog;
  EngineParams effective = params_;
  if (params_.time_limit > 0 || params_.cancel != nullptr) {
    effective.cancel = &stop;
    // Seed the folded flag synchronously: if the caller cancelled before
    // the call, no phase may run at all (the watchdog alone would leave a
    // 20 ms window in which a fast miter could still be decided).
    if (params_.cancel != nullptr &&
        params_.cancel->load(std::memory_order_relaxed))
      stop.store(true, std::memory_order_relaxed);
    watchdog = std::thread([&] {
      while (!done.load(std::memory_order_relaxed)) {
        if (params_.cancel != nullptr &&
            params_.cancel->load(std::memory_order_relaxed))
          stop.store(true, std::memory_order_relaxed);
        if (params_.time_limit > 0 && total.seconds() > params_.time_limit)
          stop.store(true, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  detail::EngineContext ctx{effective, std::move(miter), {}, {}, {},
                            false,     {},               params_.local_passes};
  ctx.stats.initial_ands = ctx.miter.num_ands();
  ctx.stats.pos_total = ctx.miter.num_pos();

  EngineResult result;
  auto finish = [&](Verdict verdict) {
    done.store(true, std::memory_order_relaxed);
    if (watchdog.joinable()) watchdog.join();
    ctx.stats.final_ands = ctx.miter.num_ands();
    ctx.stats.total_seconds = total.seconds();
    result.verdict = verdict;
    result.reduced = std::move(ctx.miter);
    result.cex = std::move(ctx.cex);
    result.stats = ctx.stats;
    result.snapshots = std::move(ctx.snapshots);
    result.bank = std::move(ctx.bank);
    return result;
  };

  // A structurally solved (or refuted) miter needs no phases at all.
  if (aig::miter_disproved(ctx.miter)) return finish(Verdict::kNotEquivalent);
  if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);

  auto cancelled = [&] {
    return ctx.params.cancel != nullptr &&
           ctx.params.cancel->load(std::memory_order_relaxed);
  };
  if (cancelled()) return finish(Verdict::kUndecided);

  // --- P phase: PO checking (paper §III-D). ---
  if (params_.enable_po_phase) {
    const bool ok = detail::run_po_phase(ctx);
    if (params_.capture_snapshots) ctx.snapshots.emplace_back("P", ctx.miter);
    if (!ok) return finish(Verdict::kNotEquivalent);
    if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
  } else if (params_.capture_snapshots) {
    ctx.snapshots.emplace_back("P", ctx.miter);
  }

  if (cancelled()) return finish(Verdict::kUndecided);

  // --- G phase: global function checking. ---
  if (params_.enable_global_phase)
    detail::run_global_phase(ctx, params_.k_g);
  if (params_.capture_snapshots) ctx.snapshots.emplace_back("PG", ctx.miter);
  if (params_.enable_global_phase) {
    if (ctx.disproved || aig::miter_disproved(ctx.miter))
      return finish(Verdict::kNotEquivalent);
    if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
  }

  if (cancelled()) return finish(Verdict::kUndecided);

  // --- Repeated L phases, with graduated global-checking escalation. ---
  unsigned k_g_current = params_.k_g;
  for (;;) {
    bool progress = false;
    for (unsigned phase = 0; phase < params_.max_local_phases; ++phase) {
      if (cancelled()) return finish(Verdict::kUndecided);
      const bool reduced = detail::run_local_phase(ctx);
      ++ctx.stats.local_phases;
      if (ctx.disproved || aig::miter_disproved(ctx.miter))
        return finish(Verdict::kNotEquivalent);
      if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
      progress |= reduced;
      if (!reduced) break;  // this L loop stalled
    }
    if (cancelled()) return finish(Verdict::kUndecided);
    // Escalation: raise the G threshold and retry globally. Note the loop
    // keeps iterating as long as *something* (L reduction, escalated G
    // proof) makes progress; it terminates because the AND count strictly
    // decreases on progress and the threshold is capped at k_P.
    const bool can_escalate = params_.escalate_global &&
                              params_.enable_global_phase &&
                              k_g_current < params_.k_P;
    if (can_escalate) {
      k_g_current = std::min(k_g_current + params_.k_g_step, params_.k_P);
      SIMSWEEP_LOG_INFO("escalating global checking to k_g=%u",
                        k_g_current);
      const std::size_t proved =
          detail::run_global_phase(ctx, k_g_current);
      if (ctx.disproved || aig::miter_disproved(ctx.miter))
        return finish(Verdict::kNotEquivalent);
      if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
      progress |= proved > 0;
    }
    if (!progress && !can_escalate) break;  // fully stalled
  }
  SIMSWEEP_LOG_INFO("engine undecided: %zu AND nodes remain",
                    ctx.miter.num_ands());
  return finish(Verdict::kUndecided);
}

}  // namespace simsweep::engine
