#include "engine/engine.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include <algorithm>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"
#include "parallel/thread_pool.hpp"

namespace simsweep::engine {

/// Engine-level gauges, published with set semantics: when a chain of
/// attempts shares one registry the caller republishes its merged stats
/// last, so the final snapshot shows chain totals.
void publish_engine_stats(obs::Registry& r, const EngineStats& s) {
  r.set(obs::metric::kEnginePoSeconds, s.po_seconds);
  r.set(obs::metric::kEngineGlobalSeconds, s.global_seconds);
  r.set(obs::metric::kEngineLocalSeconds, s.local_seconds);
  r.set(obs::metric::kEngineOtherSeconds, s.other_seconds);
  r.set(obs::metric::kEngineTotalSeconds, s.total_seconds);
  r.set(obs::metric::kEngineInitialAnds, static_cast<double>(s.initial_ands));
  r.set(obs::metric::kEngineFinalAnds, static_cast<double>(s.final_ands));
  r.set(obs::metric::kEnginePosTotal, static_cast<double>(s.pos_total));
  r.set(obs::metric::kEnginePosProved, static_cast<double>(s.pos_proved));
  r.set(obs::metric::kEnginePairsProvedGlobal,
        static_cast<double>(s.pairs_proved_global));
  r.set(obs::metric::kEnginePairsProvedLocal,
        static_cast<double>(s.pairs_proved_local));
  r.set(obs::metric::kEnginePairsDisproved, static_cast<double>(s.pairs_disproved));
  r.set(obs::metric::kEngineCexCount, static_cast<double>(s.cex_count));
  r.set(obs::metric::kEngineLocalPhases, static_cast<double>(s.local_phases));
  r.set(obs::metric::kEngineReductionPercent, s.reduction_percent());
}

void accumulate_attempt_stats(EngineStats& next, const EngineStats& prev) {
  next.po_seconds += prev.po_seconds;
  next.global_seconds += prev.global_seconds;
  next.local_seconds += prev.local_seconds;
  next.other_seconds += prev.other_seconds;
  next.total_seconds += prev.total_seconds;
  // The chain starts from the first attempt's miter: its initial size and
  // PO count are the ones reduction_percent() must be measured against.
  next.initial_ands = prev.initial_ands;
  next.pos_total = prev.pos_total;
  // final_ands stays next's own (the latest reduction state).
  next.pos_proved += prev.pos_proved;
  next.pairs_proved_global += prev.pairs_proved_global;
  next.pairs_proved_local += prev.pairs_proved_local;
  next.pairs_disproved += prev.pairs_disproved;
  next.cex_count += prev.cex_count;
  next.local_phases += prev.local_phases;
}

EngineResult SimCecEngine::check_miter(aig::Aig miter) const {
  Timer total;

  // Watchdog: folds the optional wall-clock budget and the caller's
  // cancellation flag into one flag polled by every phase checkpoint.
  //
  // Shared mutable state of this function (annotation audit): `stop` is
  // written by the watchdog thread and read (relaxed) by the host thread
  // and pool workers via effective.cancel — a monotonic latch, so relaxed
  // order suffices and no lock is needed. `done` is the host-to-watchdog
  // shutdown latch; the join() below provides the final happens-before
  // edge, so everything the watchdog wrote is visible before finish()
  // returns. `total` (Timer) is written once at construction and only
  // read concurrently afterwards.
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  // audit:exempt(dedicated watchdog thread: it must keep ticking while
  // the pool is saturated by the job it supervises)
  std::thread watchdog;
  EngineParams effective = params_;
  if (params_.time_limit > 0 || params_.cancel != nullptr) {
    effective.cancel = &stop;
    // Seed the folded flag synchronously: if the caller cancelled before
    // the call, no phase may run at all (the watchdog alone would leave a
    // 20 ms window in which a fast miter could still be decided).
    if (params_.cancel != nullptr &&
        params_.cancel->load(std::memory_order_relaxed))
      stop.store(true, std::memory_order_relaxed);
    // audit:exempt(see watchdog declaration above)
    watchdog = std::thread([&] {
      while (!done.load(std::memory_order_relaxed)) {
        if (params_.cancel != nullptr &&
            params_.cancel->load(std::memory_order_relaxed))
          stop.store(true, std::memory_order_relaxed);
        if (params_.time_limit > 0 && total.seconds() > params_.time_limit)
          stop.store(true, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  detail::EngineContext ctx{effective, std::move(miter), {}, {}, {},
                            false,     {},               params_.local_passes};
  ctx.stats.initial_ands = ctx.miter.num_ands();
  ctx.stats.pos_total = ctx.miter.num_pos();

  // Resource governor (DESIGN.md §2.4): the ladder's working parameters
  // start from the configured ones, and the memory ledger is either the
  // caller's (portfolio-shared budget) or a run-private one.
  ctx.degrade.memory_words = params_.memory_words;
  ctx.degrade.window_merging = params_.window_merging;
  // Incremental simulation A/B lever (DESIGN.md §2.7): disabled, every
  // sync() re-simulates the whole bank and rebuilds classes from scratch.
  ctx.inc.set_enabled(params_.incremental_sim);
  std::optional<fault::MemoryLedger> local_ledger;
  if (params_.memory_ledger != nullptr)
    ctx.ledger = params_.memory_ledger;
  else if (params_.memory_budget_bytes > 0)
    ctx.ledger = &local_ledger.emplace(params_.memory_budget_bytes);
  // Fault-injection telemetry baseline: finish() publishes the delta of
  // process-wide injected fires over this run as `faults.injected`.
  const std::uint64_t fault_fires_before = fault::fires_total();
  const auto site_fires_before = fault::active_fire_counts();

  // Metrics sink: the caller's registry when provided (shared across
  // attempts), else a private one so result.report is always populated.
  obs::Registry local_registry;
  obs::Registry& registry =
      params_.registry != nullptr ? *params_.registry : local_registry;
  ctx.obs = &registry;

  EngineResult result;
  auto finish = [&](Verdict verdict) {
    done.store(true, std::memory_order_relaxed);
    if (watchdog.joinable()) watchdog.join();
    ctx.stats.final_ands = ctx.miter.num_ands();
    ctx.stats.total_seconds = total.seconds();
    // Everything outside the three phase timers: simulation init, EC
    // building, rebuilds, watchdog setup. Clamped at 0 against timer skew.
    ctx.stats.other_seconds = std::max(
        0.0, ctx.stats.total_seconds -
                 (ctx.stats.po_seconds + ctx.stats.global_seconds +
                  ctx.stats.local_seconds));
    publish_engine_stats(registry, ctx.stats);
    parallel::ThreadPool::global().publish(registry);
    // Fault & degradation sections (DESIGN.md §2.4). Published even when
    // all-zero so every v2 report carries both sections; counter add
    // semantics accumulate across shared-registry attempt chains.
    registry.add(obs::metric::kFaultsInjected,
                 fault::fires_total() - fault_fires_before);
    registry.add(obs::metric::kFaultsRecovered, ctx.degrade.faults_recovered);
    for (const auto& [site, fires] : fault::active_fire_counts()) {
      std::uint64_t before = 0;
      for (const auto& [s0, f0] : site_fires_before)
        if (s0 == site) before = f0;
      if (fires > before)
        registry.add(obs::metric::kFaultsSitePrefix + site, fires - before);
    }
    registry.add(obs::metric::kDegradeLadderSteps, ctx.degrade.ladder_steps);
    registry.add(obs::metric::kDegradeMemoryHalvings, ctx.degrade.memory_halvings);
    registry.add(obs::metric::kDegradeMergeFallbacks, ctx.degrade.merge_fallbacks);
    registry.add(obs::metric::kDegradeBatchSplits, ctx.degrade.batch_splits);
    registry.add(obs::metric::kDegradeDeadlineExpiries, ctx.degrade.deadline_expiries);
    registry.add(obs::metric::kDegradeUnitsAbandoned, ctx.degrade.units_abandoned);
    registry.add(obs::metric::kDegradePassRetries, ctx.degrade.pass_retries);
    // Incremental carry-over section (DESIGN.md §2.7). Published even when
    // all-zero so every report carries the partial_sim.carryover family.
    const sim::CarryStats& cs = ctx.inc.stats();
    registry.add(obs::metric::kPartialSimIncrementalWords,
                 cs.incremental_words);
    registry.add(obs::metric::kPartialSimFullResims, cs.full_resims);
    registry.add(obs::metric::kPartialSimCarryClasses, cs.carry_classes);
    registry.add(obs::metric::kPartialSimCarryDropped, cs.carry_dropped);
    registry.add(obs::metric::kPartialSimCarryFallbacks, cs.carry_fallbacks);
    // Checkpoint/supervisor sections (DESIGN.md §2.8). Zero-added like
    // the faults/degrade sections above so every v3 report carries both
    // families; the ckpt layer and the cec_tool supervisor add the real
    // event counts.
    registry.add(obs::metric::kCkptWrites, 0);
    registry.add(obs::metric::kSupervisorRestarts, 0);
    if (ctx.ledger != nullptr) {
      registry.set(obs::metric::kDegradeMemoryPeakBytes,
                   static_cast<double>(ctx.ledger->peak_bytes()));
      registry.set(obs::metric::kDegradeMemoryDenials,
                   static_cast<double>(ctx.ledger->denials()));
    }
    result.report = registry.snapshot();
    result.verdict = verdict;
    result.reduced = std::move(ctx.miter);
    result.cex = std::move(ctx.cex);
    result.stats = ctx.stats;
    result.snapshots = std::move(ctx.snapshots);
    result.bank = std::move(ctx.bank);
    return result;
  };

  // A structurally solved (or refuted) miter needs no phases at all.
  if (aig::miter_disproved(ctx.miter)) return finish(Verdict::kNotEquivalent);
  if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);

  auto cancelled = [&] {
    return ctx.params.cancel != nullptr &&
           ctx.params.cancel->load(std::memory_order_relaxed);
  };
  if (cancelled()) return finish(Verdict::kUndecided);

  // Phase-boundary checkpoint offer (DESIGN.md §2.8): a transient view of
  // the host-thread state, handed to the caller's hook. Any exception the
  // hook lets escape is swallowed — checkpointing is strictly best-effort
  // and must never change the verdict.
  auto offer_checkpoint = [&](const char* boundary) {
    if (!params_.checkpoint_hook) return;
    EngineCheckpointView view;
    view.miter = &ctx.miter;
    view.bank = ctx.bank ? &*ctx.bank : nullptr;
    view.stats = &ctx.stats;
    view.degrade = &ctx.degrade;
    view.boundary = boundary;
    try {
      params_.checkpoint_hook(view);
    } catch (...) {
    }
  };

  // --- P phase: PO checking (paper §III-D). ---
  if (params_.enable_po_phase) {
    const bool ok = detail::run_po_phase(ctx);
    if (params_.capture_snapshots) ctx.snapshots.emplace_back("P", ctx.miter);
    if (!ok) return finish(Verdict::kNotEquivalent);
    if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
  } else if (params_.capture_snapshots) {
    ctx.snapshots.emplace_back("P", ctx.miter);
  }
  offer_checkpoint("P");

  if (cancelled()) return finish(Verdict::kUndecided);

  // --- G phase: global function checking. ---
  if (params_.enable_global_phase)
    detail::run_global_phase(ctx, params_.k_g);
  if (params_.capture_snapshots) ctx.snapshots.emplace_back("PG", ctx.miter);
  if (params_.enable_global_phase) {
    if (ctx.disproved || aig::miter_disproved(ctx.miter))
      return finish(Verdict::kNotEquivalent);
    if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
  }
  offer_checkpoint("G");

  if (cancelled()) return finish(Verdict::kUndecided);

  // --- Repeated L phases, with graduated global-checking escalation. ---
  unsigned k_g_current = params_.k_g;
  for (;;) {
    bool progress = false;
    for (unsigned phase = 0; phase < params_.max_local_phases; ++phase) {
      if (cancelled()) return finish(Verdict::kUndecided);
      const bool reduced = detail::run_local_phase(ctx);
      ++ctx.stats.local_phases;
      if (ctx.disproved || aig::miter_disproved(ctx.miter))
        return finish(Verdict::kNotEquivalent);
      if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
      offer_checkpoint("L");
      progress |= reduced;
      if (!reduced) break;  // this L loop stalled
    }
    if (cancelled()) return finish(Verdict::kUndecided);
    // Escalation: raise the G threshold and retry globally. Note the loop
    // keeps iterating as long as *something* (L reduction, escalated G
    // proof) makes progress; it terminates because the AND count strictly
    // decreases on progress and the threshold is capped at k_P.
    const bool can_escalate = params_.escalate_global &&
                              params_.enable_global_phase &&
                              k_g_current < params_.k_P;
    if (can_escalate) {
      k_g_current = std::min(k_g_current + params_.k_g_step, params_.k_P);
      SIMSWEEP_LOG_INFO("escalating global checking to k_g=%u",
                        k_g_current);
      const std::size_t proved =
          detail::run_global_phase(ctx, k_g_current);
      if (ctx.disproved || aig::miter_disproved(ctx.miter))
        return finish(Verdict::kNotEquivalent);
      if (aig::miter_proved(ctx.miter)) return finish(Verdict::kEquivalent);
      offer_checkpoint("G+");
      progress |= proved > 0;
    }
    if (!progress && !can_escalate) break;  // fully stalled
  }
  SIMSWEEP_LOG_INFO("engine undecided: %zu AND nodes remain",
                    ctx.miter.num_ands());
  return finish(Verdict::kUndecided);
}

}  // namespace simsweep::engine
