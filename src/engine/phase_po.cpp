/// \file phase_po.cpp
/// \brief P phase: PO checking (paper §III-D).
///
/// Attempts to prove all or a subset of *simulatable* miter POs constant
/// zero in terms of their global functions, before any internal sweeping,
/// so that the logic of proved POs is removed and all internal-pair
/// checking effort in that part of the miter is saved. A PO is simulatable
/// if its support size is within the phase budget: if ALL POs have support
/// <= k_P the whole miter is attempted one-shot; otherwise only POs with
/// support <= k_p are attempted (k_P > k_p; the two-threshold design
/// encourages one-shot proving when possible).

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "engine/phase_common.hpp"
#include "window/window_merge.hpp"

namespace simsweep::engine::detail {

bool run_po_phase(EngineContext& ctx) {
  Timer t;
  const EngineParams& p = ctx.params;
  aig::Aig& miter = ctx.miter;

  const aig::SupportInfo supports = aig::compute_supports(miter, p.k_P);

  // Decide the phase budget: one-shot (k_P) iff every PO is simulatable.
  bool all_small = true;
  for (aig::Lit po : miter.pos()) {
    const aig::Var v = aig::lit_var(po);
    if (v != 0 && !supports.small(v)) {
      all_small = false;
      break;
    }
  }
  const unsigned threshold = all_small ? p.k_P : p.k_p;
  const unsigned k_s = threshold;  // paper §IV: k_s = phase threshold

  // One window per simulatable, not-yet-constant PO.
  std::vector<window::Window> windows;
  for (std::size_t i = 0; i < miter.num_pos(); ++i) {
    const aig::Lit po = miter.po(i);
    const aig::Var v = aig::lit_var(po);
    if (v == 0) continue;  // constant PO handled by the engine driver
    if (!supports.small(v) || supports.sets[v].size() > threshold) continue;
    auto w = window::build_window(
        miter, supports.sets[v],
        {window::CheckItem{po, aig::kLitFalse,
                           static_cast<std::uint32_t>(i)}},
        level_schedule(ctx));
    if (w) windows.push_back(std::move(*w));
  }
  if (windows.empty()) {
    ctx.stats.po_seconds += t.seconds();
    return true;
  }

  if (ctx.degrade.window_merging) {
    window::MergeStats ms;
    windows = window::merge_windows(miter, std::move(windows), k_s, &ms);
    publish_merge_stats(ctx, ms);
    SIMSWEEP_LOG_DEBUG("P phase merge: %zu -> %zu windows",
                       ms.windows_before, ms.windows_after);
  }

  // Per-phase deadline (DESIGN.md §2.4): expiry routes the remaining POs
  // to the undecided path instead of cancelling the run.
  const fault::Deadline deadline = fault::Deadline::after(p.phase_time_limit);

  exhaustive::Params sim;
  sim.collect_cex = true;
  sim.max_cex = 1;  // the first PO disproof settles the whole problem
  sim.cancel = p.cancel;
  sim.obs = ctx.obs;
  sim.deadline = &deadline;

  aig::SubstitutionMap subst(miter.num_nodes());
  std::size_t proved = 0;
  for (std::size_t lo = 0; lo < windows.size(); lo += p.max_batch_windows) {
    const std::size_t hi =
        std::min(windows.size(), lo + p.max_batch_windows);
    std::vector<window::Window> batch(
        std::make_move_iterator(windows.begin() + lo),
        std::make_move_iterator(windows.begin() + hi));
    const LadderOutcome lo_result =
        run_batch_with_ladder(ctx, miter, std::move(batch), sim);
    if (lo_result.cancelled) break;  // outcomes invalid; stop proving POs
    const exhaustive::BatchResult& result = lo_result.result;
    for (const auto& [tag, status] : result.outcomes) {
      if (status == exhaustive::ItemStatus::kProved) {
        miter.set_po(tag, aig::kLitFalse);
        ++proved;
      } else {
        // A disproved PO is a real disproof: the inputs are PIs.
        ctx.disproved = true;
        ++ctx.stats.cex_count;
        for (const exhaustive::Cex& cex : result.cexes)
          if (cex.tag == tag) ctx.cex = expand_cex(miter, cex.assignment);
        ctx.stats.po_seconds += t.seconds();
        return false;
      }
    }
    if (lo_result.deadline_expired) break;  // remaining POs stay unproved
  }

  ctx.stats.pos_proved += proved;
  if (proved > 0) {
    // Drop the logic of proved POs (miter reduction).
    apply_reduction(ctx, subst);
  }
  SIMSWEEP_LOG_INFO("P phase: %zu/%zu POs proved (threshold %u)", proved,
                    ctx.stats.pos_total, threshold);
  ctx.stats.po_seconds += t.seconds();
  return true;
}

}  // namespace simsweep::engine::detail
