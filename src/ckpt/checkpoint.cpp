#include "ckpt/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"

namespace simsweep::ckpt {

namespace {

// Sanity bounds for shape checks: anything beyond these is a corrupt or
// hostile snapshot, not a real run (the largest suite miters are orders
// of magnitude smaller).
constexpr std::uint64_t kMaxPis = 1ull << 22;
constexpr std::uint64_t kMaxAnds = 1ull << 26;
constexpr std::uint64_t kMaxPos = 1ull << 20;
constexpr std::uint64_t kMaxBankWords = 1ull << 20;
constexpr std::uint64_t kMaxBoundaryLen = 32;
constexpr std::uint64_t kMaxRound = 1ull << 16;

const std::uint32_t* crc_table() {
  static std::uint32_t table[256];
  static const bool init = [] {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

/// Little-endian byte emitter.
struct Writer {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back((v >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back((v >> (8 * i)) & 0xFF);
  }
  void f64(double v) {
    std::uint64_t raw;
    static_assert(sizeof raw == sizeof v);
    std::memcpy(&raw, &v, sizeof raw);
    u64(raw);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
};

/// Bounds-checked little-endian reader: every accessor checks space and
/// latches `ok = false` instead of reading past the end, so the parser is
/// UB-free on arbitrary mutated input (checkpoint fuzz contract).
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t i = 0;
  bool ok = true;

  bool have(std::size_t k) {
    if (n - i < k) ok = false;
    return ok;
  }
  std::uint8_t u8() {
    if (!have(1)) return 0;
    return p[i++];
  }
  std::uint32_t u32() {
    if (!have(4)) return 0;
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) v |= std::uint32_t{p[i++]} << (8 * k);
    return v;
  }
  std::uint64_t u64() {
    if (!have(8)) return 0;
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= std::uint64_t{p[i++]} << (8 * k);
    return v;
  }
  double f64() {
    const std::uint64_t raw = u64();
    double v;
    std::memcpy(&v, &raw, sizeof v);
    return v;
  }
  std::string str(std::uint64_t max_len) {
    const std::uint32_t len = u32();
    if (len > max_len || !have(len)) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p + i), len);
    i += len;
    return s;
  }
};

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    out->insert(out->end(), buf, buf + n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const std::uint32_t* table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serialize(const Snapshot& s) {
  Writer w;
  w.bytes.insert(w.bytes.end(), kFormatId, kFormatId + sizeof kFormatId - 1);
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(s.stage));
  w.u64(s.fingerprint);
  w.f64(s.elapsed_seconds);
  w.str(s.boundary);

  const engine::EngineStats& es = s.engine_stats;
  w.f64(es.po_seconds);
  w.f64(es.global_seconds);
  w.f64(es.local_seconds);
  w.f64(es.other_seconds);
  w.f64(es.total_seconds);
  w.u64(es.initial_ands);
  w.u64(es.final_ands);
  w.u64(es.pos_total);
  w.u64(es.pos_proved);
  w.u64(es.pairs_proved_global);
  w.u64(es.pairs_proved_local);
  w.u64(es.pairs_disproved);
  w.u64(es.cex_count);
  w.u64(es.local_phases);

  const engine::DegradeState& d = s.degrade;
  w.u64(d.memory_words);
  w.u8(d.window_merging ? 1 : 0);
  w.u64(d.ladder_steps);
  w.u64(d.memory_halvings);
  w.u64(d.merge_fallbacks);
  w.u64(d.batch_splits);
  w.u64(d.deadline_expiries);
  w.u64(d.units_abandoned);
  w.u64(d.pass_retries);
  w.u64(d.faults_recovered);

  // Miter: PIs, then ANDs in variable order (fanin literals only — the
  // variable ids are implicit), then PO literals.
  const aig::Aig& g = s.miter;
  w.u32(g.num_pis());
  w.u64(g.num_ands());
  for (aig::Var v = g.num_pis() + 1; v < g.num_nodes(); ++v) {
    w.u32(g.fanin0(v));
    w.u32(g.fanin1(v));
  }
  w.u64(g.num_pos());
  for (aig::Lit po : g.pos()) w.u32(po);

  w.u8(s.bank ? 1 : 0);
  if (s.bank) {
    const sim::PatternBank& b = *s.bank;
    w.u32(b.num_pis());
    w.u64(b.num_words());
    for (std::size_t wd = 0; wd < b.num_words(); ++wd)
      for (unsigned pi = 0; pi < b.num_pis(); ++pi) w.u64(b.word(pi, wd));
  }

  w.u64(s.merges.size());
  for (const auto& [node, lit] : s.merges) {
    w.u32(node);
    w.u32(lit);
  }
  w.u64(s.removed.size());
  for (aig::Var v : s.removed) w.u32(v);
  w.u32(s.next_round);
  w.u64(s.sweep_pairs_proved);
  w.u64(s.sweep_pairs_disproved);
  w.u64(s.sweep_pairs_undecided);

  w.u32(crc32(w.bytes.data(), w.bytes.size()));
  return w.bytes;
}

std::optional<Snapshot> parse(const std::uint8_t* data, std::size_t size) {
  constexpr std::size_t kMagicLen = sizeof kFormatId - 1;
  if (data == nullptr || size < kMagicLen + 4 + 4) return std::nullopt;
  if (std::memcmp(data, kFormatId, kMagicLen) != 0) return std::nullopt;

  // CRC gate first: the trailer must re-derive over everything before it.
  std::uint32_t stored = 0;
  for (int k = 0; k < 4; ++k)
    stored |= std::uint32_t{data[size - 4 + k]} << (8 * k);
  if (crc32(data, size - 4) != stored) return std::nullopt;

  Reader r{data, size - 4, kMagicLen};
  if (r.u32() != kFormatVersion) return std::nullopt;

  Snapshot s;
  const std::uint32_t stage = r.u32();
  if (stage > static_cast<std::uint32_t>(Stage::kSweep)) return std::nullopt;
  s.stage = static_cast<Stage>(stage);
  s.fingerprint = r.u64();
  s.elapsed_seconds = r.f64();
  if (!(s.elapsed_seconds >= 0)) return std::nullopt;  // also rejects NaN
  s.boundary = r.str(kMaxBoundaryLen);

  engine::EngineStats& es = s.engine_stats;
  es.po_seconds = r.f64();
  es.global_seconds = r.f64();
  es.local_seconds = r.f64();
  es.other_seconds = r.f64();
  es.total_seconds = r.f64();
  es.initial_ands = r.u64();
  es.final_ands = r.u64();
  es.pos_total = r.u64();
  es.pos_proved = r.u64();
  es.pairs_proved_global = r.u64();
  es.pairs_proved_local = r.u64();
  es.pairs_disproved = r.u64();
  es.cex_count = r.u64();
  es.local_phases = r.u64();

  engine::DegradeState& d = s.degrade;
  d.memory_words = r.u64();
  d.window_merging = r.u8() != 0;
  d.ladder_steps = r.u64();
  d.memory_halvings = r.u64();
  d.merge_fallbacks = r.u64();
  d.batch_splits = r.u64();
  d.deadline_expiries = r.u64();
  d.units_abandoned = r.u64();
  d.pass_retries = r.u64();
  d.faults_recovered = r.u64();

  const std::uint32_t num_pis = r.u32();
  const std::uint64_t num_ands = r.u64();
  if (!r.ok || num_pis > kMaxPis || num_ands > kMaxAnds) return std::nullopt;
  // Structural round-trip rebuild: every AND must land on its recorded
  // variable (stored graphs are strash-canonical because they were built
  // through add_and, so an honest snapshot reproduces node-for-node; a
  // mutated one that folds or re-shares is rejected). This is what makes
  // a resumed verdict bit-identical — the miter is the same graph.
  aig::Aig g(num_pis);
  for (std::uint64_t a = 0; a < num_ands; ++a) {
    const aig::Var expected = static_cast<aig::Var>(num_pis + 1 + a);
    const aig::Lit f0 = r.u32();
    const aig::Lit f1 = r.u32();
    if (!r.ok || aig::lit_var(f0) >= expected || aig::lit_var(f1) >= expected)
      return std::nullopt;
    if (g.add_and(f0, f1) != aig::make_lit(expected)) return std::nullopt;
  }
  const std::uint64_t num_pos = r.u64();
  if (!r.ok || num_pos > kMaxPos) return std::nullopt;
  for (std::uint64_t o = 0; o < num_pos; ++o) {
    const aig::Lit po = r.u32();
    if (!r.ok || aig::lit_var(po) >= g.num_nodes()) return std::nullopt;
    g.add_po(po);
  }
  s.miter = std::move(g);

  if (r.u8() != 0) {
    const std::uint32_t bank_pis = r.u32();
    const std::uint64_t bank_words = r.u64();
    if (!r.ok || bank_pis != num_pis || bank_words > kMaxBankWords)
      return std::nullopt;
    if (!r.have(bank_words * bank_pis * 8)) return std::nullopt;
    sim::PatternBank b(bank_pis, bank_words);
    for (std::size_t wd = 0; wd < bank_words; ++wd)
      for (unsigned pi = 0; pi < bank_pis; ++pi) b.word(pi, wd) = r.u64();
    s.bank = std::move(b);
  }

  const std::uint64_t num_merges = r.u64();
  if (!r.ok || num_merges > s.miter.num_nodes()) return std::nullopt;
  s.merges.reserve(num_merges);
  for (std::uint64_t m = 0; m < num_merges; ++m) {
    const aig::Var node = r.u32();
    const aig::Lit lit = r.u32();
    if (!r.ok || node <= s.miter.num_pis() || node >= s.miter.num_nodes() ||
        aig::lit_var(lit) >= node)
      return std::nullopt;
    s.merges.emplace_back(node, lit);
  }
  const std::uint64_t num_removed = r.u64();
  if (!r.ok || num_removed > s.miter.num_nodes()) return std::nullopt;
  s.removed.reserve(num_removed);
  for (std::uint64_t m = 0; m < num_removed; ++m) {
    const aig::Var v = r.u32();
    if (!r.ok || v >= s.miter.num_nodes()) return std::nullopt;
    s.removed.push_back(v);
  }
  const std::uint32_t next_round = r.u32();
  if (!r.ok || next_round > kMaxRound) return std::nullopt;
  s.next_round = next_round;
  s.sweep_pairs_proved = r.u64();
  s.sweep_pairs_disproved = r.u64();
  s.sweep_pairs_undecided = r.u64();

  // Exact-length contract: trailing garbage is a shape mismatch.
  if (!r.ok || r.i != r.n) return std::nullopt;
  return s;
}

bool CheckpointManager::write_bytes_locked(
    const std::vector<std::uint8_t>& bytes) {
  // Injection site `ckpt.write` (DESIGN.md §2.8): a failed durable write
  // is recoverable — the last-good file stays, the snapshot stays
  // pending, the run continues.
  if (SIMSWEEP_FAULT_POINT(fault::sites::kCkptWrite)) return false;
  const std::string tmp = options_.path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool written =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  // Retain the previous good snapshot, then atomically publish the new
  // one. The first rename fails harmlessly when <path> does not exist.
  const std::string prev = options_.path + ".prev";
  std::rename(options_.path.c_str(), prev.c_str());
  if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  wrote_any_ = true;
  since_last_write_.reset();
  ++writes_;
  if (options_.registry != nullptr) {
    // ckpt (rank 4) < registry (rank 5): publishing under the manager
    // lock respects the rank order.
    options_.registry->add(obs::metric::kCkptWrites, 1);
    options_.registry->add(obs::metric::kCkptBytes, bytes.size());
  }
  return true;
}

void CheckpointManager::offer(const Snapshot& snapshot) {
  if (options_.path.empty()) return;
  std::vector<std::uint8_t> bytes = serialize(snapshot);
  bool wrote = false;
  {
    common::RankedMutexLock lock(mu_, common::lock_ranks::ckpt);
    const bool due = !wrote_any_ || options_.checkpoint_interval <= 0 ||
                     since_last_write_.seconds() >=
                         options_.checkpoint_interval;
    if (!due || !write_bytes_locked(bytes)) {
      pending_ = std::move(bytes);
      return;
    }
    pending_.clear();
    wrote = true;
  }
  if (wrote) {
    // Injection site `ckpt.child_crash` (DESIGN.md §2.8): simulated
    // process death immediately AFTER a durable snapshot — the
    // supervisor's restarted child must resume from exactly this state.
    if (SIMSWEEP_FAULT_POINT(fault::sites::kCkptChildCrash)) {
      SIMSWEEP_LOG_WARN("child-crash drill armed: aborting after write");
      std::abort();
    }
    if (options_.on_write) options_.on_write();
  }
}

void CheckpointManager::flush() {
  if (options_.path.empty()) return;
  common::RankedMutexLock lock(mu_, common::lock_ranks::ckpt);
  if (pending_.empty()) return;
  if (write_bytes_locked(pending_)) pending_.clear();
}

std::optional<Snapshot> CheckpointManager::load(std::uint64_t fingerprint) {
  if (options_.path.empty()) return std::nullopt;
  for (const std::string& candidate :
       {options_.path, options_.path + ".prev"}) {
    std::vector<std::uint8_t> bytes;
    if (!read_file(candidate, &bytes) || bytes.empty()) continue;  // absent
    std::optional<Snapshot> snap;
    // Injection site `ckpt.load` (DESIGN.md §2.8): a torn or unreadable
    // candidate — fail closed and walk the ladder.
    if (!SIMSWEEP_FAULT_POINT(fault::sites::kCkptLoad)) {
      snap = parse(bytes.data(), bytes.size());
      if (snap && snap->fingerprint != fingerprint) snap.reset();
    }
    if (!snap) {
      SIMSWEEP_LOG_WARN("checkpoint %s rejected (corrupt, stale or "
                        "mismatched); falling through",
                        candidate.c_str());
      if (options_.registry != nullptr)
        options_.registry->add(obs::metric::kCkptLoadRejects, 1);
      continue;
    }
    return snap;
  }
  return std::nullopt;
}

std::uint64_t CheckpointManager::writes() const {
  common::RankedMutexLock lock(mu_, common::lock_ranks::ckpt);
  return writes_;
}

}  // namespace simsweep::ckpt
