#pragma once
/// \file supervisor.hpp
/// \brief Crash-restart supervision for checkpointed runs (DESIGN.md
/// §2.8; `cec_tool --supervise`).
///
/// supervise() forks the attempt into a child process and watches its
/// exit. A normal exit (any exit code — verdicts and tool errors alike)
/// ends supervision; an abnormal one (killed by a signal: crash, OOM
/// kill, the `ckpt.child_crash` drill's abort) triggers a re-run after an
/// exponential backoff, up to max_restarts. Each re-run loads the
/// last-good checkpoint through the normal fail-closed resume ladder, so
/// a restarted attempt continues instead of starting over, and the chain
/// reaches the same verdict an uninterrupted run would (checkpoint.hpp's
/// determinism argument).
///
/// On platforms without fork/waitpid the attempt runs inline exactly
/// once — supervision degrades to plain execution, never to a changed
/// verdict.

#include <cstdint>
#include <functional>

namespace simsweep::ckpt {

struct SupervisorParams {
  unsigned max_restarts = 3;  ///< abnormal exits tolerated before giving up
  /// Exponential-backoff schedule between restarts (doubles up to the
  /// cap): restart storms on a persistently failing host help nobody.
  std::uint64_t backoff_initial_ms = 100;
  double backoff_factor = 2.0;
  std::uint64_t backoff_max_ms = 10000;
};

/// What the current attempt knows about the restarts before it. Passed to
/// the attempt callback so it can publish `supervisor.restarts` /
/// `supervisor.backoff_ms` into its run report (the supervisor itself has
/// no registry — the child owns the report).
struct SupervisorProgress {
  unsigned restarts = 0;            ///< abnormal exits so far
  std::uint64_t backoff_ms = 0;     ///< total backoff slept so far
};

struct SupervisorOutcome {
  /// Exit code of the first normally-exiting attempt; -1 if supervision
  /// gave up (every attempt died abnormally).
  int exit_code = -1;
  unsigned restarts = 0;
  std::uint64_t backoff_ms = 0;
  bool gave_up = false;
};

/// Runs `attempt` in a forked child until one exits normally or the
/// restart budget is spent. The callback's return value becomes the
/// child's exit code.
SupervisorOutcome supervise(
    const SupervisorParams& params,
    const std::function<int(const SupervisorProgress&)>& attempt);

}  // namespace simsweep::ckpt
