#pragma once
/// \file checkpoint.hpp
/// \brief Versioned, CRC-guarded checkpoint snapshots + atomic-write
/// manager (DESIGN.md §2.8).
///
/// A long sweep's most valuable asset is its accumulated equivalence
/// state: proven merges, refuted pairs' CEX patterns, the reduced miter.
/// This module makes that state durable so a crash, OOM-kill or node
/// preemption resumes instead of re-solving from scratch.
///
/// Format `simsweep.ckpt.v1`: a little-endian binary record — magic +
/// version header, run fingerprint, flow stage ("engine" phase boundary
/// or "sweep" round barrier), elapsed wall-clock, EngineStats +
/// DegradeState, the serialized reduced miter, the accumulated
/// PatternBank, and the sweep journal (proved merges, removed candidates,
/// pair counters, next round) — closed by a CRC32 over everything before
/// it.
///
/// Durability protocol: serialize → write to `<path>.tmp` → rename the
/// previous `<path>` (if any) to `<path>.prev` → rename the tmp over
/// `<path>`. Rename is atomic on POSIX, so `<path>` is always a complete
/// record of *some* boundary and `<path>.prev` retains the previous good
/// one.
///
/// Loading fails closed: parse() re-derives the CRC, bound-checks every
/// count, and rebuilds the miter node by node, rejecting any snapshot
/// whose structure does not round-trip exactly (so a resumed run checks
/// the *identical* miter). A rejected candidate falls down the load
/// ladder — `<path>`, then `<path>.prev`, then a fresh run — and never
/// yields an unsound verdict.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "common/lock_ranks.hpp"
#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "obs/registry.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::ckpt {

/// Format identity of the snapshot encoding (bumped on layout changes; a
/// mismatched version is a shape reject, never a best-effort parse).
inline constexpr const char kFormatId[] = "simsweep.ckpt.v1";
inline constexpr std::uint32_t kFormatVersion = 1;

/// Which point of the combined flow the snapshot captured.
enum class Stage : std::uint32_t {
  kEngine = 0,  ///< engine phase boundary (P/G/L/G+)
  kSweep = 1,   ///< SAT-sweep round barrier on the residue miter
};

/// One durable record of sweep progress. All fields are by-value copies —
/// a Snapshot stays valid after the run state it captured has moved on.
struct Snapshot {
  Stage stage = Stage::kEngine;
  /// Run identity: a hash of the original miter structure and the
  /// verdict-relevant parameters (ckpt::run_fingerprint). Loading rejects
  /// snapshots of a different problem or configuration.
  std::uint64_t fingerprint = 0;
  /// Wall-clock seconds the run had consumed at the boundary. Charged
  /// against the combined budget on resume, so restarts honor the
  /// original `engine.time_limit`.
  double elapsed_seconds = 0;
  std::string boundary;  ///< "P", "G", "L", "G+" or "round"
  engine::EngineStats engine_stats;
  engine::DegradeState degrade;
  /// The reduced miter at the boundary (the engine's working miter for
  /// kEngine, the residue handed to the sweeper for kSweep).
  aig::Aig miter;
  /// Accumulated PI pattern bank (random init + every CEX).
  std::optional<sim::PatternBank> bank;
  // --- Sweep-stage journal (empty for kEngine snapshots). ---
  std::vector<std::pair<aig::Var, aig::Lit>> merges;
  std::vector<aig::Var> removed;
  unsigned next_round = 0;
  std::size_t sweep_pairs_proved = 0;
  std::size_t sweep_pairs_disproved = 0;
  std::size_t sweep_pairs_undecided = 0;
};

/// CRC32 (IEEE 802.3 polynomial) over `size` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Encodes a snapshot as `simsweep.ckpt.v1` bytes (CRC trailer included).
std::vector<std::uint8_t> serialize(const Snapshot& snapshot);

/// Decodes `simsweep.ckpt.v1` bytes. Fails closed (nullopt) on a bad
/// magic/version, a CRC mismatch, any out-of-bounds count or literal, or
/// a miter that does not rebuild node-for-node. Never throws and never
/// reads out of bounds — the checkpoint fuzz suite mutates these bytes
/// under asan+ubsan.
std::optional<Snapshot> parse(const std::uint8_t* data, std::size_t size);

/// Owns one checkpoint path: throttled atomic writes on offer(), the
/// fail-closed load ladder, and the ckpt.* metrics. Single-writer by
/// design (hooks fire on host threads only), but internally locked at the
/// `ckpt` rank so a signal-triggered flush cannot tear a write.
class CheckpointManager {
 public:
  struct Options {
    std::string path;  ///< empty disables every operation
    /// Minimum seconds between durable writes (0 = every offer). A
    /// throttled offer is kept pending for flush().
    double checkpoint_interval = 0;
    /// Metrics sink for ckpt.writes / ckpt.bytes / ckpt.load_rejects
    /// (optional).
    obs::Registry* registry = nullptr;
    /// Fired after each successful durable write — the signal-drill and
    /// test hook (`cec_tool --drill-signal`).
    std::function<void()> on_write;
  };

  explicit CheckpointManager(Options options)
      : options_(std::move(options)) {}

  /// Serializes the snapshot and, unless throttled by
  /// checkpoint_interval, writes it durably. Failures (including the
  /// injected `ckpt.write` fault) leave the last-good file untouched and
  /// the snapshot pending; the run is unaffected.
  void offer(const Snapshot& snapshot);

  /// Durably writes the most recent throttle- or fault-skipped snapshot,
  /// if any (final flush on SIGINT/SIGTERM).
  void flush();

  /// Load ladder: `<path>`, then `<path>.prev`. Every candidate must
  /// parse (CRC + shape) and carry this fingerprint; each rejection
  /// counts into ckpt.load_rejects and falls through. nullopt means
  /// "start fresh".
  std::optional<Snapshot> load(std::uint64_t fingerprint);

  /// Durable writes so far (not counting throttled/failed offers).
  std::uint64_t writes() const;

  const std::string& path() const { return options_.path; }

 private:
  /// Writes `bytes` via the tmp + rename protocol and publishes metrics.
  /// Returns false (leaving `pending_` for a later flush) on any failure.
  bool write_bytes_locked(const std::vector<std::uint8_t>& bytes)
      SIMSWEEP_REQUIRES(mu_);

  const Options options_;
  mutable common::Mutex mu_;
  Timer since_last_write_ SIMSWEEP_GUARDED_BY(mu_);
  bool wrote_any_ SIMSWEEP_GUARDED_BY(mu_) = false;
  std::vector<std::uint8_t> pending_ SIMSWEEP_GUARDED_BY(mu_);
  std::uint64_t writes_ SIMSWEEP_GUARDED_BY(mu_) = 0;
};

}  // namespace simsweep::ckpt
