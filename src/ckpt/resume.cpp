#include "ckpt/resume.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"
#include "sweep/parallel_sweeper.hpp"

namespace simsweep::ckpt {

namespace {

/// FNV-1a over the 8 little-endian bytes of `v`.
void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
}

/// Latest engine-boundary state, shared by the two checkpoint hooks (both
/// run on the host thread driving the combined flow — never concurrently)
/// so sweep-stage snapshots embed the engine totals of the whole chain.
struct HookState {
  engine::EngineStats engine_stats;
  engine::DegradeState degrade;
  /// True when resuming from an engine-stage snapshot: the resumed
  /// attempt's stats cover only the continuation, so boundary snapshots
  /// fold the loaded base back in (next crash resumes the full totals).
  bool have_base = false;
  engine::EngineStats base;
};

}  // namespace

std::uint64_t run_fingerprint(const aig::Aig& miter,
                              const portfolio::CombinedParams& params) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  fnv(h, miter.num_pis());
  fnv(h, miter.num_ands());
  fnv(h, miter.num_pos());
  for (aig::Var v = miter.num_pis() + 1; v < miter.num_nodes(); ++v) {
    fnv(h, miter.fanin0(v));
    fnv(h, miter.fanin1(v));
  }
  for (aig::Lit po : miter.pos()) fnv(h, po);
  const engine::EngineParams& e = params.engine;
  fnv(h, e.k_P);
  fnv(h, e.k_p);
  fnv(h, e.k_g);
  fnv(h, e.k_l);
  fnv(h, e.seed);
  fnv(h, e.sim_words);
  const sweep::SweeperParams& s = params.sweeper;
  fnv(h, s.seed);
  fnv(h, s.sim_words);
  fnv(h, static_cast<std::uint64_t>(s.conflict_limit));
  fnv(h, s.max_rounds);
  return h;
}

CheckpointedResult checked_combined_check_miter(
    const aig::Aig& miter, const CheckpointedParams& params) {
  CheckpointedResult out;
  portfolio::CombinedParams combined = params.combined;

  obs::Registry local_registry;
  obs::Registry& registry = combined.engine.registry != nullptr
                                ? *combined.engine.registry
                                : local_registry;
  combined.engine.registry = &registry;

  // Report-shape guarantee (run_report v3): create every ckpt.* and
  // supervisor.* counter up front so the sections exist even when nothing
  // fires this run.
  registry.add(obs::metric::kCkptWrites, 0);
  registry.add(obs::metric::kCkptBytes, 0);
  registry.add(obs::metric::kCkptLoadRejects, 0);
  registry.add(obs::metric::kCkptResumes, 0);
  registry.add(obs::metric::kCkptPairsRestored, 0);
  registry.add(obs::metric::kSupervisorRestarts, 0);
  registry.add(obs::metric::kSupervisorBackoffMs, 0);

  CheckpointManager mgr({params.checkpoint_path, params.checkpoint_interval,
                         &registry, params.on_write});
  const std::uint64_t fp = run_fingerprint(miter, params.combined);

  std::optional<Snapshot> snap;
  if (params.resume && !params.checkpoint_path.empty()) snap = mgr.load(fp);

  Timer t;
  const double base_elapsed = snap ? snap->elapsed_seconds : 0.0;
  auto hs = std::make_shared<HookState>();
  if (snap) {
    hs->engine_stats = snap->engine_stats;
    hs->degrade = snap->degrade;
    hs->have_base = snap->stage == Stage::kEngine;
    hs->base = snap->engine_stats;
  }

  combined.engine.checkpoint_hook =
      [&mgr, hs, fp, base_elapsed, &t](
          const engine::EngineCheckpointView& view) {
        Snapshot s;
        s.stage = Stage::kEngine;
        s.fingerprint = fp;
        s.elapsed_seconds = base_elapsed + t.seconds();
        s.boundary = view.boundary;
        engine::EngineStats stats = *view.stats;
        if (hs->have_base) engine::accumulate_attempt_stats(stats, hs->base);
        s.engine_stats = stats;
        s.degrade = *view.degrade;
        s.miter = *view.miter;
        if (view.bank != nullptr) s.bank = *view.bank;
        hs->engine_stats = stats;
        hs->degrade = s.degrade;
        mgr.offer(s);
      };
  combined.sweeper.checkpoint_hook =
      [&mgr, hs, fp, base_elapsed, &t](
          const sweep::SweepCheckpointView& view) {
        Snapshot s;
        s.stage = Stage::kSweep;
        s.fingerprint = fp;
        s.elapsed_seconds = base_elapsed + t.seconds();
        s.boundary = "round";
        s.engine_stats = hs->engine_stats;
        s.degrade = hs->degrade;
        s.miter = *view.miter;
        if (view.bank != nullptr) s.bank = *view.bank;
        s.merges = *view.merges;
        s.removed = *view.removed;
        s.next_round = view.next_round;
        s.sweep_pairs_proved = view.stats->pairs_proved;
        s.sweep_pairs_disproved = view.stats->pairs_disproved;
        s.sweep_pairs_undecided = view.stats->pairs_undecided;
        mgr.offer(s);
      };

  // Budget restoration: elapsed_seconds is charged against the combined
  // budget, so restarts finish inside the ORIGINAL engine.time_limit.
  const double budget = params.combined.engine.time_limit;
  if (snap && budget > 0)
    combined.engine.time_limit =
        std::max(0.05, budget - snap->elapsed_seconds);

  if (snap && snap->stage == Stage::kSweep) {
    // The engine chain already finished when this snapshot was taken:
    // skip it entirely, republish its totals, replay the sweep journal.
    out.resumed = true;
    registry.add(obs::metric::kCkptResumes, 1);
    out.pairs_restored = snap->engine_stats.pos_proved +
                         snap->engine_stats.pairs_proved_global +
                         snap->engine_stats.pairs_proved_local +
                         snap->merges.size();
    registry.add(obs::metric::kCkptPairsRestored, out.pairs_restored);

    portfolio::CombinedResult& r = out.combined;
    r.engine_stats = snap->engine_stats;
    r.engine_seconds = snap->engine_stats.total_seconds;
    r.reduction_percent = snap->engine_stats.reduction_percent();
    engine::publish_engine_stats(registry, r.engine_stats);
    // v3 reports require the faults/degrade sections the skipped engine
    // would have published; restore them from the snapshot's ladder state.
    const engine::DegradeState& d = snap->degrade;
    registry.add(obs::metric::kDegradeLadderSteps, d.ladder_steps);
    registry.add(obs::metric::kDegradeMemoryHalvings, d.memory_halvings);
    registry.add(obs::metric::kDegradeMergeFallbacks, d.merge_fallbacks);
    registry.add(obs::metric::kDegradeBatchSplits, d.batch_splits);
    registry.add(obs::metric::kDegradeDeadlineExpiries, d.deadline_expiries);
    registry.add(obs::metric::kDegradeUnitsAbandoned, d.units_abandoned);
    registry.add(obs::metric::kDegradePassRetries, d.pass_retries);
    r.used_sat = true;

    sweep::SweeperParams sp = combined.sweeper;
    sweep::SweepResumeState resume_state;
    resume_state.merges = snap->merges;
    resume_state.removed = snap->removed;
    resume_state.bank = snap->bank;
    resume_state.next_round = snap->next_round;
    resume_state.pairs_proved = snap->sweep_pairs_proved;
    resume_state.pairs_disproved = snap->sweep_pairs_disproved;
    resume_state.pairs_undecided = snap->sweep_pairs_undecided;
    sp.resume = &resume_state;
    if (budget > 0) {
      const double rem = std::max(0.05, budget - snap->elapsed_seconds);
      sp.time_limit =
          sp.time_limit > 0 ? std::min(sp.time_limit, rem) : rem;
    }
    r.sweeper_time_limit = sp.time_limit;
    const std::uint64_t fires_before = fault::fires_total();
    Timer sat_timer;
    sweep::SweepResult sr = sweep::sweep_miter(snap->miter, sp);
    r.sat_seconds = sat_timer.seconds();
    registry.add(obs::metric::kFaultsInjected,
                 fault::fires_total() - fires_before);
    r.sweeper_stats = sr.stats;
    r.verdict = sr.verdict;
    r.cex = std::move(sr.cex);
    portfolio::publish_sweeper_stats(registry, true, r.sweeper_stats,
                                     r.sat_seconds);
    r.total_seconds = t.seconds();
  } else if (snap) {  // Stage::kEngine
    out.resumed = true;
    registry.add(obs::metric::kCkptResumes, 1);
    out.pairs_restored = snap->engine_stats.pos_proved +
                         snap->engine_stats.pairs_proved_global +
                         snap->engine_stats.pairs_proved_local;
    registry.add(obs::metric::kCkptPairsRestored, out.pairs_restored);
    // Re-enter the engine on the snapshot's reduced miter with its
    // accumulated bank (the resumed attempt re-derives the crashed run's
    // equivalence classes from it) and its ladder backoff.
    if (snap->bank) combined.engine.initial_bank = &*snap->bank;
    if (snap->degrade.memory_words > 0)
      combined.engine.memory_words = snap->degrade.memory_words;
    combined.engine.window_merging = snap->degrade.window_merging;
    out.combined = portfolio::combined_check_miter(snap->miter, combined);
    // The attempt's stats cover the continuation only; fold the crashed
    // run's work back in and republish the chain totals.
    engine::accumulate_attempt_stats(out.combined.engine_stats,
                                     snap->engine_stats);
    engine::publish_engine_stats(registry, out.combined.engine_stats);
    out.combined.engine_seconds = out.combined.engine_stats.total_seconds;
    out.combined.reduction_percent =
        out.combined.engine_stats.reduction_percent();
  } else {
    out.combined = portfolio::combined_check_miter(miter, combined);
  }

  // An undecided exit may still hold a throttle-skipped boundary — make
  // it durable so the next attempt resumes from the freshest state.
  if (out.combined.verdict == Verdict::kUndecided) mgr.flush();
  out.checkpoint_writes = mgr.writes();
  out.combined.report = registry.snapshot();
  return out;
}

}  // namespace simsweep::ckpt
