#include "ckpt/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SIMSWEEP_HAVE_FORK 1
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SIMSWEEP_HAVE_FORK 0
#endif

namespace simsweep::ckpt {

SupervisorOutcome supervise(
    const SupervisorParams& params,
    const std::function<int(const SupervisorProgress&)>& attempt) {
  SupervisorOutcome outcome;
  SupervisorProgress progress;
#if SIMSWEEP_HAVE_FORK
  double backoff = static_cast<double>(params.backoff_initial_ms);
  for (;;) {
    const pid_t pid = fork();
    if (pid == 0) {
      // Child: run the attempt and leave without unwinding the parent's
      // stack (_exit, not exit — no shared-state destructors run twice).
      int rc = 3;
      try {
        rc = attempt(progress);
      } catch (...) {
      }
      std::fflush(nullptr);
      _exit(rc);
    }
    if (pid < 0) {
      // fork itself failed (fd/process limits): degrade to inline
      // execution rather than failing the run.
      SIMSWEEP_LOG_WARN("supervisor: fork failed; running attempt inline");
      outcome.exit_code = attempt(progress);
      outcome.restarts = progress.restarts;
      outcome.backoff_ms = progress.backoff_ms;
      return outcome;
    }
    int status = 0;
    if (waitpid(pid, &status, 0) < 0) {
      outcome.gave_up = true;
      break;
    }
    if (WIFEXITED(status)) {
      outcome.exit_code = WEXITSTATUS(status);
      break;
    }
    // Abnormal exit (signal): the crash the subsystem exists for.
    const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    if (progress.restarts >= params.max_restarts) {
      SIMSWEEP_LOG_WARN(
          "supervisor: child died (signal %d) with restart budget spent; "
          "giving up",
          sig);
      outcome.gave_up = true;
      break;
    }
    const std::uint64_t sleep_ms = static_cast<std::uint64_t>(backoff);
    SIMSWEEP_LOG_WARN(
        "supervisor: child died (signal %d); restarting from last-good "
        "checkpoint in %llu ms",
        sig, static_cast<unsigned long long>(sleep_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    ++progress.restarts;
    progress.backoff_ms += sleep_ms;
    backoff = std::min(backoff * params.backoff_factor,
                       static_cast<double>(params.backoff_max_ms));
  }
  outcome.restarts = progress.restarts;
  outcome.backoff_ms = progress.backoff_ms;
  return outcome;
#else
  // No fork on this platform: run once inline. A crash is a crash, but
  // the checkpoint file still lets the *next* invocation resume.
  outcome.exit_code = attempt(progress);
  outcome.restarts = 0;
  outcome.backoff_ms = 0;
  return outcome;
#endif
}

}  // namespace simsweep::ckpt
