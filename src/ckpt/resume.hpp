#pragma once
/// \file resume.hpp
/// \brief Checkpointed combined checking: the glue between the combined
/// flow (portfolio.hpp) and the snapshot manager (checkpoint.hpp),
/// DESIGN.md §2.8.
///
/// checked_combined_check_miter() wraps combined_check_miter() with
///   - checkpoint hooks on the engine (phase boundaries) and the SAT
///     sweeper (round barriers), throttled by checkpoint_interval;
///   - a resume path: a loadable snapshot of the same run fingerprint
///     restarts the flow from the captured boundary — engine snapshots
///     re-enter the engine on the reduced miter with the accumulated
///     pattern bank and degraded-ladder state, sweep snapshots skip the
///     engine entirely and replay the sweep journal;
///   - budget restoration: the snapshot's elapsed wall-clock is charged
///     against engine.time_limit, so a restarted run finishes inside the
///     original combined budget instead of restarting the clock;
///   - the ckpt.* metrics (writes/bytes/load_rejects/resumes/
///     pairs_restored) in the run report.
///
/// Verdict identity: a resumed run checks the identical (CRC- and
/// structure-validated) miter with the identical parameters, and its
/// equivalence classes are rebuilt from the crashed run's accumulated
/// pattern bank — partial simulation, candidate enumeration and the SAT
/// sweep schedule are all deterministic functions of that state, so the
/// resumed run reaches the verdict the uninterrupted run would have.

#include <cstdint>
#include <functional>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "portfolio/portfolio.hpp"

namespace simsweep::ckpt {

/// Hash identifying "the same run": the miter structure plus every
/// parameter that shapes the verdict path (thresholds, seeds, simulation
/// widths, SAT budgets). A snapshot whose fingerprint differs is rejected
/// by the load ladder — resuming a different problem or configuration
/// would void the determinism argument.
std::uint64_t run_fingerprint(const aig::Aig& miter,
                              const portfolio::CombinedParams& params);

struct CheckpointedParams {
  portfolio::CombinedParams combined;
  /// Snapshot path; empty runs the plain combined flow (no durability).
  std::string checkpoint_path;
  /// Minimum seconds between durable writes (0 = every boundary).
  double checkpoint_interval = 0;
  /// Attempt the load ladder before running (false = overwrite-only mode,
  /// e.g. the first attempt of a supervised run after `--no-resume`).
  bool resume = true;
  /// Fired after each durable write (signal-drill hook; see
  /// CheckpointManager::Options::on_write).
  std::function<void()> on_write;
};

struct CheckpointedResult {
  portfolio::CombinedResult combined;
  bool resumed = false;  ///< a snapshot was loaded and continued
  /// Previously-proven equivalences restored instead of re-solved (engine
  /// PO/pair proofs + sweep merge journal); `ckpt.pairs_restored`.
  std::uint64_t pairs_restored = 0;
  std::uint64_t checkpoint_writes = 0;  ///< durable writes this run
};

CheckpointedResult checked_combined_check_miter(
    const aig::Aig& miter, const CheckpointedParams& params);

inline CheckpointedResult checked_combined_check(
    const aig::Aig& a, const aig::Aig& b, const CheckpointedParams& params) {
  return checked_combined_check_miter(aig::make_miter(a, b), params);
}

}  // namespace simsweep::ckpt
