#pragma once
/// \file suite.hpp
/// \brief The reproduction benchmark suite (paper §IV, Table II rows).
///
/// Nine design families mirroring the paper's selection from the EPFL and
/// IWLS 2005 suites — hyp, log2, multiplier, sqrt, square, voter, sin,
/// ac97_ctrl, vga_lcd — generated at host-appropriate bit widths,
/// enlarged with double_circuit (the paper's ABC `double`), and paired
/// with a resyn2-optimized version (the paper's CEC instance
/// construction). Scale note in DESIGN.md §4: the paper's hosts are
/// GPU servers running days; sizes here target a small CPU host, and we
/// reproduce *shapes*, not absolute numbers.

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace simsweep::gen {

struct BenchCase {
  std::string name;        ///< e.g. "multiplier_3xd"
  aig::Aig original;       ///< doubled base circuit
  aig::Aig optimized;      ///< doubled resyn2(base)
};

struct SuiteParams {
  /// Times each base design is doubled (the paper uses 5-10 on a GPU
  /// server; default is sized for a small CPU host).
  unsigned doublings = 3;
  std::uint64_t seed = 7;
};

/// The nine family names in Table II row order.
const std::vector<std::string>& table2_families();

/// Builds one named case ("hyp", "log2", "multiplier", "sqrt", "square",
/// "voter", "sin", "ac97_ctrl", "vga_lcd"). Throws on unknown names.
BenchCase make_case(const std::string& family, const SuiteParams& params = {});

/// All nine cases.
std::vector<BenchCase> table2_suite(const SuiteParams& params = {});

}  // namespace simsweep::gen
