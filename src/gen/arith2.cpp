#include "gen/arith2.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace simsweep::gen {

namespace {

using aig::Aig;
using aig::Lit;
using aig::kLitFalse;
using aig::kLitTrue;

Bus pi_bus(Aig& a, unsigned base, unsigned n) {
  Bus b(n);
  for (unsigned i = 0; i < n; ++i) b[i] = a.pi_lit(base + i);
  return b;
}

}  // namespace

Aig divider(unsigned n) {
  Aig a(2 * n);
  const Bus x = pi_bus(a, 0, n);   // dividend
  const Bus d = pi_bus(a, n, n);   // divisor

  // Restoring division, MSB first: rem = (rem << 1) | x[i]; if rem >= d
  // then rem -= d and q[i] = 1.
  Bus rem(n + 1, kLitFalse);
  Bus q(n, kLitFalse);
  Bus d_ext(n + 1, kLitFalse);
  for (unsigned i = 0; i < n; ++i) d_ext[i] = d[i];
  for (unsigned i = n; i-- > 0;) {
    Bus shifted(n + 1, kLitFalse);
    for (unsigned k = n; k >= 1; --k) shifted[k] = rem[k - 1];
    shifted[0] = x[i];
    auto [diff, borrow] = subtract(a, shifted, d_ext);
    const Lit fits = aig::lit_not(borrow);  // shifted >= d
    q[i] = fits;
    rem = mux_bus(a, fits, diff, shifted);
  }
  for (Lit b : q) a.add_po(b);
  for (unsigned i = 0; i < n; ++i) a.add_po(rem[i]);
  return a;
}

Aig barrel_rotator(unsigned w) {
  if ((w & (w - 1)) != 0)
    throw std::invalid_argument("barrel_rotator: width must be 2^k");
  const unsigned sbits = static_cast<unsigned>(std::countr_zero(w));
  Aig a(w + sbits);
  Bus data = pi_bus(a, 0, w);
  const Bus shift = pi_bus(a, w, sbits);
  for (unsigned s = 0; s < sbits; ++s) {
    const unsigned k = 1u << s;
    Bus rotated(w);
    for (unsigned i = 0; i < w; ++i) rotated[i] = data[(i + w - k) % w];
    data = mux_bus(a, shift[s], rotated, data);
  }
  for (Lit b : data) a.add_po(b);
  return a;
}

Aig max_circuit(unsigned n) {
  Aig a(2 * n);
  const Bus x = pi_bus(a, 0, n), y = pi_bus(a, n, n);
  auto [diff, borrow] = subtract(a, x, y);
  (void)diff;
  const Lit x_ge_y = aig::lit_not(borrow);
  for (Lit b : mux_bus(a, x_ge_y, x, y)) a.add_po(b);
  return a;
}

Aig decoder(unsigned n) {
  if (n > 16) throw std::invalid_argument("decoder: too many selects");
  Aig a(n);
  const Bus sel = pi_bus(a, 0, n);
  // Build the one-hot outputs as balanced AND trees over select literals.
  for (unsigned code = 0; code < (1u << n); ++code) {
    Lit out = kLitTrue;
    for (unsigned j = 0; j < n; ++j)
      out = a.add_and(out, aig::lit_notcond(sel[j], !((code >> j) & 1)));
    a.add_po(out);
  }
  return a;
}

Aig priority_encoder(unsigned n) {
  Aig a(n);
  unsigned bits = 0;
  while ((1u << bits) < n) ++bits;
  // found-so-far scan from index 0 (highest priority).
  Bus index(bits, kLitFalse);
  Lit valid = kLitFalse;
  for (unsigned i = 0; i < n; ++i) {
    const Lit req = a.pi_lit(i);
    const Lit take = a.add_and(req, aig::lit_not(valid));
    for (unsigned j = 0; j < bits; ++j)
      if ((i >> j) & 1) index[j] = a.add_or(index[j], take);
    valid = a.add_or(valid, req);
  }
  for (Lit b : index) a.add_po(b);
  a.add_po(valid);
  return a;
}

Aig alu(unsigned n) {
  Aig a(2 * n + 2);
  const Bus x = pi_bus(a, 0, n), y = pi_bus(a, n, n);
  const Lit op0 = a.pi_lit(2 * n), op1 = a.pi_lit(2 * n + 1);

  const Bus sum = ripple_add(a, x, y);  // n+1 bits
  Bus result(n);
  for (unsigned i = 0; i < n; ++i) {
    const Lit band = a.add_and(x[i], y[i]);
    const Lit bor = a.add_or(x[i], y[i]);
    const Lit bxor = a.add_xor(x[i], y[i]);
    // op: 00 add, 01 and, 10 or, 11 xor.
    const Lit logic = a.add_mux(op0, bxor, bor);   // op1=1 branch
    const Lit addand = a.add_mux(op0, band, sum[i]);  // op1=0 branch
    result[i] = a.add_mux(op1, logic, addand);
  }
  for (Lit b : result) a.add_po(b);
  // Carry out only meaningful for add; force 0 otherwise.
  a.add_po(a.add_and(sum[n],
                     a.add_and(aig::lit_not(op0), aig::lit_not(op1))));
  return a;
}

}  // namespace simsweep::gen
