#pragma once
/// \file transforms.hpp
/// \brief Whole-circuit transforms used to prepare CEC instances.

#include "aig/aig.hpp"

namespace simsweep::gen {

/// ABC's `double`: appends a disjoint copy of the circuit (fresh PIs and
/// POs), doubling every interface and the node count. Applying it k times
/// scales the design by 2^k, the enlargement method of the paper's
/// experiments (§IV, "_nxd" suffixes).
aig::Aig double_circuit(const aig::Aig& src);

/// double applied k times.
aig::Aig double_circuit(const aig::Aig& src, unsigned k);

}  // namespace simsweep::gen
