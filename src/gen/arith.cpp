#include "gen/arith.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace simsweep::gen {

namespace {

using aig::Aig;
using aig::Lit;
using aig::kLitFalse;
using aig::kLitTrue;

Lit bit_or_zero(const Bus& b, std::size_t i) {
  return i < b.size() ? b[i] : kLitFalse;
}

/// Bus of the first n PIs starting at PI index `base`.
Bus pi_bus(Aig& a, unsigned base, unsigned n) {
  Bus b(n);
  for (unsigned i = 0; i < n; ++i) b[i] = a.pi_lit(base + i);
  return b;
}

/// Constant bus of `value`, LSB first.
Bus const_bus(std::uint64_t value, unsigned n) {
  Bus b(n);
  for (unsigned i = 0; i < n; ++i)
    b[i] = (value >> i) & 1 ? kLitTrue : kLitFalse;
  return b;
}

/// Truncate/zero-extend to n bits.
Bus resize_bus(const Bus& x, unsigned n) {
  Bus b(n, kLitFalse);
  for (unsigned i = 0; i < n && i < x.size(); ++i) b[i] = x[i];
  return b;
}

/// Modular (truncating) n-bit add, two's complement compatible.
Bus add_mod(Aig& a, const Bus& x, const Bus& y) {
  assert(x.size() == y.size());
  Bus sum(x.size());
  Lit carry = kLitFalse;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto [s, c] = full_adder(a, x[i], y[i], carry);
    sum[i] = s;
    carry = c;
  }
  return sum;
}

/// Modular n-bit subtract (x - y), two's complement.
Bus sub_mod(Aig& a, const Bus& x, const Bus& y) {
  assert(x.size() == y.size());
  Bus sum(x.size());
  Lit carry = kLitTrue;  // +1 of the two's complement
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto [s, c] = full_adder(a, x[i], aig::lit_not(y[i]), carry);
    sum[i] = s;
    carry = c;
  }
  return sum;
}

/// Arithmetic shift right by k (sign extension).
Bus asr(const Bus& x, unsigned k) {
  Bus b(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    b[i] = i + k < x.size() ? x[i + k] : x.back();
  return b;
}

/// Multiplication returning a 2n-bit bus; array or Wallace structure.
Bus multiply_bus(Aig& a, const Bus& x, const Bus& y, bool wallace) {
  const unsigned n = static_cast<unsigned>(x.size());
  const unsigned m = static_cast<unsigned>(y.size());
  const unsigned w = n + m;
  if (!wallace) {
    // Array multiplier: accumulate shifted partial-product rows with
    // ripple adders (carry-propagate per row).
    Bus acc = const_bus(0, w);
    for (unsigned j = 0; j < m; ++j) {
      Bus row(w, kLitFalse);
      for (unsigned i = 0; i < n; ++i)
        if (i + j < w) row[i + j] = a.add_and(x[i], y[j]);
      acc = resize_bus(add_mod(a, acc, row), w);
    }
    return acc;
  }
  // Wallace tree: per-column dot accumulation with 3:2 / 2:2 compressors
  // until every column holds at most two bits, then one fast adder.
  std::vector<std::vector<Lit>> col(w);
  for (unsigned i = 0; i < n; ++i)
    for (unsigned j = 0; j < m; ++j)
      col[i + j].push_back(a.add_and(x[i], y[j]));
  bool again = true;
  while (again) {
    again = false;
    std::vector<std::vector<Lit>> next(w);
    for (unsigned k = 0; k < w; ++k) {
      auto& bits = col[k];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        auto [s, c] = full_adder(a, bits[i], bits[i + 1], bits[i + 2]);
        i += 3;
        next[k].push_back(s);
        if (k + 1 < w) next[k + 1].push_back(c);
        again = true;
      }
      if (bits.size() - i == 2 && bits.size() > 2) {
        const Lit s = a.add_xor(bits[i], bits[i + 1]);
        const Lit c = a.add_and(bits[i], bits[i + 1]);
        i += 2;
        next[k].push_back(s);
        if (k + 1 < w) next[k + 1].push_back(c);
        again = true;
      }
      for (; i < bits.size(); ++i) next[k].push_back(bits[i]);
    }
    col = std::move(next);
  }
  Bus op0(w), op1(w);
  for (unsigned k = 0; k < w; ++k) {
    op0[k] = col[k].empty() ? kLitFalse : col[k][0];
    op1[k] = col[k].size() > 1 ? col[k][1] : kLitFalse;
  }
  return resize_bus(kogge_stone_add(a, op0, op1), w);
}

/// Restoring integer square root of an even-width bus; returns |x|/2 bits.
Bus isqrt_bus(Aig& a, Bus x) {
  if (x.size() & 1) x.push_back(kLitFalse);
  const unsigned n = static_cast<unsigned>(x.size());
  const unsigned half = n / 2;
  const unsigned w = n + 2;  // working width for remainder/trial

  Bus rem = const_bus(0, w);
  Bus root;  // grows one bit (MSB-first construction), LSB-first storage
  for (unsigned t = 0; t < half; ++t) {
    // rem = (rem << 2) | next two input bits (from the top).
    Bus shifted(w, kLitFalse);
    for (unsigned i = 2; i < w; ++i) shifted[i] = rem[i - 2];
    shifted[1] = x[n - 2 * t - 1];
    shifted[0] = x[n - 2 * t - 2];
    // trial = (root << 2) | 1.
    Bus trial = const_bus(0, w);
    trial[0] = kLitTrue;
    for (unsigned i = 0; i < root.size(); ++i) trial[i + 2] = root[i];
    auto [diff, borrow] = subtract(a, shifted, trial);
    const Lit bit = aig::lit_not(borrow);
    rem = mux_bus(a, bit, diff, shifted);
    // root = (root << 1) | bit.
    root.insert(root.begin(), bit);
  }
  return root;
}

}  // namespace

std::pair<Lit, Lit> full_adder(Aig& a, Lit x, Lit y, Lit cin) {
  const Lit s = a.add_xor(a.add_xor(x, y), cin);
  const Lit c = a.add_maj3(x, y, cin);
  return {s, c};
}

Bus ripple_add(Aig& a, const Bus& x, const Bus& y) {
  const std::size_t n = std::max(x.size(), y.size());
  Bus sum(n + 1);
  Lit carry = kLitFalse;
  for (std::size_t i = 0; i < n; ++i) {
    auto [s, c] =
        full_adder(a, bit_or_zero(x, i), bit_or_zero(y, i), carry);
    sum[i] = s;
    carry = c;
  }
  sum[n] = carry;
  return sum;
}

Bus kogge_stone_add(Aig& a, const Bus& x, const Bus& y) {
  const std::size_t n = std::max(x.size(), y.size());
  Bus g(n), p(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Lit xi = bit_or_zero(x, i), yi = bit_or_zero(y, i);
    g[i] = a.add_and(xi, yi);
    p[i] = a.add_xor(xi, yi);
  }
  // Parallel prefix: after the pass with distance d, g[i] is the carry
  // generated by the window [i-2d+1, i].
  Bus gg = g, pp = p;
  for (std::size_t d = 1; d < n; d <<= 1) {
    Bus g2 = gg, p2 = pp;
    for (std::size_t i = d; i < n; ++i) {
      g2[i] = a.add_or(gg[i], a.add_and(pp[i], gg[i - d]));
      p2[i] = a.add_and(pp[i], pp[i - d]);
    }
    gg = std::move(g2);
    pp = std::move(p2);
  }
  Bus sum(n + 1);
  sum[0] = p[0];
  for (std::size_t i = 1; i < n; ++i) sum[i] = a.add_xor(p[i], gg[i - 1]);
  sum[n] = gg[n - 1];
  return sum;
}

std::pair<Bus, Lit> subtract(Aig& a, const Bus& x, const Bus& y) {
  assert(x.size() == y.size());
  Bus diff(x.size());
  Lit carry = kLitTrue;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto [s, c] = full_adder(a, x[i], aig::lit_not(y[i]), carry);
    diff[i] = s;
    carry = c;
  }
  return {diff, aig::lit_not(carry)};  // borrow = !carry_out
}

Bus mux_bus(Aig& a, Lit sel, const Bus& t, const Bus& e) {
  assert(t.size() == e.size());
  Bus out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i)
    out[i] = a.add_mux(sel, t[i], e[i]);
  return out;
}

Aig ripple_adder(unsigned n) {
  Aig a(2 * n);
  const Bus x = pi_bus(a, 0, n), y = pi_bus(a, n, n);
  for (Lit s : ripple_add(a, x, y)) a.add_po(s);
  return a;
}

Aig kogge_stone_adder(unsigned n) {
  Aig a(2 * n);
  const Bus x = pi_bus(a, 0, n), y = pi_bus(a, n, n);
  for (Lit s : kogge_stone_add(a, x, y)) a.add_po(s);
  return a;
}

Aig array_multiplier(unsigned n) {
  Aig a(2 * n);
  for (Lit s :
       multiply_bus(a, pi_bus(a, 0, n), pi_bus(a, n, n), /*wallace=*/false))
    a.add_po(s);
  return a;
}

Aig wallace_multiplier(unsigned n) {
  Aig a(2 * n);
  for (Lit s :
       multiply_bus(a, pi_bus(a, 0, n), pi_bus(a, n, n), /*wallace=*/true))
    a.add_po(s);
  return a;
}

Aig square(unsigned n) {
  Aig a(n);
  const Bus x = pi_bus(a, 0, n);
  for (Lit s : multiply_bus(a, x, x, /*wallace=*/false)) a.add_po(s);
  return a;
}

Aig isqrt(unsigned n) {
  if (n & 1) throw std::invalid_argument("isqrt: width must be even");
  Aig a(n);
  for (Lit s : isqrt_bus(a, pi_bus(a, 0, n))) a.add_po(s);
  return a;
}

Aig hyp(unsigned n) {
  Aig a(2 * n);
  const Bus x = pi_bus(a, 0, n), y = pi_bus(a, n, n);
  const Bus x2 = multiply_bus(a, x, x, /*wallace=*/false);
  const Bus y2 = multiply_bus(a, y, y, /*wallace=*/false);
  Bus sum = ripple_add(a, x2, y2);  // 2n+1 bits
  if (sum.size() & 1) sum.push_back(kLitFalse);
  for (Lit s : isqrt_bus(a, sum)) a.add_po(s);
  return a;
}

Aig log2_approx(unsigned n, unsigned frac) {
  if ((n & (n - 1)) != 0)
    throw std::invalid_argument("log2_approx: width must be a power of two");
  const unsigned eb = static_cast<unsigned>(std::countr_zero(n));  // log2(n)
  Aig a(n);
  const Bus x = pi_bus(a, 0, n);

  // Priority encoder: one-hot is_msb[i] = x[i] & none-above.
  Bus is_msb(n);
  Lit found = kLitFalse;
  for (unsigned i = n; i-- > 0;) {
    is_msb[i] = a.add_and(x[i], aig::lit_not(found));
    found = a.add_or(found, x[i]);
  }
  // Exponent bits: OR of the one-hots whose index has that bit set.
  Bus e(eb, kLitFalse);
  for (unsigned i = 0; i < n; ++i)
    for (unsigned j = 0; j < eb; ++j)
      if ((i >> j) & 1) e[j] = a.add_or(e[j], is_msb[i]);

  // Normalize: left-shift x by (n-1-e) = ~e (valid because n = 2^eb), so
  // the leading one lands at bit n-1; fraction = next `frac` bits.
  Bus shifted = x;
  for (unsigned j = 0; j < eb; ++j) {
    const Lit s = aig::lit_not(e[j]);  // shift by 2^j iff bit j of ~e
    Bus moved(n, kLitFalse);
    const unsigned k = 1u << j;
    for (unsigned i = k; i < n; ++i) moved[i] = shifted[i - k];
    shifted = mux_bus(a, s, moved, shifted);
  }

  for (unsigned j = 0; j < eb; ++j) a.add_po(e[j]);
  for (unsigned j = 0; j < frac && j + 1 < n; ++j)
    a.add_po(shifted[n - 2 - j]);
  return a;
}

Aig cordic_sin(unsigned n, unsigned iters) {
  if (n > 24) throw std::invalid_argument("cordic_sin: width too large");
  Aig a(n);
  // Fixed point with n-2 fractional bits; angle input in radians scaled
  // the same way. Gain-compensated initial x = K = prod(1/sqrt(1+2^-2i)).
  const unsigned fbits = n - 2;
  double kd = 1.0;
  for (unsigned i = 0; i < iters; ++i)
    kd /= std::sqrt(1.0 + std::ldexp(1.0, -2 * static_cast<int>(i)));
  auto to_fix = [&](double v) {
    return static_cast<std::uint64_t>(
               std::llround(std::ldexp(v, static_cast<int>(fbits)))) &
           ((std::uint64_t{1} << n) - 1);
  };

  Bus x = const_bus(to_fix(kd), n);
  Bus y = const_bus(0, n);
  Bus z = pi_bus(a, 0, n);
  for (unsigned i = 0; i < iters; ++i) {
    const Bus atan_i = const_bus(
        to_fix(std::atan(std::ldexp(1.0, -static_cast<int>(i)))), n);
    const Lit dneg = z.back();  // sign of z: rotate clockwise if negative
    const Bus xs = asr(x, i), ys = asr(y, i);
    // d = +1: x-=ys, y+=xs, z-=atan; d = -1: x+=ys, y-=xs, z+=atan.
    x = mux_bus(a, dneg, add_mod(a, x, ys), sub_mod(a, x, ys));
    y = mux_bus(a, dneg, sub_mod(a, y, xs), add_mod(a, y, xs));
    z = mux_bus(a, dneg, add_mod(a, z, atan_i), sub_mod(a, z, atan_i));
  }
  for (Lit s : y) a.add_po(s);
  return a;
}

Aig voter(unsigned n) {
  if ((n & 1) == 0) throw std::invalid_argument("voter: n must be odd");
  Aig a(n);
  // Popcount by divide and conquer over full-adder trees.
  std::vector<Bus> counts;
  for (unsigned i = 0; i < n; ++i) counts.push_back({a.pi_lit(i)});
  while (counts.size() > 1) {
    std::vector<Bus> next;
    for (std::size_t i = 0; i + 1 < counts.size(); i += 2)
      next.push_back(ripple_add(a, counts[i], counts[i + 1]));
    if (counts.size() & 1) next.push_back(counts.back());
    counts = std::move(next);
  }
  Bus count = counts[0];
  // Majority iff count >= (n+1)/2, i.e. count - threshold has no borrow.
  const Bus threshold = const_bus((n + 1) / 2, static_cast<unsigned>(count.size()));
  auto [diff, borrow] = subtract(a, count, threshold);
  (void)diff;
  a.add_po(aig::lit_not(borrow));
  return a;
}

}  // namespace simsweep::gen
