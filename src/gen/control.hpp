#pragma once
/// \file control.hpp
/// \brief Control-logic circuit generators.
///
/// Stand-ins for the IWLS 2005 control designs of the paper's suite
/// (ac97_ctrl, vga_lcd): wide, shallow circuits — many PIs/POs, small
/// per-output cones, low logic depth — the opposite corner of the design
/// space from the deep arithmetic cores. Deterministic for a given seed.

#include <cstdint>

#include "aig/aig.hpp"

namespace simsweep::gen {

struct ControlParams {
  unsigned num_pis = 512;
  unsigned num_pos = 512;
  /// Per-output cone: number of PIs it reads (locality window keeps the
  /// structure bus-like rather than random-graph-like).
  unsigned cone_inputs = 8;
  unsigned locality = 32;   ///< PI window each output draws from
  unsigned depth = 4;       ///< gate levels per cone
  std::uint64_t seed = 1;
};

/// Wide shallow control logic: each PO is a random AND/OR/XOR/MUX tree
/// over a localized PI window.
aig::Aig control_logic(const ControlParams& params);

/// An ac97_ctrl-like profile: very wide, very shallow.
aig::Aig ac97_like(unsigned scale, std::uint64_t seed);

/// A vga_lcd-like profile: wide with slightly deeper cones.
aig::Aig vga_like(unsigned scale, std::uint64_t seed);

}  // namespace simsweep::gen
