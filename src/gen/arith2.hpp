#pragma once
/// \file arith2.hpp
/// \brief Additional EPFL-style circuit families: divider, barrel
/// shifter, max, decoder, priority encoder, ALU slice.
///
/// These extend the Table II suite with the rest of the EPFL
/// combinational benchmark families (div, bar, max, dec, priority,
/// arbiter-like control). They are used by the extended tests and are
/// available to users fabricating their own CEC instances.

#include "gen/arith.hpp"

namespace simsweep::gen {

/// Restoring integer divider: n-bit dividend, n-bit divisor ->
/// n-bit quotient then n-bit remainder (2n POs). Division by zero yields
/// quotient all-ones and remainder = dividend, the usual restoring-array
/// convention.
aig::Aig divider(unsigned n);

/// Barrel shifter (EPFL `bar` style): w-bit data, log2(w)-bit shift
/// amount, left rotate. w must be a power of two.
aig::Aig barrel_rotator(unsigned w);

/// max (EPFL style): two n-bit operands, outputs the larger (n POs) —
/// a comparator plus a bus mux.
aig::Aig max_circuit(unsigned n);

/// Binary decoder (EPFL `dec` style): n select inputs, 2^n one-hot
/// outputs.
aig::Aig decoder(unsigned n);

/// Priority encoder (EPFL `priority` style): n request inputs, outputs
/// ceil(log2(n)) index bits of the highest-priority (lowest-index) active
/// request plus a `valid` bit.
aig::Aig priority_encoder(unsigned n);

/// A 1-bit-sliced ALU: two n-bit operands + 2-bit opcode
/// (00 add, 01 and, 10 or, 11 xor), n+1 POs (result + carry).
aig::Aig alu(unsigned n);

}  // namespace simsweep::gen
