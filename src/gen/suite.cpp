#include "gen/suite.hpp"

#include <stdexcept>

#include "gen/arith.hpp"
#include "gen/control.hpp"
#include "gen/transforms.hpp"
#include "opt/resyn.hpp"

namespace simsweep::gen {

const std::vector<std::string>& table2_families() {
  static const std::vector<std::string> families = {
      "hyp", "log2", "multiplier", "sqrt",      "square",
      "voter", "sin", "ac97_ctrl",  "vga_lcd"};
  return families;
}

namespace {

aig::Aig base_circuit(const std::string& family, std::uint64_t seed) {
  // Widths are chosen so each family lands in the same engine regime as
  // in the paper's Table II / Fig. 6 (with our CPU-scaled thresholds
  // k_P=24, k_p=k_g=14; see bench/bench_common.hpp):
  //   - log2, sin, ac97: PO supports fit k_P -> solved by the P phase;
  //   - multiplier, square: supports exceed k_P but internal pairs are
  //     small-support -> G/L phases do the work;
  //   - hyp, voter, vga: partially reduced, SAT finishes the residue;
  //   - sqrt: digit-recurrence structure resists sweeping -> SAT does
  //     nearly everything (the paper's 0.7%-reduction case).
  if (family == "hyp") return hyp(14);
  if (family == "log2") return log2_approx(16, 8);
  if (family == "multiplier") return array_multiplier(14);
  if (family == "sqrt") return isqrt(32);
  if (family == "square") return square(20);
  if (family == "voter") return voter(63);
  if (family == "sin") return cordic_sin(16, 12);
  if (family == "ac97_ctrl") return ac97_like(2, seed);
  if (family == "vga_lcd") return vga_like(2, seed + 1);
  throw std::invalid_argument("unknown benchmark family: " + family);
}

}  // namespace

BenchCase make_case(const std::string& family, const SuiteParams& params) {
  const aig::Aig base = base_circuit(family, params.seed);
  const aig::Aig optimized_base = opt::resyn2(base);
  BenchCase c;
  c.name = family + "_" + std::to_string(params.doublings) + "xd";
  c.original = double_circuit(base, params.doublings);
  c.optimized = double_circuit(optimized_base, params.doublings);
  return c;
}

std::vector<BenchCase> table2_suite(const SuiteParams& params) {
  std::vector<BenchCase> cases;
  cases.reserve(table2_families().size());
  for (const std::string& family : table2_families())
    cases.push_back(make_case(family, params));
  return cases;
}

}  // namespace simsweep::gen
