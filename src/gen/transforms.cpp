#include "gen/transforms.hpp"

#include <vector>

namespace simsweep::gen {

aig::Aig double_circuit(const aig::Aig& src) {
  aig::Aig dst(2 * src.num_pis());

  auto copy_with_pi_base = [&](unsigned pi_base) {
    std::vector<aig::Lit> lit_of(src.num_nodes());
    lit_of[0] = aig::kLitFalse;
    for (unsigned i = 0; i < src.num_pis(); ++i)
      lit_of[i + 1] = dst.pi_lit(pi_base + i);
    for (aig::Var v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
      const aig::Lit f0 = src.fanin0(v), f1 = src.fanin1(v);
      lit_of[v] = dst.add_and(
          aig::lit_notcond(lit_of[aig::lit_var(f0)], aig::lit_compl(f0)),
          aig::lit_notcond(lit_of[aig::lit_var(f1)], aig::lit_compl(f1)));
    }
    for (aig::Lit po : src.pos())
      dst.add_po(
          aig::lit_notcond(lit_of[aig::lit_var(po)], aig::lit_compl(po)));
  };
  copy_with_pi_base(0);
  copy_with_pi_base(src.num_pis());
  return dst;
}

aig::Aig double_circuit(const aig::Aig& src, unsigned k) {
  aig::Aig out = src;
  for (unsigned i = 0; i < k; ++i) out = double_circuit(out);
  return out;
}

}  // namespace simsweep::gen
