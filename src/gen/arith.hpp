#pragma once
/// \file arith.hpp
/// \brief Arithmetic circuit generators.
///
/// These fabricate the arithmetic design families of the paper's benchmark
/// suite (EPFL arithmetic: hyp, log2, multiplier, sqrt, square, sin,
/// voter) as parameterized AIG generators, since the original benchmark
/// files are not available offline (DESIGN.md §2). Where a family has
/// classic alternative implementations (ripple vs prefix adders, array vs
/// Wallace multipliers) both are provided — structurally different equal
/// circuits are first-class CEC test material.
///
/// Conventions: operand bit i is PI index (operand_base + i), LSB first;
/// output bit i is PO index i, LSB first. All circuits are pure
/// combinational AIGs.

#include <utility>
#include <vector>

#include "aig/aig.hpp"

namespace simsweep::gen {

/// Word of literals, LSB first.
using Bus = std::vector<aig::Lit>;

// --- Building blocks (operate inside an existing AIG). ---

/// sum, carry of a full adder.
std::pair<aig::Lit, aig::Lit> full_adder(aig::Aig& a, aig::Lit x, aig::Lit y,
                                         aig::Lit cin);
/// Ripple-carry addition; result has max(|x|,|y|)+1 bits.
Bus ripple_add(aig::Aig& a, const Bus& x, const Bus& y);
/// Kogge-Stone parallel-prefix addition; same interface as ripple_add.
Bus kogge_stone_add(aig::Aig& a, const Bus& x, const Bus& y);
/// x - y assuming x >= y is NOT required; returns (diff of |x| bits,
/// borrow-out literal which is 1 iff x < y).
std::pair<Bus, aig::Lit> subtract(aig::Aig& a, const Bus& x, const Bus& y);
/// sel ? t : e, bitwise (|t| == |e|).
Bus mux_bus(aig::Aig& a, aig::Lit sel, const Bus& t, const Bus& e);

// --- Whole circuits. ---

/// n-bit + n-bit adder, 2n PIs, n+1 POs. Ripple-carry structure.
aig::Aig ripple_adder(unsigned n);
/// Same function, Kogge-Stone structure (equivalent to ripple_adder(n)).
aig::Aig kogge_stone_adder(unsigned n);

/// n x n multiplier, 2n PIs, 2n POs. Array (carry-save rows) structure.
aig::Aig array_multiplier(unsigned n);
/// Same function, Wallace-tree reduction structure.
aig::Aig wallace_multiplier(unsigned n);

/// n-bit squarer (x * x), n PIs, 2n POs.
aig::Aig square(unsigned n);

/// Integer square root of an n-bit input (n even): n PIs, n/2 POs.
/// Restoring (digit-recurrence) structure.
aig::Aig isqrt(unsigned n);

/// hyp: floor(sqrt(a^2 + b^2)) of two n-bit operands: 2n PIs, n+1 POs.
aig::Aig hyp(unsigned n);

/// Integer log2: floor(log2(x)) of an n-bit input with `frac` fractional
/// bits obtained from the normalized mantissa: n PIs, ceil(log2(n))+frac
/// POs. Output 0 for x == 0.
aig::Aig log2_approx(unsigned n, unsigned frac);

/// Fixed-point sine via `iters` unrolled CORDIC rotations. Input: n-bit
/// angle; output: n-bit sine (two's complement fixed point). n <= 24.
aig::Aig cordic_sin(unsigned n, unsigned iters);

/// Majority voter over n inputs (n odd): n PIs, 1 PO. Popcount-tree
/// structure followed by a comparator, like the EPFL `voter`.
aig::Aig voter(unsigned n);

}  // namespace simsweep::gen
