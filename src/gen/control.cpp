#include "gen/control.hpp"

#include <algorithm>
#include <vector>

#include "common/random.hpp"

namespace simsweep::gen {

aig::Aig control_logic(const ControlParams& p) {
  Rng rng(p.seed);
  aig::Aig a(p.num_pis);

  for (unsigned o = 0; o < p.num_pos; ++o) {
    // Pick the PI window this output reads.
    const unsigned base =
        p.num_pis > p.locality
            ? static_cast<unsigned>(rng.below(p.num_pis - p.locality))
            : 0;
    std::vector<aig::Lit> pool;
    pool.reserve(p.cone_inputs);
    for (unsigned i = 0; i < p.cone_inputs; ++i) {
      const unsigned pi =
          base + static_cast<unsigned>(
                     rng.below(std::min(p.locality, p.num_pis)));
      pool.push_back(aig::make_lit(std::min(pi, p.num_pis - 1) + 1,
                                   rng.flip()));
    }
    // Random gate tree of the requested depth over the pool.
    for (unsigned d = 0; d < p.depth; ++d) {
      std::vector<aig::Lit> next;
      for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
        const aig::Lit x = pool[i], y = pool[i + 1];
        aig::Lit g;
        switch (rng.below(4)) {
          case 0: g = a.add_and(x, y); break;
          case 1: g = a.add_or(x, y); break;
          case 2: g = a.add_xor(x, y); break;
          default: {
            const aig::Lit s = pool[rng.below(pool.size())];
            g = a.add_mux(s, x, y);
            break;
          }
        }
        next.push_back(g);
      }
      if (pool.size() & 1) next.push_back(pool.back());
      if (next.size() <= 1) {
        pool = std::move(next);
        break;
      }
      pool = std::move(next);
    }
    // Collapse whatever remains into one output.
    aig::Lit out = pool.empty() ? aig::kLitFalse : pool[0];
    for (std::size_t i = 1; i < pool.size(); ++i)
      out = a.add_and(out, pool[i]);
    a.add_po(out);
  }
  return a;
}

aig::Aig ac97_like(unsigned scale, std::uint64_t seed) {
  ControlParams p;
  p.num_pis = 256 * scale;
  p.num_pos = 256 * scale;
  p.cone_inputs = 6;
  p.locality = 24;
  p.depth = 3;
  p.seed = seed;
  return control_logic(p);
}

aig::Aig vga_like(unsigned scale, std::uint64_t seed) {
  ControlParams p;
  p.num_pis = 192 * scale;
  p.num_pos = 224 * scale;
  p.cone_inputs = 10;
  p.locality = 48;
  p.depth = 5;
  p.seed = seed;
  return control_logic(p);
}

}  // namespace simsweep::gen
