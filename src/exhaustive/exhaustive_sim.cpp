#include "exhaustive/exhaustive_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <new>
#include <optional>

#include "common/log.hpp"
#include "common/word_kernels.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::exhaustive {

namespace {

using window::Window;
using window::kSlotConst0;

/// Per-window constant state for the batch.
struct WinState {
  std::size_t base = 0;      ///< first slot index in the simulation table
  std::size_t tt_words = 0;  ///< full truth-table length in words
  bool alive = true;         ///< still has undecided items
};

/// Simulates one window node into its slot row (word-dimension kernel).
inline void sim_node(const window::WinNode& node, std::uint64_t* base,
                     std::size_t out_slot, std::size_t E, std::size_t nw) {
  std::uint64_t* out = base + out_slot * E;
  const std::uint64_t c0 = node.compl0 ? ~std::uint64_t{0} : 0;
  const std::uint64_t c1 = node.compl1 ? ~std::uint64_t{0} : 0;
  if (node.slot0 == kSlotConst0) {
    if (node.slot1 == kSlotConst0)
      kernels::fill_words(out, c0 & c1, nw);
    else
      kernels::and1_words(out, c0, base + node.slot1 * E, c1, nw);
  } else if (node.slot1 == kSlotConst0) {
    kernels::and1_words(out, c1, base + node.slot0 * E, c0, nw);
  } else {
    kernels::and2_words(out, base + node.slot0 * E, c0,
                        base + node.slot1 * E, c1, nw);
  }
}

/// Compares one item's root segments over this round's nw words. Returns
/// true on a mismatch and stores the global bit index (for CEX decoding).
/// `mask` is the valid-bit mask for single-word tables, 0 otherwise.
inline bool compare_item(const window::ItemSlots& s,
                         const std::uint64_t* base, std::size_t E,
                         std::size_t nw, std::uint64_t word0,
                         std::uint64_t mask, std::uint64_t* mismatch_out) {
  const std::uint64_t ca = s.compl_a ? ~std::uint64_t{0} : 0;
  const std::uint64_t cb = s.compl_b ? ~std::uint64_t{0} : 0;
  const std::uint64_t* pa =
      s.slot_a == kSlotConst0 ? nullptr : base + s.slot_a * E;
  const std::uint64_t* pb =
      s.slot_b == kSlotConst0 ? nullptr : base + s.slot_b * E;
  if (pa != nullptr && pb != nullptr && mask == 0) {
    std::uint64_t diff = 0;
    const std::size_t k = kernels::mismatch_words(pa, ca, pb, cb, nw, &diff);
    if (k == nw) return false;
    *mismatch_out = ((word0 + k) << 6) +
                    static_cast<std::uint64_t>(std::countr_zero(diff));
    return true;
  }
  for (std::size_t k = 0; k < nw; ++k) {
    const std::uint64_t va = (pa != nullptr ? pa[k] : 0) ^ ca;
    const std::uint64_t vb = (pb != nullptr ? pb[k] : 0) ^ cb;
    std::uint64_t diff = va ^ vb;
    if (mask != 0) diff &= mask;
    if (diff != 0) {
      *mismatch_out = ((word0 + k) << 6) +
                      static_cast<std::uint64_t>(std::countr_zero(diff));
      return true;
    }
  }
  return false;
}

}  // namespace

BatchResult check_batch(const aig::Aig& aig,
                        const std::vector<Window>& windows,
                        const Params& params) {
  (void)aig;
  BatchResult result;
  if (windows.empty()) return result;

  // --- Alg. 1 lines 1-4: slot bases, entry size E, round count. ---
  std::vector<WinState> state(windows.size());
  std::size_t num_slots = 0;
  std::size_t max_tt = 0;
  std::size_t num_items = 0;
  std::size_t total_nodes = 0;
  std::size_t max_win_nodes = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    state[i].base = num_slots;
    state[i].tt_words = windows[i].tt_words();
    num_slots += windows[i].num_slots();
    max_tt = std::max(max_tt, state[i].tt_words);
    num_items += windows[i].items.size();
    total_nodes += windows[i].nodes.size();
    max_win_nodes = std::max(max_win_nodes, windows[i].nodes.size());
  }
  std::size_t entry = 1;
  while (entry * 2 * num_slots <= params.memory_words && entry * 2 <= max_tt)
    entry *= 2;
  // Cache-residency clamp: a smaller table swept in more rounds beats a
  // DRAM-resident one (pure perf; the outcomes are round-independent).
  bool cache_clamped = false;
  if (params.cache_words != 0)
    while (entry > 1 && entry * num_slots > params.cache_words) {
      entry /= 2;
      cache_clamped = true;
    }
  const std::size_t E = entry;
  const std::size_t rounds = (max_tt + E - 1) / E;
  result.entry_words = E;

  // Publish once per batch (all exits): hot loops never touch the sink.
  const auto publish = [&] {
    if (params.obs == nullptr) return;
    obs::Registry& r = *params.obs;
    r.add(obs::metric::kExhaustiveBatches);
    r.add(obs::metric::kExhaustiveWindows, windows.size());
    r.add(obs::metric::kExhaustiveItems, num_items);
    r.add(obs::metric::kExhaustiveRounds, result.rounds);
    r.add(obs::metric::kExhaustiveWordsSimulated, result.words_simulated);
    r.add(result.window_parallel ? obs::metric::kExhaustiveWindowParallelBatches
                                 : obs::metric::kExhaustiveLevelStagedBatches);
    if (cache_clamped) r.add(obs::metric::kExhaustiveCacheClampedBatches);
    // Rounds beyond the first exist only because the memory/cache cap
    // forced the table to be swept in slices (Alg. 1 line 2).
    if (result.rounds > 1) r.add(obs::metric::kExhaustiveRoundSplits, result.rounds - 1);
    r.add(obs::metric::kExhaustiveCexes, result.cexes.size());
    if (result.cancelled) r.add(obs::metric::kExhaustiveCancelledBatches);
    if (result.failure != BatchFailure::kNone)
      r.add(obs::metric::kExhaustiveFailedBatches);
  };

  // --- Resource-governed table allocation (DESIGN.md §2.4). This is THE
  // allocation Alg. 1's budget is about; a ledger denial or a bad_alloc
  // here is a recoverable batch failure the caller's degradation ladder
  // answers by shrinking M — never a crash. Host thread only, so the
  // injected bad_alloc is catchable right here. ---
  fault::MemoryLease lease(params.ledger,
                           num_slots * E * sizeof(std::uint64_t));
  if (!lease.ok()) {
    result.failure = BatchFailure::kMemoryBudget;
    publish();
    return result;
  }
  std::vector<std::uint64_t> simt;
  try {
    if (SIMSWEEP_FAULT_POINT(fault::sites::kExhaustiveSimtAlloc)) throw std::bad_alloc{};
    simt.resize(num_slots * E);
  } catch (const std::bad_alloc&) {
    result.failure = BatchFailure::kAlloc;
    publish();
    return result;
  }

  // Undecided-item bookkeeping. Items are identified by (window, index).
  //
  // Concurrency contract for the shared arrays below (state / decided /
  // mismatch_bit / simt): pool workers touch them only at window
  // granularity — compare_window(wi) is the sole writer of state[wi],
  // decided[wi] and mismatch_bit[wi], and each window's slot rows in simt
  // are disjoint — so concurrent workers never alias. Cross-stage reads
  // (a level kernel reading state[wi].alive written by the previous
  // round's compare) are ordered by the executor's stage barriers and by
  // run_stages() returning before the host mutates round state.
  std::vector<std::vector<std::uint8_t>> decided(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i)
    decided[i].assign(windows[i].items.size(), 0);

  // First mismatching global bit per disproved item (for CEX extraction).
  std::vector<std::vector<std::uint64_t>> mismatch_bit(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i)
    mismatch_bit[i].assign(windows[i].items.size(), 0);

  // --- Parallelism-dimension choice (paper Fig. 3, adaptive). ---
  parallel::ThreadPool& pool = parallel::ThreadPool::global();
  const std::size_t P = pool.concurrency();
  bool window_parallel = false;
  switch (params.strategy) {
    case Strategy::kWindowParallel:
      window_parallel = true;
      break;
    case Strategy::kLevelStaged:
      window_parallel = false;
      break;
    case Strategy::kAuto:
      // Whole-window serial sweeps win whenever the windows themselves can
      // load every execution context and no single window dominates the
      // batch; with one context there are no barriers to amortize at all,
      // so the serial sweep's locality always wins. Otherwise (few large
      // windows) parallelize inside the windows, level batch by level
      // batch, with the fused staged launch.
      window_parallel =
          P <= 1 || (windows.size() >= 2 * P &&
                     max_win_nodes * 4 <= total_nodes);
      break;
  }
  result.window_parallel = window_parallel;

  // Shared per-round kernels (both dimension choices use the same code).
  auto project_window = [&](const Window& w, std::uint64_t* base,
                            std::size_t r, std::size_t nw) {
    const std::uint64_t word0 = r * E;
    for (unsigned j = 0; j < w.num_inputs(); ++j) {
      std::uint64_t* dst = base + j * E;
      for (std::size_t k = 0; k < nw; ++k)
        dst[k] = tt::projection_word(j, word0 + k);
    }
  };
  auto compare_window = [&](std::size_t wi, std::size_t r, std::size_t nw) {
    const Window& w = windows[wi];
    const std::uint64_t* base = simt.data() + state[wi].base * E;
    const std::uint64_t mask =
        state[wi].tt_words == 1 ? tt::word_mask(w.num_inputs()) : 0;
    bool all_decided = true;
    for (std::size_t ii = 0; ii < w.items.size(); ++ii) {
      if (decided[wi][ii]) continue;
      if (compare_item(w.item_slots[ii], base, E, nw, r * E, mask,
                       &mismatch_bit[wi][ii]))
        decided[wi][ii] = 1;  // disproved
      else
        all_decided = false;
    }
    if (all_decided) state[wi].alive = false;  // skip remaining rounds
  };
  const auto cancel_fired = [&] {
    return params.cancel != nullptr &&
           params.cancel->load(std::memory_order_relaxed);
  };
  const auto deadline_expired = [&] {
    return params.deadline != nullptr && params.deadline->expired();
  };
  // Workers poll this like cancellation; the host attributes the stop to
  // cancel vs deadline afterwards (a deadline never un-expires).
  const auto stop_fired = [&] { return cancel_fired() || deadline_expired(); };

  if (window_parallel) {
    // --- Window dimension: every worker sweeps whole windows serially
    // through their full level order AND all their rounds — zero
    // cross-window barriers, maximal table locality. ---
    std::vector<std::uint32_t> win_rounds(windows.size(), 0);
    std::vector<std::size_t> win_words(windows.size(), 0);
    parallel::parallel_for_chunks(
        0, windows.size(), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t wi = lo; wi < hi; ++wi) {
            const Window& w = windows[wi];
            const std::size_t tt = state[wi].tt_words;
            std::uint64_t* base = simt.data() + state[wi].base * E;
            const unsigned in = w.num_inputs();
            const std::size_t wrounds = (tt + E - 1) / E;
            for (std::size_t r = 0; r < wrounds && state[wi].alive; ++r) {
              if (stop_fired()) return;  // abandon the chunk
              const std::size_t nw = std::min(E, tt - r * E);
              project_window(w, base, r, nw);
              for (std::size_t ni = 0; ni < w.wnodes.size(); ++ni)
                sim_node(w.wnodes[ni], base, in + ni, E, nw);
              compare_window(wi, r, nw);
              win_words[wi] += w.nodes.size() * nw;
              win_rounds[wi] = r + 1;
            }
          }
        });
    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
      result.words_simulated += win_words[wi];
      result.rounds = std::max<std::size_t>(result.rounds, win_rounds[wi]);
    }
    if (cancel_fired()) {
      result.cancelled = true;
      publish();
      return result;
    }
    if (deadline_expired()) {
      result.failure = BatchFailure::kDeadline;
      publish();
      return result;
    }
  } else {
    // --- Level-batch dimension (Alg. 1 lines 5-14): each round's kernel
    // sequence — input projection, level 1..L, root compare — is ONE
    // fused staged launch; the per-level work lists are flattened across
    // windows and chunks hoist per-window setup over runs of nodes. ---
    std::uint32_t max_levels = 0;
    for (const Window& w : windows)
      max_levels = std::max(max_levels, w.num_levels());
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        level_work(max_levels + 1);
    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
      const Window& w = windows[wi];
      for (std::uint32_t l = 1; l <= w.num_levels(); ++l)
        for (std::uint32_t n = w.level_offset[l - 1]; n < w.level_offset[l];
             ++n)
          level_work[l].emplace_back(static_cast<std::uint32_t>(wi), n);
    }

    std::size_t cur_round = 0;
    auto words_this_round = [&](std::size_t wi) {
      return std::min(E, state[wi].tt_words - cur_round * E);
    };

    // The plan is built once; every round re-runs it with cur_round
    // rebound. Stage bodies see the current round through the captured
    // references.
    parallel::StagePlan plan;
    plan.set_cancel(params.cancel);
    plan.stage_chunks(0, windows.size(),
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t wi = lo; wi < hi; ++wi) {
                          if (!state[wi].alive) continue;
                          project_window(windows[wi],
                                         simt.data() + state[wi].base * E,
                                         cur_round, words_this_round(wi));
                        }
                      });
    for (std::uint32_t l = 1; l <= max_levels; ++l) {
      if (level_work[l].empty()) continue;
      plan.stage_chunks(
          0, level_work[l].size(),
          [&, work = &level_work[l]](std::size_t lo, std::size_t hi) {
            std::size_t t = lo;
            while (t < hi) {
              const std::uint32_t wi = (*work)[t].first;
              std::size_t run = t + 1;
              while (run < hi && (*work)[run].first == wi) ++run;
              if (state[wi].alive) {
                const Window& w = windows[wi];
                std::uint64_t* base = simt.data() + state[wi].base * E;
                const std::size_t nw = words_this_round(wi);
                const unsigned in = w.num_inputs();
                for (std::size_t q = t; q < run; ++q)
                  sim_node(w.wnodes[(*work)[q].second], base,
                           in + (*work)[q].second, E, nw);
              }
              t = run;
            }
          });
    }
    plan.stage_chunks(0, windows.size(),
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t wi = lo; wi < hi; ++wi)
                          if (state[wi].alive)
                            compare_window(wi, cur_round,
                                           words_this_round(wi));
                      });

    for (std::size_t r = 0; r < rounds; ++r) {
      if (cancel_fired()) {
        result.cancelled = true;
        publish();
        return result;
      }
      if (deadline_expired()) {
        result.failure = BatchFailure::kDeadline;
        publish();
        return result;
      }
      // Windows needing simulation this round (Alg. 1 line 6).
      bool any_active = false;
      for (std::size_t wi = 0; wi < windows.size(); ++wi) {
        const bool active = state[wi].alive && state[wi].tt_words > r * E;
        state[wi].alive = state[wi].alive && active;
        any_active |= active;
      }
      if (!any_active) break;
      cur_round = r;
      for (std::size_t wi = 0; wi < windows.size(); ++wi)
        if (state[wi].alive)
          result.words_simulated +=
              windows[wi].nodes.size() * words_this_round(wi);
      if (!pool.run_stages(plan)) {
        result.cancelled = true;
        publish();
        return result;
      }
      ++result.rounds;
    }
  }

  // --- Collect outcomes and CEXs. ---
  result.outcomes.reserve(num_items);
  for (std::size_t wi = 0; wi < windows.size(); ++wi) {
    const Window& w = windows[wi];
    for (std::size_t ii = 0; ii < w.items.size(); ++ii) {
      const bool disproved = decided[wi][ii];
      result.outcomes.emplace_back(
          w.items[ii].tag,
          disproved ? ItemStatus::kDisproved : ItemStatus::kProved);
      if (disproved && params.collect_cex &&
          result.cexes.size() < params.max_cex) {
        Cex cex;
        cex.tag = w.items[ii].tag;
        const std::uint64_t idx = mismatch_bit[wi][ii];
        cex.assignment.reserve(w.num_inputs());
        for (unsigned j = 0; j < w.num_inputs(); ++j)
          cex.assignment.emplace_back(w.inputs[j],
                                      static_cast<bool>((idx >> j) & 1));
        result.cexes.push_back(std::move(cex));
      }
    }
  }
  publish();
  return result;
}

std::optional<PairCheck> check_pair(const aig::Aig& aig, aig::Lit a,
                                    aig::Lit b,
                                    const std::vector<aig::Var>& inputs,
                                    const Params& params) {
  auto w = window::build_window(aig, inputs,
                                {window::CheckItem{a, b, /*tag=*/0}});
  if (!w) return std::nullopt;
  BatchResult r = check_batch(aig, {std::move(*w)}, params);
  PairCheck out;
  out.status = r.outcomes.at(0).second;
  if (!r.cexes.empty()) out.cex = std::move(r.cexes.front().assignment);
  return out;
}

}  // namespace simsweep::exhaustive
