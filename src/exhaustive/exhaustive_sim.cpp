#include "exhaustive/exhaustive_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <optional>

#include "common/log.hpp"
#include "parallel/thread_pool.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::exhaustive {

namespace {

using window::Window;
using window::kSlotConst0;

/// Per-window constant state for the batch.
struct WinState {
  std::size_t base = 0;      ///< first slot index in the simulation table
  std::size_t tt_words = 0;  ///< full truth-table length in words
  bool alive = true;         ///< still has undecided items
};

}  // namespace

BatchResult check_batch(const aig::Aig& aig,
                        const std::vector<Window>& windows,
                        const Params& params) {
  (void)aig;
  BatchResult result;
  if (windows.empty()) return result;

  // --- Alg. 1 lines 1-4: slot bases, entry size E, round count. ---
  std::vector<WinState> state(windows.size());
  std::size_t num_slots = 0;
  std::size_t max_tt = 0;
  std::size_t num_items = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    state[i].base = num_slots;
    state[i].tt_words = windows[i].tt_words();
    num_slots += windows[i].num_slots();
    max_tt = std::max(max_tt, state[i].tt_words);
    num_items += windows[i].items.size();
  }
  std::size_t entry = 1;
  while (entry * 2 * num_slots <= params.memory_words && entry * 2 <= max_tt)
    entry *= 2;
  const std::size_t E = entry;
  const std::size_t rounds = (max_tt + E - 1) / E;
  result.entry_words = E;

  std::vector<std::uint64_t> simt(num_slots * E);

  // Undecided-item bookkeeping. Items are identified by (window, index).
  std::vector<std::vector<std::uint8_t>> decided(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i)
    decided[i].assign(windows[i].items.size(), 0);

  // First mismatching global bit per disproved item (for CEX extraction).
  std::vector<std::vector<std::uint64_t>> mismatch_bit(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i)
    mismatch_bit[i].assign(windows[i].items.size(), 0);

  // Flattened per-level work lists across all windows (computed once; the
  // active filter is applied per round).
  std::uint32_t max_levels = 0;
  for (const Window& w : windows)
    max_levels = std::max(max_levels, w.num_levels());
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> level_work(
      max_levels + 1);
  for (std::size_t wi = 0; wi < windows.size(); ++wi) {
    const Window& w = windows[wi];
    for (std::uint32_t l = 1; l <= w.num_levels(); ++l)
      for (std::uint32_t n = w.level_offset[l - 1]; n < w.level_offset[l];
           ++n)
        level_work[l].emplace_back(static_cast<std::uint32_t>(wi), n);
  }

  // --- Alg. 1 lines 5-14: multi-round simulation. ---
  for (std::size_t r = 0; r < rounds; ++r) {
    if (params.cancel != nullptr &&
        params.cancel->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      return result;
    }
    // Windows needing simulation this round (Alg. 1 line 6).
    bool any_active = false;
    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
      const bool active = state[wi].alive && state[wi].tt_words > r * E;
      state[wi].alive = state[wi].alive && active;
      any_active |= active;
    }
    if (!any_active) break;

    auto words_this_round = [&](std::size_t wi) {
      return std::min(E, state[wi].tt_words - r * E);
    };

    for (std::size_t wi = 0; wi < windows.size(); ++wi)
      if (state[wi].alive)
        result.words_simulated +=
            windows[wi].nodes.size() * words_this_round(wi);

    // Line 9: write projection-table segments for the inputs.
    parallel::parallel_for(0, windows.size(), [&](std::size_t wi) {
      if (!state[wi].alive) return;
      const Window& w = windows[wi];
      const std::size_t nw = words_this_round(wi);
      for (unsigned j = 0; j < w.num_inputs(); ++j) {
        std::uint64_t* dst = &simt[(state[wi].base + j) * E];
        for (std::size_t k = 0; k < nw; ++k)
          dst[k] = tt::projection_word(j, r * E + k);
      }
    });

    // Lines 10-11: level-wise parallel node simulation.
    for (std::uint32_t l = 1; l <= max_levels; ++l) {
      const auto& work = level_work[l];
      if (work.empty()) continue;
      parallel::parallel_for(0, work.size(), [&](std::size_t t) {
        const auto [wi, ni] = work[t];
        if (!state[wi].alive) return;
        const Window& w = windows[wi];
        const std::size_t nw = words_this_round(wi);
        const window::WinNode& node = w.wnodes[ni];
        const std::size_t base = state[wi].base;
        std::uint64_t* out = &simt[(base + w.num_inputs() + ni) * E];
        const std::uint64_t c0 = node.compl0 ? ~std::uint64_t{0} : 0;
        const std::uint64_t c1 = node.compl1 ? ~std::uint64_t{0} : 0;
        if (node.slot0 == kSlotConst0 && node.slot1 == kSlotConst0) {
          for (std::size_t k = 0; k < nw; ++k) out[k] = c0 & c1;
        } else if (node.slot0 == kSlotConst0) {
          const std::uint64_t* b = &simt[(base + node.slot1) * E];
          for (std::size_t k = 0; k < nw; ++k) out[k] = c0 & (b[k] ^ c1);
        } else if (node.slot1 == kSlotConst0) {
          const std::uint64_t* a = &simt[(base + node.slot0) * E];
          for (std::size_t k = 0; k < nw; ++k) out[k] = (a[k] ^ c0) & c1;
        } else {
          const std::uint64_t* a = &simt[(base + node.slot0) * E];
          const std::uint64_t* b = &simt[(base + node.slot1) * E];
          for (std::size_t k = 0; k < nw; ++k)
            out[k] = (a[k] ^ c0) & (b[k] ^ c1);
        }
      });
    }

    // Lines 12-14: compare root truth-table segments per item.
    parallel::parallel_for(0, windows.size(), [&](std::size_t wi) {
      if (!state[wi].alive) return;
      const Window& w = windows[wi];
      const std::size_t nw = words_this_round(wi);
      const std::size_t base = state[wi].base;
      const std::uint64_t mask = tt::word_mask(w.num_inputs());
      bool all_decided = true;
      for (std::size_t ii = 0; ii < w.items.size(); ++ii) {
        if (decided[wi][ii]) continue;
        const window::ItemSlots& s = w.item_slots[ii];
        const std::uint64_t ca = s.compl_a ? ~std::uint64_t{0} : 0;
        const std::uint64_t cb = s.compl_b ? ~std::uint64_t{0} : 0;
        for (std::size_t k = 0; k < nw; ++k) {
          const std::uint64_t va =
              (s.slot_a == kSlotConst0 ? 0 : simt[(base + s.slot_a) * E + k]) ^
              ca;
          const std::uint64_t vb =
              (s.slot_b == kSlotConst0 ? 0 : simt[(base + s.slot_b) * E + k]) ^
              cb;
          std::uint64_t diff = va ^ vb;
          if (nw == 1 && state[wi].tt_words == 1) diff &= mask;
          if (diff) {
            decided[wi][ii] = 1;  // disproved
            mismatch_bit[wi][ii] =
                ((r * E + k) << 6) +
                static_cast<std::uint64_t>(std::countr_zero(diff));
            break;
          }
        }
        all_decided = all_decided && decided[wi][ii];
      }
      if (all_decided) state[wi].alive = false;  // skip remaining rounds
    });
    ++result.rounds;
  }

  // --- Collect outcomes and CEXs. ---
  result.outcomes.reserve(num_items);
  for (std::size_t wi = 0; wi < windows.size(); ++wi) {
    const Window& w = windows[wi];
    for (std::size_t ii = 0; ii < w.items.size(); ++ii) {
      const bool disproved = decided[wi][ii];
      result.outcomes.emplace_back(
          w.items[ii].tag,
          disproved ? ItemStatus::kDisproved : ItemStatus::kProved);
      if (disproved && params.collect_cex &&
          result.cexes.size() < params.max_cex) {
        Cex cex;
        cex.tag = w.items[ii].tag;
        const std::uint64_t idx = mismatch_bit[wi][ii];
        cex.assignment.reserve(w.num_inputs());
        for (unsigned j = 0; j < w.num_inputs(); ++j)
          cex.assignment.emplace_back(w.inputs[j],
                                      static_cast<bool>((idx >> j) & 1));
        result.cexes.push_back(std::move(cex));
      }
    }
  }
  return result;
}

std::optional<PairCheck> check_pair(const aig::Aig& aig, aig::Lit a,
                                    aig::Lit b,
                                    const std::vector<aig::Var>& inputs,
                                    const Params& params) {
  auto w = window::build_window(aig, inputs,
                                {window::CheckItem{a, b, /*tag=*/0}});
  if (!w) return std::nullopt;
  BatchResult r = check_batch(aig, {std::move(*w)}, params);
  PairCheck out;
  out.status = r.outcomes.at(0).second;
  if (!r.cexes.empty()) out.cex = std::move(r.cexes.front().assignment);
  return out;
}

}  // namespace simsweep::exhaustive
