#pragma once
/// \file exhaustive_sim.hpp
/// \brief Parallel exhaustive simulation (paper Alg. 1, §III-B2).
///
/// Proves or disproves a batch of equivalence checks by computing and
/// comparing the *complete* truth tables of the checked literals over
/// their windows' inputs. Memory is capped: each simulation-table entry
/// holds E = 2^e words, with E chosen on the fly as the largest power of
/// two such that the whole table fits in the configured budget (Alg. 1
/// line 2); the full 2^k-bit tables are then covered by multiple rounds,
/// round r simulating word range [rE, (r+1)E).
///
/// The three dimensions of parallelism of paper Fig. 3 map to the CPU
/// substrate as follows: windows × level-batch nodes are flattened into
/// per-level work lists processed by parallel_for (dimensions 2 and 3);
/// the per-entry word loop (dimension 1) is a tight sequential loop that
/// the compiler vectorizes — on a GPU it would be the intra-warp thread
/// dimension.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "window/window.hpp"

namespace simsweep::exhaustive {

struct Params {
  /// Memory budget M for the simulation table, in 64-bit words (Alg. 1
  /// input). Default 2^22 words = 32 MiB.
  std::size_t memory_words = std::size_t{1} << 22;
  /// Whether to extract a counter-example pattern per disproved item.
  bool collect_cex = true;
  /// Cap on collected CEXs per batch (one per item at most).
  std::size_t max_cex = 256;
  /// Cooperative cancellation: checked between rounds. When it fires the
  /// batch returns with `cancelled` set and its outcomes MUST be ignored.
  const std::atomic<bool>* cancel = nullptr;
};

enum class ItemStatus : std::uint8_t {
  kProved,    ///< truth tables identical over every round
  kDisproved  ///< a mismatching pattern exists (for local checking this
              ///< means *inconclusive*, see paper §III-C1)
};

/// A disproving input pattern, as window-input assignments.
struct Cex {
  std::uint32_t tag = 0;
  std::vector<std::pair<aig::Var, bool>> assignment;
};

struct BatchResult {
  /// (tag, status) for every item of every window in the batch.
  std::vector<std::pair<std::uint32_t, ItemStatus>> outcomes;
  std::vector<Cex> cexes;
  /// Telemetry for the benches.
  std::size_t entry_words = 0;      ///< chosen E
  std::size_t rounds = 0;           ///< executed rounds
  std::size_t words_simulated = 0;  ///< Σ node-words computed
  /// True iff params.cancel fired mid-batch; outcomes are then invalid.
  bool cancelled = false;
};

/// Checks every item of every window by exhaustive simulation. Windows
/// must have been produced by build_window() on this AIG.
BatchResult check_batch(const aig::Aig& aig,
                        const std::vector<window::Window>& windows,
                        const Params& params = {});

/// Convenience wrapper: single pair, global function checking over the
/// union of supports. Returns nullopt if `inputs` is not a valid cut.
struct PairCheck {
  ItemStatus status = ItemStatus::kProved;
  std::vector<std::pair<aig::Var, bool>> cex;  ///< set iff disproved
};
std::optional<PairCheck> check_pair(const aig::Aig& aig, aig::Lit a,
                                    aig::Lit b,
                                    const std::vector<aig::Var>& inputs,
                                    const Params& params = {});

}  // namespace simsweep::exhaustive
