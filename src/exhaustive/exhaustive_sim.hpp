#pragma once
/// \file exhaustive_sim.hpp
/// \brief Parallel exhaustive simulation (paper Alg. 1, §III-B2).
///
/// Proves or disproves a batch of equivalence checks by computing and
/// comparing the *complete* truth tables of the checked literals over
/// their windows' inputs. Memory is capped: each simulation-table entry
/// holds E = 2^e words, with E chosen on the fly as the largest power of
/// two such that the whole table fits in the configured budget (Alg. 1
/// line 2); the full 2^k-bit tables are then covered by multiple rounds,
/// round r simulating word range [rE, (r+1)E).
///
/// The three dimensions of parallelism of paper Fig. 3 map to the CPU
/// substrate adaptively, per batch (see Params::strategy):
///  - window dimension: when the batch has many windows relative to the
///    executor width (or the executor is a single context), each worker
///    simulates whole windows serially — full level order, all rounds —
///    with zero cross-window barriers and maximal locality;
///  - level-batch dimension: when the batch has few large windows, each
///    round's kernel sequence (input projection -> level 1..L -> root
///    compare) is fused into ONE staged launch (parallel_stages) over
///    flattened per-level work lists, with lightweight internal barriers
///    instead of per-level submission handshakes;
///  - word dimension: the per-entry word loops are 4-wide unrolled
///    restrict-qualified kernels (common/word_kernels.hpp) — on a GPU
///    they would be the intra-warp thread dimension.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "fault/governor.hpp"
#include "window/window.hpp"

namespace simsweep::obs {
class Registry;
}  // namespace simsweep::obs

namespace simsweep::exhaustive {

/// Which parallelism dimension check_batch uses (paper Fig. 3).
enum class Strategy : std::uint8_t {
  kAuto,            ///< pick per batch from batch shape and executor width
  kWindowParallel,  ///< always whole-window serial sweeps across windows
  kLevelStaged,     ///< always fused level-staged rounds
};

struct Params {
  /// Memory budget M for the simulation table, in 64-bit words (Alg. 1
  /// input). Default 2^22 words = 32 MiB.
  std::size_t memory_words = std::size_t{1} << 22;
  /// Soft cache-residency cap on the simulation table: the entry size E is
  /// halved (adding rounds) until slots*E fits in this many words. A purely
  /// performance-motivated refinement of Alg. 1 line 2 — the round
  /// decomposition changes, outcomes never do — that keeps the table
  /// streaming from cache instead of DRAM (measured ~2.8x on large-table
  /// batches). 0 disables the clamp. Default 2^17 words = 1 MiB.
  std::size_t cache_words = std::size_t{1} << 17;
  /// Whether to extract a counter-example pattern per disproved item.
  bool collect_cex = true;
  /// Cap on collected CEXs per batch (one per item at most).
  std::size_t max_cex = 256;
  /// Cooperative cancellation: checked between rounds AND between the
  /// fused stages / window-rounds inside a round, so even long
  /// single-round batches cancel promptly. When it fires the batch returns
  /// with `cancelled` set and its outcomes MUST be ignored.
  const std::atomic<bool>* cancel = nullptr;
  /// Parallelism-dimension choice (see Strategy).
  Strategy strategy = Strategy::kAuto;
  /// Optional metrics sink. When set, check_batch publishes its batch
  /// telemetry under `exhaustive.*` with one relaxed atomic add per metric
  /// at batch end — the hot loops accumulate into locals either way, so a
  /// null sink costs nothing (DESIGN.md §2.3).
  obs::Registry* obs = nullptr;
  /// Optional process-level memory governor (DESIGN.md §2.4): the big
  /// simulation-table allocation is charged against it before it happens,
  /// and a denied charge returns BatchFailure::kMemoryBudget instead of
  /// allocating past the process budget.
  fault::MemoryLedger* ledger = nullptr;
  /// Optional phase deadline: checked where cancellation is checked (plus
  /// between level-staged rounds); expiry returns BatchFailure::kDeadline.
  const fault::Deadline* deadline = nullptr;
};

enum class ItemStatus : std::uint8_t {
  kProved,    ///< truth tables identical over every round
  kDisproved  ///< a mismatching pattern exists (for local checking this
              ///< means *inconclusive*, see paper §III-C1)
};

/// A disproving input pattern, as window-input assignments.
struct Cex {
  std::uint32_t tag = 0;
  std::vector<std::pair<aig::Var, bool>> assignment;
};

/// Why a batch produced no outcomes (DESIGN.md §2.4). Every value except
/// kNone is recoverable: the caller's degradation ladder shrinks the
/// batch (halve M, split windows) and retries, or routes the items to the
/// sound undecided path.
enum class BatchFailure : std::uint8_t {
  kNone,          ///< batch completed; outcomes are valid
  kAlloc,         ///< simulation-table allocation threw bad_alloc
  kMemoryBudget,  ///< the memory ledger denied the table charge
  kDeadline,      ///< the phase deadline expired mid-batch
};

struct BatchResult {
  /// (tag, status) for every item of every window in the batch.
  std::vector<std::pair<std::uint32_t, ItemStatus>> outcomes;
  std::vector<Cex> cexes;
  /// Telemetry for the benches.
  std::size_t entry_words = 0;      ///< chosen E
  std::size_t rounds = 0;           ///< executed rounds
  std::size_t words_simulated = 0;  ///< Σ node-words computed
  bool window_parallel = false;     ///< dimension the batch actually used
  /// True iff params.cancel fired mid-batch; outcomes are then invalid.
  bool cancelled = false;
  /// Set when the batch failed recoverably; outcomes are then invalid
  /// (empty) and the caller decides between retry and undecided.
  BatchFailure failure = BatchFailure::kNone;
};

/// Checks every item of every window by exhaustive simulation. Windows
/// must have been produced by build_window() on this AIG.
BatchResult check_batch(const aig::Aig& aig,
                        const std::vector<window::Window>& windows,
                        const Params& params = {});

/// Convenience wrapper: single pair, global function checking over the
/// union of supports. Returns nullopt if `inputs` is not a valid cut.
struct PairCheck {
  ItemStatus status = ItemStatus::kProved;
  std::vector<std::pair<aig::Var, bool>> cex;  ///< set iff disproved
};
std::optional<PairCheck> check_pair(const aig::Aig& aig, aig::Lit a,
                                    aig::Lit b,
                                    const std::vector<aig::Var>& inputs,
                                    const Params& params = {});

}  // namespace simsweep::exhaustive
