#pragma once
/// \file thread_pool.hpp
/// \brief Data-parallel executor — the CPU stand-in for the paper's GPU.
///
/// Every parallel algorithm in the paper is a data-parallel kernel over a
/// flat index space (words of a truth table, nodes of a level batch,
/// windows of a batch — the "three dimensions of parallelism" of paper
/// Fig. 3). This module provides that execution model on CPU threads:
/// parallel_for(begin, end, body) runs body(i) for all i with dynamic
/// chunking. The engine code is written purely against this interface, so
/// the mapping back to CUDA kernels is mechanical (see DESIGN.md §2).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simsweep::parallel {

class ThreadPool {
 public:
  /// Creates a pool with the given number of worker threads (0 = use
  /// std::thread::hardware_concurrency()). The calling thread also
  /// participates in work, so the effective parallelism is workers + 1.
  explicit ThreadPool(unsigned num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide default pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

  /// Effective parallelism (workers + calling thread).
  unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(i) for every i in [begin, end), distributing contiguous
  /// chunks over the pool dynamically. Blocks until all iterations finish.
  /// body must be safe to invoke concurrently for distinct i.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
    run_range(begin, end, [&body](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }

  /// Chunked variant: body(lo, hi) handles a contiguous block, letting the
  /// caller hoist per-chunk setup out of the inner loop.
  template <typename Body>
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const Body& body) {
    run_range(begin, end, [&body](std::size_t lo, std::size_t hi) {
      body(lo, hi);
    });
  }

 private:
  using BlockFn = std::function<void(std::size_t, std::size_t)>;

  void run_range(std::size_t begin, std::size_t end, BlockFn block);
  void worker_loop();
  void work_until_done();

  /// Serializes whole jobs: the pool runs one parallel_for at a time, so
  /// it is safe to call from multiple client threads (e.g. the portfolio
  /// checker racing several engines). Held for the full job duration.
  std::mutex submit_mutex_;

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;

  // Current job (guarded by mutex_ for setup; cursor is lock-free).
  BlockFn job_;
  std::size_t job_end_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<unsigned> active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Convenience wrappers over the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

template <typename Body>
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const Body& body) {
  ThreadPool::global().parallel_for_chunks(begin, end, body);
}

}  // namespace simsweep::parallel
