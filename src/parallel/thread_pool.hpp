#pragma once
/// \file thread_pool.hpp
/// \brief Staged data-parallel executor — the CPU stand-in for the paper's
/// GPU.
///
/// Every parallel algorithm in the paper is a data-parallel kernel over a
/// flat index space (words of a truth table, nodes of a level batch,
/// windows of a batch — the "three dimensions of parallelism" of paper
/// Fig. 3). This module provides that execution model on CPU threads with
/// GPU-like launch semantics:
///
///  - parallel_for / parallel_for_chunks: one kernel over [begin, end)
///    with dynamic chunking (a single CUDA kernel launch).
///  - StagePlan + parallel_stages(): a whole sequence of dependent index
///    spaces — e.g. input projection -> level 1..L -> root compare of one
///    simulation round — submitted as ONE launch. Stages are separated by
///    lightweight internal barriers (the last worker to retire a chunk of
///    stage s opens stage s+1 with a single atomic store), so a fused
///    launch costs one submission handshake instead of one per stage.
///    This mirrors a CUDA stream: kernels queued back-to-back with
///    device-side ordering, no host round-trip between them.
///
/// Execution model: persistent workers poll an atomic {epoch, stage}
/// control word and claim contiguous chunks from a per-stage atomic ticket
/// cursor. Workers spin briefly between stages (barriers are short-lived)
/// and spin-then-park between jobs, so an idle pool consumes no CPU. The
/// calling thread participates in every job. The engine code is written
/// purely against this interface, so the mapping back to CUDA kernels is
/// mechanical (see DESIGN.md §2).
///
/// Concurrency contract: jobs are serialized — run_stages/parallel_for may
/// be called from multiple client threads (e.g. the portfolio checker
/// racing several engines) and whole jobs execute one at a time. Nested
/// submission from inside a worker body is not supported (as before).
///
/// Checked build (`-DSIMSWEEP_CHECKED=ON`): the executor shadow-tracks its
/// own stage protocol — a per-item claim bitmap (no index claimed twice),
/// retirement-counter underflow detection (no chunk retired twice),
/// single-open stage barriers (a stage opens exactly once, and only after
/// every item of the previous stage retired) and per-worker epoch
/// monotonicity. Violations abort immediately with a diagnostic on stderr
/// prefixed "SIMSWEEP_CHECKED violation". See DESIGN.md §2.2.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace simsweep::obs {
class Registry;
}  // namespace simsweep::obs

namespace simsweep::parallel {

class ThreadPool;

/// Lifetime utilization telemetry of one pool (see ThreadPool::stats()).
/// All values are process-lifetime totals, so consumers publish them with
/// set (not add) semantics.
struct PoolStats {
  unsigned workers = 0;            ///< worker threads (callers excluded)
  std::uint64_t jobs = 0;          ///< launches distributed over the pool
  std::uint64_t inline_jobs = 0;   ///< launches run inline (too little work)
  std::uint64_t stages = 0;        ///< stages across distributed launches
  std::uint64_t chunks = 0;        ///< chunk claims (workers + callers)
  double lifetime_seconds = 0;     ///< since pool construction
  /// Busy fraction (time inside jobs / lifetime) over the worker threads.
  double busy_mean = 0;
  double busy_min = 0;
  double busy_max = 0;
  /// Worker threads that failed to spawn (std::system_error at pool
  /// construction, or the "pool.spawn" injection site — DESIGN.md §2.4).
  /// The pool degrades to the workers that did start; with zero workers
  /// every launch runs inline on the caller, which is always correct.
  unsigned spawn_failures = 0;
};

#ifdef SIMSWEEP_CHECKED
/// Protocol faults the checked build can inject to prove the detector
/// fires (test-only). The next chunk processed by any pool performs the
/// violation once; the checked build must then abort.
enum class CheckedFault : int {
  kNone = 0,
  kDoubleClaim = 1,   ///< re-claims an already-claimed item index
  kDoubleRetire = 2,  ///< retires a chunk's items a second time
};

/// Arms one-shot fault injection (test-only; checked builds only).
void checked_inject_fault_for_test(CheckedFault fault);
#endif

/// An ordered sequence of data-parallel stages executed as one fused
/// launch: stage i+1 starts only after every index of stage i finished
/// (internal barrier), but no stage pays a separate submission handshake.
///
/// A plan only references its bodies, so it can be built once and re-run
/// many times (e.g. once per simulation round with the round number
/// captured by reference); it must outlive every run_stages() call using
/// it. An optional cancellation flag is checked at every chunk claim and
/// stage barrier: once it fires, remaining work is skipped and the run
/// reports cancellation.
class StagePlan {
 public:
  /// Appends a stage running body(i) for every i in [begin, end).
  template <typename Body>
  void stage(std::size_t begin, std::size_t end, Body body) {
    stages_.push_back({begin, end,
                       [b = std::move(body)](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) b(i);
                       }});
  }

  /// Appends a stage running body(lo, hi) on contiguous chunks of
  /// [begin, end), letting the caller hoist per-chunk setup.
  template <typename Body>
  void stage_chunks(std::size_t begin, std::size_t end, Body body) {
    stages_.push_back({begin, end, std::move(body)});
  }

  /// Cooperative cancellation for the whole plan (may be nullptr).
  void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Granular launch: every index is its own chunk and the launch is
  /// distributed even when the index space is tiny. For stages whose
  /// items are long-running bodies (e.g. the sweeper's shard loops, each
  /// processing work off its own ticket cursor), not fine-grained data
  /// parallelism — the usual "too little work to amortize a launch"
  /// heuristic would run them sequentially inline.
  void set_granular(bool granular) { granular_ = granular; }

  void clear() { stages_.clear(); }
  std::size_t num_stages() const { return stages_.size(); }

 private:
  friend class ThreadPool;
  using BlockFn = std::function<void(std::size_t, std::size_t)>;
  struct PlanStage {
    std::size_t begin;
    std::size_t end;
    BlockFn block;
  };
  std::vector<PlanStage> stages_;
  const std::atomic<bool>* cancel_ = nullptr;
  bool granular_ = false;
};

class ThreadPool {
 public:
  /// Creates a pool with the given number of worker threads (0 = use
  /// std::thread::hardware_concurrency()). The calling thread also
  /// participates in work, so the effective parallelism is workers + 1.
  explicit ThreadPool(unsigned num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide default pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

  /// Effective parallelism (workers + calling thread).
  unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(i) for every i in [begin, end), distributing contiguous
  /// chunks over the pool dynamically. Blocks until all iterations finish.
  /// body must be safe to invoke concurrently for distinct i.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
    if (begin >= end) return;
    if (workers_.empty() || end - begin < 2 * concurrency()) {
      inline_jobs_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    }
    const BlockFn block = [&body](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    };
    const StageRef ref{begin, end, &block};
    execute(&ref, 1, nullptr);
  }

  /// Chunked variant: body(lo, hi) handles a contiguous block, letting the
  /// caller hoist per-chunk setup out of the inner loop.
  template <typename Body>
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const Body& body) {
    if (begin >= end) return;
    if (workers_.empty() || end - begin < 2 * concurrency()) {
      inline_jobs_.fetch_add(1, std::memory_order_relaxed);
      body(begin, end);
      return;
    }
    const BlockFn block = [&body](std::size_t lo, std::size_t hi) {
      body(lo, hi);
    };
    const StageRef ref{begin, end, &block};
    execute(&ref, 1, nullptr);
  }

  /// Executes every stage of the plan in order with internal barriers.
  /// Returns false iff the plan's cancellation flag fired (some work was
  /// then skipped and the caller must discard partial results).
  bool run_stages(const StagePlan& plan);

  /// Lifetime utilization totals (jobs, stages, chunk claims, per-worker
  /// busy fractions). Safe to call concurrently with running jobs; the
  /// relaxed counters give a consistent-enough view for reporting.
  PoolStats stats() const;

  /// Publishes stats() into `registry` as the catalogued `pool.*` gauges
  /// (obs/metric_names.def; set semantics: lifetime totals, idempotent
  /// across publishers).
  void publish(obs::Registry& registry) const;

 private:
  using BlockFn = StagePlan::BlockFn;

  /// A stage as submitted: the body lives in the caller's frame / plan.
  struct StageRef {
    std::size_t begin;
    std::size_t end;
    const BlockFn* block;
  };

  /// Live per-stage execution state. Cursor and retirement counter sit on
  /// separate cache lines from the immutable descriptor fields.
  struct StageSlot {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    const BlockFn* block = nullptr;
    alignas(64) std::atomic<std::size_t> cursor{0};
    alignas(64) std::atomic<std::size_t> remaining{0};
#ifdef SIMSWEEP_CHECKED
    /// Shadow protocol state: one bit per item of [begin, end) set at
    /// claim time, and a count of barrier openings for this slot.
    std::unique_ptr<std::atomic<std::uint64_t>[]> claimed;
    std::size_t claimed_words = 0;
    std::atomic<std::uint32_t> opened{0};
#endif
  };

  static constexpr std::uint32_t kStageDone = 0xFFFFFFFFu;
  static std::uint64_t pack(std::uint32_t epoch, std::uint32_t stage) {
    return (static_cast<std::uint64_t>(epoch) << 32) | stage;
  }
  static std::uint32_t ctl_epoch(std::uint64_t ctl) {
    return static_cast<std::uint32_t>(ctl >> 32);
  }
  static std::uint32_t ctl_stage(std::uint64_t ctl) {
    return static_cast<std::uint32_t>(ctl);
  }

  bool execute(const StageRef* stages, std::size_t n,
               const std::atomic<bool>* cancel, bool granular = false)
      SIMSWEEP_EXCLUDES(submit_mutex_);
  /// `stat_slot` selects the per-thread utilization cell chunk claims are
  /// charged to: 0 for submitting threads, i+1 for worker i.
  void run_job(std::uint32_t epoch, std::size_t stat_slot)
      SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS;
  void advance_stage(std::uint32_t epoch, std::uint32_t s)
      SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS;
  void worker_loop(std::size_t worker_index);
  void park(std::uint32_t seen_epoch);

#ifdef SIMSWEEP_CHECKED
  /// Marks items [lo, hi) of slot s as claimed; aborts on a re-claim.
  void checked_claim(std::uint32_t epoch, std::uint32_t s, std::size_t lo,
                     std::size_t hi) SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS;
  /// Underflow-checked retirement; aborts on a double retire.
  std::size_t checked_retire(std::uint32_t epoch, std::uint32_t s,
                             std::size_t items)
      SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS;
  /// Barrier-side invariants: single open, all items claimed + retired.
  void checked_open(std::uint32_t epoch, std::uint32_t s)
      SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS;
#endif

  /// Serializes whole jobs: the pool runs one launch at a time, so it is
  /// safe to call from multiple client threads. Held for the job duration.
  common::Mutex submit_mutex_;

  // audit:exempt(written only in the constructor, joined in the
  // destructor; between those points workers_ is immutable)
  std::vector<std::thread> workers_;

  // Job state. Written only under submit_mutex_ while the pool is
  // quiescent (active_ == 0) and published to workers by the control_
  // store (release) / their control_ load (acquire). Worker-side readers
  // (run_job, advance_stage) are outside the analysis — see the
  // SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS declarations above.
  std::unique_ptr<StageSlot[]> slots_ SIMSWEEP_GUARDED_BY(submit_mutex_);
  std::size_t slot_capacity_ SIMSWEEP_GUARDED_BY(submit_mutex_) = 0;
  std::size_t num_stages_ SIMSWEEP_GUARDED_BY(submit_mutex_) = 0;
  const std::atomic<bool>* cancel_ SIMSWEEP_GUARDED_BY(submit_mutex_) =
      nullptr;
  std::uint32_t epoch_ SIMSWEEP_GUARDED_BY(submit_mutex_) = 0;

  /// {epoch, stage} control word: the single cell workers poll. Stage
  /// kStageDone means "no job in flight".
  alignas(64) std::atomic<std::uint64_t> control_{pack(0, kStageDone)};
  /// Number of workers currently inside run_job (quiescence barrier).
  alignas(64) std::atomic<unsigned> active_{0};

  // --- Utilization telemetry (see PoolStats / publish()). ---
  //
  // Per-thread cells: slot 0 is shared by all submitting threads, slot
  // i+1 belongs to worker i. Relaxed atomics: counts are monotone and
  // only read for reporting; each worker slot has a single writer, so
  // the cache line stays local. The one chunk-claim increment per chunk
  // is noise next to the chunk body itself.
  struct alignas(64) WorkerStat {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };
  // audit:exempt(array of single-writer relaxed atomic cells, sized
  // once in the constructor)
  std::unique_ptr<WorkerStat[]> worker_stats_;  ///< size workers_ + 1
  /// Threads that failed to start (written once in the constructor, read
  /// only after — no synchronization needed). audit:exempt(write-once)
  unsigned spawn_failures_ = 0;
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> inline_jobs_{0};
  std::atomic<std::uint64_t> stages_submitted_{0};
  // audit:exempt(set once in the constructor, read-only after)
  std::chrono::steady_clock::time_point created_;

  // Parking (only touched on the idle path). park_mutex_ guards no data —
  // it only pairs the condition variable with the control_/stop_ checks —
  // so it stays a plain std::mutex outside the analysis and outside the
  // rank table. audit:exempt(condition_variable pairing; guards no data)
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<unsigned> num_parked_{0};
  std::atomic<bool> stop_{false};
};

/// Convenience wrappers over the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

template <typename Body>
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const Body& body) {
  ThreadPool::global().parallel_for_chunks(begin, end, body);
}

inline bool parallel_stages(const StagePlan& plan) {
  return ThreadPool::global().run_stages(plan);
}

}  // namespace simsweep::parallel
