#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <string>
#include <system_error>

#include "common/lock_ranks.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"
#include "obs/registry.hpp"

#ifdef SIMSWEEP_CHECKED
#include <cstdio>
#include <cstdlib>
#endif

namespace simsweep::parallel {

namespace {

/// One step of a short busy-wait. On x86 `pause` keeps the spin cheap and
/// polite to the sibling hyperthread; everywhere (and periodically on x86
/// too) we yield so single-core hosts make progress instead of burning the
/// waiter's whole timeslice.
inline void relax(unsigned& spins) {
#if defined(__x86_64__) || defined(__i386__)
  if ((++spins & 7u) != 0) {
    __builtin_ia32_pause();
    return;
  }
#else
  ++spins;
#endif
  std::this_thread::yield();
}

/// Idle spins before a worker parks on the condition variable.
constexpr unsigned kIdleSpins = 256;

#ifdef SIMSWEEP_CHECKED
/// One-shot armed protocol fault (test-only; see checked_inject_fault_*).
std::atomic<int> g_checked_fault{0};

/// Pops the armed fault iff it matches `want` (so claim- and retire-side
/// injection points do not steal each other's fault).
bool take_fault(CheckedFault want) {
  int expected = static_cast<int>(want);
  return g_checked_fault.compare_exchange_strong(
      expected, 0, std::memory_order_relaxed);
}

[[noreturn]] void protocol_violation(const char* what, std::uint32_t epoch,
                                     std::uint32_t stage, std::size_t a,
                                     std::size_t b) {
  std::fprintf(stderr,
               "SIMSWEEP_CHECKED violation: %s (epoch=%u stage=%u "
               "detail=%zu/%zu)\n",
               what, epoch, stage, a, b);
  std::fflush(stderr);
  std::abort();
}
#endif

}  // namespace

#ifdef SIMSWEEP_CHECKED
void checked_inject_fault_for_test(CheckedFault fault) {
  g_checked_fault.store(static_cast<int>(fault), std::memory_order_relaxed);
}
#endif

ThreadPool::ThreadPool(unsigned num_workers) {
  if (num_workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_workers = hw > 1 ? hw - 1 : 0;
  }
  created_ = std::chrono::steady_clock::now();
  worker_stats_ = std::make_unique<WorkerStat[]>(num_workers + 1);
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    // Injection site `pool.spawn` (DESIGN.md §2.4): thread creation can
    // fail under thread-count limits. The pool degrades to the workers
    // that did start — worker_stats_ was sized up front and worker
    // indices are dense in [0, workers_.size()), so a short pool is
    // fully functional; with zero workers every launch runs inline.
    try {
      if (SIMSWEEP_FAULT_POINT(fault::sites::kPoolSpawn))
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "injected fault at pool.spawn");
      workers_.emplace_back(
          [this, i = static_cast<unsigned>(workers_.size())] {
            worker_loop(i);
          });
    } catch (const std::system_error&) {
      ++spawn_failures_;
    }
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard lock(park_mutex_);
  }
  park_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::run_stages(const StagePlan& plan) {
  const auto* cancel = plan.cancel_;
  if (plan.stages_.empty())
    return !(cancel != nullptr && cancel->load(std::memory_order_relaxed));
  std::vector<StageRef> refs;
  refs.reserve(plan.stages_.size());
  for (const auto& s : plan.stages_)
    refs.push_back(StageRef{s.begin, s.end, &s.block});
  return execute(refs.data(), refs.size(), cancel, plan.granular_);
}

bool ThreadPool::execute(const StageRef* stages, std::size_t n,
                         const std::atomic<bool>* cancel, bool granular) {
  const auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (stages[i].begin < stages[i].end) total += stages[i].end - stages[i].begin;
  // Inline path: no workers, or too little work to amortize a launch. The
  // cancellation flag is still honoured between stages. Granular launches
  // skip the amortization heuristic (their items are long-running bodies,
  // not loop iterations) but still run inline on a workerless pool.
  if (workers_.empty() || (!granular && total < 2 * concurrency())) {
    inline_jobs_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      if (cancelled()) return false;
      if (stages[i].begin < stages[i].end)
        (*stages[i].block)(stages[i].begin, stages[i].end);
    }
    return !cancelled();
  }

  common::RankedMutexLock submit(submit_mutex_, common::lock_ranks::pool);
  if (cancelled()) return false;

  // Stage slots may be (re)allocated here: quiescence is guaranteed — the
  // previous job's submitter only returned once active_ hit 0.
  if (n > slot_capacity_) {
    slot_capacity_ = std::max<std::size_t>(2 * slot_capacity_, n);
    slots_ = std::make_unique<StageSlot[]>(slot_capacity_);
  }
  const unsigned threads = concurrency();
  for (std::size_t i = 0; i < n; ++i) {
    StageSlot& slot = slots_[i];
    slot.begin = stages[i].begin;
    slot.end = stages[i].end;
    const std::size_t items =
        slot.end > slot.begin ? slot.end - slot.begin : 0;
    slot.chunk =
        granular ? 1 : std::max<std::size_t>(1, items / (threads * 8));
    slot.block = stages[i].block;
    slot.cursor.store(slot.begin, std::memory_order_relaxed);
    slot.remaining.store(items, std::memory_order_relaxed);
#ifdef SIMSWEEP_CHECKED
    const std::size_t words = (items + 63) / 64;
    if (words > slot.claimed_words) {
      slot.claimed = std::make_unique<std::atomic<std::uint64_t>[]>(words);
      slot.claimed_words = words;
    }
    for (std::size_t w = 0; w < words; ++w)
      slot.claimed[w].store(0, std::memory_order_relaxed);
    slot.opened.store(0, std::memory_order_relaxed);
#endif
  }
  num_stages_ = n;
  cancel_ = cancel;
  jobs_.fetch_add(1, std::memory_order_relaxed);
  stages_submitted_.fetch_add(n, std::memory_order_relaxed);
  std::uint32_t first = 0;
  while (first < n && stages[first].begin >= stages[first].end) ++first;
  const std::uint32_t e = ++epoch_;
  control_.store(pack(e, first), std::memory_order_seq_cst);
  if (num_parked_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard lock(park_mutex_);
    }
    park_cv_.notify_all();
  }

  // The calling thread participates, then waits for stragglers to leave
  // the job before the stage slots may be reused.
  const auto job_start = std::chrono::steady_clock::now();
  run_job(e, /*stat_slot=*/0);
  unsigned spins = 0;
  while (active_.load(std::memory_order_acquire) != 0) relax(spins);
  worker_stats_[0].busy_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - job_start)
              .count()),
      std::memory_order_relaxed);
  return !cancelled();
}

void ThreadPool::run_job(std::uint32_t epoch, std::size_t stat_slot) {
  unsigned spins = 0;
  for (;;) {
    const std::uint64_t ctl = control_.load(std::memory_order_acquire);
    if (ctl_epoch(ctl) != epoch) return;
    const std::uint32_t s = ctl_stage(ctl);
    if (s == kStageDone) return;
    StageSlot& slot = slots_[s];
    const std::size_t lo =
        slot.cursor.fetch_add(slot.chunk, std::memory_order_relaxed);
    if (lo >= slot.end) {
      // Stage drained; the in-flight chunks of other threads have not all
      // retired yet. Wait for the barrier to open (control_ advances).
      relax(spins);
      continue;
    }
    spins = 0;
    worker_stats_[stat_slot].chunks.fetch_add(1, std::memory_order_relaxed);
    const std::size_t hi = std::min(lo + slot.chunk, slot.end);
#ifdef SIMSWEEP_CHECKED
    checked_claim(epoch, s, lo, hi);
#endif
    if (!(cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)))
      (*slot.block)(lo, hi);
    const std::size_t items = hi - lo;
    // Retiring the last chunk of a stage opens the next stage: this store
    // is the entire inter-stage barrier.
#ifdef SIMSWEEP_CHECKED
    if (checked_retire(epoch, s, items) == items) advance_stage(epoch, s);
#else
    if (slot.remaining.fetch_sub(items, std::memory_order_acq_rel) == items)
      advance_stage(epoch, s);
#endif
  }
}

void ThreadPool::advance_stage(std::uint32_t epoch, std::uint32_t s) {
#ifdef SIMSWEEP_CHECKED
  checked_open(epoch, s);
#endif
  std::uint32_t next = s + 1;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
    next = static_cast<std::uint32_t>(num_stages_);  // skip remaining stages
  while (next < num_stages_ && slots_[next].begin >= slots_[next].end)
    ++next;
  control_.store(
      pack(epoch, next < num_stages_ ? next : kStageDone),
      std::memory_order_release);
}

#ifdef SIMSWEEP_CHECKED

void ThreadPool::checked_claim(std::uint32_t epoch, std::uint32_t s,
                               std::size_t lo, std::size_t hi) {
  StageSlot& slot = slots_[s];
  if (lo < slot.begin || hi > slot.end || lo >= hi)
    protocol_violation("ticket cursor out of stage bounds", epoch, s, lo, hi);
  const auto mark = [&](std::size_t i) {
    const std::size_t item = i - slot.begin;
    const std::uint64_t bit = std::uint64_t{1} << (item % 64);
    const std::uint64_t prev = slot.claimed[item / 64].fetch_or(
        bit, std::memory_order_relaxed);
    if ((prev & bit) != 0)
      protocol_violation("chunk index claimed twice", epoch, s, i,
                         slot.end - slot.begin);
  };
  for (std::size_t i = lo; i < hi; ++i) mark(i);
  if (take_fault(CheckedFault::kDoubleClaim)) mark(lo);
}

std::size_t ThreadPool::checked_retire(std::uint32_t epoch, std::uint32_t s,
                                       std::size_t items) {
  StageSlot& slot = slots_[s];
  if (take_fault(CheckedFault::kDoubleRetire))
    slot.remaining.fetch_sub(items, std::memory_order_acq_rel);
  const std::size_t prev =
      slot.remaining.fetch_sub(items, std::memory_order_acq_rel);
  // fetch_sub on an unsigned counter wraps on a double retire: the stolen
  // items make some later (or this) retirement observe prev < items.
  if (prev < items || prev > slot.end - slot.begin)
    protocol_violation("chunk retired twice (retirement underflow)", epoch, s,
                       prev, items);
  return prev;
}

void ThreadPool::checked_open(std::uint32_t epoch, std::uint32_t s) {
  StageSlot& slot = slots_[s];
  if (slot.opened.fetch_add(1, std::memory_order_relaxed) != 0)
    protocol_violation("stage barrier opened twice", epoch, s, 0, 0);
  const std::size_t rem = slot.remaining.load(std::memory_order_acquire);
  if (rem != 0)
    protocol_violation("stage opened before all chunks retired", epoch, s,
                       rem, slot.end - slot.begin);
  const std::size_t items = slot.end - slot.begin;
  for (std::size_t w = 0; w < (items + 63) / 64; ++w) {
    const std::size_t in_word = std::min<std::size_t>(64, items - w * 64);
    const std::uint64_t want =
        in_word == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << in_word) - 1;
    if (slot.claimed[w].load(std::memory_order_relaxed) != want)
      protocol_violation("stage opened with unclaimed items", epoch, s, w,
                         items);
  }
}

#endif  // SIMSWEEP_CHECKED

void ThreadPool::worker_loop(std::size_t worker_index) {
  WorkerStat& stat = worker_stats_[worker_index + 1];
  std::uint32_t seen = 0;
  unsigned idle = 0;
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) return;
    const std::uint64_t ctl = control_.load(std::memory_order_acquire);
    const std::uint32_t e = ctl_epoch(ctl);
    if (e != seen) {
#ifdef SIMSWEEP_CHECKED
      // Epochs increment by one per job; a worker may sleep through any
      // number of them but must never observe the sequence move backwards
      // (modular comparison tolerates the 32-bit wrap).
      if (static_cast<std::int32_t>(e - seen) < 0)
        protocol_violation("epoch moved backwards", e, ctl_stage(ctl), seen,
                           e);
#endif
      seen = e;
      if (ctl_stage(ctl) == kStageDone) continue;  // job already over
      active_.fetch_add(1, std::memory_order_acq_rel);
      const auto job_start = std::chrono::steady_clock::now();
      run_job(e, worker_index + 1);
      stat.busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - job_start)
                  .count()),
          std::memory_order_relaxed);
      active_.fetch_sub(1, std::memory_order_release);
      idle = 0;
      continue;
    }
    if (idle < kIdleSpins) {
      relax(idle);
      continue;
    }
    idle = 0;
    park(seen);
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats st;
  st.workers = static_cast<unsigned>(workers_.size());
  st.spawn_failures = spawn_failures_;
  st.jobs = jobs_.load(std::memory_order_relaxed);
  st.inline_jobs = inline_jobs_.load(std::memory_order_relaxed);
  st.stages = stages_submitted_.load(std::memory_order_relaxed);
  const double lifetime_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - created_)
          .count());
  st.lifetime_seconds = lifetime_ns * 1e-9;
  // Slot 0 is the submitting thread; worker slots are 1..workers.
  for (std::size_t i = 0; i <= workers_.size(); ++i)
    st.chunks += worker_stats_[i].chunks.load(std::memory_order_relaxed);
  if (!workers_.empty() && lifetime_ns > 0) {
    double sum = 0;
    st.busy_min = 1.0;
    for (std::size_t i = 1; i <= workers_.size(); ++i) {
      const double f = static_cast<double>(worker_stats_[i].busy_ns.load(
                           std::memory_order_relaxed)) /
                       lifetime_ns;
      sum += f;
      st.busy_min = std::min(st.busy_min, f);
      st.busy_max = std::max(st.busy_max, f);
    }
    st.busy_mean = sum / static_cast<double>(workers_.size());
  }
  return st;
}

void ThreadPool::publish(obs::Registry& registry) const {
  const PoolStats st = stats();
  // Set (not add) semantics: these are process-lifetime totals, so the
  // publish is idempotent no matter how many callers emit them.
  registry.set(obs::metric::kPoolWorkers, static_cast<double>(st.workers));
  registry.set(obs::metric::kPoolJobs, static_cast<double>(st.jobs));
  registry.set(obs::metric::kPoolInlineJobs,
               static_cast<double>(st.inline_jobs));
  registry.set(obs::metric::kPoolStages, static_cast<double>(st.stages));
  registry.set(obs::metric::kPoolChunks, static_cast<double>(st.chunks));
  registry.set(obs::metric::kPoolLifetimeSeconds, st.lifetime_seconds);
  registry.set(obs::metric::kPoolBusyMean, st.busy_mean);
  registry.set(obs::metric::kPoolBusyMin, st.busy_min);
  registry.set(obs::metric::kPoolBusyMax, st.busy_max);
  registry.set(obs::metric::kPoolSpawnFailures,
               static_cast<double>(st.spawn_failures));
}

void ThreadPool::park(std::uint32_t seen_epoch) {
  std::unique_lock lock(park_mutex_);
  num_parked_.fetch_add(1, std::memory_order_seq_cst);
  park_cv_.wait(lock, [&] {
    if (stop_.load(std::memory_order_relaxed)) return true;
    const std::uint64_t ctl = control_.load(std::memory_order_acquire);
    return ctl_epoch(ctl) != seen_epoch && ctl_stage(ctl) != kStageDone;
  });
  num_parked_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace simsweep::parallel
