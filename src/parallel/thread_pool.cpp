#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace simsweep::parallel {

ThreadPool::ThreadPool(unsigned num_workers) {
  if (num_workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_workers = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_range(std::size_t begin, std::size_t end, BlockFn block) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Small ranges or a worker-less pool: run inline, no synchronization.
  if (workers_.empty() || n < 2 * concurrency()) {
    block(begin, end);
    return;
  }
  std::lock_guard submit_lock(submit_mutex_);
  {
    std::lock_guard lock(mutex_);
    job_ = std::move(block);
    job_end_ = end;
    chunk_ = std::max<std::size_t>(1, n / (concurrency() * 8));
    cursor_.store(begin, std::memory_order_relaxed);
    active_.store(static_cast<unsigned>(workers_.size()),
                  std::memory_order_relaxed);
    ++generation_;
  }
  wake_.notify_all();
  work_until_done();
}

void ThreadPool::work_until_done() {
  // The calling thread processes chunks too, then waits for the workers.
  for (;;) {
    const std::size_t lo = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (lo >= job_end_) break;
    job_(lo, std::min(lo + chunk_, job_end_));
  }
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] {
    return active_.load(std::memory_order_acquire) == 0;
  });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    for (;;) {
      const std::size_t lo =
          cursor_.fetch_add(chunk_, std::memory_order_relaxed);
      if (lo >= job_end_) break;
      job_(lo, std::min(lo + chunk_, job_end_));
    }
    if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(mutex_);
      done_.notify_all();
    }
  }
}

}  // namespace simsweep::parallel
