#include "service/cec_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <utility>

#include "aig/aig_io.hpp"
#include "aig/miter.hpp"
#include "ckpt/resume.hpp"
#include "common/lock_ranks.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"

namespace simsweep::service {

namespace {

/// log2-millisecond histogram bucket: b0 < 1 ms, bk covers
/// [2^(k-1), 2^k) ms, saturating at b12 (>= ~2 s).
std::size_t latency_bucket(double seconds) {
  const double ms = seconds * 1e3;
  if (ms < 1.0) return 0;
  std::size_t b = 1;
  double upper = 2.0;
  while (ms >= upper && b < 12) {
    upper *= 2.0;
    ++b;
  }
  return b;
}

}  // namespace

CecService::CecService(ServiceParams params)
    : params_(params),
      ledger_(params.memory_budget_bytes),
      sweep_pool_(params.pool_workers),
      registry_(params.registry != nullptr ? params.registry
                                           : &own_registry_) {
  // Publish the healthy-zero baseline so every service counter is
  // present in the aggregate snapshot even when it never fires — the
  // report-schema contract ("zero-valued when healthy"), and what lets
  // tools/check_report.cpp grep for the leaves unconditionally.
  for (const char* counter :
       {obs::metric::kServiceJobsSubmitted, obs::metric::kServiceJobsCompleted,
        obs::metric::kServiceJobsFailed, obs::metric::kServiceJobsRejected,
        obs::metric::kServiceCacheHits, obs::metric::kServiceCacheMisses,
        obs::metric::kServiceDeadlineExpired})
    registry_->add(counter, 0);
  const unsigned workers = std::max(1u, params_.max_concurrent_jobs);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

CecService::~CecService() {
  {
    common::RankedMutexLock lock(mu_, common::lock_ranks::service);
    stopping_ = true;
  }
  notify_all();
  // audit:exempt(joining the dedicated service workers declared in the
  // header; see the workers_ exemption there)
  for (std::thread& t : workers_) t.join();
}

void CecService::notify_all() {
  {
    std::lock_guard lk(wake_mutex_);
    ++wake_epoch_;
  }
  wake_cv_.notify_all();
}

void CecService::publish_queue_gauges(std::size_t queued,
                                      std::size_t running) {
  registry_->set(obs::metric::kServiceQueued, static_cast<double>(queued));
  registry_->set(obs::metric::kServiceRunning, static_cast<double>(running));
}

std::size_t CecService::submit_locked(JobSpec&& spec) {
  const std::size_t ticket = jobs_.size();
  auto job = std::make_unique<Job>();
  job->spec = std::move(spec);
  if (job->spec.id.empty()) job->spec.id = "job" + std::to_string(ticket);
  job->result.id = job->spec.id;
  job->queued_timer.reset();
  jobs_.push_back(std::move(job));
  queue_.push_back(ticket);
  queued_peak_ = std::max(queued_peak_, queue_.size());
  return ticket;
}

std::size_t CecService::submit(JobSpec spec) {
  std::size_t ticket;
  std::size_t queued;
  std::size_t queued_peak;
  std::size_t running;
  {
    common::RankedMutexLock lock(mu_, common::lock_ranks::service);
    ticket = submit_locked(std::move(spec));
    queued = queue_.size();
    queued_peak = queued_peak_;
    running = running_;
  }
  registry_->add(obs::metric::kServiceJobsSubmitted, 1);
  registry_->set(obs::metric::kServiceQueuedPeak,
                 static_cast<double>(queued_peak));
  publish_queue_gauges(queued, running);
  notify_all();
  return ticket;
}

bool CecService::poll(std::size_t ticket, JobResult* out) {
  common::RankedMutexLock lock(mu_, common::lock_ranks::service);
  Job& job = *jobs_.at(ticket);
  if (!job.done) return false;
  if (out != nullptr) *out = job.result;
  return true;
}

JobResult CecService::wait(std::size_t ticket) {
  for (;;) {
    std::uint64_t epoch;
    {
      std::lock_guard lk(wake_mutex_);
      epoch = wake_epoch_;
    }
    // Epoch is sampled BEFORE the completion probe: a notify between the
    // probe and the wait below changes the epoch, so the predicate fires
    // and the probe re-runs — no lost-wakeup window.
    JobResult out;
    if (poll(ticket, &out)) return out;
    std::unique_lock lk(wake_mutex_);
    wake_cv_.wait_for(lk, std::chrono::milliseconds(50),
                      [&] { return wake_epoch_ != epoch; });
  }
}

std::vector<JobResult> CecService::run_batch(std::vector<JobSpec> jobs) {
  std::vector<std::size_t> tickets;
  tickets.reserve(jobs.size());
  std::size_t queued;
  std::size_t queued_peak;
  std::size_t running;
  {
    common::RankedMutexLock lock(mu_, common::lock_ranks::service);
    for (JobSpec& spec : jobs)
      tickets.push_back(submit_locked(std::move(spec)));
    queued = queue_.size();
    queued_peak = queued_peak_;
    running = running_;
  }
  registry_->add(obs::metric::kServiceJobsSubmitted, tickets.size());
  registry_->set(obs::metric::kServiceQueuedPeak,
                 static_cast<double>(queued_peak));
  publish_queue_gauges(queued, running);
  notify_all();
  std::vector<JobResult> results;
  results.reserve(tickets.size());
  for (const std::size_t t : tickets) results.push_back(wait(t));
  return results;
}

obs::Snapshot CecService::metrics() const { return registry_->snapshot(); }

void CecService::worker_loop() {
  for (;;) {
    std::uint64_t epoch;
    {
      std::lock_guard lk(wake_mutex_);
      epoch = wake_epoch_;
    }
    const Step step = dispatch_one();
    if (step == Step::kStop) return;
    if (step == Step::kRan) continue;
    // Nothing dispatchable (empty queue, or admission denied while other
    // jobs run): park until a submit/completion bumps the epoch. The
    // bounded wait is belt-and-braces only — the epoch protocol above
    // already closes the lost-wakeup window.
    std::unique_lock lk(wake_mutex_);
    wake_cv_.wait_for(lk, std::chrono::milliseconds(50),
                      [&] { return wake_epoch_ != epoch; });
  }
}

CecService::Step CecService::dispatch_one() {
  Job* job = nullptr;
  std::uint64_t stake = 0;
  bool expired = false;
  bool rejected = false;
  {
    common::RankedMutexLock lock(mu_, common::lock_ranks::service);
    if (queue_.empty()) return stopping_ ? Step::kStop : Step::kIdle;

    // Highest priority wins; FIFO (lowest ticket) within a priority.
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i)
      if (jobs_[queue_[i]]->spec.priority >
          jobs_[queue_[best]]->spec.priority)
        best = i;
    Job& candidate = *jobs_[queue_[best]];

    // A deadline that expired while queued completes the job unrun: the
    // sound kUndecided path, never a partial run against zero budget.
    expired = candidate.spec.deadline_seconds > 0 &&
              candidate.queued_timer.seconds() >=
                  candidate.spec.deadline_seconds;

    if (!expired) {
      // Admission control against the shared ledger. Injection site
      // `service.admit` (DESIGN.md §2.4/§2.9): a forced denial exercises
      // the degradation contract — the job goes BACK in the queue.
      stake = candidate.spec.params.engine.memory_budget_bytes > 0
                  ? candidate.spec.params.engine.memory_budget_bytes
                  : params_.default_job_stake_bytes;
      bool denied = SIMSWEEP_FAULT_POINT(fault::sites::kServiceAdmit);
      if (!denied && !ledger_.try_charge(stake)) denied = true;
      if (denied) {
        if (running_ > 0) {
          // Degradation is queuing: leave the job pending and retry when
          // a completion releases its stake.
          ++candidate.result.admission_rejections;
          rejected = true;
        } else {
          // Progress guarantee: with nothing running the queue would
          // deadlock, so an over-budget job is admitted UN-staked and the
          // per-job ladder (engine.memory_ledger) governs its
          // allocations.
          ++candidate.result.admission_rejections;
          rejected = true;
          stake = 0;
          denied = false;
        }
      }
      if (denied) {
        job = nullptr;
      } else {
        job = &candidate;
      }
    } else {
      job = &candidate;
    }

    if (job != nullptr) {
      queue_.erase(queue_.begin() +
                   static_cast<std::ptrdiff_t>(best));
      ++running_;
      running_peak_ = std::max(running_peak_, running_);
      job->result.start_order = ++dispatch_seq_;
      job->result.queue_seconds = job->queued_timer.seconds();
    }
  }
  if (rejected) registry_->add(obs::metric::kServiceJobsRejected, 1);
  if (job == nullptr) return Step::kIdle;

  if (expired) {
    job->result.deadline_expired = true;
    registry_->add(obs::metric::kServiceDeadlineExpired, 1);
    finish_job(*job, stake);
    return Step::kRan;
  }
  run_job(*job, stake);
  return Step::kRan;
}

void CecService::run_job(Job& job, std::uint64_t stake) {
  Timer run_timer;
  JobResult& res = job.result;
  std::uint64_t fp = 0;
  bool computing = false;  // we own the in-flight slot for fp
  try {
    const aig::Aig a = job.spec.a ? *job.spec.a
                                  : aig::read_aiger_file(job.spec.a_path);
    const aig::Aig b = job.spec.b ? *job.spec.b
                                  : aig::read_aiger_file(job.spec.b_path);
    const aig::Aig miter = aig::make_miter(a, b);

    portfolio::CombinedParams combined = job.spec.params;
    combined.engine.memory_ledger = &ledger_;
    combined.sweeper.pool = &sweep_pool_;
    if (job.spec.deadline_seconds > 0) {
      // Queue wait already spent part of the job budget; the combined
      // flow gets the remainder (satellite fix in portfolio.cpp: an
      // exhausted remainder short-circuits instead of dribbling).
      const double rem = std::max(
          1e-3, job.spec.deadline_seconds - res.queue_seconds);
      combined.engine.time_limit =
          combined.engine.time_limit > 0
              ? std::min(combined.engine.time_limit, rem)
              : rem;
    }

    // Cache key: the ckpt run fingerprint — miter structure plus every
    // verdict-relevant parameter (DESIGN.md §2.9 contract). Note the
    // deadline-derived time_limit above is NOT part of the fingerprint:
    // budgets decide WHETHER a run decides, never WHICH decisive verdict
    // it reaches, and only decisive verdicts are cached.
    fp = ckpt::run_fingerprint(miter, combined);
    bool hit = false;
    CacheEntry entry;
    if (params_.cache_capacity > 0) {
      for (;;) {
        std::uint64_t epoch;
        {
          std::lock_guard lk(wake_mutex_);
          epoch = wake_epoch_;
        }
        bool coalesce = false;
        {
          common::RankedMutexLock lock(mu_, common::lock_ranks::service);
          // Injection site `service.cache` (DESIGN.md §2.4/§2.9): a fired
          // lookup behaves as a miss — no cached entry, no coalescing —
          // and the job recomputes, which is always sound. The slot stays
          // with its real owner, so `computing` is deliberately not set.
          if (SIMSWEEP_FAULT_POINT(fault::sites::kServiceCache)) break;
          const auto it = cache_.find(fp);
          if (it != cache_.end()) {
            entry = it->second;
            hit = true;
            break;
          }
          if (inflight_.insert(fp).second) {
            computing = true;  // our miss to fill
            break;
          }
          coalesce = true;
        }
        if (!coalesce) break;
        // Identical job in flight on another worker: park until a
        // completion bumps the epoch, then re-probe — the duplicate is
        // served from the entry that run stores (or takes over the slot
        // if that run could not cache a decisive verdict). Same
        // epoch-before-probe protocol as wait()/worker_loop().
        std::unique_lock lk(wake_mutex_);
        wake_cv_.wait_for(lk, std::chrono::milliseconds(50),
                          [&] { return wake_epoch_ != epoch; });
      }
    }

    if (hit) {
      res.cache_hit = true;
      res.verdict = entry.verdict;
      res.cex = std::move(entry.cex);
      res.report = std::move(entry.report);
      registry_->add(obs::metric::kServiceCacheHits, 1);
    } else {
      registry_->add(obs::metric::kServiceCacheMisses, 1);
      obs::Registry job_registry;
      combined.engine.registry = &job_registry;
      portfolio::CombinedResult r =
          portfolio::combined_check_miter(miter, combined);
      res.verdict = r.verdict;
      res.cex = std::move(r.cex);
      res.report = std::move(r.report);
      if (params_.cache_capacity > 0 && res.verdict != Verdict::kUndecided) {
        common::RankedMutexLock lock(mu_, common::lock_ranks::service);
        if (cache_.find(fp) == cache_.end()) {
          while (cache_.size() >= params_.cache_capacity &&
                 !cache_fifo_.empty()) {
            cache_.erase(cache_fifo_.front());
            cache_fifo_.erase(cache_fifo_.begin());
          }
          cache_.emplace(fp, CacheEntry{res.verdict, res.cex, res.report});
          cache_fifo_.push_back(fp);
        }
      }
    }
  } catch (const std::exception& e) {
    res.error = e.what();
    registry_->add(obs::metric::kServiceJobsFailed, 1);
  } catch (...) {
    res.error = "unknown failure";
    registry_->add(obs::metric::kServiceJobsFailed, 1);
  }
  if (computing) {
    // Hand the slot back whether or not a decisive verdict was cached —
    // coalesced duplicates re-probe on the completion notification and
    // either hit the stored entry or take the slot over themselves.
    common::RankedMutexLock lock(mu_, common::lock_ranks::service);
    inflight_.erase(fp);
  }
  res.run_seconds = run_timer.seconds();
  finish_job(job, stake);
}

void CecService::finish_job(Job& job, std::uint64_t stake) {
  if (stake > 0) ledger_.release(stake);
  std::size_t queued;
  std::size_t running;
  std::size_t running_peak;
  {
    common::RankedMutexLock lock(mu_, common::lock_ranks::service);
    job.done = true;
    --running_;
    queued = queue_.size();
    running = running_;
    running_peak = running_peak_;
  }
  registry_->add(obs::metric::kServiceJobsCompleted, 1);
  registry_->set(obs::metric::kServiceRunningPeak,
                 static_cast<double>(running_peak));
  publish_queue_gauges(queued, running);
  registry_->add(obs::metric::kServiceQueueWaitHistPrefix +
                     std::to_string(latency_bucket(job.result.queue_seconds)),
                 1);
  registry_->add(obs::metric::kServiceRunTimeHistPrefix +
                     std::to_string(latency_bucket(job.result.run_seconds)),
                 1);
  notify_all();
}

}  // namespace simsweep::service
