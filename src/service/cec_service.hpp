#pragma once
/// \file cec_service.hpp
/// \brief Batch CEC job service (DESIGN.md §2.9).
///
/// A CecService multiplexes a stream of independent miter-check jobs over
/// ONE machine's shared resources:
///
///  - one parallel::ThreadPool, injected into every job's parallel sweep
///    (SweeperParams::pool), so concurrent jobs contend for a single
///    worker set instead of each sweep spawning its own;
///  - one fault::MemoryLedger: a job is admitted only when its memory
///    stake fits the remaining budget, otherwise it stays QUEUED (never
///    overcommitted), and the same ledger is handed to the job's engine
///    (EngineParams::memory_ledger) so the per-run degradation ladder
///    governs actual allocations;
///  - per-job obs::Registry instances — every computed job emits its own
///    simsweep.run_report.v3 snapshot — plus one service-level registry
///    holding the aggregate `service.*` metrics.
///
/// Verdict cache: results of decisive runs are memoized under the ckpt
/// run fingerprint (ckpt::run_fingerprint — FNV-1a over the miter
/// structure and the verdict-relevant parameters). A re-submitted
/// identical job returns the cached verdict/CEX/report in O(1) and
/// counts a `service.cache_hits`. Identical jobs IN FLIGHT coalesce: a
/// job whose fingerprint another worker is currently computing parks
/// until that run completes and is then served from the fresh cache
/// entry (one computation, N answers — without this, concurrent
/// duplicates would each recompute). The cache-key contract and its
/// invalidation rules are documented in DESIGN.md §2.9; in short:
/// undecided verdicts are never cached (a retry with a larger budget may
/// decide), and any parameter change that alters the verdict path (k_*,
/// seeds, sim words, conflict budget, round caps, or the miter itself)
/// changes the fingerprint, so stale entries can never be returned —
/// they simply age out of the FIFO-bounded map.
///
/// Threading: ServiceParams::max_concurrent_jobs dedicated worker
/// threads drain a priority queue (higher JobSpec::priority first, FIFO
/// within a priority). All scheduler state lives under one mutex of the
/// dedicated `service` lock rank — the outermost rank, because a worker
/// releases it before dispatching into a job and job code takes every
/// other rank. Fault drills: `service.admit` forces an admission denial
/// (the job is re-queued — degradation is queuing, never a wrong
/// verdict); `service.cache` forces a cache lookup to miss (the job is
/// recomputed soundly).

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig.hpp"
#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "common/verdict.hpp"
#include "fault/governor.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "portfolio/portfolio.hpp"

namespace simsweep::service {

/// One independent miter-check request. The pair is given either as two
/// AIGER paths (loaded by the worker; a read/parse failure fails only
/// this job) or as in-memory AIGs (which take precedence when set).
struct JobSpec {
  /// Caller handle echoed in the JobResult (defaults to "job<ticket>").
  std::string id;
  std::string a_path;
  std::string b_path;
  std::optional<aig::Aig> a;
  std::optional<aig::Aig> b;
  /// Per-job engine/sweeper overrides. The service fills in the shared
  /// ledger, the shared sweep pool and the per-job registry; everything
  /// else is the caller's.
  portfolio::CombinedParams params;
  /// Whole-job wall-clock budget in seconds, INCLUDING queue wait; 0 =
  /// none. A job whose deadline expires while queued is completed as
  /// kUndecided without running; one dispatched in time hands the
  /// remaining slice to the combined flow as engine.time_limit.
  double deadline_seconds = 0;
  /// Higher runs earlier; FIFO within equal priorities.
  int priority = 0;
};

/// Outcome of one job. `error` is non-empty iff the job failed outside
/// the verdict contract (unreadable input, internal failure) — the
/// verdict is kUndecided then and the service keeps running.
struct JobResult {
  std::string id;
  Verdict verdict = Verdict::kUndecided;
  std::optional<std::vector<bool>> cex;
  /// Served from the verdict cache (O(1), no engine run).
  bool cache_hit = false;
  /// Completed unrun because deadline_seconds elapsed in the queue.
  bool deadline_expired = false;
  /// Times this job's dispatch was denied admission and re-queued.
  std::uint64_t admission_rejections = 0;
  std::string error;
  double queue_seconds = 0;
  double run_seconds = 0;
  /// 1-based dispatch sequence number (0 = never dispatched): exposes
  /// the priority order for tests and callers.
  std::uint64_t start_order = 0;
  /// The job's own run report (simsweep.run_report.v3). For a cache hit
  /// this is the report of the run that populated the entry.
  obs::Snapshot report;
};

struct ServiceParams {
  /// Dedicated worker threads = maximum jobs in flight.
  unsigned max_concurrent_jobs = 1;
  /// Shared ledger budget in bytes; 0 = unlimited (admission always
  /// succeeds, accounting still happens).
  std::uint64_t memory_budget_bytes = 0;
  /// Admission stake of a job that sets no engine.memory_budget_bytes of
  /// its own. Held for the job's whole run, released at completion.
  std::uint64_t default_job_stake_bytes = std::uint64_t{64} << 20;
  /// Verdict-cache entry cap (FIFO eviction); 0 disables the cache.
  std::size_t cache_capacity = 1024;
  /// Worker count of the shared sweep pool (0 = hardware concurrency).
  unsigned pool_workers = 0;
  /// Aggregate `service.*` metrics land here; null = a registry owned by
  /// the service (read it via CecService::metrics()).
  obs::Registry* registry = nullptr;
};

class CecService {
 public:
  explicit CecService(ServiceParams params);
  /// Drains: every submitted job is completed (workers stop only once
  /// the queue is empty), then the workers are joined.
  ~CecService();

  CecService(const CecService&) = delete;
  CecService& operator=(const CecService&) = delete;

  /// Enqueues a job; returns the ticket to wait()/poll() on.
  std::size_t submit(JobSpec spec);
  /// Blocks until the job completes.
  JobResult wait(std::size_t ticket);
  /// Non-blocking completion probe; fills *out when done.
  bool poll(std::size_t ticket, JobResult* out);
  /// Submits the whole batch ATOMICALLY (one critical section, so the
  /// priority order is established before any worker can dispatch) and
  /// waits for all of it. Results are in submission order.
  std::vector<JobResult> run_batch(std::vector<JobSpec> jobs);

  /// Snapshot of the aggregate service.* metrics.
  obs::Snapshot metrics() const;
  /// The shared admission/degradation ledger (peak/denial inspection).
  const fault::MemoryLedger& ledger() const { return ledger_; }

 private:
  struct Job {
    JobSpec spec;
    JobResult result;
    Timer queued_timer;  ///< started at submit; queue wait + deadline base
    bool done = false;
  };
  struct CacheEntry {
    Verdict verdict = Verdict::kUndecided;
    std::optional<std::vector<bool>> cex;
    obs::Snapshot report;
  };
  enum class Step { kRan, kIdle, kStop };

  std::size_t submit_locked(JobSpec&& spec) SIMSWEEP_REQUIRES(mu_);
  void worker_loop();
  /// Tries to dispatch one queued job (admission + deadline gate) and run
  /// it to completion. kIdle = nothing dispatchable right now.
  Step dispatch_one();
  void run_job(Job& job, std::uint64_t stake);
  void finish_job(Job& job, std::uint64_t stake);
  /// Bumps the wake epoch and wakes every parked waiter/worker.
  void notify_all();
  void publish_queue_gauges(std::size_t queued, std::size_t running);

  // audit:exempt(set in the constructor, read-only after)
  ServiceParams params_;
  // audit:exempt(internally synchronized: atomic charge/release accounting)
  fault::MemoryLedger ledger_;
  // audit:exempt(internally synchronized: the pool owns its own locking)
  parallel::ThreadPool sweep_pool_;
  // audit:exempt(internally synchronized: atomic metric cells)
  obs::Registry own_registry_;
  /// Aggregation target (own_registry_ or the user's).
  /// audit:exempt(set once in the constructor, read-only after)
  obs::Registry* registry_;

  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<Job>> jobs_ SIMSWEEP_GUARDED_BY(mu_);
  /// Pending tickets; dispatch picks max priority, FIFO within equal.
  std::vector<std::size_t> queue_ SIMSWEEP_GUARDED_BY(mu_);
  std::map<std::uint64_t, CacheEntry> cache_ SIMSWEEP_GUARDED_BY(mu_);
  std::vector<std::uint64_t> cache_fifo_ SIMSWEEP_GUARDED_BY(mu_);
  /// Fingerprints being computed right now — duplicates coalesce on them.
  std::set<std::uint64_t> inflight_ SIMSWEEP_GUARDED_BY(mu_);
  std::uint64_t dispatch_seq_ SIMSWEEP_GUARDED_BY(mu_) = 0;
  std::size_t running_ SIMSWEEP_GUARDED_BY(mu_) = 0;
  std::size_t queued_peak_ SIMSWEEP_GUARDED_BY(mu_) = 0;
  std::size_t running_peak_ SIMSWEEP_GUARDED_BY(mu_) = 0;
  bool stopping_ SIMSWEEP_GUARDED_BY(mu_) = false;

  // Wake-up pairing for parked workers and wait() callers. wake_mutex_
  // guards only wake_epoch_ — no scheduler data — so it stays outside
  // the rank table, exactly like the pool's park pair.
  // audit:exempt(condition_variable pairing; guards only the wake epoch)
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::uint64_t wake_epoch_ = 0;  // audit:exempt(guarded by wake_mutex_)

  // audit:exempt(service workers: each runs whole jobs end-to-end with
  // blocking admission/parking; pool chunking cannot express that)
  std::vector<std::thread> workers_;
};

}  // namespace simsweep::service
