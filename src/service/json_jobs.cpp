#include "service/json_jobs.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace simsweep::service {

namespace {

/// Minimal recursive-descent reader for ONE flat JSON object of
/// string/number/bool values — the whole job-spec grammar. No nesting,
/// no arrays, no null: a spec that needs more should become a schema
/// change here, not an ad-hoc extension.
class LineReader {
 public:
  explicit LineReader(const std::string& line) : s_(line) {}

  bool fail(std::string* error, const std::string& what) {
    if (error != nullptr)
      *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool read_string(std::string* out, std::string* error) {
    if (!eat('"')) return fail(error, "expected '\"'");
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: return fail(error, "unsupported escape");
        }
        continue;
      }
      out->push_back(c);
    }
    return fail(error, "unterminated string");
  }

  bool read_number(double* out, std::string* error) {
    skip_ws();
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return fail(error, "expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    *out = v;
    return true;
  }

  bool read_bool(bool* out, std::string* error) {
    skip_ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return true;
    }
    return fail(error, "expected true/false");
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

/// JSON string escaping for the emitter side (ids may carry quotes).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool parse_job_line(const std::string& line, JobSpec* out,
                    std::string* error) {
  LineReader r(line);
  JobSpec spec = *out;  // the line overrides the caller's defaults
  if (!r.eat('{')) return r.fail(error, "expected '{'");
  bool first = true;
  while (!r.peek('}')) {
    if (!first && !r.eat(','))
      return r.fail(error, "expected ',' between members");
    first = false;
    std::string key;
    if (!r.read_string(&key, error)) return false;
    if (!r.eat(':')) return r.fail(error, "expected ':' after key");

    engine::EngineParams& e = spec.params.engine;
    sweep::SweeperParams& s = spec.params.sweeper;
    double num = 0;
    bool flag = false;
    if (key == "id" || key == "a" || key == "b") {
      std::string value;
      if (!r.read_string(&value, error)) return false;
      if (key == "id") spec.id = value;
      if (key == "a") spec.a_path = value;
      if (key == "b") spec.b_path = value;
    } else if (key == "interleave_rewriting") {
      if (!r.read_bool(&flag, error)) return false;
      spec.params.interleave_rewriting = flag;
    } else if (key == "deadline" || key == "priority" ||
               key == "time_limit" || key == "sweep_threads" ||
               key == "seed" || key == "sim_words" || key == "k_P" ||
               key == "k_p" || key == "k_g" || key == "k_l" ||
               key == "conflict_limit" || key == "max_rounds" ||
               key == "max_rewrite_rounds") {
      if (!r.read_number(&num, error)) return false;
      if (num < 0) return r.fail(error, "negative value for " + key);
      if (key == "deadline") spec.deadline_seconds = num;
      if (key == "priority") spec.priority = static_cast<int>(num);
      if (key == "time_limit") e.time_limit = num;
      if (key == "sweep_threads")
        s.num_threads = static_cast<unsigned>(num);
      if (key == "seed") e.seed = static_cast<std::uint64_t>(num);
      if (key == "sim_words") e.sim_words = static_cast<std::size_t>(num);
      if (key == "k_P") e.k_P = static_cast<unsigned>(num);
      if (key == "k_p") e.k_p = static_cast<unsigned>(num);
      if (key == "k_g") e.k_g = static_cast<unsigned>(num);
      if (key == "k_l") e.k_l = static_cast<unsigned>(num);
      if (key == "conflict_limit")
        s.conflict_limit = static_cast<std::int64_t>(num);
      if (key == "max_rounds") s.max_rounds = static_cast<unsigned>(num);
      if (key == "max_rewrite_rounds")
        spec.params.max_rewrite_rounds = static_cast<unsigned>(num);
    } else {
      return r.fail(error, "unknown key \"" + key + "\"");
    }
  }
  if (!r.eat('}')) return r.fail(error, "expected '}'");
  if (!r.at_end()) return r.fail(error, "trailing content after object");
  if (spec.a_path.empty() || spec.b_path.empty())
    return r.fail(error, "both \"a\" and \"b\" paths are required");
  *out = std::move(spec);
  return true;
}

std::string result_to_json_line(const JobResult& result) {
  std::string out = "{\"id\": \"" + escaped(result.id) + "\"";
  out += ", \"verdict\": \"";
  out += to_string(result.verdict);
  out += "\"";
  char buf[64];
  std::snprintf(buf, sizeof buf, ", \"queue_seconds\": %.6f",
                result.queue_seconds);
  out += buf;
  std::snprintf(buf, sizeof buf, ", \"run_seconds\": %.6f",
                result.run_seconds);
  out += buf;
  out += ", \"cache_hit\": ";
  out += result.cache_hit ? "true" : "false";
  if (result.deadline_expired) out += ", \"deadline_expired\": true";
  if (result.cex) {
    out += ", \"cex\": \"";
    for (const bool v : *result.cex) out += v ? '1' : '0';
    out += "\"";
  }
  if (!result.error.empty())
    out += ", \"error\": \"" + escaped(result.error) + "\"";
  out += "}";
  return out;
}

}  // namespace simsweep::service
