#pragma once
/// \file json_jobs.hpp
/// \brief JSON-lines job-spec codec for the batch service (DESIGN.md
/// §2.9).
///
/// One job per line, one flat JSON object per job. Recognized keys:
///
///   "a", "b"          AIGER paths of the pair (required)
///   "id"              caller handle (default "job<ticket>")
///   "deadline"        whole-job wall-clock budget in seconds, queue
///                     wait included (default 0 = none)
///   "priority"        higher dispatches earlier (default 0)
///   "time_limit"      engine.time_limit override in seconds
///   "sweep_threads"   SweeperParams::num_threads (parallel residue sweep)
///   "seed"            engine.seed
///   "sim_words"       engine.sim_words
///   "k_P","k_p","k_g","k_l"  engine thresholds
///   "conflict_limit"  sweeper conflict budget per SAT call
///   "max_rounds"      sweeper round cap
///   "interleave_rewriting"   bool, portfolio §V item 3
///   "max_rewrite_rounds"     rewrite-round cap
///
/// Unknown keys are an error (a typo silently ignored would change the
/// verdict contract of the submitted job). Blank lines and lines whose
/// first non-space character is '#' are skipped by callers.

#include <string>

#include "service/cec_service.hpp"

namespace simsweep::service {

/// Parses one JSON-lines job object into *out. *out carries the caller's
/// defaults on entry: keys absent from the line keep their incoming
/// values (this is how cec_tool applies its CLI-wide parameter
/// convention). Returns false and fills *error (never crashes) on
/// malformed input or an unknown key; *out is unchanged then.
bool parse_job_line(const std::string& line, JobSpec* out,
                    std::string* error);

/// One-line JSON rendering of a result (the --serve response format).
std::string result_to_json_line(const JobResult& result);

}  // namespace simsweep::service
