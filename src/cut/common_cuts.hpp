#pragma once
/// \file common_cuts.hpp
/// \brief Common cuts of candidate pairs (paper §III-C1).
///
/// The common cuts of a pair are produced by Eq. 1 with the two fanins
/// replaced by the pair's nodes and without including the nodes' trivial
/// cuts: every u ∈ P(repr) merged with every v ∈ P(node) that fits within
/// k_l. The union of a cut of repr and a cut of node blocks all PI paths
/// to both, so it is a valid common cut. Pairs whose representative is the
/// constant node need no cut on the constant side: the node's own priority
/// cuts are used directly (proving the node's local function constant).

#include <vector>

#include "cut/cut_enum.hpp"

namespace simsweep::cut {

/// Generates up to max_count common cuts for the pair, ranked by the
/// pass's Table I criteria.
std::vector<Cut> common_cuts(const PriorityCuts& pc, const CutScorer& scorer,
                             aig::Var repr, aig::Var node,
                             unsigned max_count);

}  // namespace simsweep::cut
