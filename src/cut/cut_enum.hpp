#pragma once
/// \file cut_enum.hpp
/// \brief Priority-cut enumeration with the paper's selection criteria
/// (paper §III-C1, Eq. 1, Table I) and enumeration levels (Eq. 2).
///
/// For each node n, the candidate cuts are
///   E(n) = { u ∪ v : u ∈ P(n0) ∪ {{n0}}, v ∈ P(n1) ∪ {{n1}}, |u∪v| <= k_l }
/// and P(n) keeps the best C candidates under the active pass's criteria.
/// Representative nodes rank cuts by Table I; non-representatives rank by
/// similarity to their representative's priority cuts (so the pair's cut
/// sets overlap and yield many usable common cuts), falling back to
/// Table I on ties.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_analysis.hpp"
#include "cut/cut_set.hpp"

namespace simsweep::cut {

/// The three cut-generation passes of paper Table I.
enum class Pass : std::uint8_t {
  kFanout = 0,      ///< main: large avg fanout; tie: small size, small level
  kSmallLevel = 1,  ///< main: small avg level; tie: small size, large fanout
  kLargeLevel = 2,  ///< main: large avg level; tie: small size, large fanout
};

struct EnumParams {
  unsigned cut_size = 8;  ///< k_l, maximum cut size (<= kMaxCutSize)
  unsigned num_cuts = 8;  ///< C, priority cuts kept per node
};

/// No-representative sentinel for repr_of arrays.
constexpr aig::Var kNoRepr = 0xFFFFFFFFu;

/// Enumeration levels per paper Eq. 2: PIs (and the constant) are level 0;
/// a representative (or classless) node is 1 + max of fanin levels; a
/// non-representative additionally waits for its representative.
std::vector<std::uint32_t> enumeration_levels(
    const aig::Aig& aig, const std::vector<aig::Var>& repr_of);

/// Ranks cuts under a pass using precomputed per-node fanout counts and
/// levels. Returns true if a is strictly better than b.
class CutScorer {
 public:
  CutScorer(const aig::Aig& aig, Pass pass);

  /// Schedule-sharing overload: borrows the levels from a cached
  /// LevelSchedule (must match `aig`; see DESIGN.md §2.7) instead of
  /// recomputing them. The schedule must outlive the scorer.
  CutScorer(const aig::Aig& aig, Pass pass,
            const aig::LevelSchedule& schedule);

  // level_ may point into owned_levels_; a default copy would dangle.
  CutScorer(const CutScorer&) = delete;
  CutScorer& operator=(const CutScorer&) = delete;

  /// Metric accessors (averages over the cut's leaves).
  double avg_fanout(const Cut& c) const;
  double avg_level(const Cut& c) const;

  /// Table I comparison for the pass.
  bool better(const Cut& a, const Cut& b) const;

  /// Similarity-primary comparison (non-representatives): s(c, P) with
  /// Table I criteria as tie-breakers.
  bool better_sim(const Cut& a, double sim_a, const Cut& b,
                  double sim_b) const;

  /// s(c, P) = Σ_{c' in P} |c ∩ c'| / |c ∪ c'| (paper §III-C1).
  static double similarity(const Cut& c, const CutSet& target);

  Pass pass() const { return pass_; }

 private:
  Pass pass_;
  std::vector<std::uint32_t> fanout_;
  std::vector<std::uint32_t> owned_levels_;  // empty when borrowing
  const std::vector<std::uint32_t>* level_;  // owned_levels_ or borrowed
};

/// Priority-cut storage plus the per-node enumeration step.
class PriorityCuts {
 public:
  PriorityCuts(const aig::Aig& aig, const EnumParams& params);

  /// Computes P(n) for an AND node. Both fanins' cut sets must already be
  /// computed. If sim_target is non-null the node ranks cuts by similarity
  /// to it (non-representative rule). PIs are pre-seeded with their
  /// trivial cut (Alg. 2 lines 4-5). Returns the number of candidate cuts
  /// enumerated (|E(n)| after dedup), of which min(C, count) were kept —
  /// callers aggregate this into the per-pass hit-rate telemetry.
  std::size_t compute_node(aig::Var n, const CutScorer& scorer,
                           const CutSet* sim_target);

  const CutSet& cuts(aig::Var v) const { return sets_[v]; }
  const EnumParams& params() const { return params_; }

 private:
  const aig::Aig& aig_;
  EnumParams params_;
  std::vector<CutSet> sets_;
};

}  // namespace simsweep::cut
