#pragma once
/// \file cut_set.hpp
/// \brief Cuts and bounded priority-cut sets (paper §II-A, §III-C1).
///
/// A cut of node n is a set of nodes blocking every PI-to-n path; the
/// local function of n in terms of a cut's nodes is what local function
/// checking compares. Cuts are stored as sorted leaf arrays with a 64-bit
/// Bloom signature for O(1) merge-size prefiltering, the standard
/// cut-enumeration representation.

#include <array>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace simsweep::cut {

/// Hard upper bound on cut size (the paper uses k_l = 8).
constexpr unsigned kMaxCutSize = 10;

struct Cut {
  std::array<aig::Var, kMaxCutSize> leaves{};  ///< sorted ascending
  std::uint8_t size = 0;
  std::uint64_t sign = 0;  ///< OR of 1 << (leaf & 63)

  static Cut trivial(aig::Var v) {
    Cut c;
    c.leaves[0] = v;
    c.size = 1;
    c.sign = std::uint64_t{1} << (v & 63);
    return c;
  }

  bool operator==(const Cut& o) const {
    if (size != o.size || sign != o.sign) return false;
    for (unsigned i = 0; i < size; ++i)
      if (leaves[i] != o.leaves[i]) return false;
    return true;
  }

  /// True if this cut's leaves are a subset of o's (=> o is dominated).
  bool subset_of(const Cut& o) const;

  /// |this ∩ o| (leaf arrays are sorted).
  unsigned intersection_size(const Cut& o) const;

  /// Jaccard-style similarity |a∩b| / |a∪b| (paper §III-C1).
  double jaccard(const Cut& o) const {
    const unsigned inter = intersection_size(o);
    return static_cast<double>(inter) / (size + o.size - inter);
  }
};

/// Merges two cuts; returns false if the union exceeds max_size.
bool merge_cuts(const Cut& a, const Cut& b, unsigned max_size, Cut& out);

/// A bounded set of cuts used both as the enumeration scratch (capacity
/// (C+1)^2) and the stored priority cuts (capacity C).
class CutSet {
 public:
  explicit CutSet(unsigned capacity = 0) { cuts_.reserve(capacity); }

  /// Adds a cut unless it is a duplicate of or dominated by an existing
  /// cut; removes existing cuts dominated by the new one.
  void add(const Cut& c);

  std::size_t size() const { return cuts_.size(); }
  bool empty() const { return cuts_.empty(); }
  const Cut& operator[](std::size_t i) const { return cuts_[i]; }
  const std::vector<Cut>& cuts() const { return cuts_; }
  std::vector<Cut>& cuts() { return cuts_; }
  void clear() { cuts_.clear(); }

 private:
  std::vector<Cut> cuts_;
};

}  // namespace simsweep::cut
