#include "cut/cut_set.hpp"

#include <algorithm>

namespace simsweep::cut {

bool Cut::subset_of(const Cut& o) const {
  if (size > o.size) return false;
  if ((sign & o.sign) != sign) return false;
  unsigned j = 0;
  for (unsigned i = 0; i < size; ++i) {
    while (j < o.size && o.leaves[j] < leaves[i]) ++j;
    if (j == o.size || o.leaves[j] != leaves[i]) return false;
    ++j;
  }
  return true;
}

unsigned Cut::intersection_size(const Cut& o) const {
  unsigned i = 0, j = 0, count = 0;
  while (i < size && j < o.size) {
    if (leaves[i] < o.leaves[j]) ++i;
    else if (leaves[i] > o.leaves[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

bool merge_cuts(const Cut& a, const Cut& b, unsigned max_size, Cut& out) {
  // Bloom prefilter: a lower bound on the union size.
  unsigned i = 0, j = 0, n = 0;
  while (i < a.size && j < b.size) {
    if (n == max_size) return false;
    if (a.leaves[i] < b.leaves[j]) out.leaves[n++] = a.leaves[i++];
    else if (a.leaves[i] > b.leaves[j]) out.leaves[n++] = b.leaves[j++];
    else { out.leaves[n++] = a.leaves[i]; ++i; ++j; }
  }
  while (i < a.size) {
    if (n == max_size) return false;
    out.leaves[n++] = a.leaves[i++];
  }
  while (j < b.size) {
    if (n == max_size) return false;
    out.leaves[n++] = b.leaves[j++];
  }
  out.size = static_cast<std::uint8_t>(n);
  out.sign = a.sign | b.sign;
  return true;
}

void CutSet::add(const Cut& c) {
  for (const Cut& existing : cuts_)
    if (existing.subset_of(c)) return;  // dominated (or duplicate)
  std::erase_if(cuts_, [&c](const Cut& existing) { return c.subset_of(existing); });
  cuts_.push_back(c);
}

}  // namespace simsweep::cut
