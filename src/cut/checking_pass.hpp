#pragma once
/// \file checking_pass.hpp
/// \brief One cut-generation-and-checking pass (paper Alg. 2, §III-C2).
///
/// A pass walks the miter in *enumeration-level* order (Eq. 2). At each
/// level it (a) computes priority cuts for the level's nodes in parallel —
/// representatives rank by the pass's Table I criteria, non-representatives
/// by similarity to their representative's cuts — and (b) generates the
/// common cuts of the candidate pairs whose non-representative lives at
/// this level, inserting them into a bounded buffer. Whenever the buffer
/// cannot accept a new batch it is flushed through the exhaustive
/// simulator as a local-function check. Proved pairs are reported back;
/// mismatches are inconclusive (SDCs may explain them, paper §III-C1) and
/// simply consume the cut.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "cut/cut_enum.hpp"
#include "exhaustive/exhaustive_sim.hpp"

namespace simsweep::cut {

/// A candidate pair to prove: node == repr XOR phase.
struct PairTask {
  aig::Var repr = 0;
  aig::Var node = 0;
  bool phase = false;
};

struct PassParams {
  EnumParams enum_params;  ///< k_l and C
  /// Common-cut buffer capacity in entries (Alg. 2 line 1). Bounds the
  /// memory of deferred checks; a flush happens when a batch won't fit.
  std::size_t buffer_capacity = std::size_t{1} << 14;
  /// Maximum common cuts generated per pair per pass.
  unsigned max_cuts_per_pair = 8;
  /// Exhaustive-simulator settings for the local checks (CEX collection is
  /// disabled internally: local mismatches are inconclusive, not CEXs).
  /// sim_params.deadline, when set, is also checked between enumeration
  /// levels; expiry ends the pass early with its proofs intact.
  exhaustive::Params sim_params;
  /// Flush-ladder bounds (DESIGN.md §2.4): a flush whose exhaustive batch
  /// fails recoverably (OOM / ledger denial) retries with the simulator
  /// budget halved down to min_memory_words, at most max_fault_retries
  /// times, then drops the buffered checks (inconclusive == unproved, so
  /// dropping is sound).
  unsigned max_fault_retries = 3;
  std::size_t min_memory_words = std::size_t{1} << 10;
  /// Optional cached level schedule of the miter (DESIGN.md §2.7). When
  /// non-null and matching the pass AIG, the scorer and the per-cut
  /// window builds borrow its levels instead of recomputing them. The
  /// enumeration levels (Eq. 2) are repr-dependent and stay per-pass.
  const aig::LevelSchedule* schedule = nullptr;
};

struct PassStats {
  std::size_t common_cuts = 0;   ///< buffered cut checks generated
  std::size_t checks = 0;        ///< exhaustively simulated cut checks
  std::size_t flushes = 0;       ///< buffer flushes (incl. the final one)
  std::size_t proved = 0;        ///< tasks proved by this pass
  /// Candidate cuts enumerated across all compute_node() calls (|E(n)|
  /// after dedup) vs. the priority cuts actually kept (≤ C each) — the
  /// pass's selection pressure.
  std::size_t cuts_enumerated = 0;
  std::size_t cuts_selected = 0;
  std::size_t levels = 0;  ///< enumeration levels walked (max Eq. 2 level)
  /// Histogram of needed AND nodes by enumeration level, log2-bucketed:
  /// level_hist[b] counts nodes with floor(log2(level)) == b.
  std::vector<std::size_t> level_hist;
  // --- Flush-ladder telemetry (DESIGN.md §2.4). The caller folds these
  // into the engine's degradation state.
  std::size_t batch_faults = 0;      ///< recoverable flush-batch failures
  std::size_t ladder_steps = 0;      ///< budget halvings taken by flushes
  std::size_t checks_abandoned = 0;  ///< buffered checks dropped unproved
  /// Budget halvings belonging to flushes that ultimately SUCCEEDED (the
  /// recovered subset of ladder_steps; the engine counts only these as
  /// faults_recovered — see run_local_phase).
  std::size_t halvings_recovered = 0;
  /// Flushes that exhausted the ladder and dropped their checks.
  std::size_t flushes_abandoned = 0;
  /// High-water mark of the cut buffer — bounded-buffer contract witness
  /// (peak_buffered <= buffer_capacity always; see group_splits).
  std::size_t peak_buffered = 0;
  /// Times one pair's common-cut group exceeded the whole buffer capacity
  /// and was split across flushes instead of overrunning the bound.
  std::size_t group_splits = 0;
  bool deadline_expired = false;     ///< pass ended by the phase deadline
};

struct PassResult {
  /// proved[i] == 1 iff tasks[i] was proved equivalent in this pass.
  std::vector<std::uint8_t> proved;
  PassStats stats;
};

/// Runs one pass over the whole miter. `tasks` are the candidate pairs
/// still unproved; entries already known proved can be pre-marked via
/// `already_proved` (their nodes then skip common-cut generation but still
/// get priority cuts, since TFO nodes need them).
PassResult run_checking_pass(const aig::Aig& aig,
                             const std::vector<PairTask>& tasks,
                             Pass pass, const PassParams& params,
                             const std::vector<std::uint8_t>* already_proved =
                                 nullptr);

namespace detail {

/// One buffered local check: prove tasks[task] over `cut`. Exposed (with
/// flush_buffer) so the flush ladder's terminal branches — deadline
/// expiry, abandonment accounting — are unit-testable directly; the pass
/// driver's own deadline check between levels intercepts an expired
/// deadline before a flush would see it.
struct BufEntry {
  std::uint32_t task = 0;
  Cut cut;
};

/// Flushes the buffer through the exhaustive simulator (Alg. 2 lines
/// 13-15 / 17-18); see run_checking_pass. `sim_memory` is the pass-wide
/// working simulator budget: the flush ladder halves it on recoverable
/// batch failures and the reduction sticks for later flushes.
void flush_buffer(const aig::Aig& aig, const std::vector<PairTask>& tasks,
                  std::vector<BufEntry>& buffer,
                  std::vector<std::uint8_t>& proved, const PassParams& params,
                  std::size_t& sim_memory, PassStats& stats);

}  // namespace detail

}  // namespace simsweep::cut
