#include "cut/cut_enum.hpp"

#include <algorithm>
#include <cassert>

#include "aig/aig_analysis.hpp"

namespace simsweep::cut {

std::vector<std::uint32_t> enumeration_levels(
    const aig::Aig& aig, const std::vector<aig::Var>& repr_of) {
  std::vector<std::uint32_t> el(aig.num_nodes(), 0);
  for (aig::Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    std::uint32_t l = std::max(el[aig::lit_var(aig.fanin0(v))],
                               el[aig::lit_var(aig.fanin1(v))]);
    const aig::Var r = repr_of[v];
    if (r != kNoRepr) l = std::max(l, el[r]);  // non-repr waits for repr
    el[v] = l + 1;
  }
  return el;
}

CutScorer::CutScorer(const aig::Aig& aig, Pass pass)
    : pass_(pass),
      fanout_(aig::compute_fanouts(aig)),
      owned_levels_(aig::compute_levels(aig)),
      level_(&owned_levels_) {}

CutScorer::CutScorer(const aig::Aig& aig, Pass pass,
                     const aig::LevelSchedule& schedule)
    : pass_(pass),
      fanout_(aig::compute_fanouts(aig)),
      level_(&schedule.levels) {
  assert(schedule.matches(aig));
}

double CutScorer::avg_fanout(const Cut& c) const {
  double sum = 0;
  for (unsigned i = 0; i < c.size; ++i) sum += fanout_[c.leaves[i]];
  return sum / c.size;
}

double CutScorer::avg_level(const Cut& c) const {
  double sum = 0;
  for (unsigned i = 0; i < c.size; ++i) sum += (*level_)[c.leaves[i]];
  return sum / c.size;
}

bool CutScorer::better(const Cut& a, const Cut& b) const {
  const double fa = avg_fanout(a), fb = avg_fanout(b);
  const double la = avg_level(a), lb = avg_level(b);
  switch (pass_) {
    case Pass::kFanout:  // fanout desc, size asc, level asc
      if (fa != fb) return fa > fb;
      if (a.size != b.size) return a.size < b.size;
      return la < lb;
    case Pass::kSmallLevel:  // level asc, size asc, fanout desc
      if (la != lb) return la < lb;
      if (a.size != b.size) return a.size < b.size;
      return fa > fb;
    case Pass::kLargeLevel:  // level desc, size asc, fanout desc
      if (la != lb) return la > lb;
      if (a.size != b.size) return a.size < b.size;
      return fa > fb;
  }
  return false;
}

bool CutScorer::better_sim(const Cut& a, double sim_a, const Cut& b,
                           double sim_b) const {
  if (sim_a != sim_b) return sim_a > sim_b;
  return better(a, b);
}

double CutScorer::similarity(const Cut& c, const CutSet& target) {
  double s = 0;
  for (const Cut& t : target.cuts()) s += c.jaccard(t);
  return s;
}

PriorityCuts::PriorityCuts(const aig::Aig& aig, const EnumParams& params)
    : aig_(aig), params_(params), sets_(aig.num_nodes()) {
  assert(params_.cut_size <= kMaxCutSize);
  // Alg. 2 lines 4-5: PIs get their trivial cut. The constant node keeps
  // an empty set (its "function" needs no inputs).
  for (aig::Var v = 1; v <= aig.num_pis(); ++v)
    sets_[v].add(Cut::trivial(v));
}

std::size_t PriorityCuts::compute_node(aig::Var n, const CutScorer& scorer,
                                       const CutSet* sim_target) {
  assert(aig_.is_and(n));
  const aig::Var n0 = aig::lit_var(aig_.fanin0(n));
  const aig::Var n1 = aig::lit_var(aig_.fanin1(n));

  // Candidate pools: P(child) ∪ {{child}} (Eq. 1). The constant node (var
  // 0) contributes only its trivial cut, which merge() treats as a normal
  // leaf; windows resolve it to the constant slot.
  auto pool = [this](aig::Var child) {
    std::vector<Cut> cuts = sets_[child].cuts();
    const Cut triv = Cut::trivial(child);
    bool have_triv = false;
    for (const Cut& c : cuts) have_triv |= (c == triv);
    if (!have_triv) cuts.push_back(triv);
    return cuts;
  };
  const std::vector<Cut> pool0 = pool(n0);
  const std::vector<Cut> pool1 = pool(n1);

  CutSet candidates(pool0.size() * pool1.size());
  Cut merged;
  for (const Cut& u : pool0)
    for (const Cut& v : pool1)
      if (merge_cuts(u, v, params_.cut_size, merged)) candidates.add(merged);

  // Select the best C candidates under the pass criteria (Table I), or by
  // similarity to the representative's cuts for non-representatives.
  std::vector<Cut>& cand = candidates.cuts();
  const unsigned keep = std::min<unsigned>(params_.num_cuts,
                                           static_cast<unsigned>(cand.size()));
  if (sim_target != nullptr && !sim_target->empty()) {
    std::vector<double> sim(cand.size());
    std::vector<std::uint32_t> order(cand.size());
    for (std::size_t i = 0; i < cand.size(); ++i) {
      sim[i] = CutScorer::similarity(cand[i], *sim_target);
      order[i] = static_cast<std::uint32_t>(i);
    }
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        return scorer.better_sim(cand[a], sim[a], cand[b],
                                                 sim[b]);
                      });
    std::vector<Cut> selected(keep);
    for (unsigned i = 0; i < keep; ++i) selected[i] = cand[order[i]];
    sets_[n].cuts() = std::move(selected);
    return cand.size();
  } else {
    std::partial_sort(cand.begin(), cand.begin() + keep, cand.end(),
                      [&scorer](const Cut& a, const Cut& b) {
                        return scorer.better(a, b);
                      });
    const std::size_t enumerated = cand.size();
    cand.resize(keep);
    sets_[n].cuts() = std::move(cand);
    return enumerated;
  }
}

}  // namespace simsweep::cut
