#include "cut/common_cuts.hpp"

#include <algorithm>

namespace simsweep::cut {

std::vector<Cut> common_cuts(const PriorityCuts& pc, const CutScorer& scorer,
                             aig::Var repr, aig::Var node,
                             unsigned max_count) {
  const unsigned k = pc.params().cut_size;
  CutSet merged_set(pc.params().num_cuts * pc.params().num_cuts);

  if (repr == 0) {
    // Constant representative: check the node's local functions directly.
    for (const Cut& v : pc.cuts(node).cuts()) merged_set.add(v);
  } else {
    Cut merged;
    for (const Cut& u : pc.cuts(repr).cuts())
      for (const Cut& v : pc.cuts(node).cuts())
        if (merge_cuts(u, v, k, merged)) merged_set.add(merged);
  }

  std::vector<Cut>& cuts = merged_set.cuts();
  const unsigned keep =
      std::min<unsigned>(max_count, static_cast<unsigned>(cuts.size()));
  std::partial_sort(cuts.begin(), cuts.begin() + keep, cuts.end(),
                    [&scorer](const Cut& a, const Cut& b) {
                      return scorer.better(a, b);
                    });
  cuts.resize(keep);
  return std::move(cuts);
}

}  // namespace simsweep::cut
