#include "cut/checking_pass.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <optional>

#include "common/log.hpp"
#include "cut/common_cuts.hpp"
#include "fault/fault.hpp"
#include "parallel/thread_pool.hpp"
#include "window/window.hpp"

namespace simsweep::cut {

namespace detail {

/// Flushes the buffer through the exhaustive simulator (Alg. 2 lines
/// 13-15 / 17-18). Entries of already-proved tasks are dropped.
/// `sim_memory` is the pass-wide working simulator budget: the flush
/// ladder halves it on recoverable batch failures and the reduction
/// sticks for later flushes (DESIGN.md §2.4).
void flush_buffer(const aig::Aig& aig, const std::vector<PairTask>& tasks,
                  std::vector<BufEntry>& buffer,
                  std::vector<std::uint8_t>& proved, const PassParams& params,
                  std::size_t& sim_memory, PassStats& stats) {
  if (buffer.empty()) return;
  ++stats.flushes;

  // Build one single-item window per buffered cut, in parallel.
  std::vector<std::optional<window::Window>> built(buffer.size());
  parallel::parallel_for_chunks(
      0, buffer.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const BufEntry& e = buffer[i];
          if (proved[e.task]) continue;
          const PairTask& t = tasks[e.task];
          std::vector<aig::Var> inputs(e.cut.leaves.begin(),
                                       e.cut.leaves.begin() + e.cut.size);
          window::CheckItem item{aig::make_lit(t.repr, t.phase),
                                 aig::make_lit(t.node), e.task};
          built[i] = window::build_window(aig, std::move(inputs), {item},
                                          params.schedule);
        }
      });

  std::vector<window::Window> windows;
  windows.reserve(buffer.size());
  for (auto& w : built)
    if (w) windows.push_back(std::move(*w));
  buffer.clear();
  if (windows.empty()) return;

  exhaustive::Params sim = params.sim_params;
  sim.collect_cex = false;  // local mismatches are inconclusive, not CEXs
  std::size_t halvings = 0;  // this flush's share of stats.ladder_steps
  for (unsigned attempt = 0;; ++attempt) {
    sim.memory_words = sim_memory;
    const exhaustive::BatchResult result =
        exhaustive::check_batch(aig, windows, sim);
    if (result.cancelled) return;  // outcomes invalid
    if (result.failure == exhaustive::BatchFailure::kDeadline) {
      // The in-flight windows are dropped unproved — that is abandoned
      // work and must be accounted as such (the v2 report's
      // checks_abandoned understated deadline losses before).
      stats.deadline_expired = true;
      stats.checks_abandoned += windows.size();
      return;
    }
    if (result.failure != exhaustive::BatchFailure::kNone) {
      ++stats.batch_faults;
      if (attempt < params.max_fault_retries &&
          sim_memory / 2 >= params.min_memory_words) {
        sim_memory /= 2;
        ++stats.ladder_steps;
        ++halvings;
        continue;
      }
      // Dropping the checks is sound: a cut check proves or is
      // inconclusive, so an unattempted check just leaves its pair
      // unproved for later passes / the SAT sweeper.
      stats.checks_abandoned += windows.size();
      ++stats.flushes_abandoned;
      return;
    }
    stats.checks += result.outcomes.size();
    // Only now do this flush's halvings count as recovered — a flush
    // that halved its way down and still abandoned recovered nothing.
    stats.halvings_recovered += halvings;
    for (const auto& [tag, status] : result.outcomes) {
      if (status == exhaustive::ItemStatus::kProved && !proved[tag]) {
        proved[tag] = 1;
        ++stats.proved;
      }
    }
    return;
  }
}

}  // namespace detail

using detail::BufEntry;
using detail::flush_buffer;

PassResult run_checking_pass(const aig::Aig& aig,
                             const std::vector<PairTask>& tasks,
                             Pass pass, const PassParams& params,
                             const std::vector<std::uint8_t>* already_proved) {
  PassResult result;
  result.proved.assign(tasks.size(), 0);
  if (already_proved != nullptr) {
    assert(already_proved->size() == tasks.size());
    result.proved = *already_proved;
  }

  // repr-of relation and node -> task index (a node is the
  // non-representative of at most one pair).
  std::vector<aig::Var> repr_of(aig.num_nodes(), kNoRepr);
  std::vector<std::uint32_t> task_of(aig.num_nodes(), 0xFFFFFFFFu);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    repr_of[tasks[i].node] = tasks[i].repr;
    task_of[tasks[i].node] = static_cast<std::uint32_t>(i);
  }

  // Cut enumeration is only needed inside the TFI cones of the live
  // pairs: P(n) references P(fanins) recursively, so that set is closed.
  // Late passes typically concentrate on a small frontier, and skipping
  // the rest of the miter saves most of the enumeration cost.
  std::vector<std::uint8_t> needed(aig.num_nodes(), 0);
  {
    std::vector<aig::Var> stack;
    auto mark = [&](aig::Var v) {
      if (!needed[v]) {
        needed[v] = 1;
        stack.push_back(v);
      }
    };
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (result.proved[i]) continue;
      mark(tasks[i].repr);
      mark(tasks[i].node);
    }
    while (!stack.empty()) {
      const aig::Var v = stack.back();
      stack.pop_back();
      if (!aig.is_and(v)) continue;
      mark(aig::lit_var(aig.fanin0(v)));
      mark(aig::lit_var(aig.fanin1(v)));
    }
  }

  // Alg. 2 lines 2-3: enumeration levels and level buckets (over the
  // needed nodes only).
  const std::vector<std::uint32_t> el = enumeration_levels(aig, repr_of);
  std::uint32_t max_el = 0;
  std::size_t num_needed_ands = 0;
  for (aig::Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    if (!needed[v] || !aig.is_and(v)) continue;
    max_el = std::max(max_el, el[v]);
    ++num_needed_ands;
  }
  result.stats.levels = max_el;
  // Log2-bucketed enumeration-level histogram of the needed AND nodes.
  for (aig::Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    if (!needed[v] || !aig.is_and(v)) continue;
    const std::size_t bucket =
        std::bit_width(static_cast<std::size_t>(el[v])) - 1;
    if (result.stats.level_hist.size() <= bucket)
      result.stats.level_hist.resize(bucket + 1, 0);
    ++result.stats.level_hist[bucket];
  }
  std::vector<std::size_t> offset(max_el + 2, 0);
  for (aig::Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
    if (needed[v]) ++offset[el[v] + 1];
  for (std::size_t l = 1; l < offset.size(); ++l) offset[l] += offset[l - 1];
  std::vector<aig::Var> order(num_needed_ands);
  {
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    for (aig::Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
      if (needed[v]) order[cursor[el[v]]++] = v;
  }

  PriorityCuts pc(aig, params.enum_params);
  std::optional<CutScorer> scorer_store;
  if (params.schedule != nullptr && params.schedule->matches(aig))
    scorer_store.emplace(aig, pass, *params.schedule);
  else
    scorer_store.emplace(aig, pass);
  const CutScorer& scorer = *scorer_store;
  std::vector<BufEntry> buffer;
  buffer.reserve(params.buffer_capacity);
  std::size_t sim_memory = params.sim_params.memory_words;

  const std::atomic<bool>* cancel = params.sim_params.cancel;
  const fault::Deadline* deadline = params.sim_params.deadline;
  for (std::uint32_t l = 1; l <= max_el; ++l) {
    // A pass over a deep miter can spend a long time in this loop; honour
    // the engine's cancellation between levels (proofs found so far stay
    // valid — the caller just sees fewer of them). The phase deadline is
    // checked here too, but expiry keeps the proofs and tells the caller.
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
      return result;
    if (deadline != nullptr && deadline->expired()) {
      result.stats.deadline_expired = true;
      return result;
    }
    const std::size_t lo = offset[l], hi = offset[l + 1];
    if (lo == hi) continue;

    // Lines 9-10: parallel priority-cut computation for this level. The
    // enumerated/kept counts accumulate in chunk locals; one atomic add
    // per chunk keeps the telemetry off the per-node path.
    std::atomic<std::size_t> level_enumerated{0};
    std::atomic<std::size_t> level_selected{0};
    const unsigned num_cuts = params.enum_params.num_cuts;
    parallel::parallel_for_chunks(lo, hi, [&](std::size_t clo,
                                              std::size_t chi) {
      std::size_t enumerated = 0, selected = 0;
      for (std::size_t k = clo; k < chi; ++k) {
        const aig::Var n = order[k];
        const aig::Var r = repr_of[n];
        const CutSet* sim_target =
            (r != kNoRepr && r != 0) ? &pc.cuts(r) : nullptr;
        const std::size_t cand = pc.compute_node(n, scorer, sim_target);
        enumerated += cand;
        selected += std::min<std::size_t>(cand, num_cuts);
      }
      level_enumerated.fetch_add(enumerated, std::memory_order_relaxed);
      level_selected.fetch_add(selected, std::memory_order_relaxed);
    });
    result.stats.cuts_enumerated +=
        level_enumerated.load(std::memory_order_relaxed);
    result.stats.cuts_selected +=
        level_selected.load(std::memory_order_relaxed);

    // Lines 11-16: common cuts of this level's pairs into the buffer.
    // Generated in parallel, inserted sequentially (order is
    // deterministic: ascending node id within the level).
    std::vector<std::vector<Cut>> generated(hi - lo);
    parallel::parallel_for_chunks(lo, hi, [&](std::size_t clo,
                                              std::size_t chi) {
      for (std::size_t k = clo; k < chi; ++k) {
        const aig::Var n = order[k];
        const std::uint32_t t = task_of[n];
        if (t == 0xFFFFFFFFu || result.proved[t]) continue;
        generated[k - lo] = common_cuts(pc, scorer, tasks[t].repr, n,
                                        params.max_cuts_per_pair);
      }
    });
    for (std::size_t k = lo; k < hi; ++k) {
      const auto& cuts = generated[k - lo];
      if (cuts.empty()) continue;
      const std::uint32_t t = task_of[order[k]];
      if (cuts.size() > params.buffer_capacity - buffer.size())
        flush_buffer(aig, tasks, buffer, result.proved, params, sim_memory,
                     result.stats);
      // Injection site `cut.enum_overflow` (DESIGN.md §2.4): models the
      // bounded buffer failing to grow. Host-thread insertion loop, so
      // the throw unwinds cleanly to the engine's pass-retry ladder.
      if (SIMSWEEP_FAULT_POINT(fault::sites::kCutEnumOverflow))
        throw fault::FaultError(fault::sites::kCutEnumOverflow);
      for (const Cut& c : cuts) {
        if (buffer.size() >= params.buffer_capacity) {
          // One pair's group exceeds the whole capacity: the pre-insert
          // flush above could not make room, so split the group across
          // flushes rather than overrun the bounded-buffer contract.
          ++result.stats.group_splits;
          flush_buffer(aig, tasks, buffer, result.proved, params,
                       sim_memory, result.stats);
        }
        buffer.push_back(BufEntry{t, c});
        ++result.stats.common_cuts;
        result.stats.peak_buffered =
            std::max(result.stats.peak_buffered, buffer.size());
      }
    }
  }

  // Line 17-18: final batch.
  flush_buffer(aig, tasks, buffer, result.proved, params, sim_memory,
               result.stats);
  return result;
}

}  // namespace simsweep::cut
