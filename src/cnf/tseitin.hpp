#pragma once
/// \file tseitin.hpp
/// \brief Incremental Tseitin encoding of AIG cones into a SAT solver.
///
/// The SAT-sweeping baseline checks many node pairs against one growing
/// solver instance. Encoding the whole miter up front wastes effort, so
/// the encoder adds clauses lazily: encode(lit) walks the literal's TFI
/// and emits the AND-gate clauses
///     n -> a,  n -> b,  (a & b) -> n
/// only for nodes not yet encoded. Each AIG variable maps to one solver
/// variable, created on first touch.

#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace simsweep::cnf {

class TseitinEncoder {
 public:
  TseitinEncoder(const aig::Aig& aig, sat::Solver& solver)
      : aig_(aig), solver_(solver), sat_var_(aig.num_nodes(), -1) {}

  /// Ensures the cone of `lit` is encoded; returns the SAT literal
  /// corresponding to the AIG literal.
  sat::Lit encode(aig::Lit lit);

  /// SAT variable of an AIG variable, or -1 if not yet encoded.
  sat::Var sat_var(aig::Var v) const { return sat_var_[v]; }

 private:
  sat::Var touch(aig::Var v);

  const aig::Aig& aig_;
  sat::Solver& solver_;
  std::vector<sat::Var> sat_var_;
};

}  // namespace simsweep::cnf
