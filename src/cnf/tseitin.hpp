#pragma once
/// \file tseitin.hpp
/// \brief Incremental Tseitin encoding of AIG cones into a SAT solver.
///
/// The SAT-sweeping baseline checks many node pairs against one growing
/// solver instance. Encoding the whole miter up front wastes effort, so
/// the encoder adds clauses lazily: encode(lit) walks the literal's TFI
/// and emits the AND-gate clauses
///     n -> a,  n -> b,  (a & b) -> n
/// only for nodes not yet encoded. Each AIG variable maps to one solver
/// variable, created on first touch.
///
/// Substitution-aware mode (the parallel sweeper's shard cores): when a
/// SubstitutionMap is attached, every literal — the root and each fanin
/// met during the cone walk — is resolved through the map first, so the
/// encoded cone is the cone of the *reduced* graph. Proved merges
/// therefore shrink every later encoding instead of only adding equality
/// clauses. The map may grow between encode() calls (chunk-local merges);
/// clauses emitted earlier stay valid because substitutions are proved
/// equivalences.

#include <vector>

#include "aig/aig.hpp"
#include "aig/rebuild.hpp"
#include "sat/solver.hpp"

namespace simsweep::cnf {

class TseitinEncoder {
 public:
  /// `subst` is optional; when non-null it must outlive the encoder and
  /// may gain merges between encode() calls. The encoder is the map's
  /// only concurrent reader only if the caller guarantees so (shard cores
  /// own a private copy — see sweep::PairSolver).
  TseitinEncoder(const aig::Aig& aig, sat::Solver& solver,
                 const aig::SubstitutionMap* subst = nullptr)
      : aig_(aig), solver_(solver), subst_(subst),
        sat_var_(aig.num_nodes(), -1) {}

  /// Ensures the cone of `lit` (resolved through the substitution map if
  /// one is attached) is encoded; returns the corresponding SAT literal.
  sat::Lit encode(aig::Lit lit);

  /// SAT variable of an AIG variable, or -1 if not yet encoded.
  sat::Var sat_var(aig::Var v) const { return sat_var_[v]; }

 private:
  sat::Var touch(aig::Var v);
  aig::Lit resolved(aig::Lit lit) const {
    return subst_ != nullptr ? subst_->resolve(lit) : lit;
  }

  const aig::Aig& aig_;
  sat::Solver& solver_;
  const aig::SubstitutionMap* subst_;
  std::vector<sat::Var> sat_var_;
};

}  // namespace simsweep::cnf
