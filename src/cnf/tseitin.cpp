#include "cnf/tseitin.hpp"

#include <vector>

namespace simsweep::cnf {

sat::Var TseitinEncoder::touch(aig::Var v) {
  if (sat_var_[v] < 0) {
    sat_var_[v] = solver_.new_var();
    if (v == 0) solver_.add_clause(sat::mk_lit(sat_var_[0], true));
  }
  return sat_var_[v];
}

sat::Lit TseitinEncoder::encode(aig::Lit lit) {
  const aig::Lit rlit = resolved(lit);
  const aig::Var root = aig::lit_var(rlit);

  // Iterative DFS: encode every unencoded AND node in the (resolved)
  // cone. A node pushed here is already resolved, i.e. it represents its
  // equivalence class; its fanins are resolved before the recursion.
  std::vector<aig::Var> stack{root};
  std::vector<aig::Var> post;  // nodes needing clauses, any order is fine
  while (!stack.empty()) {
    const aig::Var v = stack.back();
    stack.pop_back();
    if (sat_var_[v] >= 0) continue;
    touch(v);
    if (!aig_.is_and(v)) continue;
    post.push_back(v);
    stack.push_back(aig::lit_var(resolved(aig_.fanin0(v))));
    stack.push_back(aig::lit_var(resolved(aig_.fanin1(v))));
  }
  for (const aig::Var v : post) {
    // n = a & b  (a, b are the resolved fanin literals as SAT literals).
    const aig::Lit f0 = resolved(aig_.fanin0(v));
    const aig::Lit f1 = resolved(aig_.fanin1(v));
    const sat::Lit n = sat::mk_lit(sat_var_[v]);
    const sat::Lit a =
        sat::mk_lit(touch(aig::lit_var(f0)), aig::lit_compl(f0));
    const sat::Lit b =
        sat::mk_lit(touch(aig::lit_var(f1)), aig::lit_compl(f1));
    solver_.add_clause(~n, a);
    solver_.add_clause(~n, b);
    solver_.add_clause(n, ~a, ~b);
  }
  return sat::mk_lit(sat_var_[root], aig::lit_compl(rlit));
}

}  // namespace simsweep::cnf
