#pragma once
/// \file sat_sweeper.hpp
/// \brief SAT-sweeping CEC baseline (the "ABC &cec" stand-in, DESIGN.md §2).
///
/// Classic FRAIG-style sweeping: random partial simulation initializes
/// equivalence classes; candidate pairs are checked in topological order by
/// incremental SAT queries with a conflict limit; SAT outcomes yield CEXs
/// that refine the classes, UNSAT outcomes merge the pair (recorded as a
/// substitution and reinforced with equality clauses so later queries get
/// cheaper); finally the miter POs themselves are proved or refuted by
/// SAT. The engine hands its reduced, undecided miters to this checker,
/// mirroring the paper's GPU+ABC integration.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/miter.hpp"
#include "common/verdict.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::sweep {

struct SweeperParams {
  std::size_t sim_words = 4;       ///< random pattern words for EC init
  std::uint64_t seed = 0xABCDULL;
  /// Conflict budget per SAT call (ABC's `-C`; the paper uses 100000).
  std::int64_t conflict_limit = 100000;
  unsigned max_rounds = 16;        ///< sweep/refine rounds
  std::size_t max_pattern_words = 64;
  /// Wall-clock budget in seconds; 0 = unbounded. On expiry the checker
  /// returns kUndecided (used by the portfolio).
  double time_limit = 0;
  /// Cooperative cancellation (portfolio use): checked between SAT calls.
  /// Annotation audit: the only cross-thread cell of a sweep — written by
  /// the portfolio/watchdog, read relaxed here; all other sweeper state
  /// is owned by the calling thread.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional PI pattern bank used to initialize the equivalence classes
  /// (appended to the random patterns). Feeding the engine's bank here
  /// implements the paper's §V "EC transferring from GPU to ABC": pairs
  /// the engine already disproved carry their CEX patterns, so they land
  /// in different classes and are never SAT-checked. Caller keeps the
  /// bank alive for the duration of the check.
  const sim::PatternBank* initial_bank = nullptr;
};

struct SweeperStats {
  std::size_t sat_calls = 0;
  std::size_t pairs_proved = 0;
  std::size_t pairs_disproved = 0;
  std::size_t pairs_undecided = 0;
  std::uint64_t conflicts = 0;
  double seconds = 0;
  /// Solve entries failed by the "sat.solve" injection site (DESIGN.md
  /// §2.4); each is treated exactly like a conflict-limit kUnknown, the
  /// sweeper's native sound failure mode.
  std::size_t solve_faults = 0;
};

struct SweepResult {
  Verdict verdict = Verdict::kUndecided;
  /// Disproving PI assignment when kNotEquivalent (from the SAT model).
  std::optional<std::vector<bool>> cex;
  SweeperStats stats;
};

class SatSweeper {
 public:
  explicit SatSweeper(SweeperParams params = {}) : params_(params) {}

  SweepResult check(const aig::Aig& a, const aig::Aig& b) const {
    return check_miter(aig::make_miter(a, b));
  }
  SweepResult check_miter(const aig::Aig& miter) const;

  const SweeperParams& params() const { return params_; }

 private:
  SweeperParams params_;
};

}  // namespace simsweep::sweep
