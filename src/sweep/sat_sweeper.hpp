#pragma once
/// \file sat_sweeper.hpp
/// \brief SAT-sweeping CEC baseline (the "ABC &cec" stand-in, DESIGN.md §2).
///
/// Classic FRAIG-style sweeping: random partial simulation initializes
/// equivalence classes; candidate pairs are checked in topological order by
/// incremental SAT queries with a conflict limit; SAT outcomes yield CEXs
/// that refine the classes, UNSAT outcomes merge the pair (recorded as a
/// substitution and reinforced with equality clauses so later queries get
/// cheaper); finally the miter POs themselves are proved or refuted by
/// SAT. The engine hands its reduced, undecided miters to this checker,
/// mirroring the paper's GPU+ABC integration.

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/miter.hpp"
#include "common/verdict.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::parallel {
class ThreadPool;
}  // namespace simsweep::parallel

namespace simsweep::sweep {

struct SweeperStats;

/// Read-only view handed to SweeperParams::checkpoint_hook at every round
/// barrier of a still-running sweep (DESIGN.md §2.8). Pointers alias
/// host-thread sweeper state and are valid only for the call.
struct SweepCheckpointView {
  const aig::Aig* miter = nullptr;  ///< the residue miter being swept
  unsigned next_round = 0;          ///< first round a resume would run
  /// Merge journal: every (node, replacement literal) proved so far, in
  /// application order (lit_var(lit) < node for each entry).
  const std::vector<std::pair<aig::Var, aig::Lit>>* merges = nullptr;
  /// Nodes dropped from the candidate stream (conflict-limit kUnknown).
  const std::vector<aig::Var>* removed = nullptr;
  /// The accumulated pattern bank (EC init + every refinement CEX), from
  /// which a resume re-derives the refined equivalence classes.
  const sim::PatternBank* bank = nullptr;
  const SweeperStats* stats = nullptr;
};

/// Journal a resumed sweep replays before its first round (DESIGN.md
/// §2.8): restores the pattern bank, re-applies proved merges, drops
/// removed candidates and carries the pair counters forward. Because the
/// EC partition over the full accumulated bank equals the crashed run's
/// refined partition, the resumed candidate sequence — and therefore the
/// verdict — is identical to the uninterrupted run's.
struct SweepResumeState {
  std::vector<std::pair<aig::Var, aig::Lit>> merges;
  std::vector<aig::Var> removed;
  std::optional<sim::PatternBank> bank;
  unsigned next_round = 0;
  /// Pair counters of the crashed run (pairs_proved / disproved /
  /// undecided are carried; solver-local counters restart at zero).
  std::size_t pairs_proved = 0;
  std::size_t pairs_disproved = 0;
  std::size_t pairs_undecided = 0;
};

struct SweeperParams {
  std::size_t sim_words = 4;       ///< random pattern words for EC init
  std::uint64_t seed = 0xABCDULL;
  /// Conflict budget per SAT call (ABC's `-C`; the paper uses 100000).
  std::int64_t conflict_limit = 100000;
  unsigned max_rounds = 16;        ///< sweep/refine rounds
  std::size_t max_pattern_words = 64;
  /// Wall-clock budget in seconds; 0 = unbounded. On expiry the checker
  /// returns kUndecided (used by the portfolio).
  double time_limit = 0;
  /// Shard count of the parallel sweeper (sweep_miter() dispatcher;
  /// DESIGN.md §2.5). 1 selects the sequential SatSweeper. Values > 1
  /// partition each round's candidate pairs over that many cooperating
  /// shard loops on a private staged executor.
  unsigned num_threads = 1;
  /// Candidate pairs per work chunk of the parallel sweeper. A chunk is
  /// the determinism unit: it is checked hermetically against the
  /// round-start state by a fresh solver, so its outcome is independent of
  /// which shard runs it and of the thread count.
  std::size_t pairs_per_chunk = 32;
  /// Deterministic mode (default): shards exchange proofs and CEX
  /// patterns only at round barriers, making verdict and merged stats
  /// bit-identical across thread counts and repeated runs. When false,
  /// shards additionally poll the shared equivalence board and CEX bank
  /// at every pair boundary (faster convergence, interleaving-dependent
  /// stats).
  bool deterministic = true;
  /// Simulation-first pair resolution (parallel sweeper only): a
  /// candidate pair whose combined structural support has at most this
  /// many PIs is resolved by exhaustively simulating both cones over
  /// that support window — a complete proof with zero SAT conflicts,
  /// and a pure function of the miter, so the determinism contract is
  /// unaffected. 0 disables. The sequential SatSweeper ignores this:
  /// it stays the pure-SAT "ABC &cec" baseline.
  unsigned sim_support_limit = 12;
  /// Shared staged executor for the parallel sweeper (DESIGN.md §2.9).
  /// Null (the default) keeps the historical behaviour: each parallel
  /// sweep builds a private pool sized num_threads-1. A batch service
  /// passes ONE pool here so concurrent jobs contend for a single worker
  /// set (the pool serializes whole staged jobs) instead of every job
  /// spawning its own threads and oversubscribing the host. Caller keeps
  /// the pool alive for the duration of the check.
  parallel::ThreadPool* pool = nullptr;
  /// Cooperative cancellation (portfolio use): checked between SAT calls.
  /// Annotation audit: the only cross-thread cell of a sweep — written by
  /// the portfolio/watchdog, read relaxed here; all other sweeper state
  /// is owned by the calling thread.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional PI pattern bank used to initialize the equivalence classes
  /// (appended to the random patterns). Feeding the engine's bank here
  /// implements the paper's §V "EC transferring from GPU to ABC": pairs
  /// the engine already disproved carry their CEX patterns, so they land
  /// in different classes and are never SAT-checked. Caller keeps the
  /// bank alive for the duration of the check.
  const sim::PatternBank* initial_bank = nullptr;

  // --- Checkpoint/resume (DESIGN.md §2.8). ---
  /// Invoked on the host thread at every round barrier while the sweep is
  /// still undecided. Exceptions are swallowed by the sweepers: a failed
  /// checkpoint must never change the verdict.
  std::function<void(const SweepCheckpointView&)> checkpoint_hook;
  /// Journal to replay before the first round (takes precedence over
  /// initial_bank for EC init when it carries a bank). Caller keeps the
  /// state alive for the duration of the check.
  const SweepResumeState* resume = nullptr;
};

/// Per-shard scheduling telemetry of one parallel sweep. Chunk/steal
/// counts and busy time depend on worker interleaving, so they are
/// telemetry only — excluded from the determinism contract below.
struct ShardStats {
  std::size_t chunks = 0;  ///< work chunks this shard claimed
  std::size_t steals = 0;  ///< claims outside the shard's home partition
  double busy_seconds = 0; ///< wall time inside the shard loop
};

struct SweeperStats {
  std::size_t sat_calls = 0;
  std::size_t pairs_proved = 0;
  std::size_t pairs_disproved = 0;
  std::size_t pairs_undecided = 0;
  std::uint64_t conflicts = 0;
  double seconds = 0;
  /// Solve entries failed by the "sat.solve" injection site (DESIGN.md
  /// §2.4); each is treated exactly like a conflict-limit kUnknown, the
  /// sweeper's native sound failure mode.
  std::size_t solve_faults = 0;

  // --- Parallel-sweep extras (zero / empty for the sequential sweeper).
  //
  // Determinism contract (DESIGN.md §2.5): every count above plus
  // chunks, board_merges, cex_shared and pairs_sim_resolved is a pure
  // function of the miter and the parameters — identical across
  // num_threads and across runs in deterministic mode. shards echoes
  // min(num_threads, chunks of the widest round); steals, pairs_pruned
  // and the per-shard breakdown are scheduling telemetry and may vary.
  // seconds/busy_seconds are wall time.
  std::size_t shards = 0;        ///< shard loops of the widest round
  std::size_t chunks = 0;        ///< work chunks across all rounds
  std::size_t steals = 0;        ///< cross-partition chunk claims
  std::size_t board_merges = 0;  ///< merges published to the shared board
  std::size_t cex_shared = 0;    ///< CEX patterns published to the bank
  /// Pairs settled by exhaustive cone simulation over their combined
  /// support window (sim_support_limit) instead of SAT.
  std::size_t pairs_sim_resolved = 0;
  /// Pairs skipped because a concurrently shared CEX already
  /// distinguished them (opportunistic mode only).
  std::size_t pairs_pruned = 0;
  /// Parallel attempts that degraded to the sequential sweeper (fault
  /// ladder; set by the sweep_miter() dispatcher).
  std::size_t parallel_fallbacks = 0;
  std::vector<ShardStats> shard;
};

struct SweepResult {
  Verdict verdict = Verdict::kUndecided;
  /// Disproving PI assignment when kNotEquivalent (from the SAT model).
  std::optional<std::vector<bool>> cex;
  SweeperStats stats;
};

class SatSweeper {
 public:
  explicit SatSweeper(SweeperParams params = {}) : params_(params) {}

  SweepResult check(const aig::Aig& a, const aig::Aig& b) const {
    return check_miter(aig::make_miter(a, b));
  }
  SweepResult check_miter(const aig::Aig& miter) const;

  const SweeperParams& params() const { return params_; }

 private:
  SweeperParams params_;
};

/// Builds the EC-initialization pattern bank both sweepers start from:
/// params.sim_words random words extended with the transferred
/// initial_bank (§V EC transfer) and truncated to max_pattern_words.
sim::PatternBank make_init_bank(unsigned num_pis, const SweeperParams& params);

}  // namespace simsweep::sweep
