#include "sweep/parallel_sweeper.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <new>
#include <optional>

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/ec_manager.hpp"
#include "sweep/pair_solver.hpp"

namespace simsweep::sweep {

sim::PatternBank SharedCexBank::pack() const {
  common::RankedMutexLock lock(mu_, common::lock_ranks::cex_bank);
  sim::CexCollector collector(num_pis_);
  std::vector<std::pair<unsigned, bool>> assignment;
  for (const std::vector<bool>& row : rows_) {
    assignment.clear();
    assignment.reserve(row.size());
    for (unsigned i = 0; i < row.size(); ++i)
      assignment.emplace_back(i, row[i]);
    collector.add(assignment);
  }
  sim::PatternBank bank(num_pis_, 0);
  collector.flush_into(bank);
  return bank;
}

namespace {

/// Outcome of one candidate pair, written by exactly one chunk processor
/// and read by the host after the round barrier (the pool's job
/// completion is the happens-before edge).
struct PairOutcome {
  enum class Kind : std::uint8_t { kUnknown, kEqual, kDistinct, kPruned };
  Kind kind = Kind::kUnknown;
  bool via_sim = false;   // resolved by exhaustive cone simulation
  std::vector<bool> cex;  // for kDistinct
};

/// Per-chunk solver accounting (single writer: the claiming shard).
struct ChunkStats {
  std::uint64_t conflicts = 0;
  std::size_t sat_calls = 0;
  std::size_t solve_faults = 0;
  bool failed = false;  ///< chunk body threw; its pairs stay undecided
};

}  // namespace

SweepResult ParallelSatSweeper::check_miter(const aig::Aig& miter) const {
  Timer t;
  SweepResult result;
  SweeperStats& stats = result.stats;
  auto out_of_time = [&]() -> bool {
    if (params_.cancel != nullptr &&
        params_.cancel->load(std::memory_order_relaxed))
      return true;
    return params_.time_limit > 0 && t.seconds() > params_.time_limit;
  };
  auto finish = [&](Verdict v) {
    result.verdict = v;
    stats.seconds = t.seconds();
    return result;
  };

  if (aig::miter_disproved(miter)) return finish(Verdict::kNotEquivalent);
  if (aig::miter_proved(miter)) return finish(Verdict::kEquivalent);

  const unsigned num_threads = std::max(1u, params_.num_threads);
  const std::size_t chunk_size = std::max<std::size_t>(1, params_.pairs_per_chunk);

  // Injection site `sweep.shard_alloc` (DESIGN.md §2.4): the shard-state
  // allocation (board, shared bank, private pool, per-chunk tables) is
  // the parallel path's first commitment of memory; under pressure it
  // fails here, before any thread is spawned, and the sweep_miter()
  // dispatcher degrades to the sequential sweeper.
  if (SIMSWEEP_FAULT_POINT(fault::sites::kSweepShardAlloc)) throw std::bad_alloc{};

  EquivBoard board(miter.num_nodes());
  SharedCexBank shared_cex(miter.num_pis());
  aig::SubstitutionMap subst(miter.num_nodes());
  // stats.shard is sized lazily per round to the shards that actually
  // run (min(num_threads, num_chunks)), never to num_threads up front: a
  // run whose rounds have fewer chunks than threads must not carry — or
  // publish as sat_sweeper.shard.sN.* gauges — all-zero rows for shards
  // that never existed. When candidate pairs run out before the first
  // round, the vector stays empty and stats.shards stays 0.

  // A private pool by default: the global pool serializes whole jobs, so
  // parking a long sweep launch there would starve concurrent clients
  // (the racing portfolio engines). num_threads counts the calling
  // thread. A caller-injected pool (params_.pool; the batch service's
  // shared executor, DESIGN.md §2.9) takes precedence so concurrent jobs
  // share one worker set instead of oversubscribing the host.
  std::optional<parallel::ThreadPool> private_pool;
  if (params_.pool == nullptr)
    private_pool.emplace(std::max(1u, num_threads - 1));
  parallel::ThreadPool& pool =
      params_.pool != nullptr ? *params_.pool : *private_pool;

  // EC init, or a resume of a crashed run's accumulated bank (DESIGN.md
  // §2.8) — building over the full bank reproduces its refined partition.
  const SweepResumeState* resume = params_.resume;
  const bool resuming =
      resume != nullptr && resume->bank &&
      resume->bank->num_pis() == miter.num_pis();
  sim::PatternBank bank = resuming
                              ? *resume->bank
                              : make_init_bank(miter.num_pis(), params_);
  sim::EcManager ec;
  ec.build(miter, sim::simulate(miter, bank));

  // Round-barrier journal (DESIGN.md §2.8). Restored merges are applied
  // to the master state only, not re-published to the board: board/CEX
  // counts are scheduling-era telemetry, the verdict path is subst + ec.
  std::vector<std::pair<aig::Var, aig::Lit>> merge_journal;
  std::vector<aig::Var> removed_nodes;
  unsigned start_round = 0;
  if (resuming) {
    for (const auto& [node, lit] : resume->merges) {
      subst.merge(node, lit);
      ec.mark_proved(node);
    }
    for (aig::Var v : resume->removed) ec.remove_node(v);
    merge_journal = resume->merges;
    removed_nodes = resume->removed;
    stats.pairs_proved = resume->pairs_proved;
    stats.pairs_disproved = resume->pairs_disproved;
    stats.pairs_undecided = resume->pairs_undecided;
    start_round = resume->next_round;
  }

  // Structural supports for the simulation-first pair resolution below.
  // Computed once on the host: the sets are read-only to every shard.
  std::optional<aig::SupportInfo> support_info;
  if (params_.sim_support_limit > 0)
    support_info = aig::compute_supports(miter, params_.sim_support_limit);
  const aig::SupportInfo* supports =
      support_info.has_value() ? &*support_info : nullptr;

  for (unsigned round = start_round; round < params_.max_rounds; ++round) {
    if (out_of_time()) return finish(Verdict::kUndecided);
    std::vector<sim::CandidatePair> pairs = ec.candidate_pairs();
    if (pairs.empty()) break;
    // The same topological order as the sequential sweeper; chunk
    // boundaries depend only on it and chunk_size, never on threads.
    std::sort(pairs.begin(), pairs.end(),
              [](const sim::CandidatePair& x, const sim::CandidatePair& y) {
                return x.node < y.node;
              });

    const std::size_t num_chunks = (pairs.size() + chunk_size - 1) / chunk_size;
    const std::size_t num_shards =
        std::min<std::size_t>(num_threads, num_chunks);
    if (stats.shard.size() < num_shards) stats.shard.resize(num_shards);
    std::vector<PairOutcome> outcomes(pairs.size());
    std::vector<ChunkStats> chunk_stats(num_chunks);
    std::atomic<std::size_t> ticket{0};
    const std::size_t round_board_base = board.size();
    const std::size_t round_cex_base = shared_cex.size();

    // Hermetic chunk processing: a fresh solver over a private copy of
    // the round-start substitution map. The chunk outcome is a pure
    // function of (miter, round-start state, chunk pairs) — identical no
    // matter which shard runs it. Opportunistic mode additionally polls
    // the shared channels at pair boundaries, trading that invariance
    // for earlier cone collapsing / pair pruning.
    auto process_chunk = [&](std::size_t c) {
      ChunkStats& cs = chunk_stats[c];
      const std::size_t first = c * chunk_size;
      const std::size_t last =
          std::min(first + chunk_size, pairs.size());
      try {
        aig::SubstitutionMap local = subst;
        std::size_t board_seen = round_board_base;
        std::size_t cex_seen = round_cex_base;
        std::vector<std::vector<bool>> foreign_rows;
        PairSolver ps(miter, &local);
        ps.set_interrupt(out_of_time);
        for (std::size_t p = first; p < last; ++p) {
          if (out_of_time()) break;  // remaining pairs stay kUnknown
          const sim::CandidatePair& pair = pairs[p];
          const aig::Lit lr = aig::make_lit(pair.repr, pair.phase);
          const aig::Lit ln = aig::make_lit(pair.node);
          if (!params_.deterministic) {
            // Pair-boundary adoption of foreign results: merges shrink
            // the cones this chunk has not encoded yet; CEXs prune pairs
            // another shard already distinguished.
            for (const auto& m : board.merges_since(board_seen)) {
              local.merge(m.first, m.second);
              ++board_seen;
            }
            auto rows = shared_cex.rows_since(cex_seen);
            cex_seen += rows.size();
            for (auto& row : rows) foreign_rows.push_back(std::move(row));
            bool pruned = false;
            for (const std::vector<bool>& row : foreign_rows) {
              if (miter.evaluate_lit(lr, row) != miter.evaluate_lit(ln, row)) {
                pruned = true;
                break;
              }
            }
            if (pruned) {
              outcomes[p].kind = PairOutcome::Kind::kPruned;
              continue;
            }
          }
          // Simulation-first resolution (paper §I): when the pair's
          // combined structural support fits in a word-packed window,
          // exhaustively simulating both cones over it is a *complete*
          // proof — no SAT call, no conflicts, and the outcome is a pure
          // function of the miter, so determinism is preserved. This is
          // the parallel sweeper's main single-core win over the
          // sequential pure-SAT baseline; hard wide-support pairs still
          // go to the solver below.
          if (supports != nullptr && supports->small(pair.repr) &&
              supports->small(pair.node)) {
            const std::vector<aig::Var> window = aig::sorted_union(
                supports->sets[pair.repr], supports->sets[pair.node]);
            if (window.size() <= params_.sim_support_limit) {
              const tt::TruthTable tr =
                  aig::cone_truth_table(miter, lr, window);
              const tt::TruthTable tn =
                  aig::cone_truth_table(miter, ln, window);
              outcomes[p].via_sim = true;
              if (tr == tn) {
                outcomes[p].kind = PairOutcome::Kind::kEqual;
                local.merge(pair.node, lr);
                board.publish(pair.node, lr);
              } else {
                // First differing minterm, expanded to a full-width CEX:
                // window PI k takes bit k of the minterm index, every
                // PI outside the window is a don't-care held at 0.
                const tt::TruthTable diff = tr ^ tn;
                std::uint64_t idx = 0;
                for (std::size_t w = 0; w < diff.words().size(); ++w) {
                  if (diff.words()[w] == 0) continue;
                  idx = w * 64 +
                        static_cast<unsigned>(
                            std::countr_zero(diff.words()[w]));
                  break;
                }
                std::vector<bool> cex(miter.num_pis(), false);
                for (std::size_t k = 0; k < window.size(); ++k)
                  cex[window[k] - 1] = (idx >> k) & 1;
                outcomes[p].kind = PairOutcome::Kind::kDistinct;
                outcomes[p].cex = std::move(cex);
                shared_cex.publish(outcomes[p].cex);
              }
              continue;
            }
          }
          switch (ps.check_pair(lr, ln, params_.conflict_limit)) {
            case PairSolver::Outcome::kEqual:
              outcomes[p].kind = PairOutcome::Kind::kEqual;
              ps.assert_equal(lr, ln);
              local.merge(pair.node, lr);  // later cones collapse through it
              board.publish(pair.node, lr);
              break;
            case PairSolver::Outcome::kDistinct:
              outcomes[p].kind = PairOutcome::Kind::kDistinct;
              outcomes[p].cex = ps.model_cex();
              shared_cex.publish(outcomes[p].cex);
              break;
            case PairSolver::Outcome::kUnknown:
              outcomes[p].kind = PairOutcome::Kind::kUnknown;
              break;
          }
          if (ps.inconsistent()) break;
        }
        cs.conflicts = ps.conflicts();
        cs.sat_calls = ps.sat_calls();
        cs.solve_faults = ps.solve_faults();
      } catch (...) {
        // A worker failure must not unwind across the pool: the chunk's
        // pairs stay soundly undecided and the sweep continues.
        cs.failed = true;
      }
    };

    // The shard loops: one granular stage, chunks claimed off a shared
    // ticket cursor. A shard's "home" chunks are those congruent to its
    // id; claiming any other chunk is work stealing (the fast shards
    // drain the slow shards' partitions).
    parallel::StagePlan plan;
    plan.set_granular(true);
    plan.stage(0, num_shards, [&](std::size_t s) {
      Timer shard_t;
      ShardStats local;
      for (;;) {
        if (out_of_time()) break;
        const std::size_t c =
            ticket.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        ++local.chunks;
        if (c % num_shards != s) ++local.steals;
        process_chunk(c);
      }
      ShardStats& acc = stats.shard[s];  // single writer: shard s
      acc.chunks += local.chunks;
      acc.steals += local.steals;
      acc.busy_seconds += shard_t.seconds();
    });
    pool.run_stages(plan);

    // Round barrier: the host applies every chunk's outcome in pair
    // order, so EC state, substitution map and counters evolve exactly
    // the same way regardless of worker interleaving.
    std::size_t proved = 0;
    sim::CexCollector collector(miter.num_pis());
    std::vector<std::pair<unsigned, bool>> assignment;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const sim::CandidatePair& pair = pairs[p];
      if (outcomes[p].via_sim) ++stats.pairs_sim_resolved;
      switch (outcomes[p].kind) {
        case PairOutcome::Kind::kEqual: {
          // Injection site `sweep.board_merge` (DESIGN.md §2.4):
          // applying a shard-proved merge to the master state is the
          // barrier's structural step; a failure here abandons the
          // parallel attempt (dispatcher falls back to sequential).
          if (SIMSWEEP_FAULT_POINT(fault::sites::kSweepBoardMerge))
            throw fault::FaultError(fault::sites::kSweepBoardMerge);
          subst.merge(pair.node, aig::make_lit(pair.repr, pair.phase));
          ec.mark_proved(pair.node);
          merge_journal.emplace_back(pair.node,
                                     aig::make_lit(pair.repr, pair.phase));
          ++proved;
          ++stats.pairs_proved;
          break;
        }
        case PairOutcome::Kind::kDistinct: {
          ++stats.pairs_disproved;
          assignment.clear();
          const std::vector<bool>& pis = outcomes[p].cex;
          assignment.reserve(pis.size());
          for (unsigned i = 0; i < pis.size(); ++i)
            assignment.emplace_back(i, pis[i]);
          collector.add(assignment);
          break;
        }
        case PairOutcome::Kind::kPruned:
          // Distinguished by a CEX another chunk shared mid-round; the
          // refinement below separates the pair using that same pattern.
          ++stats.pairs_pruned;
          break;
        case PairOutcome::Kind::kUnknown:
          ++stats.pairs_undecided;
          ec.remove_node(pair.node);  // do not retry within this run
          removed_nodes.push_back(pair.node);
          break;
      }
    }
    for (const ChunkStats& cs : chunk_stats) {
      stats.conflicts += cs.conflicts;
      stats.sat_calls += cs.sat_calls;
      stats.solve_faults += cs.solve_faults;
    }
    stats.chunks += num_chunks;
    stats.shards = std::max(stats.shards, num_shards);
    SIMSWEEP_LOG_INFO(
        "parallel sweep round %u: %zu chunks on %zu shards, %zu proved, "
        "%zu CEX",
        round, num_chunks, num_shards, proved, collector.num_cexes());

    if (out_of_time()) return finish(Verdict::kUndecided);
    if (collector.empty()) break;
    sim::PatternBank cex_bank(miter.num_pis(), 0);
    collector.flush_into(cex_bank);
    ec.refine(sim::simulate(miter, cex_bank));
    if (params_.checkpoint_hook) {
      // Host-thread checkpoint offer at the round barrier (DESIGN.md
      // §2.8): fold the round's CEX columns into the accumulated bank so
      // a snapshot's bank re-derives exactly these refined classes; hook
      // exceptions are swallowed (must never change the verdict).
      for (std::size_t w = 0; w < cex_bank.num_words(); ++w) {
        std::vector<sim::Word> column(miter.num_pis());
        for (unsigned pi = 0; pi < miter.num_pis(); ++pi)
          column[pi] = cex_bank.word(pi, w);
        bank.append_words(column);
      }
      SweepCheckpointView view;
      view.miter = &miter;
      view.next_round = round + 1;
      view.merges = &merge_journal;
      view.removed = &removed_nodes;
      view.bank = &bank;
      SweeperStats snap_stats = stats;
      snap_stats.seconds = t.seconds();
      view.stats = &snap_stats;
      try {
        params_.checkpoint_hook(view);
      } catch (...) {
      }
    }
  }
  stats.board_merges = board.size();
  stats.cex_shared = shared_cex.size();

  // Final PO proving on a fresh core attached to the master substitution
  // map: every PO cone is encoded fully collapsed through all merges.
  PairSolver core(miter, &subst);
  core.set_interrupt(out_of_time);
  auto finish_with_core = [&](Verdict v) {
    stats.sat_calls += core.sat_calls();
    stats.conflicts += core.conflicts();
    stats.solve_faults += core.solve_faults();
    return finish(v);
  };
  bool all_proved = true;
  for (aig::Lit po : miter.pos()) {
    if (out_of_time()) return finish_with_core(Verdict::kUndecided);
    const aig::Lit r = subst.resolve(po);
    if (r == aig::kLitFalse) continue;
    if (r == aig::kLitTrue) return finish_with_core(Verdict::kNotEquivalent);
    switch (core.prove_false(r, params_.conflict_limit)) {
      case sat::Solver::Result::kUnsat:
        break;  // this PO is constant 0
      case sat::Solver::Result::kSat:
        result.cex = core.model_cex();
        return finish_with_core(Verdict::kNotEquivalent);
      case sat::Solver::Result::kUnknown:
        all_proved = false;
        break;
    }
  }
  return finish_with_core(all_proved ? Verdict::kEquivalent
                                     : Verdict::kUndecided);
}

SweepResult sweep_miter(const aig::Aig& miter, const SweeperParams& params) {
  if (params.num_threads <= 1)
    return SatSweeper(params).check_miter(miter);
  try {
    return ParallelSatSweeper(params).check_miter(miter);
  } catch (const std::bad_alloc&) {
    SIMSWEEP_LOG_WARN("parallel sweep failed (bad_alloc); degrading to "
                      "sequential sweeper");
  } catch (const fault::FaultError& e) {
    SIMSWEEP_LOG_WARN("parallel sweep failed (%s); degrading to sequential "
                      "sweeper",
                      e.what());
  }
  SweeperParams sequential = params;
  sequential.num_threads = 1;
  SweepResult r = SatSweeper(sequential).check_miter(miter);
  r.stats.parallel_fallbacks = 1;
  return r;
}

}  // namespace simsweep::sweep
