#pragma once
/// \file pair_solver.hpp
/// \brief The reusable SAT core of a sweep: one solver + encoder checking
/// candidate pairs of one miter (DESIGN.md §2.5).
///
/// Both sweepers are built on this class. The sequential SatSweeper keeps
/// ONE PairSolver alive for the whole run (no substitution map — cones
/// are encoded verbatim and proved merges are reinforced with equality
/// clauses only). The parallel sweeper creates one PairSolver per work
/// chunk, attached to a private SubstitutionMap snapshot, so cones
/// collapse through everything proved so far and the solver never grows
/// beyond a chunk's worth of clauses — the determinism unit of the shard
/// protocol.
///
/// Budget accounting: an equivalence query is split into the two polarity
/// cases (a&!b, !a&b). The conflict budget covers the WHOLE query: the
/// second directional solve is charged only what the first one left
/// (previously each direction got the full budget, so one pair could
/// legally spend 2x the configured limit).

#include <cstdint>
#include <functional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/rebuild.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"

namespace simsweep::sweep {

class PairSolver {
 public:
  /// `subst` may be null (encode cones verbatim — the sequential
  /// sweeper's mode). When non-null it must outlive this object; it may
  /// gain merges between calls (chunk-local merging), and this object
  /// must be its only user while alive (resolve() path-compresses).
  explicit PairSolver(const aig::Aig& miter,
                      const aig::SubstitutionMap* subst = nullptr)
      : miter_(miter), subst_(subst), enc_(miter, solver_, subst) {}

  /// Outcome of one pair query (two directional solves under one budget).
  enum class Outcome {
    kEqual,     ///< both directions UNSAT: a == b proved
    kDistinct,  ///< some direction SAT: model available via model_cex()
    kUnknown,   ///< budget/interrupt/injected fault: soundly undecided
  };

  /// Checks a == b. conflict_limit < 0 means unbounded; otherwise it
  /// bounds the conflicts of both directional solves together.
  Outcome check_pair(aig::Lit a, aig::Lit b, std::int64_t conflict_limit);

  /// Asserts a == b into the solver (two binary clauses). Callers record
  /// the merge in their substitution map AFTER asserting, so both sides
  /// are encoded under the pre-merge resolution.
  void assert_equal(aig::Lit a, aig::Lit b);

  /// Solves "lit is true" under the budget: kUnsat means lit is constant
  /// false (a proved PO), kSat leaves a model for model_cex().
  sat::Solver::Result prove_false(aig::Lit lit, std::int64_t conflict_limit);

  /// Full-PI assignment extracted from the current model. Substituted or
  /// unencoded PIs are resolved through the map (a PI proved equivalent
  /// to an earlier literal takes that literal's model value), so the
  /// returned assignment is a genuine counterexample of the original
  /// miter. PIs constrained by nothing default to 0.
  std::vector<bool> model_cex() const;

  /// Interrupt hook forwarded to the solver (deadline / cancellation).
  void set_interrupt(std::function<bool()> fn) {
    solver_.interrupt = std::move(fn);
  }

  std::uint64_t conflicts() const { return solver_.conflicts; }
  std::size_t sat_calls() const { return sat_calls_; }
  std::size_t solve_faults() const { return solve_faults_; }
  bool inconsistent() const { return solver_.inconsistent(); }

 private:
  /// Injection site "sat.solve" (DESIGN.md §2.4): a fired solve entry is
  /// answered like a conflict-limit kUnknown — the sweeper's native sound
  /// failure mode. Never throws, so the site is safe inside pool workers.
  bool solve_faulted();

  const aig::Aig& miter_;
  const aig::SubstitutionMap* subst_;
  sat::Solver solver_;
  cnf::TseitinEncoder enc_;
  std::size_t sat_calls_ = 0;
  std::size_t solve_faults_ = 0;
};

}  // namespace simsweep::sweep
