#include "sweep/pair_solver.hpp"

#include "fault/fault.hpp"

namespace simsweep::sweep {

bool PairSolver::solve_faulted() {
  if (!SIMSWEEP_FAULT_POINT(fault::sites::kSatSolve)) return false;
  ++solve_faults_;
  return true;
}

PairSolver::Outcome PairSolver::check_pair(aig::Lit a, aig::Lit b,
                                           std::int64_t conflict_limit) {
  if (solve_faulted()) return Outcome::kUnknown;
  const sat::Lit la = enc_.encode(a);
  const sat::Lit lb = enc_.encode(b);
  ++sat_calls_;
  const std::uint64_t before = solver_.conflicts;
  sat::Solver::Result r = solver_.solve({la, ~lb}, conflict_limit);
  if (r == sat::Solver::Result::kSat) return Outcome::kDistinct;
  if (r == sat::Solver::Result::kUnknown) return Outcome::kUnknown;
  // Direction one proved UNSAT: charge direction two what is left of the
  // budget (satellite fix — each direction used to get the full limit).
  std::int64_t remaining = conflict_limit;
  if (conflict_limit >= 0) {
    const auto spent =
        static_cast<std::int64_t>(solver_.conflicts - before);
    remaining = conflict_limit > spent ? conflict_limit - spent : 0;
  }
  ++sat_calls_;
  r = solver_.solve({~la, lb}, remaining);
  if (r == sat::Solver::Result::kSat) return Outcome::kDistinct;
  if (r == sat::Solver::Result::kUnknown) return Outcome::kUnknown;
  return Outcome::kEqual;
}

void PairSolver::assert_equal(aig::Lit a, aig::Lit b) {
  const sat::Lit la = enc_.encode(a);
  const sat::Lit lb = enc_.encode(b);
  solver_.add_clause(~la, lb);
  solver_.add_clause(la, ~lb);
}

sat::Solver::Result PairSolver::prove_false(aig::Lit lit,
                                            std::int64_t conflict_limit) {
  if (solve_faulted()) return sat::Solver::Result::kUnknown;
  ++sat_calls_;
  return solver_.solve({enc_.encode(lit)}, conflict_limit);
}

std::vector<bool> PairSolver::model_cex() const {
  std::vector<bool> pis(miter_.num_pis(), false);
  for (unsigned i = 0; i < miter_.num_pis(); ++i) {
    // A substituted PI resolves to a proved-equivalent smaller literal
    // (another PI or a constant); its value in the original miter is that
    // literal's model value, since the clauses encode the reduced graph.
    aig::Lit lit = aig::make_lit(i + 1);
    if (subst_ != nullptr) lit = subst_->resolve(lit);
    if (lit == aig::kLitFalse) continue;
    if (lit == aig::kLitTrue) {
      pis[i] = true;
      continue;
    }
    const sat::Var v = enc_.sat_var(aig::lit_var(lit));
    const bool value = v >= 0 && solver_.model_bool(v);
    pis[i] = value != aig::lit_compl(lit);
  }
  return pis;
}

}  // namespace simsweep::sweep
