#include "sweep/sat_sweeper.hpp"

#include <algorithm>

#include "aig/rebuild.hpp"
#include "cnf/tseitin.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "sim/ec_manager.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::sweep {

namespace {

/// Extracts a full PI assignment from the SAT model (unencoded PIs get 0).
std::vector<bool> model_to_cex(const aig::Aig& miter,
                               const cnf::TseitinEncoder& enc,
                               const sat::Solver& solver) {
  std::vector<bool> pis(miter.num_pis(), false);
  for (unsigned i = 0; i < miter.num_pis(); ++i) {
    const sat::Var v = enc.sat_var(i + 1);
    if (v >= 0) pis[i] = solver.model_bool(v);
  }
  return pis;
}

}  // namespace

SweepResult SatSweeper::check_miter(const aig::Aig& miter) const {
  Timer t;
  SweepResult result;
  auto finish = [&](Verdict v) {
    result.verdict = v;
    result.stats.seconds = t.seconds();
    return result;
  };
  auto out_of_time = [&] {
    if (params_.cancel != nullptr &&
        params_.cancel->load(std::memory_order_relaxed))
      return true;
    return params_.time_limit > 0 && t.seconds() > params_.time_limit;
  };

  if (aig::miter_disproved(miter)) return finish(Verdict::kNotEquivalent);
  if (aig::miter_proved(miter)) return finish(Verdict::kEquivalent);

  sat::Solver solver;
  solver.interrupt = [&] { return out_of_time(); };
  cnf::TseitinEncoder enc(miter, solver);
  aig::SubstitutionMap subst(miter.num_nodes());

  // EC initialization by partial random simulation, extended with any
  // transferred patterns (§V EC-transfer extension).
  sim::PatternBank bank =
      sim::PatternBank::random(miter.num_pis(), params_.sim_words,
                               params_.seed);
  if (params_.initial_bank != nullptr &&
      params_.initial_bank->num_pis() == miter.num_pis()) {
    for (std::size_t w = 0; w < params_.initial_bank->num_words(); ++w) {
      std::vector<sim::Word> column(miter.num_pis());
      for (unsigned pi = 0; pi < miter.num_pis(); ++pi)
        column[pi] = params_.initial_bank->word(pi, w);
      bank.append_words(column);
    }
    bank.truncate_front(params_.max_pattern_words);
  }
  sim::EcManager ec;
  ec.build(miter, sim::simulate(miter, bank));

  // One SAT query: is (a != b) satisfiable? Split into the two polarity
  // cases so the incremental solver needs no temporary clauses.
  // Injection site "sat.solve" (DESIGN.md §2.4): a fired solve entry is
  // answered like a conflict-limit kUnknown — the sweeper's native sound
  // failure mode (the pair stays unmerged / the PO stays unproved).
  auto solve_faulted = [&] {
    if (!SIMSWEEP_FAULT_POINT("sat.solve")) return false;
    ++result.stats.solve_faults;
    return true;
  };
  auto check_pair_sat = [&](aig::Lit a, aig::Lit b)
      -> sat::Solver::Result {
    if (solve_faulted()) return sat::Solver::Result::kUnknown;
    const sat::Lit la = enc.encode(a);
    const sat::Lit lb = enc.encode(b);
    ++result.stats.sat_calls;
    sat::Solver::Result r =
        solver.solve({la, ~lb}, params_.conflict_limit);
    if (r != sat::Solver::Result::kUnsat) return r;
    ++result.stats.sat_calls;
    return solver.solve({~la, lb}, params_.conflict_limit);
  };

  for (unsigned round = 0; round < params_.max_rounds; ++round) {
    std::vector<sim::CandidatePair> pairs = ec.candidate_pairs();
    if (pairs.empty()) break;
    // Topological (ascending node id) order: proofs of small cones come
    // first and their equality clauses help the bigger ones.
    std::sort(pairs.begin(), pairs.end(),
              [](const sim::CandidatePair& x, const sim::CandidatePair& y) {
                return x.node < y.node;
              });

    std::size_t proved = 0;
    sim::CexCollector collector(miter.num_pis());
    for (const sim::CandidatePair& pair : pairs) {
      if (out_of_time()) return finish(Verdict::kUndecided);
      const aig::Lit lr = aig::make_lit(pair.repr, pair.phase);
      const aig::Lit ln = aig::make_lit(pair.node);
      switch (check_pair_sat(lr, ln)) {
        case sat::Solver::Result::kUnsat: {
          // Equivalent: merge and add equality clauses to the solver.
          subst.merge(pair.node, lr);
          ec.mark_proved(pair.node);
          const sat::Lit la = enc.encode(lr);
          const sat::Lit lb = enc.encode(ln);
          solver.add_clause(~la, lb);
          solver.add_clause(la, ~lb);
          ++proved;
          ++result.stats.pairs_proved;
          break;
        }
        case sat::Solver::Result::kSat: {
          ++result.stats.pairs_disproved;
          std::vector<std::pair<unsigned, bool>> assignment;
          const std::vector<bool> pis = model_to_cex(miter, enc, solver);
          assignment.reserve(pis.size());
          for (unsigned i = 0; i < pis.size(); ++i)
            assignment.emplace_back(i, pis[i]);
          collector.add(assignment);
          break;
        }
        case sat::Solver::Result::kUnknown:
          ++result.stats.pairs_undecided;
          ec.remove_node(pair.node);  // do not retry within this run
          break;
      }
      if (solver.inconsistent()) break;
    }
    result.stats.conflicts = solver.conflicts;
    SIMSWEEP_LOG_INFO("sweep round %u: %zu proved, %zu CEX", round, proved,
                      collector.num_cexes());

    if (collector.empty()) break;
    sim::PatternBank cex_bank(miter.num_pis(), 0);
    collector.flush_into(cex_bank);
    ec.refine(sim::simulate(miter, cex_bank));
  }

  // Final PO proving on the substituted miter.
  bool all_proved = true;
  for (aig::Lit po : miter.pos()) {
    if (out_of_time()) return finish(Verdict::kUndecided);
    const aig::Lit r = subst.resolve(po);
    if (r == aig::kLitFalse) continue;
    if (r == aig::kLitTrue) return finish(Verdict::kNotEquivalent);
    if (solve_faulted()) {
      all_proved = false;  // this PO stays soundly undecided
      continue;
    }
    ++result.stats.sat_calls;
    switch (solver.solve({enc.encode(r)}, params_.conflict_limit)) {
      case sat::Solver::Result::kUnsat:
        break;  // this PO is constant 0
      case sat::Solver::Result::kSat:
        result.cex = model_to_cex(miter, enc, solver);
        return finish(Verdict::kNotEquivalent);
      case sat::Solver::Result::kUnknown:
        all_proved = false;
        break;
    }
  }
  result.stats.conflicts = solver.conflicts;
  return finish(all_proved ? Verdict::kEquivalent : Verdict::kUndecided);
}

}  // namespace simsweep::sweep
