#include "sweep/sat_sweeper.hpp"

#include <algorithm>

#include "aig/rebuild.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "sim/ec_manager.hpp"
#include "sweep/pair_solver.hpp"

namespace simsweep::sweep {

sim::PatternBank make_init_bank(unsigned num_pis,
                                const SweeperParams& params) {
  sim::PatternBank bank =
      sim::PatternBank::random(num_pis, params.sim_words, params.seed);
  if (params.initial_bank != nullptr &&
      params.initial_bank->num_pis() == num_pis) {
    for (std::size_t w = 0; w < params.initial_bank->num_words(); ++w) {
      std::vector<sim::Word> column(num_pis);
      for (unsigned pi = 0; pi < num_pis; ++pi)
        column[pi] = params.initial_bank->word(pi, w);
      bank.append_words(column);
    }
    bank.truncate_front(params.max_pattern_words);
  }
  return bank;
}

SweepResult SatSweeper::check_miter(const aig::Aig& miter) const {
  Timer t;
  SweepResult result;
  auto out_of_time = [&] {
    if (params_.cancel != nullptr &&
        params_.cancel->load(std::memory_order_relaxed))
      return true;
    return params_.time_limit > 0 && t.seconds() > params_.time_limit;
  };

  // One long-lived SAT core for the whole run: cones are encoded verbatim
  // (no substitution map attached) and proved merges are reinforced with
  // equality clauses, so the solver keeps all learned facts.
  PairSolver core(miter);
  core.set_interrupt([&] { return out_of_time(); });
  aig::SubstitutionMap subst(miter.num_nodes());

  auto finish = [&](Verdict v) {
    result.verdict = v;
    result.stats.sat_calls = core.sat_calls();
    result.stats.conflicts = core.conflicts();
    result.stats.solve_faults = core.solve_faults();
    result.stats.seconds = t.seconds();
    return result;
  };

  if (aig::miter_disproved(miter)) return finish(Verdict::kNotEquivalent);
  if (aig::miter_proved(miter)) return finish(Verdict::kEquivalent);

  // EC initialization by partial random simulation, extended with any
  // transferred patterns (§V EC-transfer extension). A resume restores
  // the crashed run's accumulated bank instead: building classes over the
  // full bank reproduces its refined partition exactly.
  const SweepResumeState* resume = params_.resume;
  const bool resuming =
      resume != nullptr && resume->bank &&
      resume->bank->num_pis() == miter.num_pis();
  sim::PatternBank bank = resuming
                              ? *resume->bank
                              : make_init_bank(miter.num_pis(), params_);
  sim::EcManager ec;
  ec.build(miter, sim::simulate(miter, bank));

  // Round-barrier journal (DESIGN.md §2.8): what a resumed run replays.
  std::vector<std::pair<aig::Var, aig::Lit>> merge_journal;
  std::vector<aig::Var> removed_nodes;
  unsigned start_round = 0;
  if (resuming) {
    for (const auto& [node, lit] : resume->merges) {
      subst.merge(node, lit);
      ec.mark_proved(node);
      core.assert_equal(lit, aig::make_lit(node));
    }
    for (aig::Var v : resume->removed) ec.remove_node(v);
    merge_journal = resume->merges;
    removed_nodes = resume->removed;
    result.stats.pairs_proved = resume->pairs_proved;
    result.stats.pairs_disproved = resume->pairs_disproved;
    result.stats.pairs_undecided = resume->pairs_undecided;
    start_round = resume->next_round;
  }

  // Offers the round-barrier state to the checkpoint hook; swallows hook
  // exceptions (checkpointing must never change the verdict).
  auto offer_checkpoint = [&](unsigned next_round) {
    SweepCheckpointView view;
    view.miter = &miter;
    view.next_round = next_round;
    view.merges = &merge_journal;
    view.removed = &removed_nodes;
    view.bank = &bank;
    SweeperStats stats = result.stats;
    stats.sat_calls = core.sat_calls();
    stats.conflicts = core.conflicts();
    stats.solve_faults = core.solve_faults();
    view.stats = &stats;
    try {
      params_.checkpoint_hook(view);
    } catch (...) {
    }
  };

  for (unsigned round = start_round; round < params_.max_rounds; ++round) {
    std::vector<sim::CandidatePair> pairs = ec.candidate_pairs();
    if (pairs.empty()) break;
    // Topological (ascending node id) order: proofs of small cones come
    // first and their equality clauses help the bigger ones.
    std::sort(pairs.begin(), pairs.end(),
              [](const sim::CandidatePair& x, const sim::CandidatePair& y) {
                return x.node < y.node;
              });

    std::size_t proved = 0;
    sim::CexCollector collector(miter.num_pis());
    for (const sim::CandidatePair& pair : pairs) {
      if (out_of_time()) return finish(Verdict::kUndecided);
      const aig::Lit lr = aig::make_lit(pair.repr, pair.phase);
      const aig::Lit ln = aig::make_lit(pair.node);
      switch (core.check_pair(lr, ln, params_.conflict_limit)) {
        case PairSolver::Outcome::kEqual: {
          // Equivalent: merge and add equality clauses to the solver.
          subst.merge(pair.node, lr);
          ec.mark_proved(pair.node);
          core.assert_equal(lr, ln);
          merge_journal.emplace_back(pair.node, lr);
          ++proved;
          ++result.stats.pairs_proved;
          break;
        }
        case PairSolver::Outcome::kDistinct: {
          ++result.stats.pairs_disproved;
          std::vector<std::pair<unsigned, bool>> assignment;
          const std::vector<bool> pis = core.model_cex();
          assignment.reserve(pis.size());
          for (unsigned i = 0; i < pis.size(); ++i)
            assignment.emplace_back(i, pis[i]);
          collector.add(assignment);
          break;
        }
        case PairSolver::Outcome::kUnknown:
          ++result.stats.pairs_undecided;
          ec.remove_node(pair.node);  // do not retry within this run
          removed_nodes.push_back(pair.node);
          break;
      }
      if (core.inconsistent()) break;
    }
    SIMSWEEP_LOG_INFO("sweep round %u: %zu proved, %zu CEX", round, proved,
                      collector.num_cexes());

    if (collector.empty()) break;
    sim::PatternBank cex_bank(miter.num_pis(), 0);
    collector.flush_into(cex_bank);
    ec.refine(sim::simulate(miter, cex_bank));
    if (params_.checkpoint_hook) {
      // Fold the round's CEX columns into the accumulated bank first so a
      // snapshot's bank re-derives exactly these refined classes.
      for (std::size_t w = 0; w < cex_bank.num_words(); ++w) {
        std::vector<sim::Word> column(miter.num_pis());
        for (unsigned pi = 0; pi < miter.num_pis(); ++pi)
          column[pi] = cex_bank.word(pi, w);
        bank.append_words(column);
      }
      offer_checkpoint(round + 1);
    }
  }

  // Final PO proving on the substituted miter.
  bool all_proved = true;
  for (aig::Lit po : miter.pos()) {
    if (out_of_time()) return finish(Verdict::kUndecided);
    const aig::Lit r = subst.resolve(po);
    if (r == aig::kLitFalse) continue;
    if (r == aig::kLitTrue) return finish(Verdict::kNotEquivalent);
    switch (core.prove_false(r, params_.conflict_limit)) {
      case sat::Solver::Result::kUnsat:
        break;  // this PO is constant 0
      case sat::Solver::Result::kSat:
        result.cex = core.model_cex();
        return finish(Verdict::kNotEquivalent);
      case sat::Solver::Result::kUnknown:
        all_proved = false;
        break;
    }
  }
  return finish(all_proved ? Verdict::kEquivalent : Verdict::kUndecided);
}

}  // namespace simsweep::sweep
