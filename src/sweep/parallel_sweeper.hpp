#pragma once
/// \file parallel_sweeper.hpp
/// \brief Parallel residue sweeping: sharded multi-solver SAT sweep with
/// shared CEX / equivalence propagation (DESIGN.md §2.5).
///
/// The engine hands its undecided residue to SAT sweeping, and on hard
/// arithmetic miters that phase dominates wall time. This module
/// parallelizes it without giving up reproducibility:
///
///  - Each round's candidate pairs are split into fixed-size chunks
///    (SweeperParams::pairs_per_chunk — independent of the thread count).
///    A chunk is checked hermetically: a fresh sat::Solver plus a
///    substitution-aware Tseitin encoding over a private copy of the
///    round-start substitution map. Its outcome is therefore a pure
///    function of (miter, round-start state, chunk pairs) — the same no
///    matter which shard runs it, which makes verdict and merged stats
///    bit-identical across num_threads and across runs.
///  - Shards are long-running loops scheduled as one granular stage on a
///    private parallel::ThreadPool; they claim chunks from an atomic
///    ticket cursor (dynamic stealing: a claim outside the shard's home
///    partition is counted as a steal — the protocol the PR-2 checked
///    executor validates).
///  - Two shared channels propagate results: the EquivBoard (mutex-
///    annotated union-find journal of proved merges) and the
///    SharedCexBank (word-packable bank of SAT counterexamples). Shards
///    always publish; in deterministic mode (default) results are adopted
///    only at the round barrier, while opportunistic mode
///    (deterministic=false) also polls both channels at every pair
///    boundary — foreign merges shrink upcoming cones, foreign CEXs prune
///    pairs already distinguished.
///  - Budgets derive from the global deadline: every shard solver polls
///    the shared deadline/cancel flag through the solver interrupt hook,
///    and the per-pair conflict budget covers both directional solves
///    (sweep::PairSolver).
///
/// Degradation (DESIGN.md §2.4): host-side fault sites sweep.shard_alloc
/// (shard-state allocation, throws std::bad_alloc) and sweep.board_merge
/// (barrier merge application, throws fault::FaultError) are caught by
/// the sweep_miter() dispatcher, which falls back to the sequential
/// SatSweeper — the ladder degrades instead of aborting, and the verdict
/// stays sound. Worker-side failures never unwind across threads: a chunk
/// that throws is marked failed and its pairs stay soundly undecided.

#include <cstddef>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/miter.hpp"
#include "common/lock_ranks.hpp"
#include "common/thread_annotations.hpp"
#include "sim/partial_sim.hpp"
#include "sweep/sat_sweeper.hpp"

namespace simsweep::sweep {

/// Proved-equivalence board shared by the shards: an append-only journal
/// of union-find merges (node -> replacement literal) over miter nodes.
/// Publishers are the shard loops (one successful publish per proved
/// pair); consumers replay journal suffixes into their private
/// substitution maps. Within a round all merge targets are distinct
/// (every candidate pair owns its node), so publishes commute and the
/// board content at a barrier is deterministic even though the journal
/// order is not.
class EquivBoard {
 public:
  explicit EquivBoard(std::size_t num_nodes) : bound_(num_nodes, false) {}

  /// Publishes "node is equivalent to lit". Returns false (and records
  /// nothing) if the node is already bound — duplicate proofs of the same
  /// node are counted once.
  bool publish(aig::Var node, aig::Lit lit) SIMSWEEP_EXCLUDES(mu_) {
    common::RankedMutexLock lock(mu_, common::lock_ranks::board);
    if (bound_[node]) return false;
    bound_[node] = true;
    journal_.emplace_back(node, lit);
    return true;
  }

  /// Number of merges published so far (a journal cursor for
  /// merges_since; monotone within a sweep).
  std::size_t size() const SIMSWEEP_EXCLUDES(mu_) {
    common::RankedMutexLock lock(mu_, common::lock_ranks::board);
    return journal_.size();
  }

  /// Journal entries [from, size()) — the consumer replays them into its
  /// private map and advances its cursor.
  std::vector<std::pair<aig::Var, aig::Lit>> merges_since(
      std::size_t from) const SIMSWEEP_EXCLUDES(mu_) {
    common::RankedMutexLock lock(mu_, common::lock_ranks::board);
    if (from >= journal_.size()) return {};
    return {journal_.begin() + static_cast<std::ptrdiff_t>(from),
            journal_.end()};
  }

 private:
  mutable common::Mutex mu_;
  std::vector<std::pair<aig::Var, aig::Lit>> journal_ SIMSWEEP_GUARDED_BY(mu_);
  std::vector<bool> bound_ SIMSWEEP_GUARDED_BY(mu_);
};

/// Shared CEX pattern bank: SAT counterexamples (full PI assignments)
/// appended by any shard, readable as journal suffixes for mid-round
/// pruning and word-packable into a sim::PatternBank for EC refinement.
class SharedCexBank {
 public:
  explicit SharedCexBank(unsigned num_pis) : num_pis_(num_pis) {}

  void publish(const std::vector<bool>& pis) SIMSWEEP_EXCLUDES(mu_) {
    common::RankedMutexLock lock(mu_, common::lock_ranks::cex_bank);
    rows_.push_back(pis);
  }

  std::size_t size() const SIMSWEEP_EXCLUDES(mu_) {
    common::RankedMutexLock lock(mu_, common::lock_ranks::cex_bank);
    return rows_.size();
  }

  /// Rows [from, size()) — a consumer's journal suffix.
  std::vector<std::vector<bool>> rows_since(std::size_t from) const
      SIMSWEEP_EXCLUDES(mu_) {
    common::RankedMutexLock lock(mu_, common::lock_ranks::cex_bank);
    if (from >= rows_.size()) return {};
    return {rows_.begin() + static_cast<std::ptrdiff_t>(from), rows_.end()};
  }

  /// Word-packs every published row into a PatternBank (64 CEXs per
  /// word, via sim::CexCollector).
  sim::PatternBank pack() const SIMSWEEP_EXCLUDES(mu_);

  unsigned num_pis() const { return num_pis_; }

 private:
  const unsigned num_pis_;
  mutable common::Mutex mu_;
  std::vector<std::vector<bool>> rows_ SIMSWEEP_GUARDED_BY(mu_);
};

/// The sharded sweeper. Prefer the sweep_miter() dispatcher, which
/// routes num_threads == 1 to the sequential SatSweeper and degrades to
/// it when a parallel-path fault fires.
class ParallelSatSweeper {
 public:
  explicit ParallelSatSweeper(SweeperParams params = {})
      : params_(params) {}

  SweepResult check(const aig::Aig& a, const aig::Aig& b) const {
    return check_miter(aig::make_miter(a, b));
  }
  SweepResult check_miter(const aig::Aig& miter) const;

  const SweeperParams& params() const { return params_; }

 private:
  SweeperParams params_;
};

/// Dispatcher used by the portfolio: sequential sweep for
/// params.num_threads <= 1, parallel otherwise; a host-side fault on the
/// parallel path (sweep.shard_alloc / sweep.board_merge, or a real
/// bad_alloc) degrades to the sequential sweeper and records the fallback
/// in stats.parallel_fallbacks.
SweepResult sweep_miter(const aig::Aig& miter, const SweeperParams& params);

}  // namespace simsweep::sweep
