#pragma once
/// \file log.hpp
/// \brief Minimal leveled logging for engine diagnostics.
///
/// The engine prints progress (phase transitions, proved/disproved counts)
/// at Info level; the default level is Warn so that library users get a
/// quiet API unless they opt in.

#include <cstdio>
#include <string>

namespace simsweep {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global verbosity threshold. Messages below this level are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style logging; prepends a level tag and flushes stderr.
void log_message(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#define SIMSWEEP_LOG_DEBUG(...) \
  ::simsweep::log_message(::simsweep::LogLevel::Debug, __VA_ARGS__)
#define SIMSWEEP_LOG_INFO(...) \
  ::simsweep::log_message(::simsweep::LogLevel::Info, __VA_ARGS__)
#define SIMSWEEP_LOG_WARN(...) \
  ::simsweep::log_message(::simsweep::LogLevel::Warn, __VA_ARGS__)
#define SIMSWEEP_LOG_ERROR(...) \
  ::simsweep::log_message(::simsweep::LogLevel::Error, __VA_ARGS__)

}  // namespace simsweep
