#pragma once
/// \file random.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// All randomized components of SimSweep (partial simulation, benchmark
/// generators, tests) take an explicit seed so that every run is
/// reproducible. The generator is xoshiro256**, which is much faster than
/// std::mt19937_64 and has excellent statistical quality for simulation
/// patterns.
///
/// Thread-safety contract (audited for the concurrency toolchain): an Rng
/// instance is mutable state with NO internal synchronization — next64()
/// read-modify-writes all four state words, so concurrent use from pool
/// workers is a data race AND silently correlates the streams. Every
/// current caller (PatternBank::random, quality_patterns, gen) owns a
/// stack-local instance on the host thread. Parallel callers must give
/// each worker its own instance: either a fresh seed per worker or, to
/// stay deterministic under any scheduling, fork() one substream per
/// flat work index (see test_parallel.cpp RngThreading tests).

#include <cstdint>

namespace simsweep {

/// xoshiro256** PRNG (Blackman & Vigna). Deterministic for a given seed.
/// Not thread-safe: one instance per thread (see file comment).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next 64 uniformly random bits.
  std::uint64_t next64();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool flip(double p = 0.5) { return uniform() < p; }

  /// Derives an independent deterministic substream without advancing
  /// this generator: fork(i) depends only on the parent's current state
  /// and i, so parallel workers can each take fork(work_index) and the
  /// combined output is schedule-independent. The returned Rng is owned
  /// by (and must stay on) the calling worker.
  Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace simsweep
