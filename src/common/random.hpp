#pragma once
/// \file random.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// All randomized components of SimSweep (partial simulation, benchmark
/// generators, tests) take an explicit seed so that every run is
/// reproducible. The generator is xoshiro256**, which is much faster than
/// std::mt19937_64 and has excellent statistical quality for simulation
/// patterns.

#include <cstdint>

namespace simsweep {

/// xoshiro256** PRNG (Blackman & Vigna). Deterministic for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next 64 uniformly random bits.
  std::uint64_t next64();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool flip(double p = 0.5) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace simsweep
