#include "common/log.hpp"

#include <atomic>
#include <cstdarg>

namespace simsweep {

namespace {
/// Process-wide level. Atomic (not GUARDED_BY a lock) because it is read
/// on every log call from pool workers and engine threads; relaxed order
/// is fine — a level change only needs to become visible eventually.
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[simsweep %s] ", tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

}  // namespace simsweep
