#include "common/log.hpp"

#include <atomic>
#include <cstdarg>

#include "common/lock_ranks.hpp"

namespace simsweep {

namespace {
/// Process-wide level. Atomic (not GUARDED_BY a lock) because it is read
/// on every log call from pool workers and engine threads; relaxed order
/// is fine — a level change only needs to become visible eventually.
std::atomic<LogLevel> g_level{LogLevel::Warn};

/// Serializes the tag/body/newline fprintf sequence so concurrent
/// loggers (pool workers, portfolio engine threads) never interleave a
/// message. Rank `log` is the innermost of the lock order (DESIGN.md
/// §2.6): logging must stay legal while holding any other lock.
common::Mutex g_out_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  va_list args;
  va_start(args, fmt);
  {
    common::RankedMutexLock lock(g_out_mutex, common::lock_ranks::log);
    std::fprintf(stderr, "[simsweep %s] ", tag(level));
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
  }
  va_end(args);
}

}  // namespace simsweep
