#pragma once
/// \file verdict.hpp
/// \brief The tri-state answer of a combinational equivalence check.

namespace simsweep {

enum class Verdict {
  kEquivalent,     ///< all miter POs proved constant 0
  kNotEquivalent,  ///< a disproving input pattern exists
  kUndecided       ///< gave up within the configured budget
};

inline const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kEquivalent: return "equivalent";
    case Verdict::kNotEquivalent: return "NOT equivalent";
    case Verdict::kUndecided: return "undecided";
  }
  return "?";
}

}  // namespace simsweep
