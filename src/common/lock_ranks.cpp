#include "common/lock_ranks.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace simsweep::common {

const char* to_string(LockRank rank) {
  switch (rank) {
    case LockRank::kService: return "service";
    case LockRank::kPool: return "pool";
    case LockRank::kExecutor: return "executor";
    case LockRank::kBoard: return "board";
    case LockRank::kCexBank: return "cex_bank";
    case LockRank::kCkpt: return "ckpt";
    case LockRank::kRegistry: return "registry";
    case LockRank::kFault: return "fault";
    case LockRank::kLog: return "log";
  }
  return "?";
}

namespace lock_ranks {

namespace {

constexpr int kNumRanks = static_cast<int>(LockRank::kLog) + 1;

#ifdef SIMSWEEP_CHECKED
std::atomic<Enforcement> g_enforcement{Enforcement::kAbort};
#else
std::atomic<Enforcement> g_enforcement{Enforcement::kOff};
#endif

/// Per-thread held-rank multiset: a fixed stack is enough because the
/// rank order forbids deep nesting (at most one lock per rank held).
struct HeldRanks {
  LockRank stack[kNumRanks];
  int depth = 0;
};
thread_local HeldRanks t_held;

[[noreturn]] void abort_with(const std::string& message) {
  std::fprintf(stderr, "SIMSWEEP lock-rank violation: %s\n",
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

void violation(const std::string& message, Enforcement mode) {
  if (mode == Enforcement::kThrow)
    throw std::logic_error("lock-rank violation: " + message);
  abort_with(message);
}

}  // namespace

void set_enforcement(Enforcement mode) {
  g_enforcement.store(mode, std::memory_order_relaxed);
}

Enforcement enforcement() {
  return g_enforcement.load(std::memory_order_relaxed);
}

namespace detail {

void note_acquire(LockRank rank) {
  const Enforcement mode = g_enforcement.load(std::memory_order_relaxed);
  if (mode == Enforcement::kOff) return;
  HeldRanks& held = t_held;
  if (held.depth > 0) {
    const LockRank top = held.stack[held.depth - 1];
    if (static_cast<int>(rank) <= static_cast<int>(top))
      violation(std::string("acquiring rank '") + to_string(rank) +
                    "' while holding rank '" + to_string(top) +
                    "' (nested acquisitions must strictly ascend "
                    "service < pool < executor < board < cex_bank < ckpt "
                    "< registry < fault < log)",
                mode);
  }
  if (held.depth >= kNumRanks)
    violation("held-rank stack overflow (more nested ranked locks than "
              "ranks exist)",
              mode);
  held.stack[held.depth++] = rank;
}

void note_release(LockRank rank) {
  if (g_enforcement.load(std::memory_order_relaxed) == Enforcement::kOff)
    return;
  HeldRanks& held = t_held;
  // Scoped locks unwind LIFO; tolerate an off-by-one when enforcement was
  // toggled mid-scope by searching from the top.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.stack[i] != rank) continue;
    for (int j = i; j + 1 < held.depth; ++j)
      held.stack[j] = held.stack[j + 1];
    --held.depth;
    return;
  }
}

}  // namespace detail
}  // namespace lock_ranks
}  // namespace simsweep::common
