#include "common/timer.hpp"

// Header-only; this translation unit anchors the library target.
