#include "common/random.hpp"

namespace simsweep {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform() {
  return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Const derivation: mixing the parent state with the stream id through
  // splitmix64 decorrelates children from each other and from the parent
  // without mutating it, so fork order cannot perturb any stream.
  std::uint64_t x =
      s_[0] ^ rotl(s_[1], 13) ^ (stream + 0x632BE59BD9B4E019ULL);
  return Rng(splitmix64(x));
}

}  // namespace simsweep
