#pragma once
/// \file word_kernels.hpp
/// \brief Innermost 64-bit word kernels of the simulators (the paper's
/// first parallelism dimension — on a GPU these loops are the intra-warp
/// thread dimension; on CPU they are unrolled 4-wide for ILP and
/// restrict-qualified so the compiler can vectorize without runtime alias
/// checks). Rows of a simulation table never overlap, which is what makes
/// the restrict contracts valid: a node's output row is distinct from both
/// fanin rows.

#include <cstddef>
#include <cstdint>

#if defined(__GNUC__) || defined(__clang__)
#define SIMSWEEP_RESTRICT __restrict__
#else
#define SIMSWEEP_RESTRICT
#endif

namespace simsweep::kernels {

/// AND-node kernel: out[k] = (a[k] ^ ca) & (b[k] ^ cb).
inline void and2_words(std::uint64_t* SIMSWEEP_RESTRICT out,
                       const std::uint64_t* SIMSWEEP_RESTRICT a,
                       std::uint64_t ca,
                       const std::uint64_t* SIMSWEEP_RESTRICT b,
                       std::uint64_t cb, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    out[k + 0] = (a[k + 0] ^ ca) & (b[k + 0] ^ cb);
    out[k + 1] = (a[k + 1] ^ ca) & (b[k + 1] ^ cb);
    out[k + 2] = (a[k + 2] ^ ca) & (b[k + 2] ^ cb);
    out[k + 3] = (a[k + 3] ^ ca) & (b[k + 3] ^ cb);
  }
  for (; k < n; ++k) out[k] = (a[k] ^ ca) & (b[k] ^ cb);
}

/// AND with one constant side: out[k] = c & (b[k] ^ cb).
inline void and1_words(std::uint64_t* SIMSWEEP_RESTRICT out, std::uint64_t c,
                       const std::uint64_t* SIMSWEEP_RESTRICT b,
                       std::uint64_t cb, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    out[k + 0] = c & (b[k + 0] ^ cb);
    out[k + 1] = c & (b[k + 1] ^ cb);
    out[k + 2] = c & (b[k + 2] ^ cb);
    out[k + 3] = c & (b[k + 3] ^ cb);
  }
  for (; k < n; ++k) out[k] = c & (b[k] ^ cb);
}

inline void fill_words(std::uint64_t* SIMSWEEP_RESTRICT out, std::uint64_t v,
                       std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) out[k] = v;
}

/// Root-compare kernel: returns the first k < n where (a[k] ^ ca) differs
/// from (b[k] ^ cb) and stores the XOR difference word, or n if equal.
inline std::size_t mismatch_words(const std::uint64_t* SIMSWEEP_RESTRICT a,
                                  std::uint64_t ca,
                                  const std::uint64_t* SIMSWEEP_RESTRICT b,
                                  std::uint64_t cb, std::size_t n,
                                  std::uint64_t* diff_out) {
  const std::uint64_t c = ca ^ cb;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const std::uint64_t d =
        ((a[k + 0] ^ b[k + 0]) ^ c) | ((a[k + 1] ^ b[k + 1]) ^ c) |
        ((a[k + 2] ^ b[k + 2]) ^ c) | ((a[k + 3] ^ b[k + 3]) ^ c);
    if (d != 0) break;  // some word in this quad differs; resolve below
  }
  for (; k < n; ++k) {
    const std::uint64_t d = (a[k] ^ b[k]) ^ c;
    if (d != 0) {
      *diff_out = d;
      return k;
    }
  }
  return n;
}

}  // namespace simsweep::kernels
