#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing utilities used by the engine's per-phase
/// statistics and the benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace simsweep {

/// Monotonic stopwatch. Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple disjoint intervals (used for the
/// phase-breakdown measurements reproducing paper Fig. 6).
class Stopwatch {
 public:
  void start() { running_ = true; timer_.reset(); }
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  double seconds() const {
    return total_ + (running_ ? timer_.seconds() : 0.0);
  }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII guard that charges the enclosed scope to a Stopwatch.
class ScopedStopwatch {
 public:
  explicit ScopedStopwatch(Stopwatch& sw) : sw_(sw) { sw_.start(); }
  ~ScopedStopwatch() { sw_.stop(); }
  ScopedStopwatch(const ScopedStopwatch&) = delete;
  ScopedStopwatch& operator=(const ScopedStopwatch&) = delete;

 private:
  Stopwatch& sw_;
};

}  // namespace simsweep
