#pragma once
/// \file lock_ranks.hpp
/// \brief Compile-time (and optionally runtime) lock-rank table
/// (DESIGN.md §2.6).
///
/// Every mutex in the repo belongs to exactly one rank of a single total
/// order, and nested acquisitions must strictly ascend it:
///
///   service < pool < executor < board < cex_bank < ckpt < registry
///     < fault < log
///
/// The order is encoded twice from one table:
///
///  - **Statically**, as a set of phantom "rank anchor" capabilities with
///    `SIMSWEEP_ACQUIRED_AFTER` edges. A RankedMutexLock acquires (in the
///    eyes of Clang's `-Wthread-safety` analysis) both the concrete mutex
///    and its rank's anchor, so holding any rank-R lock while acquiring a
///    rank-R' <= R lock trips the analysis' acquired_after check — a
///    lock-order inversion becomes a `-Werror` build break on Clang
///    (anchors are shared per rank, so same-rank nesting is rejected too,
///    as "acquiring a capability that is already held"). Anchor edges are
///    checked under `-Wthread-safety-beta`; tools/run_static_analysis.sh
///    enables it.
///  - **At runtime**, as a per-thread held-rank stack validated on every
///    RankedMutexLock acquisition when enforcement is on (always on in
///    `-DSIMSWEEP_CHECKED=ON` builds, where a violation aborts like the
///    executor protocol checks; tests can switch to throwing). This leg
///    works on GCC-only hosts, where the Clang analysis cannot run.
///
/// Rank assignment (see DESIGN.md §2.6 for the rationale):
///   service   CecService scheduler state (job queue, verdict cache,
///             completion flags) — a service worker takes it strictly
///             before dispatching into a job, never while the job holds
///             any engine/sweeper lock, so it sits below pool
///   pool      ThreadPool::submit_mutex_ — held for a whole job, so it is
///             the outermost lock any participant thread inside a run can
///             hold
///   executor  portfolio VerdictBox — cross-engine race coordination
///   board     sweep::EquivBoard journal
///   cex_bank  sweep::SharedCexBank rows
///   ckpt      ckpt::CheckpointManager throttle/pending state — below
///             registry so a write can publish its metrics under the lock
///   registry  obs::Registry cell map
///   fault     fault-injector plan state (fault points fire anywhere)
///   log       log-output serialization (logging is legal under any lock)

#include "common/thread_annotations.hpp"

namespace simsweep::common {

/// The total order. Values are the rank positions; nested acquisitions
/// must be strictly increasing.
enum class LockRank : int {
  kService = 0,
  kPool = 1,
  kExecutor = 2,
  kBoard = 3,
  kCexBank = 4,
  kCkpt = 5,
  kRegistry = 6,
  kFault = 7,
  kLog = 8,
};

const char* to_string(LockRank rank);

/// Phantom capability standing for "a mutex of this rank is held". Never
/// locked at runtime; it exists so every ranked acquisition can inform
/// the Clang thread-safety analysis of its rank through one shared
/// declaration per rank (see file comment).
class SIMSWEEP_CAPABILITY("lock_rank") RankAnchor {
 public:
  explicit constexpr RankAnchor(LockRank rank) : rank_(rank) {}
  RankAnchor(const RankAnchor&) = delete;
  RankAnchor& operator=(const RankAnchor&) = delete;
  constexpr LockRank rank() const { return rank_; }

 private:
  LockRank rank_;
};

/// The rank table. Each anchor lists every lower anchor in its
/// SIMSWEEP_ACQUIRED_AFTER edge set (the full lower set, not just the
/// predecessor — Clang's acquired_after check does not chase transitive
/// edges through anchors that are not currently held).
namespace lock_ranks {

inline RankAnchor service{LockRank::kService};
inline RankAnchor pool SIMSWEEP_ACQUIRED_AFTER(service){LockRank::kPool};
inline RankAnchor executor SIMSWEEP_ACQUIRED_AFTER(service, pool){
    LockRank::kExecutor};
inline RankAnchor board SIMSWEEP_ACQUIRED_AFTER(service, pool, executor){
    LockRank::kBoard};
inline RankAnchor cex_bank SIMSWEEP_ACQUIRED_AFTER(service, pool, executor,
                                                   board){LockRank::kCexBank};
inline RankAnchor ckpt SIMSWEEP_ACQUIRED_AFTER(service, pool, executor,
                                               board, cex_bank){
    LockRank::kCkpt};
inline RankAnchor registry SIMSWEEP_ACQUIRED_AFTER(service, pool, executor,
                                                   board, cex_bank, ckpt){
    LockRank::kRegistry};
inline RankAnchor fault SIMSWEEP_ACQUIRED_AFTER(service, pool, executor,
                                                board, cex_bank, ckpt,
                                                registry){LockRank::kFault};
inline RankAnchor log SIMSWEEP_ACQUIRED_AFTER(service, pool, executor,
                                              board, cex_bank, ckpt,
                                              registry, fault){LockRank::kLog};

/// What the runtime checker does on an out-of-order acquisition. kAbort
/// mirrors the SIMSWEEP_CHECKED executor protocol checks (diagnostic on
/// stderr, then abort); kThrow raises std::logic_error so tests can
/// assert the violation without a death test.
enum class Enforcement { kOff = 0, kThrow = 1, kAbort = 2 };

/// Runtime enforcement switch. Defaults to kAbort in SIMSWEEP_CHECKED
/// builds and kOff otherwise. Must only be changed while the calling
/// thread holds no ranked lock.
void set_enforcement(Enforcement mode);
Enforcement enforcement();

namespace detail {
/// Validates (and when enforcement is on, records) the acquisition of a
/// rank on this thread. One relaxed atomic load when enforcement is off.
void note_acquire(LockRank rank);
void note_release(LockRank rank);
}  // namespace detail

}  // namespace lock_ranks

/// RAII lock over a ranked mutex: the one way production code takes a
/// common::Mutex that participates in the rank order. Statically acquires
/// both the mutex and its rank anchor; dynamically feeds the runtime
/// rank checker.
class SIMSWEEP_SCOPED_CAPABILITY RankedMutexLock {
 public:
  RankedMutexLock(Mutex& m, RankAnchor& rank) SIMSWEEP_ACQUIRE(m, rank)
      : m_(m), rank_(rank.rank()) {
    lock_ranks::detail::note_acquire(rank_);
    m_.lock();
  }
  ~RankedMutexLock() SIMSWEEP_RELEASE() {
    m_.unlock();
    lock_ranks::detail::note_release(rank_);
  }

  RankedMutexLock(const RankedMutexLock&) = delete;
  RankedMutexLock& operator=(const RankedMutexLock&) = delete;

 private:
  Mutex& m_;
  LockRank rank_;
};

}  // namespace simsweep::common
