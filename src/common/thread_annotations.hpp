#pragma once
/// \file thread_annotations.hpp
/// \brief Clang thread-safety-analysis annotations + annotated mutex types.
///
/// The macros expand to Clang's `-Wthread-safety` capability attributes and
/// to nothing on other compilers, so annotated code stays portable. Build
/// with Clang to get the static analysis (the top-level CMakeLists adds
/// `-Wthread-safety -Werror=thread-safety` automatically; see also
/// tools/run_static_analysis.sh).
///
/// libstdc++'s std::mutex carries no capability attributes, so the analysis
/// cannot see through it. Mutex/MutexLock below wrap std::mutex with the
/// attributes attached; use them (instead of std::mutex directly) for any
/// lock that guards annotated state. Reference:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <mutex>

#if defined(__clang__)
#define SIMSWEEP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SIMSWEEP_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (a lock).
#define SIMSWEEP_CAPABILITY(name) SIMSWEEP_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type that acquires a capability for its lifetime.
#define SIMSWEEP_SCOPED_CAPABILITY SIMSWEEP_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define SIMSWEEP_GUARDED_BY(x) SIMSWEEP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by the given capability.
#define SIMSWEEP_PT_GUARDED_BY(x) SIMSWEEP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held.
#define SIMSWEEP_REQUIRES(...) \
  SIMSWEEP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define SIMSWEEP_ACQUIRE(...) \
  SIMSWEEP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define SIMSWEEP_RELEASE(...) \
  SIMSWEEP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define SIMSWEEP_TRY_ACQUIRE(result, ...) \
  SIMSWEEP_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function that must NOT be called with the capability held (deadlock
/// prevention for non-reentrant locks).
#define SIMSWEEP_EXCLUDES(...) \
  SIMSWEEP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that this capability must be acquired after the listed ones
/// (lock-rank edges; checked by Clang under `-Wthread-safety-beta`). The
/// rank table lives in src/common/lock_ranks.hpp.
#define SIMSWEEP_ACQUIRED_AFTER(...) \
  SIMSWEEP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Declares that this capability must be acquired before the listed ones.
#define SIMSWEEP_ACQUIRED_BEFORE(...) \
  SIMSWEEP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Escape hatch for code whose correctness rests on a synchronization
/// protocol the static analysis cannot model (lock-free publication,
/// acquire/release on atomics). Every use must carry a comment naming the
/// happens-before edge it relies on.
#define SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS \
  SIMSWEEP_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Function returning a reference to the given capability (for accessors).
#define SIMSWEEP_RETURN_CAPABILITY(x) \
  SIMSWEEP_THREAD_ANNOTATION(lock_returned(x))

namespace simsweep::common {

/// std::mutex with capability attributes attached so `-Wthread-safety`
/// checks GUARDED_BY/REQUIRES declarations against its lock/unlock.
class SIMSWEEP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SIMSWEEP_ACQUIRE() { m_.lock(); }
  void unlock() SIMSWEEP_RELEASE() { m_.unlock(); }
  bool try_lock() SIMSWEEP_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The underlying std::mutex, for condition_variable waits. Callers
  /// bypass the analysis; pair with SIMSWEEP_NO_THREAD_SAFETY_ANALYSIS.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard analogue over Mutex, visible to the analysis.
class SIMSWEEP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) SIMSWEEP_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() SIMSWEEP_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace simsweep::common
