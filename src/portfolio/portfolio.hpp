#pragma once
/// \file portfolio.hpp
/// \brief Combined and portfolio equivalence checkers.
///
/// CombinedChecker reproduces the paper's "Ours (GPU+ABC)" flow: run the
/// simulation-based engine first; if the miter is reduced but undecided,
/// hand the residue to the SAT sweeper (paper §IV, Table II columns
/// "GPU (s)" / "ABC (s)" / "Total (s)").
///
/// PortfolioChecker is the stand-in for the commercial multi-engine tool
/// (Conformal LEC): it races the combined checker, a standalone SAT
/// sweeper and a BDD checker on separate threads and returns the first
/// decisive verdict, cancelling the losers — exactly the multithreading
/// conjecture the paper makes about commercial checkers (§IV-A).

#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/miter.hpp"
#include "bdd/bdd_cec.hpp"
#include "bdd/bdd_sweep.hpp"
#include "common/verdict.hpp"
#include "engine/engine.hpp"
#include "sweep/sat_sweeper.hpp"

namespace simsweep::portfolio {

// ---------------------------------------------------------------------------
// Combined checker (paper's "GPU+ABC").
// ---------------------------------------------------------------------------

struct CombinedParams {
  engine::EngineParams engine;
  sweep::SweeperParams sweeper;
  /// §V EC-transfer extension: hand the engine's pattern bank (random +
  /// CEX patterns) to the SAT sweeper so disproved pairs are not
  /// re-checked by SAT.
  bool transfer_ec = true;
  /// §V item 3 (after [Mishchenko et al. ICCAD'06]): interleave sweeping
  /// with logic rewriting — when the engine leaves an undecided residue,
  /// rewrite the reduced miter and run the engine once more before
  /// falling back to SAT. Restructuring changes the cuts the local
  /// checking phases see, giving blocked pairs a fresh chance.
  bool interleave_rewriting = false;
  unsigned max_rewrite_rounds = 1;
};

struct CombinedResult {
  Verdict verdict = Verdict::kUndecided;
  std::optional<std::vector<bool>> cex;
  /// Stats merged over ALL engine attempts (the rewriting-interleaved loop
  /// may run the engine several times): per-phase seconds and pair/CEX
  /// counters accumulate, initial_ands/pos_total keep the first attempt's
  /// view, final_ands the last one's.
  engine::EngineStats engine_stats;
  sweep::SweeperStats sweeper_stats;
  double engine_seconds = 0;  ///< "GPU (s)" column analogue
  double sat_seconds = 0;     ///< "ABC (s)" column analogue
  /// Effective wall-clock limit handed to the SAT-sweeper fallback: the
  /// caller's sweeper.time_limit clamped to the combined budget that
  /// remained after the engine attempts (engine.time_limit is the budget
  /// for the WHOLE combined flow, not per attempt). 0 when unbounded or
  /// when the sweeper was never entered.
  double sweeper_time_limit = 0;
  double total_seconds = 0;
  double reduction_percent = 0;  ///< "Reduced (%)" column analogue
  bool used_sat = false;  ///< engine left an undecided residue
  /// Full metric snapshot of the run (engine attempts share one registry;
  /// SAT-sweeper fallback stats are published under `sat_sweeper.*`).
  /// Serialize with obs::to_json().
  obs::Snapshot report;
};

CombinedResult combined_check_miter(const aig::Aig& miter,
                                    const CombinedParams& params = {});

/// Publishes the SAT-sweeper fallback stats as `sat_sweeper.*` gauges
/// (set semantics: at most one sweep per combined run). Exposed for the
/// ckpt resume wrapper, which runs the sweeper directly — without
/// re-entering the engine — when resuming a sweep-stage snapshot.
void publish_sweeper_stats(obs::Registry& registry, bool used,
                           const sweep::SweeperStats& stats, double seconds);

inline CombinedResult combined_check(const aig::Aig& a, const aig::Aig& b,
                                     const CombinedParams& params = {}) {
  return combined_check_miter(aig::make_miter(a, b), params);
}

// ---------------------------------------------------------------------------
// Portfolio checker (commercial multi-engine stand-in).
// ---------------------------------------------------------------------------

struct PortfolioParams {
  CombinedParams combined;
  sweep::SweeperParams sweeper;
  bdd::BddCecParams bdd;
  bdd::BddSweepParams bdd_sweep;
  bool run_combined = true;
  bool run_sat = true;
  bool run_bdd = true;
  /// Kuehlmann-style BDD sweeping (paper ref [6]) as a fourth engine.
  bool run_bdd_sweep = true;
};

struct PortfolioResult {
  Verdict verdict = Verdict::kUndecided;
  std::optional<std::vector<bool>> cex;
  std::string winner;  ///< "sim+sat", "sat", "bdd", "bdd-sweep", or ""
                       ///< if every engine came back undecided
  double seconds = 0;
};

PortfolioResult portfolio_check_miter(const aig::Aig& miter,
                                      const PortfolioParams& params = {});

inline PortfolioResult portfolio_check(const aig::Aig& a, const aig::Aig& b,
                                       const PortfolioParams& params = {}) {
  return portfolio_check_miter(aig::make_miter(a, b), params);
}

}  // namespace simsweep::portfolio
