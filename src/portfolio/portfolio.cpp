#include "portfolio/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "common/lock_ranks.hpp"
#include "common/log.hpp"
#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"
#include "opt/resyn.hpp"
#include "sweep/parallel_sweeper.hpp"

namespace simsweep::portfolio {

namespace {

/// First-decisive-verdict box shared by the racing engine threads. All
/// mutable state is mutex-guarded (and annotated, so Clang's
/// thread-safety analysis checks every access); the cancellation flag is
/// a separate atomic so losers observe it without taking the lock.
class VerdictBox {
 public:
  /// Publishes a verdict; only the first decisive one wins and fires the
  /// cancellation flag for the other engines.
  void deliver(Verdict v, std::optional<std::vector<bool>> cex,
               const char* who, double seconds) SIMSWEEP_EXCLUDES(m_) {
    if (v == Verdict::kUndecided) return;
    common::RankedMutexLock lock(m_, common::lock_ranks::executor);
    if (result_.verdict != Verdict::kUndecided) return;  // someone else won
    result_.verdict = v;
    result_.cex = std::move(cex);
    result_.winner = who;
    result_.seconds = seconds;
    cancel_.store(true, std::memory_order_relaxed);
  }

  /// The flag engines poll cooperatively (EngineParams::cancel et al.).
  const std::atomic<bool>* cancel_flag() const { return &cancel_; }

  /// Moves the result out. Must only be called after every engine thread
  /// joined (no concurrent deliver can be in flight).
  PortfolioResult take() SIMSWEEP_EXCLUDES(m_) {
    common::RankedMutexLock lock(m_, common::lock_ranks::executor);
    return std::move(result_);
  }

 private:
  common::Mutex m_;
  PortfolioResult result_ SIMSWEEP_GUARDED_BY(m_);
  std::atomic<bool> cancel_{false};
};

}  // namespace

/// SAT-sweeper fallback stats under `sat_sweeper.*` (gauges, set
/// semantics: one sweep per combined run at most). Namespace-scope so the
/// ckpt resume wrapper can republish after a sweep-stage resume.
void publish_sweeper_stats(obs::Registry& r, bool used,
                           const sweep::SweeperStats& s, double seconds) {
  r.set(obs::metric::kSweeperUsed, used ? 1.0 : 0.0);
  if (!used) return;
  r.set(obs::metric::kSweeperSatCalls, static_cast<double>(s.sat_calls));
  r.set(obs::metric::kSweeperPairsProved, static_cast<double>(s.pairs_proved));
  r.set(obs::metric::kSweeperPairsDisproved,
        static_cast<double>(s.pairs_disproved));
  r.set(obs::metric::kSweeperPairsUndecided,
        static_cast<double>(s.pairs_undecided));
  r.set(obs::metric::kSweeperConflicts, static_cast<double>(s.conflicts));
  r.set(obs::metric::kSweeperSolveFaults, static_cast<double>(s.solve_faults));
  r.set(obs::metric::kSweeperSeconds, seconds);
  // Parallel-sweep shard telemetry (DESIGN.md §2.5). Published only when
  // the sweep ran sharded (or degraded from a sharded attempt), so purely
  // sequential v2 reports keep their exact historical shape.
  if (s.shards == 0 && s.parallel_fallbacks == 0) return;
  r.set(obs::metric::kSweeperShards, static_cast<double>(s.shards));
  r.set(obs::metric::kSweeperChunks, static_cast<double>(s.chunks));
  r.set(obs::metric::kSweeperSteals, static_cast<double>(s.steals));
  r.set(obs::metric::kSweeperBoardMerges, static_cast<double>(s.board_merges));
  r.set(obs::metric::kSweeperCexShared, static_cast<double>(s.cex_shared));
  r.set(obs::metric::kSweeperPairsSimResolved,
        static_cast<double>(s.pairs_sim_resolved));
  r.set(obs::metric::kSweeperPairsPruned, static_cast<double>(s.pairs_pruned));
  r.set(obs::metric::kSweeperParallelFallbacks,
        static_cast<double>(s.parallel_fallbacks));
  for (std::size_t i = 0; i < s.shard.size(); ++i) {
    const std::string p =
        obs::metric::kSweeperShardPrefix + std::to_string(i);
    r.set(p + ".chunks", static_cast<double>(s.shard[i].chunks));
    r.set(p + ".steals", static_cast<double>(s.shard[i].steals));
    r.set(p + ".busy_seconds", s.shard[i].busy_seconds);
  }
}

CombinedResult combined_check_miter(const aig::Aig& miter,
                                    const CombinedParams& params) {
  Timer total;
  CombinedResult result;

  // One registry for the whole combined run: every engine attempt and the
  // SAT fallback publish into it, so module counters accumulate across
  // attempts and the final snapshot covers the complete flow.
  obs::Registry local_registry;
  engine::EngineParams engine_params = params.engine;
  obs::Registry& registry = engine_params.registry != nullptr
                                ? *engine_params.registry
                                : local_registry;
  engine_params.registry = &registry;

  // engine.time_limit is the wall-clock budget of the WHOLE combined
  // flow: rewriting-interleaved re-runs and the SAT fallback spend what
  // is *left* of it, they do not restart the clock. (Before this fix the
  // full budget was handed to every attempt again, so a combined run
  // could take attempts+1 times its nominal limit.) 0 = unbounded.
  //
  // remaining() reports the TRUE remainder, floored at zero. It used to
  // floor at 0.05 s, which turned an exhausted budget into a 50 ms grant
  // for every interleaved-rewriting round and the SAT fallback — up to
  // max_rewrite_rounds+1 extra attempts past the deadline. A spent
  // budget now short-circuits the rewrite loop and skips the sweeper
  // (the zero-remainder timeout path) instead of dribbling slices.
  const double budget = params.engine.time_limit;
  auto remaining = [&]() -> double {
    return budget > 0 ? std::max(0.0, budget - total.seconds()) : 0.0;
  };

  // engine.attempts counts every engine entry of the combined flow (the
  // first run plus each rewriting-interleaved re-run), so budget tests
  // can pin the exact attempt count.
  registry.add(obs::metric::kEngineAttempts, 1);
  const engine::SimCecEngine eng(engine_params);
  engine::EngineResult er = eng.check_miter(miter);

  // §V item 3: rewrite the residue and re-run the engine. The rewritten
  // miter is functionally identical (opt passes are verified
  // equivalence-preserving), so any verdict on it carries over; only a
  // CEX needs no translation because the PI interface is preserved.
  for (unsigned round = 0;
       params.interleave_rewriting && round < params.max_rewrite_rounds &&
       er.verdict == Verdict::kUndecided && er.reduced.num_ands() > 0 &&
       (budget <= 0 || remaining() > 0);
       ++round) {
    aig::Aig rewritten = opt::resyn_light(er.reduced);
    SIMSWEEP_LOG_INFO("interleaved rewriting: %zu -> %zu ANDs",
                      er.reduced.num_ands(), rewritten.num_ands());
    engine::EngineParams round_params = engine_params;
    round_params.time_limit = remaining();
    registry.add(obs::metric::kEngineAttempts, 1);
    const engine::SimCecEngine round_eng(round_params);
    engine::EngineResult next = round_eng.check_miter(std::move(rewritten));
    engine::accumulate_attempt_stats(next.stats, er.stats);
    er = std::move(next);
  }
  // Republish the chain-merged stats last: each attempt set the engine.*
  // gauges from its own stats, the merged totals must win.
  engine::publish_engine_stats(registry, er.stats);

  result.engine_stats = er.stats;
  result.engine_seconds = er.stats.total_seconds;
  result.reduction_percent = er.stats.reduction_percent();
  result.verdict = er.verdict;
  result.cex = std::move(er.cex);

  if (er.verdict == Verdict::kUndecided &&
      (budget <= 0 || remaining() > 0)) {
    result.used_sat = true;
    sweep::SweeperParams sweeper_params = params.sweeper;
    // Deadline plumbing: the fallback gets the remaining combined budget
    // (clamped against any caller-set sweeper limit), not the full engine
    // budget over again. The microsecond floor only guards the instant
    // where the budget ran out between the entry check above and here —
    // time_limit 0 would mean "unbounded" to the sweeper.
    if (budget > 0) {
      const double rem = std::max(1e-6, remaining());
      sweeper_params.time_limit = sweeper_params.time_limit > 0
                                      ? std::min(sweeper_params.time_limit, rem)
                                      : rem;
    }
    result.sweeper_time_limit = sweeper_params.time_limit;
    if (params.transfer_ec && er.bank &&
        er.bank->num_pis() == er.reduced.num_pis())
      sweeper_params.initial_bank = &*er.bank;
    // The engine published its own faults.injected delta in finish();
    // the sweep phase runs after, so its injected fires (parallel-path
    // degradation sites included) are accounted here as a second delta.
    const std::uint64_t sweep_fires_before = fault::fires_total();
    Timer sat_timer;
    sweep::SweepResult sr = sweep::sweep_miter(er.reduced, sweeper_params);
    result.sat_seconds = sat_timer.seconds();
    registry.add(obs::metric::kFaultsInjected,
                 fault::fires_total() - sweep_fires_before);
    result.sweeper_stats = sr.stats;
    result.verdict = sr.verdict;
    result.cex = std::move(sr.cex);
    // Note: a CEX found on the reduced miter is valid for the original
    // one — the reduction only merged proven-equivalent nodes and the PI
    // interface is preserved by rebuild().
  }
  publish_sweeper_stats(registry, result.used_sat, result.sweeper_stats,
                        result.sat_seconds);
  result.total_seconds = total.seconds();
  result.report = registry.snapshot();
  return result;
}

PortfolioResult portfolio_check_miter(const aig::Aig& miter,
                                      const PortfolioParams& params) {
  Timer total;
  VerdictBox box;
  const std::atomic<bool>* cancel = box.cancel_flag();

  // audit:exempt(portfolio engine race: each engine owns a dedicated
  // thread for its whole run; pool chunking cannot express that)
  std::vector<std::thread> threads;
  if (params.run_combined) {
    threads.emplace_back([&] {
      CombinedParams cp = params.combined;
      cp.engine.cancel = cancel;
      cp.sweeper.cancel = cancel;
      CombinedResult r = combined_check_miter(miter, cp);
      box.deliver(r.verdict, std::move(r.cex), "sim+sat", total.seconds());
    });
  }
  if (params.run_sat) {
    threads.emplace_back([&] {
      sweep::SweeperParams sp = params.sweeper;
      sp.cancel = cancel;
      sweep::SweepResult r = sweep::sweep_miter(miter, sp);
      box.deliver(r.verdict, std::move(r.cex), "sat", total.seconds());
    });
  }
  if (params.run_bdd) {
    threads.emplace_back([&] {
      bdd::BddCecParams bp = params.bdd;
      bp.cancel = cancel;
      bdd::BddCecResult r = bdd::bdd_check_miter(miter, bp);
      box.deliver(r.verdict, std::move(r.cex), "bdd", total.seconds());
    });
  }
  if (params.run_bdd_sweep) {
    threads.emplace_back([&] {
      bdd::BddSweepParams bp = params.bdd_sweep;
      bp.cancel = cancel;
      bdd::BddSweepResult r = bdd::bdd_sweep_miter(miter, bp);
      box.deliver(r.verdict, std::move(r.cex), "bdd-sweep", total.seconds());
    });
  }
  for (auto& t : threads) t.join();
  PortfolioResult result = box.take();
  if (result.verdict == Verdict::kUndecided) result.seconds = total.seconds();
  return result;
}

}  // namespace simsweep::portfolio
