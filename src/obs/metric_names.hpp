#pragma once
/// \file metric_names.hpp
/// \brief Typed metric-name constants expanded from metric_names.def
/// (DESIGN.md §2.6).
///
/// Every name a run report can contain is declared once in the X-macro
/// catalog src/obs/metric_names.def and surfaces here as a typed
/// constant (obs::metric::k*) or a family prefix. Instrumentation code
/// in src/ must publish through these constants — the `simsweep_audit`
/// static-analysis ctest rejects raw metric-name string literals passed
/// to Registry mutation calls, respellings of registered names anywhere
/// in the tree, names missing from the catalog, and catalog rows no
/// longer referenced by any code.
///
/// Dynamic families (per-pass, per-shard, per-site leaves) compose
/// runtime names from a catalogued prefix, e.g.
///   std::string(obs::metric::kSweeperShardPrefix) + std::to_string(s)
/// and are validated structurally by tools/check_report.cpp.

namespace simsweep::obs::metric {

#define SIMSWEEP_METRIC(ident, name) \
  inline constexpr const char ident[] = name;
#define SIMSWEEP_METRIC_FAMILY(ident, name) \
  inline constexpr const char ident[] = name;
#include "obs/metric_names.def"
#undef SIMSWEEP_METRIC
#undef SIMSWEEP_METRIC_FAMILY

/// All registered static leaf names, for schema checks and tooling.
inline constexpr const char* kRegisteredMetrics[] = {
#define SIMSWEEP_METRIC(ident, name) name,
#define SIMSWEEP_METRIC_FAMILY(ident, name)
#include "obs/metric_names.def"
#undef SIMSWEEP_METRIC
#undef SIMSWEEP_METRIC_FAMILY
};

/// All dynamic family prefixes (runtime-composed names must start with
/// one of these).
inline constexpr const char* kMetricFamilies[] = {
#define SIMSWEEP_METRIC(ident, name)
#define SIMSWEEP_METRIC_FAMILY(ident, name) name,
#include "obs/metric_names.def"
#undef SIMSWEEP_METRIC
#undef SIMSWEEP_METRIC_FAMILY
};

}  // namespace simsweep::obs::metric
