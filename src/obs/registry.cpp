#include "obs/registry.hpp"

#include "common/lock_ranks.hpp"

#include <algorithm>

namespace simsweep::obs {

const Metric* Snapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const Metric& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

std::uint64_t Snapshot::count(std::string_view name) const {
  const Metric* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kCounter) ? m->count : 0;
}

double Snapshot::value(std::string_view name) const {
  const Metric* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kGauge) ? m->value : 0.0;
}

Counter& Registry::counter(std::string_view name) {
  common::RankedMutexLock lock(mutex_, common::lock_ranks::registry);
  auto it = cells_.find(name);
  if (it == cells_.end())
    it = cells_.emplace(std::string(name),
                        std::make_unique<Cell>(MetricKind::kCounter))
             .first;
  return it->second->counter;
}

Gauge& Registry::gauge(std::string_view name) {
  common::RankedMutexLock lock(mutex_, common::lock_ranks::registry);
  auto it = cells_.find(name);
  if (it == cells_.end())
    it = cells_.emplace(std::string(name),
                        std::make_unique<Cell>(MetricKind::kGauge))
             .first;
  return it->second->gauge;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  common::RankedMutexLock lock(mutex_, common::lock_ranks::registry);
  snap.metrics.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) {
    Metric m;
    m.name = name;
    m.kind = cell->kind;
    m.count = cell->counter.value();
    m.value = cell->gauge.value();
    snap.metrics.push_back(std::move(m));
  }
  // std::map iteration is already name-sorted; Snapshot::find relies on it.
  return snap;
}

}  // namespace simsweep::obs
