#pragma once
/// \file registry.hpp
/// \brief Low-overhead counter/gauge registry for run reports.
///
/// The observability layer follows a two-tier design so the simulation
/// hot paths stay uninstrumented:
///
///  - hot loops accumulate into plain locals (or the per-module stats
///    structs they already keep);
///  - at batch/phase boundaries the accumulated deltas are published into
///    a Registry with ONE atomic add per metric.
///
/// A published cell is a relaxed std::atomic, so concurrent publishers
/// (pool workers finishing chunks, racing portfolio engines sharing a
/// registry) never need a lock on the publish path; the registry mutex is
/// only taken to *create* a cell the first time a name is seen and to
/// take a snapshot. Callers on repeated paths should cache the Counter&/
/// Gauge& reference (cell addresses are stable for the registry's
/// lifetime).
///
/// Naming scheme (see DESIGN.md §2.3): dotted lower_snake paths,
/// `<module>.<metric>` or `<module>.<sub>.<metric>`, e.g.
/// `exhaustive.words_simulated`, `cut.pass1.cuts_enumerated`,
/// `pool.busy_fraction.mean`. The JSON emitter (obs/report.hpp) nests
/// segments into objects, so a name must not be both a leaf and a prefix
/// of another name.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

namespace simsweep::obs {

/// Monotonic event count. Increment is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time double value (seconds, fractions, sizes). set() has
/// last-writer-wins semantics; add() accumulates via a CAS loop (atomic
/// double fetch_add is C++20-library-optional, the loop is portable).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge };

/// One metric in a snapshot: `count` is meaningful for counters, `value`
/// for gauges.
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;
  double value = 0.0;

  double as_double() const {
    return kind == MetricKind::kCounter ? static_cast<double>(count) : value;
  }
};

/// A point-in-time copy of every metric, sorted by name. Plain data:
/// copyable, storable in results, safe to read from any thread.
struct Snapshot {
  std::vector<Metric> metrics;

  bool empty() const { return metrics.empty(); }
  /// Returns the metric with this exact name, or nullptr.
  const Metric* find(std::string_view name) const;
  /// Counter value by name (0 if absent or a gauge).
  std::uint64_t count(std::string_view name) const;
  /// Gauge value by name (0.0 if absent or a counter).
  double value(std::string_view name) const;
};

/// The metric registry threaded through the engine (EngineParams::registry
/// -> EngineContext::obs) and the combined checker. Thread-safe: cell
/// creation and snapshotting lock; increments on returned references are
/// lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the counter with this name. The reference is stable
  /// for the registry's lifetime. If the name already exists as a gauge,
  /// the counter view of the same cell is returned (first creation wins
  /// the kind; instrumentation keeps kinds consistent per name).
  Counter& counter(std::string_view name) SIMSWEEP_EXCLUDES(mutex_);
  /// Finds or creates the gauge with this name.
  Gauge& gauge(std::string_view name) SIMSWEEP_EXCLUDES(mutex_);

  /// Convenience one-shot forms (pay the map lookup; fine off hot paths).
  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name).add(delta);
  }
  void set(std::string_view name, double v) { gauge(name).set(v); }
  void add_value(std::string_view name, double delta) {
    gauge(name).add(delta);
  }

  Snapshot snapshot() const SIMSWEEP_EXCLUDES(mutex_);

 private:
  /// One named cell; kind selects which member is live. Both members are
  /// trivially constructible so a cell is just two atomics.
  struct Cell {
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    explicit Cell(MetricKind k) : kind(k) {}
  };

  mutable common::Mutex mutex_;
  /// Heterogeneous-lookup map so counter("name") takes no allocation on
  /// the found path. unique_ptr keeps cell addresses stable across
  /// rehash-free std::map inserts (and documents intent).
  std::map<std::string, std::unique_ptr<Cell>, std::less<>> cells_
      SIMSWEEP_GUARDED_BY(mutex_);
};

}  // namespace simsweep::obs
