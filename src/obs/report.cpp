#include "obs/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

namespace simsweep::obs {

namespace {

/// Name tree for the emitter: dotted metric names nest segment by segment.
struct Node {
  std::map<std::string, Node> children;
  const Metric* leaf = nullptr;
};

void insert_metric(Node& root, const Metric& m) {
  Node* node = &root;
  std::size_t pos = 0;
  while (true) {
    const std::size_t dot = m.name.find('.', pos);
    const std::string seg = m.name.substr(
        pos, dot == std::string::npos ? std::string::npos : dot - pos);
    node = &node->children[seg];
    if (dot == std::string::npos) break;
    pos = dot + 1;
  }
  node->leaf = &m;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void emit_node(const Node& node, int indent, std::string& out) {
  // A name that is both a leaf and a prefix would lose its leaf here; the
  // naming scheme forbids that (DESIGN.md §2.3) and instrumentation
  // complies, so children win.
  if (node.children.empty() && node.leaf != nullptr) {
    char buf[64];
    if (node.leaf->kind == MetricKind::kCounter)
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(node.leaf->count));
    else
      std::snprintf(buf, sizeof buf, "%.9g", node.leaf->value);
    out += buf;
    return;
  }
  out += "{\n";
  std::size_t i = 0;
  for (const auto& [seg, child] : node.children) {
    out.append(static_cast<std::size_t>(indent) + 2, ' ');
    out.push_back('"');
    append_escaped(out, seg);
    out += "\": ";
    emit_node(child, indent + 2, out);
    if (++i < node.children.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append(static_cast<std::size_t>(indent), ' ');
  out.push_back('}');
}

// --- Minimal JSON parser for validation (objects, strings, numbers,
// bools/null, arrays). Produces dotted-path leaf maps; no external
// dependency. ---

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;
  /// Numeric leaves by dotted path ("metrics.exhaustive.rounds").
  std::map<std::string, double> numbers;
  /// String leaves by dotted path ("schema").
  std::map<std::string, std::string> strings;
  /// Every object path seen (so sections can be checked for presence).
  std::map<std::string, bool> objects;

  explicit Parser(const std::string& text) : s(text) {}

  bool fail(const std::string& what) {
    if (err.empty()) {
      char where[32];
      std::snprintf(where, sizeof where, " at offset %zu", i);
      err = what + where;
    }
    return false;
  }

  void skip_ws() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0)
      ++i;
  }

  bool parse_string(std::string* out) {
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    std::string v;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return fail("dangling escape");
        switch (s[i]) {
          case '"': v.push_back('"'); break;
          case '\\': v.push_back('\\'); break;
          case '/': v.push_back('/'); break;
          case 'n': v.push_back('\n'); break;
          case 't': v.push_back('\t'); break;
          case 'r': v.push_back('\r'); break;
          default: return fail("unsupported escape");
        }
        ++i;
      } else {
        v.push_back(s[i++]);
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    if (out != nullptr) *out = std::move(v);
    return true;
  }

  bool parse_number(double* out) {
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
            s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '-' ||
            s[i] == '+'))
      ++i;
    if (i == start) return fail("expected number");
    try {
      *out = std::stod(s.substr(start, i - start));
    } catch (...) {
      return fail("malformed number");
    }
    return true;
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string v;
      if (!parse_string(&v)) return false;
      strings[path] = std::move(v);
      return true;
    }
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      numbers[path] = 1.0;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      numbers[path] = 0.0;
      return true;
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      return true;
    }
    double num = 0;
    if (!parse_number(&num)) return false;
    numbers[path] = num;
    return true;
  }

  bool parse_object(const std::string& path) {
    if (s[i] != '{') return fail("expected object");
    ++i;
    objects[path] = true;
    skip_ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (i >= s.size() || s[i] != ':') return fail("expected ':'");
      ++i;
      if (!parse_value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    if (s[i] != '[') return fail("expected array");
    ++i;
    skip_ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    std::size_t index = 0;
    while (true) {
      char idx[24];
      std::snprintf(idx, sizeof idx, "%zu", index++);
      if (!parse_value(path + "." + idx)) return false;
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  Node root;
  for (const Metric& m : snapshot.metrics) insert_metric(root, m);
  std::string out;
  out += "{\n  \"schema\": \"";
  out += kSchemaId;
  out += "\",\n  \"metrics\": ";
  emit_node(root, 2, out);
  out += "\n}\n";
  return out;
}

bool write_json_file(const Snapshot& snapshot, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json(snapshot);
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return ok && closed;
}

bool validate_report_json(const std::string& json, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  Parser p(json);
  p.skip_ws();
  if (!p.parse_value("")) return fail("malformed JSON: " + p.err);
  p.skip_ws();
  if (p.i != json.size()) return fail("trailing content after JSON value");

  const auto schema = p.strings.find("schema");
  if (schema == p.strings.end())
    return fail("missing top-level \"schema\" string");
  const bool is_v3 = schema->second == kSchemaId;
  const bool is_v2 = schema->second == kSchemaIdV2;
  if (!is_v3 && !is_v2 && schema->second != kSchemaIdV1)
    return fail("unexpected schema id \"" + schema->second + "\" (want \"" +
                kSchemaId + "\", \"" + kSchemaIdV2 + "\" or \"" +
                kSchemaIdV1 + "\")");
  if (p.objects.find("metrics") == p.objects.end())
    return fail("missing top-level \"metrics\" object");

  // The five paper modules must be present with at least one nonzero
  // numeric leaf; the pool section must be present.
  static constexpr const char* kNonzeroSections[] = {
      "exhaustive", "cut", "ec", "partial_sim", "miter"};
  for (const char* section : kNonzeroSections) {
    const std::string path = std::string("metrics.") + section;
    if (p.objects.find(path) == p.objects.end())
      return fail("missing module section \"" + path + "\"");
    const std::string prefix = path + ".";
    bool nonzero = false;
    for (auto it = p.numbers.lower_bound(prefix);
         it != p.numbers.end() && it->first.compare(0, prefix.size(),
                                                    prefix) == 0;
         ++it) {
      if (it->second != 0.0) {
        nonzero = true;
        break;
      }
    }
    if (!nonzero)
      return fail("module section \"" + path +
                  "\" has no nonzero metric");
  }
  if (p.objects.find("metrics.pool") == p.objects.end())
    return fail("missing \"metrics.pool\" section");
  if (is_v2 || is_v3) {
    // Robustness telemetry (DESIGN.md §2.4): presence only — a run with
    // no faults and no degradation legitimately reports all zeros.
    for (const char* section : {"faults", "degrade"}) {
      const std::string path = std::string("metrics.") + section;
      if (p.objects.find(path) == p.objects.end())
        return fail("missing v2 section \"" + path + "\"");
    }
  }
  if (is_v3) {
    // Checkpoint durability (DESIGN.md §2.8): same presence-only contract
    // — an uncheckpointed, unsupervised run reports all zeros.
    for (const char* section : {"ckpt", "supervisor"}) {
      const std::string path = std::string("metrics.") + section;
      if (p.objects.find(path) == p.objects.end())
        return fail("missing v3 section \"" + path + "\"");
    }
  }
  return true;
}

}  // namespace simsweep::obs
