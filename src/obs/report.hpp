#pragma once
/// \file report.hpp
/// \brief JSON run-report emitter + schema validator for obs snapshots.
///
/// The run report is the end-to-end surface of the observability layer
/// (`cec_tool --json-report`, `engine_anatomy`, the `report_schema`
/// ctest). Schema `simsweep.run_report.v1`:
///
/// ```json
/// {
///   "schema": "simsweep.run_report.v1",
///   "metrics": {
///     "exhaustive": { "batches": 12, "words_simulated": 1048576, ... },
///     "cut":        { "pass1": { "cuts_enumerated": 4096, ... }, ... },
///     "ec":         { "builds": 3, "classes_built": 120, ... },
///     "partial_sim":{ "simulate_calls": 5, "pattern_words": 8, ... },
///     "miter":      { "rebuilds": 4, "ands_removed": 7986, ... },
///     "engine":     { "total_seconds": 2.7, ... },
///     "pool":       { "jobs": 931, "busy_fraction": { "mean": 0.4 }, ... }
///   }
/// }
/// ```
///
/// Dotted metric names nest into objects segment by segment; counters
/// print as integers, gauges as doubles. validate_report_json() checks a
/// serialized report against this schema, including the presence of the
/// five paper-module sections with at least one nonzero metric each
/// (exhaustive, cut, ec, partial_sim, miter) plus the pool section — the
/// acceptance contract of the report.
///
/// v2 additionally requires the robustness sections `faults` and
/// `degrade` (DESIGN.md §2.4) to be *present* under "metrics" — all
/// zeros is the expected healthy state, so presence, not nonzero-ness, is
/// the contract. v3 (current) extends that presence contract to the
/// checkpoint-durability sections `ckpt` and `supervisor` (DESIGN.md
/// §2.8). v1 and v2 documents are still accepted by the validator.

#include <string>

#include "obs/registry.hpp"

namespace simsweep::obs {

/// Schema tag stamped into every emitted run report (current version).
inline constexpr const char kSchemaId[] = "simsweep.run_report.v3";

/// Previous schema tags; still accepted by validate_report_json() so
/// archived reports and older tooling keep validating.
inline constexpr const char kSchemaIdV2[] = "simsweep.run_report.v2";
inline constexpr const char kSchemaIdV1[] = "simsweep.run_report.v1";

/// Serializes a snapshot as a `simsweep.run_report.v3` JSON document.
std::string to_json(const Snapshot& snapshot);

/// Writes to_json(snapshot) to `path`. Returns false on I/O failure.
bool write_json_file(const Snapshot& snapshot, const std::string& path);

/// Validates a serialized report: well-formed JSON, a known "schema" tag
/// (v1, v2 or v3), "metrics" object present, the five module sections
/// (exhaustive, cut, ec, partial_sim, miter) each present with at least
/// one nonzero numeric leaf, and a "pool" section present. v2 and v3
/// documents must additionally carry the "faults" and "degrade" sections,
/// and v3 documents the "ckpt" and "supervisor" sections (presence only —
/// all-zero is the healthy state). On failure returns false and, if
/// `error` is non-null, stores a human-readable reason.
bool validate_report_json(const std::string& json, std::string* error);

}  // namespace simsweep::obs
