#include "aig/aig_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace simsweep::aig {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("aiger: " + msg);
}

/// Reads a single AIGER varint (LEB128: 7 data bits per byte, MSB = more).
std::uint32_t read_varint(std::istream& in) {
  std::uint32_t value = 0;
  unsigned shift = 0;
  for (;;) {
    const int ch = in.get();
    if (ch == EOF) fail("unexpected EOF in delta encoding");
    value |= static_cast<std::uint32_t>(ch & 0x7F) << shift;
    if (!(ch & 0x80)) return value;
    shift += 7;
    if (shift > 28) fail("varint too long");
  }
}

void write_varint(std::ostream& out, std::uint32_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

/// Builds an Aig from raw AIGER and-gate rows. `ands[i]` defines literal
/// 2*(num_pis+1+i). Translation re-strashes, so the resulting literal of a
/// gate can differ from its AIGER literal; `lit_of` tracks the mapping.
Aig build(std::uint32_t num_pis, const std::vector<std::uint32_t>& outputs,
          const std::vector<std::pair<std::uint32_t, std::uint32_t>>& ands) {
  Aig aig(num_pis);
  std::vector<Lit> lit_of(1 + num_pis + ands.size());
  lit_of[0] = kLitFalse;
  for (std::uint32_t i = 0; i < num_pis; ++i) lit_of[i + 1] = aig.pi_lit(i);
  auto xlat = [&](std::uint32_t aiger_lit) {
    const std::uint32_t var = aiger_lit >> 1;
    if (var >= lit_of.size()) fail("literal out of range");
    return lit_notcond(lit_of[var], aiger_lit & 1);
  };
  for (std::size_t i = 0; i < ands.size(); ++i)
    lit_of[1 + num_pis + i] = aig.add_and(xlat(ands[i].first),
                                          xlat(ands[i].second));
  for (std::uint32_t o : outputs) aig.add_po(xlat(o));
  return aig;
}

}  // namespace

Aig read_aiger(std::istream& in) {
  std::string magic;
  in >> magic;
  std::uint32_t m = 0, i = 0, l = 0, o = 0, a = 0;
  if (!(in >> m >> i >> l >> o >> a)) fail("bad header");
  if (l != 0) fail("latches are not supported (combinational only)");
  if (m < i + a) fail("inconsistent header counts");

  std::vector<std::uint32_t> outputs(o);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ands(a);

  if (magic == "aag") {
    for (std::uint32_t k = 0; k < i; ++k) {
      std::uint32_t lit;
      if (!(in >> lit)) fail("missing input literal");
      if (lit != 2 * (k + 1)) fail("non-contiguous input literals");
    }
    for (auto& out : outputs)
      if (!(in >> out)) fail("missing output literal");
    for (std::uint32_t k = 0; k < a; ++k) {
      std::uint32_t lhs, rhs0, rhs1;
      if (!(in >> lhs >> rhs0 >> rhs1)) fail("missing and-gate row");
      if (lhs != 2 * (i + l + k + 1)) fail("non-contiguous and literals");
      // ASCII aag does not require rhs0 >= rhs1; only topological order.
      if (rhs0 >= lhs || rhs1 >= lhs) fail("and-gate row not topological");
      ands[k] = {rhs0, rhs1};
    }
  } else if (magic == "aig") {
    for (auto& out : outputs)
      if (!(in >> out)) fail("missing output literal");
    in.ignore();  // newline before the binary section
    for (std::uint32_t k = 0; k < a; ++k) {
      const std::uint32_t lhs = 2 * (i + l + k + 1);
      const std::uint32_t delta0 = read_varint(in);
      const std::uint32_t delta1 = read_varint(in);
      if (delta0 == 0 || delta0 > lhs) fail("bad delta0");
      const std::uint32_t rhs0 = lhs - delta0;
      if (delta1 > rhs0) fail("bad delta1");
      ands[k] = {rhs0, rhs0 - delta1};
    }
  } else {
    fail("unknown magic '" + magic + "'");
  }
  return build(i, outputs, ands);
}

Aig read_aiger_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  return read_aiger(in);
}

namespace {

/// Computes compact AIGER literals for writing: dangling gates are kept
/// (AIGER allows them) so the mapping is the identity.
void write_common(const Aig& aig, std::ostream& out, bool binary) {
  const std::uint32_t i = aig.num_pis();
  const std::uint32_t a = static_cast<std::uint32_t>(aig.num_ands());
  const std::uint32_t m = i + a;
  out << (binary ? "aig " : "aag ") << m << ' ' << i << " 0 "
      << aig.num_pos() << ' ' << a << '\n';
  if (!binary)
    for (std::uint32_t k = 0; k < i; ++k) out << 2 * (k + 1) << '\n';
  for (Lit po : aig.pos()) out << po << '\n';
  for (Var v = i + 1; v < aig.num_nodes(); ++v) {
    const std::uint32_t lhs = 2 * v;
    std::uint32_t rhs0 = aig.fanin0(v);
    std::uint32_t rhs1 = aig.fanin1(v);
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    if (binary) {
      write_varint(out, lhs - rhs0);
      write_varint(out, rhs0 - rhs1);
    } else {
      out << lhs << ' ' << rhs0 << ' ' << rhs1 << '\n';
    }
  }
}

}  // namespace

void write_aiger(const Aig& aig, std::ostream& out) {
  write_common(aig, out, /*binary=*/true);
}

void write_aiger_ascii(const Aig& aig, std::ostream& out) {
  write_common(aig, out, /*binary=*/false);
}

void write_aiger_file(const Aig& aig, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_aiger(aig, out);
}

}  // namespace simsweep::aig
