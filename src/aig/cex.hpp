#pragma once
/// \file cex.hpp
/// \brief Counter-example utilities: ternary simulation and CEX
/// minimization.
///
/// A raw CEX from any checker assigns every PI. Most assignments are
/// irrelevant; reporting a minimized cube ("PO 3 fails whenever x2=1 and
/// x7=0") is far more useful to a human debugging the design. The
/// standard technique is ternary (0/1/X) simulation: a PI is dropped from
/// the cube when X-ing it still forces the failing PO to 1.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace simsweep::aig {

enum class Ternary : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

/// Three-valued simulation of the whole AIG. AND semantics: 0 dominates,
/// X otherwise unless both inputs are 1.
std::vector<Ternary> ternary_simulate(const Aig& aig,
                                      const std::vector<Ternary>& pi_values);

/// Evaluates one literal from a completed ternary simulation.
Ternary ternary_value(const std::vector<Ternary>& values, Lit lit);

/// A minimized counter-example: `care[i]` says whether PI i's value in
/// `values` is required for the failure.
struct MinimizedCex {
  std::vector<bool> values;
  std::vector<bool> care;
  std::size_t num_care = 0;
};

/// Minimizes a failing assignment for PO `po_index` of a miter (the PO
/// must evaluate to 1 under `cex`; throws std::invalid_argument
/// otherwise). Greedy one-pass X-lifting: sound (the returned cube always
/// fails) but not guaranteed minimum.
MinimizedCex minimize_cex(const Aig& miter, const std::vector<bool>& cex,
                          std::size_t po_index);

/// Finds a failing PO under `cex`, or -1 if none fails (helper for
/// callers holding a checker-produced CEX).
int find_failing_po(const Aig& miter, const std::vector<bool>& cex);

}  // namespace simsweep::aig
