#include "aig/rebuild.hpp"

#include <cassert>

namespace simsweep::aig {

SubstitutionMap::SubstitutionMap(std::size_t num_vars)
    : repl_(num_vars) {
  for (std::size_t v = 0; v < num_vars; ++v)
    repl_[v] = make_lit(static_cast<Var>(v));
}

bool SubstitutionMap::merge(Var var, Lit lit) {
  assert(var < repl_.size() && lit_var(lit) < repl_.size());
  if (lit_var(lit) >= var) return false;
  if (repl_[var] != make_lit(var)) return false;  // already substituted
  repl_[var] = lit;
  ++num_merged_;
  return true;
}

Lit SubstitutionMap::resolve(Lit lit) const {
  // Follow the chain; compress the path for amortized O(1) lookups.
  Var v = lit_var(lit);
  bool c = lit_compl(lit);
  while (repl_[v] != make_lit(v)) {
    const Lit next = repl_[v];
    c ^= lit_compl(next);
    v = lit_var(next);
  }
  // Path compression (single hop is enough for our chain lengths).
  const Var v0 = lit_var(lit);
  if (v0 != v) repl_[v0] = make_lit(v, c ^ lit_compl(lit));
  return make_lit(v, c);
}

RebuildResult rebuild(const Aig& aig, const SubstitutionMap& subst) {
  RebuildResult result;
  result.aig = Aig(aig.num_pis());
  result.lit_map.assign(aig.num_nodes(), RebuildResult::kLitInvalid);

  // Mark variables reachable from the POs through resolved literals.
  std::vector<std::uint8_t> needed(aig.num_nodes(), 0);
  std::vector<Var> stack;
  auto mark = [&](Lit lit) {
    const Var v = lit_var(subst.resolve(lit));
    if (!needed[v]) {
      needed[v] = 1;
      stack.push_back(v);
    }
  };
  for (Lit po : aig.pos()) mark(po);
  while (!stack.empty()) {
    const Var v = stack.back();
    stack.pop_back();
    if (!aig.is_and(v)) continue;
    mark(aig.fanin0(v));
    mark(aig.fanin1(v));
  }

  result.lit_map[0] = kLitFalse;
  for (unsigned i = 0; i < aig.num_pis(); ++i)
    result.lit_map[i + 1] = result.aig.pi_lit(i);

  auto mapped = [&](Lit lit) {
    const Lit r = subst.resolve(lit);
    const Lit base = result.lit_map[lit_var(r)];
    assert(base != RebuildResult::kLitInvalid);
    return lit_notcond(base, lit_compl(r));
  };

  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    if (!needed[v]) continue;
    if (lit_var(subst.resolve(make_lit(v))) != v) continue;  // substituted
    result.lit_map[v] =
        result.aig.add_and(mapped(aig.fanin0(v)), mapped(aig.fanin1(v)));
  }
  for (Lit po : aig.pos()) result.aig.add_po(mapped(po));
  return result;
}

RebuildResult cleanup(const Aig& aig) {
  return rebuild(aig, SubstitutionMap(aig.num_nodes()));
}

}  // namespace simsweep::aig
