#pragma once
/// \file miter.hpp
/// \brief Miter construction (paper §II-B).
///
/// A miter shares the corresponding PI pairs of the two circuits being
/// compared and XORs corresponding PO pairs; the XOR outputs become the
/// miter's POs. The two circuits are equivalent iff every miter PO is
/// constant zero.

#include "aig/aig.hpp"

namespace simsweep::aig {

/// Builds the miter of two AIGs with matching PI/PO counts. PI i of both
/// operands maps to PI i of the miter; PO i of the miter is
/// a.po(i) XOR b.po(i). Throws std::invalid_argument on interface mismatch.
Aig make_miter(const Aig& a, const Aig& b);

/// True if the miter is solved: every PO is the constant-false literal.
bool miter_proved(const Aig& miter);

/// True if some PO is the constant-true literal (circuits definitely
/// inequivalent regardless of the rest).
bool miter_disproved(const Aig& miter);

}  // namespace simsweep::aig
