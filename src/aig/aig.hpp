#pragma once
/// \file aig.hpp
/// \brief And-Inverter Graph (AIG) with structural hashing.
///
/// An AIG (paper §II-A) is a Boolean network whose internal nodes are
/// two-input AND gates and whose edges carry optional inversions. Nodes are
/// identified by dense variable ids:
///
///   var 0                      constant FALSE
///   vars 1 .. num_pis()        primary inputs
///   vars num_pis()+1 ..        AND nodes, in topological order
///
/// Edges are *literals*: lit = 2*var + complement, so lit 0 / lit 1 are the
/// constants false / true (AIGER convention). Because AND nodes can only be
/// created from existing literals, variable id order is always a valid
/// topological order — all traversal code in SimSweep relies on this
/// invariant.
///
/// add_and() performs constant folding, the trivial-identity rules, and
/// structural hashing, so the graph never contains two AND nodes with the
/// same (normalized) fanin pair.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace simsweep::aig {

/// An edge: variable id with optional complement in the LSB.
using Lit = std::uint32_t;
/// A node (variable) id.
using Var = std::uint32_t;

constexpr Lit kLitFalse = 0;
constexpr Lit kLitTrue = 1;

constexpr Lit make_lit(Var var, bool complement = false) {
  return (var << 1) | static_cast<Lit>(complement);
}
constexpr Var lit_var(Lit lit) { return lit >> 1; }
constexpr bool lit_compl(Lit lit) { return lit & 1; }
constexpr Lit lit_not(Lit lit) { return lit ^ 1; }
/// Complement lit iff c.
constexpr Lit lit_notcond(Lit lit, bool c) {
  return lit ^ static_cast<Lit>(c);
}
constexpr Lit lit_regular(Lit lit) { return lit & ~Lit{1}; }

/// An AND node's two fanin literals. For PIs and the constant node the
/// fanins are unused and set to 0.
struct Node {
  Lit fanin0 = 0;
  Lit fanin1 = 0;
};

class Aig {
 public:
  Aig() { nodes_.emplace_back(); }  // var 0 = constant FALSE

  /// Constructs an AIG with num_pis primary inputs.
  explicit Aig(unsigned num_pis) : Aig() {
    for (unsigned i = 0; i < num_pis; ++i) add_pi();
  }

  /// Adds a primary input. All PIs must be added before any AND node.
  Var add_pi();

  /// Adds (or finds, via structural hashing) the AND of two literals.
  /// Applies constant folding and the idempotence/complement rules, so the
  /// result may be an existing literal rather than a fresh node.
  Lit add_and(Lit a, Lit b);

  /// Derived gates, built from AND/INV.
  Lit add_or(Lit a, Lit b) { return lit_not(add_and(lit_not(a), lit_not(b))); }
  Lit add_xor(Lit a, Lit b);
  Lit add_mux(Lit sel, Lit t, Lit e);  ///< sel ? t : e
  Lit add_maj3(Lit a, Lit b, Lit c);   ///< majority of three

  /// Registers a primary output driven by the given literal.
  void add_po(Lit lit) { pos_.push_back(lit); }
  void set_po(std::size_t i, Lit lit) { pos_[i] = lit; }

  std::size_t num_nodes() const { return nodes_.size(); }  ///< incl. const
  unsigned num_pis() const { return num_pis_; }
  std::size_t num_pos() const { return pos_.size(); }
  std::size_t num_ands() const { return nodes_.size() - 1 - num_pis_; }

  bool is_const(Var v) const { return v == 0; }
  bool is_pi(Var v) const { return v >= 1 && v <= num_pis_; }
  bool is_and(Var v) const { return v > num_pis_; }

  Lit fanin0(Var v) const { return nodes_[v].fanin0; }
  Lit fanin1(Var v) const { return nodes_[v].fanin1; }
  Lit po(std::size_t i) const { return pos_[i]; }
  const std::vector<Lit>& pos() const { return pos_; }

  /// The literal of PI index i (0-based), i.e. variable i+1.
  Lit pi_lit(unsigned i) const { return make_lit(i + 1); }

  /// Evaluates all POs under a complete PI assignment (slow reference
  /// evaluator used by tests and CEX validation).
  std::vector<bool> evaluate(const std::vector<bool>& pi_values) const;

  /// Evaluates a single literal under a complete PI assignment.
  bool evaluate_lit(Lit lit, const std::vector<bool>& pi_values) const;

 private:
  static std::uint64_t strash_key(Lit a, Lit b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::vector<Node> nodes_;
  std::vector<Lit> pos_;
  unsigned num_pis_ = 0;
  std::unordered_map<std::uint64_t, Var> strash_;
};

}  // namespace simsweep::aig
