#include "aig/aig_utils.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "aig/aig_analysis.hpp"

namespace simsweep::aig {

AigStats compute_stats(const Aig& aig) {
  AigStats s;
  s.num_pis = aig.num_pis();
  s.num_pos = aig.num_pos();
  s.num_ands = aig.num_ands();
  const auto levels = compute_levels(aig);
  s.max_level = levels.empty()
                    ? 0
                    : *std::max_element(levels.begin(), levels.end());
  for (Lit po : aig.pos()) s.num_const_pos += lit_var(po) == 0;
  const auto fanouts = compute_fanouts(aig);
  std::size_t fanout_sum = 0, with_fanout = 0;
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    if (fanouts[v] == 0) ++s.num_dangling;
    else {
      fanout_sum += fanouts[v];
      ++with_fanout;
    }
  }
  s.avg_fanout = with_fanout
                     ? static_cast<double>(fanout_sum) /
                           static_cast<double>(with_fanout)
                     : 0.0;
  return s;
}

std::string stats_line(const Aig& aig) {
  const AigStats s = compute_stats(aig);
  std::ostringstream os;
  os << "pi=" << s.num_pis << " po=" << s.num_pos << " and=" << s.num_ands
     << " lev=" << s.max_level;
  if (s.num_dangling) os << " dangling=" << s.num_dangling;
  return os.str();
}

void write_dot(const Aig& aig, std::ostream& out) {
  out << "digraph aig {\n  rankdir=BT;\n";
  out << "  n0 [label=\"0\", shape=box, style=dotted];\n";
  for (unsigned i = 0; i < aig.num_pis(); ++i)
    out << "  n" << (i + 1) << " [label=\"x" << i << "\", shape=box];\n";
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\", shape=circle];\n";
    for (const Lit f : {aig.fanin0(v), aig.fanin1(v)})
      out << "  n" << lit_var(f) << " -> n" << v
          << (lit_compl(f) ? " [style=dashed];\n" : ";\n");
  }
  for (std::size_t i = 0; i < aig.num_pos(); ++i) {
    out << "  po" << i << " [label=\"y" << i
        << "\", shape=doublecircle];\n";
    const Lit po = aig.po(i);
    out << "  n" << lit_var(po) << " -> po" << i
        << (lit_compl(po) ? " [style=dashed];\n" : ";\n");
  }
  out << "}\n";
}

}  // namespace simsweep::aig
