#include "aig/aig_analysis.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace simsweep::aig {

std::vector<std::uint32_t> compute_levels(const Aig& aig) {
  std::vector<std::uint32_t> level(aig.num_nodes(), 0);
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
    level[v] = 1 + std::max(level[lit_var(aig.fanin0(v))],
                            level[lit_var(aig.fanin1(v))]);
  return level;
}

LevelSchedule build_level_schedule(const Aig& aig) {
  LevelSchedule s;
  s.levels = compute_levels(aig);
  s.num_nodes = aig.num_nodes();
  s.num_pis = aig.num_pis();
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
    s.max_level = std::max(s.max_level, s.levels[v]);
  s.offset.assign(s.max_level + 2, 0);
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
    ++s.offset[s.levels[v] + 1];
  for (std::size_t l = 1; l < s.offset.size(); ++l)
    s.offset[l] += s.offset[l - 1];
  s.order.resize(aig.num_ands());
  std::vector<std::size_t> cursor(s.offset.begin(), s.offset.end() - 1);
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
    s.order[cursor[s.levels[v]]++] = v;
  return s;
}

std::vector<std::uint32_t> compute_fanouts(const Aig& aig) {
  std::vector<std::uint32_t> fanout(aig.num_nodes(), 0);
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    ++fanout[lit_var(aig.fanin0(v))];
    ++fanout[lit_var(aig.fanin1(v))];
  }
  for (Lit po : aig.pos()) ++fanout[lit_var(po)];
  return fanout;
}

std::vector<Var> sorted_union(const std::vector<Var>& a,
                              const std::vector<Var>& b) {
  std::vector<Var> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

SupportInfo compute_supports(const Aig& aig, unsigned cap) {
  SupportInfo info;
  info.sets.resize(aig.num_nodes());
  info.overflow.assign(aig.num_nodes(), 0);
  for (Var v = 1; v <= aig.num_pis(); ++v) info.sets[v] = {v};
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    const Var a = lit_var(aig.fanin0(v));
    const Var b = lit_var(aig.fanin1(v));
    if (info.overflow[a] || info.overflow[b]) {
      info.overflow[v] = 1;
      continue;
    }
    auto u = sorted_union(info.sets[a], info.sets[b]);
    if (u.size() > cap) {
      info.overflow[v] = 1;
    } else {
      info.sets[v] = std::move(u);
    }
  }
  return info;
}

std::vector<Var> tfi_cone(const Aig& aig, const std::vector<Var>& roots,
                          const std::vector<Var>& stops) {
  // This runs once per window — potentially hundreds of thousands of
  // times per engine run — so the visited markers are epoch-stamped
  // thread-local scratch rather than a fresh O(num_nodes) allocation.
  thread_local std::vector<std::uint64_t> stamp;
  thread_local std::uint64_t epoch = 0;
  if (stamp.size() < aig.num_nodes()) stamp.assign(aig.num_nodes(), 0);
  epoch += 2;  // epoch = seen, epoch + 1 = stop
  const std::uint64_t seen_mark = epoch, stop_mark = epoch + 1;

  for (Var s : stops) stamp[s] = stop_mark;
  std::vector<Var> stack;
  std::vector<Var> cone;
  for (Var r : roots) {
    if (stamp[r] >= seen_mark) continue;
    stamp[r] = seen_mark;
    stack.push_back(r);
  }
  while (!stack.empty()) {
    const Var v = stack.back();
    stack.pop_back();
    cone.push_back(v);
    if (!aig.is_and(v)) continue;
    for (const Var f : {lit_var(aig.fanin0(v)), lit_var(aig.fanin1(v))}) {
      if (stamp[f] >= seen_mark) continue;
      stamp[f] = seen_mark;
      stack.push_back(f);
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

tt::TruthTable cone_truth_table(const Aig& aig, Lit lit,
                                const std::vector<Var>& inputs) {
  const unsigned k = static_cast<unsigned>(inputs.size());
  if (k > 24) throw std::invalid_argument("cone_truth_table: cone too wide");
  const Var root = lit_var(lit);
  const std::vector<Var> cone = tfi_cone(aig, {root}, inputs);

  // Map variables in the cone (plus inputs) to their tables.
  std::vector<int> slot(aig.num_nodes(), -1);
  std::vector<tt::TruthTable> tts;
  tts.reserve(cone.size() + inputs.size() + 1);
  auto assign = [&](Var v, tt::TruthTable t) {
    slot[v] = static_cast<int>(tts.size());
    tts.push_back(std::move(t));
  };
  assign(0, tt::TruthTable::zeros(k));
  for (unsigned i = 0; i < k; ++i)
    assign(inputs[i], tt::TruthTable::projection(i, k));
  for (Var v : cone) {
    if (slot[v] >= 0) continue;  // an input or the constant
    if (!aig.is_and(v))
      throw std::invalid_argument(
          "cone_truth_table: inputs do not form a cut of the root");
    const Lit f0 = aig.fanin0(v);
    const Lit f1 = aig.fanin1(v);
    assert(slot[lit_var(f0)] >= 0 && slot[lit_var(f1)] >= 0);
    const tt::TruthTable& t0 = tts[slot[lit_var(f0)]];
    const tt::TruthTable& t1 = tts[slot[lit_var(f1)]];
    assign(v, (lit_compl(f0) ? ~t0 : t0) & (lit_compl(f1) ? ~t1 : t1));
  }
  const tt::TruthTable& t = tts[slot[root]];
  return lit_compl(lit) ? ~t : t;
}

tt::TruthTable global_truth_table(const Aig& aig, Lit lit) {
  std::vector<Var> pis(aig.num_pis());
  for (unsigned i = 0; i < aig.num_pis(); ++i) pis[i] = i + 1;
  return cone_truth_table(aig, lit, pis);
}

bool brute_force_equivalent(const Aig& a, const Aig& b) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  if (a.num_pis() > 22)
    throw std::invalid_argument("brute_force_equivalent: too many PIs");
  const std::uint64_t n = std::uint64_t{1} << a.num_pis();
  std::vector<bool> assignment(a.num_pis());
  for (std::uint64_t i = 0; i < n; ++i) {
    for (unsigned j = 0; j < a.num_pis(); ++j) assignment[j] = (i >> j) & 1;
    if (a.evaluate(assignment) != b.evaluate(assignment)) return false;
  }
  return true;
}

}  // namespace simsweep::aig
