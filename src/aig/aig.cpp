#include "aig/aig.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace simsweep::aig {

Var Aig::add_pi() {
  if (num_ands() != 0)
    throw std::logic_error("all PIs must be added before AND nodes");
  nodes_.emplace_back();
  return ++num_pis_;  // PI index i (0-based) has variable id i + 1
}

Lit Aig::add_and(Lit a, Lit b) {
  assert(lit_var(a) < nodes_.size() && lit_var(b) < nodes_.size());
  // Normalize operand order so the strash key is canonical.
  if (a > b) std::swap(a, b);
  // Constant folding and trivial identities.
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  const std::uint64_t key = strash_key(a, b);
  if (auto it = strash_.find(key); it != strash_.end())
    return make_lit(it->second);
  nodes_.push_back(Node{a, b});
  const Var v = static_cast<Var>(nodes_.size() - 1);
  strash_.emplace(key, v);
  return make_lit(v);
}

Lit Aig::add_xor(Lit a, Lit b) {
  // a ^ b = !(a b) & !(!a !b).
  const Lit n0 = add_and(a, b);
  const Lit n1 = add_and(lit_not(a), lit_not(b));
  return add_and(lit_not(n0), lit_not(n1));
}

Lit Aig::add_mux(Lit sel, Lit t, Lit e) {
  const Lit n0 = add_and(sel, t);
  const Lit n1 = add_and(lit_not(sel), e);
  return add_or(n0, n1);
}

Lit Aig::add_maj3(Lit a, Lit b, Lit c) {
  const Lit ab = add_and(a, b);
  const Lit ac = add_and(a, c);
  const Lit bc = add_and(b, c);
  return add_or(add_or(ab, ac), bc);
}

std::vector<bool> Aig::evaluate(const std::vector<bool>& pi_values) const {
  assert(pi_values.size() == num_pis_);
  std::vector<bool> value(nodes_.size());
  value[0] = false;
  for (unsigned i = 0; i < num_pis_; ++i) value[i + 1] = pi_values[i];
  for (Var v = num_pis_ + 1; v < nodes_.size(); ++v) {
    const bool f0 = value[lit_var(fanin0(v))] ^ lit_compl(fanin0(v));
    const bool f1 = value[lit_var(fanin1(v))] ^ lit_compl(fanin1(v));
    value[v] = f0 && f1;
  }
  std::vector<bool> out(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i)
    out[i] = value[lit_var(pos_[i])] ^ lit_compl(pos_[i]);
  return out;
}

bool Aig::evaluate_lit(Lit lit, const std::vector<bool>& pi_values) const {
  assert(pi_values.size() == num_pis_);
  std::vector<bool> value(nodes_.size());
  value[0] = false;
  for (unsigned i = 0; i < num_pis_; ++i) value[i + 1] = pi_values[i];
  for (Var v = num_pis_ + 1; v <= lit_var(lit); ++v) {
    const bool f0 = value[lit_var(fanin0(v))] ^ lit_compl(fanin0(v));
    const bool f1 = value[lit_var(fanin1(v))] ^ lit_compl(fanin1(v));
    value[v] = f0 && f1;
  }
  return value[lit_var(lit)] ^ lit_compl(lit);
}

}  // namespace simsweep::aig
