#include "aig/cex.hpp"

#include <stdexcept>

namespace simsweep::aig {

namespace {

Ternary ternary_not(Ternary t) {
  if (t == Ternary::kX) return Ternary::kX;
  return t == Ternary::k0 ? Ternary::k1 : Ternary::k0;
}

Ternary ternary_and(Ternary a, Ternary b) {
  if (a == Ternary::k0 || b == Ternary::k0) return Ternary::k0;
  if (a == Ternary::kX || b == Ternary::kX) return Ternary::kX;
  return Ternary::k1;
}

}  // namespace

std::vector<Ternary> ternary_simulate(
    const Aig& aig, const std::vector<Ternary>& pi_values) {
  std::vector<Ternary> value(aig.num_nodes(), Ternary::k0);
  for (unsigned i = 0; i < aig.num_pis(); ++i) value[i + 1] = pi_values[i];
  for (Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    const Lit f0 = aig.fanin0(v), f1 = aig.fanin1(v);
    Ternary a = value[lit_var(f0)];
    if (lit_compl(f0)) a = ternary_not(a);
    Ternary b = value[lit_var(f1)];
    if (lit_compl(f1)) b = ternary_not(b);
    value[v] = ternary_and(a, b);
  }
  return value;
}

Ternary ternary_value(const std::vector<Ternary>& values, Lit lit) {
  const Ternary t = values[lit_var(lit)];
  return lit_compl(lit) ? ternary_not(t) : t;
}

int find_failing_po(const Aig& miter, const std::vector<bool>& cex) {
  const auto outs = miter.evaluate(cex);
  for (std::size_t i = 0; i < outs.size(); ++i)
    if (outs[i]) return static_cast<int>(i);
  return -1;
}

MinimizedCex minimize_cex(const Aig& miter, const std::vector<bool>& cex,
                          std::size_t po_index) {
  if (!miter.evaluate(cex)[po_index])
    throw std::invalid_argument("minimize_cex: assignment does not fail");

  MinimizedCex out;
  out.values = cex;
  out.care.assign(miter.num_pis(), true);

  std::vector<Ternary> pis(miter.num_pis());
  for (unsigned i = 0; i < miter.num_pis(); ++i)
    pis[i] = cex[i] ? Ternary::k1 : Ternary::k0;

  // Greedy X-lifting: drop a PI if the failing PO stays definitely 1.
  for (unsigned i = 0; i < miter.num_pis(); ++i) {
    const Ternary saved = pis[i];
    pis[i] = Ternary::kX;
    const auto values = ternary_simulate(miter, pis);
    if (ternary_value(values, miter.po(po_index)) == Ternary::k1) {
      out.care[i] = false;
    } else {
      pis[i] = saved;
    }
  }
  for (bool c : out.care) out.num_care += c;
  return out;
}

}  // namespace simsweep::aig
