#pragma once
/// \file aig_io.hpp
/// \brief AIGER 1.9 reader/writer (combinational subset).
///
/// Supports both the ASCII ("aag") and binary ("aig") formats for
/// combinational circuits (no latches). SimSweep's variable numbering is
/// identical to AIGER's (var i <-> AIGER literal 2i, PIs are vars
/// 1..num_pis), so conversion is direct. Symbol tables and comments are
/// skipped on read and omitted on write.

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace simsweep::aig {

/// Parses an AIGER file (auto-detects aag/aig by the header magic).
/// Throws std::runtime_error on malformed input or latches.
Aig read_aiger(std::istream& in);
Aig read_aiger_file(const std::string& path);

/// Writes binary AIGER. The AIG must already be topologically ordered
/// (always true for Aig) but may contain dangling nodes.
void write_aiger(const Aig& aig, std::ostream& out);
void write_aiger_file(const Aig& aig, const std::string& path);

/// Writes ASCII AIGER ("aag").
void write_aiger_ascii(const Aig& aig, std::ostream& out);

}  // namespace simsweep::aig
