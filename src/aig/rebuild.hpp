#pragma once
/// \file rebuild.hpp
/// \brief Miter-manager reduction: merging proved node pairs by rebuilding.
///
/// The engine's miter manager (paper §III-A) reduces the miter by merging
/// proved equivalent pairs. SimSweep records proved pairs in a
/// SubstitutionMap (old variable -> replacement literal, with union-find
/// style resolution for chains) and then rebuilds the AIG in one
/// topological pass with structural hashing, dropping logic that becomes
/// dangling. The rebuild is functionally equivalent to in-place merging but
/// keeps the graph canonical (strashed, topologically ordered, no
/// dangling nodes).

#include <vector>

#include "aig/aig.hpp"

namespace simsweep::aig {

/// Records "variable v is equivalent to literal l" facts and resolves
/// substitution chains (v -> l whose variable is itself substituted).
class SubstitutionMap {
 public:
  explicit SubstitutionMap(std::size_t num_vars);

  /// Declares var equivalent to lit. lit's variable must be smaller than
  /// var (the representative convention: min id in the class), which makes
  /// chains acyclic. Returns false (and ignores the fact) otherwise.
  bool merge(Var var, Lit lit);

  /// Resolves a literal through the substitution chain.
  Lit resolve(Lit lit) const;

  /// Whether any merge has been recorded.
  bool empty() const { return num_merged_ == 0; }
  std::size_t num_merged() const { return num_merged_; }

 private:
  // repl_[v] == make_lit(v) when v is not substituted.
  mutable std::vector<Lit> repl_;
  std::size_t num_merged_ = 0;
};

/// Result of a rebuild: the new AIG plus the old-variable -> new-literal
/// map (kLitInvalid for dropped/dangling variables).
struct RebuildResult {
  Aig aig;
  std::vector<Lit> lit_map;
  static constexpr Lit kLitInvalid = 0xFFFFFFFFu;
};

/// Rebuilds `aig` with the substitutions applied: every PO cone is copied
/// into a fresh strashed AIG where each substituted variable is replaced by
/// its resolved literal. Dangling logic is dropped. PIs are preserved even
/// if unused so the PI interface is stable.
RebuildResult rebuild(const Aig& aig, const SubstitutionMap& subst);

/// rebuild() with an empty substitution: removes dangling nodes and
/// re-strashes.
RebuildResult cleanup(const Aig& aig);

}  // namespace simsweep::aig
