#pragma once
/// \file aig_utils.hpp
/// \brief Reporting utilities: human-readable statistics and Graphviz
/// export for AIGs (debugging and documentation aids).

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace simsweep::aig {

/// Aggregate statistics of an AIG.
struct AigStats {
  unsigned num_pis = 0;
  std::size_t num_pos = 0;
  std::size_t num_ands = 0;
  std::uint32_t max_level = 0;
  std::size_t num_const_pos = 0;   ///< POs tied to a constant
  std::size_t num_dangling = 0;    ///< AND nodes with no fanout
  double avg_fanout = 0;           ///< over AND nodes with fanout
};

AigStats compute_stats(const Aig& aig);

/// One-line summary like "pi=8 po=4 and=123 lev=17".
std::string stats_line(const Aig& aig);

/// Writes a Graphviz dot rendering: AND nodes as circles, PIs as boxes,
/// complemented edges dashed, POs as double circles. Intended for small
/// graphs (debugging, documentation figures).
void write_dot(const Aig& aig, std::ostream& out);

}  // namespace simsweep::aig
