#pragma once
/// \file aig_analysis.hpp
/// \brief Structural analyses over AIGs: levels, fanout counts, capped
/// structural supports, TFI cones, and reference truth-table computation.
///
/// These correspond to the definitions of paper §II-A (level, support,
/// logic cone, global function) and back the thresholds of the engine flow
/// (k_P / k_p / k_g are *support size* thresholds, paper §III-D).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::aig {

/// Level of every variable: PIs and the constant are level 0, an AND node
/// is 1 + max(level of fanins). Index by Var.
std::vector<std::uint32_t> compute_levels(const Aig& aig);

/// Cached level schedule of one AIG: the per-variable levels plus the AND
/// nodes counting-sorted by level. Built once per miter and shared by the
/// partial simulator's level sweep, the window builder's stage grouping
/// and the cut pass's scorer (DESIGN.md §2.7), which previously each
/// recomputed it. Keyed to the AIG it was built for: a rebuild changes the
/// node population, so holders must drop the schedule on rebuild;
/// matches() is the staleness guard every consumer checks before use.
struct LevelSchedule {
  std::vector<std::uint32_t> levels;  ///< per Var (PIs/constant at 0)
  /// AND node ids sorted by level: level l occupies
  /// order[offset[l] .. offset[l+1]). Within a level, ascending id.
  std::vector<Var> order;
  /// max_level + 2 entries (level 0 is always empty for AND nodes).
  std::vector<std::size_t> offset;
  std::uint32_t max_level = 0;
  std::size_t num_nodes = 0;  ///< the AIG's node count at build time
  unsigned num_pis = 0;

  /// True iff this schedule was built for an AIG of this shape. A stale
  /// schedule of a different AIG with identical counts is the holder's
  /// bug; the engine resets its cache at every rebuild.
  bool matches(const Aig& aig) const {
    return num_nodes == aig.num_nodes() && num_pis == aig.num_pis() &&
           levels.size() == aig.num_nodes();
  }
};

LevelSchedule build_level_schedule(const Aig& aig);

/// Number of fanouts of every variable, counting PO references.
std::vector<std::uint32_t> compute_fanouts(const Aig& aig);

/// Structural supports with a size cap.
///
/// sets[v] is the sorted list of PI *variable ids* in the support of v —
/// unless the support grew beyond `cap`, in which case overflow[v] is true
/// and sets[v] is empty. Overflow propagates to all TFOs. The cap bounds
/// both memory and time on multi-million-node miters where only supports
/// up to the engine thresholds (<= k_P) matter.
struct SupportInfo {
  std::vector<std::vector<Var>> sets;
  std::vector<std::uint8_t> overflow;

  /// Support size, or cap+1-like sentinel when overflowed.
  bool small(Var v) const { return !overflow[v]; }
};

SupportInfo compute_supports(const Aig& aig, unsigned cap);

/// Sorted union of two sorted variable lists.
std::vector<Var> sorted_union(const std::vector<Var>& a,
                              const std::vector<Var>& b);

/// Collects the TFI cone of `root`: every variable on a path from a PI (or
/// constant) to root, including root, excluding variables in `stops`
/// (cut/window inputs). Returned in increasing id order (= topological).
/// If a PI or the constant node is reached that is not in `stops`, it is
/// included in the result; callers that require closed windows must check
/// validity themselves (see window.cpp).
std::vector<Var> tfi_cone(const Aig& aig, const std::vector<Var>& roots,
                          const std::vector<Var>& stops);

/// Reference (single-threaded, exact) truth table of `lit` in terms of the
/// given ordered input variables. All paths from PIs to lit must pass
/// through `inputs` unless they start at a PI contained in `inputs`.
/// Intended for tests and small cones; cost is O(cone * 2^k / 64).
tt::TruthTable cone_truth_table(const Aig& aig, Lit lit,
                                const std::vector<Var>& inputs);

/// Global function of `lit` in terms of *all* PIs of the AIG (variable i of
/// the table is PI index i). Only usable for small PI counts.
tt::TruthTable global_truth_table(const Aig& aig, Lit lit);

/// Exact equivalence check of two AIGs by exhaustive evaluation over all
/// 2^num_pis assignments. Test oracle only; requires equal PI/PO counts.
bool brute_force_equivalent(const Aig& a, const Aig& b);

}  // namespace simsweep::aig
