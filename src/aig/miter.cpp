#include "aig/miter.hpp"

#include <stdexcept>

namespace simsweep::aig {

Aig make_miter(const Aig& a, const Aig& b) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos())
    throw std::invalid_argument("make_miter: PI/PO interface mismatch");
  Aig m(a.num_pis());

  // Copy a circuit into the miter, returning the PO literals in miter ids.
  auto copy_in = [&m](const Aig& src) {
    std::vector<Lit> lit_of(src.num_nodes());
    lit_of[0] = kLitFalse;
    for (unsigned i = 0; i < src.num_pis(); ++i) lit_of[i + 1] = m.pi_lit(i);
    for (Var v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
      const Lit f0 = src.fanin0(v);
      const Lit f1 = src.fanin1(v);
      lit_of[v] = m.add_and(lit_notcond(lit_of[lit_var(f0)], lit_compl(f0)),
                            lit_notcond(lit_of[lit_var(f1)], lit_compl(f1)));
    }
    std::vector<Lit> pos(src.num_pos());
    for (std::size_t i = 0; i < src.num_pos(); ++i) {
      const Lit po = src.po(i);
      pos[i] = lit_notcond(lit_of[lit_var(po)], lit_compl(po));
    }
    return pos;
  };

  const std::vector<Lit> pos_a = copy_in(a);
  const std::vector<Lit> pos_b = copy_in(b);
  for (std::size_t i = 0; i < pos_a.size(); ++i)
    m.add_po(m.add_xor(pos_a[i], pos_b[i]));
  return m;
}

bool miter_proved(const Aig& miter) {
  for (Lit po : miter.pos())
    if (po != kLitFalse) return false;
  return true;
}

bool miter_disproved(const Aig& miter) {
  for (Lit po : miter.pos())
    if (po == kLitTrue) return true;
  return false;
}

}  // namespace simsweep::aig
