#include "tt/truth_table.hpp"

#include <bit>
#include <cassert>

namespace simsweep::tt {

TruthTable TruthTable::projection(unsigned var, unsigned num_vars) {
  assert(var < num_vars);
  TruthTable t(num_vars);
  for (std::size_t w = 0; w < t.words_.size(); ++w)
    t.words_[w] = projection_word(var, w);
  t.normalize();
  return t;
}

TruthTable TruthTable::ones(unsigned num_vars) {
  TruthTable t(num_vars);
  for (auto& w : t.words_) w = ~Word{0};
  t.normalize();
  return t;
}

TruthTable TruthTable::from_bits(Word bits, unsigned num_vars) {
  assert(num_vars <= 6);
  TruthTable t(num_vars);
  t.words_[0] = bits;
  t.normalize();
  return t;
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t n = 0;
  for (Word w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  return n;
}

bool TruthTable::is_const0() const {
  for (Word w : words_)
    if (w) return false;
  return true;
}

bool TruthTable::is_const1() const {
  const Word mask = word_mask(num_vars_);
  if (words_.size() == 1) return words_[0] == mask;
  for (Word w : words_)
    if (w != ~Word{0}) return false;
  return true;
}

bool TruthTable::is_dont_care(unsigned var) const {
  assert(var < num_vars_);
  if (var < 6) {
    const Word proj = kProjWord[var];
    const unsigned shift = 1u << var;
    for (Word w : words_)
      if (((w & proj) >> shift) != (w & (proj >> shift))) return false;
    return true;
  }
  const std::size_t stride = std::size_t{1} << (var - 6);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (!((w >> (var - 6)) & 1) && words_[w] != words_[w + stride])
      return false;
  return true;
}

TruthTable TruthTable::cofactor0(unsigned var) const {
  assert(var < num_vars_);
  TruthTable t(*this);
  if (var < 6) {
    const unsigned shift = 1u << var;
    const Word lo = ~kProjWord[var];
    for (auto& w : t.words_) {
      const Word v = w & lo;
      w = v | (v << shift);
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < t.words_.size(); ++w)
      if ((w >> (var - 6)) & 1) t.words_[w] = t.words_[w - stride];
  }
  t.normalize();
  return t;
}

TruthTable TruthTable::cofactor1(unsigned var) const {
  assert(var < num_vars_);
  TruthTable t(*this);
  if (var < 6) {
    const unsigned shift = 1u << var;
    const Word hi = kProjWord[var];
    for (auto& w : t.words_) {
      const Word v = w & hi;
      w = v | (v >> shift);
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < t.words_.size(); ++w)
      if (!((w >> (var - 6)) & 1)) t.words_[w] = t.words_[w + stride];
  }
  t.normalize();
  return t;
}

TruthTable TruthTable::extend(unsigned new_num_vars) const {
  assert(new_num_vars >= num_vars_);
  if (new_num_vars == num_vars_) return *this;
  TruthTable t(new_num_vars);
  if (num_vars_ < 6) {
    // Replicate the low 2^num_vars bits across word 0, then across words.
    Word w = words_[0] & word_mask(num_vars_);
    for (unsigned v = num_vars_; v < 6 && v < new_num_vars; ++v)
      w |= w << (std::uint64_t{1} << v);
    for (auto& dst : t.words_) dst = w;
  } else {
    const std::size_t src_words = words_.size();
    for (std::size_t w = 0; w < t.words_.size(); ++w)
      t.words_[w] = words_[w % src_words];
  }
  t.normalize();
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  assert(num_vars_ == o.num_vars_);
  TruthTable t(*this);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] &= o.words_[w];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  assert(num_vars_ == o.num_vars_);
  TruthTable t(*this);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] |= o.words_[w];
  return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  assert(num_vars_ == o.num_vars_);
  TruthTable t(*this);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] ^= o.words_[w];
  return t;
}

TruthTable TruthTable::operator~() const {
  TruthTable t(*this);
  for (auto& w : t.words_) w = ~w;
  t.normalize();
  return t;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL + num_vars_;
  for (Word w : words_) {
    h ^= w + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xFF51AFD7ED558CCDULL;
  }
  return h;
}

std::string TruthTable::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const std::uint64_t nibbles =
      num_vars_ <= 2 ? 1 : (num_bits(num_vars_) >> 2);
  std::string s;
  s.reserve(nibbles);
  for (std::uint64_t i = nibbles; i-- > 0;) {
    const Word w = words_[(i * 4) >> 6];
    s.push_back(digits[(w >> ((i * 4) & 63)) & 0xF]);
  }
  return s;
}

std::string TruthTable::to_binary() const {
  std::string s;
  s.reserve(bits());
  for (std::uint64_t i = bits(); i-- > 0;) s.push_back(get_bit(i) ? '1' : '0');
  return s;
}

}  // namespace simsweep::tt
