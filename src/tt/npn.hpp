#pragma once
/// \file npn.hpp
/// \brief NPN canonization of small truth tables.
///
/// Two functions are NPN-equivalent when one can be obtained from the
/// other by Negating inputs, Permuting inputs, and/or Negating the
/// output. NPN classes are the standard unit of reuse in rewriting
/// databases and function classification (there are 222 classes of
/// 4-variable functions). This module canonizes functions of up to 6
/// variables by exhaustive transform enumeration — 2 output polarities ×
/// 2^k input polarities × k! permutations, at most 92160 transforms for
/// k = 6, each a cheap word-level permutation of a 64-bit table.

#include <array>
#include <cstdint>
#include <vector>

#include "tt/truth_table.hpp"

namespace simsweep::tt {

/// A concrete NPN transform: out = f(x_{perm[0]} ^ flip_0, ...) ^ out_neg.
struct NpnTransform {
  std::array<std::uint8_t, 6> perm{0, 1, 2, 3, 4, 5};
  std::uint8_t input_neg = 0;  ///< bitmask, bit i = negate input i
  bool output_neg = false;
};

/// Result of canonization: the class representative and the transform
/// that maps the *original* function onto it.
struct NpnCanon {
  Word canon = 0;  ///< canonical table packed into the low 2^k bits
  NpnTransform transform;
};

/// Applies a transform to a k-variable function packed in a word.
Word npn_apply(Word func, unsigned k, const NpnTransform& t);

/// Exhaustive NPN canonization (k <= 6): the canonical form is the
/// numerically smallest transformed table.
NpnCanon npn_canonize(Word func, unsigned k);

/// Inverts a transform: npn_apply(npn_apply(f, t), inverse(t)) == f.
NpnTransform npn_inverse(const NpnTransform& t, unsigned k);

/// Number of distinct NPN classes among all 2^2^k functions (k <= 4 is
/// cheap; k = 4 yields the textbook 222). Exposed mainly for tests and
/// analysis tooling.
std::size_t npn_class_count(unsigned k);

}  // namespace simsweep::tt
