#pragma once
/// \file truth_table.hpp
/// \brief Word-packed truth tables and projection-table arithmetic.
///
/// A truth table of a k-input Boolean function is a bit string of length
/// 2^k (paper §II-A): bit i holds the function value under the input
/// assignment whose binary encoding is i. Tables are packed into 64-bit
/// words; for k < 6 only the low 2^k bits of word 0 are meaningful and are
/// kept masked.
///
/// The exhaustive simulator (paper Alg. 1) never materializes whole tables
/// for large supports. Instead it simulates word ranges [rE, (r+1)E) per
/// round, so the *projection* truth tables of the window inputs must be
/// generated one word at a time at arbitrary word indices. projection_word()
/// provides that in O(1).

#include <cstdint>
#include <string>
#include <vector>

namespace simsweep::tt {

using Word = std::uint64_t;

/// Number of 64-bit words in a truth table over num_vars inputs.
constexpr std::size_t num_words(unsigned num_vars) {
  return num_vars <= 6 ? 1u : (std::size_t{1} << (num_vars - 6));
}

/// Number of bits (input assignments) of a table over num_vars inputs.
constexpr std::uint64_t num_bits(unsigned num_vars) {
  return std::uint64_t{1} << num_vars;
}

/// Mask selecting the meaningful bits of word 0 when num_vars < 6.
constexpr Word word_mask(unsigned num_vars) {
  return num_vars >= 6 ? ~Word{0}
                       : ((Word{1} << (std::uint64_t{1} << num_vars)) - 1);
}

/// Canonical per-word patterns of the first six projection functions
/// x0..x5: within any single word, variable v < 6 alternates in blocks of
/// 2^v bits.
constexpr Word kProjWord[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};

/// Word word_index of the projection truth table of variable var.
///
/// For var < 6 every word equals kProjWord[var]; for var >= 6 the word is
/// all-ones iff bit (var - 6) of word_index is set. This is the on-the-fly
/// generation used in Alg. 1 line 9 for simulating round r at word offset
/// rE + i without storing 2^k-bit tables.
inline Word projection_word(unsigned var, std::uint64_t word_index) {
  if (var < 6) return kProjWord[var];
  return (word_index >> (var - 6)) & 1 ? ~Word{0} : Word{0};
}

/// A dynamically sized truth table over an explicit number of variables.
///
/// Invariant: words().size() == num_words(num_vars()), and unused high bits
/// of word 0 are zero when num_vars() < 6.
class TruthTable {
 public:
  /// Constant-zero table over num_vars inputs.
  explicit TruthTable(unsigned num_vars = 0)
      : num_vars_(num_vars), words_(num_words(num_vars), 0) {}

  /// Projection function x_var over num_vars inputs.
  static TruthTable projection(unsigned var, unsigned num_vars);

  /// Constant-one / constant-zero tables.
  static TruthTable ones(unsigned num_vars);
  static TruthTable zeros(unsigned num_vars) { return TruthTable(num_vars); }

  /// Table built from the low 2^num_vars bits of the given value
  /// (num_vars <= 6).
  static TruthTable from_bits(Word bits, unsigned num_vars);

  /// Uniformly random table (each bit i.i.d.), for tests.
  template <typename Rng>
  static TruthTable random(unsigned num_vars, Rng& rng) {
    TruthTable t(num_vars);
    for (auto& w : t.words_) w = rng.next64();
    t.normalize();
    return t;
  }

  unsigned num_vars() const { return num_vars_; }
  std::uint64_t bits() const { return num_bits(num_vars_); }
  const std::vector<Word>& words() const { return words_; }
  std::vector<Word>& words() { return words_; }

  bool get_bit(std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set_bit(std::uint64_t i, bool v) {
    const Word m = Word{1} << (i & 63);
    if (v) words_[i >> 6] |= m; else words_[i >> 6] &= ~m;
  }

  /// Number of satisfying assignments.
  std::uint64_t count_ones() const;

  bool is_const0() const;
  bool is_const1() const;

  /// True if the function does not depend on variable var.
  bool is_dont_care(unsigned var) const;

  /// Cofactors with respect to variable var (same num_vars).
  TruthTable cofactor0(unsigned var) const;
  TruthTable cofactor1(unsigned var) const;

  /// Extends this table to more variables (the new variables are don't
  /// cares). new_num_vars must be >= num_vars().
  TruthTable extend(unsigned new_num_vars) const;

  /// Bitwise operators. Operands must have equal num_vars.
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  TruthTable operator~() const;

  bool operator==(const TruthTable& o) const {
    return num_vars_ == o.num_vars_ && words_ == o.words_;
  }
  bool operator!=(const TruthTable& o) const { return !(*this == o); }

  /// 64-bit hash of the contents (used for signature bucketing in tests).
  std::uint64_t hash() const;

  /// Hex string, most significant word first (ABC convention).
  std::string to_hex() const;

  /// Binary string b_{l-1} ... b_0 as in paper §II-A.
  std::string to_binary() const;

 private:
  /// Mask off bits above 2^num_vars when num_vars < 6.
  void normalize() { words_[0] &= word_mask(num_vars_); }

  unsigned num_vars_;
  std::vector<Word> words_;
};

}  // namespace simsweep::tt
