#include "tt/npn.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace simsweep::tt {

Word npn_apply(Word func, unsigned k, const NpnTransform& t) {
  assert(k <= 6);
  const std::uint64_t bits = num_bits(k);
  Word out = 0;
  for (std::uint64_t i = 0; i < bits; ++i) {
    // Build the source index: output bit i of the transformed function is
    // f evaluated at x_{perm[j]} = bit_j(i) ^ neg_j.
    std::uint64_t src = 0;
    for (unsigned j = 0; j < k; ++j) {
      const bool bit = ((i >> j) & 1) ^ ((t.input_neg >> j) & 1);
      if (bit) src |= std::uint64_t{1} << t.perm[j];
    }
    if ((func >> src) & 1) out |= std::uint64_t{1} << i;
  }
  if (t.output_neg) out = ~out & word_mask(k);
  return out & word_mask(k);
}

NpnCanon npn_canonize(Word func, unsigned k) {
  assert(k <= 6);
  k = std::min(k, 6u);  // make the bound provable for the optimizer
  func &= word_mask(k);
  NpnCanon best;
  best.canon = ~Word{0};

  // next_permutation needs a sorted start; {0..5} already is, and only the
  // first k entries participate.
  std::array<std::uint8_t, 6> head{0, 1, 2, 3, 4, 5};
  do {
    NpnTransform t;
    std::copy_n(head.begin(), k, t.perm.begin());
    for (unsigned neg = 0; neg < (1u << k); ++neg) {
      t.input_neg = static_cast<std::uint8_t>(neg);
      for (bool oneg : {false, true}) {
        t.output_neg = oneg;
        const Word candidate = npn_apply(func, k, t);
        if (candidate < best.canon) {
          best.canon = candidate;
          best.transform = t;
        }
      }
    }
  } while (std::next_permutation(head.begin(), head.begin() + k));
  return best;
}

NpnTransform npn_inverse(const NpnTransform& t, unsigned k) {
  NpnTransform inv;
  // Forward: position j reads source variable perm[j] negated by neg_j.
  // Inverse: position perm[j] reads variable j negated by neg_j.
  for (unsigned j = 0; j < k; ++j) {
    inv.perm[t.perm[j]] = static_cast<std::uint8_t>(j);
    if ((t.input_neg >> j) & 1)
      inv.input_neg |= static_cast<std::uint8_t>(1u << t.perm[j]);
  }
  inv.output_neg = t.output_neg;
  return inv;
}

std::size_t npn_class_count(unsigned k) {
  assert(k <= 4);
  std::unordered_set<Word> canons;
  const std::uint64_t functions = std::uint64_t{1} << num_bits(k);
  for (std::uint64_t f = 0; f < functions; ++f)
    canons.insert(npn_canonize(f, k).canon);
  return canons.size();
}

}  // namespace simsweep::tt
