#pragma once
/// \file partial_sim.hpp
/// \brief Word-parallel partial simulation (paper §II-B, §III-A).
///
/// Partial simulation evaluates every node of the AIG under a batch of
/// input patterns packed 64-per-word. The resulting per-node bit vectors
/// ("signatures") initialize and refine the equivalence classes. Patterns
/// come from two sources: random initialization and counter-examples
/// collected by the exhaustive simulator. Both are held in a PatternBank
/// keyed by PI index, so a bank survives miter rebuilds (PIs are stable
/// across reductions while internal ids are not).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "common/random.hpp"

namespace simsweep::sim {

using Word = std::uint64_t;

/// Input patterns for all PIs, packed 64 assignments per word.
/// words[pi_index * num_words + w] holds assignments 64w .. 64w+63 of that
/// PI (pi_index is 0-based).
class PatternBank {
 public:
  PatternBank(unsigned num_pis, std::size_t num_words)
      : num_pis_(num_pis), num_words_(num_words),
        words_(static_cast<std::size_t>(num_pis) * num_words, 0) {}

  /// Bank of uniformly random patterns.
  static PatternBank random(unsigned num_pis, std::size_t num_words,
                            std::uint64_t seed);

  unsigned num_pis() const { return num_pis_; }
  std::size_t num_words() const { return num_words_; }
  std::size_t num_patterns() const { return num_words_ * 64; }

  Word word(unsigned pi, std::size_t w) const {
    return words_[static_cast<std::size_t>(pi) * num_words_ + w];
  }
  Word& word(unsigned pi, std::size_t w) {
    return words_[static_cast<std::size_t>(pi) * num_words_ + w];
  }

  /// Appends one extra word per PI, filled with the given per-PI values
  /// replicated (used to splice CEX patterns; see CexCollector).
  void append_words(const std::vector<Word>& per_pi_words);

  /// Drops the oldest words until at most max_words remain (bounds the
  /// resimulation cost as CEXs accumulate). Returns the number of words
  /// dropped per PI (0 when the bank already fits).
  std::size_t truncate_front(std::size_t max_words);

 private:
  unsigned num_pis_;
  std::size_t num_words_;
  std::vector<Word> words_;  // PI-major
};

/// Accumulates counter-example input assignments (sparse: only support PIs
/// are assigned; the rest default to 0) and packs them 64-per-word for
/// appending to a PatternBank.
class CexCollector {
 public:
  explicit CexCollector(unsigned num_pis) : num_pis_(num_pis) {}

  /// Adds one CEX given as (pi_index, value) pairs.
  void add(const std::vector<std::pair<unsigned, bool>>& assignment);

  std::size_t num_cexes() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Flushes complete+partial words into the bank and clears the collector.
  void flush_into(PatternBank& bank);

 private:
  unsigned num_pis_;
  std::size_t count_ = 0;
  // One word per PI per pending group of <=64 CEXs; group-major.
  std::vector<std::vector<Word>> groups_;
};

/// Per-node signatures: node-major storage of num_words 64-bit words.
struct Signatures {
  std::size_t num_words = 0;
  std::vector<Word> words;  // words[var * num_words + w]

  Word word(aig::Var v, std::size_t w) const {
    return words[static_cast<std::size_t>(v) * num_words + w];
  }
  const Word* row(aig::Var v) const { return &words[v * num_words]; }
};

/// Simulates the whole AIG under the bank's patterns, level-parallel on the
/// global thread pool. Complemented fanins are handled by bitwise NOT.
Signatures simulate(const aig::Aig& aig, const PatternBank& bank);

}  // namespace simsweep::sim
