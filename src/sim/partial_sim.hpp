#pragma once
/// \file partial_sim.hpp
/// \brief Word-parallel partial simulation (paper §II-B, §III-A).
///
/// Partial simulation evaluates every node of the AIG under a batch of
/// input patterns packed 64-per-word. The resulting per-node bit vectors
/// ("signatures") initialize and refine the equivalence classes. Patterns
/// come from two sources: random initialization and counter-examples
/// collected by the exhaustive simulator. Both are held in a PatternBank
/// keyed by PI index, so a bank survives miter rebuilds (PIs are stable
/// across reductions while internal ids are not).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_analysis.hpp"
#include "common/random.hpp"

namespace simsweep::sim {

using Word = std::uint64_t;

/// Input patterns for all PIs, packed 64 assignments per word.
///
/// Storage is word-major — words[w * num_pis + pi] holds assignments
/// 64w .. 64w+63 of PI `pi` (0-based) — so appending one word-column for
/// all PIs is an amortized vector append instead of a full-bank copy
/// (CexCollector::flush_into appends a column per CEX group; the old
/// PI-major layout made that O(pis × words) per column, quadratic as
/// CEXs accumulate).
///
/// The bank behaves as a sliding window over an append-only pattern
/// stream: columns are appended at the back and dropped from the front
/// only. start_index() is the stream index of the current first column;
/// incremental consumers (sim::IncrementalState) use it to know which of
/// their cached columns survived a truncation.
class PatternBank {
 public:
  PatternBank(unsigned num_pis, std::size_t num_words)
      : num_pis_(num_pis), num_words_(num_words),
        words_(static_cast<std::size_t>(num_pis) * num_words, 0) {}

  /// Bank of uniformly random patterns.
  static PatternBank random(unsigned num_pis, std::size_t num_words,
                            std::uint64_t seed);

  unsigned num_pis() const { return num_pis_; }
  std::size_t num_words() const { return num_words_; }
  std::size_t num_patterns() const { return num_words_ * 64; }

  /// Stream index of column 0: the total number of words ever dropped by
  /// truncate_front(). Monotonic over the bank's lifetime.
  std::uint64_t start_index() const { return start_index_; }

  Word word(unsigned pi, std::size_t w) const {
    return words_[w * num_pis_ + pi];
  }
  Word& word(unsigned pi, std::size_t w) {
    return words_[w * num_pis_ + pi];
  }

  /// Appends one extra word per PI, filled with the given per-PI values
  /// (used to splice CEX patterns; see CexCollector). Amortized O(pis).
  void append_words(const std::vector<Word>& per_pi_words);

  /// Batch form: appends one column per group with a single capacity
  /// reservation. Each group must hold num_pis() words.
  void append_groups(const std::vector<std::vector<Word>>& groups);

  /// Drops the oldest words until at most max_words remain (bounds the
  /// resimulation cost as CEXs accumulate). Returns the number of words
  /// dropped per PI (0 when the bank already fits).
  std::size_t truncate_front(std::size_t max_words);

  /// Times the append paths grew the underlying capacity — regression
  /// guard for the amortized-growth contract (a bank appended to N times
  /// reallocates O(log N) times, not N).
  std::uint64_t reallocations() const { return reallocations_; }

 private:
  void reserve_columns(std::size_t extra_words);

  unsigned num_pis_;
  std::size_t num_words_;
  std::uint64_t start_index_ = 0;
  std::uint64_t reallocations_ = 0;
  std::vector<Word> words_;  // word-major: words_[w * num_pis_ + pi]
};

/// Accumulates counter-example input assignments (sparse: only support PIs
/// are assigned; the rest default to 0) and packs them 64-per-word for
/// appending to a PatternBank.
class CexCollector {
 public:
  explicit CexCollector(unsigned num_pis) : num_pis_(num_pis) {}

  /// Adds one CEX given as (pi_index, value) pairs.
  void add(const std::vector<std::pair<unsigned, bool>>& assignment);

  std::size_t num_cexes() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Flushes complete+partial words into the bank and clears the collector.
  void flush_into(PatternBank& bank);

 private:
  unsigned num_pis_;
  std::size_t count_ = 0;
  // One word per PI per pending group of <=64 CEXs; group-major.
  std::vector<std::vector<Word>> groups_;
};

/// Per-node signatures: node-major storage of num_words 64-bit words.
struct Signatures {
  std::size_t num_words = 0;
  std::vector<Word> words;  // words[var * num_words + w]

  Word word(aig::Var v, std::size_t w) const {
    return words[static_cast<std::size_t>(v) * num_words + w];
  }
  const Word* row(aig::Var v) const {
    return words.data() + static_cast<std::size_t>(v) * num_words;
  }
};

/// Simulates the whole AIG under the bank's patterns, level-parallel on
/// the global thread pool. Complemented fanins are handled by bitwise NOT.
/// When `schedule` is non-null and matches the AIG it is used instead of
/// recomputing the level order (DESIGN.md §2.7).
Signatures simulate(const aig::Aig& aig, const PatternBank& bank,
                    const aig::LevelSchedule* schedule = nullptr);

/// Delta simulation: `sig` must be a simulate() result for this AIG over
/// the bank's first `from_word` columns (sig.num_words == from_word).
/// Re-lays the rows out to the bank's current width and simulates ONLY
/// the appended columns [from_word, bank.num_words()), so the result is
/// bit-identical to a full simulate(aig, bank) at a fraction of the cost
/// (the word kernels operate on arbitrary word ranges).
void extend_signatures(const aig::Aig& aig, const PatternBank& bank,
                       std::size_t from_word, Signatures& sig,
                       const aig::LevelSchedule* schedule = nullptr);

}  // namespace simsweep::sim
