#pragma once
/// \file quality_patterns.hpp
/// \brief Simulation-guided pattern generation (after the ideas of
/// Lee et al. TCAD'22 and Amarù et al. DAC'20, cited by the paper as
/// refs [3] and [20]).
///
/// Uniformly random patterns leave many spuriously-equal signature pairs
/// that formal checking must then disprove. Quality patterns are chosen
/// *against* the current equivalence classes: candidate pattern words are
/// generated randomly, simulated, and kept only when they split at least
/// one class. The result is a pattern bank with measurably fewer false
/// candidate pairs for the same simulation budget.

#include <cstdint>

#include "aig/aig.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::sim {

struct QualityParams {
  std::size_t base_words = 2;        ///< unconditional random words
  std::size_t candidate_rounds = 8;  ///< candidate words proposed
  std::size_t max_words = 8;         ///< bank size cap
  std::uint64_t seed = 0x9A77E24ULL;
};

struct QualityStats {
  std::size_t candidates_tried = 0;
  std::size_t candidates_kept = 0;
  std::size_t classes_before = 0;  ///< after the base random words
  std::size_t classes_after = 0;   ///< more classes = fewer false pairs
};

/// Builds a pattern bank whose extra words each demonstrably refine the
/// equivalence classes of `aig`.
PatternBank quality_patterns(const aig::Aig& aig,
                             const QualityParams& params = {},
                             QualityStats* stats = nullptr);

/// Number of distinct canonical signatures (equivalence-class count,
/// counting singletons) under the bank's patterns. Exposed for tests and
/// the pattern-quality bench.
std::size_t count_signature_classes(const aig::Aig& aig,
                                    const PatternBank& bank);

}  // namespace simsweep::sim
