#include "sim/incremental.hpp"

#include <algorithm>
#include <cassert>

#include "aig/rebuild.hpp"
#include "fault/fault.hpp"

namespace simsweep::sim {

std::optional<Signatures> translate_signatures(
    const Signatures& old_sigs, const std::vector<aig::Lit>& lit_map,
    std::size_t new_num_nodes) {
  const std::size_t W = old_sigs.num_words;
  Signatures out;
  out.num_words = W;
  out.words.assign(new_num_nodes * W, 0);
  std::vector<std::uint8_t> covered(new_num_nodes, 0);
  const Word* const src = old_sigs.words.data();
  Word* const dst = out.words.data();
  for (std::size_t v = 0; v < lit_map.size(); ++v) {
    const aig::Lit nl = lit_map[v];
    if (nl == aig::RebuildResult::kLitInvalid) continue;
    const std::size_t nv = aig::lit_var(nl);
    if (nv >= new_num_nodes) return std::nullopt;  // malformed map
    const Word mask = aig::lit_compl(nl) ? ~Word{0} : 0;
    const Word* const row = src + v * W;
    Word* const nrow = dst + nv * W;
    if (!covered[nv]) {
      for (std::size_t w = 0; w < W; ++w) nrow[w] = row[w] ^ mask;
      covered[nv] = 1;
    } else {
      // Second preimage (strash merge): the rebuild asserts both old
      // nodes compute the same function modulo the mapped complements,
      // so their translated rows must already agree. A mismatch means
      // the cached signatures are stale — reject the translation.
      for (std::size_t w = 0; w < W; ++w)
        if (nrow[w] != (row[w] ^ mask)) return std::nullopt;
    }
  }
  // rebuild() copies only old-cone nodes into the new AIG, so every new
  // var has >= 1 preimage; an uncovered var means the map is not a
  // genuine rebuild map for this state.
  for (std::size_t nv = 0; nv < new_num_nodes; ++nv)
    if (!covered[nv]) return std::nullopt;
  return out;
}

void drop_front_words(Signatures& sigs, std::size_t n) {
  if (n == 0) return;
  assert(n <= sigs.num_words);
  const std::size_t W = sigs.num_words;
  const std::size_t K = W - n;
  const std::size_t rows = W == 0 ? 0 : sigs.words.size() / W;
  Word* const data = sigs.words.data();
  // Forward in-place compaction is safe: row r's destination r*K + K <=
  // its own source start r*W + n for all r (K <= W and n >= 0), so a
  // destination range never overruns a yet-unread source range.
  for (std::size_t r = 0; r < rows; ++r)
    std::copy(data + r * W + n, data + (r + 1) * W, data + r * K);
  sigs.words.resize(rows * K);
  sigs.num_words = K;
}

EcManager& IncrementalState::sync(const aig::Aig& aig,
                                  const PatternBank& bank,
                                  const aig::LevelSchedule* schedule) {
  const std::uint64_t lo = bank.start_index();
  if (enabled_ && valid_ && num_nodes_ == aig.num_nodes() &&
      lo >= covered_start_) {
    const std::uint64_t drop = lo - covered_start_;
    if (drop <= sigs_.num_words) {
      const std::size_t keep = sigs_.num_words - drop;
      if (keep <= bank.num_words()) {
        // Delta path: cached columns [drop, num_words) are exactly the
        // bank's columns [0, keep); simulate only the appended tail.
        if (drop > 0) drop_front_words(sigs_, drop);
        covered_start_ = lo;
        const std::size_t delta = bank.num_words() - keep;
        if (delta > 0) {
          extend_signatures(aig, bank, keep, sigs_, schedule);
          ec_.refine(sigs_);
          stats_.incremental_words += delta;
        }
        return ec_;
      }
    }
  }
  // Full path: first sync, disabled state, or an unbridgeable gap
  // (rebuild fallback, bank rewound/replaced).
  sigs_ = simulate(aig, bank, schedule);
  ec_.build(aig, sigs_);
  num_nodes_ = aig.num_nodes();
  covered_start_ = lo;
  valid_ = enabled_;
  ++stats_.full_resims;
  return ec_;
}

bool IncrementalState::apply_rebuild(const aig::Aig& new_aig,
                                     const std::vector<aig::Lit>& lit_map) {
  if (!enabled_ || !valid_) {
    valid_ = false;
    return false;
  }
  bool ok = lit_map.size() == num_nodes_ &&
            !SIMSWEEP_FAULT_POINT(fault::sites::kSimCarryover);
  std::optional<Signatures> translated;
  if (ok) {
    translated = translate_signatures(sigs_, lit_map, new_aig.num_nodes());
    ok = translated.has_value();
  }
  if (ok)
    ok = ec_.translate(lit_map, new_aig.num_nodes(), &stats_.carry_dropped);
  if (!ok) {
    valid_ = false;
    ++stats_.carry_fallbacks;
    return false;
  }
  sigs_ = std::move(*translated);
  num_nodes_ = new_aig.num_nodes();
  stats_.carry_classes += ec_.num_classes();
  return true;
}

}  // namespace simsweep::sim
