#pragma once
/// \file ec_manager.hpp
/// \brief Equivalence-class management and candidate-pair generation
/// (paper §II-B, §III-A).
///
/// Nodes with equal partial-simulation signatures are clustered into an
/// equivalence class (EC); candidate pairs are (representative,
/// non-representative) with the representative being the minimum-id member.
/// Signatures are canonicalized by their first pattern bit so a class also
/// captures complemented equivalences (n == !m); each member carries a
/// phase bit relative to the class canon.
///
/// The constant node (var 0) participates, so "node == constant" facts —
/// including miter POs being constant 0 — are ordinary candidate pairs.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::sim {

/// A candidate pair: prove node == repr (phase=0) or node == !repr
/// (phase=1). repr < node always holds.
struct CandidatePair {
  aig::Var repr = 0;
  aig::Var node = 0;
  bool phase = false;
};

/// Lifetime telemetry of one EcManager (published by the engine phases
/// under `ec.*`). Plain counters: the manager is single-threaded.
struct EcStats {
  std::uint64_t builds = 0;         ///< build() calls
  std::uint64_t refines = 0;        ///< refine() calls
  std::uint64_t classes_built = 0;  ///< Σ classes after each build()
  /// Classes a refine() split into ≥2 surviving sub-classes.
  std::uint64_t class_splits = 0;
  /// Classes a refine() dissolved entirely (no surviving sub-class).
  std::uint64_t classes_dissolved = 0;
};

class EcManager {
 public:
  /// Builds classes from scratch: nodes with equal canonicalized
  /// signatures share a class. Singleton classes are discarded.
  void build(const aig::Aig& aig, const Signatures& sigs);

  /// Splits existing classes using additional signature words (CEX
  /// refinement). `sigs` must cover the same AIG the classes were built
  /// on. Classes that become singletons are discarded.
  void refine(const Signatures& sigs);

  /// All current candidate pairs: for every class of N members, the N-1
  /// pairs (representative, other).
  std::vector<CandidatePair> candidate_pairs() const;

  /// Marks a pair as proved; it will not be produced again. (Used between
  /// checking batches within one phase. After a miter rebuild the manager
  /// must be rebuilt anyway because variable ids change.)
  void mark_proved(aig::Var node);

  /// Drops `node` from its class (e.g. disproved against the
  /// representative by an exhaustive check; normally CEX refinement does
  /// this implicitly, but pairs disproved without a recorded CEX —
  /// multi-round mismatches — need the explicit form).
  void remove_node(aig::Var node);

  /// Translates all classes through a rebuild's literal map (old var ->
  /// new literal, RebuildResult::kLitInvalid for vars outside the cone), so
  /// refinement state survives a miter reduction instead of restarting
  /// from a fresh random build (DESIGN.md §2.7). Member phases compose
  /// with the mapped literal's complement bit; invalid members and their
  /// removed_ marks are dropped (counted into *dropped, which may be
  /// null); classes shrinking below 2 members dissolve. Two old members
  /// mapping to the same new var (strash merge during rebuild) must agree
  /// on phase — a conflict means the caller's signatures and classes
  /// disagree with the rebuild, and translate() returns false leaving the
  /// manager UNCHANGED so the caller can fall back to a fresh build.
  bool translate(const std::vector<aig::Lit>& lit_map,
                 std::size_t new_num_nodes, std::uint64_t* dropped);

  std::size_t num_classes() const { return classes_.size(); }
  const std::vector<std::vector<aig::Var>>& classes() const {
    return classes_;
  }
  /// Phase of a node relative to its class canon (meaningful only for
  /// nodes currently in some class).
  bool phase(aig::Var v) const { return phase_[v]; }

  /// Lifetime build/refine telemetry (survives build() resets).
  const EcStats& stats() const { return stats_; }

 private:
  std::vector<std::vector<aig::Var>> classes_;  // each sorted ascending
  std::vector<std::uint8_t> phase_;
  std::vector<std::uint8_t> removed_;
  EcStats stats_;
};

}  // namespace simsweep::sim
