#include "sim/partial_sim.hpp"

#include <algorithm>
#include <cassert>

#include "aig/aig_analysis.hpp"
#include "common/word_kernels.hpp"
#include "parallel/thread_pool.hpp"

namespace simsweep::sim {

PatternBank PatternBank::random(unsigned num_pis, std::size_t num_words,
                                std::uint64_t seed) {
  PatternBank bank(num_pis, num_words);
  Rng rng(seed);
  for (auto& w : bank.words_) w = rng.next64();
  return bank;
}

void PatternBank::append_words(const std::vector<Word>& per_pi_words) {
  assert(per_pi_words.size() == num_pis_);
  std::vector<Word> next(static_cast<std::size_t>(num_pis_) *
                         (num_words_ + 1));
  // words_.data() (not &words_[i]): the bank may hold zero words, and
  // operator[] on an empty vector is UB even for a zero-length copy.
  for (unsigned pi = 0; pi < num_pis_; ++pi) {
    std::copy_n(words_.data() + static_cast<std::size_t>(pi) * num_words_,
                num_words_, next.data() + static_cast<std::size_t>(pi) *
                                              (num_words_ + 1));
    next[static_cast<std::size_t>(pi) * (num_words_ + 1) + num_words_] =
        per_pi_words[pi];
  }
  words_ = std::move(next);
  ++num_words_;
}

std::size_t PatternBank::truncate_front(std::size_t max_words) {
  if (num_words_ <= max_words) return 0;
  const std::size_t drop = num_words_ - max_words;
  std::vector<Word> next(static_cast<std::size_t>(num_pis_) * max_words);
  for (unsigned pi = 0; pi < num_pis_; ++pi)
    std::copy_n(
        words_.data() + static_cast<std::size_t>(pi) * num_words_ + drop,
        max_words, next.data() + static_cast<std::size_t>(pi) * max_words);
  words_ = std::move(next);
  num_words_ = max_words;
  return drop;
}

void CexCollector::add(
    const std::vector<std::pair<unsigned, bool>>& assignment) {
  const std::size_t slot = count_ % 64;
  if (slot == 0) groups_.emplace_back(num_pis_, 0);
  auto& group = groups_.back();
  for (const auto& [pi, value] : assignment) {
    assert(pi < num_pis_);
    if (value) group[pi] |= Word{1} << slot;
  }
  ++count_;
}

void CexCollector::flush_into(PatternBank& bank) {
  for (auto& group : groups_) bank.append_words(group);
  groups_.clear();
  count_ = 0;
}

Signatures simulate(const aig::Aig& aig, const PatternBank& bank) {
  assert(bank.num_pis() == aig.num_pis());
  const std::size_t W = bank.num_words();
  Signatures sig;
  sig.num_words = W;
  sig.words.assign(aig.num_nodes() * W, 0);

  // PIs copy their bank rows.
  parallel::parallel_for_chunks(0, aig.num_pis(), [&](std::size_t lo,
                                                      std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t w = 0; w < W; ++w)
        sig.words[(i + 1) * W + w] = bank.word(static_cast<unsigned>(i), w);
  });

  // Level-parallel sweep over AND nodes: batch nodes by level and process
  // each batch with a parallel_for (paper's second parallelism dimension).
  // Concurrency contract: within a level batch each worker writes only
  // its own nodes' signature rows (disjoint W-word ranges of sig.words)
  // and reads rows of strictly lower levels, which the preceding
  // parallel_for's completion ordered before this one started.
  const auto levels = aig::compute_levels(aig);
  const std::uint32_t max_level =
      *std::max_element(levels.begin(), levels.end());
  // Bucket node ids by level (counting sort).
  std::vector<std::size_t> offset(max_level + 2, 0);
  for (aig::Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
    ++offset[levels[v] + 1];
  for (std::size_t l = 1; l < offset.size(); ++l) offset[l] += offset[l - 1];
  std::vector<aig::Var> order(aig.num_ands());
  {
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    for (aig::Var v = aig.num_pis() + 1; v < aig.num_nodes(); ++v)
      order[cursor[levels[v]]++] = v;
  }

  for (std::uint32_t l = 1; l <= max_level; ++l) {
    const std::size_t lo = offset[l], hi = offset[l + 1];
    parallel::parallel_for_chunks(lo, hi, [&](std::size_t clo,
                                              std::size_t chi) {
      Word* const words = sig.words.data();
      const aig::Var* const ord = order.data();
      for (std::size_t k = clo; k < chi; ++k) {
        const aig::Var v = ord[k];
        const aig::Lit f0 = aig.fanin0(v);
        const aig::Lit f1 = aig.fanin1(v);
        kernels::and2_words(
            words + static_cast<std::size_t>(v) * W,
            words + static_cast<std::size_t>(aig::lit_var(f0)) * W,
            aig::lit_compl(f0) ? ~Word{0} : 0,
            words + static_cast<std::size_t>(aig::lit_var(f1)) * W,
            aig::lit_compl(f1) ? ~Word{0} : 0, W);
      }
    });
  }
  return sig;
}

}  // namespace simsweep::sim
