#include "sim/partial_sim.hpp"

#include <algorithm>
#include <cassert>

#include "common/word_kernels.hpp"
#include "parallel/thread_pool.hpp"

namespace simsweep::sim {

PatternBank PatternBank::random(unsigned num_pis, std::size_t num_words,
                                std::uint64_t seed) {
  PatternBank bank(num_pis, num_words);
  Rng rng(seed);
  // Fill in PI-major traversal (all words of PI 0, then PI 1, ...) so the
  // bank is bit-identical for a given seed to what the historical PI-major
  // layout produced — seeded runs and golden tests stay stable across the
  // word-major storage switch.
  for (unsigned pi = 0; pi < num_pis; ++pi)
    for (std::size_t w = 0; w < num_words; ++w) bank.word(pi, w) = rng.next64();
  return bank;
}

void PatternBank::reserve_columns(std::size_t extra_words) {
  const std::size_t need =
      static_cast<std::size_t>(num_pis_) * (num_words_ + extra_words);
  if (need <= words_.capacity()) return;
  std::size_t cap = words_.capacity() < 16 ? 16 : words_.capacity() * 2;
  if (cap < need) cap = need;
  words_.reserve(cap);
  ++reallocations_;
}

void PatternBank::append_words(const std::vector<Word>& per_pi_words) {
  assert(per_pi_words.size() == num_pis_);
  reserve_columns(1);
  words_.insert(words_.end(), per_pi_words.begin(), per_pi_words.end());
  ++num_words_;
}

void PatternBank::append_groups(const std::vector<std::vector<Word>>& groups) {
  reserve_columns(groups.size());
  for (const auto& group : groups) {
    assert(group.size() == num_pis_);
    words_.insert(words_.end(), group.begin(), group.end());
    ++num_words_;
  }
}

std::size_t PatternBank::truncate_front(std::size_t max_words) {
  if (num_words_ <= max_words) return 0;
  const std::size_t drop = num_words_ - max_words;
  words_.erase(words_.begin(),
               words_.begin() + static_cast<std::ptrdiff_t>(
                                    drop * static_cast<std::size_t>(num_pis_)));
  num_words_ = max_words;
  start_index_ += drop;
  return drop;
}

void CexCollector::add(
    const std::vector<std::pair<unsigned, bool>>& assignment) {
  const std::size_t slot = count_ % 64;
  if (slot == 0) groups_.emplace_back(num_pis_, 0);
  auto& group = groups_.back();
  for (const auto& [pi, value] : assignment) {
    assert(pi < num_pis_);
    if (value) group[pi] |= Word{1} << slot;
  }
  ++count_;
}

void CexCollector::flush_into(PatternBank& bank) {
  bank.append_groups(groups_);
  groups_.clear();
  count_ = 0;
}

namespace {

/// Simulates columns [from, W) of every node row, where W is the bank's
/// current width and sig is already laid out at row stride W with PI rows
/// filled for [0, from). Shared core of simulate() (from = 0) and
/// extend_signatures() (from = old width): the delta path is bit-identical
/// to full simulation by construction because both run exactly this code
/// over their column range.
void simulate_columns(const aig::Aig& aig, const PatternBank& bank,
                      std::size_t from, Signatures& sig,
                      const aig::LevelSchedule* schedule) {
  const std::size_t W = bank.num_words();
  assert(sig.num_words == W);
  assert(from <= W);
  const std::size_t D = W - from;
  if (D == 0) return;

  // PIs copy their bank rows (new columns only).
  parallel::parallel_for_chunks(
      0, aig.num_pis(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          for (std::size_t w = from; w < W; ++w)
            sig.words[(i + 1) * W + w] =
                bank.word(static_cast<unsigned>(i), w);
      });

  // Level-parallel sweep over AND nodes: batch nodes by level and process
  // each batch with a parallel_for (paper's second parallelism dimension).
  // Concurrency contract: within a level batch each worker writes only
  // its own nodes' signature rows (disjoint word ranges of sig.words)
  // and reads rows of strictly lower levels, which the preceding
  // parallel_for's completion ordered before this one started.
  aig::LevelSchedule local;
  if (schedule == nullptr || !schedule->matches(aig)) {
    local = aig::build_level_schedule(aig);
    schedule = &local;
  }
  const auto& order = schedule->order;
  const auto& offset = schedule->offset;

  for (std::uint32_t l = 1; l <= schedule->max_level; ++l) {
    const std::size_t lo = offset[l], hi = offset[l + 1];
    parallel::parallel_for_chunks(lo, hi, [&](std::size_t clo,
                                              std::size_t chi) {
      Word* const words = sig.words.data();
      const aig::Var* const ord = order.data();
      for (std::size_t k = clo; k < chi; ++k) {
        const aig::Var v = ord[k];
        const aig::Lit f0 = aig.fanin0(v);
        const aig::Lit f1 = aig.fanin1(v);
        kernels::and2_words(
            words + static_cast<std::size_t>(v) * W + from,
            words + static_cast<std::size_t>(aig::lit_var(f0)) * W + from,
            aig::lit_compl(f0) ? ~Word{0} : 0,
            words + static_cast<std::size_t>(aig::lit_var(f1)) * W + from,
            aig::lit_compl(f1) ? ~Word{0} : 0, D);
      }
    });
  }
}

}  // namespace

Signatures simulate(const aig::Aig& aig, const PatternBank& bank,
                    const aig::LevelSchedule* schedule) {
  assert(bank.num_pis() == aig.num_pis());
  const std::size_t W = bank.num_words();
  Signatures sig;
  sig.num_words = W;
  sig.words.assign(aig.num_nodes() * W, 0);
  simulate_columns(aig, bank, 0, sig, schedule);
  return sig;
}

void extend_signatures(const aig::Aig& aig, const PatternBank& bank,
                       std::size_t from_word, Signatures& sig,
                       const aig::LevelSchedule* schedule) {
  assert(bank.num_pis() == aig.num_pis());
  assert(sig.num_words == from_word);
  assert(sig.words.size() ==
         static_cast<std::size_t>(aig.num_nodes()) * from_word);
  const std::size_t W = bank.num_words();
  assert(from_word <= W);
  if (W == from_word) return;

  // Re-lay rows out at the new stride, back to front so each row's source
  // range is read before it can be overwritten (dst row v starts at v*W >=
  // v*from_word = src start, so copying descending rows is safe in place).
  sig.words.resize(static_cast<std::size_t>(aig.num_nodes()) * W, 0);
  Word* const data = sig.words.data();
  for (std::size_t v = aig.num_nodes(); v-- > 0;) {
    Word* const dst = data + v * W;
    const Word* const src = data + v * from_word;
    std::copy_backward(src, src + from_word, dst + from_word);
    std::fill(dst + from_word, dst + W, Word{0});
  }
  sig.num_words = W;
  simulate_columns(aig, bank, from_word, sig, schedule);
}

}  // namespace simsweep::sim
