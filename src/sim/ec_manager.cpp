#include "sim/ec_manager.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "aig/rebuild.hpp"

namespace simsweep::sim {

namespace {

/// Hash of a node's canonicalized signature row.
std::uint64_t row_hash(const Word* row, std::size_t n, bool flip) {
  const Word mask = flip ? ~Word{0} : 0;
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= (row[i] ^ mask) + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xFF51AFD7ED558CCDULL;
  }
  return h;
}

bool rows_equal(const Word* a, bool fa, const Word* b, bool fb,
                std::size_t n) {
  const Word mask = (fa != fb) ? ~Word{0} : 0;
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] ^ mask) != b[i]) return false;
  return true;
}

}  // namespace

void EcManager::build(const aig::Aig& aig, const Signatures& sigs) {
  classes_.clear();
  phase_.assign(aig.num_nodes(), 0);
  removed_.assign(aig.num_nodes(), 0);

  // Bucket nodes by canonical signature hash; buckets are candidate
  // classes, verified by exact row comparison to guard against collisions.
  std::unordered_map<std::uint64_t, std::vector<aig::Var>> buckets;
  buckets.reserve(aig.num_nodes());
  const std::size_t W = sigs.num_words;
  for (aig::Var v = 0; v < aig.num_nodes(); ++v) {
    const Word* row = sigs.row(v);
    const bool ph = W > 0 && (row[0] & 1);  // canonicalize by pattern 0
    phase_[v] = ph;
    buckets[row_hash(row, W, ph)].push_back(v);
  }
  for (auto& [hash, bucket] : buckets) {
    (void)hash;
    if (bucket.size() < 2) continue;
    // Split the bucket into groups of exactly-equal canonical rows.
    std::vector<std::uint8_t> used(bucket.size(), 0);
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (used[i]) continue;
      std::vector<aig::Var> cls{bucket[i]};
      for (std::size_t j = i + 1; j < bucket.size(); ++j) {
        if (used[j]) continue;
        if (rows_equal(sigs.row(bucket[i]), phase_[bucket[i]],
                       sigs.row(bucket[j]), phase_[bucket[j]], W)) {
          used[j] = 1;
          cls.push_back(bucket[j]);
        }
      }
      if (cls.size() >= 2) {
        std::sort(cls.begin(), cls.end());
        classes_.push_back(std::move(cls));
      }
    }
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(classes_.begin(), classes_.end());
  ++stats_.builds;
  stats_.classes_built += classes_.size();
}

void EcManager::refine(const Signatures& sigs) {
  const std::size_t W = sigs.num_words;
  std::vector<std::vector<aig::Var>> next;
  next.reserve(classes_.size());
  for (auto& cls : classes_) {
    // Partition members by canonicalized new signature. The first member's
    // canon is the reference; members matching it stay, others re-group.
    std::vector<std::vector<aig::Var>> parts;
    for (aig::Var v : cls) {
      bool placed = false;
      for (auto& part : parts) {
        if (rows_equal(sigs.row(part[0]), phase_[part[0]], sigs.row(v),
                       phase_[v], W)) {
          part.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) parts.push_back({v});
    }
    std::size_t survivors = 0;
    for (auto& part : parts)
      if (part.size() >= 2) {
        ++survivors;
        next.push_back(std::move(part));
      }
    if (survivors == 0)
      ++stats_.classes_dissolved;
    else if (survivors >= 2 || parts.size() >= 2)
      ++stats_.class_splits;
  }
  classes_ = std::move(next);
  ++stats_.refines;
}

std::vector<CandidatePair> EcManager::candidate_pairs() const {
  std::vector<CandidatePair> pairs;
  for (const auto& cls : classes_) {
    // Representative: minimum id among non-removed members.
    aig::Var repr = 0;
    bool have_repr = false;
    for (aig::Var v : cls) {
      if (removed_[v]) continue;
      if (!have_repr) {
        repr = v;
        have_repr = true;
        continue;
      }
      pairs.push_back(CandidatePair{
          repr, v, static_cast<bool>(phase_[repr] ^ phase_[v])});
    }
  }
  return pairs;
}

bool EcManager::translate(const std::vector<aig::Lit>& lit_map,
                          std::size_t new_num_nodes, std::uint64_t* dropped) {
  std::uint64_t drops = 0;
  std::vector<std::vector<aig::Var>> next;
  next.reserve(classes_.size());
  std::vector<std::uint8_t> next_phase(new_num_nodes, 0);
  // Members proved/removed before the rebuild have no meaningful image:
  // proved nodes were substituted away (their new literal aliases the
  // representative's). Skip them without counting them as drops.
  std::vector<std::pair<aig::Var, bool>> members;  // (new var, new phase)
  for (const auto& cls : classes_) {
    members.clear();
    for (const aig::Var v : cls) {
      if (removed_[v]) continue;
      assert(v < lit_map.size());
      const aig::Lit nl = lit_map[v];
      if (nl == aig::RebuildResult::kLitInvalid) {
        ++drops;
        continue;
      }
      const aig::Var nv = aig::lit_var(nl);
      if (nv >= new_num_nodes) return false;  // malformed map
      members.emplace_back(
          nv, static_cast<bool>(phase_[v] ^ (aig::lit_compl(nl) ? 1 : 0)));
    }
    std::sort(members.begin(), members.end());
    std::vector<aig::Var> out;
    out.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0 && members[i].first == members[i - 1].first) {
        // Strash merge folded two class members onto one new node. Their
        // phases must agree — both record the same function-vs-canon
        // relation — else the carried state is inconsistent with the
        // rebuild and the whole translation is rejected.
        if (members[i].second != members[i - 1].second) return false;
        continue;
      }
      out.push_back(members[i].first);
      next_phase[members[i].first] = members[i].second ? 1 : 0;
    }
    if (out.size() < 2) {
      drops += out.size();
      continue;
    }
    next.push_back(std::move(out));
  }
  std::sort(next.begin(), next.end());
  classes_ = std::move(next);
  phase_ = std::move(next_phase);
  removed_.assign(new_num_nodes, 0);
  if (dropped != nullptr) *dropped += drops;
  return true;
}

void EcManager::mark_proved(aig::Var node) {
  assert(node < removed_.size());
  removed_[node] = 1;
}

void EcManager::remove_node(aig::Var node) {
  assert(node < removed_.size());
  removed_[node] = 1;
}

}  // namespace simsweep::sim
