#pragma once
/// \file incremental.hpp
/// \brief Incremental simulation and EC carry-over across phases and
/// rebuilds (DESIGN.md §2.7).
///
/// Full re-simulation of the miter over the whole pattern bank is the
/// dominant recurring cost of sweep-style CEC — the engine used to pay it
/// at every phase entry and after every CEX refinement round. This layer
/// keeps one Signatures matrix and one EcManager alive across the engine
/// run and maintains them incrementally:
///
///  * **Delta simulation** — the PatternBank is a sliding window over an
///    append-only pattern stream (PatternBank::start_index). When columns
///    are appended (CEX absorption) only the new word-columns are
///    simulated (sim::extend_signatures) and the classes refined; when
///    the window's front is truncated the cached rows drop the same
///    columns in place. Bit-identical to full re-simulation by
///    construction (both run the same column kernel over their range).
///
///  * **Rebuild carry-over** — after a P/G/L reduction, signature rows
///    and EC classes are translated through RebuildResult::lit_map
///    (complement-aware via the literal's phase bit, dropping members
///    outside the kept cone) instead of re-simulating and rebuilding
///    classes from a fresh random build. Sound because a signature is a
///    deterministic function of a node's global PI function and the bank:
///    the rebuild preserves every kept node's function modulo the mapped
///    literal's complement, so the translated rows *are* the rows a full
///    re-simulation would produce, and carried classes are a refinement
///    of what a fresh build() would return (EC classes only propose
///    candidates; verification is downstream, so a finer partition is
///    always sound).
///
/// Every translation is checked; when it is impossible (node population
/// mismatch, phase conflict from a strash merge, injected fault at
/// fault::sites::kSimCarryover) the state falls back to a full
/// re-simulation + fresh build on the next sync() — counted in
/// CarryStats::carry_fallbacks and surfaced to the degrade ladder.

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_analysis.hpp"
#include "sim/ec_manager.hpp"
#include "sim/partial_sim.hpp"

namespace simsweep::sim {

/// Lifetime telemetry of one IncrementalState (published by the engine
/// under `partial_sim.*`; see src/obs/metric_names.def).
struct CarryStats {
  /// Word-columns simulated by the delta path (would have been full-bank
  /// re-simulations before this layer).
  std::uint64_t incremental_words = 0;
  /// Full re-simulations actually performed (first sync + fallbacks).
  std::uint64_t full_resims = 0;
  /// Classes carried live through a rebuild translation.
  std::uint64_t carry_classes = 0;
  /// Class members dropped during translations (outside the kept cone or
  /// in classes that dissolved below 2 members).
  std::uint64_t carry_dropped = 0;
  /// Translations abandoned to the full re-simulation fallback.
  std::uint64_t carry_fallbacks = 0;
};

/// Translates node-major signature rows through a rebuild's lit_map.
/// new row[nv] = old row[v] XOR complement-mask of lit_map[v]. Every new
/// variable must be covered by at least one preimage (rebuild only copies
/// old-cone nodes, so this holds for genuine rebuild maps), and multiple
/// preimages of one new var (strash merges) must agree on the translated
/// row — both are checked, returning nullopt on violation so the caller
/// can fall back to re-simulation. The constant and PI rows translate
/// like any other (PIs map to themselves in rebuild maps).
std::optional<Signatures> translate_signatures(
    const Signatures& old_sigs, const std::vector<aig::Lit>& lit_map,
    std::size_t new_num_nodes);

/// Drops the first n word-columns of every row in place (the signature
/// mirror of PatternBank::truncate_front).
void drop_front_words(Signatures& sigs, std::size_t n);

/// The engine's per-run incremental simulation state: one Signatures
/// matrix + one EcManager, kept in sync with (miter, bank) via sync(),
/// carried through rebuilds via apply_rebuild(). Disabled state (see
/// set_enabled) degenerates to "full re-simulate + fresh build on every
/// sync", which is exactly the pre-incremental engine behaviour — the A/B
/// lever for bench_incremental.
class IncrementalState {
 public:
  /// Master switch (EngineParams::incremental_sim). Disabling invalidates
  /// the cache so every sync is a full re-simulation + fresh build.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled) valid_ = false;
  }
  bool enabled() const { return enabled_; }

  /// Whether the cached state is usable for the next sync's delta path.
  bool valid() const { return valid_; }
  /// Forces the next sync() onto the full re-simulation path.
  void invalidate() { valid_ = false; }

  /// Brings the cached signatures + classes up to date with (aig, bank)
  /// and returns the class manager. Delta path when the cache is valid,
  /// covers a prefix of the bank's stream window and the AIG shape is
  /// unchanged; full re-simulation + EcManager::build otherwise. The
  /// schedule, when given, must match `aig` (or be null).
  EcManager& sync(const aig::Aig& aig, const PatternBank& bank,
                  const aig::LevelSchedule* schedule = nullptr);

  /// Carries signatures + classes through a rebuild. Returns true when
  /// the translation succeeded (cache stays valid for the new AIG); false
  /// when it fell back (cache invalidated; next sync() re-simulates).
  /// Fallbacks from a previously-valid cache count into
  /// CarryStats::carry_fallbacks; calling on an already-invalid cache is
  /// a cheap no-op.
  bool apply_rebuild(const aig::Aig& new_aig,
                     const std::vector<aig::Lit>& lit_map);

  const EcManager& ec() const { return ec_; }
  EcManager& ec() { return ec_; }
  const Signatures& signatures() const { return sigs_; }
  const CarryStats& stats() const { return stats_; }

 private:
  bool enabled_ = true;
  bool valid_ = false;
  std::size_t num_nodes_ = 0;  ///< node count of the AIG the cache is for
  /// Stream index (PatternBank::start_index units) of cached column 0.
  std::uint64_t covered_start_ = 0;
  Signatures sigs_;
  EcManager ec_;
  CarryStats stats_;
};

}  // namespace simsweep::sim
