#include "sim/quality_patterns.hpp"

#include <unordered_set>

#include "common/random.hpp"

namespace simsweep::sim {

std::size_t count_signature_classes(const aig::Aig& aig,
                                    const PatternBank& bank) {
  const Signatures sigs = simulate(aig, bank);
  std::unordered_set<std::uint64_t> canon_hashes;
  canon_hashes.reserve(aig.num_nodes());
  const std::size_t W = sigs.num_words;
  for (aig::Var v = 0; v < aig.num_nodes(); ++v) {
    const Word* row = sigs.row(v);
    const Word flip = (W > 0 && (row[0] & 1)) ? ~Word{0} : 0;
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (std::size_t w = 0; w < W; ++w) {
      h ^= (row[w] ^ flip) + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      h *= 0xFF51AFD7ED558CCDULL;
    }
    canon_hashes.insert(h);
  }
  return canon_hashes.size();
}

PatternBank quality_patterns(const aig::Aig& aig,
                             const QualityParams& params,
                             QualityStats* stats) {
  PatternBank bank =
      PatternBank::random(aig.num_pis(), params.base_words, params.seed);
  std::size_t classes = count_signature_classes(aig, bank);
  if (stats) {
    *stats = QualityStats{};
    stats->classes_before = classes;
  }

  Rng rng(params.seed ^ 0xD1CEu);
  for (std::size_t round = 0;
       round < params.candidate_rounds && bank.num_words() < params.max_words;
       ++round) {
    // Propose one candidate word column and keep it iff it splits a class
    // (signature-class count strictly increases).
    std::vector<Word> column(aig.num_pis());
    for (auto& w : column) w = rng.next64();
    PatternBank candidate = bank;
    candidate.append_words(column);
    const std::size_t new_classes =
        count_signature_classes(aig, candidate);
    if (stats) ++stats->candidates_tried;
    if (new_classes > classes) {
      bank = std::move(candidate);
      classes = new_classes;
      if (stats) ++stats->candidates_kept;
    }
  }
  if (stats) stats->classes_after = classes;
  return bank;
}

}  // namespace simsweep::sim
