/// \file fault.cpp
/// \brief Process-wide fault injector state (see fault.hpp).

#include "fault/fault.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/lock_ranks.hpp"
#include "common/random.hpp"

namespace simsweep::fault {
namespace {

/// Mutable per-site state of an installed plan.
struct SiteState {
  FaultSpec spec;
  Rng rng;  // probability-mode substream, forked off the plan seed
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// An installed plan plus its counters. Owned by the ScopedFaultPlan that
/// installed it; the global pointer only borrows it for the scope.
struct ActivePlan {
  common::Mutex mu;
  /// Sorted by spec.site for lookup.
  std::vector<SiteState> sites SIMSWEEP_GUARDED_BY(mu);

  explicit ActivePlan(const FaultPlan& plan) {
    Rng base(plan.seed());
    sites.reserve(plan.specs().size());
    for (const FaultSpec& spec : plan.specs())
      sites.push_back(SiteState{
          spec, base.fork(static_cast<std::uint64_t>(sites.size())), 0, 0});
    std::sort(sites.begin(), sites.end(),
              [](const SiteState& a, const SiteState& b) {
                return a.spec.site < b.spec.site;
              });
  }

  SiteState* find(std::string_view site) SIMSWEEP_REQUIRES(mu) {
    auto it = std::lower_bound(sites.begin(), sites.end(), site,
                               [](const SiteState& s, std::string_view v) {
                                 return s.spec.site < v;
                               });
    if (it == sites.end() || it->spec.site != site) return nullptr;
    return &*it;
  }
};

/// The installed plan. A raw pointer so the hot no-plan path is one
/// relaxed load; installation/uninstallation happen on quiescent sites
/// (ScopedFaultPlan contract), so no reclamation race exists.
std::atomic<ActivePlan*> g_plan{nullptr};

/// Lifetime fires across all plans; never reset (engine publishes deltas).
std::atomic<std::uint64_t> g_fires_total{0};

}  // namespace

struct ScopedFaultPlan::Impl {
  ActivePlan plan;
  ActivePlan* previous;
  explicit Impl(const FaultPlan& p) : plan(p), previous(nullptr) {}
};

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan)
    : impl_(new Impl(plan)) {
  impl_->previous = g_plan.exchange(&impl_->plan, std::memory_order_release);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  g_plan.store(impl_->previous, std::memory_order_release);
  delete impl_;
}

std::uint64_t ScopedFaultPlan::fires(std::string_view site) const {
  common::RankedMutexLock lock(impl_->plan.mu, common::lock_ranks::fault);
  const SiteState* s = impl_->plan.find(site);
  return s ? s->fires : 0;
}

std::uint64_t ScopedFaultPlan::fires_total() const {
  common::RankedMutexLock lock(impl_->plan.mu, common::lock_ranks::fault);
  std::uint64_t total = 0;
  for (const SiteState& s : impl_->plan.sites) total += s.fires;
  return total;
}

std::uint64_t ScopedFaultPlan::hits(std::string_view site) const {
  common::RankedMutexLock lock(impl_->plan.mu, common::lock_ranks::fault);
  const SiteState* s = impl_->plan.find(site);
  return s ? s->hits : 0;
}

std::uint64_t fires_total() {
  return g_fires_total.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> active_fire_counts() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  ActivePlan* plan = g_plan.load(std::memory_order_acquire);
  if (!plan) return out;
  common::RankedMutexLock lock(plan->mu, common::lock_ranks::fault);
  out.reserve(plan->sites.size());
  for (const SiteState& s : plan->sites)
    out.emplace_back(s.spec.site, s.fires);
  return out;
}

namespace detail {

bool hit(const char* site) {
  ActivePlan* plan = g_plan.load(std::memory_order_relaxed);
  if (!plan) return false;
  std::atomic_thread_fence(std::memory_order_acquire);
  common::RankedMutexLock lock(plan->mu, common::lock_ranks::fault);
  SiteState* s = plan->find(site);
  if (!s) return false;
  ++s->hits;
  if (s->spec.max_fires != 0 && s->fires >= s->spec.max_fires) return false;
  bool fire = false;
  if (s->spec.nth != 0) {
    fire = s->hits >= s->spec.nth;
  } else {
    fire = s->rng.flip(s->spec.probability);
  }
  if (fire) {
    ++s->fires;
    g_fires_total.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

}  // namespace detail
}  // namespace simsweep::fault
