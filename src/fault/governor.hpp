#pragma once
/// \file governor.hpp
/// \brief Resource governor primitives: memory ledger and phase deadlines
/// (DESIGN.md §2.4).
///
/// The exhaustive simulator's budget M (Alg. 1) bounds one batch; the
/// ledger bounds the *process*: every large allocation the engine makes
/// (simulation tables, merged-window builds, cut buffers) is charged
/// against one MemoryLedger before it happens, and a denied charge is a
/// recoverable fault the degradation ladder answers by shrinking the
/// unit and retrying — not an abort. Deadlines do the same for time:
/// each engine phase gets its own wall-clock cap (in addition to the
/// whole-engine `time_limit`), and expiry routes the phase's remaining
/// work to the sound undecided path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace simsweep::fault {

/// A process-level byte budget with atomic charge/release accounting.
/// Thread-safe; shared by every phase of a run (and across portfolio
/// attempts when the caller passes one ledger to all of them).
class MemoryLedger {
 public:
  /// budget_bytes == 0 means unlimited (accounting still happens, so
  /// peak usage is observable).
  explicit MemoryLedger(std::uint64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  /// Attempts to reserve `bytes`; false (and a recorded denial) when the
  /// charge would exceed the budget. Never blocks.
  bool try_charge(std::uint64_t bytes) {
    std::uint64_t cur = charged_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t next = cur + bytes;
      if (budget_ != 0 && next > budget_) {
        denials_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (charged_.compare_exchange_weak(cur, next,
                                         std::memory_order_relaxed)) {
        // Peak tracking is advisory: a stale max only under-reports.
        std::uint64_t peak = peak_.load(std::memory_order_relaxed);
        while (next > peak &&
               !peak_.compare_exchange_weak(peak, next,
                                            std::memory_order_relaxed)) {
        }
        return true;
      }
    }
  }

  void release(std::uint64_t bytes) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t budget_bytes() const { return budget_; }
  std::uint64_t charged_bytes() const {
    return charged_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t denials() const {
    return denials_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint64_t budget_;
  std::atomic<std::uint64_t> charged_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> denials_{0};
};

/// RAII charge against a MemoryLedger. Movable so it can live inside the
/// result-free scope of a batch; releases on destruction. A lease against
/// a null ledger always acquires (the governor is opt-in).
class MemoryLease {
 public:
  MemoryLease() = default;
  MemoryLease(MemoryLedger* ledger, std::uint64_t bytes)
      : ledger_(ledger), bytes_(bytes) {
    ok_ = ledger_ == nullptr || ledger_->try_charge(bytes_);
  }
  ~MemoryLease() { reset(); }

  MemoryLease(MemoryLease&& other) noexcept
      : ledger_(other.ledger_), bytes_(other.bytes_), ok_(other.ok_) {
    other.ledger_ = nullptr;
    other.ok_ = false;
  }
  MemoryLease& operator=(MemoryLease&& other) noexcept {
    if (this != &other) {
      reset();
      ledger_ = other.ledger_;
      bytes_ = other.bytes_;
      ok_ = other.ok_;
      other.ledger_ = nullptr;
      other.ok_ = false;
    }
    return *this;
  }
  MemoryLease(const MemoryLease&) = delete;
  MemoryLease& operator=(const MemoryLease&) = delete;

  /// True iff the charge was accepted (or no ledger governs it).
  bool ok() const { return ok_; }

  void reset() {
    if (ledger_ != nullptr && ok_) ledger_->release(bytes_);
    ledger_ = nullptr;
    ok_ = false;
  }

 private:
  MemoryLedger* ledger_ = nullptr;
  std::uint64_t bytes_ = 0;
  bool ok_ = false;
};

/// A fixed wall-clock deadline on the steady clock. Immutable after
/// construction; cheap to copy and to poll. The default-constructed
/// deadline never expires.
class Deadline {
 public:
  Deadline() = default;
  /// seconds <= 0 means unbounded.
  static Deadline after(double seconds) {
    Deadline d;
    if (seconds > 0) {
      d.bounded_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
    }
    return d;
  }

  bool bounded() const { return bounded_; }
  bool expired() const {
    return bounded_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Seconds left; +inf when unbounded, clamped at 0 when expired.
  double remaining_seconds() const {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    const auto left = at_ - std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(left).count();
    return s > 0 ? s : 0.0;
  }

 private:
  bool bounded_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace simsweep::fault
