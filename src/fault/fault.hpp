#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection for robustness testing
/// (DESIGN.md §2.4).
///
/// The sweeping engine is memory- and time-capped by construction (Alg. 1
/// splits exhaustive simulation into rounds so truth tables fit a budget
/// M), but the caps only help when allocations *succeed* and phases
/// *terminate*. This module lets tests and soak runs turn failures on at
/// named points of the real code paths so the recovery ladder
/// (engine/phase_common.hpp) is exercised deterministically:
///
///   if (SIMSWEEP_FAULT_POINT(fault::sites::kExhaustiveSimtAlloc))
///     throw std::bad_alloc{};
///
/// A site fires according to the installed FaultPlan: either on the Nth
/// hit of the site (exact-replay counting) or with probability p drawn
/// from a per-site Rng substream forked off the plan seed, so a given
/// {plan, hit sequence} always replays the same fire pattern. Sites are
/// placed on host-thread control paths only (allocation entries, batch
/// and solve entries) — never inside data-parallel worker bodies, where a
/// thrown injection could not be caught across threads.
///
/// With no plan installed a fault point is one relaxed atomic load;
/// configuring with -DSIMSWEEP_FAULT_INJECTION=OFF compiles every site to
/// a constant `false` for release deployments.
///
/// The checkpoint subsystem (DESIGN.md §2.8) adds three sites beyond the
/// degradation ladder proper: ckpt.write (a snapshot write is skipped,
/// the last-good file stays), ckpt.load (a snapshot read is rejected and
/// the load ladder falls through) and ckpt.child_crash (process death
/// immediately *after* a durable write — the supervisor restart drill).
///
/// The batch job service (DESIGN.md §2.9) adds two more: service.admit
/// (an admission attempt is denied as if the memory ledger refused the
/// job's stake — the job requeues instead of overcommitting) and
/// service.cache (a verdict-cache lookup is forced to miss, so the job
/// recomputes; the recomputed verdict must match what the cache would
/// have returned — the cache-soundness drill).
///
/// Site names are catalogued once, in the X-macro table
/// src/fault/fault_sites.def (one row per failure class the degradation
/// ladder handles). Code never spells a site as a raw string: fault
/// points and test plans reference the generated constants
/// (fault::sites::k*), and the `simsweep_audit` static-analysis ctest
/// rejects stray literals, unknown sites and dead catalog rows
/// (DESIGN.md §2.6).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace simsweep::fault {

/// Thrown by host-thread fault points whose natural failure mode is not a
/// specific standard exception (e.g. cut.enum_overflow). Carries the site
/// name so recovery code can attribute the fault.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// One armed injection site of a plan.
struct FaultSpec {
  std::string site;
  /// Fire from the nth hit of the site on (1-based). 0 selects
  /// probability mode instead.
  std::uint64_t nth = 1;
  /// Probability-mode fire chance per hit, drawn from the site's forked
  /// Rng substream (deterministic replay for a fixed plan seed).
  double probability = 0.0;
  /// Total fires allowed for this site; 0 = unlimited.
  std::uint64_t max_fires = 1;
};

/// A deterministic injection schedule. Build one, then install it for a
/// scope with ScopedFaultPlan. Plans are plain data and reusable.
class FaultPlan {
 public:
  /// Fires the site on its nth hit (1-based), for `fires` consecutive
  /// eligible hits (default: exactly once).
  FaultPlan& on_hit(std::string site, std::uint64_t nth,
                    std::uint64_t fires = 1) {
    specs_.push_back(FaultSpec{std::move(site), nth, 0.0, fires});
    return *this;
  }

  /// Fires the site with probability p per hit, decided by a per-site Rng
  /// substream forked from the plan seed (max_fires 0 = unlimited).
  FaultPlan& with_probability(std::string site, double p,
                              std::uint64_t max_fires = 0) {
    specs_.push_back(FaultSpec{std::move(site), 0, p, max_fires});
    return *this;
  }

  FaultPlan& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  const std::vector<FaultSpec>& specs() const { return specs_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::vector<FaultSpec> specs_;
  std::uint64_t seed_ = 0xFA117ULL;
};

/// Installs a plan into the process-wide injector for the enclosing
/// scope; the previously installed plan (if any) is restored on
/// destruction. Fault points must be quiescent when the scope ends (the
/// injecting test owns the engine run it wraps).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  /// Fires of one site / all sites since this plan was installed.
  std::uint64_t fires(std::string_view site) const;
  std::uint64_t fires_total() const;
  /// Hits (fired or not) of one site since this plan was installed.
  std::uint64_t hits(std::string_view site) const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Process-cumulative count of injected fires (across all plans ever
/// installed; never reset). The engine publishes the delta over a run as
/// `faults.injected`.
std::uint64_t fires_total();

/// Per-site fire counts of the currently installed plan (empty when no
/// plan is active). Sorted by site name.
std::vector<std::pair<std::string, std::uint64_t>> active_fire_counts();

/// Typed site-name constants, one per row of fault_sites.def. The ONLY
/// way code may name a site (simsweep_audit enforces this).
namespace sites {
#define SIMSWEEP_FAULT_SITE(ident, name) \
  inline constexpr const char ident[] = name;
#include "fault/fault_sites.def"
#undef SIMSWEEP_FAULT_SITE
}  // namespace sites

/// The injection-site catalog (DESIGN.md §2.4), expanded from
/// fault_sites.def so soak tooling can iterate every site.
inline constexpr const char* kCataloguedSites[] = {
#define SIMSWEEP_FAULT_SITE(ident, name) name,
#include "fault/fault_sites.def"
#undef SIMSWEEP_FAULT_SITE
};

namespace detail {
/// Records a hit of `site` against the installed plan and returns true
/// iff the site should fail now. Thread-safe; the no-plan fast path is a
/// single relaxed atomic load.
bool hit(const char* site);
}  // namespace detail

}  // namespace simsweep::fault

#ifdef SIMSWEEP_FAULT_INJECTION
/// True iff the named site should fail now (see file comment). The caller
/// decides what failing means: throw the failure the real world would
/// produce (std::bad_alloc for allocations), or take the error path.
#define SIMSWEEP_FAULT_POINT(site) (::simsweep::fault::detail::hit(site))
#else
#define SIMSWEEP_FAULT_POINT(site) (false)
#endif
