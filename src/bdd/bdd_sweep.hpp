#pragma once
/// \file bdd_sweep.hpp
/// \brief BDD sweeping (Kuehlmann & Krohm, DAC'97 — the paper's ref [6]).
///
/// The historical predecessor of SAT sweeping: build size-bounded BDDs
/// for the miter nodes bottom-up; nodes whose BDDs become identical (or
/// complementary) are merged. When a node's BDD exceeds the size bound,
/// the node becomes a *cutpoint*: it gets a fresh BDD variable and later
/// logic is expressed over cutpoints instead of PIs. Cutpoints make the
/// method incomplete (a non-zero PO over cutpoint variables proves
/// nothing), so the verdict is kEquivalent / kUndecided / kNotEquivalent
/// (the latter only when a non-zero PO is expressed purely over PIs).
///
/// Included as the fourth portfolio engine and as a baseline for the
/// historical comparison in EXPERIMENTS.md.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/miter.hpp"
#include "common/verdict.hpp"

namespace simsweep::bdd {

struct BddSweepParams {
  /// A node whose BDD exceeds this size becomes a cutpoint.
  std::size_t node_size_limit = 2000;
  /// Total BDD-manager node cap (manager overflow => kUndecided).
  std::size_t manager_limit = std::size_t{1} << 22;
  double time_limit = 0;  ///< seconds; 0 = unbounded
  const std::atomic<bool>* cancel = nullptr;
};

struct BddSweepResult {
  Verdict verdict = Verdict::kUndecided;
  std::optional<std::vector<bool>> cex;  ///< PI assignment when disproved
  std::size_t merged_nodes = 0;          ///< nodes merged by equal BDDs
  std::size_t cutpoints = 0;
  std::size_t peak_bdd_nodes = 0;
  double seconds = 0;
};

BddSweepResult bdd_sweep_miter(const aig::Aig& miter,
                               const BddSweepParams& params = {});

inline BddSweepResult bdd_sweep(const aig::Aig& a, const aig::Aig& b,
                                const BddSweepParams& params = {}) {
  return bdd_sweep_miter(aig::make_miter(a, b), params);
}

}  // namespace simsweep::bdd
