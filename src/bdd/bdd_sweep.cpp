#include "bdd/bdd_sweep.hpp"

#include <unordered_map>

#include "aig/rebuild.hpp"
#include "bdd/bdd.hpp"
#include "common/timer.hpp"

namespace simsweep::bdd {

BddSweepResult bdd_sweep_miter(const aig::Aig& miter,
                               const BddSweepParams& params) {
  Timer t;
  BddSweepResult result;
  auto finish = [&](Verdict v) {
    result.verdict = v;
    result.seconds = t.seconds();
    return result;
  };
  if (aig::miter_disproved(miter)) return finish(Verdict::kNotEquivalent);
  if (aig::miter_proved(miter)) return finish(Verdict::kEquivalent);

  // Variable space: PIs first, then one potential cutpoint variable per
  // AND node (allocated lazily by var()).
  const unsigned num_pis = miter.num_pis();
  const unsigned max_vars =
      num_pis + static_cast<unsigned>(miter.num_ands());
  BddManager mgr(max_vars, params.manager_limit);
  unsigned next_cutpoint = num_pis;

  std::vector<BddManager::Ref> ref(miter.num_nodes(), BddManager::kFalse);
  // Merge detection: BDD ref -> first variable computing it.
  std::unordered_map<BddManager::Ref, aig::Var> seen;

  try {
    for (unsigned i = 0; i < num_pis; ++i) {
      ref[i + 1] = mgr.var(i);
      seen.emplace(ref[i + 1], i + 1);
    }
    auto lit_ref = [&](aig::Lit l) {
      const BddManager::Ref r = ref[aig::lit_var(l)];
      return aig::lit_compl(l) ? mgr.negate(r) : r;
    };

    for (aig::Var v = num_pis + 1; v < miter.num_nodes(); ++v) {
      if (params.cancel != nullptr &&
          params.cancel->load(std::memory_order_relaxed))
        return finish(Verdict::kUndecided);
      if (params.time_limit > 0 && (v & 0xFF) == 0 &&
          t.seconds() > params.time_limit)
        return finish(Verdict::kUndecided);

      BddManager::Ref r =
          mgr.apply_and(lit_ref(miter.fanin0(v)), lit_ref(miter.fanin1(v)));
      if (mgr.dag_size(r) > params.node_size_limit) {
        // Cutpoint: re-express this node as a fresh variable.
        r = mgr.var(next_cutpoint++);
        ++result.cutpoints;
      } else if (const auto it = seen.find(r); it != seen.end()) {
        ++result.merged_nodes;  // functionally identical to it->second
      } else if (seen.count(mgr.negate(r))) {
        ++result.merged_nodes;  // complementary merge
      } else {
        seen.emplace(r, v);
      }
      ref[v] = r;
    }
    result.peak_bdd_nodes = mgr.num_nodes();

    bool all_zero = true;
    for (aig::Lit po : miter.pos()) {
      const BddManager::Ref r = lit_ref(po);
      if (r == BddManager::kFalse) continue;
      all_zero = false;
      // A non-zero PO disproves only if no cutpoint variable is involved
      // (cutpoints over-approximate reachability).
      if (!mgr.uses_var_at_or_above(r, num_pis)) {
        auto assignment = mgr.satisfy_one(r);
        assignment->resize(num_pis);
        result.cex = std::move(assignment);
        return finish(Verdict::kNotEquivalent);
      }
    }
    return finish(all_zero ? Verdict::kEquivalent : Verdict::kUndecided);
  } catch (const BddOverflow&) {
    result.peak_bdd_nodes = mgr.num_nodes();
    return finish(Verdict::kUndecided);
  }
}

}  // namespace simsweep::bdd
