#pragma once
/// \file bdd_cec.hpp
/// \brief BDD-based combinational equivalence checking.
///
/// Builds the miter's PO functions as BDDs (variable order = PI index
/// order, AIG nodes memoized so shared logic is built once) and declares
/// equivalence iff every PO reduces to the constant-false node. The node
/// limit converts BDD memory blow-up (the reason SAT displaced BDDs for
/// CEC, paper §I) into a kUndecided verdict, which is exactly the behavior
/// the portfolio checker needs.

#include <atomic>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/miter.hpp"
#include "common/timer.hpp"
#include "common/verdict.hpp"

namespace simsweep::bdd {

struct BddCecParams {
  std::size_t node_limit = std::size_t{1} << 22;
  /// Wall-clock budget in seconds; 0 = unbounded.
  double time_limit = 0;
  /// Cooperative cancellation (portfolio use): checked periodically while
  /// building node BDDs.
  const std::atomic<bool>* cancel = nullptr;
};

struct BddCecResult {
  Verdict verdict = Verdict::kUndecided;
  std::optional<std::vector<bool>> cex;
  std::size_t peak_nodes = 0;
  double seconds = 0;
};

BddCecResult bdd_check_miter(const aig::Aig& miter,
                             const BddCecParams& params = {});

inline BddCecResult bdd_check(const aig::Aig& a, const aig::Aig& b,
                              const BddCecParams& params = {}) {
  return bdd_check_miter(aig::make_miter(a, b), params);
}

}  // namespace simsweep::bdd
