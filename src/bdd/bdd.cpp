#include "bdd/bdd.hpp"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace simsweep::bdd {

namespace {
enum Op : std::uint64_t { kOpAnd = 1, kOpXor = 2, kOpNot = 3, kOpIte = 4 };
}

BddManager::BddManager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});  // terminal 0
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});    // terminal 1
  var_refs_.assign(num_vars_, kFalse);
  cache_.assign(std::size_t{1} << 18, CacheEntry{});
}

bool BddManager::cache_lookup(std::uint64_t op, Ref f, Ref g, Ref h,
                              Ref& out) const {
  const CacheEntry& e = cache_[triple_key(op, (std::uint64_t{f} << 32) | g,
                                          h) &
                               (cache_.size() - 1)];
  if (e.op != op || e.f != f || e.g != g || e.h != h) return false;
  out = e.result;
  return true;
}

void BddManager::cache_store(std::uint64_t op, Ref f, Ref g, Ref h,
                             Ref result) {
  CacheEntry& e = cache_[triple_key(op, (std::uint64_t{f} << 32) | g, h) &
                         (cache_.size() - 1)];
  e = CacheEntry{op, f, g, h, result};
}

BddManager::Ref BddManager::var(unsigned v) {
  assert(v < num_vars_);
  if (var_refs_[v] == kFalse) var_refs_[v] = make_node(v, kFalse, kTrue);
  return var_refs_[v];
}

BddManager::Ref BddManager::make_node(std::uint32_t v, Ref low, Ref high) {
  if (low == high) return low;  // reduction rule
  const UniqueKey key{v, low, high};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) throw BddOverflow();
  nodes_.push_back(Node{v, low, high});
  const Ref r = static_cast<Ref>(nodes_.size() - 1);
  unique_[key] = r;
  return r;
}

BddManager::Ref BddManager::apply_and(Ref f, Ref g) {
  if (f == kFalse || g == kFalse) return kFalse;
  if (f == kTrue) return g;
  if (g == kTrue) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);  // canonical operand order
  Ref r;
  if (cache_lookup(kOpAnd, f, g, 0, r)) return r;

  const std::uint32_t v = std::min(top_var(f), top_var(g));
  const Ref f0 = top_var(f) == v ? nodes_[f].low : f;
  const Ref f1 = top_var(f) == v ? nodes_[f].high : f;
  const Ref g0 = top_var(g) == v ? nodes_[g].low : g;
  const Ref g1 = top_var(g) == v ? nodes_[g].high : g;
  r = make_node(v, apply_and(f0, g0), apply_and(f1, g1));
  cache_store(kOpAnd, f, g, 0, r);
  return r;
}

BddManager::Ref BddManager::apply_xor(Ref f, Ref g) {
  if (f == kFalse) return g;
  if (g == kFalse) return f;
  if (f == g) return kFalse;
  if (f == kTrue) return negate(g);
  if (g == kTrue) return negate(f);
  if (f > g) std::swap(f, g);
  Ref r;
  if (cache_lookup(kOpXor, f, g, 0, r)) return r;

  const std::uint32_t v = std::min(top_var(f), top_var(g));
  const Ref f0 = top_var(f) == v ? nodes_[f].low : f;
  const Ref f1 = top_var(f) == v ? nodes_[f].high : f;
  const Ref g0 = top_var(g) == v ? nodes_[g].low : g;
  const Ref g1 = top_var(g) == v ? nodes_[g].high : g;
  r = make_node(v, apply_xor(f0, g0), apply_xor(f1, g1));
  cache_store(kOpXor, f, g, 0, r);
  return r;
}

BddManager::Ref BddManager::negate(Ref f) {
  if (f == kFalse) return kTrue;
  if (f == kTrue) return kFalse;
  Ref r;
  if (cache_lookup(kOpNot, f, 0, 0, r)) return r;
  r = make_node(nodes_[f].var, negate(nodes_[f].low), negate(nodes_[f].high));
  cache_store(kOpNot, f, 0, 0, r);
  return r;
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return negate(f);
  Ref r;
  if (cache_lookup(kOpIte, f, g, h, r)) return r;

  const std::uint32_t v =
      std::min(top_var(f), std::min(top_var(g), top_var(h)));
  auto cof = [&](Ref x, bool hi) {
    if (top_var(x) != v) return x;
    return hi ? nodes_[x].high : nodes_[x].low;
  };
  r = make_node(v, ite(cof(f, false), cof(g, false), cof(h, false)),
                ite(cof(f, true), cof(g, true), cof(h, true)));
  cache_store(kOpIte, f, g, h, r);
  return r;
}

std::optional<std::vector<bool>> BddManager::satisfy_one(Ref f) const {
  if (f == kFalse) return std::nullopt;
  std::vector<bool> assignment(num_vars_, false);
  while (!is_const(f)) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      assignment[n.var] = true;
      f = n.high;
    } else {
      f = n.low;
    }
  }
  assert(f == kTrue);
  return assignment;
}

double BddManager::sat_count(Ref f) const {
  std::unordered_map<Ref, double> memo;
  // count(f) over variables [top_var(f), num_vars_), then scale.
  auto count = [&](auto&& self, Ref g) -> double {
    if (g == kFalse) return 0.0;
    if (g == kTrue) return 1.0;
    if (auto it = memo.find(g); it != memo.end()) return it->second;
    const Node& n = nodes_[g];
    const double lo =
        self(self, n.low) *
        std::pow(2.0, static_cast<double>(top_var(n.low)) - n.var - 1);
    const double hi =
        self(self, n.high) *
        std::pow(2.0, static_cast<double>(top_var(n.high)) - n.var - 1);
    const double r = lo + hi;
    memo[g] = r;
    return r;
  };
  return count(count, f) * std::pow(2.0, static_cast<double>(top_var(f)));
}

std::size_t BddManager::dag_size(Ref f) const {
  if (is_const(f)) return 0;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  seen.insert(f);
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    for (const Ref child : {nodes_[r].low, nodes_[r].high})
      if (!is_const(child) && seen.insert(child).second)
        stack.push_back(child);
  }
  return seen.size();
}

bool BddManager::uses_var_at_or_above(Ref f, std::uint32_t bound) const {
  if (is_const(f)) return false;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  seen.insert(f);
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (nodes_[r].var >= bound) return true;
    for (const Ref child : {nodes_[r].low, nodes_[r].high})
      if (!is_const(child) && seen.insert(child).second)
        stack.push_back(child);
  }
  return false;
}

bool BddManager::evaluate(Ref f, const std::vector<bool>& assignment) const {
  while (!is_const(f)) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.high : n.low;
  }
  return f == kTrue;
}

}  // namespace simsweep::bdd
