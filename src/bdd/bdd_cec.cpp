#include "bdd/bdd_cec.hpp"

#include "bdd/bdd.hpp"

namespace simsweep::bdd {

BddCecResult bdd_check_miter(const aig::Aig& miter,
                             const BddCecParams& params) {
  Timer t;
  BddCecResult result;
  auto finish = [&](Verdict v, std::size_t nodes) {
    result.verdict = v;
    result.peak_nodes = nodes;
    result.seconds = t.seconds();
    return result;
  };

  BddManager mgr(miter.num_pis(), params.node_limit);
  std::vector<BddManager::Ref> ref(miter.num_nodes(), BddManager::kFalse);
  try {
    for (unsigned i = 0; i < miter.num_pis(); ++i) ref[i + 1] = mgr.var(i);
    auto lit_ref = [&](aig::Lit l) {
      const BddManager::Ref r = ref[aig::lit_var(l)];
      return aig::lit_compl(l) ? mgr.negate(r) : r;
    };
    for (aig::Var v = miter.num_pis() + 1; v < miter.num_nodes(); ++v) {
      ref[v] = mgr.apply_and(lit_ref(miter.fanin0(v)),
                             lit_ref(miter.fanin1(v)));
      if ((v & 0xFF) == 0) {
        if (params.cancel != nullptr &&
            params.cancel->load(std::memory_order_relaxed))
          return finish(Verdict::kUndecided, mgr.num_nodes());
        if (params.time_limit > 0 && t.seconds() > params.time_limit)
          return finish(Verdict::kUndecided, mgr.num_nodes());
      }
    }
    for (aig::Lit po : miter.pos()) {
      const BddManager::Ref r = lit_ref(po);
      if (r != BddManager::kFalse) {
        result.cex = mgr.satisfy_one(r);
        return finish(Verdict::kNotEquivalent, mgr.num_nodes());
      }
    }
    return finish(Verdict::kEquivalent, mgr.num_nodes());
  } catch (const BddOverflow&) {
    return finish(Verdict::kUndecided, mgr.num_nodes());
  }
}

}  // namespace simsweep::bdd
