#pragma once
/// \file bdd.hpp
/// \brief Reduced Ordered Binary Decision Diagrams (Bryant 1986).
///
/// BDDs were the workhorse of early CEC (paper §I) and serve here as a
/// third engine in the portfolio checker. The implementation is a classic
/// unique-table + computed-table ROBDD package without complement edges
/// or garbage collection: nodes live until the manager dies, and a node
/// limit turns the notorious memory blow-up into a clean BddOverflow
/// (callers report kUndecided).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace simsweep::bdd {

/// Thrown when the node limit is exceeded; callers treat the check as
/// undecided.
struct BddOverflow : std::runtime_error {
  BddOverflow() : std::runtime_error("BDD node limit exceeded") {}
};

class BddManager {
 public:
  /// A BDD node reference. 0 = constant false, 1 = constant true.
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  explicit BddManager(unsigned num_vars,
                      std::size_t node_limit = std::size_t{1} << 22);

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// The projection function of variable v (must be < num_vars).
  Ref var(unsigned v);

  Ref apply_and(Ref f, Ref g);
  Ref apply_or(Ref f, Ref g) {
    return negate(apply_and(negate(f), negate(g)));
  }
  Ref apply_xor(Ref f, Ref g);
  Ref negate(Ref f);
  Ref ite(Ref f, Ref g, Ref h);

  bool is_const(Ref f) const { return f <= 1; }

  /// One satisfying assignment (values for all num_vars variables,
  /// unconstrained ones 0), or nullopt if f == false.
  std::optional<std::vector<bool>> satisfy_one(Ref f) const;

  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(Ref f) const;

  /// Evaluates f under a complete assignment.
  bool evaluate(Ref f, const std::vector<bool>& assignment) const;

  /// Number of BDD nodes in the DAG rooted at f (terminals excluded).
  std::size_t dag_size(Ref f) const;

  /// True iff some node of f branches on a variable >= bound (used by
  /// BDD sweeping to detect cutpoint-polluted functions).
  bool uses_var_at_or_above(Ref f, std::uint32_t bound) const;

 private:
  struct Node {
    std::uint32_t var;  ///< branching variable (top-most in the order)
    Ref low, high;
  };

  Ref make_node(std::uint32_t v, Ref low, Ref high);
  std::uint32_t top_var(Ref f) const {
    return is_const(f) ? num_vars_ : nodes_[f].var;
  }

  static std::uint64_t triple_key(std::uint64_t a, std::uint64_t b,
                                  std::uint64_t c) {
    std::uint64_t h = a * 0x9E3779B97F4A7C15ULL;
    h ^= b + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h = h * 0xFF51AFD7ED558CCDULL + c;
    return h;
  }

  /// Direct-mapped operation cache with full-key verification (a plain
  /// hash-keyed map could silently return a wrong node on collision).
  struct CacheEntry {
    std::uint64_t op = ~std::uint64_t{0};
    Ref f = 0, g = 0, h = 0;
    Ref result = 0;
  };
  bool cache_lookup(std::uint64_t op, Ref f, Ref g, Ref h, Ref& out) const;
  void cache_store(std::uint64_t op, Ref f, Ref g, Ref h, Ref result);

  /// Exact-keyed unique table (canonicity must never depend on a hash).
  struct UniqueKey {
    std::uint32_t var;
    Ref low, high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const {
      return static_cast<std::size_t>(
          triple_key(k.var, k.low, k.high));
    }
  };

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;  // [0], [1] are placeholder terminals
  std::unordered_map<UniqueKey, Ref, UniqueKeyHash> unique_;
  std::vector<CacheEntry> cache_;
  std::vector<Ref> var_refs_;
};

}  // namespace simsweep::bdd
