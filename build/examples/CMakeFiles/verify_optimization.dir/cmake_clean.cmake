file(REMOVE_RECURSE
  "CMakeFiles/verify_optimization.dir/verify_optimization.cpp.o"
  "CMakeFiles/verify_optimization.dir/verify_optimization.cpp.o.d"
  "verify_optimization"
  "verify_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
