# Empty dependencies file for engine_anatomy.
# This may be replaced when dependencies are built.
