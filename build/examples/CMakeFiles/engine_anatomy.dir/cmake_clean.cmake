file(REMOVE_RECURSE
  "CMakeFiles/engine_anatomy.dir/engine_anatomy.cpp.o"
  "CMakeFiles/engine_anatomy.dir/engine_anatomy.cpp.o.d"
  "engine_anatomy"
  "engine_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
