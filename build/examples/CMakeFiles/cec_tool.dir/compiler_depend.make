# Empty compiler generated dependencies file for cec_tool.
# This may be replaced when dependencies are built.
