file(REMOVE_RECURSE
  "CMakeFiles/cec_tool.dir/cec_tool.cpp.o"
  "CMakeFiles/cec_tool.dir/cec_tool.cpp.o.d"
  "cec_tool"
  "cec_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cec_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
