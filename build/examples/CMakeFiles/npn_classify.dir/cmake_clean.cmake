file(REMOVE_RECURSE
  "CMakeFiles/npn_classify.dir/npn_classify.cpp.o"
  "CMakeFiles/npn_classify.dir/npn_classify.cpp.o.d"
  "npn_classify"
  "npn_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npn_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
