# Empty dependencies file for npn_classify.
# This may be replaced when dependencies are built.
