# Empty dependencies file for bench_window_merge.
# This may be replaced when dependencies are built.
