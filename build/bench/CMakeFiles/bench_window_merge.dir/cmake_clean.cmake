file(REMOVE_RECURSE
  "CMakeFiles/bench_window_merge.dir/bench_window_merge.cpp.o"
  "CMakeFiles/bench_window_merge.dir/bench_window_merge.cpp.o.d"
  "bench_window_merge"
  "bench_window_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
