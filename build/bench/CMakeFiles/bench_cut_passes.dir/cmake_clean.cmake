file(REMOVE_RECURSE
  "CMakeFiles/bench_cut_passes.dir/bench_cut_passes.cpp.o"
  "CMakeFiles/bench_cut_passes.dir/bench_cut_passes.cpp.o.d"
  "bench_cut_passes"
  "bench_cut_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cut_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
