# Empty compiler generated dependencies file for bench_cut_passes.
# This may be replaced when dependencies are built.
