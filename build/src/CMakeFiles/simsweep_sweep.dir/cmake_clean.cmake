file(REMOVE_RECURSE
  "CMakeFiles/simsweep_sweep.dir/sweep/sat_sweeper.cpp.o"
  "CMakeFiles/simsweep_sweep.dir/sweep/sat_sweeper.cpp.o.d"
  "libsimsweep_sweep.a"
  "libsimsweep_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
