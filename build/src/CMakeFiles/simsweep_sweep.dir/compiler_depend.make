# Empty compiler generated dependencies file for simsweep_sweep.
# This may be replaced when dependencies are built.
