file(REMOVE_RECURSE
  "libsimsweep_sweep.a"
)
