# Empty dependencies file for simsweep_engine.
# This may be replaced when dependencies are built.
