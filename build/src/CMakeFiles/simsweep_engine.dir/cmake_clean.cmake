file(REMOVE_RECURSE
  "CMakeFiles/simsweep_engine.dir/engine/engine.cpp.o"
  "CMakeFiles/simsweep_engine.dir/engine/engine.cpp.o.d"
  "CMakeFiles/simsweep_engine.dir/engine/phase_global.cpp.o"
  "CMakeFiles/simsweep_engine.dir/engine/phase_global.cpp.o.d"
  "CMakeFiles/simsweep_engine.dir/engine/phase_local.cpp.o"
  "CMakeFiles/simsweep_engine.dir/engine/phase_local.cpp.o.d"
  "CMakeFiles/simsweep_engine.dir/engine/phase_po.cpp.o"
  "CMakeFiles/simsweep_engine.dir/engine/phase_po.cpp.o.d"
  "libsimsweep_engine.a"
  "libsimsweep_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
