file(REMOVE_RECURSE
  "libsimsweep_engine.a"
)
