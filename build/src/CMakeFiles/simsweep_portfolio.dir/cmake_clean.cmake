file(REMOVE_RECURSE
  "CMakeFiles/simsweep_portfolio.dir/portfolio/portfolio.cpp.o"
  "CMakeFiles/simsweep_portfolio.dir/portfolio/portfolio.cpp.o.d"
  "libsimsweep_portfolio.a"
  "libsimsweep_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
