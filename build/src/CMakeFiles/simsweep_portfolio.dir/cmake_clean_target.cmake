file(REMOVE_RECURSE
  "libsimsweep_portfolio.a"
)
