# Empty compiler generated dependencies file for simsweep_portfolio.
# This may be replaced when dependencies are built.
