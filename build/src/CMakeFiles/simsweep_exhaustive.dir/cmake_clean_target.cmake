file(REMOVE_RECURSE
  "libsimsweep_exhaustive.a"
)
