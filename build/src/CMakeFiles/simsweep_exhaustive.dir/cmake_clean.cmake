file(REMOVE_RECURSE
  "CMakeFiles/simsweep_exhaustive.dir/exhaustive/exhaustive_sim.cpp.o"
  "CMakeFiles/simsweep_exhaustive.dir/exhaustive/exhaustive_sim.cpp.o.d"
  "libsimsweep_exhaustive.a"
  "libsimsweep_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
