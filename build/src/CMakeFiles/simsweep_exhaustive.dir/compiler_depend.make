# Empty compiler generated dependencies file for simsweep_exhaustive.
# This may be replaced when dependencies are built.
