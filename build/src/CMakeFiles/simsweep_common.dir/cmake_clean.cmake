file(REMOVE_RECURSE
  "CMakeFiles/simsweep_common.dir/common/log.cpp.o"
  "CMakeFiles/simsweep_common.dir/common/log.cpp.o.d"
  "CMakeFiles/simsweep_common.dir/common/random.cpp.o"
  "CMakeFiles/simsweep_common.dir/common/random.cpp.o.d"
  "CMakeFiles/simsweep_common.dir/common/timer.cpp.o"
  "CMakeFiles/simsweep_common.dir/common/timer.cpp.o.d"
  "libsimsweep_common.a"
  "libsimsweep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
