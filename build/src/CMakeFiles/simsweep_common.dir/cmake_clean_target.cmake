file(REMOVE_RECURSE
  "libsimsweep_common.a"
)
