# Empty dependencies file for simsweep_common.
# This may be replaced when dependencies are built.
