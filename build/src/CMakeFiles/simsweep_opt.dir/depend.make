# Empty dependencies file for simsweep_opt.
# This may be replaced when dependencies are built.
