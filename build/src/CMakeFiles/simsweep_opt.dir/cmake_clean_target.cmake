file(REMOVE_RECURSE
  "libsimsweep_opt.a"
)
