file(REMOVE_RECURSE
  "CMakeFiles/simsweep_opt.dir/opt/balance.cpp.o"
  "CMakeFiles/simsweep_opt.dir/opt/balance.cpp.o.d"
  "CMakeFiles/simsweep_opt.dir/opt/exact3.cpp.o"
  "CMakeFiles/simsweep_opt.dir/opt/exact3.cpp.o.d"
  "CMakeFiles/simsweep_opt.dir/opt/isop.cpp.o"
  "CMakeFiles/simsweep_opt.dir/opt/isop.cpp.o.d"
  "CMakeFiles/simsweep_opt.dir/opt/refactor.cpp.o"
  "CMakeFiles/simsweep_opt.dir/opt/refactor.cpp.o.d"
  "CMakeFiles/simsweep_opt.dir/opt/resyn.cpp.o"
  "CMakeFiles/simsweep_opt.dir/opt/resyn.cpp.o.d"
  "libsimsweep_opt.a"
  "libsimsweep_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
