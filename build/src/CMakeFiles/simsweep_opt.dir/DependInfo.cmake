
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/balance.cpp" "src/CMakeFiles/simsweep_opt.dir/opt/balance.cpp.o" "gcc" "src/CMakeFiles/simsweep_opt.dir/opt/balance.cpp.o.d"
  "/root/repo/src/opt/exact3.cpp" "src/CMakeFiles/simsweep_opt.dir/opt/exact3.cpp.o" "gcc" "src/CMakeFiles/simsweep_opt.dir/opt/exact3.cpp.o.d"
  "/root/repo/src/opt/isop.cpp" "src/CMakeFiles/simsweep_opt.dir/opt/isop.cpp.o" "gcc" "src/CMakeFiles/simsweep_opt.dir/opt/isop.cpp.o.d"
  "/root/repo/src/opt/refactor.cpp" "src/CMakeFiles/simsweep_opt.dir/opt/refactor.cpp.o" "gcc" "src/CMakeFiles/simsweep_opt.dir/opt/refactor.cpp.o.d"
  "/root/repo/src/opt/resyn.cpp" "src/CMakeFiles/simsweep_opt.dir/opt/resyn.cpp.o" "gcc" "src/CMakeFiles/simsweep_opt.dir/opt/resyn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simsweep_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_exhaustive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_window.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
