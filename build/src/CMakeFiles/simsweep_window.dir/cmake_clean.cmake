file(REMOVE_RECURSE
  "CMakeFiles/simsweep_window.dir/window/window.cpp.o"
  "CMakeFiles/simsweep_window.dir/window/window.cpp.o.d"
  "CMakeFiles/simsweep_window.dir/window/window_merge.cpp.o"
  "CMakeFiles/simsweep_window.dir/window/window_merge.cpp.o.d"
  "libsimsweep_window.a"
  "libsimsweep_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
