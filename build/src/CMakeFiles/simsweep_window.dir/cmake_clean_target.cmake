file(REMOVE_RECURSE
  "libsimsweep_window.a"
)
