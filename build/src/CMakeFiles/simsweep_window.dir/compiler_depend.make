# Empty compiler generated dependencies file for simsweep_window.
# This may be replaced when dependencies are built.
