# Empty compiler generated dependencies file for simsweep_parallel.
# This may be replaced when dependencies are built.
