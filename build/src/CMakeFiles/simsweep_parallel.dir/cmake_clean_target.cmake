file(REMOVE_RECURSE
  "libsimsweep_parallel.a"
)
