file(REMOVE_RECURSE
  "CMakeFiles/simsweep_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/simsweep_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libsimsweep_parallel.a"
  "libsimsweep_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
