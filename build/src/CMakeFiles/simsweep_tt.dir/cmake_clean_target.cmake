file(REMOVE_RECURSE
  "libsimsweep_tt.a"
)
