# Empty compiler generated dependencies file for simsweep_tt.
# This may be replaced when dependencies are built.
