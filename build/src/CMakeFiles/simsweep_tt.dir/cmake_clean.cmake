file(REMOVE_RECURSE
  "CMakeFiles/simsweep_tt.dir/tt/npn.cpp.o"
  "CMakeFiles/simsweep_tt.dir/tt/npn.cpp.o.d"
  "CMakeFiles/simsweep_tt.dir/tt/truth_table.cpp.o"
  "CMakeFiles/simsweep_tt.dir/tt/truth_table.cpp.o.d"
  "libsimsweep_tt.a"
  "libsimsweep_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
