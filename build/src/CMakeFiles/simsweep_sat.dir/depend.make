# Empty dependencies file for simsweep_sat.
# This may be replaced when dependencies are built.
