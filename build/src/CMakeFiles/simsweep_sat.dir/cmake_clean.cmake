file(REMOVE_RECURSE
  "CMakeFiles/simsweep_sat.dir/sat/dimacs.cpp.o"
  "CMakeFiles/simsweep_sat.dir/sat/dimacs.cpp.o.d"
  "CMakeFiles/simsweep_sat.dir/sat/solver.cpp.o"
  "CMakeFiles/simsweep_sat.dir/sat/solver.cpp.o.d"
  "libsimsweep_sat.a"
  "libsimsweep_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
