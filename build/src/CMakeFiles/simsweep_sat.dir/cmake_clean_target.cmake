file(REMOVE_RECURSE
  "libsimsweep_sat.a"
)
