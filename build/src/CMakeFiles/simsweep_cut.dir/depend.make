# Empty dependencies file for simsweep_cut.
# This may be replaced when dependencies are built.
