file(REMOVE_RECURSE
  "libsimsweep_cut.a"
)
