file(REMOVE_RECURSE
  "CMakeFiles/simsweep_cut.dir/cut/checking_pass.cpp.o"
  "CMakeFiles/simsweep_cut.dir/cut/checking_pass.cpp.o.d"
  "CMakeFiles/simsweep_cut.dir/cut/common_cuts.cpp.o"
  "CMakeFiles/simsweep_cut.dir/cut/common_cuts.cpp.o.d"
  "CMakeFiles/simsweep_cut.dir/cut/cut_enum.cpp.o"
  "CMakeFiles/simsweep_cut.dir/cut/cut_enum.cpp.o.d"
  "CMakeFiles/simsweep_cut.dir/cut/cut_set.cpp.o"
  "CMakeFiles/simsweep_cut.dir/cut/cut_set.cpp.o.d"
  "libsimsweep_cut.a"
  "libsimsweep_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
