
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cut/checking_pass.cpp" "src/CMakeFiles/simsweep_cut.dir/cut/checking_pass.cpp.o" "gcc" "src/CMakeFiles/simsweep_cut.dir/cut/checking_pass.cpp.o.d"
  "/root/repo/src/cut/common_cuts.cpp" "src/CMakeFiles/simsweep_cut.dir/cut/common_cuts.cpp.o" "gcc" "src/CMakeFiles/simsweep_cut.dir/cut/common_cuts.cpp.o.d"
  "/root/repo/src/cut/cut_enum.cpp" "src/CMakeFiles/simsweep_cut.dir/cut/cut_enum.cpp.o" "gcc" "src/CMakeFiles/simsweep_cut.dir/cut/cut_enum.cpp.o.d"
  "/root/repo/src/cut/cut_set.cpp" "src/CMakeFiles/simsweep_cut.dir/cut/cut_set.cpp.o" "gcc" "src/CMakeFiles/simsweep_cut.dir/cut/cut_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simsweep_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_exhaustive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_window.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
