file(REMOVE_RECURSE
  "CMakeFiles/simsweep_bdd.dir/bdd/bdd.cpp.o"
  "CMakeFiles/simsweep_bdd.dir/bdd/bdd.cpp.o.d"
  "CMakeFiles/simsweep_bdd.dir/bdd/bdd_cec.cpp.o"
  "CMakeFiles/simsweep_bdd.dir/bdd/bdd_cec.cpp.o.d"
  "CMakeFiles/simsweep_bdd.dir/bdd/bdd_sweep.cpp.o"
  "CMakeFiles/simsweep_bdd.dir/bdd/bdd_sweep.cpp.o.d"
  "libsimsweep_bdd.a"
  "libsimsweep_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
