# Empty dependencies file for simsweep_bdd.
# This may be replaced when dependencies are built.
