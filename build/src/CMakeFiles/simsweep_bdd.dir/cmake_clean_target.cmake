file(REMOVE_RECURSE
  "libsimsweep_bdd.a"
)
