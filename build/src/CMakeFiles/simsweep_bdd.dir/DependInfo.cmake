
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/bdd.cpp" "src/CMakeFiles/simsweep_bdd.dir/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/simsweep_bdd.dir/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/bdd_cec.cpp" "src/CMakeFiles/simsweep_bdd.dir/bdd/bdd_cec.cpp.o" "gcc" "src/CMakeFiles/simsweep_bdd.dir/bdd/bdd_cec.cpp.o.d"
  "/root/repo/src/bdd/bdd_sweep.cpp" "src/CMakeFiles/simsweep_bdd.dir/bdd/bdd_sweep.cpp.o" "gcc" "src/CMakeFiles/simsweep_bdd.dir/bdd/bdd_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simsweep_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
