file(REMOVE_RECURSE
  "CMakeFiles/simsweep_gen.dir/gen/arith.cpp.o"
  "CMakeFiles/simsweep_gen.dir/gen/arith.cpp.o.d"
  "CMakeFiles/simsweep_gen.dir/gen/arith2.cpp.o"
  "CMakeFiles/simsweep_gen.dir/gen/arith2.cpp.o.d"
  "CMakeFiles/simsweep_gen.dir/gen/control.cpp.o"
  "CMakeFiles/simsweep_gen.dir/gen/control.cpp.o.d"
  "CMakeFiles/simsweep_gen.dir/gen/suite.cpp.o"
  "CMakeFiles/simsweep_gen.dir/gen/suite.cpp.o.d"
  "CMakeFiles/simsweep_gen.dir/gen/transforms.cpp.o"
  "CMakeFiles/simsweep_gen.dir/gen/transforms.cpp.o.d"
  "libsimsweep_gen.a"
  "libsimsweep_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
