file(REMOVE_RECURSE
  "libsimsweep_gen.a"
)
