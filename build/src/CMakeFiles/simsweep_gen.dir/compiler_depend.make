# Empty compiler generated dependencies file for simsweep_gen.
# This may be replaced when dependencies are built.
