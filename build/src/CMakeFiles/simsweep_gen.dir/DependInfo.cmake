
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/arith.cpp" "src/CMakeFiles/simsweep_gen.dir/gen/arith.cpp.o" "gcc" "src/CMakeFiles/simsweep_gen.dir/gen/arith.cpp.o.d"
  "/root/repo/src/gen/arith2.cpp" "src/CMakeFiles/simsweep_gen.dir/gen/arith2.cpp.o" "gcc" "src/CMakeFiles/simsweep_gen.dir/gen/arith2.cpp.o.d"
  "/root/repo/src/gen/control.cpp" "src/CMakeFiles/simsweep_gen.dir/gen/control.cpp.o" "gcc" "src/CMakeFiles/simsweep_gen.dir/gen/control.cpp.o.d"
  "/root/repo/src/gen/suite.cpp" "src/CMakeFiles/simsweep_gen.dir/gen/suite.cpp.o" "gcc" "src/CMakeFiles/simsweep_gen.dir/gen/suite.cpp.o.d"
  "/root/repo/src/gen/transforms.cpp" "src/CMakeFiles/simsweep_gen.dir/gen/transforms.cpp.o" "gcc" "src/CMakeFiles/simsweep_gen.dir/gen/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simsweep_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_exhaustive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_window.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
