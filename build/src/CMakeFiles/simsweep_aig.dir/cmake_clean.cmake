file(REMOVE_RECURSE
  "CMakeFiles/simsweep_aig.dir/aig/aig.cpp.o"
  "CMakeFiles/simsweep_aig.dir/aig/aig.cpp.o.d"
  "CMakeFiles/simsweep_aig.dir/aig/aig_analysis.cpp.o"
  "CMakeFiles/simsweep_aig.dir/aig/aig_analysis.cpp.o.d"
  "CMakeFiles/simsweep_aig.dir/aig/aig_io.cpp.o"
  "CMakeFiles/simsweep_aig.dir/aig/aig_io.cpp.o.d"
  "CMakeFiles/simsweep_aig.dir/aig/aig_utils.cpp.o"
  "CMakeFiles/simsweep_aig.dir/aig/aig_utils.cpp.o.d"
  "CMakeFiles/simsweep_aig.dir/aig/cex.cpp.o"
  "CMakeFiles/simsweep_aig.dir/aig/cex.cpp.o.d"
  "CMakeFiles/simsweep_aig.dir/aig/miter.cpp.o"
  "CMakeFiles/simsweep_aig.dir/aig/miter.cpp.o.d"
  "CMakeFiles/simsweep_aig.dir/aig/rebuild.cpp.o"
  "CMakeFiles/simsweep_aig.dir/aig/rebuild.cpp.o.d"
  "libsimsweep_aig.a"
  "libsimsweep_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
