
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aig/aig.cpp" "src/CMakeFiles/simsweep_aig.dir/aig/aig.cpp.o" "gcc" "src/CMakeFiles/simsweep_aig.dir/aig/aig.cpp.o.d"
  "/root/repo/src/aig/aig_analysis.cpp" "src/CMakeFiles/simsweep_aig.dir/aig/aig_analysis.cpp.o" "gcc" "src/CMakeFiles/simsweep_aig.dir/aig/aig_analysis.cpp.o.d"
  "/root/repo/src/aig/aig_io.cpp" "src/CMakeFiles/simsweep_aig.dir/aig/aig_io.cpp.o" "gcc" "src/CMakeFiles/simsweep_aig.dir/aig/aig_io.cpp.o.d"
  "/root/repo/src/aig/aig_utils.cpp" "src/CMakeFiles/simsweep_aig.dir/aig/aig_utils.cpp.o" "gcc" "src/CMakeFiles/simsweep_aig.dir/aig/aig_utils.cpp.o.d"
  "/root/repo/src/aig/cex.cpp" "src/CMakeFiles/simsweep_aig.dir/aig/cex.cpp.o" "gcc" "src/CMakeFiles/simsweep_aig.dir/aig/cex.cpp.o.d"
  "/root/repo/src/aig/miter.cpp" "src/CMakeFiles/simsweep_aig.dir/aig/miter.cpp.o" "gcc" "src/CMakeFiles/simsweep_aig.dir/aig/miter.cpp.o.d"
  "/root/repo/src/aig/rebuild.cpp" "src/CMakeFiles/simsweep_aig.dir/aig/rebuild.cpp.o" "gcc" "src/CMakeFiles/simsweep_aig.dir/aig/rebuild.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simsweep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_tt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
