file(REMOVE_RECURSE
  "libsimsweep_aig.a"
)
