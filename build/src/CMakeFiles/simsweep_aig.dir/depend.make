# Empty dependencies file for simsweep_aig.
# This may be replaced when dependencies are built.
