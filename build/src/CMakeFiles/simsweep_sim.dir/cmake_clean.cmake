file(REMOVE_RECURSE
  "CMakeFiles/simsweep_sim.dir/sim/ec_manager.cpp.o"
  "CMakeFiles/simsweep_sim.dir/sim/ec_manager.cpp.o.d"
  "CMakeFiles/simsweep_sim.dir/sim/partial_sim.cpp.o"
  "CMakeFiles/simsweep_sim.dir/sim/partial_sim.cpp.o.d"
  "CMakeFiles/simsweep_sim.dir/sim/quality_patterns.cpp.o"
  "CMakeFiles/simsweep_sim.dir/sim/quality_patterns.cpp.o.d"
  "libsimsweep_sim.a"
  "libsimsweep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
