file(REMOVE_RECURSE
  "libsimsweep_sim.a"
)
