# Empty dependencies file for simsweep_sim.
# This may be replaced when dependencies are built.
