file(REMOVE_RECURSE
  "CMakeFiles/simsweep_cnf.dir/cnf/tseitin.cpp.o"
  "CMakeFiles/simsweep_cnf.dir/cnf/tseitin.cpp.o.d"
  "libsimsweep_cnf.a"
  "libsimsweep_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
