# Empty dependencies file for simsweep_cnf.
# This may be replaced when dependencies are built.
