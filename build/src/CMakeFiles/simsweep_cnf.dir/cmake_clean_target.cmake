file(REMOVE_RECURSE
  "libsimsweep_cnf.a"
)
