file(REMOVE_RECURSE
  "CMakeFiles/test_exact3.dir/test_exact3.cpp.o"
  "CMakeFiles/test_exact3.dir/test_exact3.cpp.o.d"
  "test_exact3"
  "test_exact3.pdb"
  "test_exact3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
