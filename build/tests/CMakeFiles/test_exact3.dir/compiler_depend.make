# Empty compiler generated dependencies file for test_exact3.
# This may be replaced when dependencies are built.
