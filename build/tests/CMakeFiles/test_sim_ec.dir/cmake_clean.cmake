file(REMOVE_RECURSE
  "CMakeFiles/test_sim_ec.dir/test_sim_ec.cpp.o"
  "CMakeFiles/test_sim_ec.dir/test_sim_ec.cpp.o.d"
  "test_sim_ec"
  "test_sim_ec.pdb"
  "test_sim_ec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
