# Empty dependencies file for test_sim_ec.
# This may be replaced when dependencies are built.
