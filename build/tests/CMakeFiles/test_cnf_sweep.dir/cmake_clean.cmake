file(REMOVE_RECURSE
  "CMakeFiles/test_cnf_sweep.dir/test_cnf_sweep.cpp.o"
  "CMakeFiles/test_cnf_sweep.dir/test_cnf_sweep.cpp.o.d"
  "test_cnf_sweep"
  "test_cnf_sweep.pdb"
  "test_cnf_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cnf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
