# Empty compiler generated dependencies file for test_cnf_sweep.
# This may be replaced when dependencies are built.
