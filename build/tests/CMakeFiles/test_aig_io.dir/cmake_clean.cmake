file(REMOVE_RECURSE
  "CMakeFiles/test_aig_io.dir/test_aig_io.cpp.o"
  "CMakeFiles/test_aig_io.dir/test_aig_io.cpp.o.d"
  "test_aig_io"
  "test_aig_io.pdb"
  "test_aig_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aig_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
