# Empty dependencies file for test_aig_io.
# This may be replaced when dependencies are built.
