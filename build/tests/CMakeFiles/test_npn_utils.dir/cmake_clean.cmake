file(REMOVE_RECURSE
  "CMakeFiles/test_npn_utils.dir/test_npn_utils.cpp.o"
  "CMakeFiles/test_npn_utils.dir/test_npn_utils.cpp.o.d"
  "test_npn_utils"
  "test_npn_utils.pdb"
  "test_npn_utils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npn_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
