
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/test_gen.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/test_gen.dir/test_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simsweep_portfolio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_exhaustive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_window.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simsweep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
