file(REMOVE_RECURSE
  "CMakeFiles/test_cut.dir/test_cut.cpp.o"
  "CMakeFiles/test_cut.dir/test_cut.cpp.o.d"
  "test_cut"
  "test_cut.pdb"
  "test_cut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
