# Empty compiler generated dependencies file for test_cut.
# This may be replaced when dependencies are built.
