# Empty dependencies file for test_miter_rebuild.
# This may be replaced when dependencies are built.
