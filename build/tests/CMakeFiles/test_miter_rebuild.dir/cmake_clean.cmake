file(REMOVE_RECURSE
  "CMakeFiles/test_miter_rebuild.dir/test_miter_rebuild.cpp.o"
  "CMakeFiles/test_miter_rebuild.dir/test_miter_rebuild.cpp.o.d"
  "test_miter_rebuild"
  "test_miter_rebuild.pdb"
  "test_miter_rebuild[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miter_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
