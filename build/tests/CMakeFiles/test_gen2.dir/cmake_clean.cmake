file(REMOVE_RECURSE
  "CMakeFiles/test_gen2.dir/test_gen2.cpp.o"
  "CMakeFiles/test_gen2.dir/test_gen2.cpp.o.d"
  "test_gen2"
  "test_gen2.pdb"
  "test_gen2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
