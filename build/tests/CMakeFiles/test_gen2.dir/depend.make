# Empty dependencies file for test_gen2.
# This may be replaced when dependencies are built.
