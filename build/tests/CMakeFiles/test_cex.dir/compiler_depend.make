# Empty compiler generated dependencies file for test_cex.
# This may be replaced when dependencies are built.
