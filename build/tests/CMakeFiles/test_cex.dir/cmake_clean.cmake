file(REMOVE_RECURSE
  "CMakeFiles/test_cex.dir/test_cex.cpp.o"
  "CMakeFiles/test_cex.dir/test_cex.cpp.o.d"
  "test_cex"
  "test_cex.pdb"
  "test_cex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
