file(REMOVE_RECURSE
  "CMakeFiles/test_tt.dir/test_tt.cpp.o"
  "CMakeFiles/test_tt.dir/test_tt.cpp.o.d"
  "test_tt"
  "test_tt.pdb"
  "test_tt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
