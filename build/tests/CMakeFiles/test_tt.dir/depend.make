# Empty dependencies file for test_tt.
# This may be replaced when dependencies are built.
