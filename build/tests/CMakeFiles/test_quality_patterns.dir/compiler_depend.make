# Empty compiler generated dependencies file for test_quality_patterns.
# This may be replaced when dependencies are built.
