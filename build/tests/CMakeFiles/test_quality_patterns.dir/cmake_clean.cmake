file(REMOVE_RECURSE
  "CMakeFiles/test_quality_patterns.dir/test_quality_patterns.cpp.o"
  "CMakeFiles/test_quality_patterns.dir/test_quality_patterns.cpp.o.d"
  "test_quality_patterns"
  "test_quality_patterns.pdb"
  "test_quality_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quality_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
