file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_sweep.dir/test_bdd_sweep.cpp.o"
  "CMakeFiles/test_bdd_sweep.dir/test_bdd_sweep.cpp.o.d"
  "test_bdd_sweep"
  "test_bdd_sweep.pdb"
  "test_bdd_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
