# Empty dependencies file for test_bdd_sweep.
# This may be replaced when dependencies are built.
