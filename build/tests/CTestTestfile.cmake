# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tt[1]_include.cmake")
include("/root/repo/build/tests/test_aig[1]_include.cmake")
include("/root/repo/build/tests/test_aig_io[1]_include.cmake")
include("/root/repo/build/tests/test_miter_rebuild[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_sim_ec[1]_include.cmake")
include("/root/repo/build/tests/test_window[1]_include.cmake")
include("/root/repo/build/tests/test_exhaustive[1]_include.cmake")
include("/root/repo/build/tests/test_cut[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_cnf_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_portfolio[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_gen2[1]_include.cmake")
include("/root/repo/build/tests/test_npn_utils[1]_include.cmake")
include("/root/repo/build/tests/test_quality_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_bdd_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_cex[1]_include.cmake")
include("/root/repo/build/tests/test_exact3[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
