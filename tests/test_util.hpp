#pragma once
/// \file test_util.hpp
/// \brief Shared helpers for the SimSweep test suite.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_analysis.hpp"
#include "common/random.hpp"

namespace simsweep::testutil {

/// A random AIG: each AND node combines two random existing literals with
/// random complementation; `num_pos` random literals become POs.
/// Deterministic for a seed. Structural hashing may make the result
/// smaller than num_ands.
inline aig::Aig random_aig(unsigned num_pis, unsigned num_ands,
                           unsigned num_pos, std::uint64_t seed) {
  Rng rng(seed);
  aig::Aig a(num_pis);
  std::vector<aig::Lit> lits;
  for (unsigned i = 0; i < num_pis; ++i) lits.push_back(a.pi_lit(i));
  for (unsigned i = 0; i < num_ands; ++i) {
    const aig::Lit x =
        aig::lit_notcond(lits[rng.below(lits.size())], rng.flip());
    const aig::Lit y =
        aig::lit_notcond(lits[rng.below(lits.size())], rng.flip());
    const aig::Lit g = a.add_and(x, y);
    if (aig::lit_var(g) != 0) lits.push_back(g);
  }
  for (unsigned i = 0; i < num_pos; ++i)
    a.add_po(aig::lit_notcond(lits[rng.below(lits.size())], rng.flip()));
  return a;
}

/// Flips the complement of one AND fanin — a classic "introduced bug"
/// that usually (not always) changes the function.
inline aig::Aig mutate(const aig::Aig& src, std::uint64_t seed) {
  Rng rng(seed);
  aig::Aig dst(src.num_pis());
  const aig::Var victim = static_cast<aig::Var>(
      src.num_pis() + 1 + rng.below(src.num_ands()));
  std::vector<aig::Lit> lit_of(src.num_nodes());
  lit_of[0] = aig::kLitFalse;
  for (unsigned i = 0; i < src.num_pis(); ++i)
    lit_of[i + 1] = dst.pi_lit(i);
  for (aig::Var v = src.num_pis() + 1; v < src.num_nodes(); ++v) {
    aig::Lit f0 = src.fanin0(v), f1 = src.fanin1(v);
    if (v == victim) f0 = aig::lit_not(f0);
    lit_of[v] = dst.add_and(
        aig::lit_notcond(lit_of[aig::lit_var(f0)], aig::lit_compl(f0)),
        aig::lit_notcond(lit_of[aig::lit_var(f1)], aig::lit_compl(f1)));
  }
  for (aig::Lit po : src.pos())
    dst.add_po(
        aig::lit_notcond(lit_of[aig::lit_var(po)], aig::lit_compl(po)));
  return dst;
}

/// Evaluates one literal of `a` under the PI assignment encoded in the
/// bits of `pattern`.
inline bool eval_lit(const aig::Aig& a, aig::Lit lit, std::uint64_t pattern) {
  std::vector<bool> pis(a.num_pis());
  for (unsigned i = 0; i < a.num_pis(); ++i) pis[i] = (pattern >> i) & 1;
  return a.evaluate_lit(lit, pis);
}

}  // namespace simsweep::testutil
