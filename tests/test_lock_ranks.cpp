/// \file test_lock_ranks.cpp
/// \brief Runtime lock-rank checker (DESIGN.md §2.6).
///
/// Clang's -Wthread-safety-beta proves rank inversions impossible at
/// compile time via the acquired_after edges on the lock_ranks anchors;
/// this suite covers the *runtime* shadow checker that enforces the same
/// total order on GCC-only hosts (kThrow mode here so violations are
/// observable as exceptions instead of aborts).

#include "common/lock_ranks.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

namespace simsweep::common {
namespace {

/// Installs kThrow enforcement for one test; restores the previous mode.
class ScopedThrowEnforcement {
 public:
  ScopedThrowEnforcement()
      : prev_(lock_ranks::enforcement()) {
    lock_ranks::set_enforcement(lock_ranks::Enforcement::kThrow);
  }
  ~ScopedThrowEnforcement() { lock_ranks::set_enforcement(prev_); }

 private:
  lock_ranks::Enforcement prev_;
};

TEST(LockRanks, ToStringNamesEveryRank) {
  EXPECT_STREQ(to_string(LockRank::kService), "service");
  EXPECT_STREQ(to_string(LockRank::kPool), "pool");
  EXPECT_STREQ(to_string(LockRank::kExecutor), "executor");
  EXPECT_STREQ(to_string(LockRank::kBoard), "board");
  EXPECT_STREQ(to_string(LockRank::kCexBank), "cex_bank");
  EXPECT_STREQ(to_string(LockRank::kRegistry), "registry");
  EXPECT_STREQ(to_string(LockRank::kFault), "fault");
  EXPECT_STREQ(to_string(LockRank::kLog), "log");
}

TEST(LockRanks, AnchorsCarryTheirRank) {
  EXPECT_EQ(lock_ranks::service.rank(), LockRank::kService);
  EXPECT_EQ(lock_ranks::pool.rank(), LockRank::kPool);
  EXPECT_EQ(lock_ranks::log.rank(), LockRank::kLog);
}

TEST(LockRanks, ServiceIsTheOutermostRank) {
  // The batch service's scheduler mutex nests OUTSIDE everything: a
  // service worker holds it while consulting the fault registry
  // (admission/cache drills) and job code takes every other rank after
  // the scheduler released. service -> pool must be legal ascent...
  ScopedThrowEnforcement mode;
  Mutex svc_mu, pool_mu;
  EXPECT_NO_THROW({
    RankedMutexLock a(svc_mu, lock_ranks::service);
    RankedMutexLock b(pool_mu, lock_ranks::pool);
  });
  // ...and pool -> service the forbidden inversion.
  Mutex pool2, svc2;
  RankedMutexLock outer(pool2, lock_ranks::pool);
  EXPECT_THROW(RankedMutexLock inner(svc2, lock_ranks::service),
               std::logic_error);
}

TEST(LockRanks, AscendingNestingIsLegal) {
  ScopedThrowEnforcement mode;
  Mutex outer, mid, inner;
  EXPECT_NO_THROW({
    RankedMutexLock a(outer, lock_ranks::pool);
    RankedMutexLock b(mid, lock_ranks::board);
    RankedMutexLock c(inner, lock_ranks::log);
  });
}

TEST(LockRanks, ReacquiringAfterReleaseIsLegal) {
  ScopedThrowEnforcement mode;
  Mutex m;
  EXPECT_NO_THROW({
    { RankedMutexLock a(m, lock_ranks::registry); }
    { RankedMutexLock b(m, lock_ranks::registry); }
  });
}

TEST(LockRanks, InversionThrows) {
  ScopedThrowEnforcement mode;
  Mutex board_mu, executor_mu;
  // The deliberate inversion of the acceptance criterion: board before
  // executor. Clang rejects the same nesting at compile time
  // (tests/compile_fail/lock_rank_inversion.cpp); the runtime checker is
  // the GCC-host equivalent.
  RankedMutexLock outer(board_mu, lock_ranks::board);
  EXPECT_THROW(RankedMutexLock inner(executor_mu, lock_ranks::executor),
               std::logic_error);
}

TEST(LockRanks, SameRankNestingThrows) {
  ScopedThrowEnforcement mode;
  Mutex a, b;
  // Two board-rank locks may never nest (no defined order between two
  // EquivBoards), so the checker requires STRICT ascent.
  RankedMutexLock outer(a, lock_ranks::board);
  EXPECT_THROW(RankedMutexLock inner(b, lock_ranks::board),
               std::logic_error);
}

TEST(LockRanks, ViolationMessageNamesBothRanks) {
  ScopedThrowEnforcement mode;
  Mutex log_mu, pool_mu;
  RankedMutexLock outer(log_mu, lock_ranks::log);
  try {
    RankedMutexLock inner(pool_mu, lock_ranks::pool);
    FAIL() << "inversion not detected";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'pool'"), std::string::npos) << what;
    EXPECT_NE(what.find("'log'"), std::string::npos) << what;
  }
}

TEST(LockRanks, HeldRanksAreThreadLocal) {
  ScopedThrowEnforcement mode;
  Mutex log_mu, pool_mu;
  RankedMutexLock outer(log_mu, lock_ranks::log);
  // Another thread holds nothing, so acquiring the lowest rank there is
  // legal even while this thread sits at the top of the order.
  std::exception_ptr error;
  std::thread peer([&] {
    try {
      RankedMutexLock lock(pool_mu, lock_ranks::pool);
    } catch (...) {
      error = std::current_exception();
    }
  });
  peer.join();
  EXPECT_FALSE(error);
}

TEST(LockRanks, OffModeDisablesChecking) {
  const lock_ranks::Enforcement prev = lock_ranks::enforcement();
  lock_ranks::set_enforcement(lock_ranks::Enforcement::kOff);
  Mutex log_mu, pool_mu;
  EXPECT_NO_THROW({
    RankedMutexLock outer(log_mu, lock_ranks::log);
    RankedMutexLock inner(pool_mu, lock_ranks::pool);
  });
  lock_ranks::set_enforcement(prev);
}

}  // namespace
}  // namespace simsweep::common
