/// \file test_npn_utils.cpp
/// \brief Tests for NPN canonization and the AIG reporting utilities.

#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig_utils.hpp"
#include "common/random.hpp"
#include "gen/arith.hpp"
#include "tt/npn.hpp"

namespace simsweep {
namespace {

TEST(Npn, ApplyIdentity) {
  const tt::NpnTransform id;
  for (tt::Word f : {0x8u, 0x6u, 0xCAu})
    EXPECT_EQ(tt::npn_apply(f, 3, id), f & tt::word_mask(3));
}

TEST(Npn, ApplyPermutationSwapsVariables) {
  // f = x0 over 2 vars (table 1010); swapping variables gives x1 (1100).
  tt::NpnTransform t;
  t.perm = {1, 0, 2, 3, 4, 5};
  EXPECT_EQ(tt::npn_apply(0b1010, 2, t), 0b1100u);
}

TEST(Npn, ApplyInputNegation) {
  // f = x0 (1010); negating input 0 gives !x0 (0101).
  tt::NpnTransform t;
  t.input_neg = 1;
  EXPECT_EQ(tt::npn_apply(0b1010, 2, t), 0b0101u);
}

TEST(Npn, ApplyOutputNegation) {
  tt::NpnTransform t;
  t.output_neg = true;
  EXPECT_EQ(tt::npn_apply(0b1000, 2, t), 0b0111u);
}

TEST(Npn, CanonizeEquivalentFunctionsAgree) {
  // AND-like functions of 2 variables: all NPN-equivalent to each other.
  const tt::Word and2 = 0b1000, or2 = 0b1110, nand2 = 0b0111;
  const tt::Word with_neg_in = 0b0100;  // x0 & !x1
  const auto c1 = tt::npn_canonize(and2, 2);
  EXPECT_EQ(tt::npn_canonize(or2, 2).canon, c1.canon);
  EXPECT_EQ(tt::npn_canonize(nand2, 2).canon, c1.canon);
  EXPECT_EQ(tt::npn_canonize(with_neg_in, 2).canon, c1.canon);
  // XOR is in a different class.
  EXPECT_NE(tt::npn_canonize(0b0110, 2).canon, c1.canon);
}

TEST(Npn, TransformMapsOntoCanon) {
  Rng rng(55);
  for (unsigned k : {2u, 3u, 4u}) {
    for (int trial = 0; trial < 20; ++trial) {
      const tt::Word f = rng.next64() & tt::word_mask(k);
      const tt::NpnCanon c = tt::npn_canonize(f, k);
      EXPECT_EQ(tt::npn_apply(f, k, c.transform), c.canon);
    }
  }
}

TEST(Npn, InverseRoundTrip) {
  Rng rng(56);
  for (unsigned k : {2u, 3u, 4u}) {
    for (int trial = 0; trial < 20; ++trial) {
      const tt::Word f = rng.next64() & tt::word_mask(k);
      tt::NpnTransform t;
      // Random transform.
      std::array<std::uint8_t, 6> p{0, 1, 2, 3, 4, 5};
      for (unsigned j = k; j-- > 1;)
        std::swap(p[j], p[rng.below(j + 1)]);
      t.perm = p;
      t.input_neg = static_cast<std::uint8_t>(rng.below(1u << k));
      t.output_neg = rng.flip();
      const tt::Word g = tt::npn_apply(f, k, t);
      EXPECT_EQ(tt::npn_apply(g, k, tt::npn_inverse(t, k)), f);
    }
  }
}

TEST(Npn, CanonizationIsClassInvariant) {
  // Canonizing any transformed version of f yields the same canon.
  Rng rng(57);
  const unsigned k = 3;
  const tt::Word f = rng.next64() & tt::word_mask(k);
  const tt::Word canon = tt::npn_canonize(f, k).canon;
  for (int trial = 0; trial < 30; ++trial) {
    tt::NpnTransform t;
    std::array<std::uint8_t, 6> p{0, 1, 2, 3, 4, 5};
    for (unsigned j = k; j-- > 1;) std::swap(p[j], p[rng.below(j + 1)]);
    t.perm = p;
    t.input_neg = static_cast<std::uint8_t>(rng.below(1u << k));
    t.output_neg = rng.flip();
    EXPECT_EQ(tt::npn_canonize(tt::npn_apply(f, k, t), k).canon, canon);
  }
}

TEST(Npn, TextbookClassCounts) {
  // Known values: 2 classes of 1-var funcs... enumerated: k=0:2 funcs->?
  // Standard results: k=2 -> 4 classes, k=3 -> 14, k=4 -> 222.
  EXPECT_EQ(tt::npn_class_count(2), 4u);
  EXPECT_EQ(tt::npn_class_count(3), 14u);
}

TEST(NpnSlow, FourVariableClassesAre222) {
  EXPECT_EQ(tt::npn_class_count(4), 222u);
}

TEST(AigUtils, Stats) {
  const aig::Aig a = gen::ripple_adder(4);
  const aig::AigStats s = aig::compute_stats(a);
  EXPECT_EQ(s.num_pis, 8u);
  EXPECT_EQ(s.num_pos, 5u);
  EXPECT_EQ(s.num_ands, a.num_ands());
  EXPECT_GT(s.max_level, 3u);
  EXPECT_EQ(s.num_dangling, 0u);
  EXPECT_GT(s.avg_fanout, 0.9);
  EXPECT_NE(aig::stats_line(a).find("pi=8"), std::string::npos);
}

TEST(AigUtils, StatsCountsDanglingAndConstPos) {
  aig::Aig a(2);
  a.add_and(a.pi_lit(0), a.pi_lit(1));  // dangling
  a.add_po(aig::kLitFalse);
  const aig::AigStats s = aig::compute_stats(a);
  EXPECT_EQ(s.num_dangling, 1u);
  EXPECT_EQ(s.num_const_pos, 1u);
}

TEST(AigUtils, DotExport) {
  aig::Aig a(2);
  const aig::Lit g = a.add_and(a.pi_lit(0), aig::lit_not(a.pi_lit(1)));
  a.add_po(aig::lit_not(g));
  std::ostringstream os;
  aig::write_dot(a, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph aig"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

}  // namespace
}  // namespace simsweep
