/// \file test_exact3.cpp
/// \brief Tests for 3-input exact synthesis and exact rewriting.

#include "opt/exact3.hpp"

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "test_util.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::opt {
namespace {

using aig::Aig;

/// Evaluates the 8-bit truth table of an implementation by instantiating
/// it over fresh PIs.
std::uint8_t realized_tt(const Exact3Db& db, std::uint8_t func) {
  Aig a(3);
  const aig::Lit out =
      db.instantiate(a, func, {a.pi_lit(0), a.pi_lit(1), a.pi_lit(2)});
  std::uint8_t tt = 0;
  for (unsigned p = 0; p < 8; ++p)
    tt |= static_cast<std::uint8_t>(testutil::eval_lit(a, out, p)) << p;
  return tt;
}

TEST(Exact3, AllFunctionsRealizedCorrectly) {
  const Exact3Db& db = Exact3Db::instance();
  for (unsigned f = 0; f < 256; ++f)
    ASSERT_EQ(realized_tt(db, static_cast<std::uint8_t>(f)), f)
        << "function " << f;
}

TEST(Exact3, KnownCosts) {
  const Exact3Db& db = Exact3Db::instance();
  EXPECT_EQ(db.cost(0x00), 0u);  // constants
  EXPECT_EQ(db.cost(0xFF), 0u);
  EXPECT_EQ(db.cost(0xAA), 0u);  // projections, either polarity
  EXPECT_EQ(db.cost(0x55), 0u);
  EXPECT_EQ(db.cost(0xAA & 0xCC), 1u);  // x0 & x1
  EXPECT_EQ(db.cost(0xAA | 0xCC), 1u);  // x0 | x1 (complement of an AND)
  EXPECT_EQ(db.cost(0x80), 2u);         // x0 & x1 & x2
  EXPECT_EQ(db.cost(0xAA ^ 0xCC), 3u);  // 2-input XOR
  // 3-input XOR: tree cost is 9, but strash re-shares the inner XOR,
  // realizing the textbook 6-AND implementation.
  EXPECT_EQ(db.cost(0xAA ^ 0xCC ^ 0xF0), 6u);
  EXPECT_GE(db.tree_cost(0xAA ^ 0xCC ^ 0xF0), 6u);
  // MUX(x2; x1, x0): 3 ANDs.
  EXPECT_EQ(db.cost((0xF0 & 0xCC) | (0x0F & 0xAA)), 3u);
}

TEST(Exact3, CostsAreUpperBoundedAndComplementInvariant) {
  // Every 3-var function realizes within 8 ANDs; complement costs match
  // (complementation is a free output edge).
  const Exact3Db& db = Exact3Db::instance();
  for (unsigned f = 0; f < 256; ++f) {
    ASSERT_LE(db.cost(static_cast<std::uint8_t>(f)), 8u) << f;
    ASSERT_LE(db.cost(static_cast<std::uint8_t>(f)),
              db.tree_cost(static_cast<std::uint8_t>(f)));
    ASSERT_EQ(db.cost(static_cast<std::uint8_t>(f)),
              db.cost(static_cast<std::uint8_t>(~f & 0xFF)));
  }
}

TEST(Exact3, InstantiateSharesViaStrash) {
  const Exact3Db& db = Exact3Db::instance();
  Aig a(3);
  const std::array<aig::Lit, 3> leaves{a.pi_lit(0), a.pi_lit(1),
                                       a.pi_lit(2)};
  const aig::Lit first = db.instantiate(a, 0x80, leaves);
  const std::size_t after_first = a.num_ands();
  const aig::Lit second = db.instantiate(a, 0x80, leaves);
  EXPECT_EQ(first, second);            // strash folds identical programs
  EXPECT_EQ(a.num_ands(), after_first);
}

class ExactRewrite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactRewrite, PreservesFunctionAndNeverGrows) {
  const Aig a = testutil::random_aig(7, 90, 5, GetParam());
  ExactRewriteStats stats;
  const Aig b = exact_rewrite3(a, &stats);
  EXPECT_TRUE(aig::brute_force_equivalent(a, b));
  EXPECT_LE(b.num_ands(), a.num_ands());
  if (stats.cones_rewritten > 0) {
    EXPECT_GT(stats.ands_saved, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRewrite,
                         ::testing::Values(800, 801, 802, 803, 804));

TEST(ExactRewrite, ShrinksARedundantXorChain) {
  // Build XOR3 deliberately wastefully: 8 ANDs (two non-optimal XORs).
  Aig a(3);
  const aig::Lit x = a.pi_lit(0), y = a.pi_lit(1), z = a.pi_lit(2);
  auto bloated_xor = [&](aig::Lit p, aig::Lit q) {
    // (p | q) & !(p & q) built via two extra ORs.
    return a.add_and(a.add_or(p, q), aig::lit_not(a.add_and(p, q)));
  };
  a.add_po(bloated_xor(bloated_xor(x, y), z));
  const std::size_t before = a.num_ands();
  ExactRewriteStats stats;
  const Aig b = exact_rewrite3(a, &stats);
  EXPECT_TRUE(aig::brute_force_equivalent(a, b));
  EXPECT_LE(b.num_ands(), before);
}

}  // namespace
}  // namespace simsweep::opt
