/// \file test_sat.cpp
/// \brief Tests for the CDCL SAT solver and DIMACS front end.

#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sat/dimacs.hpp"

namespace simsweep::sat {
namespace {

TEST(Lit, Encoding) {
  const Lit p = mk_lit(3);
  EXPECT_EQ(var(p), 3);
  EXPECT_FALSE(sign(p));
  EXPECT_TRUE(sign(~p));
  EXPECT_EQ(var(~p), 3);
  EXPECT_EQ(~~p, p);
}

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(mk_lit(a));
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
  EXPECT_EQ(s.model_value(a), LBool::kTrue);
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause(mk_lit(a)));
  EXPECT_FALSE(s.add_clause(mk_lit(a, true)));
  EXPECT_TRUE(s.inconsistent());
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  s.new_var();
  EXPECT_FALSE(s.add_clause(std::vector<Lit>{}));
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(a), mk_lit(a, true)}));
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
}

TEST(Solver, PigeonHole3x2IsUnsat) {
  // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
  Solver s;
  Var p[3][2];
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (auto& row : p)
    s.add_clause(mk_lit(row[0]), mk_lit(row[1]));  // every pigeon placed
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 3; ++i)
      for (int k = i + 1; k < 3; ++k)
        s.add_clause(mk_lit(p[i][j], true), mk_lit(p[k][j], true));
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

TEST(Solver, XorChainSatisfiable) {
  // x0 ^ x1 = 1, x1 ^ x2 = 1, ... as CNF; satisfiable (alternating).
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 12; ++i) x.push_back(s.new_var());
  for (int i = 0; i + 1 < 12; ++i) {
    s.add_clause(mk_lit(x[i]), mk_lit(x[i + 1]));
    s.add_clause(mk_lit(x[i], true), mk_lit(x[i + 1], true));
  }
  ASSERT_EQ(s.solve(), Solver::Result::kSat);
  for (int i = 0; i + 1 < 12; ++i)
    EXPECT_NE(s.model_value(x[i]), s.model_value(x[i + 1]));
}

TEST(Solver, Assumptions) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(mk_lit(a, true), mk_lit(b));  // a -> b
  EXPECT_EQ(s.solve({mk_lit(a)}), Solver::Result::kSat);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
  EXPECT_EQ(s.solve({mk_lit(a), mk_lit(b, true)}), Solver::Result::kUnsat);
  // The solver is reusable after an assumption failure.
  EXPECT_EQ(s.solve({mk_lit(a)}), Solver::Result::kSat);
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
}

TEST(Solver, IncrementalClauseAddition) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(mk_lit(a), mk_lit(b));
  ASSERT_EQ(s.solve(), Solver::Result::kSat);
  s.add_clause(mk_lit(a, true));
  ASSERT_EQ(s.solve(), Solver::Result::kSat);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
  s.add_clause(mk_lit(b, true));
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  // A hard instance (pigeonhole 7/6) with a 1-conflict budget.
  Solver s;
  constexpr int P = 7, H = 6;
  std::vector<std::vector<Var>> p(P, std::vector<Var>(H));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause;
    for (Var v : row) clause.push_back(mk_lit(v));
    s.add_clause(clause);
  }
  for (int j = 0; j < H; ++j)
    for (int i = 0; i < P; ++i)
      for (int k = i + 1; k < P; ++k)
        s.add_clause(mk_lit(p[i][j], true), mk_lit(p[k][j], true));
  EXPECT_EQ(s.solve({}, 1), Solver::Result::kUnknown);
  // And without budget it is UNSAT.
  EXPECT_EQ(s.solve({}, -1), Solver::Result::kUnsat);
}

/// Brute-force CNF evaluation oracle.
bool cnf_satisfiable(const Cnf& cnf) {
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << cnf.num_vars); ++m) {
    bool all = true;
    for (const auto& clause : cnf.clauses) {
      bool any = false;
      for (Lit p : clause) any |= (((m >> var(p)) & 1) != sign(p));
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class RandomCnf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCnf, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    Cnf cnf;
    cnf.num_vars = 8;
    const int num_clauses = 20 + static_cast<int>(rng.below(20));
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<Lit> clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int l = 0; l < len; ++l)
        clause.push_back(mk_lit(static_cast<Var>(rng.below(8)), rng.flip()));
      cnf.clauses.push_back(clause);
    }
    Solver s;
    const bool loaded = load_cnf(s, cnf);
    const bool expect = cnf_satisfiable(cnf);
    if (!loaded) {
      EXPECT_FALSE(expect);
      continue;
    }
    const auto r = s.solve();
    ASSERT_NE(r, Solver::Result::kUnknown);
    EXPECT_EQ(r == Solver::Result::kSat, expect);
    if (r == Solver::Result::kSat) {
      // Verify the model satisfies every clause.
      for (const auto& clause : cnf.clauses) {
        bool any = false;
        for (Lit p : clause)
          any |= (s.model_value(var(p)) == LBool::kTrue) != sign(p);
        ASSERT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Dimacs, ParseAndSolve) {
  const std::string text =
      "c example\np cnf 3 4\n1 2 0\n-1 3 0\n-2 3 0\n-3 0\n";
  const Cnf cnf = parse_dimacs_string(text);
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 4u);
  Solver s;
  load_cnf(s, cnf);
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

TEST(Dimacs, Errors) {
  EXPECT_THROW(parse_dimacs_string("1 2 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf 1 1\n2 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf 1 1\n1\n"), std::runtime_error);
}

TEST(Solver, StatsAdvance) {
  Solver s;
  for (int i = 0; i < 6; ++i) s.new_var();
  Rng rng(3);
  for (int c = 0; c < 30; ++c)
    s.add_clause(mk_lit(static_cast<Var>(rng.below(6)), rng.flip()),
                 mk_lit(static_cast<Var>(rng.below(6)), rng.flip()),
                 mk_lit(static_cast<Var>(rng.below(6)), rng.flip()));
  s.solve();
  EXPECT_GT(s.propagations + s.decisions, 0u);
}

}  // namespace
}  // namespace simsweep::sat
