/// \file test_miter_rebuild.cpp
/// \brief Tests for miter construction and substitution-based reduction.

#include "aig/miter.hpp"
#include "aig/rebuild.hpp"

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "test_util.hpp"

namespace simsweep::aig {
namespace {

TEST(Miter, SelfMiterIsStructurallyZero) {
  const Aig a = testutil::random_aig(6, 50, 4, 21);
  const Aig m = make_miter(a, a);
  // Structural hashing folds identical cones; every XOR becomes const 0.
  EXPECT_TRUE(miter_proved(m));
}

TEST(Miter, InterfaceMismatchThrows) {
  Aig a(2);
  a.add_po(a.pi_lit(0));
  Aig b(3);
  b.add_po(b.pi_lit(0));
  EXPECT_THROW(make_miter(a, b), std::invalid_argument);
}

TEST(Miter, SemanticsPoIsXorOfOperands) {
  const Aig a = testutil::random_aig(5, 40, 3, 22);
  const Aig b = testutil::random_aig(5, 40, 3, 23);
  const Aig m = make_miter(a, b);
  ASSERT_EQ(m.num_pos(), a.num_pos());
  for (unsigned p = 0; p < 32; ++p) {
    std::vector<bool> pis(5);
    for (unsigned i = 0; i < 5; ++i) pis[i] = (p >> i) & 1;
    const auto oa = a.evaluate(pis);
    const auto ob = b.evaluate(pis);
    const auto om = m.evaluate(pis);
    for (std::size_t o = 0; o < m.num_pos(); ++o)
      ASSERT_EQ(om[o], oa[o] != ob[o]);
  }
}

TEST(Miter, EquivalentPairGivesAllZeroMiter) {
  const Aig a = testutil::random_aig(6, 60, 4, 24);
  const Aig m = make_miter(a, a);
  for (unsigned p = 0; p < 64; ++p) {
    std::vector<bool> pis(6);
    for (unsigned i = 0; i < 6; ++i) pis[i] = (p >> i) & 1;
    for (bool v : m.evaluate(pis)) ASSERT_FALSE(v);
  }
}

TEST(Substitution, ResolveChains) {
  SubstitutionMap s(10);
  EXPECT_TRUE(s.merge(5, make_lit(3)));
  EXPECT_TRUE(s.merge(3, make_lit(2, true)));
  // 5 -> 3 -> !2, so 5 resolves to !2 and !5 to 2.
  EXPECT_EQ(s.resolve(make_lit(5)), make_lit(2, true));
  EXPECT_EQ(s.resolve(make_lit(5, true)), make_lit(2));
  EXPECT_EQ(s.num_merged(), 2u);
}

TEST(Substitution, RejectsForwardAndDuplicateMerges) {
  SubstitutionMap s(10);
  EXPECT_FALSE(s.merge(3, make_lit(5)));   // target id not smaller
  EXPECT_FALSE(s.merge(3, make_lit(3)));   // self
  EXPECT_TRUE(s.merge(5, make_lit(3)));
  EXPECT_FALSE(s.merge(5, make_lit(2)));   // already substituted
}

TEST(Rebuild, CleanupDropsDanglingNodes) {
  Aig a(3);
  const Lit used = a.add_and(a.pi_lit(0), a.pi_lit(1));
  a.add_and(a.pi_lit(1), a.pi_lit(2));  // dangling
  a.add_po(used);
  EXPECT_EQ(a.num_ands(), 2u);
  const RebuildResult r = cleanup(a);
  EXPECT_EQ(r.aig.num_ands(), 1u);
  EXPECT_EQ(r.aig.num_pis(), 3u);
  EXPECT_TRUE(brute_force_equivalent(a, r.aig));
}

TEST(Rebuild, MergePreservesFunctionWhenFactIsTrue) {
  // g2 = x&y built twice differently; merging the duplicate onto the
  // original must preserve the function and shrink the graph.
  Aig a(3);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1), z = a.pi_lit(2);
  const Lit g1 = a.add_and(x, y);
  // A second x&y cone that strashing cannot see: (x & (y & y)) is folded,
  // so force difference via double negation structure: !(!x | !y) =
  // !( !x & 1 | ...) — build !(!x & !y) OR-form: that's x|y, not equal.
  // Instead use (x & y) & (x | y) == x & y.
  const Lit g2 = a.add_and(g1, a.add_or(x, y));
  a.add_po(a.add_and(g2, z));
  SubstitutionMap s(a.num_nodes());
  ASSERT_TRUE(s.merge(lit_var(g2), g1));
  const RebuildResult r = rebuild(a, s);
  EXPECT_TRUE(brute_force_equivalent(a, r.aig));
  EXPECT_LT(r.aig.num_ands(), a.num_ands());
}

TEST(Rebuild, ComplementedMerge) {
  Aig a(2);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit and_xy = a.add_and(x, y);
  // A structurally different implementation of !(x & y) that strashing
  // cannot fold: OR of the three off-minterms.
  const Lit or_nn = a.add_or(
      a.add_or(a.add_and(lit_not(x), lit_not(y)),
               a.add_and(lit_not(x), y)),
      a.add_and(x, lit_not(y)));
  a.add_po(a.add_and(lit_not(and_xy), or_nn));
  // The OR node's *node* equals the complement of the AND node: merge
  // or_nn's variable onto !and_xy (adjusting for or_nn's own polarity).
  SubstitutionMap s(a.num_nodes());
  const Lit target = lit_notcond(lit_not(and_xy), lit_compl(or_nn));
  ASSERT_TRUE(s.merge(lit_var(or_nn), target));
  const RebuildResult r = rebuild(a, s);
  EXPECT_TRUE(brute_force_equivalent(a, r.aig));
  EXPECT_LT(r.aig.num_ands(), a.num_ands());
}

TEST(Rebuild, MapReportsDroppedNodes) {
  Aig a(2);
  const Lit used = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit dangling = a.add_and(lit_not(a.pi_lit(0)), a.pi_lit(1));
  a.add_po(used);
  const RebuildResult r = cleanup(a);
  EXPECT_NE(r.lit_map[lit_var(used)], RebuildResult::kLitInvalid);
  EXPECT_EQ(r.lit_map[lit_var(dangling)], RebuildResult::kLitInvalid);
}

TEST(Rebuild, PoConstantsPropagate) {
  Aig a(2);
  const Lit g = a.add_and(a.pi_lit(0), a.pi_lit(1));
  a.add_po(g);
  SubstitutionMap s(a.num_nodes());
  ASSERT_TRUE(s.merge(lit_var(g), kLitFalse));
  const RebuildResult r = rebuild(a, s);
  EXPECT_EQ(r.aig.po(0), kLitFalse);
  EXPECT_EQ(r.aig.num_ands(), 0u);
  EXPECT_TRUE(miter_proved(r.aig));
}

class MiterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MiterProperty, MiterOfMutantIsNonZeroIffFunctionsDiffer) {
  const Aig a = testutil::random_aig(6, 50, 4, GetParam());
  const Aig b = testutil::mutate(a, GetParam() + 1000);
  const Aig m = make_miter(a, b);
  bool any_nonzero = false;
  for (unsigned p = 0; p < 64 && !any_nonzero; ++p) {
    std::vector<bool> pis(6);
    for (unsigned i = 0; i < 6; ++i) pis[i] = (p >> i) & 1;
    for (bool v : m.evaluate(pis)) any_nonzero |= v;
  }
  EXPECT_EQ(any_nonzero, !brute_force_equivalent(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiterProperty,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace simsweep::aig
