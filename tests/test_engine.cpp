/// \file test_engine.cpp
/// \brief Tests for the simulation-based CEC engine (paper §III).

#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "aig/aig_analysis.hpp"
#include "common/random.hpp"
#include "gen/arith.hpp"
#include "opt/balance.hpp"
#include "opt/resyn.hpp"
#include "test_util.hpp"
#include "obs/metric_names.hpp"

namespace simsweep::engine {
namespace {

using aig::Aig;

/// Engine parameters sized for small test circuits.
EngineParams small_params() {
  EngineParams p;
  p.k_P = 16;
  p.k_p = 10;
  p.k_g = 10;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  return p;
}

TEST(Engine, TrivialMiters) {
  const SimCecEngine eng(small_params());
  Aig zero(2);
  zero.add_po(aig::kLitFalse);
  EXPECT_EQ(eng.check_miter(zero).verdict, Verdict::kEquivalent);
  Aig one(2);
  one.add_po(aig::kLitTrue);
  EXPECT_EQ(eng.check_miter(one).verdict, Verdict::kNotEquivalent);
  Aig empty(3);
  EXPECT_EQ(eng.check_miter(empty).verdict, Verdict::kEquivalent);
}

TEST(Engine, ProvesOptimizedCopyEquivalent) {
  const Aig a = testutil::random_aig(8, 120, 5, 200);
  const Aig b = opt::resyn2(a);
  const SimCecEngine eng(small_params());
  const EngineResult r = eng.check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_DOUBLE_EQ(r.stats.reduction_percent(), 100.0);
}

TEST(Engine, DisprovesMutantWithValidCex) {
  const Aig a = testutil::random_aig(8, 120, 5, 203);
  const Aig b = testutil::mutate(a, 204);
  if (aig::brute_force_equivalent(a, b)) GTEST_SKIP() << "mutation no-op";
  const SimCecEngine eng(small_params());
  const EngineResult r = eng.check(a, b);
  ASSERT_EQ(r.verdict, Verdict::kNotEquivalent);
  if (r.cex) {
    EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
  }
}

class EngineOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineOracle, VerdictMatchesBruteForce) {
  // The central soundness/completeness property on random small miters.
  // Any kEquivalent/kNotEquivalent verdict must agree with brute force;
  // kUndecided is allowed (incomplete method) but sound.
  const Aig a = testutil::random_aig(8, 100, 6, GetParam());
  const Aig b = (GetParam() % 2 == 0) ? opt::resyn_light(a)
                                      : testutil::mutate(a, GetParam() + 1);
  const bool equivalent = aig::brute_force_equivalent(a, b);
  const SimCecEngine eng(small_params());
  const EngineResult r = eng.check(a, b);
  if (r.verdict == Verdict::kEquivalent) {
    EXPECT_TRUE(equivalent);
  }
  if (r.verdict == Verdict::kNotEquivalent) {
    EXPECT_FALSE(equivalent);
  }
  // With 8 PIs everything is simulatable: the verdict must be decisive.
  EXPECT_NE(r.verdict, Verdict::kUndecided);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOracle,
                         ::testing::Values(210, 211, 212, 213, 214, 215,
                                           216, 217, 218, 219));

TEST(Engine, OneShotPoCheckingSolvesSmallSupports) {
  // All PO supports <= k_P: the P phase alone must finish the miter.
  const Aig a = gen::ripple_adder(6);            // 12 PIs
  const Aig b = gen::kogge_stone_adder(6);
  EngineParams p = small_params();
  p.k_P = 16;                                    // one-shot covers 12
  p.enable_global_phase = false;                 // force P to do the work
  p.max_local_phases = 0;
  const SimCecEngine eng(p);
  const EngineResult r = eng.check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  // Structural hashing may fold some miter POs to constants before the
  // phase runs; the P phase proves exactly the remaining ones.
  std::size_t nonconst_pos = 0;
  const Aig miter = aig::make_miter(a, b);
  for (aig::Lit po : miter.pos()) nonconst_pos += aig::lit_var(po) != 0;
  EXPECT_EQ(r.stats.pos_proved, nonconst_pos);
  EXPECT_GT(r.stats.po_seconds, 0.0);
}

TEST(Engine, PoPhaseFindsCex) {
  const Aig a = gen::ripple_adder(5);
  Aig b = gen::ripple_adder(5);
  // Break sum bit 3 in a way the miter cannot fold structurally
  // (a plain inversion folds the XOR to constant 1 and yields no CEX).
  b.set_po(3, b.add_and(b.po(3), b.pi_lit(0)));
  const SimCecEngine eng(small_params());
  const EngineResult r = eng.check(a, b);
  ASSERT_EQ(r.verdict, Verdict::kNotEquivalent);
  ASSERT_TRUE(r.cex.has_value());
  EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
}

TEST(Engine, GlobalPhaseReducesMiter) {
  // Disable P and L so only G runs, on a multiplier pair whose internal
  // nodes have small supports.
  const Aig a = gen::array_multiplier(4);
  const Aig b = gen::wallace_multiplier(4);
  EngineParams p = small_params();
  p.enable_po_phase = false;
  p.max_local_phases = 0;
  const SimCecEngine eng(p);
  const EngineResult r = eng.check(a, b);
  // 8-PI miter: G phase checks everything including the PO-drivers'
  // classes with the constant; full proof expected.
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(r.stats.pairs_proved_global, 0u);
}

TEST(Engine, LocalPhaseProvesLargeSupportPairs) {
  // Wide adder: supports up to 2n exceed k_g, so G cannot prove the upper
  // bits; local checking must. Keep k_P tiny so P cannot either.
  const Aig a = gen::ripple_adder(12);  // 24 PIs
  const Aig b = opt::balance(a);
  EngineParams p = small_params();
  p.k_P = 6;
  p.k_p = 6;
  p.k_g = 6;
  const SimCecEngine eng(p);
  const EngineResult r = eng.check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

TEST(Engine, UndecidedReturnsReducedSoundMiter) {
  // Cripple every phase: the engine must give up but the reduced miter it
  // returns must be equisatisfiable with the original.
  const Aig a = testutil::random_aig(12, 250, 6, 220);
  const Aig b = opt::resyn_light(a);
  EngineParams p = small_params();
  p.k_P = 4;
  p.k_p = 3;
  p.k_g = 3;
  p.k_l = 3;
  p.max_local_phases = 1;
  const SimCecEngine eng(p);
  const EngineResult r = eng.check(a, b);
  if (r.verdict == Verdict::kUndecided) {
    // The reduced miter must still be all-zero (a and b are equivalent,
    // and reduction only merges proven facts): sample patterns.
    EXPECT_EQ(r.reduced.num_pis(), a.num_pis());
    Rng rng(7);
    for (int t = 0; t < 64; ++t) {
      std::vector<bool> pis(r.reduced.num_pis());
      for (auto&& x : pis) x = rng.flip();
      for (bool v : r.reduced.evaluate(pis)) ASSERT_FALSE(v);
    }
  } else {
    EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  }
}

TEST(Engine, SnapshotsCaptured) {
  const Aig a = testutil::random_aig(8, 100, 4, 221);
  const Aig b = opt::resyn_light(a);
  EngineParams p = small_params();
  p.capture_snapshots = true;
  const SimCecEngine eng(p);
  const EngineResult r = eng.check(a, b);
  ASSERT_GE(r.snapshots.size(), 1u);
  EXPECT_EQ(r.snapshots[0].first, "P");
  // Snapshots preserve the PI interface.
  for (const auto& [name, snap] : r.snapshots)
    EXPECT_EQ(snap.num_pis(), a.num_pis());
}

TEST(Engine, PhaseBreakdownSumsReasonably) {
  const Aig a = testutil::random_aig(8, 150, 5, 222);
  const Aig b = opt::resyn_light(a);
  const SimCecEngine eng(small_params());
  const EngineResult r = eng.check(a, b);
  const double phases = r.stats.po_seconds + r.stats.global_seconds +
                        r.stats.local_seconds;
  EXPECT_LE(phases, r.stats.total_seconds + 1e-6);
  EXPECT_GT(r.stats.total_seconds, 0.0);
  // other_seconds completes the partition of the total: P + G + L + other
  // must account for the whole run (other covers simulation init, EC
  // building and rebuilds — the bug fixed here left it always 0).
  EXPECT_GE(r.stats.other_seconds, 0.0);
  EXPECT_NEAR(phases + r.stats.other_seconds, r.stats.total_seconds, 1e-6);
}

TEST(Engine, ReportCountsPhaseWork) {
  // A multiplier pair pushes work through all the instrumented modules:
  // exhaustive windows in P/G, EC building and refinement, cut passes in
  // L, rebuilds between phases. The report counters must witness it.
  const Aig a = gen::array_multiplier(4);
  const Aig b = gen::wallace_multiplier(4);
  EngineParams p = small_params();
  p.enable_po_phase = false;  // force G and L to do all the work
  p.k_P = 10;                 // escalation ceiling ≥ 8 PIs: still decisive
  p.k_p = 4;
  p.k_g = 5;
  const SimCecEngine eng(p);
  const EngineResult r = eng.check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  const obs::Snapshot& s = r.report;
  EXPECT_FALSE(s.empty());
  // Exhaustive simulator: batches ran and simulated words.
  EXPECT_GT(s.count(obs::metric::kExhaustiveBatches), 0u);
  EXPECT_GT(s.count(obs::metric::kExhaustiveWordsSimulated), 0u);
  EXPECT_GT(s.count(obs::metric::kExhaustiveWindows), 0u);
  // EC manager: classes were built from signatures.
  EXPECT_GT(s.count(obs::metric::kEcBuilds), 0u);
  EXPECT_GT(s.count(obs::metric::kEcClassesBuilt), 0u);
  // Partial simulator: pattern banks were simulated.
  EXPECT_GT(s.count(obs::metric::kPartialSimSimulateCalls), 0u);
  EXPECT_GT(s.count(obs::metric::kPartialSimPatternWords), 0u);
  // Miter manager: proved pairs were merged by rebuilds.
  EXPECT_GT(s.count(obs::metric::kMiterRebuilds), 0u);
  EXPECT_EQ(s.count(obs::metric::kMiterAndsRemoved),
            s.count(obs::metric::kMiterAndsBefore) - s.count(obs::metric::kMiterAndsAfter));
  // Cut generator: at least one Table I pass ran with enumerated cuts.
  EXPECT_GT(s.count("cut.pass1.runs") + s.count("cut.pass2.runs") +
                s.count("cut.pass3.runs"),
            0u);
  // Engine gauges mirror EngineStats.
  EXPECT_DOUBLE_EQ(s.value(obs::metric::kEngineTotalSeconds), r.stats.total_seconds);
  EXPECT_DOUBLE_EQ(s.value(obs::metric::kEnginePairsProvedGlobal),
                   static_cast<double>(r.stats.pairs_proved_global));
  EXPECT_DOUBLE_EQ(s.value(obs::metric::kEnginePairsProvedLocal),
                   static_cast<double>(r.stats.pairs_proved_local));
  // Thread pool gauges are always published (workers may be 0 on a
  // single-CPU host, so assert presence, not magnitude).
  EXPECT_NE(s.find(obs::metric::kPoolWorkers), nullptr);
  EXPECT_NE(s.find(obs::metric::kPoolJobs), nullptr);
}

TEST(Engine, AccumulateAttemptStatsMergesEveryField) {
  // Regression: the combined checker's rewriting-interleaved loop used to
  // carry only total_seconds and initial_ands across attempts, losing the
  // first attempt's phase times and pair counters.
  EngineStats prev;
  prev.po_seconds = 1.0;
  prev.global_seconds = 2.0;
  prev.local_seconds = 3.0;
  prev.other_seconds = 0.5;
  prev.total_seconds = 6.5;
  prev.initial_ands = 1000;
  prev.final_ands = 400;
  prev.pos_total = 16;
  prev.pos_proved = 10;
  prev.pairs_proved_global = 20;
  prev.pairs_proved_local = 30;
  prev.pairs_disproved = 5;
  prev.cex_count = 7;
  prev.local_phases = 2;

  EngineStats next;
  next.po_seconds = 0.1;
  next.global_seconds = 0.2;
  next.local_seconds = 0.3;
  next.other_seconds = 0.05;
  next.total_seconds = 0.65;
  next.initial_ands = 400;  // second attempt starts from the residue
  next.final_ands = 100;
  next.pos_total = 16;
  next.pos_proved = 1;
  next.pairs_proved_global = 2;
  next.pairs_proved_local = 3;
  next.pairs_disproved = 1;
  next.cex_count = 2;
  next.local_phases = 1;

  accumulate_attempt_stats(next, prev);
  EXPECT_DOUBLE_EQ(next.po_seconds, 1.1);
  EXPECT_DOUBLE_EQ(next.global_seconds, 2.2);
  EXPECT_DOUBLE_EQ(next.local_seconds, 3.3);
  EXPECT_DOUBLE_EQ(next.other_seconds, 0.55);
  EXPECT_DOUBLE_EQ(next.total_seconds, 7.15);
  // The chain is measured against the FIRST attempt's miter...
  EXPECT_EQ(next.initial_ands, 1000u);
  EXPECT_EQ(next.pos_total, 16u);
  // ...and ends at the LAST attempt's residue.
  EXPECT_EQ(next.final_ands, 100u);
  EXPECT_EQ(next.pos_proved, 11u);
  EXPECT_EQ(next.pairs_proved_global, 22u);
  EXPECT_EQ(next.pairs_proved_local, 33u);
  EXPECT_EQ(next.pairs_disproved, 6u);
  EXPECT_EQ(next.cex_count, 9u);
  EXPECT_EQ(next.local_phases, 3u);
  EXPECT_DOUBLE_EQ(next.reduction_percent(), 90.0);
}

TEST(Engine, WindowMergingDoesNotChangeVerdicts) {
  const Aig a = testutil::random_aig(9, 140, 5, 223);
  const Aig b = opt::resyn_light(a);
  EngineParams pm = small_params();
  pm.window_merging = true;
  EngineParams pn = small_params();
  pn.window_merging = false;
  const EngineResult rm = SimCecEngine(pm).check(a, b);
  const EngineResult rn = SimCecEngine(pn).check(a, b);
  EXPECT_EQ(rm.verdict, rn.verdict);
}

TEST(Engine, PassAblationStillSound) {
  const Aig a = testutil::random_aig(9, 140, 5, 224);
  const Aig b = opt::resyn_light(a);
  const bool equivalent = aig::brute_force_equivalent(a, b);
  for (unsigned pass = 0; pass < 3; ++pass) {
    EngineParams p = small_params();
    p.local_passes = {pass == 0, pass == 1, pass == 2};
    const EngineResult r = SimCecEngine(p).check(a, b);
    if (r.verdict != Verdict::kUndecided) {
      EXPECT_EQ(r.verdict == Verdict::kEquivalent, equivalent);
    }
  }
}

TEST(Engine, CancellationYieldsUndecided) {
  const Aig a = testutil::random_aig(10, 200, 5, 225);
  const Aig b = opt::resyn_light(a);
  const Aig m = aig::make_miter(a, b);
  if (aig::miter_proved(m)) GTEST_SKIP() << "strash already solved it";
  std::atomic<bool> cancel{true};
  EngineParams p = small_params();
  p.cancel = &cancel;
  const EngineResult r = SimCecEngine(p).check_miter(m);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

TEST(Engine, ArithmeticCrossImplementations) {
  // Classic CEC pairs: different adder/multiplier architectures.
  const SimCecEngine eng(small_params());
  EXPECT_EQ(eng.check(gen::ripple_adder(5), gen::kogge_stone_adder(5))
                .verdict,
            Verdict::kEquivalent);
  EXPECT_EQ(eng.check(gen::array_multiplier(3), gen::wallace_multiplier(3))
                .verdict,
            Verdict::kEquivalent);
}

}  // namespace
}  // namespace simsweep::engine
