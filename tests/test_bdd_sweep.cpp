/// \file test_bdd_sweep.cpp
/// \brief Tests for Kuehlmann-style BDD sweeping (paper ref [6]).

#include "bdd/bdd_sweep.hpp"

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "gen/arith.hpp"
#include "opt/resyn.hpp"
#include "test_util.hpp"

namespace simsweep::bdd {
namespace {

using aig::Aig;

TEST(BddSweep, ProvesEquivalentPair) {
  const Aig a = testutil::random_aig(8, 120, 5, 600);
  const Aig b = opt::resyn_light(a);
  const BddSweepResult r = bdd_sweep(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

TEST(BddSweep, DisprovesWithValidCex) {
  const Aig a = gen::ripple_adder(5);
  Aig b = gen::ripple_adder(5);
  b.set_po(2, b.add_and(b.po(2), b.pi_lit(1)));
  const BddSweepResult r = bdd_sweep(a, b);
  ASSERT_EQ(r.verdict, Verdict::kNotEquivalent);
  ASSERT_TRUE(r.cex.has_value());
  EXPECT_EQ(r.cex->size(), a.num_pis());
  EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
}

TEST(BddSweep, MergesIdenticalFunctions) {
  const Aig a = gen::array_multiplier(4);
  const Aig b = gen::wallace_multiplier(4);
  const BddSweepResult r = bdd_sweep(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(r.merged_nodes, 0u);
}

TEST(BddSweep, CutpointsKeepItSound) {
  // A tiny per-node size limit forces many cutpoints; the method must
  // degrade to kUndecided (or still prove), never mis-decide.
  const Aig a = testutil::random_aig(10, 300, 6, 601);
  const Aig b = opt::resyn_light(a);
  BddSweepParams p;
  p.node_size_limit = 4;
  const BddSweepResult r = bdd_sweep(a, b, p);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
  if (r.verdict == Verdict::kUndecided) {
    EXPECT_GT(r.cutpoints, 0u);
  }
}

TEST(BddSweep, ManagerOverflowYieldsUndecided) {
  // A miter that cannot fold structurally (gated PO) plus a manager cap
  // far below what the cones need.
  const Aig a = gen::ripple_adder(8);
  Aig b = gen::ripple_adder(8);
  b.set_po(7, b.add_and(b.po(7), b.pi_lit(3)));
  BddSweepParams p;
  p.manager_limit = 64;
  const BddSweepResult r = bdd_sweep(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

class BddSweepOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddSweepOracle, DecisiveVerdictsMatchBruteForce) {
  const Aig a = testutil::random_aig(7, 90, 4, GetParam());
  const Aig b = testutil::mutate(a, GetParam() + 9);
  const BddSweepResult r = bdd_sweep(a, b);
  if (r.verdict == Verdict::kUndecided) return;  // allowed (incomplete)
  EXPECT_EQ(r.verdict == Verdict::kEquivalent,
            aig::brute_force_equivalent(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddSweepOracle,
                         ::testing::Values(610, 611, 612, 613, 614, 615));

}  // namespace
}  // namespace simsweep::bdd
