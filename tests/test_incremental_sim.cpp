/// \file test_incremental_sim.cpp
/// \brief Incremental simulation and EC carry-over (DESIGN.md §2.7):
/// delta simulation must be bit-identical to full re-simulation, rebuild
/// carry-over must agree with a fresh build, and a failed carry-over
/// (injected sim.carryover fault) must fall back soundly. Also covers the
/// word-major PatternBank's amortized-append contract and the cached
/// level schedule. Suite names share the IncrementalSim prefix so the
/// SIMSWEEP_CHECKED matrix leg (tools/run_static_analysis.sh) selects
/// them.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "engine/engine.hpp"
#include "fault/fault.hpp"
#include "gen/arith.hpp"
#include "obs/metric_names.hpp"
#include "sim/ec_manager.hpp"
#include "sim/incremental.hpp"
#include "sim/partial_sim.hpp"
#include "test_util.hpp"

namespace simsweep::sim {
namespace {

using aig::Aig;
using aig::Lit;
using aig::Var;

/// Appends `n` pseudo-random word-columns to the bank, one per call (the
/// CEX-absorption shape the delta path must track).
void append_random_columns(PatternBank& bank, std::size_t n,
                           std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<Word> col(bank.num_pis());
    for (Word& w : col) w = rng.next64();
    bank.append_words(col);
  }
}

// ---------------------------------------------------------------------------
// PatternBank: word-major layout, amortized appends, sliding window (S1).
// ---------------------------------------------------------------------------

TEST(IncrementalSimBank, AppendIsAmortizedNotPerWord) {
  PatternBank bank(8, 1);
  const std::size_t kAppends = 1000;
  append_random_columns(bank, kAppends, 11);
  EXPECT_EQ(bank.num_words(), 1 + kAppends);
  // Regression for the O(pis×words)-per-append bug: growth must be
  // geometric, so ~1000 appends reallocate O(log n) times, not ~1000.
  EXPECT_LE(bank.reallocations(), 16u);
  EXPECT_GE(bank.reallocations(), 1u);
}

TEST(IncrementalSimBank, AppendGroupsMatchesRepeatedAppendWords) {
  std::vector<std::vector<Word>> groups;
  Rng rng(12);
  for (int g = 0; g < 17; ++g) {
    std::vector<Word> col(5);
    for (Word& w : col) w = rng.next64();
    groups.push_back(col);
  }
  PatternBank one_by_one(5, 2);
  for (const auto& g : groups) one_by_one.append_words(g);
  PatternBank batched(5, 2);
  batched.append_groups(groups);
  ASSERT_EQ(batched.num_words(), one_by_one.num_words());
  for (unsigned pi = 0; pi < 5; ++pi)
    for (std::size_t w = 0; w < batched.num_words(); ++w)
      ASSERT_EQ(batched.word(pi, w), one_by_one.word(pi, w));
  // The batch reserves once up front, so it can never reallocate more
  // often than the one-by-one path.
  EXPECT_LE(batched.reallocations(), one_by_one.reallocations());
}

TEST(IncrementalSimBank, TruncateFrontSlidesTheStreamWindow) {
  PatternBank bank(3, 4);
  Rng rng(13);
  for (unsigned pi = 0; pi < 3; ++pi)
    for (std::size_t w = 0; w < 4; ++w) bank.word(pi, w) = rng.next64();
  const Word keep2 = bank.word(1, 2);
  EXPECT_EQ(bank.start_index(), 0u);
  EXPECT_EQ(bank.truncate_front(2), 2u);
  EXPECT_EQ(bank.num_words(), 2u);
  EXPECT_EQ(bank.start_index(), 2u);
  EXPECT_EQ(bank.word(1, 0), keep2);  // old column 2 is the new column 0
  EXPECT_EQ(bank.truncate_front(2), 0u);  // already fits: no-op
  EXPECT_EQ(bank.truncate_front(1), 1u);
  EXPECT_EQ(bank.start_index(), 3u);  // stream index is monotonic
}

// ---------------------------------------------------------------------------
// Level schedule: one counting sort shared by every consumer.
// ---------------------------------------------------------------------------

TEST(IncrementalSimSchedule, MatchesComputeLevelsAndOrdersByLevel) {
  const Aig a = testutil::random_aig(8, 200, 4, 21);
  const aig::LevelSchedule s = aig::build_level_schedule(a);
  EXPECT_TRUE(s.matches(a));
  EXPECT_EQ(s.levels, aig::compute_levels(a));
  // order[offset[l]..offset[l+1]) must enumerate exactly the AND nodes of
  // level l, each AND node exactly once.
  std::vector<std::uint8_t> seen(a.num_nodes(), 0);
  for (std::uint32_t l = 1; l <= s.max_level; ++l) {
    for (std::size_t k = s.offset[l]; k < s.offset[l + 1]; ++k) {
      const Var v = s.order[k];
      ASSERT_TRUE(a.is_and(v));
      ASSERT_EQ(s.levels[v], l);
      ASSERT_FALSE(seen[v]);
      seen[v] = 1;
    }
  }
  std::size_t covered = 0;
  for (Var v = 0; v < a.num_nodes(); ++v) covered += seen[v];
  EXPECT_EQ(covered, a.num_ands());
  // A schedule goes stale with the AIG shape. AND(last node, pi0) cannot
  // already exist (no node has the topologically-last node as a fanin),
  // so this add genuinely grows the graph past the strash.
  Aig b = a;
  b.add_and(aig::make_lit(static_cast<Var>(b.num_nodes() - 1)), b.pi_lit(0));
  ASSERT_GT(b.num_nodes(), a.num_nodes());
  EXPECT_FALSE(s.matches(b));
}

TEST(IncrementalSimSchedule, SimulateWithScheduleIsBitIdentical) {
  const Aig a = testutil::random_aig(10, 300, 4, 22);
  const PatternBank bank = PatternBank::random(a.num_pis(), 6, 23);
  const aig::LevelSchedule s = aig::build_level_schedule(a);
  const Signatures plain = simulate(a, bank);
  const Signatures sched = simulate(a, bank, &s);
  EXPECT_EQ(plain.num_words, sched.num_words);
  EXPECT_EQ(plain.words, sched.words);
}

// ---------------------------------------------------------------------------
// Delta simulation (tentpole): bit-identical to a full re-simulation.
// ---------------------------------------------------------------------------

TEST(IncrementalSim, ExtendSignaturesIsBitIdenticalToFullSimulate) {
  const Aig a = testutil::random_aig(9, 250, 4, 31);
  PatternBank bank = PatternBank::random(a.num_pis(), 4, 32);
  Signatures sig = simulate(a, bank);
  append_random_columns(bank, 5, 33);
  extend_signatures(a, bank, 4, sig);
  const Signatures full = simulate(a, bank);
  EXPECT_EQ(sig.num_words, full.num_words);
  EXPECT_EQ(sig.words, full.words);
}

TEST(IncrementalSim, SyncDeltaPathTracksAppendsAndTruncations) {
  const Aig a = testutil::random_aig(8, 220, 4, 41);
  PatternBank bank = PatternBank::random(a.num_pis(), 4, 42);
  IncrementalState inc;
  inc.sync(a, bank);
  EXPECT_EQ(inc.stats().full_resims, 1u);
  EXPECT_TRUE(inc.valid());

  // Several CEX-shaped rounds: append a few columns, sometimes slide the
  // window; every sync must stay on the delta path and the cached rows
  // must equal a from-scratch simulation.
  for (int round = 0; round < 4; ++round) {
    append_random_columns(bank, 2 + round, 43 + round);
    if (round % 2 == 1) bank.truncate_front(6);
    inc.sync(a, bank);
    EXPECT_EQ(inc.stats().full_resims, 1u) << "round " << round;
    const Signatures full = simulate(a, bank);
    ASSERT_EQ(inc.signatures().num_words, full.num_words);
    ASSERT_EQ(inc.signatures().words, full.words) << "round " << round;
  }
  EXPECT_GT(inc.stats().incremental_words, 0u);

  // The refined classes must equal what a fresh build over the full bank
  // produces: refinement (equal on prefix, then equal on suffix) is the
  // same partition as equality on the whole width.
  EcManager fresh;
  fresh.build(a, inc.signatures());
  const auto to_tuples = [](const std::vector<CandidatePair>& ps) {
    std::vector<std::tuple<Var, Var, bool>> out;
    for (const CandidatePair& p : ps) out.emplace_back(p.repr, p.node, p.phase);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(to_tuples(inc.ec().candidate_pairs()),
            to_tuples(fresh.candidate_pairs()));
}

TEST(IncrementalSim, DisabledStateAlwaysFullySimulates) {
  const Aig a = testutil::random_aig(8, 150, 4, 51);
  PatternBank bank = PatternBank::random(a.num_pis(), 3, 52);
  IncrementalState inc;
  inc.set_enabled(false);
  inc.sync(a, bank);
  append_random_columns(bank, 2, 53);
  inc.sync(a, bank);
  EXPECT_EQ(inc.stats().full_resims, 2u);
  EXPECT_EQ(inc.stats().incremental_words, 0u);
  EXPECT_FALSE(inc.valid());
  const Signatures full = simulate(a, bank);
  EXPECT_EQ(inc.signatures().words, full.words);
}

// ---------------------------------------------------------------------------
// Rebuild carry-over (tentpole): translated rows == re-simulated rows.
// ---------------------------------------------------------------------------

/// An AIG with a provably equivalent internal pair (n == m as literals,
/// structurally distinct) plus downstream logic observing both, so a
/// merge genuinely rewires fanouts. The substitution merging the larger
/// var into the smaller one (phase = complement XOR of the two literals)
/// is returned ready to rebuild with.
Aig equivalent_pair_aig(aig::SubstitutionMap* subst_out) {
  Aig a(6);
  const Lit f = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g = a.add_or(a.pi_lit(2), a.pi_lit(3));
  const Lit h = a.add_xor(a.pi_lit(4), a.pi_lit(5));
  const Lit n = a.add_or(a.add_and(f, g), a.add_and(f, h));   // (f&g)|(f&h)
  const Lit m = a.add_and(f, a.add_or(g, h));                 // f&(g|h)
  a.add_po(a.add_and(n, a.pi_lit(5)));
  a.add_po(a.add_xor(m, a.pi_lit(0)));
  const Var vn = aig::lit_var(n), vm = aig::lit_var(m);
  const bool phase = aig::lit_compl(n) != aig::lit_compl(m);
  *subst_out = aig::SubstitutionMap(a.num_nodes());
  EXPECT_TRUE(subst_out->merge(std::max(vn, vm),
                               aig::make_lit(std::min(vn, vm), phase)));
  return a;
}

TEST(IncrementalSim, CarryOverThroughRebuildMatchesResimulation) {
  aig::SubstitutionMap subst(1);
  const Aig a = equivalent_pair_aig(&subst);
  const PatternBank bank = PatternBank::random(a.num_pis(), 4, 61);
  IncrementalState inc;
  inc.sync(a, bank);
  ASSERT_TRUE(inc.valid());

  const aig::RebuildResult rr = aig::rebuild(a, subst);
  ASSERT_LT(rr.aig.num_ands(), a.num_ands());

  EXPECT_TRUE(inc.apply_rebuild(rr.aig, rr.lit_map));
  EXPECT_TRUE(inc.valid());
  EXPECT_EQ(inc.stats().carry_fallbacks, 0u);

  // Soundness core: the translated rows must be exactly what simulating
  // the rebuilt AIG over the same bank produces.
  const Signatures full = simulate(rr.aig, bank);
  EXPECT_EQ(inc.signatures().num_words, full.num_words);
  EXPECT_EQ(inc.signatures().words, full.words);

  // And the carried classes must be internally consistent with the new
  // signatures: members of one class agree modulo their phase bits.
  for (const auto& cls : inc.ec().classes()) {
    ASSERT_GE(cls.size(), 2u);
    const Var repr = cls[0];
    for (const Var v : cls) {
      const Word flip =
          inc.ec().phase(v) != inc.ec().phase(repr) ? ~Word{0} : Word{0};
      for (std::size_t w = 0; w < full.num_words; ++w)
        ASSERT_EQ(full.word(v, w) ^ flip, full.word(repr, w))
            << "class member " << v << " word " << w;
    }
  }

  // The next sync over the unchanged (aig, bank) must be a pure cache
  // hit — no re-simulation, no delta columns.
  const CarryStats before = inc.stats();
  inc.sync(rr.aig, bank);
  EXPECT_EQ(inc.stats().full_resims, before.full_resims);
  EXPECT_EQ(inc.stats().incremental_words, before.incremental_words);
}

TEST(IncrementalSim, TranslateSignaturesHandlesComplementedMaps) {
  const Aig a = testutil::random_aig(6, 60, 2, 71);
  const PatternBank bank = PatternBank::random(a.num_pis(), 3, 72);
  const Signatures sigs = simulate(a, bank);
  // Identity map with one node complemented: row must flip.
  std::vector<Lit> lit_map(a.num_nodes());
  for (Var v = 0; v < a.num_nodes(); ++v) lit_map[v] = aig::make_lit(v);
  const Var flipped = a.num_pis() + 3;
  lit_map[flipped] = aig::make_lit(flipped, true);
  const auto out = translate_signatures(sigs, lit_map, a.num_nodes());
  ASSERT_TRUE(out.has_value());
  for (Var v = 0; v < a.num_nodes(); ++v)
    for (std::size_t w = 0; w < sigs.num_words; ++w)
      ASSERT_EQ(out->word(v, w),
                v == flipped ? ~sigs.word(v, w) : sigs.word(v, w));
  // A map leaving a new var uncovered is rejected (not a rebuild map).
  std::vector<Lit> holey = lit_map;
  holey[flipped] = aig::RebuildResult::kLitInvalid;
  EXPECT_FALSE(translate_signatures(sigs, holey, a.num_nodes()).has_value());
  // Conflicting duplicate preimages are rejected: map two rows with
  // different signatures onto one new var.
  std::vector<Lit> dup = lit_map;
  Var other = 0;
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); ++v)
    if (sigs.row(v)[0] != sigs.row(flipped)[0]) other = v;
  ASSERT_NE(other, 0u);
  dup[other] = aig::make_lit(flipped);
  // (flipped itself still maps to flipped complemented, so rows differ.)
  EXPECT_FALSE(translate_signatures(sigs, dup, a.num_nodes()).has_value());
}

TEST(IncrementalSim, DropFrontWordsMirrorsBankTruncation) {
  const Aig a = testutil::random_aig(7, 90, 3, 81);
  PatternBank bank = PatternBank::random(a.num_pis(), 5, 82);
  Signatures sigs = simulate(a, bank);
  const Signatures before = sigs;
  drop_front_words(sigs, 2);
  ASSERT_EQ(sigs.num_words, 3u);
  for (Var v = 0; v < a.num_nodes(); ++v)
    for (std::size_t w = 0; w < 3; ++w)
      ASSERT_EQ(sigs.word(v, w), before.word(v, w + 2));
  drop_front_words(sigs, 0);  // no-op
  EXPECT_EQ(sigs.num_words, 3u);
}

// ---------------------------------------------------------------------------
// Fault-armed fallback (sim.carryover): sound, accounted, recovered.
// ---------------------------------------------------------------------------

TEST(IncrementalSimFault, CarryoverFaultFallsBackToFullResimulation) {
  aig::SubstitutionMap subst(1);
  const Aig a = equivalent_pair_aig(&subst);
  const PatternBank bank = PatternBank::random(a.num_pis(), 4, 91);
  IncrementalState inc;
  inc.sync(a, bank);
  const aig::RebuildResult rr = aig::rebuild(a, subst);

  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kSimCarryover, 1);
  fault::ScopedFaultPlan scoped(plan);
  EXPECT_FALSE(inc.apply_rebuild(rr.aig, rr.lit_map));
  EXPECT_FALSE(inc.valid());
  EXPECT_EQ(inc.stats().carry_fallbacks, 1u);
  EXPECT_EQ(scoped.fires(fault::sites::kSimCarryover), 1u);

  // Recovery: the next sync re-simulates from scratch and the state is
  // bit-identical to what an uninterrupted run would hold.
  inc.sync(rr.aig, bank);
  EXPECT_TRUE(inc.valid());
  EXPECT_EQ(inc.stats().full_resims, 2u);
  const Signatures full = simulate(rr.aig, bank);
  EXPECT_EQ(inc.signatures().words, full.words);
}

TEST(IncrementalSimFault, EngineSurvivesCarryoverFaultWithSoundVerdict) {
  const Aig a = gen::array_multiplier(4);
  const Aig b = gen::wallace_multiplier(4);
  engine::EngineParams p;
  p.enable_po_phase = false;
  p.k_P = 10;
  p.k_p = 4;
  p.k_g = 5;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kSimCarryover, 1, /*fires=*/2);
  fault::ScopedFaultPlan scoped(plan);
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(scoped.fires(fault::sites::kSimCarryover), 0u);
  EXPECT_GT(r.report.count(obs::metric::kPartialSimCarryFallbacks), 0u);
  EXPECT_GT(r.report.count(obs::metric::kFaultsInjected), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradeLadderSteps), 0u);
  // The fallback re-simulations are visible next to the delta columns.
  EXPECT_GT(r.report.count(obs::metric::kPartialSimFullResims), 0u);
}

TEST(IncrementalSimEngine, AbLeverProducesIdenticalVerdicts) {
  // incremental_sim on vs off must agree on the verdict (the A/B contract
  // bench_incremental relies on), and the on-side must actually use the
  // carry-over machinery on a multi-phase run.
  const Aig a = gen::array_multiplier(4);
  const Aig b = gen::wallace_multiplier(4);
  engine::EngineParams p;
  p.enable_po_phase = false;
  p.k_P = 10;
  p.k_p = 4;
  p.k_g = 5;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  engine::EngineParams p_off = p;
  p_off.incremental_sim = false;
  const engine::EngineResult on = engine::SimCecEngine(p).check(a, b);
  const engine::EngineResult off = engine::SimCecEngine(p_off).check(a, b);
  EXPECT_EQ(on.verdict, off.verdict);
  EXPECT_EQ(on.verdict, Verdict::kEquivalent);
  EXPECT_GT(on.report.count(obs::metric::kPartialSimCarryClasses), 0u);
  EXPECT_EQ(off.report.count(obs::metric::kPartialSimCarryClasses), 0u);
  // Off pays a full re-simulation at every sync; on syncs mostly ride the
  // carried state.
  EXPECT_LT(on.report.count(obs::metric::kPartialSimFullResims),
            off.report.count(obs::metric::kPartialSimFullResims));
}

}  // namespace
}  // namespace simsweep::sim
