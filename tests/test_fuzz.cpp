/// \file test_fuzz.cpp
/// \brief Robustness fuzzing: the AIGER reader and DIMACS parser must
/// reject corrupted inputs with exceptions — never crash, hang or accept
/// garbage silently — and randomized pipeline compositions must stay
/// sound.

#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig_analysis.hpp"
#include "aig/aig_io.hpp"
#include "aig/miter.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/random.hpp"
#include "gen/arith.hpp"
#include "opt/balance.hpp"
#include "opt/exact3.hpp"
#include "opt/refactor.hpp"
#include "sat/dimacs.hpp"
#include "sim/partial_sim.hpp"
#include "test_util.hpp"

namespace simsweep {
namespace {

class AigerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AigerFuzz, MutatedBinaryFilesNeverCrashTheReader) {
  const aig::Aig a = testutil::random_aig(6, 60, 4, GetParam());
  std::stringstream ss;
  aig::write_aiger(a, ss);
  const std::string good = ss.str();

  Rng rng(GetParam() * 77 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bad = good;
    // Corrupt 1-4 random bytes (header or delta stream).
    const int corruptions = 1 + static_cast<int>(rng.below(4));
    for (int c = 0; c < corruptions; ++c)
      bad[rng.below(bad.size())] = static_cast<char>(rng.next64());
    std::istringstream in(bad);
    try {
      const aig::Aig parsed = aig::read_aiger(in);
      // If it parsed, it must at least be structurally sane.
      ASSERT_LE(parsed.num_pos(), 1u << 20);
      for (aig::Var v = parsed.num_pis() + 1; v < parsed.num_nodes(); ++v) {
        ASSERT_LT(aig::lit_var(parsed.fanin0(v)), v);
        ASSERT_LT(aig::lit_var(parsed.fanin1(v)), v);
      }
    } catch (const std::exception&) {
      // Rejection is the expected outcome.
    }
  }
}

TEST_P(AigerFuzz, TruncatedFilesAreRejectedOrSane) {
  const aig::Aig a = testutil::random_aig(5, 40, 3, GetParam() + 9);
  std::stringstream ss;
  aig::write_aiger(a, ss);
  const std::string good = ss.str();
  for (std::size_t keep = 0; keep < good.size(); keep += 3) {
    std::istringstream in(good.substr(0, keep));
    try {
      (void)aig::read_aiger(in);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(AigerFuzz, BitFlipAndTruncationMutationsNeverInvokeUb) {
  // Seeded mutation loop over BOTH AIGER formats: single-bit flips
  // composed with truncation, which reaches mutants byte corruption
  // cannot (an off-by-one count with the tail missing, a flipped sign in
  // a header digit, a varint whose continuation bit was cleared). The
  // contract is parse-succeeds-or-throws: any crash, hang or sanitizer
  // report (this suite runs under asan AND ubsan labels) is a bug. A
  // mutant that does parse must still be structurally sound.
  const aig::Aig a = testutil::random_aig(6, 50, 4, GetParam() + 17);
  std::string corpus[2];
  {
    std::stringstream bin, ascii;
    aig::write_aiger(a, bin);
    aig::write_aiger_ascii(a, ascii);
    corpus[0] = bin.str();
    corpus[1] = ascii.str();
  }

  Rng rng(GetParam() * 131 + 7);
  for (int trial = 0; trial < 400; ++trial) {
    std::string bad = corpus[rng.below(2)];
    // 1-8 single-bit flips.
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.below(bad.size());
      bad[at] = static_cast<char>(bad[at] ^ (1 << rng.below(8)));
    }
    // Half the trials also truncate to a random prefix.
    if (rng.below(2) == 0) bad.resize(rng.below(bad.size() + 1));
    std::istringstream in(bad);
    try {
      const aig::Aig parsed = aig::read_aiger(in);
      ASSERT_LE(parsed.num_pos(), 1u << 20);
      for (aig::Var v = parsed.num_pis() + 1; v < parsed.num_nodes(); ++v) {
        ASSERT_LT(aig::lit_var(parsed.fanin0(v)), v);
        ASSERT_LT(aig::lit_var(parsed.fanin1(v)), v);
      }
    } catch (const std::exception&) {
      // Rejection is the expected outcome.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigerFuzz, ::testing::Values(900, 901, 902));

class CkptFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CkptFuzz, BitFlipAndTruncationMutationsNeverInvokeUb) {
  // Checkpoint-loader contract (DESIGN.md §2.8): ckpt::parse() fails
  // CLOSED — nullopt, never a crash, hang, exception or sanitizer report
  // (this suite runs under asan AND ubsan) — on arbitrarily mutated
  // snapshot bytes. The CRC trailer catches almost every mutant; the
  // shape checks catch the rest. A mutant that does parse must still be
  // structurally sound.
  ckpt::Snapshot snap;
  snap.stage = ckpt::Stage::kSweep;
  snap.fingerprint = 0xFEEDFACEull + GetParam();
  snap.elapsed_seconds = 1.25;
  snap.boundary = "round";
  snap.miter = aig::make_miter(gen::array_multiplier(3),
                               gen::wallace_multiplier(3));
  snap.bank = sim::PatternBank::random(snap.miter.num_pis(), 4, GetParam());
  // A plausible journal: merge the last AND onto a smaller literal.
  const aig::Var last = static_cast<aig::Var>(snap.miter.num_nodes() - 1);
  snap.merges.emplace_back(last, aig::make_lit(1));
  snap.removed.push_back(last - 1);
  snap.next_round = 2;
  snap.sweep_pairs_proved = 1;
  const std::vector<std::uint8_t> good = ckpt::serialize(snap);
  ASSERT_TRUE(ckpt::parse(good.data(), good.size()).has_value());

  Rng rng(GetParam() * 193 + 3);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> bad = good;
    // 1-8 single-bit flips.
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.below(bad.size());
      bad[at] = static_cast<std::uint8_t>(bad[at] ^ (1 << rng.below(8)));
    }
    // Half the trials also truncate to a random prefix.
    if (rng.below(2) == 0) bad.resize(rng.below(bad.size() + 1));
    const std::optional<ckpt::Snapshot> parsed =
        ckpt::parse(bad.data(), bad.size());
    if (parsed) {
      const aig::Aig& g = parsed->miter;
      for (aig::Var v = g.num_pis() + 1; v < g.num_nodes(); ++v) {
        ASSERT_LT(aig::lit_var(g.fanin0(v)), v);
        ASSERT_LT(aig::lit_var(g.fanin1(v)), v);
      }
      for (const auto& [node, lit] : parsed->merges)
        ASSERT_LT(aig::lit_var(lit), node);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CkptFuzz, ::testing::Values(920, 921, 922));

TEST(DimacsFuzz, GarbageRejectedGracefully) {
  Rng rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = "p cnf 4 3\n";
    for (int i = 0; i < 20; ++i) {
      switch (rng.below(6)) {
        case 0: text += "p cnf 2 2\n"; break;
        case 1: text += std::to_string(static_cast<int>(rng.below(19)) - 9);
                text += " ";
                break;
        case 2: text += "0\n"; break;
        case 3: text += "c junk\n"; break;
        case 4: text += "%\n"; break;
        default: text += "\n"; break;
      }
    }
    try {
      (void)sat::parse_dimacs_string(text);
    } catch (const std::exception&) {
    }
  }
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, RandomOptimizationChainsPreserveFunction) {
  // Compose random sequences of optimization passes; the result must stay
  // functionally identical to the input.
  Rng rng(GetParam());
  aig::Aig a = testutil::random_aig(7, 80, 4, GetParam() + 40);
  const aig::Aig original = a;
  for (int step = 0; step < 4; ++step) {
    switch (rng.below(3)) {
      case 0: a = opt::balance(a); break;
      case 1: a = opt::rewrite(a); break;
      default: a = opt::exact_rewrite3(a); break;
    }
  }
  EXPECT_TRUE(aig::brute_force_equivalent(original, a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(910, 911, 912, 913));

}  // namespace
}  // namespace simsweep
