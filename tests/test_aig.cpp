/// \file test_aig.cpp
/// \brief Unit and property tests for the AIG and its analyses.

#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "aig/aig_analysis.hpp"
#include "test_util.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::aig {
namespace {

TEST(Lit, Encoding) {
  EXPECT_EQ(make_lit(3), 6u);
  EXPECT_EQ(make_lit(3, true), 7u);
  EXPECT_EQ(lit_var(make_lit(5, true)), 5u);
  EXPECT_TRUE(lit_compl(make_lit(5, true)));
  EXPECT_FALSE(lit_compl(make_lit(5)));
  EXPECT_EQ(lit_not(make_lit(5)), make_lit(5, true));
  EXPECT_EQ(lit_notcond(make_lit(5), true), make_lit(5, true));
  EXPECT_EQ(lit_notcond(make_lit(5, true), true), make_lit(5));
  EXPECT_EQ(lit_regular(make_lit(5, true)), make_lit(5));
  EXPECT_EQ(kLitFalse, 0u);
  EXPECT_EQ(kLitTrue, 1u);
}

TEST(Aig, BasicConstruction) {
  Aig a(3);
  EXPECT_EQ(a.num_pis(), 3u);
  EXPECT_EQ(a.num_nodes(), 4u);  // constant + 3 PIs
  EXPECT_EQ(a.num_ands(), 0u);
  EXPECT_TRUE(a.is_const(0));
  EXPECT_TRUE(a.is_pi(1));
  EXPECT_TRUE(a.is_pi(3));
  EXPECT_FALSE(a.is_and(3));
  const Lit g = a.add_and(a.pi_lit(0), a.pi_lit(1));
  EXPECT_TRUE(a.is_and(lit_var(g)));
  EXPECT_EQ(a.num_ands(), 1u);
}

TEST(Aig, PiAfterAndThrows) {
  Aig a(2);
  a.add_and(a.pi_lit(0), a.pi_lit(1));
  EXPECT_THROW(a.add_pi(), std::logic_error);
}

TEST(Aig, ConstantFolding) {
  Aig a(2);
  const Lit x = a.pi_lit(0);
  EXPECT_EQ(a.add_and(kLitFalse, x), kLitFalse);
  EXPECT_EQ(a.add_and(kLitTrue, x), x);
  EXPECT_EQ(a.add_and(x, x), x);
  EXPECT_EQ(a.add_and(x, lit_not(x)), kLitFalse);
  EXPECT_EQ(a.num_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
  Aig a(2);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit g1 = a.add_and(x, y);
  const Lit g2 = a.add_and(y, x);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(a.num_ands(), 1u);
  const Lit g3 = a.add_and(lit_not(x), y);
  EXPECT_NE(g1, g3);
  EXPECT_EQ(a.num_ands(), 2u);
}

TEST(Aig, DerivedGatesSemantics) {
  Aig a(3);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1), z = a.pi_lit(2);
  a.add_po(a.add_or(x, y));
  a.add_po(a.add_xor(x, y));
  a.add_po(a.add_mux(x, y, z));
  a.add_po(a.add_maj3(x, y, z));
  for (unsigned p = 0; p < 8; ++p) {
    const bool vx = p & 1, vy = (p >> 1) & 1, vz = (p >> 2) & 1;
    const auto out = a.evaluate({vx, vy, vz});
    EXPECT_EQ(out[0], vx || vy);
    EXPECT_EQ(out[1], vx != vy);
    EXPECT_EQ(out[2], vx ? vy : vz);
    EXPECT_EQ(out[3], (vx && vy) || (vx && vz) || (vy && vz));
  }
}

TEST(Aig, EvaluateLitMatchesEvaluate) {
  const Aig a = testutil::random_aig(5, 40, 4, 123);
  for (unsigned p = 0; p < 32; ++p) {
    std::vector<bool> pis(5);
    for (unsigned i = 0; i < 5; ++i) pis[i] = (p >> i) & 1;
    const auto outs = a.evaluate(pis);
    for (std::size_t o = 0; o < a.num_pos(); ++o)
      ASSERT_EQ(outs[o], a.evaluate_lit(a.po(o), pis));
  }
}

TEST(Analysis, Levels) {
  Aig a(2);
  const Lit g1 = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g2 = a.add_and(g1, a.pi_lit(0));
  const auto lv = compute_levels(a);
  EXPECT_EQ(lv[0], 0u);
  EXPECT_EQ(lv[1], 0u);
  EXPECT_EQ(lv[lit_var(g1)], 1u);
  EXPECT_EQ(lv[lit_var(g2)], 2u);
}

TEST(Analysis, Fanouts) {
  Aig a(2);
  const Lit g1 = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g2 = a.add_and(g1, a.pi_lit(0));
  a.add_po(g2);
  a.add_po(g1);
  const auto fo = compute_fanouts(a);
  EXPECT_EQ(fo[1], 2u);            // PI0 feeds g1 and g2
  EXPECT_EQ(fo[lit_var(g1)], 2u);  // g2 + PO
  EXPECT_EQ(fo[lit_var(g2)], 1u);  // PO
}

TEST(Analysis, SupportsExactAndCapped) {
  Aig a(4);
  const Lit g1 = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g2 = a.add_and(g1, a.pi_lit(2));
  const Lit g3 = a.add_and(g2, lit_not(g1));
  const auto info = compute_supports(a, 8);
  EXPECT_EQ(info.sets[lit_var(g1)], (std::vector<Var>{1, 2}));
  EXPECT_EQ(info.sets[lit_var(g2)], (std::vector<Var>{1, 2, 3}));
  EXPECT_EQ(info.sets[lit_var(g3)], (std::vector<Var>{1, 2, 3}));
  EXPECT_TRUE(info.small(lit_var(g3)));

  const auto capped = compute_supports(a, 2);
  EXPECT_TRUE(capped.small(lit_var(g1)));
  EXPECT_FALSE(capped.small(lit_var(g2)));  // 3 > cap
  EXPECT_FALSE(capped.small(lit_var(g3)));  // overflow propagates
}

TEST(Analysis, SupportOverflowPropagates) {
  const Aig a = testutil::random_aig(12, 200, 4, 5);
  const auto exact = compute_supports(a, 12);
  const auto capped = compute_supports(a, 4);
  for (Var v = 0; v < a.num_nodes(); ++v) {
    if (!exact.small(v)) continue;
    if (exact.sets[v].size() <= 4) {
      ASSERT_TRUE(capped.small(v));
      ASSERT_EQ(capped.sets[v], exact.sets[v]);
    } else {
      ASSERT_FALSE(capped.small(v));
    }
  }
}

TEST(Analysis, TfiCone) {
  Aig a(3);
  const Lit g1 = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g2 = a.add_and(g1, a.pi_lit(2));
  const Var v1 = lit_var(g1), v2 = lit_var(g2);
  // Full cone down to PIs.
  EXPECT_EQ(tfi_cone(a, {v2}, {}), (std::vector<Var>{1, 2, 3, v1, v2}));
  // Stop at g1: g1 excluded, its TFI not entered.
  EXPECT_EQ(tfi_cone(a, {v2}, {v1}), (std::vector<Var>{3, v2}));
}

TEST(Analysis, ConeTruthTable) {
  Aig a(3);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1), z = a.pi_lit(2);
  const Lit f = a.add_or(a.add_and(x, lit_not(y)), a.add_and(y, z));
  const tt::TruthTable t = cone_truth_table(a, f, {1, 2, 3});
  for (unsigned p = 0; p < 8; ++p) {
    const bool vx = p & 1, vy = (p >> 1) & 1, vz = (p >> 2) & 1;
    ASSERT_EQ(t.get_bit(p), (vx && !vy) || (vy && vz));
  }
  // Complemented root.
  EXPECT_EQ(cone_truth_table(a, lit_not(f), {1, 2, 3}), ~t);
}

TEST(Analysis, ConeTruthTableRejectsNonCut) {
  Aig a(2);
  const Lit g = a.add_and(a.pi_lit(0), a.pi_lit(1));
  // {PI1} is not a cut of g (PI2 path not blocked).
  EXPECT_THROW(cone_truth_table(a, g, {1}), std::invalid_argument);
}

TEST(Analysis, GlobalTruthTableMatchesEvaluate) {
  const Aig a = testutil::random_aig(6, 60, 3, 99);
  for (std::size_t o = 0; o < a.num_pos(); ++o) {
    const tt::TruthTable t = global_truth_table(a, a.po(o));
    for (std::uint64_t p = 0; p < 64; ++p)
      ASSERT_EQ(t.get_bit(p), testutil::eval_lit(a, a.po(o), p));
  }
}

TEST(Analysis, BruteForceEquivalence) {
  const Aig a = testutil::random_aig(5, 30, 3, 1);
  EXPECT_TRUE(brute_force_equivalent(a, a));
  const Aig b = testutil::mutate(a, 2);
  // The mutation flips one fanin polarity; check agreement with direct
  // evaluation rather than assuming inequivalence.
  bool differs = false;
  for (unsigned p = 0; p < 32 && !differs; ++p) {
    std::vector<bool> pis(5);
    for (unsigned i = 0; i < 5; ++i) pis[i] = (p >> i) & 1;
    differs = a.evaluate(pis) != b.evaluate(pis);
  }
  EXPECT_EQ(brute_force_equivalent(a, b), !differs);
}

class RandomAigProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAigProperty, IdOrderIsTopological) {
  const Aig a = testutil::random_aig(8, 120, 4, GetParam());
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); ++v) {
    ASSERT_LT(lit_var(a.fanin0(v)), v);
    ASSERT_LT(lit_var(a.fanin1(v)), v);
  }
}

TEST_P(RandomAigProperty, StrashHasNoDuplicates) {
  const Aig a = testutil::random_aig(8, 120, 4, GetParam());
  std::set<std::pair<Lit, Lit>> seen;
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); ++v) {
    Lit f0 = a.fanin0(v), f1 = a.fanin1(v);
    if (f0 > f1) std::swap(f0, f1);
    ASSERT_TRUE(seen.emplace(f0, f1).second) << "duplicate AND node";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAigProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace simsweep::aig
