#include <mutex>

#include "fault/fault.hpp"
#include "obs/metric_names.hpp"

std::mutex g_bad_mutex;
// audit:exempt(condition_variable pairing; guards no data)
std::mutex g_cv_mutex;

void instrumented(Registry& r) {
  if (SIMSWEEP_FAULT_POINT(fault::sites::kDemoAlloc)) recover();
  r.add(obs::metric::kDemoCounter);
}
