constexpr const char* kSchemaFamilies[] = {"demo"};
