#include "common/thread_annotations.hpp"
#include "fault/fault.hpp"
#include "obs/metric_names.hpp"

class Tally {
 public:
  void bump();

 private:
  common::Mutex mu_;
  long guarded_total_ SIMSWEEP_GUARDED_BY(mu_);
  // audit:exempt(written once before the threads start)
  long config_value_;
  long naked_total_;
};

void instrumented(Registry& r) {
  if (SIMSWEEP_FAULT_POINT(fault::sites::kDemoAlloc)) recover();
  r.add(obs::metric::kDemoCounter);
}
