#include "fault/fault.hpp"
#include "obs/metric_names.hpp"

void instrumented(Registry& r) {
  if (SIMSWEEP_FAULT_POINT(fault::sites::kDemoAlloc)) recover();
  r.add(obs::metric::kDemoCounter);
  r.add("demo.unregistered");
}
