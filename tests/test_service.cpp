/// \file test_service.cpp
/// \brief Tests for the batch job service (DESIGN.md §2.9): concurrent-job
/// isolation against the sequential flow, the fingerprint-keyed verdict
/// cache, admission-control degradation and the JSON-lines job codec.
///
/// Suite names carry the "CecService" prefix so the static-analysis
/// checked-build lane picks them up (tools/run_static_analysis.sh).

#include "service/cec_service.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "fault/fault.hpp"
#include "gen/arith.hpp"
#include "obs/metric_names.hpp"
#include "obs/report.hpp"
#include "portfolio/portfolio.hpp"
#include "service/json_jobs.hpp"
#include "test_util.hpp"

namespace simsweep::service {
namespace {

using aig::Aig;

portfolio::CombinedParams small_params() {
  portfolio::CombinedParams p;
  p.engine.k_P = 16;
  p.engine.k_p = 10;
  p.engine.k_g = 10;
  p.engine.k_l = 6;
  p.engine.memory_words = 1 << 16;
  return p;
}

/// The metric-name set of a report — its "shape". Tiny test circuits do
/// not light up every module section the full v3 validator demands (the
/// CI batch smoke covers that on the demo pair); shape identity against
/// the sequential flow is the isolation contract here.
std::set<std::string> report_shape(const obs::Snapshot& s) {
  std::set<std::string> names;
  for (const obs::Metric& m : s.metrics) names.insert(m.name);
  return names;
}

JobSpec make_job(const Aig& a, const Aig& b, const std::string& id) {
  JobSpec s;
  s.id = id;
  s.a = a;
  s.b = b;
  s.params = small_params();
  return s;
}

/// An equivalent pair the engine decides quickly but not instantly.
void equivalent_pair(Aig* a, Aig* b) {
  *a = gen::ripple_adder(5);
  *b = gen::kogge_stone_adder(5);
}

/// An inequivalent pair with a real CEX (skip if the mutation was a no-op).
bool inequivalent_pair(Aig* a, Aig* b) {
  *a = testutil::random_aig(8, 120, 5, 304);
  *b = testutil::mutate(*a, 305);
  return !aig::brute_force_equivalent(*a, *b);
}

TEST(CecService, ConcurrentJobsMatchSequentialVerdicts) {
  Aig ea, eb, na, nb;
  equivalent_pair(&ea, &eb);
  if (!inequivalent_pair(&na, &nb)) GTEST_SKIP() << "mutation no-op";
  // The reference runs get an (unlimited) ledger like service jobs do —
  // a ledgered engine publishes the degrade.memory_* telemetry rows.
  fault::MemoryLedger ref_ledger(0);
  portfolio::CombinedParams ref = small_params();
  ref.engine.memory_ledger = &ref_ledger;
  const portfolio::CombinedResult se = portfolio::combined_check(ea, eb, ref);
  const portfolio::CombinedResult sn = portfolio::combined_check(na, nb, ref);

  ServiceParams sp;
  sp.max_concurrent_jobs = 2;
  CecService svc(sp);
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(ea, eb, "eq"));
  jobs.push_back(make_job(na, nb, "neq"));
  const std::vector<JobResult> results = svc.run_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 2u);

  // Bit-identical verdicts vs the sequential flow, per job.
  EXPECT_EQ(results[0].id, "eq");
  EXPECT_EQ(results[0].verdict, se.verdict);
  EXPECT_EQ(results[1].id, "neq");
  EXPECT_EQ(results[1].verdict, sn.verdict);
  ASSERT_TRUE(results[1].cex.has_value());
  EXPECT_NE(na.evaluate(*results[1].cex), nb.evaluate(*results[1].cex));

  // Each job carries its own report, shaped exactly as the sequential
  // run's — concurrency must not add, drop or cross-wire metrics.
  for (const JobResult& r : results) EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(report_shape(results[0].report), report_shape(se.report));
  EXPECT_EQ(report_shape(results[1].report), report_shape(sn.report));

  const obs::Snapshot m = svc.metrics();
  EXPECT_EQ(m.count(obs::metric::kServiceJobsSubmitted), 2u);
  EXPECT_EQ(m.count(obs::metric::kServiceJobsCompleted), 2u);
  EXPECT_EQ(m.count(obs::metric::kServiceJobsFailed), 0u);
}

TEST(CecService, ResubmittedIdenticalJobIsCacheHit) {
  Aig a, b;
  equivalent_pair(&a, &b);
  ServiceParams sp;
  CecService svc(sp);
  const JobResult r1 = svc.wait(svc.submit(make_job(a, b, "first")));
  EXPECT_FALSE(r1.cache_hit);
  const JobResult r2 = svc.wait(svc.submit(make_job(a, b, "second")));
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r1.verdict, r2.verdict);
  EXPECT_EQ(r2.verdict, Verdict::kEquivalent);

  // The cached report is the report of the run that filled the entry —
  // byte-identical to the first submission's.
  EXPECT_EQ(obs::to_json(r2.report), obs::to_json(r1.report));

  const obs::Snapshot m = svc.metrics();
  EXPECT_EQ(m.count(obs::metric::kServiceCacheHits), 1u);
  EXPECT_EQ(m.count(obs::metric::kServiceCacheMisses), 1u);
}

TEST(CecService, VerdictRelevantParamChangeMissesCache) {
  Aig a, b;
  equivalent_pair(&a, &b);
  ServiceParams sp;
  CecService svc(sp);
  const JobResult r1 = svc.wait(svc.submit(make_job(a, b, "first")));
  EXPECT_FALSE(r1.cache_hit);
  // A different simulation seed is a different fingerprint: the cache-key
  // contract (DESIGN.md §2.9) must never serve a stale entry across a
  // verdict-relevant parameter change.
  JobSpec reseeded = make_job(a, b, "reseeded");
  reseeded.params.engine.seed = 0xFEED;
  const JobResult r2 = svc.wait(svc.submit(std::move(reseeded)));
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(svc.metrics().count(obs::metric::kServiceCacheMisses), 2u);
}

TEST(CecService, InflightDuplicatesCoalesceToOneComputation) {
  Aig a, b;
  equivalent_pair(&a, &b);
  ServiceParams sp;
  sp.max_concurrent_jobs = 2;
  CecService svc(sp);
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(a, b, "original"));
  jobs.push_back(make_job(a, b, "duplicate"));
  const std::vector<JobResult> results = svc.run_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].verdict, Verdict::kEquivalent);
  EXPECT_EQ(results[1].verdict, Verdict::kEquivalent);
  // Whichever worker wins the in-flight slot computes; the other parks on
  // the fingerprint and is served from the fresh entry. Exactly one
  // computation either way — never two.
  const obs::Snapshot m = svc.metrics();
  EXPECT_EQ(m.count(obs::metric::kServiceCacheMisses), 1u);
  EXPECT_EQ(m.count(obs::metric::kServiceCacheHits), 1u);
}

TEST(CecService, AdmitFaultDegradesToQueuingNeverWrongVerdict) {
  Aig ea, eb, na, nb;
  equivalent_pair(&ea, &eb);
  if (!inequivalent_pair(&na, &nb)) GTEST_SKIP() << "mutation no-op";

  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kServiceAdmit, 1);
  fault::ScopedFaultPlan armed(plan);

  ServiceParams sp;
  sp.max_concurrent_jobs = 2;
  CecService svc(sp);
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(ea, eb, "eq"));
  jobs.push_back(make_job(na, nb, "neq"));
  const std::vector<JobResult> results = svc.run_batch(std::move(jobs));

  // The forced denial re-queues (or, with nothing running, admits
  // un-staked); either way both jobs complete with the right verdicts.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].verdict, Verdict::kEquivalent);
  EXPECT_EQ(results[1].verdict, Verdict::kNotEquivalent);
  const obs::Snapshot m = svc.metrics();
  EXPECT_GE(m.count(obs::metric::kServiceJobsRejected), 1u);
  EXPECT_EQ(m.count(obs::metric::kServiceJobsCompleted), 2u);
  EXPECT_GE(results[0].admission_rejections + results[1].admission_rejections,
            1u);
}

TEST(CecService, CacheFaultForcesSoundRecompute) {
  Aig a, b;
  equivalent_pair(&a, &b);
  // nth=2: the first submission's lookup consumes hit 1 (a genuine miss),
  // the resubmission's lookup is hit 2 and fires — a forced miss.
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kServiceCache, 2);
  fault::ScopedFaultPlan armed(plan);

  ServiceParams sp;
  CecService svc(sp);
  const JobResult r1 = svc.wait(svc.submit(make_job(a, b, "first")));
  EXPECT_FALSE(r1.cache_hit);
  const JobResult r2 = svc.wait(svc.submit(make_job(a, b, "forced-miss")));
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(r1.verdict, r2.verdict);
  // With the drill spent, the third submission is a genuine hit again.
  const JobResult r3 = svc.wait(svc.submit(make_job(a, b, "hit")));
  EXPECT_TRUE(r3.cache_hit);
  const obs::Snapshot m = svc.metrics();
  EXPECT_EQ(m.count(obs::metric::kServiceCacheMisses), 2u);
  EXPECT_EQ(m.count(obs::metric::kServiceCacheHits), 1u);
}

TEST(CecService, AdmissionNeverOvercommitsTheLedger) {
  Aig a, b;
  equivalent_pair(&a, &b);
  ServiceParams sp;
  sp.max_concurrent_jobs = 2;
  sp.memory_budget_bytes = std::uint64_t{100} << 20;
  sp.default_job_stake_bytes = std::uint64_t{64} << 20;  // only one fits
  sp.cache_capacity = 0;  // force both jobs to really run
  CecService svc(sp);
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(a, b, "first"));
  jobs.push_back(
      make_job(gen::ripple_adder(4), gen::kogge_stone_adder(4), "second"));
  const std::vector<JobResult> results = svc.run_batch(std::move(jobs));
  for (const JobResult& r : results) EXPECT_TRUE(r.error.empty()) << r.error;
  // Two stakes exceed the budget, so the second job queued until the
  // first released: in-flight never exceeded one and the ledger peak
  // stayed within budget. Queuing, not overcommit, is the degradation.
  EXPECT_LE(svc.ledger().peak_bytes(), sp.memory_budget_bytes);
  EXPECT_EQ(svc.metrics().value(obs::metric::kServiceRunningPeak), 1.0);
}

TEST(CecService, DeadlineExpiredInQueueCompletesUnrun) {
  Aig ea, eb, na, nb;
  equivalent_pair(&ea, &eb);
  if (!inequivalent_pair(&na, &nb)) GTEST_SKIP() << "mutation no-op";
  ServiceParams sp;  // one worker: the second job must wait its turn
  CecService svc(sp);
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(ea, eb, "long"));
  JobSpec dying = make_job(na, nb, "dying");
  dying.deadline_seconds = 1e-6;  // expires while "long" runs
  jobs.push_back(std::move(dying));
  const std::vector<JobResult> results = svc.run_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].deadline_expired);
  EXPECT_TRUE(results[1].deadline_expired);
  // Completed unrun: the sound kUndecided, never a partial verdict.
  EXPECT_EQ(results[1].verdict, Verdict::kUndecided);
  EXPECT_EQ(svc.metrics().count(obs::metric::kServiceDeadlineExpired), 1u);
}

TEST(CecService, PriorityOrdersDispatchFifoWithin) {
  Aig a, b;
  equivalent_pair(&a, &b);
  ServiceParams sp;  // one worker makes the dispatch order total
  CecService svc(sp);
  std::vector<JobSpec> jobs;
  for (int pri : {0, 5, 10, 5}) {
    JobSpec s = make_job(a, b, "pri" + std::to_string(pri));
    s.priority = pri;
    jobs.push_back(std::move(s));
  }
  // run_batch submits atomically, so the worker sees the full queue:
  // priority 10 first, then the two 5s in submission order, then 0.
  const std::vector<JobResult> results = svc.run_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[2].start_order, 1u);
  EXPECT_EQ(results[1].start_order, 2u);
  EXPECT_EQ(results[3].start_order, 3u);
  EXPECT_EQ(results[0].start_order, 4u);
}

TEST(CecService, JobFailureIsIsolated) {
  Aig a, b;
  equivalent_pair(&a, &b);
  ServiceParams sp;
  sp.max_concurrent_jobs = 2;
  CecService svc(sp);
  JobSpec broken;
  broken.id = "broken";
  broken.a_path = "/nonexistent/a.aig";
  broken.b_path = "/nonexistent/b.aig";
  std::vector<JobSpec> jobs;
  jobs.push_back(std::move(broken));
  jobs.push_back(make_job(a, b, "fine"));
  const std::vector<JobResult> results = svc.run_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_EQ(results[0].verdict, Verdict::kUndecided);
  EXPECT_TRUE(results[1].error.empty());
  EXPECT_EQ(results[1].verdict, Verdict::kEquivalent);
  const obs::Snapshot m = svc.metrics();
  EXPECT_EQ(m.count(obs::metric::kServiceJobsFailed), 1u);
  EXPECT_EQ(m.count(obs::metric::kServiceJobsCompleted), 2u);
}

// --- JSON-lines job codec ---

TEST(CecServiceJobSpec, ParsesEveryKeyAndKeepsDefaults) {
  JobSpec spec;
  spec.params.engine.k_P = 24;  // caller default; the line must keep it
  std::string error;
  ASSERT_TRUE(parse_job_line(
      R"({"id": "j1", "a": "x.aig", "b": "y.aig", "deadline": 2.5, )"
      R"("priority": 3, "time_limit": 1.5, "sweep_threads": 4, )"
      R"("seed": 7, "sim_words": 8, "k_p": 12, "k_g": 11, "k_l": 5, )"
      R"("conflict_limit": 5000, "max_rounds": 9, )"
      R"("interleave_rewriting": true, "max_rewrite_rounds": 2})",
      &spec, &error))
      << error;
  EXPECT_EQ(spec.id, "j1");
  EXPECT_EQ(spec.a_path, "x.aig");
  EXPECT_EQ(spec.b_path, "y.aig");
  EXPECT_DOUBLE_EQ(spec.deadline_seconds, 2.5);
  EXPECT_EQ(spec.priority, 3);
  EXPECT_DOUBLE_EQ(spec.params.engine.time_limit, 1.5);
  EXPECT_EQ(spec.params.sweeper.num_threads, 4u);
  EXPECT_EQ(spec.params.engine.seed, 7u);
  EXPECT_EQ(spec.params.engine.sim_words, 8u);
  EXPECT_EQ(spec.params.engine.k_p, 12u);
  EXPECT_EQ(spec.params.engine.k_g, 11u);
  EXPECT_EQ(spec.params.engine.k_l, 5u);
  EXPECT_EQ(spec.params.sweeper.conflict_limit, 5000);
  EXPECT_EQ(spec.params.sweeper.max_rounds, 9u);
  EXPECT_TRUE(spec.params.interleave_rewriting);
  EXPECT_EQ(spec.params.max_rewrite_rounds, 2u);
  EXPECT_EQ(spec.params.engine.k_P, 24u) << "unset key must keep default";
}

TEST(CecServiceJobSpec, RejectsUnknownKeysAndMissingPaths) {
  JobSpec spec;
  std::string error;
  EXPECT_FALSE(parse_job_line(
      R"({"a": "x.aig", "b": "y.aig", "sweeep_threads": 2})", &spec,
      &error));
  EXPECT_NE(error.find("sweeep_threads"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(parse_job_line(R"({"a": "x.aig"})", &spec, &error));
  EXPECT_NE(error.find("required"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(
      parse_job_line(R"({"a": "x.aig", "b": "y.aig"} junk)", &spec, &error));
  error.clear();
  EXPECT_FALSE(parse_job_line("not json", &spec, &error));
}

TEST(CecServiceJobSpec, ResultLineEscapesAndRoundTrips) {
  JobResult r;
  r.id = "quo\"te";
  r.verdict = Verdict::kNotEquivalent;
  r.cex = std::vector<bool>{true, false, true};
  r.cache_hit = true;
  r.error = "";
  const std::string line = result_to_json_line(r);
  EXPECT_NE(line.find("\"quo\\\"te\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"NOT equivalent\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"cex\": \"101\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"cache_hit\": true"), std::string::npos) << line;
}

}  // namespace
}  // namespace simsweep::service
