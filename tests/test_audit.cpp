/// \file test_audit.cpp
/// \brief The cross-artifact consistency linter itself (DESIGN.md §2.6).
///
/// Each fixture tree under tests/fixtures/audit/ is a minimal repo root
/// (site catalog, metric catalog, schema-family table, one source file)
/// that is clean except for EXACTLY one planted violation. The suite
/// asserts the audit's exact diagnostic — file, line, rule id, message
/// prefix — and its nonzero exit for every rule category, that planted
/// `audit:exempt(reason)` comments are honored, and that the real tree
/// audits clean with exit 0 (the acceptance gate that
/// `ctest -R simsweep_audit` enforces on every host).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef SIMSWEEP_AUDIT_BIN
#error "tests/CMakeLists.txt must define SIMSWEEP_AUDIT_BIN"
#endif
#ifndef SIMSWEEP_SOURCE_DIR
#error "tests/CMakeLists.txt must define SIMSWEEP_SOURCE_DIR"
#endif

namespace {

struct AuditRun {
  int exit_code = -1;
  std::string output;
};

/// Runs the audit binary over `root` (relative roots resolve against the
/// repo's fixture directory) and captures stdout.
AuditRun run_audit(const std::string& root) {
  const std::string resolved =
      root.empty() || root[0] == '/'
          ? root
          : std::string(SIMSWEEP_SOURCE_DIR) + "/tests/fixtures/audit/" +
                root;
  const std::string cmd =
      std::string(SIMSWEEP_AUDIT_BIN) + " " + resolved + " 2>&1";
  AuditRun r;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 1024> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), n);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

int count_lines_with(const std::string& text, const std::string& needle) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

/// Asserts the fixture reports exactly one violation, with the exact
/// `path:line: audit[rule]: ` diagnostic head and a message fragment.
void expect_single_violation(const std::string& fixture,
                             const std::string& diagnostic_head,
                             const std::string& message_fragment) {
  const AuditRun r = run_audit(fixture);
  EXPECT_EQ(r.exit_code, 1) << fixture << " output:\n" << r.output;
  EXPECT_NE(r.output.find(diagnostic_head), std::string::npos)
      << fixture << " output:\n" << r.output;
  EXPECT_NE(r.output.find(message_fragment), std::string::npos)
      << fixture << " output:\n" << r.output;
  EXPECT_EQ(count_lines_with(r.output, ": audit["), 1)
      << fixture << " must plant exactly one violation; output:\n"
      << r.output;
  EXPECT_NE(r.output.find("simsweep_audit: 1 violation"), std::string::npos)
      << fixture << " output:\n" << r.output;
}

TEST(Audit, UnknownFaultSite) {
  expect_single_violation(
      "unknown_fault_site",
      "src/demo.cpp:6: audit[fault-site-unknown]: ",
      "site \"demo.bogus\" is not in src/fault/fault_sites.def");
}

TEST(Audit, DeadFaultSiteCatalogRow) {
  expect_single_violation(
      "dead_fault_site",
      "src/fault/fault_sites.def:2: audit[fault-site-dead]: ",
      "catalog row kNeverInjected (\"demo.never\") is referenced by no "
      "fault point");
}

TEST(Audit, UnregisteredMetric) {
  expect_single_violation(
      "unregistered_metric",
      "src/demo.cpp:7: audit[metric-unregistered]: ",
      "\"demo.unregistered\" is neither a registered leaf nor derived "
      "from a registered family prefix");
}

TEST(Audit, BannedStdMutex) {
  const std::string fixture = "banned_mutex";
  expect_single_violation(
      fixture, "src/demo.cpp:6: audit[banned-construct]: ",
      "std::mutex outside its wrapper: use common::Mutex");
  // The second std::mutex in the fixture is audit:exempt'ed — it must
  // not appear in the output (expect_single_violation already pinned the
  // count to one; this pins it to the right one).
  const AuditRun r = run_audit(fixture);
  EXPECT_EQ(r.output.find("src/demo.cpp:8:"), std::string::npos)
      << r.output;
}

TEST(Audit, UnguardedField) {
  const std::string fixture = "unguarded_field";
  expect_single_violation(
      fixture, "src/demo.cpp:14: audit[unguarded-field]: ",
      "field `long naked_total_` of a mutex-owning class has no "
      "SIMSWEEP_GUARDED_BY");
  // The guarded and the exempted siblings must both pass.
  const AuditRun r = run_audit(fixture);
  EXPECT_EQ(r.output.find("guarded_total_"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("config_value_"), std::string::npos) << r.output;
}

TEST(Audit, CataloguedSiteSpelledAsLiteral) {
  expect_single_violation(
      "site_literal", "src/demo.cpp:6: audit[fault-site-literal]: ",
      "site \"demo.alloc\" spelled as a raw string; use fault::sites "
      "constants");
}

TEST(Audit, RegisteredMetricSpelledAsLiteral) {
  expect_single_violation(
      "metric_literal", "src/demo.cpp:7: audit[metric-literal]: ",
      "registered metric \"demo.counter\" respelled as a raw string; use "
      "obs::metric constants");
}

TEST(Audit, MissingRootIsAConfigurationError) {
  const AuditRun r = run_audit("no_such_fixture_tree");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("missing"), std::string::npos) << r.output;
}

TEST(Audit, RealTreeIsClean) {
  const AuditRun r = run_audit(SIMSWEEP_SOURCE_DIR);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("simsweep_audit: clean"), std::string::npos)
      << r.output;
}

}  // namespace
