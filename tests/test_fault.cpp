/// \file test_fault.cpp
/// \brief Fault-injection framework, resource governor and degradation
/// ladder (DESIGN.md §2.4).
///
/// Three layers of coverage:
///  - the injector itself (deterministic nth-hit and probability replay,
///    scoped install/restore, idle-path behaviour);
///  - the governor primitives (memory ledger, lease RAII, deadlines);
///  - end-to-end recovery: every catalogued site is injected against the
///    real engine / sweeper / pool with a fixed seed, and the run must
///    survive with a SOUND verdict while the run report records the
///    faults and the ladder steps taken (the PR's acceptance contract).

#include "fault/fault.hpp"
#include "fault/governor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "ckpt/checkpoint.hpp"
#include "engine/engine.hpp"
#include "gen/arith.hpp"
#include "opt/resyn.hpp"
#include "parallel/thread_pool.hpp"
#include "portfolio/portfolio.hpp"
#include "service/cec_service.hpp"
#include "sweep/parallel_sweeper.hpp"
#include "sweep/sat_sweeper.hpp"
#include "test_util.hpp"
#include "obs/metric_names.hpp"

namespace simsweep {
namespace {

// ---------------------------------------------------------------------------
// Injector.
// ---------------------------------------------------------------------------

TEST(FaultInjector, IdleSitesNeverFire) {
  // No plan installed: the fast path (one relaxed load) returns false.
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(SIMSWEEP_FAULT_POINT("test.idle"));
}

TEST(FaultInjector, NthHitFiresDeterministically) {
  fault::FaultPlan plan;
  plan.on_hit("test.site", 3);  // fire exactly on the 3rd hit
  fault::ScopedFaultPlan scoped(plan);
  std::vector<bool> pattern;
  for (int i = 0; i < 6; ++i)
    pattern.push_back(SIMSWEEP_FAULT_POINT("test.site"));
  EXPECT_EQ(pattern,
            (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(scoped.hits("test.site"), 6u);
  EXPECT_EQ(scoped.fires("test.site"), 1u);
  EXPECT_EQ(scoped.fires_total(), 1u);
  // A site the plan does not arm records nothing and never fires.
  EXPECT_FALSE(SIMSWEEP_FAULT_POINT("test.unarmed"));
  EXPECT_EQ(scoped.fires("test.unarmed"), 0u);
}

TEST(FaultInjector, NthHitWithFireWindow) {
  fault::FaultPlan plan;
  plan.on_hit("test.site", 2, 3);  // hits 2, 3 and 4 fail
  fault::ScopedFaultPlan scoped(plan);
  std::vector<bool> pattern;
  for (int i = 0; i < 6; ++i)
    pattern.push_back(SIMSWEEP_FAULT_POINT("test.site"));
  EXPECT_EQ(pattern,
            (std::vector<bool>{false, true, true, true, false, false}));
  EXPECT_EQ(scoped.fires("test.site"), 3u);
}

TEST(FaultInjector, ProbabilityModeReplaysExactly) {
  // The per-site Rng substream is forked from the plan seed at install
  // time, so the same plan over the same hit sequence reproduces the
  // exact fire pattern — the property that makes probabilistic soak
  // failures replayable.
  fault::FaultPlan plan;
  plan.seed(42).with_probability("test.p", 0.3);
  auto run = [&](const fault::FaultPlan& pl) {
    std::vector<bool> fired;
    fault::ScopedFaultPlan scoped(pl);
    for (int i = 0; i < 200; ++i)
      fired.push_back(SIMSWEEP_FAULT_POINT("test.p"));
    return fired;
  };
  const std::vector<bool> first = run(plan);
  const std::vector<bool> second = run(plan);
  EXPECT_EQ(first, second);
  const std::size_t fires =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);   // p=0.3 over 200 hits: all-miss is ~2^-103
  EXPECT_LT(fires, 200u);
  // A different seed forks different substreams.
  fault::FaultPlan other;
  other.seed(43).with_probability("test.p", 0.3);
  EXPECT_NE(run(other), first);
}

TEST(FaultInjector, MaxFiresBoundsProbabilityMode) {
  fault::FaultPlan plan;
  plan.seed(7).with_probability("test.p", 1.0, /*max_fires=*/2);
  fault::ScopedFaultPlan scoped(plan);
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    if (SIMSWEEP_FAULT_POINT("test.p")) ++fires;
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(scoped.hits("test.p"), 10u);
}

TEST(FaultInjector, NestedPlansShadowAndRestore) {
  fault::FaultPlan outer;
  outer.on_hit("test.outer", 1, /*fires=*/0);  // unlimited
  fault::ScopedFaultPlan a(outer);
  EXPECT_TRUE(SIMSWEEP_FAULT_POINT("test.outer"));
  {
    fault::FaultPlan inner;
    inner.on_hit("test.inner", 1, 0);
    fault::ScopedFaultPlan b(inner);
    // The inner plan fully shadows the outer one for its scope.
    EXPECT_FALSE(SIMSWEEP_FAULT_POINT("test.outer"));
    EXPECT_TRUE(SIMSWEEP_FAULT_POINT("test.inner"));
  }
  EXPECT_TRUE(SIMSWEEP_FAULT_POINT("test.outer"));  // restored
  EXPECT_FALSE(SIMSWEEP_FAULT_POINT("test.inner"));
}

TEST(FaultInjector, ProcessFireCounterAccumulates) {
  const std::uint64_t before = fault::fires_total();
  fault::FaultPlan plan;
  plan.on_hit("test.site", 1, 3);
  {
    fault::ScopedFaultPlan scoped(plan);
    for (int i = 0; i < 5; ++i) (void)SIMSWEEP_FAULT_POINT("test.site");
  }
  EXPECT_EQ(fault::fires_total(), before + 3);
}

// ---------------------------------------------------------------------------
// Governor primitives.
// ---------------------------------------------------------------------------

TEST(Governor, LedgerChargesReleasesAndDenies) {
  fault::MemoryLedger ledger(1000);
  EXPECT_TRUE(ledger.try_charge(600));
  EXPECT_EQ(ledger.charged_bytes(), 600u);
  EXPECT_FALSE(ledger.try_charge(500));  // 1100 > 1000
  EXPECT_EQ(ledger.denials(), 1u);
  EXPECT_EQ(ledger.charged_bytes(), 600u);  // denied charge left no trace
  ledger.release(600);
  EXPECT_TRUE(ledger.try_charge(1000));  // exactly the budget fits
  EXPECT_EQ(ledger.peak_bytes(), 1000u);
  ledger.release(1000);
  EXPECT_EQ(ledger.charged_bytes(), 0u);
}

TEST(Governor, UnlimitedLedgerStillAccounts) {
  fault::MemoryLedger ledger;  // budget 0 = unlimited
  EXPECT_TRUE(ledger.try_charge(std::uint64_t{1} << 40));
  EXPECT_EQ(ledger.peak_bytes(), std::uint64_t{1} << 40);
  EXPECT_EQ(ledger.denials(), 0u);
  ledger.release(std::uint64_t{1} << 40);
}

TEST(Governor, LeaseIsRaiiAndMovable) {
  fault::MemoryLedger ledger(100);
  {
    fault::MemoryLease lease(&ledger, 80);
    EXPECT_TRUE(lease.ok());
    EXPECT_EQ(ledger.charged_bytes(), 80u);
    fault::MemoryLease moved = std::move(lease);
    EXPECT_TRUE(moved.ok());
    EXPECT_EQ(ledger.charged_bytes(), 80u);  // moved, not double-charged
    fault::MemoryLease denied(&ledger, 50);
    EXPECT_FALSE(denied.ok());
  }
  EXPECT_EQ(ledger.charged_bytes(), 0u);  // every lease released
  // A lease against no ledger always acquires (the governor is opt-in).
  fault::MemoryLease ungoverned(nullptr, 1 << 30);
  EXPECT_TRUE(ungoverned.ok());
}

TEST(Governor, DeadlineSemantics) {
  const fault::Deadline unbounded;
  EXPECT_FALSE(unbounded.bounded());
  EXPECT_FALSE(unbounded.expired());
  EXPECT_FALSE(fault::Deadline::after(0).bounded());
  EXPECT_FALSE(fault::Deadline::after(-1).bounded());
  const fault::Deadline generous = fault::Deadline::after(3600);
  EXPECT_TRUE(generous.bounded());
  EXPECT_FALSE(generous.expired());
  EXPECT_GT(generous.remaining_seconds(), 3000.0);
  const fault::Deadline past = fault::Deadline::after(1e-9);
  while (!past.expired()) {
  }
  EXPECT_DOUBLE_EQ(past.remaining_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end recovery through the engine.
// ---------------------------------------------------------------------------

/// Engine configuration that pushes an equivalent multiplier pair through
/// the G and L phases (same shape as the obs end-to-end test).
engine::EngineParams small_engine() {
  engine::EngineParams p;
  p.enable_po_phase = false;
  p.k_P = 10;
  p.k_p = 4;
  p.k_g = 5;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  return p;
}

TEST(FaultRecovery, ExhaustiveAllocOomIsRecoveredByHalvingM) {
  // Satellite (c): inject bad_alloc at the simulation-table allocation.
  // The ladder's first rung halves M and retries; the verdict must stay
  // sound and the report must show the faults and the ladder activity.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kExhaustiveSimtAlloc, 1, /*fires=*/3);
  fault::ScopedFaultPlan scoped(plan);
  const engine::EngineResult r =
      engine::SimCecEngine(small_engine()).check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_EQ(scoped.fires(fault::sites::kExhaustiveSimtAlloc), 3u);
  EXPECT_GT(r.report.count(obs::metric::kFaultsInjected), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradeLadderSteps), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradeMemoryHalvings), 0u);
  EXPECT_GT(r.report.count("faults.site.exhaustive.simt_alloc"), 0u);
}

TEST(FaultRecovery, WindowMergeBuildFaultFallsBackToUnmergedWindows) {
  // Satellite (c): a failed merged-window build must fall back to the
  // original unmerged windows (copy-safe path), not lose checks.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kWindowMergeBuild, 1, /*fires=*/2);
  fault::ScopedFaultPlan scoped(plan);
  const engine::EngineResult r =
      engine::SimCecEngine(small_engine()).check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(scoped.fires(fault::sites::kWindowMergeBuild), 0u);
  EXPECT_GT(r.report.count(obs::metric::kFaultsInjected), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradeLadderSteps), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradeMergeFallbacks), 0u);
}

TEST(FaultRecovery, CutPassFaultIsRetriedWithBackoff) {
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kCutEnumOverflow, 1, /*fires=*/2);
  fault::ScopedFaultPlan scoped(plan);
  const engine::EngineResult r =
      engine::SimCecEngine(small_engine()).check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(scoped.fires(fault::sites::kCutEnumOverflow), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradePassRetries), 0u);
  EXPECT_GT(r.report.count(obs::metric::kFaultsInjected), 0u);
  // S3 accounting: both fires hit the first pass, which then succeeded on
  // its third attempt — exactly those 2 retries count as recovered (no
  // other recovery source is armed or under pressure in this run).
  EXPECT_EQ(r.report.count(obs::metric::kDegradePassRetries), 2u);
  EXPECT_EQ(r.report.count(obs::metric::kFaultsRecovered), 2u);
}

TEST(FaultRecovery, AbandonedPassRetriesAreNotCountedRecovered) {
  // S3 regression: with the overflow site firing on EVERY hit no pass can
  // ever complete — every retry is futile and every pass is abandoned.
  // faults_recovered must stay 0 (the old accounting credited each retry
  // as a recovery up front, so a fully-failing run looked "recovered").
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kCutEnumOverflow, 1, /*fires=*/0);  // unlimited
  fault::ScopedFaultPlan scoped(plan);
  const engine::EngineResult r =
      engine::SimCecEngine(small_engine()).check(a, b);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);  // soundness
  EXPECT_GT(scoped.fires(fault::sites::kCutEnumOverflow), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradePassRetries), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradeUnitsAbandoned), 0u);
  EXPECT_EQ(r.report.count(obs::metric::kFaultsRecovered), 0u);
}

TEST(FaultRecovery, ExhaustedRetriesAbandonToUndecidedNeverUnsound) {
  // Fire the allocation site on EVERY hit: no retry can ever succeed, so
  // the ladder must bottom out by abandoning units. The run must still
  // terminate with a sound verdict — undecided, never a wrong answer and
  // never a crash.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kExhaustiveSimtAlloc, 1, /*fires=*/0);  // unlimited
  fault::ScopedFaultPlan scoped(plan);
  const engine::EngineResult r =
      engine::SimCecEngine(small_engine()).check(a, b);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);  // soundness
  EXPECT_GT(scoped.fires(fault::sites::kExhaustiveSimtAlloc), 0u);
  EXPECT_GT(r.report.count(obs::metric::kDegradeUnitsAbandoned), 0u);
  // The abandoned residue remains in the miter for a downstream checker.
  if (r.verdict == Verdict::kUndecided) EXPECT_GT(r.reduced.num_ands(), 0u);
}

TEST(Governor, MemoryBudgetDenialsDegradeInsteadOfAborting) {
  // A real (uninjected) resource limit: a process budget far below the
  // configured M denies the first charges; the ladder halves M until
  // batches fit. The run completes and the gauges record the pressure.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  engine::EngineParams p = small_engine();
  p.memory_budget_bytes = 1 << 14;  // 16 KiB: M=2^16 words cannot fit
  p.min_memory_words = 1 << 9;
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
  EXPECT_GT(r.report.count(obs::metric::kDegradeLadderSteps), 0u);
  EXPECT_GT(r.report.value(obs::metric::kDegradeMemoryDenials), 0.0);
  EXPECT_GT(r.report.value(obs::metric::kDegradeMemoryPeakBytes), 0.0);
  EXPECT_LE(r.report.value(obs::metric::kDegradeMemoryPeakBytes),
            static_cast<double>(p.memory_budget_bytes));
}

TEST(Governor, SharedLedgerIsChargedAcrossRuns) {
  const aig::Aig a = gen::array_multiplier(3);
  const aig::Aig b = gen::wallace_multiplier(3);
  fault::MemoryLedger ledger;  // unlimited, observing only
  engine::EngineParams p = small_engine();
  p.memory_ledger = &ledger;
  (void)engine::SimCecEngine(p).check(a, b);
  EXPECT_GT(ledger.peak_bytes(), 0u);
  EXPECT_EQ(ledger.charged_bytes(), 0u);  // all leases released
  EXPECT_EQ(ledger.denials(), 0u);
}

TEST(Governor, PhaseDeadlineExpiryRoutesToUndecided) {
  // An immediately-expiring per-phase deadline: every phase gives up its
  // remaining work. The verdict is undecided (sound), the process never
  // aborts, and the expiries are recorded.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  engine::EngineParams p = small_engine();
  p.phase_time_limit = 1e-9;
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
  EXPECT_GT(r.report.count(obs::metric::kDegradeDeadlineExpiries), 0u);
}

// ---------------------------------------------------------------------------
// Sweeper and pool sites.
// ---------------------------------------------------------------------------

TEST(FaultRecovery, SatSolveFaultsActLikeConflictLimitExhaustion) {
  const aig::Aig a = testutil::random_aig(8, 120, 5, 501);
  const aig::Aig b = opt::resyn_light(a);
  const aig::Aig miter = aig::make_miter(a, b);
  // A bounded burst of solve faults: those entries come back unknown and
  // the sweep continues; the verdict is still reached by later solves.
  {
    fault::FaultPlan plan;
    plan.on_hit(fault::sites::kSatSolve, 1, /*fires=*/3);
    fault::ScopedFaultPlan scoped(plan);
    const sweep::SweepResult r = sweep::SatSweeper().check_miter(miter);
    EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
    if (scoped.hits(fault::sites::kSatSolve) > 0) {
      EXPECT_EQ(r.stats.solve_faults, scoped.fires(fault::sites::kSatSolve));
      EXPECT_GT(r.stats.solve_faults, 0u);
    }
  }
  // Every solve faulted: the sweeper must come back undecided — its
  // native sound failure mode — not crash or claim a verdict.
  {
    fault::FaultPlan plan;
    plan.on_hit(fault::sites::kSatSolve, 1, /*fires=*/0);  // unlimited
    fault::ScopedFaultPlan scoped(plan);
    const sweep::SweepResult r = sweep::SatSweeper().check_miter(miter);
    if (scoped.fires(fault::sites::kSatSolve) > 0)
      EXPECT_EQ(r.verdict, Verdict::kUndecided);
  }
}

TEST(FaultRecovery, PoolSpawnFailuresDegradeToFewerWorkers) {
  // All spawns fail: the pool runs every launch inline on the caller.
  {
    fault::FaultPlan plan;
    plan.on_hit(fault::sites::kPoolSpawn, 1, /*fires=*/0);
    fault::ScopedFaultPlan scoped(plan);
    parallel::ThreadPool pool(4);
    EXPECT_EQ(scoped.fires(fault::sites::kPoolSpawn), 4u);
    EXPECT_EQ(pool.stats().spawn_failures, 4u);
    EXPECT_EQ(pool.concurrency(), 1u);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(0, 1000, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
  // Partial failure: the pool degrades to the workers that did start and
  // still distributes work correctly.
  {
    fault::FaultPlan plan;
    plan.on_hit(fault::sites::kPoolSpawn, 1, /*fires=*/2);
    fault::ScopedFaultPlan scoped(plan);
    parallel::ThreadPool pool(4);
    EXPECT_EQ(pool.stats().spawn_failures, 2u);
    EXPECT_EQ(pool.concurrency(), 3u);  // 2 surviving workers + caller
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(0, 10000, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 10000u * 9999u / 2);
  }
}

TEST(FaultRecovery, ShardAllocFaultDegradesToSequentialSweep) {
  // `sweep.shard_alloc` throws bad_alloc before the parallel sweep
  // commits any thread; the dispatcher must degrade to the sequential
  // sweeper, record the fallback, and still prove the miter.
  const aig::Aig a = testutil::random_aig(8, 120, 5, 501);
  const aig::Aig miter = aig::make_miter(a, opt::resyn_light(a));
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kSweepShardAlloc, 1, /*fires=*/1);
  fault::ScopedFaultPlan scoped(plan);
  sweep::SweeperParams sp;
  sp.num_threads = 4;
  const sweep::SweepResult r = sweep::sweep_miter(miter, sp);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_EQ(scoped.fires(fault::sites::kSweepShardAlloc), 1u);
  EXPECT_EQ(r.stats.parallel_fallbacks, 1u);
  EXPECT_EQ(r.stats.shards, 0u);  // the fallback ran sequentially
}

TEST(FaultRecovery, BoardMergeFaultDegradesToSequentialSweep) {
  // `sweep.board_merge` fires at the round barrier, i.e. after shards
  // already ran: the dispatcher abandons the partial parallel attempt
  // and re-checks sequentially — sound, never partial.
  const aig::Aig a = testutil::random_aig(8, 120, 5, 501);
  const aig::Aig miter = aig::make_miter(a, opt::resyn_light(a));
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kSweepBoardMerge, 1, /*fires=*/1);
  fault::ScopedFaultPlan scoped(plan);
  sweep::SweeperParams sp;
  sp.num_threads = 2;
  const sweep::SweepResult r = sweep::sweep_miter(miter, sp);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(scoped.fires(fault::sites::kSweepBoardMerge), 0u);
  EXPECT_EQ(r.stats.parallel_fallbacks, 1u);
}

TEST(FaultRecovery, CombinedFlowCountsSweepFaultsInjected) {
  // The combined flow accounts sweep-phase fires as its own
  // faults.injected delta (the engine publishes only its delta), and the
  // report records the degradation under sat_sweeper.parallel_fallbacks.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  fault::FaultPlan plan;
  plan.on_hit(fault::sites::kSweepShardAlloc, 1, /*fires=*/1);
  fault::ScopedFaultPlan scoped(plan);
  portfolio::CombinedParams p;
  p.engine = small_engine();
  // Expire every engine phase so the whole miter reaches the sweep.
  p.engine.phase_time_limit = 1e-9;
  p.sweeper.num_threads = 2;
  const portfolio::CombinedResult r = portfolio::combined_check(a, b, p);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
  EXPECT_GT(scoped.fires(fault::sites::kSweepShardAlloc), 0u);
  EXPECT_GE(r.report.count(obs::metric::kFaultsInjected), 1u);
  EXPECT_DOUBLE_EQ(r.report.value(obs::metric::kSweeperParallelFallbacks), 1.0);
}

// ---------------------------------------------------------------------------
// The acceptance soak: every catalogued site, fixed seed, sound verdicts.
// ---------------------------------------------------------------------------

TEST(FaultSites, EveryCataloguedSiteSurvivesInjection) {
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  const aig::Aig sat_a = testutil::random_aig(8, 120, 5, 501);
  const aig::Aig sat_miter = aig::make_miter(sat_a, opt::resyn_light(sat_a));

  for (const char* site : fault::kCataloguedSites) {
    SCOPED_TRACE(site);
    fault::FaultPlan plan;
    plan.seed(0xD15EA5EULL).on_hit(site, 1, /*fires=*/2);
    fault::ScopedFaultPlan scoped(plan);
    const std::string_view name(site);
    if (name == fault::sites::kPoolSpawn) {
      // The process-wide pool exists before any test runs; spawn faults
      // are exercised against a fresh pool instance.
      parallel::ThreadPool pool(4);
      EXPECT_EQ(pool.stats().spawn_failures, 2u);
      std::atomic<int> count{0};
      pool.parallel_for(0, 100, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
      EXPECT_EQ(count.load(), 100);
    } else if (name == fault::sites::kSatSolve) {
      const sweep::SweepResult r =
          sweep::SatSweeper().check_miter(sat_miter);
      EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
    } else if (name == fault::sites::kSweepShardAlloc || name == fault::sites::kSweepBoardMerge) {
      // Parallel-sweep host faults: the dispatcher must degrade to the
      // sequential sweeper and still produce a sound verdict.
      sweep::SweeperParams sp;
      sp.num_threads = 2;
      const sweep::SweepResult r = sweep::sweep_miter(sat_miter, sp);
      EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
      EXPECT_EQ(r.stats.parallel_fallbacks, 1u);
    } else if (name == fault::sites::kCkptWrite) {
      // A failed durable write leaves the run unaffected; the snapshot
      // stays pending and lands once the plan is spent (DESIGN.md §2.8).
      const std::string path = ::testing::TempDir() + "soak_ckpt_write.ckpt";
      std::remove(path.c_str());
      std::remove((path + ".prev").c_str());
      ckpt::CheckpointManager mgr({path, 0.0, nullptr, {}});
      ckpt::Snapshot s;
      s.fingerprint = 1;
      s.miter = sat_miter;
      mgr.offer(s);  // fire 1: write fails, pending kept
      mgr.offer(s);  // fire 2
      EXPECT_EQ(mgr.writes(), 0u);
      mgr.flush();   // plan spent: the pending snapshot lands
      EXPECT_EQ(mgr.writes(), 1u);
      EXPECT_TRUE(mgr.load(1).has_value());
    } else if (name == fault::sites::kCkptLoad) {
      // A failed snapshot read fails CLOSED: the ladder ends in a fresh
      // run, never resuming questionable state.
      const std::string path = ::testing::TempDir() + "soak_ckpt_load.ckpt";
      std::remove(path.c_str());
      std::remove((path + ".prev").c_str());
      ckpt::CheckpointManager mgr({path, 0.0, nullptr, {}});
      ckpt::Snapshot s;
      s.fingerprint = 2;
      s.miter = sat_miter;
      mgr.offer(s);
      EXPECT_FALSE(mgr.load(2).has_value());
    } else if (name == fault::sites::kServiceAdmit ||
               name == fault::sites::kServiceCache) {
      // Batch-service drills (DESIGN.md §2.9): a forced admission denial
      // degrades to queuing (or to the un-staked progress exception when
      // nothing runs), a forced cache miss to a sound recompute. Either
      // way every job still reaches the true verdict.
      service::CecService svc(service::ServiceParams{});
      std::vector<service::JobSpec> jobs(2);
      jobs[0].id = "soak1";
      jobs[0].a = a;
      jobs[0].b = b;
      jobs[0].params.engine = small_engine();
      jobs[1] = jobs[0];
      jobs[1].id = "soak2";
      for (const service::JobResult& res : svc.run_batch(std::move(jobs)))
        EXPECT_EQ(res.verdict, Verdict::kEquivalent);
    } else if (name == fault::sites::kCkptChildCrash) {
      // The real site aborts the process right after a durable write, so
      // the in-process soak only records the hit; the process-death path
      // is covered by the supervised CLI gate (cli_supervise_resume) and
      // the CI kill-and-resume smoke.
      EXPECT_TRUE(SIMSWEEP_FAULT_POINT(fault::sites::kCkptChildCrash));
    } else {
      const engine::EngineResult r =
          engine::SimCecEngine(small_engine()).check(a, b);
      EXPECT_EQ(r.verdict, Verdict::kEquivalent);
      EXPECT_GT(r.report.count(obs::metric::kFaultsInjected), 0u);
      EXPECT_GT(r.report.count(obs::metric::kDegradeLadderSteps), 0u);
    }
    EXPECT_GT(scoped.hits(site), 0u);   // the site was really exercised
    EXPECT_GT(scoped.fires(site), 0u);  // and really failed
  }
}

TEST(FaultSites, ProbabilisticMultiSiteSoakStaysSound) {
  // Every catalogued site armed at once with a low per-hit probability
  // and a fixed seed (replayable), the sweep phase running parallel so
  // the sweep.* sites are on-path. The combined checker must come
  // through with a sound verdict for an equivalent pair: anything except
  // kNotEquivalent, and no crash.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  fault::FaultPlan plan;
  plan.seed(0xC0FFEEULL);
  for (const char* site : fault::kCataloguedSites)
    plan.with_probability(site, 0.02);
  fault::ScopedFaultPlan scoped(plan);
  portfolio::CombinedParams p;
  p.engine = small_engine();
  p.sweeper.num_threads = 2;
  const portfolio::CombinedResult r = portfolio::combined_check(a, b, p);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
  EXPECT_GT(scoped.hits(fault::sites::kExhaustiveSimtAlloc), 0u);
}

}  // namespace
}  // namespace simsweep
