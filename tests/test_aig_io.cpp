/// \file test_aig_io.cpp
/// \brief AIGER reader/writer round-trip and error-handling tests.

#include "aig/aig_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig_analysis.hpp"
#include "test_util.hpp"

namespace simsweep::aig {
namespace {

TEST(AigerIo, AsciiRoundTrip) {
  const Aig a = testutil::random_aig(6, 50, 4, 11);
  std::stringstream ss;
  write_aiger_ascii(a, ss);
  const Aig b = read_aiger(ss);
  EXPECT_EQ(b.num_pis(), a.num_pis());
  EXPECT_EQ(b.num_pos(), a.num_pos());
  EXPECT_TRUE(brute_force_equivalent(a, b));
}

TEST(AigerIo, BinaryRoundTrip) {
  const Aig a = testutil::random_aig(7, 80, 5, 12);
  std::stringstream ss;
  write_aiger(a, ss);
  const Aig b = read_aiger(ss);
  EXPECT_EQ(b.num_pis(), a.num_pis());
  EXPECT_EQ(b.num_pos(), a.num_pos());
  EXPECT_TRUE(brute_force_equivalent(a, b));
}

TEST(AigerIo, FileRoundTrip) {
  const Aig a = testutil::random_aig(5, 30, 2, 13);
  const std::string path = ::testing::TempDir() + "/simsweep_io_test.aig";
  write_aiger_file(a, path);
  const Aig b = read_aiger_file(path);
  EXPECT_TRUE(brute_force_equivalent(a, b));
}

TEST(AigerIo, KnownAsciiExample) {
  // AND of two inputs: aag 3 2 0 1 1; output literal 6 = node 3.
  const std::string text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
  std::istringstream in(text);
  const Aig a = read_aiger(in);
  EXPECT_EQ(a.num_pis(), 2u);
  EXPECT_EQ(a.num_ands(), 1u);
  EXPECT_EQ(a.evaluate({true, true})[0], true);
  EXPECT_EQ(a.evaluate({true, false})[0], false);
}

TEST(AigerIo, ConstantOutputs) {
  Aig a(2);
  a.add_po(kLitFalse);
  a.add_po(kLitTrue);
  std::stringstream ss;
  write_aiger(a, ss);
  const Aig b = read_aiger(ss);
  EXPECT_EQ(b.po(0), kLitFalse);
  EXPECT_EQ(b.po(1), kLitTrue);
}

TEST(AigerIo, ComplementedEdgesSurvive) {
  Aig a(2);
  const Lit g = a.add_and(lit_not(a.pi_lit(0)), a.pi_lit(1));
  a.add_po(lit_not(g));
  std::stringstream ss;
  write_aiger(a, ss);
  const Aig b = read_aiger(ss);
  EXPECT_TRUE(brute_force_equivalent(a, b));
}

TEST(AigerIo, RejectsLatches) {
  std::istringstream in("aag 3 1 1 1 0\n2\n4 2\n4\n");
  EXPECT_THROW(read_aiger(in), std::runtime_error);
}

TEST(AigerIo, RejectsBadMagic) {
  std::istringstream in("wat 1 1 0 0 0\n2\n");
  EXPECT_THROW(read_aiger(in), std::runtime_error);
}

TEST(AigerIo, RejectsTruncatedBinary) {
  Aig a(3);
  a.add_po(a.add_and(a.pi_lit(0), a.add_and(a.pi_lit(1), a.pi_lit(2))));
  std::stringstream ss;
  write_aiger(a, ss);
  std::string text = ss.str();
  text.resize(text.size() - 1);  // chop the delta stream
  std::istringstream in(text);
  EXPECT_THROW(read_aiger(in), std::runtime_error);
}

TEST(AigerIo, MissingFileThrows) {
  EXPECT_THROW(read_aiger_file("/nonexistent/simsweep.aig"),
               std::runtime_error);
}

}  // namespace
}  // namespace simsweep::aig
