/// \file test_cut.cpp
/// \brief Tests for cuts, priority-cut enumeration (Table I criteria,
/// similarity), enumeration levels (Eq. 2) and the checking pass (Alg. 2).

#include <gtest/gtest.h>

#include <algorithm>

#include "aig/aig_analysis.hpp"
#include "cut/checking_pass.hpp"
#include "cut/common_cuts.hpp"
#include "cut/cut_enum.hpp"
#include "cut/cut_set.hpp"
#include "fault/governor.hpp"
#include "sim/ec_manager.hpp"
#include "test_util.hpp"

namespace simsweep::cut {
namespace {

using aig::Aig;
using aig::Lit;
using aig::Var;

TEST(Cut, TrivialAndEquality) {
  const Cut a = Cut::trivial(5);
  EXPECT_EQ(a.size, 1u);
  EXPECT_EQ(a.leaves[0], 5u);
  EXPECT_EQ(a, Cut::trivial(5));
  EXPECT_FALSE(a == Cut::trivial(6));
}

TEST(Cut, MergeRespectsBound) {
  Cut a = Cut::trivial(1), b = Cut::trivial(2), out;
  ASSERT_TRUE(merge_cuts(a, b, 2, out));
  EXPECT_EQ(out.size, 2u);
  EXPECT_EQ(out.leaves[0], 1u);
  EXPECT_EQ(out.leaves[1], 2u);
  Cut c = Cut::trivial(3);
  EXPECT_FALSE(merge_cuts(out, c, 2, c));
}

TEST(Cut, MergeDeduplicatesSharedLeaves) {
  Cut a, b, out;
  a.size = 2; a.leaves = {1, 3}; a.sign = (1u << 1) | (1u << 3);
  b.size = 2; b.leaves = {3, 7}; b.sign = (1u << 3) | (1u << 7);
  ASSERT_TRUE(merge_cuts(a, b, 3, out));
  EXPECT_EQ(out.size, 3u);
  EXPECT_EQ(out.leaves[0], 1u);
  EXPECT_EQ(out.leaves[1], 3u);
  EXPECT_EQ(out.leaves[2], 7u);
}

TEST(Cut, SubsetAndJaccard) {
  Cut a, b;
  a.size = 2; a.leaves = {1, 3}; a.sign = (1u << 1) | (1u << 3);
  b.size = 3; b.leaves = {1, 3, 7}; b.sign = a.sign | (1u << 7);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_EQ(a.intersection_size(b), 2u);
  EXPECT_DOUBLE_EQ(a.jaccard(b), 2.0 / 3.0);
}

TEST(CutSet, DominationFiltering) {
  CutSet s;
  Cut big;
  big.size = 3; big.leaves = {1, 2, 3};
  big.sign = (1u << 1) | (1u << 2) | (1u << 3);
  s.add(big);
  EXPECT_EQ(s.size(), 1u);
  // A subset dominates: the superset is evicted.
  Cut small;
  small.size = 2; small.leaves = {1, 2}; small.sign = (1u << 1) | (1u << 2);
  s.add(small);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], small);
  // Re-adding the dominated cut is a no-op.
  s.add(big);
  EXPECT_EQ(s.size(), 1u);
}

TEST(EnumerationLevels, MatchesPaperEquation) {
  // Eq. 2: a non-representative waits for its representative.
  Aig a(2);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit f = a.add_and(x, y);                 // level 1 node
  const Lit g = a.add_and(a.add_or(x, y), f);    // == f, deeper
  const Var vf = aig::lit_var(f), vg = aig::lit_var(g);
  // add_and normalizes fanin order; pick the fanin that is not f.
  const Var v_or = aig::lit_var(a.fanin0(vg)) == vf
                       ? aig::lit_var(a.fanin1(vg))
                       : aig::lit_var(a.fanin0(vg));

  std::vector<Var> repr_of(a.num_nodes(), kNoRepr);
  const auto el_plain = enumeration_levels(a, repr_of);
  EXPECT_EQ(el_plain[vf], 1u);
  EXPECT_EQ(el_plain[v_or], 1u);
  EXPECT_EQ(el_plain[vg], 2u);

  // Now make f the representative of the OR node (artificial but legal:
  // el(or) must rise above el(f)).
  repr_of[v_or] = vf;
  const auto el = enumeration_levels(a, repr_of);
  EXPECT_EQ(el[v_or], 2u);  // 1 + max(el(pis), el(f)=1)
  EXPECT_EQ(el[vg], 3u);
}

/// Checks the defining property of a cut: removing the cut nodes
/// disconnects every PI from the root.
bool is_real_cut(const Aig& a, Var root, const Cut& c) {
  std::vector<Var> stops(c.leaves.begin(), c.leaves.begin() + c.size);
  if (std::count(stops.begin(), stops.end(), root)) return true;  // trivial
  const auto cone = aig::tfi_cone(a, {root}, stops);
  for (Var v : cone)
    if (a.is_pi(v)) return false;
  return true;
}

class CutEnumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutEnumProperty, AllEnumeratedCutsAreRealCuts) {
  const Aig a = testutil::random_aig(8, 100, 4, GetParam());
  EnumParams ep;
  ep.cut_size = 6;
  ep.num_cuts = 6;
  PriorityCuts pc(a, ep);
  const CutScorer scorer(a, Pass::kFanout);
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); ++v) {
    pc.compute_node(v, scorer, nullptr);
    for (const Cut& c : pc.cuts(v).cuts()) {
      ASSERT_LE(c.size, 6u);
      ASSERT_TRUE(std::is_sorted(c.leaves.begin(),
                                 c.leaves.begin() + c.size));
      ASSERT_TRUE(is_real_cut(a, v, c)) << "node " << v;
    }
    ASSERT_LE(pc.cuts(v).size(), 6u);
  }
}

TEST_P(CutEnumProperty, LocalFunctionOverCutMatchesGlobal) {
  // Composing the local function with the cut functions must reproduce
  // the global function (checked pointwise on all 2^pis patterns).
  const Aig a = testutil::random_aig(6, 60, 2, GetParam() + 50);
  EnumParams ep;
  ep.cut_size = 4;
  ep.num_cuts = 4;
  PriorityCuts pc(a, ep);
  const CutScorer scorer(a, Pass::kSmallLevel);
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); ++v)
    pc.compute_node(v, scorer, nullptr);
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); v += 7) {
    for (const Cut& c : pc.cuts(v).cuts()) {
      std::vector<Var> leaves(c.leaves.begin(), c.leaves.begin() + c.size);
      const tt::TruthTable local =
          aig::cone_truth_table(a, aig::make_lit(v), leaves);
      for (std::uint64_t p = 0; p < 64; ++p) {
        std::uint64_t idx = 0;
        for (unsigned j = 0; j < leaves.size(); ++j)
          idx |= static_cast<std::uint64_t>(
                     testutil::eval_lit(a, aig::make_lit(leaves[j]), p))
                 << j;
        ASSERT_EQ(local.get_bit(idx),
                  testutil::eval_lit(a, aig::make_lit(v), p));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutEnumProperty,
                         ::testing::Values(81, 82, 83));

TEST(CutScorer, PassOrderings) {
  // Construct a graph with controlled fanouts/levels.
  Aig a(4);
  const Lit g1 = a.add_and(a.pi_lit(0), a.pi_lit(1));  // level 1
  const Lit g2 = a.add_and(g1, a.pi_lit(2));           // level 2
  a.add_po(g2);
  a.add_po(g1);
  a.add_po(g1);  // g1 has 3 fanouts, g2 has 1

  Cut cut_g1 = Cut::trivial(aig::lit_var(g1));
  Cut cut_g2 = Cut::trivial(aig::lit_var(g2));

  const CutScorer s1(a, Pass::kFanout);
  EXPECT_TRUE(s1.better(cut_g1, cut_g2));   // larger fanout wins
  const CutScorer s2(a, Pass::kSmallLevel);
  EXPECT_TRUE(s2.better(cut_g1, cut_g2));   // smaller level wins
  const CutScorer s3(a, Pass::kLargeLevel);
  EXPECT_TRUE(s3.better(cut_g2, cut_g1));   // larger level wins
  // Size tie-breaker: equal main metric, smaller cut preferred.
  Cut both;
  merge_cuts(cut_g1, cut_g2, 4, both);
  // avg level of {g1,g2} = 1.5; a singleton of level 1.5 impossible, so
  // compare under kFanout with equal fanout: {g2} (fanout 1) vs both
  // (avg (3+1)/2 = 2) — fanout differs; just assert determinism instead.
  EXPECT_NE(s1.better(cut_g2, both), s1.better(both, cut_g2));
}

TEST(CutScorer, SimilarityMetric) {
  CutSet target;
  Cut c1; c1.size = 2; c1.leaves = {1, 2}; c1.sign = 6;
  Cut c2; c2.size = 2; c2.leaves = {2, 3}; c2.sign = 12;
  target.add(c1);
  target.add(c2);
  Cut q; q.size = 2; q.leaves = {1, 2}; q.sign = 6;
  // s(q, P) = 1 (vs c1) + 1/3 (vs c2).
  EXPECT_DOUBLE_EQ(CutScorer::similarity(q, target), 1.0 + 1.0 / 3.0);
}

TEST(CommonCuts, PairCutsAreCutsOfBothRoots) {
  const Aig a = testutil::random_aig(8, 120, 4, 84);
  EnumParams ep;
  ep.cut_size = 5;
  ep.num_cuts = 5;
  PriorityCuts pc(a, ep);
  const CutScorer scorer(a, Pass::kFanout);
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); ++v)
    pc.compute_node(v, scorer, nullptr);
  // Take arbitrary AND-node pairs.
  const Var u = a.num_pis() + static_cast<Var>(a.num_ands() / 2);
  const Var v = static_cast<Var>(a.num_nodes() - 1);
  for (const Cut& c : common_cuts(pc, scorer, u, v, 8)) {
    ASSERT_TRUE(is_real_cut(a, u, c));
    ASSERT_TRUE(is_real_cut(a, v, c));
    ASSERT_LE(c.size, 5u);
  }
}

TEST(CommonCuts, ConstantReprUsesNodeCuts) {
  const Aig a = testutil::random_aig(6, 40, 2, 85);
  EnumParams ep;
  PriorityCuts pc(a, ep);
  const CutScorer scorer(a, Pass::kFanout);
  for (Var v = a.num_pis() + 1; v < a.num_nodes(); ++v)
    pc.compute_node(v, scorer, nullptr);
  const Var v = static_cast<Var>(a.num_nodes() - 1);
  const auto cuts = common_cuts(pc, scorer, 0, v, 8);
  EXPECT_FALSE(cuts.empty());
  for (const Cut& c : cuts) ASSERT_TRUE(is_real_cut(a, v, c));
}

TEST(CheckingPass, ProvesStructurallyDistinctEquivalences) {
  // n = (f&g)|(f&h) vs m = f&(g|h): equal, provable over the cut {f,g,h}.
  Aig a(6);
  const Lit f = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g = a.add_or(a.pi_lit(2), a.pi_lit(3));
  const Lit h = a.add_xor(a.pi_lit(4), a.pi_lit(5));
  const Lit n = a.add_or(a.add_and(f, g), a.add_and(f, h));
  const Lit m = a.add_and(f, a.add_or(g, h));
  a.add_po(n);
  a.add_po(m);
  std::vector<PairTask> tasks{
      PairTask{std::min(aig::lit_var(n), aig::lit_var(m)),
               std::max(aig::lit_var(n), aig::lit_var(m)),
               aig::lit_compl(n) != aig::lit_compl(m)}};
  PassParams params;
  const PassResult r = run_checking_pass(a, tasks, Pass::kFanout, params);
  EXPECT_EQ(r.proved[0], 1u);
  EXPECT_GT(r.stats.common_cuts, 0u);
}

TEST(CheckingPass, DoesNotProveInequivalentPairs) {
  // Soundness under SDC-free conditions: an inequivalent pair must never
  // be "proved". Random pairs, oracle = exact truth tables.
  const Aig a = testutil::random_aig(7, 120, 4, 86);
  std::vector<PairTask> tasks;
  for (Var v = a.num_pis() + 5; v + 3 < a.num_nodes(); v += 9)
    tasks.push_back(PairTask{v, v + 3, false});
  PassParams params;
  const PassResult r = run_checking_pass(a, tasks, Pass::kSmallLevel,
                                         params);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!r.proved[i]) continue;
    const tt::TruthTable tu =
        aig::global_truth_table(a, aig::make_lit(tasks[i].repr,
                                                 tasks[i].phase));
    const tt::TruthTable tv =
        aig::global_truth_table(a, aig::make_lit(tasks[i].node));
    ASSERT_EQ(tu, tv) << "unsound local proof for pair " << i;
  }
}

TEST(CheckingPass, TinyBufferForcesManyFlushes) {
  const Aig a = testutil::random_aig(8, 150, 4, 87);
  // Pair every class-mate from a quick partial simulation.
  sim::EcManager ec;
  const auto bank = sim::PatternBank::random(a.num_pis(), 2, 3);
  ec.build(a, sim::simulate(a, bank));
  std::vector<PairTask> tasks;
  for (const sim::CandidatePair& p : ec.candidate_pairs())
    if (a.is_and(p.node)) tasks.push_back(PairTask{p.repr, p.node, p.phase});
  if (tasks.empty()) GTEST_SKIP() << "no candidate pairs in random AIG";

  PassParams big;
  PassParams tiny;
  tiny.buffer_capacity = 4;
  const PassResult rb = run_checking_pass(a, tasks, Pass::kFanout, big);
  const PassResult rt = run_checking_pass(a, tasks, Pass::kFanout, tiny);
  EXPECT_GE(rt.stats.flushes, rb.stats.flushes);
  EXPECT_EQ(rb.proved, rt.proved);  // buffer size must not change results
}

TEST(CheckingPass, OversizedGroupIsSplitAcrossFlushes) {
  // S2 regression: one pair's common-cut group can exceed the WHOLE
  // buffer capacity (buffer_capacity < max_cuts_per_pair). The pass must
  // split the group across flushes instead of overrunning the bound.
  const Aig a = testutil::random_aig(8, 150, 4, 87);
  sim::EcManager ec;
  const auto bank = sim::PatternBank::random(a.num_pis(), 2, 3);
  ec.build(a, sim::simulate(a, bank));
  std::vector<PairTask> tasks;
  for (const sim::CandidatePair& p : ec.candidate_pairs())
    if (a.is_and(p.node)) tasks.push_back(PairTask{p.repr, p.node, p.phase});
  if (tasks.empty()) GTEST_SKIP() << "no candidate pairs in random AIG";

  PassParams big;
  PassParams tiny;
  tiny.buffer_capacity = 2;  // < max_cuts_per_pair (8)
  ASSERT_LT(tiny.buffer_capacity, tiny.max_cuts_per_pair);
  const PassResult rb = run_checking_pass(a, tasks, Pass::kFanout, big);
  const PassResult rt = run_checking_pass(a, tasks, Pass::kFanout, tiny);
  // The bounded-buffer contract: the high-water mark never exceeds the
  // configured capacity, even while a single group is larger than it.
  EXPECT_LE(rt.stats.peak_buffered, tiny.buffer_capacity);
  EXPECT_GT(rt.stats.group_splits, 0u);
  EXPECT_EQ(rb.stats.group_splits, 0u);
  EXPECT_LE(rb.stats.peak_buffered, big.buffer_capacity);
  EXPECT_EQ(rb.proved, rt.proved);  // splitting must not change results
}

TEST(CheckingPassDetail, ExpiredDeadlineFlushCountsAbandonedChecks) {
  // S4 regression: a flush whose exhaustive batch hits the deadline drops
  // its in-flight windows — that loss must surface as checks_abandoned,
  // not silently vanish behind deadline_expired.
  Aig a(6);
  const Lit f = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g = a.add_or(a.pi_lit(2), a.pi_lit(3));
  const Lit h = a.add_xor(a.pi_lit(4), a.pi_lit(5));
  const Lit n = a.add_or(a.add_and(f, g), a.add_and(f, h));
  const Lit m = a.add_and(f, a.add_or(g, h));
  a.add_po(n);
  a.add_po(m);
  std::vector<PairTask> tasks{
      PairTask{std::min(aig::lit_var(n), aig::lit_var(m)),
               std::max(aig::lit_var(n), aig::lit_var(m)),
               aig::lit_compl(n) != aig::lit_compl(m)}};
  Cut c01, cut;
  merge_cuts(Cut::trivial(aig::lit_var(f)), Cut::trivial(aig::lit_var(g)), 3,
             c01);
  merge_cuts(c01, Cut::trivial(aig::lit_var(h)), 3, cut);
  std::vector<detail::BufEntry> buffer{detail::BufEntry{0, cut}};
  std::vector<std::uint8_t> proved(1, 0);

  const fault::Deadline past = fault::Deadline::after(1e-9);
  while (!past.expired()) {
  }
  PassParams params;
  params.sim_params.deadline = &past;
  std::size_t sim_memory = params.sim_params.memory_words;
  PassStats stats;
  detail::flush_buffer(a, tasks, buffer, proved, params, sim_memory, stats);
  EXPECT_TRUE(stats.deadline_expired);
  EXPECT_EQ(stats.checks_abandoned, 1u);
  EXPECT_EQ(proved[0], 0u);
  EXPECT_TRUE(buffer.empty());

  // Control: the same flush under no deadline proves the pair and
  // abandons nothing.
  std::vector<detail::BufEntry> buffer2{detail::BufEntry{0, cut}};
  std::vector<std::uint8_t> proved2(1, 0);
  PassParams params2;
  std::size_t sim_memory2 = params2.sim_params.memory_words;
  PassStats stats2;
  detail::flush_buffer(a, tasks, buffer2, proved2, params2, sim_memory2,
                       stats2);
  EXPECT_FALSE(stats2.deadline_expired);
  EXPECT_EQ(stats2.checks_abandoned, 0u);
  EXPECT_EQ(proved2[0], 1u);
  EXPECT_EQ(stats2.halvings_recovered, 0u);
  EXPECT_EQ(stats2.flushes_abandoned, 0u);
}

}  // namespace
}  // namespace simsweep::cut
