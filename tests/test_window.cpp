/// \file test_window.cpp
/// \brief Tests for window construction and window merging.

#include "window/window.hpp"
#include "window/window_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "aig/aig_analysis.hpp"
#include "test_util.hpp"

namespace simsweep::window {
namespace {

using aig::Aig;
using aig::Lit;
using aig::Var;

/// A small diamond: f = (x&y) | (y&z), checked against itself.
Aig diamond(Lit* out_f) {
  Aig a(3);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1), z = a.pi_lit(2);
  const Lit f = a.add_or(a.add_and(x, y), a.add_and(y, z));
  a.add_po(f);
  if (out_f) *out_f = f;
  return a;
}

TEST(Window, GlobalWindowContainsConeOnly) {
  Lit f;
  const Aig a = diamond(&f);
  auto w = build_window(a, {1, 2, 3},
                        {CheckItem{f, aig::kLitFalse, 0}});
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->num_inputs(), 3u);
  // Window nodes = all AND nodes in the cone of f.
  const auto cone = aig::tfi_cone(a, {aig::lit_var(f)}, {1, 2, 3});
  std::size_t cone_ands = 0;
  for (Var v : cone) cone_ands += a.is_and(v);
  EXPECT_EQ(w->nodes.size(), cone_ands);
  EXPECT_EQ(w->tt_words(), 1u);
}

TEST(Window, InvalidCutReturnsNullopt) {
  Lit f;
  const Aig a = diamond(&f);
  // {PI1} does not block PI2/PI3 paths to f.
  EXPECT_FALSE(build_window(a, {1}, {CheckItem{f, aig::kLitFalse, 0}}));
}

TEST(Window, InternalCutWindow) {
  Lit f;
  const Aig a = diamond(&f);
  // The two AND nodes form a cut of the OR root.
  const Var or_node = aig::lit_var(f);
  const Var and1 = aig::lit_var(a.fanin0(or_node));
  const Var and2 = aig::lit_var(a.fanin1(or_node));
  std::vector<Var> cut{std::min(and1, and2), std::max(and1, and2)};
  auto w = build_window(a, cut, {CheckItem{f, aig::kLitFalse, 7}});
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->num_inputs(), 2u);
  EXPECT_EQ(w->nodes.size(), 1u);  // only the OR root
  EXPECT_EQ(w->items[0].tag, 7u);
}

TEST(Window, LevelGroupingIsTopological) {
  const Aig a = testutil::random_aig(6, 60, 2, 50);
  std::vector<Var> pis{1, 2, 3, 4, 5, 6};
  auto w = build_window(a, pis, {CheckItem{a.po(0), a.po(1), 0}});
  ASSERT_TRUE(w.has_value());
  // Slot of every fanin must precede the node's own slot.
  for (std::size_t i = 0; i < w->wnodes.size(); ++i) {
    const std::uint32_t self = static_cast<std::uint32_t>(
        w->inputs.size() + i);
    if (w->wnodes[i].slot0 != kSlotConst0) {
      ASSERT_LT(w->wnodes[i].slot0, self);
    }
    if (w->wnodes[i].slot1 != kSlotConst0) {
      ASSERT_LT(w->wnodes[i].slot1, self);
    }
  }
  // Level offsets are monotone and cover all nodes.
  ASSERT_FALSE(w->level_offset.empty());
  EXPECT_EQ(w->level_offset.back(), w->nodes.size());
  for (std::size_t l = 1; l < w->level_offset.size(); ++l)
    ASSERT_LE(w->level_offset[l - 1], w->level_offset[l]);
}

TEST(Window, RootCanBeAnInput) {
  Aig a(2);
  const Lit x = a.pi_lit(0);
  const Lit g = a.add_and(x, a.pi_lit(1));
  a.add_po(g);
  // Check pair (x, g) over inputs {1, 2}: root x is itself an input.
  auto w = build_window(a, {1, 2}, {CheckItem{x, g, 0}});
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->item_slots[0].slot_a, 0u);  // input slot of PI 1
}

TEST(WindowMerge, MergesIdenticalInputSets) {
  const Aig a = testutil::random_aig(4, 40, 2, 51);
  std::vector<Var> inputs{1, 2, 3, 4};
  std::vector<Window> ws;
  for (int i = 0; i < 5; ++i) {
    auto w = build_window(
        a, inputs,
        {CheckItem{a.po(0), a.po(1), static_cast<std::uint32_t>(i)}});
    ASSERT_TRUE(w);
    ws.push_back(std::move(*w));
  }
  MergeStats stats;
  auto merged = merge_windows(a, std::move(ws), 4, &stats);
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].items.size(), 5u);
  EXPECT_EQ(stats.windows_before, 5u);
  EXPECT_EQ(stats.windows_after, 1u);
  EXPECT_LT(stats.sim_nodes_after, stats.sim_nodes_before);
}

TEST(WindowMerge, RespectsKs) {
  // Windows over disjoint PI sets: merging all would need 4 inputs.
  Aig a(4);
  const Lit g1 = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g2 = a.add_and(a.pi_lit(2), a.pi_lit(3));
  a.add_po(g1);
  a.add_po(g2);
  std::vector<Window> ws;
  auto w1 = build_window(a, {1, 2}, {CheckItem{g1, aig::kLitFalse, 0}});
  auto w2 = build_window(a, {3, 4}, {CheckItem{g2, aig::kLitFalse, 1}});
  ws.push_back(std::move(*w1));
  ws.push_back(std::move(*w2));
  // k_s = 3 forbids the merge; k_s = 4 allows it.
  auto kept = merge_windows(a, ws, 3);
  EXPECT_EQ(kept.size(), 2u);
  auto merged = merge_windows(a, std::move(ws), 4);
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].num_inputs(), 4u);
}

TEST(WindowMerge, BuildFailureFallsBackToOriginals) {
  // Force the (normally unreachable) build-failure path: a window whose
  // declared input set lies about its item's support makes the merged
  // build fail, and merge_windows must pass the originals through intact
  // (they are never moved-from — the merge consumed only copies).
  Aig a(3);
  const Lit n4 = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit n5 = a.add_and(n4, a.pi_lit(2));
  a.add_po(n5);

  auto wa = build_window(a, {1, 2}, {CheckItem{n4, aig::kLitFalse, 10}});
  ASSERT_TRUE(wa.has_value());
  auto wb = build_window(a, {1, 2, 3}, {CheckItem{n5, aig::kLitFalse, 11}});
  ASSERT_TRUE(wb.has_value());
  const std::size_t wb_nodes = wb->nodes.size();
  // The lie: claim wb only needs {1, 2}, so it qualifies for merging with
  // wa, but the merged build over {1, 2} cannot cover n5's cone (PI 3).
  wb->inputs = {1, 2};

  std::vector<Window> ws;
  ws.push_back(std::move(*wa));
  ws.push_back(std::move(*wb));
  MergeStats stats;
  auto out = merge_windows(a, std::move(ws), 3, &stats);

  EXPECT_EQ(stats.build_failures, 1u);
  EXPECT_EQ(stats.windows_merged, 0u);
  ASSERT_EQ(out.size(), 2u);
  // Both originals came through whole: one item each, tags preserved,
  // structure untouched (not moved-from, not partially merged).
  std::vector<std::uint32_t> tags;
  for (const Window& w : out) {
    ASSERT_EQ(w.items.size(), 1u);
    tags.push_back(w.items[0].tag);
    EXPECT_FALSE(w.inputs.empty());
    EXPECT_GT(w.num_slots(), 0u);
  }
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(tags, (std::vector<std::uint32_t>{10, 11}));
  // The lying window kept its full node table (built over 3 inputs).
  for (const Window& w : out) {
    if (w.items[0].tag == 11) {
      EXPECT_EQ(w.nodes.size(), wb_nodes);
    }
  }
}

TEST(WindowMerge, PaperExampleGrouping) {
  // Paper §III-B3: inputs {a,b}, {a,b,c}, {a,c}, {a,e}, {a,f} with k_s=3:
  // the first three merge, the last two merge.
  Aig a(6);  // PIs: a=1 b=2 c=3 e=4 f=5 (plus one spare)
  // Build tiny cones so each window is valid over its stated inputs.
  auto mk = [&](std::vector<Var> ins, std::uint32_t tag) {
    aig::Lit g = aig::kLitTrue;
    for (Var v : ins) g = a.add_and(g, aig::make_lit(v));
    auto w = build_window(a, std::move(ins),
                          {CheckItem{g, aig::kLitFalse, tag}});
    EXPECT_TRUE(w.has_value());
    return std::move(*w);
  };
  std::vector<Window> ws;
  ws.push_back(mk({1, 2}, 0));
  ws.push_back(mk({1, 2, 3}, 1));
  ws.push_back(mk({1, 3}, 2));
  ws.push_back(mk({1, 4}, 3));
  ws.push_back(mk({1, 5}, 4));
  auto merged = merge_windows(a, std::move(ws), 3);
  ASSERT_EQ(merged.size(), 2u);
  // Lexicographic order puts {1,2} {1,2,3} {1,3} first then {1,4} {1,5}.
  EXPECT_EQ(merged[0].inputs, (std::vector<Var>{1, 2, 3}));
  EXPECT_EQ(merged[0].items.size(), 3u);
  EXPECT_EQ(merged[1].inputs, (std::vector<Var>{1, 4, 5}));
  EXPECT_EQ(merged[1].items.size(), 2u);
}

}  // namespace
}  // namespace simsweep::window
