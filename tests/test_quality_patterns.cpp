/// \file test_quality_patterns.cpp
/// \brief Tests for simulation-guided pattern generation.

#include "sim/quality_patterns.hpp"

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "engine/engine.hpp"
#include "opt/resyn.hpp"
#include "test_util.hpp"

namespace simsweep::sim {
namespace {

using aig::Aig;

TEST(QualityPatterns, ClassCountMonotone) {
  const Aig a = testutil::random_aig(10, 200, 5, 500);
  QualityParams p;
  p.base_words = 1;
  p.candidate_rounds = 12;
  p.max_words = 6;
  QualityStats stats;
  const PatternBank bank = quality_patterns(a, p, &stats);
  EXPECT_GE(stats.classes_after, stats.classes_before);
  EXPECT_LE(stats.candidates_kept, stats.candidates_tried);
  EXPECT_LE(bank.num_words(), p.max_words);
  EXPECT_GE(bank.num_words(), p.base_words);
  // The returned bank really has the reported class count.
  EXPECT_EQ(count_signature_classes(a, bank), stats.classes_after);
}

TEST(QualityPatterns, CountClassesNeverSplitsTrueEquivalences) {
  // Class count is upper-bounded by the number of distinct global
  // functions (up to complement): no bank can do better.
  const Aig a = testutil::random_aig(6, 60, 3, 501);
  std::size_t distinct = 0;
  {
    std::vector<tt::TruthTable> seen;
    for (aig::Var v = 0; v < a.num_nodes(); ++v) {
      const tt::TruthTable t = aig::global_truth_table(a, aig::make_lit(v));
      bool found = false;
      for (const auto& s : seen)
        if (s == t || s == ~t) found = true;
      if (!found) {
        seen.push_back(t);
        ++distinct;
      }
    }
  }
  QualityParams p;
  p.base_words = 2;
  p.candidate_rounds = 16;
  p.max_words = 10;
  const PatternBank bank = quality_patterns(a, p);
  EXPECT_LE(count_signature_classes(a, bank), distinct);
}

TEST(QualityPatterns, ImprovesOrMatchesRandomOfSameSize) {
  const Aig a = testutil::random_aig(12, 300, 6, 502);
  QualityParams p;
  p.base_words = 1;
  p.candidate_rounds = 10;
  p.max_words = 4;
  const PatternBank quality = quality_patterns(a, p);
  const PatternBank random =
      PatternBank::random(a.num_pis(), quality.num_words(), p.seed);
  EXPECT_GE(count_signature_classes(a, quality),
            count_signature_classes(a, random));
}

TEST(QualityPatterns, EngineFlagStaysSound) {
  const Aig a = testutil::random_aig(8, 120, 5, 503);
  const Aig b = opt::resyn_light(a);
  engine::EngineParams p;
  p.k_P = 16;
  p.k_p = 10;
  p.k_g = 10;
  p.quality_patterns = true;
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

}  // namespace
}  // namespace simsweep::sim
