/// \file test_determinism.cpp
/// \brief Determinism: every checker must produce identical results on
/// identical inputs, regardless of thread scheduling. The parallel
/// algorithms are written so that work distribution never influences
/// outcomes; these tests pin that property.

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "gen/suite.hpp"
#include "opt/resyn.hpp"
#include "portfolio/portfolio.hpp"
#include "sweep/sat_sweeper.hpp"
#include "test_util.hpp"

namespace simsweep {
namespace {

using aig::Aig;

engine::EngineParams small_params() {
  engine::EngineParams p;
  p.k_P = 16;
  p.k_p = 10;
  p.k_g = 10;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  return p;
}

bool same_structure(const Aig& a, const Aig& b) {
  if (a.num_nodes() != b.num_nodes() || a.pos() != b.pos()) return false;
  for (aig::Var v = a.num_pis() + 1; v < a.num_nodes(); ++v)
    if (a.fanin0(v) != b.fanin0(v) || a.fanin1(v) != b.fanin1(v))
      return false;
  return true;
}

TEST(Determinism, EngineRunsAreBitIdentical) {
  const Aig a = testutil::random_aig(12, 260, 6, 950);
  const Aig b = opt::resyn_light(a);
  engine::EngineParams p = small_params();
  p.max_local_phases = 2;
  const engine::SimCecEngine eng(p);
  const engine::EngineResult r1 = eng.check(a, b);
  const engine::EngineResult r2 = eng.check(a, b);
  EXPECT_EQ(r1.verdict, r2.verdict);
  EXPECT_EQ(r1.stats.pairs_proved_global, r2.stats.pairs_proved_global);
  EXPECT_EQ(r1.stats.pairs_proved_local, r2.stats.pairs_proved_local);
  EXPECT_EQ(r1.stats.pos_proved, r2.stats.pos_proved);
  EXPECT_TRUE(same_structure(r1.reduced, r2.reduced));
}

TEST(Determinism, SweeperRunsAgree) {
  const Aig a = testutil::random_aig(10, 200, 5, 951);
  const Aig b = opt::resyn_light(a);
  const sweep::SatSweeper sweeper;
  const sweep::SweepResult r1 = sweeper.check(a, b);
  const sweep::SweepResult r2 = sweeper.check(a, b);
  EXPECT_EQ(r1.verdict, r2.verdict);
  EXPECT_EQ(r1.stats.pairs_proved, r2.stats.pairs_proved);
  EXPECT_EQ(r1.stats.sat_calls, r2.stats.sat_calls);
}

TEST(Determinism, GeneratorsAndOptimizerAreReproducible) {
  gen::SuiteParams sp;
  sp.doublings = 0;
  const gen::BenchCase c1 = gen::make_case("voter", sp);
  const gen::BenchCase c2 = gen::make_case("voter", sp);
  EXPECT_TRUE(same_structure(c1.original, c2.original));
  EXPECT_TRUE(same_structure(c1.optimized, c2.optimized));
}

TEST(Determinism, SeedChangesResultsButNotVerdicts) {
  const Aig a = testutil::random_aig(10, 180, 5, 952);
  const Aig b = opt::resyn_light(a);
  engine::EngineParams p1 = small_params();
  engine::EngineParams p2 = small_params();
  p2.seed = p1.seed + 1;
  const engine::EngineResult r1 = engine::SimCecEngine(p1).check(a, b);
  const engine::EngineResult r2 = engine::SimCecEngine(p2).check(a, b);
  // Different simulation seeds may change the work done, never the truth.
  EXPECT_EQ(r1.verdict, r2.verdict);
}

}  // namespace
}  // namespace simsweep
