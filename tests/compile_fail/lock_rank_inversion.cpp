/// \file lock_rank_inversion.cpp
/// \brief MUST NOT COMPILE under clang++ -Wthread-safety-beta
///        -Werror=thread-safety (the compile-fail pass of
///        tools/run_static_analysis.sh asserts exactly that).
///
/// Deliberate inversion of the DESIGN.md §2.6 lock order: `board` is
/// acquired while nesting into `executor`, but the rank table says
/// executor < board. Clang's analysis sees the SIMSWEEP_ACQUIRED_AFTER
/// edges on the lock_ranks anchors and rejects this with
///
///   error: acquiring mutex 'executor' requires negative capability
///          '!executor' [-Werror,-Wthread-safety-beta]
///   ... mutex 'executor' must be acquired before 'board' ...
///
/// (exact spelling varies by Clang release; the driver only asserts a
/// thread-safety diagnostic fired). The runtime twin of this test —
/// for GCC-only hosts, where the annotations compile to no-ops — is
/// LockRanks.InversionThrows in tests/test_lock_ranks.cpp.

#include "common/lock_ranks.hpp"

namespace simsweep::common {

void inverted_nesting() {
  Mutex board_mu, executor_mu;
  RankedMutexLock outer(board_mu, lock_ranks::board);
  RankedMutexLock inner(executor_mu, lock_ranks::executor);  // ILL-RANKED
}

}  // namespace simsweep::common
