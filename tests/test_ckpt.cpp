/// \file test_ckpt.cpp
/// \brief Checkpoint/resume subsystem tests (DESIGN.md §2.8): snapshot
/// round-trips, fail-closed loading (CRC, truncation, version, stage,
/// fingerprint), the atomic-write + last-good ladder, write/load fault
/// drills, resume verdict identity and supervised crash-restart.

#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "ckpt/resume.hpp"
#include "ckpt/supervisor.hpp"
#include "fault/fault.hpp"
#include "gen/arith.hpp"
#include "obs/metric_names.hpp"
#include "obs/registry.hpp"
#include "opt/resyn.hpp"
#include "sim/partial_sim.hpp"
#include "sweep/parallel_sweeper.hpp"
#include "test_util.hpp"

namespace simsweep::ckpt {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes_file(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Recomputes the CRC trailer after a deliberate field patch, so the test
/// exercises the *shape* gate rather than the CRC gate.
void refresh_crc(std::vector<std::uint8_t>& bytes) {
  const std::uint32_t c = crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((c >> (8 * i)) & 0xFF);
}

/// A representative sweep-stage snapshot with every section populated.
Snapshot sweep_snapshot(std::uint64_t fingerprint, double elapsed = 1.5) {
  Snapshot s;
  s.stage = Stage::kSweep;
  s.fingerprint = fingerprint;
  s.elapsed_seconds = elapsed;
  s.boundary = "round";
  s.engine_stats.initial_ands = 40;
  s.engine_stats.final_ands = 30;
  s.engine_stats.pos_total = 1;
  s.engine_stats.pairs_proved_global = 4;
  s.degrade.memory_words = std::size_t{1} << 12;
  s.degrade.ladder_steps = 2;
  s.miter = aig::make_miter(gen::array_multiplier(3),
                            gen::wallace_multiplier(3));
  s.bank = sim::PatternBank::random(s.miter.num_pis(), 2, 7);
  const aig::Var last = static_cast<aig::Var>(s.miter.num_nodes() - 1);
  s.merges.emplace_back(last, aig::make_lit(1));
  s.removed.push_back(last - 1);
  s.next_round = 3;
  s.sweep_pairs_proved = 5;
  s.sweep_pairs_disproved = 2;
  s.sweep_pairs_undecided = 1;
  return s;
}

// --- Format: serialize/parse round-trips and fail-closed rejects. ---

TEST(CkptFormat, SerializeParseRoundTrips) {
  const Snapshot s = sweep_snapshot(0xC0FFEEull);
  const std::vector<std::uint8_t> bytes = serialize(s);
  const std::optional<Snapshot> p = parse(bytes.data(), bytes.size());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->stage, Stage::kSweep);
  EXPECT_EQ(p->fingerprint, 0xC0FFEEull);
  EXPECT_DOUBLE_EQ(p->elapsed_seconds, 1.5);
  EXPECT_EQ(p->boundary, "round");
  EXPECT_EQ(p->engine_stats.initial_ands, 40u);
  EXPECT_EQ(p->engine_stats.pairs_proved_global, 4u);
  EXPECT_EQ(p->degrade.memory_words, std::size_t{1} << 12);
  EXPECT_EQ(p->degrade.ladder_steps, 2u);
  EXPECT_EQ(p->miter.num_nodes(), s.miter.num_nodes());
  EXPECT_EQ(p->miter.num_pos(), s.miter.num_pos());
  ASSERT_TRUE(p->bank.has_value());
  EXPECT_EQ(p->merges, s.merges);
  EXPECT_EQ(p->removed, s.removed);
  EXPECT_EQ(p->next_round, 3u);
  EXPECT_EQ(p->sweep_pairs_proved, 5u);
  EXPECT_EQ(p->sweep_pairs_disproved, 2u);
  EXPECT_EQ(p->sweep_pairs_undecided, 1u);
  // Re-serializing the parse must be byte-identical (the encoding is a
  // pure function of the snapshot, so checkpoints of a resumed run match
  // checkpoints of the uninterrupted run).
  EXPECT_EQ(serialize(*p), bytes);
}

TEST(CkptFormat, EngineStageWithoutBankRoundTrips) {
  Snapshot s;
  s.stage = Stage::kEngine;
  s.fingerprint = 17;
  s.boundary = "G+";
  s.miter = aig::make_miter(gen::ripple_adder(3), gen::ripple_adder(3));
  const std::vector<std::uint8_t> bytes = serialize(s);
  const std::optional<Snapshot> p = parse(bytes.data(), bytes.size());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->stage, Stage::kEngine);
  EXPECT_EQ(p->boundary, "G+");
  EXPECT_FALSE(p->bank.has_value());
  EXPECT_TRUE(p->merges.empty());
}

TEST(CkptFormat, CrcCatchesEveryByteCorruption) {
  const std::vector<std::uint8_t> good = serialize(sweep_snapshot(1));
  // Flip one bit of each byte in turn: every mutant must be rejected
  // (any accepted mutant either differs in the CRC-protected region —
  // impossible for a single flip — or corrupts the trailer itself).
  for (std::size_t at = 0; at < good.size(); ++at) {
    std::vector<std::uint8_t> bad = good;
    bad[at] ^= 0x10;
    EXPECT_FALSE(parse(bad.data(), bad.size()).has_value())
        << "accepted a flip at byte " << at;
  }
}

TEST(CkptFormat, TruncationAndTrailingGarbageRejected) {
  const std::vector<std::uint8_t> good = serialize(sweep_snapshot(2));
  for (std::size_t keep = 0; keep < good.size(); keep += 7)
    EXPECT_FALSE(parse(good.data(), keep).has_value());
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(parse(padded.data(), padded.size()).has_value());
}

TEST(CkptFormat, VersionAndStageAndElapsedShapeGatesHold) {
  const std::vector<std::uint8_t> good = serialize(sweep_snapshot(3));
  // Layout: magic[16] | version u32 | stage u32 | fingerprint u64 |
  // elapsed f64 | ...
  {
    std::vector<std::uint8_t> bad = good;  // future format version
    bad[16] = 2;
    refresh_crc(bad);
    EXPECT_FALSE(parse(bad.data(), bad.size()).has_value());
  }
  {
    std::vector<std::uint8_t> bad = good;  // stage out of range
    bad[20] = 9;
    refresh_crc(bad);
    EXPECT_FALSE(parse(bad.data(), bad.size()).has_value());
  }
  {
    std::vector<std::uint8_t> bad = good;  // negative elapsed wall-clock
    const double neg = -1.0;
    std::memcpy(bad.data() + 32, &neg, sizeof neg);
    refresh_crc(bad);
    EXPECT_FALSE(parse(bad.data(), bad.size()).has_value());
  }
}

TEST(CkptFormat, MergeJournalOrderingGateHolds) {
  // A merge entry whose replacement is not strictly smaller than the
  // merged node would let a resumed run apply an unsound substitution:
  // shape-rejected even with a valid CRC.
  Snapshot s = sweep_snapshot(4);
  s.merges.clear();
  const aig::Var last = static_cast<aig::Var>(s.miter.num_nodes() - 1);
  s.merges.emplace_back(last, aig::make_lit(last));  // lit_var(lit) == node
  std::vector<std::uint8_t> bad = serialize(s);
  EXPECT_FALSE(parse(bad.data(), bad.size()).has_value());
}

// --- Manager: atomic writes, the last-good ladder, throttling. ---

TEST(CkptManager, EmptyPathDisablesEverything) {
  CheckpointManager mgr({"", 0.0, nullptr, {}});
  mgr.offer(sweep_snapshot(5));
  mgr.flush();
  EXPECT_EQ(mgr.writes(), 0u);
  EXPECT_FALSE(mgr.load(5).has_value());
}

TEST(CkptManager, AtomicWriteRetainsLastGoodAsPrev) {
  const std::string path = temp_path("simsweep_ckpt_prev.ckpt");
  obs::Registry reg;
  CheckpointManager mgr({path, 0.0, &reg, {}});
  mgr.offer(sweep_snapshot(6, 1.0));
  mgr.offer(sweep_snapshot(6, 2.0));
  EXPECT_EQ(mgr.writes(), 2u);
  const std::vector<std::uint8_t> cur = read_bytes(path);
  const std::vector<std::uint8_t> prev = read_bytes(path + ".prev");
  const std::optional<Snapshot> pc = parse(cur.data(), cur.size());
  const std::optional<Snapshot> pp = parse(prev.data(), prev.size());
  ASSERT_TRUE(pc.has_value());
  ASSERT_TRUE(pp.has_value());
  EXPECT_DOUBLE_EQ(pc->elapsed_seconds, 2.0);
  EXPECT_DOUBLE_EQ(pp->elapsed_seconds, 1.0);
  EXPECT_EQ(reg.snapshot().count(obs::metric::kCkptWrites), 2u);
  EXPECT_GT(reg.snapshot().count(obs::metric::kCkptBytes), 0u);
}

TEST(CkptManager, LoadLadderFallsBackToPrevThenFresh) {
  const std::string path = temp_path("simsweep_ckpt_ladder.ckpt");
  obs::Registry reg;
  CheckpointManager mgr({path, 0.0, &reg, {}});
  mgr.offer(sweep_snapshot(7, 1.0));
  mgr.offer(sweep_snapshot(7, 2.0));

  // Corrupt the primary: load must fall through to .prev.
  std::vector<std::uint8_t> cur = read_bytes(path);
  cur.resize(cur.size() / 2);
  write_bytes_file(path, cur);
  std::optional<Snapshot> got = mgr.load(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->elapsed_seconds, 1.0);
  EXPECT_EQ(reg.snapshot().count(obs::metric::kCkptLoadRejects), 1u);

  // Corrupt .prev too: the ladder ends in "start fresh", never unsound.
  std::vector<std::uint8_t> prev = read_bytes(path + ".prev");
  prev[prev.size() / 2] ^= 0xFF;
  write_bytes_file(path + ".prev", prev);
  EXPECT_FALSE(mgr.load(7).has_value());
  EXPECT_EQ(reg.snapshot().count(obs::metric::kCkptLoadRejects), 3u);
}

TEST(CkptManager, FingerprintMismatchRejected) {
  const std::string path = temp_path("simsweep_ckpt_fp.ckpt");
  obs::Registry reg;
  CheckpointManager mgr({path, 0.0, &reg, {}});
  mgr.offer(sweep_snapshot(8));
  EXPECT_FALSE(mgr.load(9).has_value());
  EXPECT_EQ(reg.snapshot().count(obs::metric::kCkptLoadRejects), 1u);
  EXPECT_TRUE(mgr.load(8).has_value());
}

TEST(CkptManager, ThrottleKeepsPendingForFlush) {
  const std::string path = temp_path("simsweep_ckpt_throttle.ckpt");
  CheckpointManager mgr({path, 3600.0, nullptr, {}});
  mgr.offer(sweep_snapshot(10, 1.0));  // first offer is always durable
  mgr.offer(sweep_snapshot(10, 2.0));  // inside the interval: pending only
  EXPECT_EQ(mgr.writes(), 1u);
  {
    const std::vector<std::uint8_t> cur = read_bytes(path);
    const std::optional<Snapshot> p = parse(cur.data(), cur.size());
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(p->elapsed_seconds, 1.0);
  }
  mgr.flush();  // the SIGINT/SIGTERM path makes the pending offer durable
  EXPECT_EQ(mgr.writes(), 2u);
  const std::vector<std::uint8_t> cur = read_bytes(path);
  const std::optional<Snapshot> p = parse(cur.data(), cur.size());
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->elapsed_seconds, 2.0);
  mgr.flush();  // nothing pending: no third write
  EXPECT_EQ(mgr.writes(), 2u);
}

// --- Fault drills: the ckpt.* injection sites (DESIGN.md §2.4 + §2.8). ---

TEST(CkptFault, WriteFaultLeavesLastGoodIntact) {
  const std::string path = temp_path("simsweep_ckpt_wfault.ckpt");
  obs::Registry reg;
  CheckpointManager mgr({path, 0.0, &reg, {}});
  mgr.offer(sweep_snapshot(11, 1.0));
  {
    fault::FaultPlan plan;
    plan.on_hit(fault::sites::kCkptWrite, 1);
    fault::ScopedFaultPlan armed(plan);
    mgr.offer(sweep_snapshot(11, 2.0));  // write fails, snapshot pending
    EXPECT_EQ(mgr.writes(), 1u);
    const std::vector<std::uint8_t> cur = read_bytes(path);
    const std::optional<Snapshot> p = parse(cur.data(), cur.size());
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(p->elapsed_seconds, 1.0);  // last-good untouched
    EXPECT_EQ(armed.fires(fault::sites::kCkptWrite), 1u);
    mgr.flush();  // the plan is spent: the pending snapshot lands now
  }
  EXPECT_EQ(mgr.writes(), 2u);
  const std::vector<std::uint8_t> cur = read_bytes(path);
  const std::optional<Snapshot> p = parse(cur.data(), cur.size());
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->elapsed_seconds, 2.0);
}

TEST(CkptFault, LoadFaultFailsClosed) {
  const std::string path = temp_path("simsweep_ckpt_lfault.ckpt");
  obs::Registry reg;
  CheckpointManager mgr({path, 0.0, &reg, {}});
  mgr.offer(sweep_snapshot(12));
  {
    fault::FaultPlan plan;
    plan.on_hit(fault::sites::kCkptLoad, 1, 2);  // both ladder candidates
    fault::ScopedFaultPlan armed(plan);
    EXPECT_FALSE(mgr.load(12).has_value());
  }
  EXPECT_GE(reg.snapshot().count(obs::metric::kCkptLoadRejects), 1u);
  EXPECT_TRUE(mgr.load(12).has_value());  // disarmed: the file was fine
}

// --- Resume: verdict identity and journal replay. ---

TEST(CkptResume, KilledRunResumesToIdenticalVerdict) {
  // The acceptance drill of DESIGN.md §2.8 in-process: leg 1 runs the
  // combined flow to completion with every boundary durable; its last
  // snapshot is exactly the state a kill -9 at that boundary would leave
  // behind. Leg 2 resumes from it and must reach the same verdict with
  // restored (not re-solved) equivalences.
  CheckpointedParams p;
  p.combined.engine.enable_po_phase = false;
  p.combined.engine.k_P = 6;
  p.combined.engine.k_p = 4;
  p.combined.engine.k_g = 4;
  p.combined.engine.k_l = 4;
  p.combined.engine.memory_words = std::size_t{1} << 16;
  p.checkpoint_path = temp_path("simsweep_ckpt_resume.ckpt");
  p.checkpoint_interval = 0;
  p.resume = true;

  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);

  const CheckpointedResult leg1 = checked_combined_check(a, b, p);
  EXPECT_FALSE(leg1.resumed);
  EXPECT_EQ(leg1.combined.verdict, Verdict::kEquivalent);
  ASSERT_GT(leg1.checkpoint_writes, 0u);
  EXPECT_EQ(leg1.combined.report.count(obs::metric::kCkptResumes), 0u);

  const CheckpointedResult leg2 = checked_combined_check(a, b, p);
  EXPECT_TRUE(leg2.resumed);
  EXPECT_EQ(leg2.combined.verdict, leg1.combined.verdict);
  EXPECT_GT(leg2.pairs_restored, 0u);
  EXPECT_EQ(leg2.combined.report.count(obs::metric::kCkptResumes), 1u);
  EXPECT_EQ(leg2.combined.report.count(obs::metric::kCkptPairsRestored),
            leg2.pairs_restored);
}

TEST(CkptResume, WrongConfigurationSnapshotIsIgnored) {
  // Same miter, different k thresholds: the fingerprint differs, so the
  // resume ladder must reject the snapshot and run fresh (resuming a
  // different configuration would void the determinism argument).
  CheckpointedParams p;
  p.combined.engine.enable_po_phase = false;
  p.combined.engine.k_P = 6;
  p.combined.engine.k_p = 4;
  p.combined.engine.k_g = 4;
  p.combined.engine.k_l = 4;
  p.combined.engine.memory_words = std::size_t{1} << 16;
  p.checkpoint_path = temp_path("simsweep_ckpt_cfg.ckpt");

  const aig::Aig a = gen::array_multiplier(3);
  const aig::Aig b = gen::wallace_multiplier(3);
  const CheckpointedResult leg1 = checked_combined_check(a, b, p);
  EXPECT_EQ(leg1.combined.verdict, Verdict::kEquivalent);

  CheckpointedParams q = p;
  q.combined.engine.k_g = 5;  // verdict-relevant parameter changed
  const CheckpointedResult leg2 = checked_combined_check(a, b, q);
  EXPECT_FALSE(leg2.resumed);
  EXPECT_EQ(leg2.combined.verdict, Verdict::kEquivalent);
  EXPECT_GE(leg2.combined.report.count(obs::metric::kCkptLoadRejects), 1u);
}

TEST(CkptResume, CorruptedSnapshotsFallBackToSoundFreshRun) {
  CheckpointedParams p;
  p.combined.engine.enable_po_phase = false;
  p.combined.engine.k_P = 6;
  p.combined.engine.k_p = 4;
  p.combined.engine.k_g = 4;
  p.combined.engine.k_l = 4;
  p.combined.engine.memory_words = std::size_t{1} << 16;
  p.checkpoint_path = temp_path("simsweep_ckpt_corrupt.ckpt");

  // A NON-equivalent pair: if a corrupted snapshot were trusted, a wrong
  // "equivalent" would be the worst possible outcome — assert the fresh
  // fallback still refutes.
  const aig::Aig a = gen::array_multiplier(3);
  const aig::Aig b = testutil::mutate(a, 123);
  const aig::Aig miter = aig::make_miter(a, b);
  if (aig::miter_proved(miter)) GTEST_SKIP() << "mutation was benign";

  const CheckpointedResult leg1 = checked_combined_check(a, b, p);
  if (leg1.combined.verdict != Verdict::kNotEquivalent)
    GTEST_SKIP() << "mutation was benign";

  if (leg1.checkpoint_writes > 0) {
    // Bit-flip whatever snapshots the run left behind.
    for (const std::string f :
         {p.checkpoint_path, p.checkpoint_path + ".prev"}) {
      std::vector<std::uint8_t> bytes = read_bytes(f);
      if (bytes.empty()) continue;
      bytes[bytes.size() / 3] ^= 0x40;
      write_bytes_file(f, bytes);
    }
  }
  const CheckpointedResult leg2 = checked_combined_check(a, b, p);
  EXPECT_FALSE(leg2.resumed);
  EXPECT_EQ(leg2.combined.verdict, Verdict::kNotEquivalent);
}

TEST(CkptResume, SweeperRoundJournalReplaysToIdenticalVerdict) {
  // Sweeper-level resume, below the combined flow: capture the journal at
  // a round barrier via the checkpoint hook, replay it through
  // SweeperParams::resume, and require the identical verdict and merged
  // pair totals (the §2.8 determinism argument at its smallest scope).
  const aig::Aig a = testutil::random_aig(12, 260, 6, 300);
  const aig::Aig b = opt::resyn_light(a);
  const aig::Aig miter = aig::make_miter(a, b);
  if (aig::miter_proved(miter)) GTEST_SKIP() << "strash solved it";

  sweep::SweeperParams sp;
  sp.sim_words = 1;  // sparse EC init => several refinement rounds

  std::optional<sweep::SweepResumeState> captured;
  sweep::SweeperParams record = sp;
  record.checkpoint_hook = [&](const sweep::SweepCheckpointView& v) {
    sweep::SweepResumeState s;
    s.merges = *v.merges;
    s.removed = *v.removed;
    if (v.bank != nullptr) s.bank = *v.bank;
    s.next_round = v.next_round;
    s.pairs_proved = v.stats->pairs_proved;
    s.pairs_disproved = v.stats->pairs_disproved;
    s.pairs_undecided = v.stats->pairs_undecided;
    captured = std::move(s);  // keep the LAST boundary, like a real crash
  };
  const sweep::SweepResult fresh = sweep::sweep_miter(miter, record);
  if (!captured)
    GTEST_SKIP() << "sweep decided before the first round barrier";

  sweep::SweeperParams resumed_params = sp;
  resumed_params.resume = &*captured;
  const sweep::SweepResult resumed = sweep::sweep_miter(miter, resumed_params);
  EXPECT_EQ(resumed.verdict, fresh.verdict);
  EXPECT_EQ(resumed.stats.pairs_proved, fresh.stats.pairs_proved);
  EXPECT_EQ(resumed.stats.pairs_disproved, fresh.stats.pairs_disproved);
}

// --- Supervisor: crash-restart with exponential backoff. ---

TEST(Supervisor, NormalExitPassesThrough) {
  SupervisorParams sp;
  sp.backoff_initial_ms = 1;
  const SupervisorOutcome o =
      supervise(sp, [](const SupervisorProgress&) { return 42; });
  EXPECT_EQ(o.exit_code, 42);
  EXPECT_EQ(o.restarts, 0u);
  EXPECT_EQ(o.backoff_ms, 0u);
  EXPECT_FALSE(o.gave_up);
}

TEST(Supervisor, AbnormalExitTriggersRestart) {
  SupervisorParams sp;
  sp.backoff_initial_ms = 1;
  const SupervisorOutcome o = supervise(sp, [](const SupervisorProgress& p) {
    if (p.restarts == 0) std::abort();  // the first attempt "crashes"
    return 7;  // the restarted attempt sees restarts == 1 and succeeds
  });
  EXPECT_EQ(o.exit_code, 7);
  EXPECT_EQ(o.restarts, 1u);
  EXPECT_GE(o.backoff_ms, 1u);
  EXPECT_FALSE(o.gave_up);
}

TEST(Supervisor, GivesUpAfterRestartBudget) {
  SupervisorParams sp;
  sp.max_restarts = 2;
  sp.backoff_initial_ms = 1;
  sp.backoff_max_ms = 4;
  const SupervisorOutcome o = supervise(
      sp, [](const SupervisorProgress&) -> int { std::abort(); });
  EXPECT_TRUE(o.gave_up);
  EXPECT_EQ(o.exit_code, -1);
  EXPECT_EQ(o.restarts, 2u);
  EXPECT_GE(o.backoff_ms, 2u);  // 1ms + min(2ms, cap)
}

TEST(Supervisor, ErrorExitCodeIsNotARestart) {
  // Tool errors (rc 3) are normal exits: supervision must hand them
  // through instead of burning the restart budget on a deterministic
  // failure.
  SupervisorParams sp;
  sp.backoff_initial_ms = 1;
  const SupervisorOutcome o =
      supervise(sp, [](const SupervisorProgress&) { return 3; });
  EXPECT_EQ(o.exit_code, 3);
  EXPECT_EQ(o.restarts, 0u);
  EXPECT_FALSE(o.gave_up);
}

}  // namespace
}  // namespace simsweep::ckpt
