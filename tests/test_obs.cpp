/// \file test_obs.cpp
/// \brief Tests for the observability layer (DESIGN.md §2.3): the
/// counter/gauge registry, the JSON run-report emitter/validator, and the
/// end-to-end report shape of an engine run.

#include "obs/metric_names.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "gen/arith.hpp"

namespace simsweep::obs {
namespace {

TEST(ObsRegistry, CounterBasics) {
  Registry r;
  Counter& c = r.counter("m.events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same cell; the reference is stable.
  EXPECT_EQ(&r.counter("m.events"), &c);
  r.add("m.events", 8);
  EXPECT_EQ(c.value(), 50u);
}

TEST(ObsRegistry, GaugeBasics) {
  Registry r;
  Gauge& g = r.gauge("m.seconds");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);
  r.set("m.seconds", 3.0);  // last writer wins
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  r.add_value("m.seconds", 1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(ObsRegistry, SnapshotSortedAndQueryable) {
  Registry r;
  r.add("b.count", 7);
  r.set("a.value", 2.5);
  r.add("c.sub.count", 1);
  const Snapshot s = r.snapshot();
  ASSERT_EQ(s.metrics.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      s.metrics.begin(), s.metrics.end(),
      [](const Metric& x, const Metric& y) { return x.name < y.name; }));
  EXPECT_EQ(s.count("b.count"), 7u);
  EXPECT_DOUBLE_EQ(s.value("a.value"), 2.5);
  EXPECT_EQ(s.count("a.value"), 0u);    // kind mismatch reads as 0
  EXPECT_EQ(s.find("missing"), nullptr);
  EXPECT_EQ(s.count("missing"), 0u);
  ASSERT_NE(s.find("c.sub.count"), nullptr);
  EXPECT_EQ(s.find("c.sub.count")->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(s.find("b.count")->as_double(), 7.0);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(Snapshot{}.empty());
}

TEST(ObsRegistry, ConcurrentPublishersAgree) {
  // The publish-path contract: cell creation locks, increments are
  // lock-free relaxed atomics. Hammer one shared counter, per-thread
  // counters and a shared gauge from many threads (the TSan-labelled run
  // of this suite checks the synchronization claims for real).
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      const std::string mine =
          "m.thread" + std::to_string(t) + ".events";
      for (int i = 0; i < kIters; ++i) {
        r.add("m.shared");
        r.add(mine);
        r.add_value("m.shared_sum", 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.count("m.shared"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(s.value("m.shared_sum"),
                   static_cast<double>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(s.count("m.thread" + std::to_string(t) + ".events"),
              static_cast<std::uint64_t>(kIters));
}

/// A registry covering the report schema's required sections (v2 added
/// faults/degrade, v3 adds ckpt/supervisor; the sections must exist, zero
/// values are the healthy state).
Registry& fill_valid(Registry& r) {
  r.add(obs::metric::kExhaustiveBatches, 3);
  r.add("cut.pass1.checks", 12);
  r.add(obs::metric::kEcBuilds, 2);
  r.add(obs::metric::kPartialSimSimulateCalls, 5);
  r.add(obs::metric::kMiterRebuilds, 1);
  r.set(obs::metric::kPoolWorkers, 4.0);
  r.set(obs::metric::kEngineTotalSeconds, 0.25);
  r.add(obs::metric::kFaultsInjected, 0);
  r.add(obs::metric::kDegradeLadderSteps, 0);
  r.add(obs::metric::kCkptWrites, 0);
  r.add(obs::metric::kSupervisorRestarts, 0);
  return r;
}

TEST(ObsReport, EmitAndValidateRoundTrip) {
  Registry r;
  const std::string json = to_json(fill_valid(r).snapshot());
  EXPECT_NE(json.find(kSchemaId), std::string::npos);
  EXPECT_NE(json.find("\"batches\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"workers\": 4"), std::string::npos);
  std::string error;
  EXPECT_TRUE(validate_report_json(json, &error)) << error;
}

TEST(ObsReport, ValidatorRejectsBadReports) {
  std::string error;
  // Malformed JSON.
  EXPECT_FALSE(validate_report_json("{", &error));
  // Valid JSON, wrong schema tag.
  EXPECT_FALSE(validate_report_json(
      "{\"schema\": \"other.v9\", \"metrics\": {}}", &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  // Missing module section.
  {
    Registry r2;
    r2.add(obs::metric::kExhaustiveBatches, 3);
    r2.add("cut.pass1.checks", 12);
    r2.add(obs::metric::kEcBuilds, 2);
    r2.add(obs::metric::kPartialSimSimulateCalls, 5);
    r2.set(obs::metric::kPoolWorkers, 4.0);
    EXPECT_FALSE(validate_report_json(to_json(r2.snapshot()), &error));
    EXPECT_NE(error.find("miter"), std::string::npos);
  }
  // Section present but all-zero: the nonzero contract fails.
  {
    Registry r3;
    r3.add(obs::metric::kExhaustiveBatches, 3);
    r3.add("cut.pass1.checks", 12);
    r3.add(obs::metric::kEcBuilds, 0);  // creates the cell, leaves it at zero
    r3.add(obs::metric::kPartialSimSimulateCalls, 5);
    r3.add(obs::metric::kMiterRebuilds, 1);
    r3.set(obs::metric::kPoolWorkers, 4.0);
    EXPECT_FALSE(validate_report_json(to_json(r3.snapshot()), &error));
    EXPECT_NE(error.find("ec"), std::string::npos);
  }
}

TEST(ObsReport, V2RequiresFaultAndDegradeSections) {
  // A v2-tagged report without the robustness sections is invalid; their
  // *presence* (not nonzero-ness) is the v2 contract. to_json always
  // stamps the newest schema id, so retag each emission as v2.
  const auto as_v2 = [](std::string json) {
    const std::size_t at = json.find(kSchemaId);
    EXPECT_NE(at, std::string::npos);
    json.replace(at, std::string(kSchemaId).size(), kSchemaIdV2);
    return json;
  };
  Registry r;
  r.add(obs::metric::kExhaustiveBatches, 3);
  r.add("cut.pass1.checks", 12);
  r.add(obs::metric::kEcBuilds, 2);
  r.add(obs::metric::kPartialSimSimulateCalls, 5);
  r.add(obs::metric::kMiterRebuilds, 1);
  r.set(obs::metric::kPoolWorkers, 4.0);
  std::string error;
  EXPECT_FALSE(validate_report_json(as_v2(to_json(r.snapshot())), &error));
  EXPECT_NE(error.find("faults"), std::string::npos);

  r.add(obs::metric::kFaultsInjected, 0);
  EXPECT_FALSE(validate_report_json(as_v2(to_json(r.snapshot())), &error));
  EXPECT_NE(error.find("degrade"), std::string::npos);

  r.add(obs::metric::kDegradeLadderSteps, 0);
  EXPECT_TRUE(validate_report_json(as_v2(to_json(r.snapshot())), &error))
      << error;
}

TEST(ObsReport, V3RequiresCkptAndSupervisorSections) {
  // v3 (DESIGN.md §2.8) additionally requires the checkpoint/supervisor
  // sections; presence, not nonzero-ness, is the contract — an unarmed
  // run reports zero writes and zero restarts.
  Registry r;
  r.add(obs::metric::kExhaustiveBatches, 3);
  r.add("cut.pass1.checks", 12);
  r.add(obs::metric::kEcBuilds, 2);
  r.add(obs::metric::kPartialSimSimulateCalls, 5);
  r.add(obs::metric::kMiterRebuilds, 1);
  r.set(obs::metric::kPoolWorkers, 4.0);
  r.add(obs::metric::kFaultsInjected, 0);
  r.add(obs::metric::kDegradeLadderSteps, 0);
  std::string error;
  EXPECT_FALSE(validate_report_json(to_json(r.snapshot()), &error));
  EXPECT_NE(error.find("ckpt"), std::string::npos);

  r.add(obs::metric::kCkptWrites, 0);
  EXPECT_FALSE(validate_report_json(to_json(r.snapshot()), &error));
  EXPECT_NE(error.find("supervisor"), std::string::npos);

  r.add(obs::metric::kSupervisorRestarts, 0);
  EXPECT_TRUE(validate_report_json(to_json(r.snapshot()), &error)) << error;
}

TEST(ObsReport, V1ReportsStillAccepted) {
  // Archived v1 documents (no fault telemetry) keep validating: emit a v2
  // report without the robustness sections and retag it as v1.
  Registry r;
  r.add(obs::metric::kExhaustiveBatches, 3);
  r.add("cut.pass1.checks", 12);
  r.add(obs::metric::kEcBuilds, 2);
  r.add(obs::metric::kPartialSimSimulateCalls, 5);
  r.add(obs::metric::kMiterRebuilds, 1);
  r.set(obs::metric::kPoolWorkers, 4.0);
  std::string json = to_json(r.snapshot());
  const std::size_t at = json.find(kSchemaId);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, std::string(kSchemaId).size(), kSchemaIdV1);
  std::string error;
  EXPECT_TRUE(validate_report_json(json, &error)) << error;
}

TEST(ObsReport, EngineRunEmitsValidReport) {
  // End-to-end shape: a multiplier pair with a crippled one-shot P phase
  // pushes work through all five instrumented modules, and the resulting
  // report must pass the schema validator (the same contract the
  // report_schema ctest checks on the cec_tool demo flow).
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  engine::EngineParams p;
  p.enable_po_phase = false;  // G and L do all the work
  p.k_P = 10;                 // escalation ceiling ≥ 8 PIs: still decisive
  p.k_p = 4;
  p.k_g = 5;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  const engine::SimCecEngine eng(p);
  const engine::EngineResult r = eng.check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  std::string error;
  EXPECT_TRUE(validate_report_json(to_json(r.report), &error)) << error;
}

TEST(ObsReport, SharedRegistryAccumulatesAcrossAttempts) {
  // Counter cells have add semantics: two engine runs publishing into the
  // same registry must report the summed work, which is what the combined
  // checker's rewriting-interleaved attempt chain relies on.
  const aig::Aig a = gen::array_multiplier(3);
  const aig::Aig b = gen::wallace_multiplier(3);
  engine::EngineParams p;
  p.k_P = 16;
  p.k_p = 10;
  p.k_g = 10;
  p.memory_words = 1 << 16;

  Registry once;
  p.registry = &once;
  (void)engine::SimCecEngine(p).check(a, b);
  const std::uint64_t one_run = once.snapshot().count(obs::metric::kExhaustiveBatches);
  ASSERT_GT(one_run, 0u);

  Registry twice;
  p.registry = &twice;
  const engine::SimCecEngine eng(p);
  (void)eng.check(a, b);
  (void)eng.check(a, b);
  EXPECT_EQ(twice.snapshot().count(obs::metric::kExhaustiveBatches), 2 * one_run);
}

}  // namespace
}  // namespace simsweep::obs
