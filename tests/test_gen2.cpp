/// \file test_gen2.cpp
/// \brief Reference-math validation of the extended circuit families
/// (divider, barrel rotator, max, decoder, priority encoder, ALU), plus
/// cross-checks through the CEC engine.

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "engine/engine.hpp"
#include "gen/arith2.hpp"
#include "opt/resyn.hpp"

namespace simsweep::gen {
namespace {

using aig::Aig;

std::uint64_t run(const Aig& a, std::uint64_t input_bits) {
  std::vector<bool> pis(a.num_pis());
  for (unsigned i = 0; i < a.num_pis(); ++i) pis[i] = (input_bits >> i) & 1;
  const auto outs = a.evaluate(pis);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < outs.size(); ++i)
    v |= static_cast<std::uint64_t>(outs[i]) << i;
  return v;
}

TEST(Arith2, Divider) {
  const unsigned n = 4;
  const Aig a = divider(n);
  ASSERT_EQ(a.num_pos(), 2 * n);
  for (unsigned x = 0; x < 16; ++x)
    for (unsigned d = 1; d < 16; ++d) {
      const std::uint64_t out = run(a, x | (d << n));
      ASSERT_EQ(out & 0xF, x / d) << x << "/" << d;
      ASSERT_EQ((out >> n) & 0xF, x % d) << x << "%" << d;
    }
}

TEST(Arith2, DividerByZeroConvention) {
  const Aig a = divider(4);
  for (unsigned x = 0; x < 16; ++x) {
    const std::uint64_t out = run(a, x);
    EXPECT_EQ(out & 0xF, 0xFu);          // quotient saturates
    EXPECT_EQ((out >> 4) & 0xF, x);      // remainder = dividend
  }
}

TEST(Arith2, BarrelRotator) {
  const unsigned w = 8;
  const Aig a = barrel_rotator(w);
  ASSERT_EQ(a.num_pis(), w + 3);
  for (unsigned data : {0x01u, 0x5Au, 0xF0u, 0xFFu})
    for (unsigned s = 0; s < w; ++s) {
      const std::uint64_t out =
          run(a, data | (static_cast<std::uint64_t>(s) << w));
      const unsigned expect =
          ((data << s) | (data >> (w - s))) & ((1u << w) - 1);
      ASSERT_EQ(out, s == 0 ? data : expect) << "data=" << data << " s=" << s;
    }
}

TEST(Arith2, BarrelRejectsNonPowerOfTwo) {
  EXPECT_THROW(barrel_rotator(6), std::invalid_argument);
}

TEST(Arith2, Max) {
  const Aig a = max_circuit(5);
  for (unsigned x = 0; x < 32; x += 3)
    for (unsigned y = 0; y < 32; y += 5)
      ASSERT_EQ(run(a, x | (y << 5)), std::max(x, y));
}

TEST(Arith2, Decoder) {
  const Aig a = decoder(4);
  ASSERT_EQ(a.num_pos(), 16u);
  for (unsigned code = 0; code < 16; ++code)
    ASSERT_EQ(run(a, code), std::uint64_t{1} << code);
}

TEST(Arith2, PriorityEncoder) {
  const unsigned n = 10;
  const Aig a = priority_encoder(n);
  ASSERT_EQ(a.num_pos(), 5u);  // 4 index bits + valid
  EXPECT_EQ(run(a, 0), 0u);    // nothing requested: valid = 0
  for (unsigned i = 0; i < n; ++i) {
    // Requests at i and everything above: index must be i.
    std::uint64_t req = 0;
    for (unsigned j = i; j < n; ++j) req |= std::uint64_t{1} << j;
    const std::uint64_t out = run(a, req);
    ASSERT_EQ(out & 0xF, i);
    ASSERT_TRUE((out >> 4) & 1);
  }
}

TEST(Arith2, AluOps) {
  const unsigned n = 4;
  const Aig a = alu(n);
  for (unsigned x = 0; x < 16; x += 3)
    for (unsigned y = 0; y < 16; y += 5)
      for (unsigned op = 0; op < 4; ++op) {
        const std::uint64_t in =
            x | (y << n) | (static_cast<std::uint64_t>(op) << (2 * n));
        const std::uint64_t out = run(a, in);
        const unsigned result = out & 0xF;
        const bool carry = (out >> n) & 1;
        switch (op) {
          case 0:
            ASSERT_EQ(result, (x + y) & 0xF);
            ASSERT_EQ(carry, (x + y) > 0xF);
            break;
          case 1:
            ASSERT_EQ(result, x & y);
            ASSERT_FALSE(carry);
            break;
          case 2:
            ASSERT_EQ(result, x | y);
            ASSERT_FALSE(carry);
            break;
          case 3:
            ASSERT_EQ(result, x ^ y);
            ASSERT_FALSE(carry);
            break;
        }
      }
}

class Arith2Cec : public ::testing::TestWithParam<int> {};

TEST_P(Arith2Cec, OptimizedCopiesProveEquivalent) {
  // Every new family must survive the full engine round trip.
  Aig original = [&]() -> Aig {
    switch (GetParam()) {
      case 0: return divider(4);
      case 1: return barrel_rotator(8);
      case 2: return max_circuit(6);
      case 3: return decoder(5);
      case 4: return priority_encoder(12);
      default: return alu(4);
    }
  }();
  const Aig optimized = opt::resyn2(original);
  engine::EngineParams p;
  p.k_P = 16;
  p.k_p = 12;
  p.k_g = 12;
  const engine::EngineResult r =
      engine::SimCecEngine(p).check(original, optimized);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

INSTANTIATE_TEST_SUITE_P(Families, Arith2Cec, ::testing::Range(0, 6));

}  // namespace
}  // namespace simsweep::gen
