/// \file test_sim_ec.cpp
/// \brief Tests for partial simulation, pattern banks, CEX collection and
/// equivalence-class management.

#include <gtest/gtest.h>

#include <algorithm>

#include "aig/aig_analysis.hpp"
#include "sim/ec_manager.hpp"
#include "sim/partial_sim.hpp"
#include "test_util.hpp"

namespace simsweep::sim {
namespace {

using aig::Aig;
using aig::Lit;
using aig::Var;

TEST(PatternBank, RandomDeterministicPerSeed) {
  const PatternBank a = PatternBank::random(4, 3, 9);
  const PatternBank b = PatternBank::random(4, 3, 9);
  const PatternBank c = PatternBank::random(4, 3, 10);
  bool all_equal = true, any_diff_c = false;
  for (unsigned pi = 0; pi < 4; ++pi)
    for (std::size_t w = 0; w < 3; ++w) {
      all_equal &= a.word(pi, w) == b.word(pi, w);
      any_diff_c |= a.word(pi, w) != c.word(pi, w);
    }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(PatternBank, AppendAndTruncate) {
  PatternBank bank(3, 2);
  bank.word(1, 0) = 0xAA;
  bank.append_words({1, 2, 3});
  EXPECT_EQ(bank.num_words(), 3u);
  EXPECT_EQ(bank.word(1, 0), 0xAAu);
  EXPECT_EQ(bank.word(0, 2), 1u);
  EXPECT_EQ(bank.word(2, 2), 3u);
  bank.truncate_front(2);
  EXPECT_EQ(bank.num_words(), 2u);
  // Oldest word dropped: word 0 is the former word 1.
  EXPECT_EQ(bank.word(0, 1), 1u);
  EXPECT_EQ(bank.word(2, 1), 3u);
}

TEST(CexCollector, PacksAssignmentsIntoBits) {
  CexCollector c(4);
  c.add({{0, true}, {2, true}});
  c.add({{1, true}});
  EXPECT_EQ(c.num_cexes(), 2u);
  PatternBank bank(4, 0);
  c.flush_into(bank);
  EXPECT_TRUE(c.empty());
  ASSERT_EQ(bank.num_words(), 1u);
  EXPECT_EQ(bank.word(0, 0) & 3, 1u);  // CEX0: pi0=1; CEX1: pi0=0
  EXPECT_EQ(bank.word(1, 0) & 3, 2u);  // CEX0: pi1=0; CEX1: pi1=1
  EXPECT_EQ(bank.word(2, 0) & 3, 1u);
  EXPECT_EQ(bank.word(3, 0) & 3, 0u);
}

TEST(CexCollector, SpillsIntoMultipleWords) {
  CexCollector c(2);
  for (int i = 0; i < 70; ++i) c.add({{0, true}});
  PatternBank bank(2, 0);
  c.flush_into(bank);
  EXPECT_EQ(bank.num_words(), 2u);
  EXPECT_EQ(bank.word(0, 0), ~Word{0});
  EXPECT_EQ(bank.word(0, 1), (Word{1} << 6) - 1);  // 6 leftover CEXs
}

TEST(Simulate, MatchesReferenceEvaluator) {
  const Aig a = testutil::random_aig(6, 80, 4, 77);
  const PatternBank bank = PatternBank::random(6, 2, 5);
  const Signatures sigs = simulate(a, bank);
  ASSERT_EQ(sigs.num_words, 2u);
  for (Var v = 0; v < a.num_nodes(); ++v) {
    for (unsigned bit = 0; bit < 128; bit += 17) {
      const std::size_t w = bit / 64;
      std::vector<bool> pis(6);
      for (unsigned i = 0; i < 6; ++i)
        pis[i] = (bank.word(i, w) >> (bit % 64)) & 1;
      const bool expect =
          v == 0 ? false : a.evaluate_lit(aig::make_lit(v), pis);
      ASSERT_EQ(static_cast<bool>((sigs.word(v, w) >> (bit % 64)) & 1),
                expect)
          << "node " << v << " bit " << bit;
    }
  }
}

TEST(Simulate, ComplementedFanins) {
  Aig a(2);
  const Lit g = a.add_and(aig::lit_not(a.pi_lit(0)), a.pi_lit(1));
  a.add_po(g);
  PatternBank bank(2, 1);
  bank.word(0, 0) = 0b0101;
  bank.word(1, 0) = 0b0011;
  const Signatures sigs = simulate(a, bank);
  EXPECT_EQ(sigs.word(aig::lit_var(g), 0) & 0xF, 0b0010u);
}

TEST(EcManager, GroupsEqualSignatures) {
  Aig a(3);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit f1 = a.add_and(x, y);
  const Lit f2 = a.add_and(a.add_or(x, y), f1);  // == f1
  const Lit g = a.add_xor(x, y);
  a.add_po(f2);
  a.add_po(g);
  const PatternBank bank = PatternBank::random(3, 4, 3);
  EcManager ec;
  ec.build(a, simulate(a, bank));
  bool found = false;
  for (const auto& cls : ec.classes()) {
    const bool has1 = std::count(cls.begin(), cls.end(), aig::lit_var(f1));
    const bool has2 = std::count(cls.begin(), cls.end(), aig::lit_var(f2));
    if (has1 && has2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EcManager, DetectsComplementedEquivalence) {
  // XOR and XNOR are both AND-rooted nodes here (OR-rooted functions are
  // complemented AND literals in an AIG), with complementary functions.
  Aig a(2);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit f = a.add_xor(x, y);                 // node computes x ^ y
  const Lit g = a.add_xor(x, aig::lit_not(y));   // node computes !(x ^ y)
  a.add_po(f);
  a.add_po(g);
  const PatternBank bank = PatternBank::random(2, 4, 3);
  EcManager ec;
  ec.build(a, simulate(a, bank));
  const Var vf = aig::lit_var(f), vg = aig::lit_var(g);
  bool same_class = false;
  for (const auto& cls : ec.classes())
    if (std::count(cls.begin(), cls.end(), vf) &&
        std::count(cls.begin(), cls.end(), vg)) {
      same_class = true;
      EXPECT_NE(ec.phase(vf), ec.phase(vg));
    }
  EXPECT_TRUE(same_class);
}

TEST(EcManager, CandidatePairsUseMinIdRepresentative) {
  const Aig a = testutil::random_aig(5, 60, 3, 42);
  const PatternBank bank = PatternBank::random(5, 1, 4);
  EcManager ec;
  ec.build(a, simulate(a, bank));
  for (const CandidatePair& p : ec.candidate_pairs())
    ASSERT_LT(p.repr, p.node);
}

TEST(EcManager, NeverSeparatesTrulyEquivalentNodes) {
  // Soundness of build+refine: nodes with equal (or complementary) global
  // functions must stay in one class no matter the patterns.
  const Aig a = testutil::random_aig(5, 60, 3, 43);
  const PatternBank bank = PatternBank::random(5, 2, 4);
  EcManager ec;
  ec.build(a, simulate(a, bank));
  ec.refine(simulate(a, PatternBank::random(5, 2, 99)));

  std::vector<tt::TruthTable> tts;
  for (Var v = 0; v < a.num_nodes(); ++v)
    tts.push_back(aig::global_truth_table(a, aig::make_lit(v)));
  std::vector<int> class_of(a.num_nodes(), -1);
  for (std::size_t c = 0; c < ec.classes().size(); ++c)
    for (Var v : ec.classes()[c]) class_of[v] = static_cast<int>(c);
  for (Var u = 0; u < a.num_nodes(); ++u)
    for (Var v = u + 1; v < a.num_nodes(); ++v)
      if (tts[u] == tts[v] || tts[u] == ~tts[v]) {
        ASSERT_TRUE(class_of[u] >= 0 && class_of[u] == class_of[v])
            << "equivalent nodes " << u << "," << v << " separated";
      }
}

TEST(EcManager, RefineSplitsOnDistinguishingPattern) {
  Aig a(2);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit f = a.add_and(x, y);
  const Lit g = a.add_or(x, y);
  a.add_po(f);
  a.add_po(g);
  // A bank where x==y on every pattern: AND and OR look identical.
  PatternBank bank(2, 1);
  bank.word(0, 0) = 0b0110;
  bank.word(1, 0) = 0b0110;
  EcManager ec;
  ec.build(a, simulate(a, bank));
  const Var vf = aig::lit_var(f), vg = aig::lit_var(g);
  auto same_class = [&] {
    for (const auto& cls : ec.classes())
      if (std::count(cls.begin(), cls.end(), vf) &&
          std::count(cls.begin(), cls.end(), vg))
        return true;
    return false;
  };
  ASSERT_TRUE(same_class());
  PatternBank refine_bank(2, 1);
  refine_bank.word(0, 0) = 1;
  refine_bank.word(1, 0) = 0;
  ec.refine(simulate(a, refine_bank));
  EXPECT_FALSE(same_class());
}

TEST(EcManager, MarkProvedSuppressesPair) {
  const Aig a = testutil::random_aig(5, 60, 3, 44);
  const PatternBank bank = PatternBank::random(5, 1, 4);
  EcManager ec;
  ec.build(a, simulate(a, bank));
  auto pairs = ec.candidate_pairs();
  ASSERT_FALSE(pairs.empty());
  const Var victim = pairs[0].node;
  ec.mark_proved(victim);
  for (const CandidatePair& p : ec.candidate_pairs())
    ASSERT_NE(p.node, victim);
}

TEST(EcManager, ConstantClassContainsConstLikeNodes) {
  Aig a(2);
  const Lit x = a.pi_lit(0);
  const Lit y = a.pi_lit(1);
  // Semantically-constant node strashing cannot fold:
  // (x & y) & (x & !y) == 0.
  const Lit g = a.add_and(a.add_and(x, y), a.add_and(x, aig::lit_not(y)));
  a.add_po(g);
  const PatternBank bank = PatternBank::random(2, 4, 5);
  EcManager ec;
  ec.build(a, simulate(a, bank));
  bool with_const = false;
  for (const auto& cls : ec.classes())
    if (std::count(cls.begin(), cls.end(), Var{0}) &&
        std::count(cls.begin(), cls.end(), aig::lit_var(g)))
      with_const = true;
  EXPECT_TRUE(with_const);
}

}  // namespace
}  // namespace simsweep::sim
