/// \file test_parallel.cpp
/// \brief Thread-pool correctness tests.
///
/// This suite carries the ctest `tsan` label: it is the primary target of
/// the SIMSWEEP_SANITIZE=thread build (README "Sanitizer &
/// static-analysis builds"). Under SIMSWEEP_CHECKED it additionally runs
/// the CheckedProtocol death tests, which deliberately violate the staged
/// executor's protocol and expect the shadow-tracking to abort.

#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/random.hpp"

namespace simsweep::parallel {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(0, 3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, NonzeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100, 1100, [&](std::size_t i) { sum.fetch_add(i); });
  std::uint64_t expect = 0;
  for (std::size_t i = 100; i < 1100; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, ChunkedVariantSeesContiguousBlocks) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_chunks(0, hits.size(), [&](std::size_t lo,
                                               std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(0, 1000, [&](std::size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), 1000u * 1001 / 2);
  }
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  // hardware_concurrency-based default may still create workers; force a
  // genuinely inline pool via a 1-thread machine emulation: concurrency is
  // at least 1 either way, and the call must still be correct.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  EXPECT_GE(pool.concurrency(), 1u);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  parallel_for(0, 256, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPool, LargeGrainWork) {
  ThreadPool pool(3);
  std::vector<std::uint64_t> out(64, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    std::uint64_t acc = 0;
    for (std::uint64_t k = 0; k < 10000; ++k) acc += (i + 1) * k % 97;
    out[i] = acc;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t acc = 0;
    for (std::uint64_t k = 0; k < 10000; ++k) acc += (i + 1) * k % 97;
    ASSERT_EQ(out[i], acc);
  }
}

TEST(ThreadPool, ConcurrentClientThreadsAreSerializedSafely) {
  // Regression test: the portfolio checker calls parallel_for on the
  // global pool from several client threads at once; jobs must not
  // corrupt each other's ranges (this found a real bug).
  ThreadPool pool(2);
  constexpr int kClients = 4;
  constexpr std::size_t kN = 20000;
  std::vector<std::vector<std::atomic<int>>> hits(kClients);
  for (auto& h : hits) {
    std::vector<std::atomic<int>> v(kN);
    h = std::move(v);
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round)
        pool.parallel_for(0, kN, [&, c](std::size_t i) {
          hits[c][i].fetch_add(1, std::memory_order_relaxed);
        });
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[c][i].load(), 20) << "client " << c << " index " << i;
}

TEST(StagePlan, StagesRunInOrderWithBarriers) {
  // Stage s+1 must observe ALL of stage s's writes: each stage checks the
  // previous stage's output for every index, so any barrier violation
  // trips an assertion.
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  constexpr int kStages = 6;
  std::vector<std::atomic<int>> cells(kN);
  std::atomic<int> violations{0};
  StagePlan plan;
  for (int s = 0; s < kStages; ++s) {
    plan.stage(0, kN, [&, s](std::size_t i) {
      if (cells[i].load(std::memory_order_relaxed) != s)
        violations.fetch_add(1, std::memory_order_relaxed);
      cells[i].store(s + 1, std::memory_order_relaxed);
    });
  }
  ASSERT_TRUE(pool.run_stages(plan));
  EXPECT_EQ(violations.load(), 0);
  for (const auto& c : cells) ASSERT_EQ(c.load(), kStages);
}

TEST(StagePlan, ReRunnableWithRboundState) {
  // A plan is built once and re-run per round with state rebound through
  // captured references — the exhaustive simulator's usage pattern.
  ThreadPool pool(2);
  std::size_t round = 0;
  std::vector<std::uint64_t> acc(4096, 0);
  StagePlan plan;
  plan.stage(0, acc.size(), [&](std::size_t i) { acc[i] += round; });
  std::uint64_t expect = 0;
  for (round = 1; round <= 5; ++round) {
    ASSERT_TRUE(pool.run_stages(plan));
    expect += round;
  }
  for (const auto& v : acc) ASSERT_EQ(v, expect);
}

TEST(StagePlan, EmptyAndSingleElementStages) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  StagePlan plan;
  plan.stage(7, 7, [&](std::size_t) { count.fetch_add(100); });  // empty
  plan.stage(3, 4, [&](std::size_t i) { count.fetch_add(static_cast<int>(i)); });
  plan.stage(0, 0, [&](std::size_t) { count.fetch_add(100); });  // empty
  plan.stage(0, 1, [&](std::size_t) { count.fetch_add(1); });
  ASSERT_TRUE(pool.run_stages(plan));
  EXPECT_EQ(count.load(), 4);

  StagePlan empty;
  EXPECT_TRUE(pool.run_stages(empty));
}

TEST(StagePlan, ChunkStagesSeeEveryIndexOnce) {
  ThreadPool pool(3);
  // Sizes straddling chunk boundaries: primes, powers of two +/- 1, and
  // sizes below/around 2*concurrency (the inline-path threshold).
  const std::size_t sizes[] = {1, 2, 3, 7, 8, 9, 63, 64, 65, 1021, 4096, 4099};
  for (const std::size_t n : sizes) {
    std::vector<std::atomic<int>> hits(n);
    StagePlan plan;
    plan.stage_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
      ASSERT_LT(lo, hi);
      ASSERT_LE(hi, n);
      for (std::size_t i = lo; i < hi; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_TRUE(pool.run_stages(plan));
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "size " << n << " index " << i;
  }
}

TEST(StagePlan, PresetCancelRunsNothing) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{true};
  std::atomic<int> count{0};
  StagePlan plan;
  plan.set_cancel(&cancel);
  plan.stage(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  plan.stage(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_FALSE(pool.run_stages(plan));
  EXPECT_EQ(count.load(), 0);
}

TEST(StagePlan, MidRunCancelSkipsLaterStages) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{false};
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  StagePlan plan;
  plan.set_cancel(&cancel);
  plan.stage(0, 64, [&](std::size_t) {
    first.fetch_add(1);
    cancel.store(true);  // fires during stage 0
  });
  plan.stage(0, 100000, [&](std::size_t) { second.fetch_add(1); });
  EXPECT_FALSE(pool.run_stages(plan));
  // Stage 1 must have been (almost entirely) skipped: at most the chunks
  // already claimed before the flag was observed may run, and the barrier
  // skip means none at all once stage 0's last chunk retires.
  EXPECT_EQ(second.load(), 0);
  EXPECT_GT(first.load(), 0);
}

TEST(StagePlan, ConcurrentClientsRunningPlans) {
  // Several client threads each repeatedly run their own multi-stage
  // plan on a shared pool: whole jobs must serialize without mixing.
  ThreadPool pool(2);
  constexpr int kClients = 4;
  constexpr std::size_t kN = 3000;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<int> data(kN, 0);
      StagePlan plan;
      plan.stage(0, kN, [&](std::size_t i) { data[i] += 1; });
      plan.stage(0, kN, [&](std::size_t i) { data[i] *= 2; });
      plan.stage(0, kN, [&](std::size_t i) { data[i] += 3; });
      for (int round = 0; round < 10; ++round) {
        std::fill(data.begin(), data.end(), 0);
        if (!pool.run_stages(plan)) failures.fetch_add(1);
        for (std::size_t i = 0; i < kN; ++i)
          if (data[i] != 5) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StagePlan, StressManyStagesManyRounds) {
  // Pipeline stress: alternating wide/narrow stages re-run many times,
  // checking a value that depends on every stage having run in order.
  ThreadPool pool(3);
  constexpr std::size_t kN = 2048;
  std::vector<std::uint64_t> data(kN, 0);
  std::atomic<std::uint64_t> narrow_sum{0};
  StagePlan plan;
  for (int rep = 0; rep < 4; ++rep) {
    plan.stage(0, kN, [&](std::size_t i) { data[i] += i; });
    plan.stage(0, 1, [&](std::size_t) {
      std::uint64_t s = 0;
      for (const auto& v : data) s += v;
      narrow_sum.store(s);
    });
  }
  for (int round = 1; round <= 8; ++round) {
    ASSERT_TRUE(pool.run_stages(plan));
    // After round r, data[i] == 4*r*i; the final narrow stage saw it all.
    const std::uint64_t n = kN;
    ASSERT_EQ(narrow_sum.load(), 4ull * round * (n * (n - 1) / 2));
  }
}

TEST(StagePlan, GlobalParallelStagesWrapper) {
  std::atomic<int> count{0};
  StagePlan plan;
  plan.stage(0, 512, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_TRUE(parallel_stages(plan));
  EXPECT_EQ(count.load(), 512);
}

TEST(ThreadPoolStress, MixedConcurrentSubmitters) {
  // TSan stress target: client threads concurrently submitting all three
  // job kinds (parallel_for, parallel_for_chunks, multi-stage plans) to
  // one pool. Any serialization bug — a job observing another job's
  // slots, a stale control word, a lost wakeup — shows up as a checksum
  // mismatch here (and as a race report under SIMSWEEP_SANITIZE=thread).
  ThreadPool pool(3);
  constexpr int kClients = 6;
  constexpr int kRounds = 8;
  constexpr std::size_t kN = 4096;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::uint64_t> data(kN, 0);
      for (int round = 0; round < kRounds; ++round) {
        std::fill(data.begin(), data.end(), 0);
        switch ((c + round) % 3) {
          case 0: {
            pool.parallel_for(0, kN, [&](std::size_t i) { data[i] = i + 1; });
            break;
          }
          case 1: {
            pool.parallel_for_chunks(0, kN,
                                     [&](std::size_t lo, std::size_t hi) {
                                       for (std::size_t i = lo; i < hi; ++i)
                                         data[i] = i + 1;
                                     });
            break;
          }
          default: {
            StagePlan plan;
            plan.stage(0, kN, [&](std::size_t i) { data[i] = i; });
            plan.stage(0, kN, [&](std::size_t i) { data[i] += 1; });
            if (!pool.run_stages(plan)) failures.fetch_add(1);
            break;
          }
        }
        for (std::size_t i = 0; i < kN; ++i)
          if (data[i] != i + 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RngThreading, ForkedStreamsDeterministicAcrossSchedules) {
  // Regression test for the shared-RNG audit (src/common/random.hpp):
  // workers must not share one Rng. The sanctioned pattern — fork one
  // substream per flat work index — must give every index the same
  // values no matter which worker runs it or in what order.
  constexpr std::size_t kStreams = 64;
  constexpr std::size_t kDraws = 128;
  const Rng parent(0xF0F0F0F0ULL);

  std::vector<std::uint64_t> serial(kStreams * kDraws);
  for (std::size_t s = 0; s < kStreams; ++s) {
    Rng rng = parent.fork(s);
    for (std::size_t d = 0; d < kDraws; ++d)
      serial[s * kDraws + d] = rng.next64();
  }

  ThreadPool pool(3);
  for (int rep = 0; rep < 4; ++rep) {  // vary scheduling a few times
    std::vector<std::uint64_t> par(kStreams * kDraws, 0);
    pool.parallel_for(0, kStreams, [&](std::size_t s) {
      Rng rng = parent.fork(s);  // worker-owned instance, no sharing
      for (std::size_t d = 0; d < kDraws; ++d)
        par[s * kDraws + d] = rng.next64();
    });
    ASSERT_EQ(par, serial) << "rep " << rep;
  }
}

TEST(RngThreading, ForkIsConstAndOrderIndependent) {
  const Rng parent(42);
  Rng a = parent.fork(7);
  Rng b = parent.fork(3);
  Rng a2 = parent.fork(7);  // same stream id after other forks
  EXPECT_EQ(a.next64(), a2.next64());
  EXPECT_NE(a.next64(), b.next64());  // distinct streams decorrelated
  // Forking never advances the parent: a fresh copy agrees with it.
  Rng p1 = parent;
  Rng p2(42);
  EXPECT_EQ(p1.next64(), p2.next64());
}

#ifdef SIMSWEEP_CHECKED

TEST(CheckedProtocol, CleanRunDoesNotAbort) {
  // The shadow-tracking must be invisible for a correct execution: every
  // kind of job runs to completion under SIMSWEEP_CHECKED.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 10000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10000ull * 9999 / 2);
  StagePlan plan;
  std::atomic<int> count{0};
  plan.stage(0, 5000, [&](std::size_t) { count.fetch_add(1); });
  plan.stage(0, 5000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_TRUE(pool.run_stages(plan));
  EXPECT_EQ(count.load(), 10000);
}

TEST(CheckedProtocol, DoubleClaimAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(3);
        checked_inject_fault_for_test(CheckedFault::kDoubleClaim);
        std::atomic<std::uint64_t> sum{0};
        pool.parallel_for(0, 100000,
                          [&](std::size_t i) { sum.fetch_add(i); });
      },
      "SIMSWEEP_CHECKED violation");
}

TEST(CheckedProtocol, DoubleRetireAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(3);
        checked_inject_fault_for_test(CheckedFault::kDoubleRetire);
        std::atomic<std::uint64_t> sum{0};
        pool.parallel_for(0, 100000,
                          [&](std::size_t i) { sum.fetch_add(i); });
      },
      "SIMSWEEP_CHECKED violation");
}

#endif  // SIMSWEEP_CHECKED

}  // namespace
}  // namespace simsweep::parallel
