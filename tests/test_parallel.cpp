/// \file test_parallel.cpp
/// \brief Thread-pool correctness tests.

#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace simsweep::parallel {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(0, 3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, NonzeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100, 1100, [&](std::size_t i) { sum.fetch_add(i); });
  std::uint64_t expect = 0;
  for (std::size_t i = 100; i < 1100; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, ChunkedVariantSeesContiguousBlocks) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_chunks(0, hits.size(), [&](std::size_t lo,
                                               std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(0, 1000, [&](std::size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), 1000u * 1001 / 2);
  }
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  // hardware_concurrency-based default may still create workers; force a
  // genuinely inline pool via a 1-thread machine emulation: concurrency is
  // at least 1 either way, and the call must still be correct.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  EXPECT_GE(pool.concurrency(), 1u);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  parallel_for(0, 256, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPool, LargeGrainWork) {
  ThreadPool pool(3);
  std::vector<std::uint64_t> out(64, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    std::uint64_t acc = 0;
    for (std::uint64_t k = 0; k < 10000; ++k) acc += (i + 1) * k % 97;
    out[i] = acc;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t acc = 0;
    for (std::uint64_t k = 0; k < 10000; ++k) acc += (i + 1) * k % 97;
    ASSERT_EQ(out[i], acc);
  }
}

TEST(ThreadPool, ConcurrentClientThreadsAreSerializedSafely) {
  // Regression test: the portfolio checker calls parallel_for on the
  // global pool from several client threads at once; jobs must not
  // corrupt each other's ranges (this found a real bug).
  ThreadPool pool(2);
  constexpr int kClients = 4;
  constexpr std::size_t kN = 20000;
  std::vector<std::vector<std::atomic<int>>> hits(kClients);
  for (auto& h : hits) {
    std::vector<std::atomic<int>> v(kN);
    h = std::move(v);
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round)
        pool.parallel_for(0, kN, [&, c](std::size_t i) {
          hits[c][i].fetch_add(1, std::memory_order_relaxed);
        });
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[c][i].load(), 20) << "client " << c << " index " << i;
}

}  // namespace
}  // namespace simsweep::parallel
