/// \file test_integration.cpp
/// \brief End-to-end tests: the full benchmark-suite pipeline (generate ->
/// optimize -> miter -> engine + SAT fallback), positive and negative.

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "aig/aig_io.hpp"
#include "common/random.hpp"
#include "gen/suite.hpp"
#include "gen/transforms.hpp"
#include "portfolio/portfolio.hpp"
#include "test_util.hpp"

#include <sstream>

namespace simsweep {
namespace {

using aig::Aig;

portfolio::CombinedParams integration_params() {
  portfolio::CombinedParams p;
  p.engine.k_P = 20;
  p.engine.k_p = 12;
  p.engine.k_g = 12;
  p.engine.k_l = 6;
  p.engine.memory_words = 1 << 18;
  p.sweeper.conflict_limit = 100000;
  return p;
}

class SuiteFamily : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteFamily, OriginalVsOptimizedProvedEquivalent) {
  gen::SuiteParams sp;
  sp.doublings = 0;  // base size is plenty for integration
  const gen::BenchCase c = gen::make_case(GetParam(), sp);
  const portfolio::CombinedResult r =
      portfolio::combined_check(c.original, c.optimized,
                                integration_params());
  EXPECT_EQ(r.verdict, Verdict::kEquivalent) << c.name;
}

TEST_P(SuiteFamily, InjectedBugIsCaught) {
  gen::SuiteParams sp;
  sp.doublings = 0;
  const gen::BenchCase c = gen::make_case(GetParam(), sp);
  const Aig broken = testutil::mutate(c.optimized, 42);
  const portfolio::CombinedResult r =
      portfolio::combined_check(c.original, broken, integration_params());
  // The mutation may or may not change the function; whatever the engine
  // says must match a direct sampled comparison.
  if (r.verdict == Verdict::kNotEquivalent) {
    if (r.cex) {
      EXPECT_NE(c.original.evaluate(*r.cex), broken.evaluate(*r.cex));
    }
  } else {
    EXPECT_EQ(r.verdict, Verdict::kEquivalent);
    // Sampled agreement check.
    Rng rng(9);
    for (int t = 0; t < 32; ++t) {
      std::vector<bool> pis(c.original.num_pis());
      for (auto&& b : pis) b = rng.flip();
      ASSERT_EQ(c.original.evaluate(pis), broken.evaluate(pis));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SuiteFamily,
    ::testing::Values("multiplier", "square", "sqrt", "voter", "sin",
                      "log2", "hyp", "ac97_ctrl", "vga_lcd"));

TEST(Integration, DoubledCaseStillProves) {
  gen::SuiteParams sp;
  sp.doublings = 2;
  const gen::BenchCase c = gen::make_case("voter", sp);
  const portfolio::CombinedResult r =
      portfolio::combined_check(c.original, c.optimized,
                                integration_params());
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

TEST(Integration, AigerRoundTripThroughEngine) {
  // Export/import the pair and verify through the full flow, as a user
  // working with AIGER files would.
  gen::SuiteParams sp;
  sp.doublings = 0;
  const gen::BenchCase c = gen::make_case("multiplier", sp);
  std::stringstream sa, sb;
  aig::write_aiger(c.original, sa);
  aig::write_aiger(c.optimized, sb);
  const Aig ra = aig::read_aiger(sa);
  const Aig rb = aig::read_aiger(sb);
  const portfolio::CombinedResult r =
      portfolio::combined_check(ra, rb, integration_params());
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

TEST(Integration, ReducedMiterHandoffMatchesPaperFlow) {
  // Reproduce the paper's GPU->ABC handoff explicitly: run the engine
  // with snapshots, then SAT-sweep the final reduced miter.
  gen::SuiteParams sp;
  sp.doublings = 1;
  const gen::BenchCase c = gen::make_case("sqrt", sp);
  engine::EngineParams ep = integration_params().engine;
  ep.capture_snapshots = true;
  const engine::SimCecEngine eng(ep);
  const engine::EngineResult er =
      eng.check(c.original, c.optimized);
  if (er.verdict == Verdict::kUndecided) {
    const sweep::SatSweeper sweeper;
    const sweep::SweepResult sr = sweeper.check_miter(er.reduced);
    EXPECT_EQ(sr.verdict, Verdict::kEquivalent);
  } else {
    EXPECT_EQ(er.verdict, Verdict::kEquivalent);
  }
}

}  // namespace
}  // namespace simsweep
