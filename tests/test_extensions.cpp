/// \file test_extensions.cpp
/// \brief Tests for the paper §V (Discussion) extensions: EC transfer to
/// the SAT sweeper, distance-1 CEX simulation, adaptive L-phase passes,
/// and the graduated global-checking escalation.

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "engine/engine.hpp"
#include "gen/arith.hpp"
#include "opt/resyn.hpp"
#include "portfolio/portfolio.hpp"
#include "sweep/sat_sweeper.hpp"
#include "test_util.hpp"

namespace simsweep {
namespace {

using aig::Aig;

engine::EngineParams small_params() {
  engine::EngineParams p;
  p.k_P = 16;
  p.k_p = 10;
  p.k_g = 10;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  return p;
}

TEST(EcTransfer, SweeperAcceptsInitialBank) {
  const Aig a = testutil::random_aig(8, 120, 5, 400);
  const Aig b = opt::resyn_light(a);
  const Aig m = aig::make_miter(a, b);
  if (aig::miter_proved(m)) GTEST_SKIP() << "strash solved it";

  const sim::PatternBank bank =
      sim::PatternBank::random(m.num_pis(), 8, 41);
  sweep::SweeperParams p;
  p.initial_bank = &bank;
  const sweep::SweepResult r = sweep::SatSweeper(p).check_miter(m);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

TEST(EcTransfer, EngineBankIsExposedAndUsable) {
  const Aig a = testutil::random_aig(10, 200, 6, 401);
  const Aig b = opt::resyn_light(a);
  engine::EngineParams p = small_params();
  p.k_P = 4;  // cripple so the engine leaves a residue with its bank
  p.k_p = 3;
  p.k_g = 3;
  p.k_l = 3;
  p.escalate_global = false;
  p.max_local_phases = 1;
  const engine::EngineResult er = engine::SimCecEngine(p).check(a, b);
  ASSERT_TRUE(er.bank.has_value());
  EXPECT_EQ(er.bank->num_pis(), a.num_pis());
  if (er.verdict == Verdict::kUndecided) {
    sweep::SweeperParams sp;
    sp.initial_bank = &*er.bank;
    const sweep::SweepResult sr =
        sweep::SatSweeper(sp).check_miter(er.reduced);
    EXPECT_EQ(sr.verdict, Verdict::kEquivalent);
  }
}

TEST(EcTransfer, CombinedFlowStillSoundWithAndWithoutTransfer) {
  const Aig a = testutil::random_aig(10, 220, 6, 402);
  const Aig b = testutil::mutate(a, 403);
  const bool equivalent = aig::brute_force_equivalent(a, b);
  for (bool transfer : {false, true}) {
    portfolio::CombinedParams cp;
    cp.engine = small_params();
    cp.transfer_ec = transfer;
    const portfolio::CombinedResult r = portfolio::combined_check(a, b, cp);
    ASSERT_NE(r.verdict, Verdict::kUndecided);
    EXPECT_EQ(r.verdict == Verdict::kEquivalent, equivalent)
        << "transfer=" << transfer;
  }
}

TEST(Distance1Cex, SoundAndAgreesWithBaseline) {
  for (std::uint64_t seed : {410u, 411u, 412u}) {
    const Aig a = testutil::random_aig(8, 120, 5, seed);
    const Aig b = testutil::mutate(a, seed + 7);
    const bool equivalent = aig::brute_force_equivalent(a, b);
    engine::EngineParams p = small_params();
    p.distance1_cex = true;
    const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
    if (r.verdict != Verdict::kUndecided) {
      EXPECT_EQ(r.verdict == Verdict::kEquivalent, equivalent);
    }
  }
}

TEST(AdaptivePasses, SoundOnEquivalentPairs) {
  const Aig a = testutil::random_aig(9, 160, 5, 420);
  const Aig b = opt::resyn_light(a);
  engine::EngineParams p = small_params();
  p.adaptive_passes = true;
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
}

TEST(Escalation, ProvesPairsBeyondInitialKg) {
  // Multiplier architectures: supports up to 12 exceed the tiny initial
  // k_g; escalation to k_P must still finish the proof without SAT.
  const Aig a = gen::array_multiplier(6);
  const Aig b = gen::wallace_multiplier(6);
  engine::EngineParams p = small_params();
  p.enable_po_phase = false;  // force the G/L machinery to do the work
  p.k_g = 4;
  p.k_P = 12;
  p.k_g_step = 4;
  p.escalate_global = true;
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

TEST(Escalation, DisabledFlowMatchesPaperFigure5) {
  // With escalation off, the engine must still be sound, merely weaker.
  const Aig a = gen::array_multiplier(6);
  const Aig b = gen::wallace_multiplier(6);
  engine::EngineParams p = small_params();
  p.enable_po_phase = false;
  p.k_g = 4;
  p.escalate_global = false;
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_NE(r.verdict, Verdict::kNotEquivalent);
}

TEST(Escalation, NotEquivalentStillDetected) {
  const Aig a = gen::array_multiplier(5);
  Aig b = gen::wallace_multiplier(5);
  b.set_po(2, b.add_and(b.po(2), b.pi_lit(0)));
  engine::EngineParams p = small_params();
  p.k_g = 4;
  p.escalate_global = true;
  const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
  EXPECT_EQ(r.verdict, Verdict::kNotEquivalent);
}

}  // namespace
}  // namespace simsweep
