/// \file test_cnf_sweep.cpp
/// \brief Tests for the Tseitin encoder and the SAT-sweeping baseline.

#include <gtest/gtest.h>

#include <atomic>

#include "aig/aig_analysis.hpp"
#include "cnf/tseitin.hpp"
#include "gen/arith.hpp"
#include "opt/refactor.hpp"
#include "opt/resyn.hpp"
#include "sweep/pair_solver.hpp"
#include "sweep/sat_sweeper.hpp"
#include "test_util.hpp"

namespace simsweep {
namespace {

using aig::Aig;
using aig::Lit;

TEST(Tseitin, EncodesAndSemantics) {
  Aig a(2);
  const Lit g = a.add_and(a.pi_lit(0), aig::lit_not(a.pi_lit(1)));
  sat::Solver solver;
  cnf::TseitinEncoder enc(a, solver);
  const sat::Lit sg = enc.encode(g);
  // g & pi1 is UNSAT (g requires !pi1).
  const sat::Lit p1 = sat::mk_lit(enc.sat_var(2));
  EXPECT_EQ(solver.solve({sg, p1}), sat::Solver::Result::kUnsat);
  // g alone is SAT with pi0=1, pi1=0.
  ASSERT_EQ(solver.solve({sg}), sat::Solver::Result::kSat);
  EXPECT_EQ(solver.model_value(enc.sat_var(1)), sat::LBool::kTrue);
  EXPECT_EQ(solver.model_value(enc.sat_var(2)), sat::LBool::kFalse);
}

TEST(Tseitin, LazyEncodingOnlyTouchesCone) {
  Aig a(4);
  const Lit g1 = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g2 = a.add_and(a.pi_lit(2), a.pi_lit(3));
  sat::Solver solver;
  cnf::TseitinEncoder enc(a, solver);
  enc.encode(g1);
  EXPECT_GE(enc.sat_var(aig::lit_var(g1)), 0);
  EXPECT_LT(enc.sat_var(aig::lit_var(g2)), 0);  // untouched cone
  EXPECT_LT(enc.sat_var(3), 0);                 // PI of g2 untouched
}

TEST(Tseitin, ConstantNode) {
  Aig a(1);
  sat::Solver solver;
  cnf::TseitinEncoder enc(a, solver);
  const sat::Lit c0 = enc.encode(aig::kLitFalse);
  EXPECT_EQ(solver.solve({c0}), sat::Solver::Result::kUnsat);
  const sat::Lit c1 = enc.encode(aig::kLitTrue);
  EXPECT_EQ(solver.solve({c1}), sat::Solver::Result::kSat);
}

class TseitinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TseitinProperty, MiterSatIffInequivalent) {
  const Aig a = testutil::random_aig(6, 50, 3, GetParam());
  const Aig b = testutil::mutate(a, GetParam() + 500);
  const Aig m = aig::make_miter(a, b);
  sat::Solver solver;
  cnf::TseitinEncoder enc(m, solver);
  bool any_sat = false;
  for (Lit po : m.pos()) {
    if (solver.solve({enc.encode(po)}) == sat::Solver::Result::kSat)
      any_sat = true;
  }
  EXPECT_EQ(any_sat, !aig::brute_force_equivalent(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseitinProperty,
                         ::testing::Values(90, 91, 92, 93, 94));

TEST(SatSweeper, ProvesSelfEquivalenceViaOptimizedCopy) {
  // a vs a is structurally folded; use a random AIG vs its mutated-back
  // (double mutation on the same node) self to still exercise SAT.
  const Aig a = testutil::random_aig(6, 60, 4, 95);
  sweep::SatSweeper sweeper;
  const sweep::SweepResult r = sweeper.check(a, a);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
}

TEST(SatSweeper, DisprovesWithValidCex) {
  const Aig a = testutil::random_aig(6, 60, 4, 99);
  const Aig b = testutil::mutate(a, 100);
  if (aig::brute_force_equivalent(a, b)) GTEST_SKIP() << "mutation no-op";
  sweep::SatSweeper sweeper;
  const sweep::SweepResult r = sweeper.check(a, b);
  ASSERT_EQ(r.verdict, Verdict::kNotEquivalent);
  ASSERT_TRUE(r.cex.has_value());
  EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
}

class SatSweeperOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatSweeperOracle, AgreesWithBruteForce) {
  const Aig a = testutil::random_aig(7, 80, 5, GetParam());
  const Aig b = testutil::mutate(a, GetParam() * 31 + 7);
  sweep::SatSweeper sweeper;
  const sweep::SweepResult r = sweeper.check(a, b);
  ASSERT_NE(r.verdict, Verdict::kUndecided);
  EXPECT_EQ(r.verdict == Verdict::kEquivalent,
            aig::brute_force_equivalent(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatSweeperOracle,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(SatSweeper, SweepingMergesInternalEquivalences) {
  // Build a miter with many internal equivalences: x vs shifted copy of
  // the same logic. The sweeper must prove it and report merged pairs.
  Aig base(4);
  const Lit f = base.add_or(base.add_and(base.pi_lit(0), base.pi_lit(1)),
                            base.add_and(base.pi_lit(2), base.pi_lit(3)));
  base.add_po(f);
  // Second implementation: f = !( !(ab) & !(cd) ) built through XOR-free
  // restructuring that strash cannot fold onto the first.
  Aig other(4);
  const Lit ab = other.add_and(other.pi_lit(0), other.pi_lit(1));
  const Lit cd = other.add_and(other.pi_lit(2), other.pi_lit(3));
  const Lit g = other.add_or(
      other.add_or(other.add_and(ab, aig::lit_not(cd)),
                   other.add_and(aig::lit_not(ab), cd)),
      other.add_and(ab, cd));
  other.add_po(g);
  sweep::SatSweeper sweeper;
  const sweep::SweepResult r = sweeper.check(base, other);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GT(r.stats.sat_calls, 0u);
}

TEST(SatSweeper, TimeLimitYieldsUndecided) {
  // A miter that does not strash to constant zero (restructured copy).
  const Aig a = testutil::random_aig(10, 300, 6, 121);
  const Aig b = opt::refactor(a);
  const Aig m = aig::make_miter(a, b);
  if (aig::miter_proved(m)) GTEST_SKIP() << "refactor was the identity";
  sweep::SweeperParams p;
  p.time_limit = 1e-9;  // expires immediately
  const sweep::SweepResult r = sweep::SatSweeper(p).check_miter(m);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

TEST(SatSweeper, CancellationYieldsUndecided) {
  const Aig a = testutil::random_aig(10, 300, 6, 121);
  const Aig m = aig::make_miter(a, opt::refactor(a));
  if (aig::miter_proved(m)) GTEST_SKIP() << "refactor was the identity";
  std::atomic<bool> cancel{true};
  sweep::SweeperParams p;
  p.cancel = &cancel;
  const sweep::SweepResult r = sweep::SatSweeper(p).check_miter(m);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

TEST(SatSweeper, ConflictBudgetCoversBothDirectionalSolves) {
  // Regression: check_pair() issues two directional solves (a&!b, !a&b).
  // Each used to receive the full conflict_limit, so one candidate pair
  // could spend up to twice its budget; now the second call gets only
  // what the first left over. Metered on a pair of hard const-false POs
  // of a multiplier miter, where BOTH directions need real conflicts.
  const Aig m = aig::make_miter(gen::array_multiplier(4),
                                gen::wallace_multiplier(4));
  ASSERT_GE(m.num_pos(), 8u);
  const Lit p = m.pos()[6];
  const Lit q = m.pos()[7];
  sweep::PairSolver unbounded(m);
  ASSERT_EQ(unbounded.check_pair(p, q, -1),
            sweep::PairSolver::Outcome::kEqual);
  const std::uint64_t total = unbounded.conflicts();
  if (total < 8) GTEST_SKIP() << "pair too easy to meter the budget";
  // A budget that the first direction fits in but the pair as a whole
  // exceeds. Pre-fix the pair would spend ~total (> budget + 1).
  const std::int64_t budget = static_cast<std::int64_t>(total) * 3 / 4;
  sweep::PairSolver bounded(m);
  bounded.check_pair(p, q, budget);
  // +1: a direction entered with 0 remaining still detects its first
  // conflict before giving up.
  EXPECT_LE(bounded.conflicts(), static_cast<std::uint64_t>(budget) + 1);
}

TEST(SatSweeper, StructurallySolvedMitersShortCircuit) {
  Aig zero(2);
  zero.add_po(aig::kLitFalse);
  sweep::SatSweeper sweeper;
  EXPECT_EQ(sweeper.check_miter(zero).verdict, Verdict::kEquivalent);
  Aig one(2);
  one.add_po(aig::kLitTrue);
  EXPECT_EQ(sweeper.check_miter(one).verdict, Verdict::kNotEquivalent);
}

}  // namespace
}  // namespace simsweep
