/// \file test_tt.cpp
/// \brief Unit and property tests for the truth-table substrate.

#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace simsweep::tt {
namespace {

TEST(TruthTable, SizesAndMasks) {
  EXPECT_EQ(num_words(0), 1u);
  EXPECT_EQ(num_words(6), 1u);
  EXPECT_EQ(num_words(7), 2u);
  EXPECT_EQ(num_words(10), 16u);
  EXPECT_EQ(num_bits(3), 8u);
  EXPECT_EQ(word_mask(0), 0x1u);
  EXPECT_EQ(word_mask(2), 0xFu);
  EXPECT_EQ(word_mask(5), 0xFFFFFFFFu);
  EXPECT_EQ(word_mask(6), ~Word{0});
  EXPECT_EQ(word_mask(12), ~Word{0});
}

TEST(TruthTable, PaperProjectionExamples) {
  // Paper §II-A: for k = 3 the projection tables of x0, x1, x2 are
  // 10101010, 11001100, 11110000.
  EXPECT_EQ(TruthTable::projection(0, 3).to_binary(), "10101010");
  EXPECT_EQ(TruthTable::projection(1, 3).to_binary(), "11001100");
  EXPECT_EQ(TruthTable::projection(2, 3).to_binary(), "11110000");
}

TEST(TruthTable, ProjectionWordMatchesMaterializedTables) {
  for (unsigned k : {7u, 8u, 10u}) {
    for (unsigned v = 0; v < k; ++v) {
      const TruthTable t = TruthTable::projection(v, k);
      for (std::size_t w = 0; w < t.words().size(); ++w)
        ASSERT_EQ(t.words()[w], projection_word(v, w))
            << "k=" << k << " v=" << v << " w=" << w;
    }
  }
}

TEST(TruthTable, ProjectionBitSemantics) {
  // Bit i of projection v must equal bit v of the index i.
  for (unsigned k : {3u, 6u, 8u}) {
    for (unsigned v = 0; v < k; ++v) {
      const TruthTable t = TruthTable::projection(v, k);
      for (std::uint64_t i = 0; i < num_bits(k); ++i)
        ASSERT_EQ(t.get_bit(i), static_cast<bool>((i >> v) & 1));
    }
  }
}

TEST(TruthTable, ConstantsAndCounting) {
  EXPECT_TRUE(TruthTable::zeros(4).is_const0());
  EXPECT_TRUE(TruthTable::ones(4).is_const1());
  EXPECT_FALSE(TruthTable::ones(4).is_const0());
  EXPECT_EQ(TruthTable::ones(4).count_ones(), 16u);
  EXPECT_EQ(TruthTable::zeros(9).count_ones(), 0u);
  EXPECT_TRUE(TruthTable::ones(9).is_const1());
  EXPECT_EQ(TruthTable::projection(2, 5).count_ones(), 16u);
}

TEST(TruthTable, BitwiseOps) {
  const TruthTable a = TruthTable::projection(0, 3);
  const TruthTable b = TruthTable::projection(1, 3);
  EXPECT_EQ((a & b).to_binary(), "10001000");
  EXPECT_EQ((a | b).to_binary(), "11101110");
  EXPECT_EQ((a ^ b).to_binary(), "01100110");
  EXPECT_EQ((~a).to_binary(), "01010101");
  // Complement respects the mask (no garbage above 2^k).
  EXPECT_EQ((~TruthTable::zeros(2)).words()[0], 0xFu);
}

TEST(TruthTable, DeMorganProperty) {
  Rng rng(42);
  for (unsigned k : {4u, 7u, 9u}) {
    for (int trial = 0; trial < 10; ++trial) {
      const TruthTable a = TruthTable::random(k, rng);
      const TruthTable b = TruthTable::random(k, rng);
      EXPECT_EQ(~(a & b), (~a | ~b));
      EXPECT_EQ(~(a | b), (~a & ~b));
      EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
    }
  }
}

TEST(TruthTable, Cofactors) {
  Rng rng(7);
  for (unsigned k : {3u, 6u, 8u}) {
    for (int trial = 0; trial < 8; ++trial) {
      const TruthTable f = TruthTable::random(k, rng);
      for (unsigned v = 0; v < k; ++v) {
        const TruthTable f0 = f.cofactor0(v);
        const TruthTable f1 = f.cofactor1(v);
        for (std::uint64_t i = 0; i < num_bits(k); ++i) {
          const std::uint64_t i0 = i & ~(std::uint64_t{1} << v);
          const std::uint64_t i1 = i | (std::uint64_t{1} << v);
          ASSERT_EQ(f0.get_bit(i), f.get_bit(i0));
          ASSERT_EQ(f1.get_bit(i), f.get_bit(i1));
        }
        // Shannon expansion: f = (!v & f0) | (v & f1).
        const TruthTable proj = TruthTable::projection(v, k);
        EXPECT_EQ(f, (~proj & f0) | (proj & f1));
      }
    }
  }
}

TEST(TruthTable, DontCareDetection) {
  // f = x0 & x1 over 4 vars: depends on 0,1 only.
  const TruthTable f =
      TruthTable::projection(0, 4) & TruthTable::projection(1, 4);
  EXPECT_FALSE(f.is_dont_care(0));
  EXPECT_FALSE(f.is_dont_care(1));
  EXPECT_TRUE(f.is_dont_care(2));
  EXPECT_TRUE(f.is_dont_care(3));
  // Wide case: var 7 of an 8-var function.
  const TruthTable g =
      TruthTable::projection(6, 8) ^ TruthTable::projection(2, 8);
  EXPECT_TRUE(g.is_dont_care(7));
  EXPECT_FALSE(g.is_dont_care(6));
  EXPECT_FALSE(g.is_dont_care(2));
}

TEST(TruthTable, ExtendPreservesFunction) {
  Rng rng(11);
  for (unsigned k : {2u, 5u, 7u}) {
    const TruthTable f = TruthTable::random(k, rng);
    for (unsigned k2 : {k + 1, k + 3}) {
      const TruthTable g = f.extend(k2);
      EXPECT_EQ(g.num_vars(), k2);
      for (std::uint64_t i = 0; i < num_bits(k2); ++i)
        ASSERT_EQ(g.get_bit(i), f.get_bit(i & (num_bits(k) - 1)));
      for (unsigned v = k; v < k2; ++v) EXPECT_TRUE(g.is_dont_care(v));
    }
  }
}

TEST(TruthTable, HexAndBinary) {
  const TruthTable f = TruthTable::projection(1, 3);
  EXPECT_EQ(f.to_hex(), "cc");
  EXPECT_EQ(TruthTable::from_bits(0b0010, 2).to_binary(), "0010");
  EXPECT_EQ(TruthTable::from_bits(0b0010, 2).to_hex(), "2");
  EXPECT_EQ(TruthTable::ones(6).to_hex(), "ffffffffffffffff");
}

TEST(TruthTable, PaperFunctionExample) {
  // Paper §III-B1: xy' + xy'z has truth table 00100010 under (x,y,z) and
  // the equivalent xy' has table 0010 under (x,y). Variable order in our
  // tables: projection index 0 is the LSB variable, so map x->v0, y->v1,
  // z->v2.
  const TruthTable x = TruthTable::projection(0, 3);
  const TruthTable y = TruthTable::projection(1, 3);
  const TruthTable z = TruthTable::projection(2, 3);
  const TruthTable f = (x & ~y) | (x & ~y & z);
  EXPECT_EQ(f.to_binary(), "00100010");
  const TruthTable x2 = TruthTable::projection(0, 2);
  const TruthTable y2 = TruthTable::projection(1, 2);
  EXPECT_EQ((x2 & ~y2).to_binary(), "0010");
  // And the reduced function extended back to 3 vars equals f.
  EXPECT_EQ((x2 & ~y2).extend(3), f);
}

TEST(TruthTable, SetBitAndHashStability) {
  TruthTable f(7);
  f.set_bit(100, true);
  EXPECT_TRUE(f.get_bit(100));
  const std::uint64_t h1 = f.hash();
  f.set_bit(100, false);
  EXPECT_FALSE(f.get_bit(100));
  EXPECT_NE(h1, f.hash());
  EXPECT_EQ(f, TruthTable::zeros(7));
}

}  // namespace
}  // namespace simsweep::tt
