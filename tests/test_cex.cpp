/// \file test_cex.cpp
/// \brief Tests for ternary simulation and counter-example minimization.

#include "aig/cex.hpp"

#include <gtest/gtest.h>

#include "aig/miter.hpp"
#include "gen/arith.hpp"
#include "test_util.hpp"

namespace simsweep::aig {
namespace {

TEST(Ternary, AndSemantics) {
  Aig a(2);
  const Lit g = a.add_and(a.pi_lit(0), a.pi_lit(1));
  a.add_po(g);
  auto val = [&](Ternary x, Ternary y) {
    return ternary_value(ternary_simulate(a, {x, y}), g);
  };
  EXPECT_EQ(val(Ternary::k1, Ternary::k1), Ternary::k1);
  EXPECT_EQ(val(Ternary::k0, Ternary::kX), Ternary::k0);  // 0 dominates X
  EXPECT_EQ(val(Ternary::k1, Ternary::kX), Ternary::kX);
  EXPECT_EQ(val(Ternary::kX, Ternary::kX), Ternary::kX);
}

TEST(Ternary, ComplementedEdges) {
  Aig a(1);
  const Lit g = a.add_and(aig::lit_not(a.pi_lit(0)), aig::kLitTrue);
  a.add_po(g);
  EXPECT_EQ(ternary_value(ternary_simulate(a, {Ternary::k0}), a.po(0)),
            Ternary::k1);
  EXPECT_EQ(ternary_value(ternary_simulate(a, {Ternary::kX}), a.po(0)),
            Ternary::kX);
}

TEST(Ternary, AgreesWithBooleanSimulationOnFullAssignments) {
  const Aig a = testutil::random_aig(7, 80, 4, 700);
  for (unsigned p = 0; p < 128; p += 11) {
    std::vector<bool> pis(7);
    std::vector<Ternary> tpis(7);
    for (unsigned i = 0; i < 7; ++i) {
      pis[i] = (p >> i) & 1;
      tpis[i] = pis[i] ? Ternary::k1 : Ternary::k0;
    }
    const auto tv = ternary_simulate(a, tpis);
    const auto bv = a.evaluate(pis);
    for (std::size_t o = 0; o < a.num_pos(); ++o)
      ASSERT_EQ(ternary_value(tv, a.po(o)) == Ternary::k1, bv[o]);
  }
}

TEST(MinimizeCex, DropsIrrelevantInputs) {
  // Miter failing PO = x2 & !x5 over 8 PIs: only two care bits.
  Aig m(8);
  m.add_po(m.add_and(m.pi_lit(2), aig::lit_not(m.pi_lit(5))));
  std::vector<bool> cex(8, true);
  cex[5] = false;
  const MinimizedCex r = minimize_cex(m, cex, 0);
  EXPECT_EQ(r.num_care, 2u);
  EXPECT_TRUE(r.care[2]);
  EXPECT_TRUE(r.care[5]);
  EXPECT_FALSE(r.care[0]);
}

TEST(MinimizeCex, MinimizedCubeStillFails) {
  const Aig a = gen::ripple_adder(6);
  Aig b = gen::ripple_adder(6);
  b.set_po(3, b.add_and(b.po(3), b.pi_lit(0)));
  const Aig m = make_miter(a, b);
  // Find some failing assignment by scanning.
  std::vector<bool> cex(m.num_pis());
  int po = -1;
  for (unsigned p = 0; p < 4096 && po < 0; ++p) {
    for (unsigned i = 0; i < m.num_pis(); ++i) cex[i] = (p >> i) & 1;
    po = find_failing_po(m, cex);
  }
  ASSERT_GE(po, 0);
  const MinimizedCex r = minimize_cex(m, cex, static_cast<std::size_t>(po));
  EXPECT_LT(r.num_care, m.num_pis());
  // Every completion of the cube must fail: check all completions of the
  // dropped bits (few enough here).
  std::vector<unsigned> free_bits;
  for (unsigned i = 0; i < m.num_pis(); ++i)
    if (!r.care[i]) free_bits.push_back(i);
  ASSERT_LE(free_bits.size(), 12u);
  for (std::uint64_t mask = 0; mask < (1ull << free_bits.size()); ++mask) {
    std::vector<bool> full = r.values;
    for (std::size_t j = 0; j < free_bits.size(); ++j)
      full[free_bits[j]] = (mask >> j) & 1;
    ASSERT_TRUE(m.evaluate(full)[static_cast<std::size_t>(po)]);
  }
}

TEST(MinimizeCex, RejectsNonFailingAssignment) {
  Aig m(2);
  m.add_po(m.add_and(m.pi_lit(0), m.pi_lit(1)));
  EXPECT_THROW(minimize_cex(m, {false, false}, 0), std::invalid_argument);
}

TEST(FindFailingPo, Basics) {
  Aig m(2);
  m.add_po(aig::kLitFalse);
  m.add_po(m.pi_lit(1));
  EXPECT_EQ(find_failing_po(m, {true, false}), -1);
  EXPECT_EQ(find_failing_po(m, {false, true}), 1);
}

}  // namespace
}  // namespace simsweep::aig
