/// \file test_exhaustive.cpp
/// \brief Tests for the parallel exhaustive simulator (paper Alg. 1).

#include "exhaustive/exhaustive_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>

#include "aig/aig_analysis.hpp"
#include "test_util.hpp"
#include "window/window_merge.hpp"

namespace simsweep::exhaustive {
namespace {

using aig::Aig;
using aig::Lit;
using aig::Var;

std::vector<Var> all_pis(const Aig& a) {
  std::vector<Var> pis(a.num_pis());
  for (unsigned i = 0; i < a.num_pis(); ++i) pis[i] = i + 1;
  return pis;
}

TEST(Exhaustive, ProvesIdenticalFunctions) {
  Aig a(3);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit f = a.add_and(x, y);
  const Lit g = a.add_and(a.add_or(x, y), f);  // == f
  a.add_po(f);
  a.add_po(g);
  auto r = check_pair(a, f, g, all_pis(a));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, ItemStatus::kProved);
}

TEST(Exhaustive, DisprovesWithValidCex) {
  Aig a(3);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  const Lit f = a.add_and(x, y);
  const Lit g = a.add_or(x, y);
  auto r = check_pair(a, f, g, all_pis(a));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, ItemStatus::kDisproved);
  // The CEX must actually distinguish f and g.
  std::vector<bool> pis(3, false);
  for (const auto& [var, value] : r->cex) pis[var - 1] = value;
  EXPECT_NE(a.evaluate_lit(f, pis), a.evaluate_lit(g, pis));
}

TEST(Exhaustive, ComplementedPair) {
  Aig a(2);
  const Lit f = a.add_and(a.pi_lit(0), a.pi_lit(1));
  auto r = check_pair(a, aig::lit_not(f), f, all_pis(a));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, ItemStatus::kDisproved);
  auto r2 = check_pair(a, aig::lit_not(f), aig::lit_not(f), all_pis(a));
  EXPECT_EQ(r2->status, ItemStatus::kProved);
}

TEST(Exhaustive, ConstantItem) {
  Aig a(2);
  const Lit x = a.pi_lit(0), y = a.pi_lit(1);
  // (x & y) & (x & !y) == 0, unfoldable structurally.
  const Lit g = a.add_and(a.add_and(x, y), a.add_and(x, aig::lit_not(y)));
  auto r = check_pair(a, aig::kLitFalse, g, all_pis(a));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, ItemStatus::kProved);
  auto r2 = check_pair(a, aig::kLitTrue, g, all_pis(a));
  EXPECT_EQ(r2->status, ItemStatus::kDisproved);
}

TEST(Exhaustive, LocalFunctionCheckOverInternalCut) {
  // Paper Fig. 2 idea: equivalence provable over a common internal cut.
  Aig a(5);
  const Lit f = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit g = a.add_or(a.pi_lit(2), a.pi_lit(3));
  const Lit h = a.add_xor(a.pi_lit(3), a.pi_lit(4));
  // Two different-looking implementations of (f & g) | (f & h):
  const Lit n = a.add_or(a.add_and(f, g), a.add_and(f, h));
  const Lit m = a.add_and(f, a.add_or(g, h));
  std::vector<Var> cut{aig::lit_var(f), aig::lit_var(g), aig::lit_var(h)};
  std::sort(cut.begin(), cut.end());
  auto r = check_pair(a, n, m, cut);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, ItemStatus::kProved);
}

TEST(Exhaustive, InvalidWindowReturnsNullopt) {
  Aig a(2);
  const Lit f = a.add_and(a.pi_lit(0), a.pi_lit(1));
  EXPECT_FALSE(check_pair(a, f, aig::kLitFalse, {1}).has_value());
}

class MultiRound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiRound, TinyMemoryAgreesWithLargeMemory) {
  // The same checks must give identical outcomes regardless of E (the
  // memory budget only changes the round decomposition).
  const Aig a = testutil::random_aig(9, 150, 4, 61);
  std::vector<window::Window> windows;
  for (int i = 0; i + 1 < static_cast<int>(a.num_pos()); ++i) {
    auto w = window::build_window(
        a, all_pis(a),
        {window::CheckItem{a.po(i), a.po(i + 1),
                           static_cast<std::uint32_t>(i)}});
    ASSERT_TRUE(w);
    windows.push_back(std::move(*w));
  }
  Params big;  // default: everything in one round
  Params tiny;
  tiny.memory_words = GetParam();  // forces many rounds
  const BatchResult rb = check_batch(a, windows, big);
  const BatchResult rt = check_batch(a, windows, tiny);
  ASSERT_EQ(rb.outcomes.size(), rt.outcomes.size());
  for (std::size_t i = 0; i < rb.outcomes.size(); ++i) {
    EXPECT_EQ(rb.outcomes[i].first, rt.outcomes[i].first);
    EXPECT_EQ(rb.outcomes[i].second, rt.outcomes[i].second);
  }
  EXPECT_GE(rt.rounds, rb.rounds);
}

INSTANTIATE_TEST_SUITE_P(MemoryBudgets, MultiRound,
                         ::testing::Values(256, 1024, 4096));

class ExhaustiveVsBruteForce
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustiveVsBruteForce, AgreesOnRandomPairs) {
  const Aig a = testutil::random_aig(7, 90, 6, GetParam());
  const auto pis = all_pis(a);
  // Exact truth tables as the oracle.
  for (std::size_t i = 0; i + 1 < a.num_pos(); i += 2) {
    const tt::TruthTable ti = aig::global_truth_table(a, a.po(i));
    const tt::TruthTable tj = aig::global_truth_table(a, a.po(i + 1));
    auto r = check_pair(a, a.po(i), a.po(i + 1), pis);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status == ItemStatus::kProved, ti == tj);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveVsBruteForce,
                         ::testing::Values(70, 71, 72, 73, 74, 75, 76, 77));

TEST(Exhaustive, BatchWithMergedWindows) {
  // Window merging must not change outcomes.
  const Aig a = testutil::random_aig(6, 80, 8, 62);
  std::vector<window::Window> windows;
  const auto supports = aig::compute_supports(a, 6);
  for (std::size_t i = 0; i + 1 < a.num_pos(); i += 2) {
    const Var u = aig::lit_var(a.po(i)), v = aig::lit_var(a.po(i + 1));
    if (!supports.small(u) || !supports.small(v)) continue;
    auto inputs = aig::sorted_union(supports.sets[u], supports.sets[v]);
    if (inputs.empty()) continue;
    auto w = window::build_window(
        a, inputs,
        {window::CheckItem{a.po(i), a.po(i + 1),
                           static_cast<std::uint32_t>(i)}});
    if (w) windows.push_back(std::move(*w));
  }
  ASSERT_FALSE(windows.empty());
  const BatchResult before = check_batch(a, windows, {});
  auto merged = window::merge_windows(a, std::move(windows), 6);
  const BatchResult after = check_batch(a, merged, {});
  // Outcomes may be reported in a different order: compare by tag.
  std::map<std::uint32_t, ItemStatus> mb, ma;
  for (auto& [tag, st] : before.outcomes) mb[tag] = st;
  for (auto& [tag, st] : after.outcomes) ma[tag] = st;
  EXPECT_EQ(mb, ma);
}

TEST(Exhaustive, WideWindowMultiWordTables) {
  // 8 inputs -> 4-word tables; verify a known arithmetic identity:
  // x + y == y + x bitwise on a ripple-carry structure is too big here,
  // so check a wide AND-tree against its balanced version.
  Aig a(8);
  Lit chain = a.pi_lit(0);
  for (unsigned i = 1; i < 8; ++i) chain = a.add_and(chain, a.pi_lit(i));
  // Balanced version.
  std::vector<Lit> layer;
  for (unsigned i = 0; i < 8; ++i) layer.push_back(a.pi_lit(i));
  while (layer.size() > 1) {
    std::vector<Lit> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(a.add_and(layer[i], layer[i + 1]));
    if (layer.size() & 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  auto r = check_pair(a, chain, layer[0], all_pis(a));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, ItemStatus::kProved);
}

TEST(Exhaustive, CexBitIndexDecoding) {
  // Force the mismatch into a high round with tiny memory, and verify the
  // decoded assignment still distinguishes the nodes.
  Aig a(8);
  // f and g agree except when all inputs are 1 (pattern index 255).
  Lit all = a.pi_lit(0);
  for (unsigned i = 1; i < 8; ++i) all = a.add_and(all, a.pi_lit(i));
  const Lit g = a.add_and(a.pi_lit(0), a.pi_lit(1));
  const Lit f = a.add_xor(g, all);  // flips g only on the all-ones pattern
  Params tiny;
  tiny.memory_words = 64;  // several rounds for 4-word tables
  auto w = window::build_window(a, all_pis(a),
                                {window::CheckItem{f, g, 0}});
  ASSERT_TRUE(w);
  const BatchResult r = check_batch(a, {std::move(*w)}, tiny);
  ASSERT_EQ(r.outcomes[0].second, ItemStatus::kDisproved);
  ASSERT_EQ(r.cexes.size(), 1u);
  std::vector<bool> pis(8, false);
  for (const auto& [var, value] : r.cexes[0].assignment)
    pis[var - 1] = value;
  EXPECT_NE(a.evaluate_lit(f, pis), a.evaluate_lit(g, pis));
  // The only distinguishing pattern is all-ones.
  for (bool b : pis) EXPECT_TRUE(b);
}

TEST(Exhaustive, StrategiesAgreeOnOutcomes) {
  // The parallelism dimension (whole-window sweeps vs fused level stages)
  // is a pure execution choice: outcomes must be identical, for every
  // memory budget.
  const Aig a = testutil::random_aig(9, 160, 10, 64);
  std::vector<window::Window> windows;
  for (std::size_t i = 0; i + 1 < a.num_pos(); i += 2) {
    auto w = window::build_window(
        a, all_pis(a),
        {window::CheckItem{a.po(i), a.po(i + 1),
                           static_cast<std::uint32_t>(i)}});
    ASSERT_TRUE(w);
    windows.push_back(std::move(*w));
  }
  for (const std::size_t budget : {std::size_t{512}, std::size_t{1} << 22}) {
    Params wp, ls;
    wp.memory_words = ls.memory_words = budget;
    wp.strategy = Strategy::kWindowParallel;
    ls.strategy = Strategy::kLevelStaged;
    const BatchResult rw = check_batch(a, windows, wp);
    const BatchResult rl = check_batch(a, windows, ls);
    EXPECT_TRUE(rw.window_parallel);
    EXPECT_FALSE(rl.window_parallel);
    ASSERT_EQ(rw.outcomes.size(), rl.outcomes.size());
    for (std::size_t i = 0; i < rw.outcomes.size(); ++i) {
      EXPECT_EQ(rw.outcomes[i].first, rl.outcomes[i].first);
      EXPECT_EQ(rw.outcomes[i].second, rl.outcomes[i].second);
    }
    EXPECT_EQ(rw.rounds, rl.rounds);
    EXPECT_EQ(rw.words_simulated, rl.words_simulated);
  }
}

TEST(Exhaustive, CacheClampOnlyChangesRoundDecomposition) {
  // The cache-residency clamp on E must never change outcomes, only the
  // number of rounds.
  const Aig a = testutil::random_aig(10, 200, 6, 65);
  std::vector<window::Window> windows;
  for (std::size_t i = 0; i + 1 < a.num_pos(); i += 2) {
    // Mix an undecidable-in-one-round pair (a PO against itself, proved
    // only after ALL rounds ran) with a likely-disproved random pair.
    auto w = window::build_window(
        a, all_pis(a),
        {window::CheckItem{a.po(i), a.po(i),
                           static_cast<std::uint32_t>(i)},
         window::CheckItem{a.po(i), a.po(i + 1),
                           static_cast<std::uint32_t>(i) + 1000}});
    ASSERT_TRUE(w);
    windows.push_back(std::move(*w));
  }
  Params unclamped;
  unclamped.cache_words = 0;
  Params clamped;
  clamped.cache_words = 64;  // far below the table size: forces tiny E
  const BatchResult ru = check_batch(a, windows, unclamped);
  const BatchResult rc = check_batch(a, windows, clamped);
  EXPECT_LT(rc.entry_words, ru.entry_words);
  EXPECT_GT(rc.rounds, ru.rounds);
  ASSERT_EQ(ru.outcomes.size(), rc.outcomes.size());
  for (std::size_t i = 0; i < ru.outcomes.size(); ++i) {
    EXPECT_EQ(ru.outcomes[i].first, rc.outcomes[i].first);
    EXPECT_EQ(ru.outcomes[i].second, rc.outcomes[i].second);
  }
}

TEST(Exhaustive, CancellationReturnsCancelled) {
  const Aig a = testutil::random_aig(10, 120, 2, 63);
  auto w = window::build_window(a, all_pis(a),
                                {window::CheckItem{a.po(0), a.po(1), 0}});
  ASSERT_TRUE(w);
  std::atomic<bool> cancel{true};
  Params p;
  p.cancel = &cancel;
  const BatchResult r = check_batch(a, {std::move(*w)}, p);
  EXPECT_TRUE(r.cancelled);
}

}  // namespace
}  // namespace simsweep::exhaustive
