/// \file test_opt.cpp
/// \brief Tests for ISOP, SOP synthesis, balancing, refactoring and the
/// resyn2 pipeline (functional preservation is the critical property:
/// these transforms fabricate the "optimized" halves of CEC instances).

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "opt/balance.hpp"
#include "opt/isop.hpp"
#include "opt/refactor.hpp"
#include "opt/resyn.hpp"
#include "test_util.hpp"

namespace simsweep::opt {
namespace {

using aig::Aig;
using aig::Lit;

TEST(Isop, ConstantsAndProjections) {
  EXPECT_TRUE(isop(tt::TruthTable::zeros(3)).empty());
  const auto taut = isop(tt::TruthTable::ones(3));
  ASSERT_EQ(taut.size(), 1u);
  EXPECT_EQ(taut[0].num_literals(), 0u);
  const auto proj = isop(tt::TruthTable::projection(1, 3));
  ASSERT_EQ(proj.size(), 1u);
  EXPECT_EQ(proj[0].pos, 1u << 1);
  EXPECT_EQ(proj[0].neg, 0u);
}

TEST(Isop, KnownFunction) {
  // f = x0 x1 + !x2 over 3 vars.
  const tt::TruthTable f =
      (tt::TruthTable::projection(0, 3) & tt::TruthTable::projection(1, 3)) |
      ~tt::TruthTable::projection(2, 3);
  const auto cover = isop(f);
  EXPECT_EQ(cover_to_tt(cover, 3), f);
  EXPECT_LE(cover.size(), 2u);  // the minimal cover has 2 cubes
}

class IsopProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsopProperty, CoverEqualsFunction) {
  Rng rng(GetParam());
  for (unsigned k : {2u, 4u, 6u, 8u}) {
    for (int trial = 0; trial < 6; ++trial) {
      const tt::TruthTable f = tt::TruthTable::random(k, rng);
      const auto cover = isop(f);
      ASSERT_EQ(cover_to_tt(cover, k), f) << "k=" << k;
    }
  }
}

TEST_P(IsopProperty, CoverIsIrredundant) {
  // Removing any single cube must lose at least one minterm.
  Rng rng(GetParam() + 7);
  const tt::TruthTable f = tt::TruthTable::random(5, rng);
  const auto cover = isop(f);
  for (std::size_t drop = 0; drop < cover.size(); ++drop) {
    std::vector<Cube> reduced;
    for (std::size_t i = 0; i < cover.size(); ++i)
      if (i != drop) reduced.push_back(cover[i]);
    EXPECT_NE(cover_to_tt(reduced, 5), f) << "cube " << drop << " redundant";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsopProperty, ::testing::Values(1, 2, 3));

TEST(Isop, SopToAigMatches) {
  Rng rng(9);
  for (unsigned k : {3u, 5u}) {
    const tt::TruthTable f = tt::TruthTable::random(k, rng);
    const auto cover = isop(f);
    Aig a(k);
    std::vector<Lit> leaves;
    for (unsigned i = 0; i < k; ++i) leaves.push_back(a.pi_lit(i));
    const Lit out = sop_to_aig(a, cover, leaves);
    a.add_po(out);
    EXPECT_EQ(aig::global_truth_table(a, out), f);
  }
}

TEST(Isop, CostEstimates) {
  std::vector<Cube> cover;
  Cube c1;
  c1.pos = 0b011;  // x0 x1
  cover.push_back(c1);
  Cube c2;
  c2.neg = 0b100;  // !x2
  cover.push_back(c2);
  EXPECT_EQ(cover_literals(cover), 3u);
  EXPECT_EQ(cover_aig_cost(cover), 2u);  // one AND + one OR
}

TEST(Balance, PreservesFunctionAndReducesDepth) {
  // A long AND chain must become logarithmic.
  Aig a(8);
  Lit chain = a.pi_lit(0);
  for (unsigned i = 1; i < 8; ++i) chain = a.add_and(chain, a.pi_lit(i));
  a.add_po(chain);
  const Aig b = balance(a);
  EXPECT_TRUE(aig::brute_force_equivalent(a, b));
  const auto la = aig::compute_levels(a);
  const auto lb = aig::compute_levels(b);
  const auto max_of = [](const std::vector<std::uint32_t>& l) {
    return *std::max_element(l.begin(), l.end());
  };
  EXPECT_EQ(max_of(la), 7u);
  EXPECT_EQ(max_of(lb), 3u);
}

class OptPreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptPreservation, BalancePreservesRandomAigs) {
  const Aig a = testutil::random_aig(7, 90, 5, GetParam());
  EXPECT_TRUE(aig::brute_force_equivalent(a, balance(a)));
}

TEST_P(OptPreservation, RewritePreservesRandomAigs) {
  const Aig a = testutil::random_aig(7, 90, 5, GetParam() + 1);
  EXPECT_TRUE(aig::brute_force_equivalent(a, rewrite(a)));
}

TEST_P(OptPreservation, RefactorPreservesRandomAigs) {
  const Aig a = testutil::random_aig(7, 90, 5, GetParam() + 2);
  EXPECT_TRUE(aig::brute_force_equivalent(a, refactor(a)));
}

TEST_P(OptPreservation, Resyn2PreservesRandomAigs) {
  const Aig a = testutil::random_aig(7, 80, 5, GetParam() + 3);
  EXPECT_TRUE(aig::brute_force_equivalent(a, resyn2(a)));
}

TEST_P(OptPreservation, ResynLightPreservesRandomAigs) {
  const Aig a = testutil::random_aig(7, 80, 5, GetParam() + 4);
  EXPECT_TRUE(aig::brute_force_equivalent(a, resyn_light(a)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptPreservation,
                         ::testing::Values(130, 140, 150, 160));

TEST(Resyn, ProducesStructurallyDifferentCircuit) {
  // The whole point of the pipeline: same function, different structure.
  const Aig a = testutil::random_aig(8, 200, 6, 170);
  const Aig b = resyn2(a);
  EXPECT_TRUE(aig::brute_force_equivalent(a, b));
  // Different node counts (or, if equal by luck, different fanin lists).
  bool different = a.num_ands() != b.num_ands();
  if (!different) {
    for (aig::Var v = a.num_pis() + 1; v < a.num_nodes() && !different; ++v)
      different = a.fanin0(v) != b.fanin0(v) || a.fanin1(v) != b.fanin1(v);
  }
  EXPECT_TRUE(different) << "resyn2 was the identity on this AIG";
}

TEST(Refactor, ZeroSlackNeverGrowsMuch) {
  const Aig a = testutil::random_aig(8, 150, 5, 171);
  RefactorParams p;  // slack 0
  const Aig b = refactor(a, p);
  // Per-cone growth is bounded by slack=0; global size can only shrink or
  // stay (up to strashing interactions, allow small noise).
  EXPECT_LE(b.num_ands(), a.num_ands() + 5);
}

}  // namespace
}  // namespace simsweep::opt
