/// \file test_portfolio.cpp
/// \brief Tests for the combined (engine + SAT) and portfolio checkers.

#include "portfolio/portfolio.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/resume.hpp"
#include "gen/arith.hpp"
#include "opt/resyn.hpp"
#include "test_util.hpp"
#include "obs/metric_names.hpp"

namespace simsweep::portfolio {
namespace {

using aig::Aig;

CombinedParams small_combined() {
  CombinedParams p;
  p.engine.k_P = 16;
  p.engine.k_p = 10;
  p.engine.k_g = 10;
  p.engine.k_l = 6;
  p.engine.memory_words = 1 << 16;
  return p;
}

TEST(Combined, EngineAloneSolvesEasyCase) {
  const Aig a = gen::ripple_adder(5);
  const Aig b = gen::kogge_stone_adder(5);
  const CombinedResult r = combined_check(a, b, small_combined());
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_FALSE(r.used_sat);  // 10-PI supports fit the one-shot P phase
  EXPECT_DOUBLE_EQ(r.reduction_percent, 100.0);
}

TEST(Combined, SatFinishesWhatEngineLeaves) {
  // Cripple the engine so it must hand a residue to the SAT sweeper.
  const Aig a = testutil::random_aig(12, 260, 6, 300);
  const Aig b = opt::resyn_light(a);
  if (aig::miter_proved(aig::make_miter(a, b)))
    GTEST_SKIP() << "strash solved it";
  CombinedParams p = small_combined();
  p.engine.k_P = 4;
  p.engine.k_p = 3;
  p.engine.k_g = 3;
  p.engine.k_l = 3;
  p.engine.max_local_phases = 1;
  const CombinedResult r = combined_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  // Either the engine managed alone or SAT ran; both are acceptable, but
  // the timing columns must be consistent with the path taken.
  if (r.used_sat) {
    EXPECT_GT(r.sat_seconds, 0.0);
  }
}

TEST(Combined, DisproofPropagates) {
  const Aig a = testutil::random_aig(8, 120, 5, 304);
  const Aig b = testutil::mutate(a, 305);
  if (aig::brute_force_equivalent(a, b)) GTEST_SKIP() << "mutation no-op";
  const CombinedResult r = combined_check(a, b, small_combined());
  ASSERT_EQ(r.verdict, Verdict::kNotEquivalent);
  if (r.cex) {
    EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
  }
}

class CombinedOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CombinedOracle, AlwaysDecidesSmallMitersCorrectly) {
  const Aig a = testutil::random_aig(8, 110, 5, GetParam());
  const Aig b = (GetParam() % 2) ? testutil::mutate(a, GetParam() + 5)
                                 : opt::resyn_light(a);
  const bool equivalent = aig::brute_force_equivalent(a, b);
  const CombinedResult r = combined_check(a, b, small_combined());
  ASSERT_NE(r.verdict, Verdict::kUndecided);
  EXPECT_EQ(r.verdict == Verdict::kEquivalent, equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedOracle,
                         ::testing::Values(310, 311, 312, 313, 314, 315));

TEST(Combined, InterleavedRewritingMergesAttemptStats) {
  // Regression: with interleave_rewriting, CombinedResult::engine_stats
  // must cover ALL engine attempts. The bug merged only total_seconds and
  // initial_ands, dropping the first attempt's proved-pair counters.
  const Aig a = testutil::random_aig(12, 260, 6, 340);
  const Aig b = opt::resyn_light(a);
  if (aig::miter_proved(aig::make_miter(a, b)))
    GTEST_SKIP() << "strash solved it";
  CombinedParams p = small_combined();
  // Cripple the engine so the first attempt leaves a residue (forcing a
  // second, rewritten attempt) while still proving some pairs.
  p.engine.k_P = 4;
  p.engine.k_p = 3;
  p.engine.k_g = 4;
  p.engine.k_l = 4;
  p.engine.max_local_phases = 1;
  p.engine.escalate_global = false;

  // Baseline: the first attempt alone.
  const engine::SimCecEngine eng(p.engine);
  const engine::EngineResult first =
      eng.check_miter(aig::make_miter(a, b));
  if (first.verdict != Verdict::kUndecided)
    GTEST_SKIP() << "crippled engine still decided the miter";
  const std::size_t first_proved = first.stats.pairs_proved_global +
                                   first.stats.pairs_proved_local +
                                   first.stats.pos_proved;

  p.interleave_rewriting = true;
  p.max_rewrite_rounds = 1;
  const CombinedResult r = combined_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  // Merged stats: at least the first attempt's work is in there, the
  // chain is measured against the original miter, and the phase-time
  // partition covers both attempts.
  EXPECT_GE(r.engine_stats.pairs_proved_global +
                r.engine_stats.pairs_proved_local +
                r.engine_stats.pos_proved,
            first_proved);
  EXPECT_EQ(r.engine_stats.initial_ands, first.stats.initial_ands);
  EXPECT_GE(r.engine_stats.local_phases, first.stats.local_phases);
  // Time totals are noisy across runs; only their structure is checked:
  // the merged total must itself partition into phases + other.
  EXPECT_GT(r.engine_stats.total_seconds, 0.0);
  EXPECT_NEAR(r.engine_stats.po_seconds + r.engine_stats.global_seconds +
                  r.engine_stats.local_seconds +
                  r.engine_stats.other_seconds,
              r.engine_stats.total_seconds, 1e-6);
  // The report snapshot exists and carries the merged engine gauges.
  EXPECT_DOUBLE_EQ(r.report.value(obs::metric::kEngineTotalSeconds),
                   r.engine_stats.total_seconds);
  EXPECT_DOUBLE_EQ(r.report.value(obs::metric::kEnginePairsProvedLocal),
                   static_cast<double>(r.engine_stats.pairs_proved_local));
}

TEST(Combined, SweeperGetsRemainingBudgetNotFullBudget) {
  // Regression (deadline plumbing, DESIGN.md §2.4): engine.time_limit is
  // the budget of the WHOLE combined flow. The SAT fallback used to be
  // handed the full budget again, so a combined run could legally take
  // twice its nominal limit. Now the sweeper's effective time_limit is
  // the budget *minus* the engine's elapsed time (floored at a small
  // epsilon), and CombinedResult records it for inspection.
  const Aig a = testutil::random_aig(12, 260, 6, 300);
  const Aig b = opt::resyn_light(a);
  if (aig::miter_proved(aig::make_miter(a, b)))
    GTEST_SKIP() << "strash solved it";
  CombinedParams p = small_combined();
  // Disable every engine phase so the undecided residue — and therefore
  // the SAT fallback — is guaranteed, making the budget check
  // deterministic.
  p.engine.enable_po_phase = false;
  p.engine.enable_global_phase = false;
  p.engine.max_local_phases = 0;
  p.engine.escalate_global = false;
  p.engine.time_limit = 30.0;  // generous: the engine spends a sliver of it
  const CombinedResult r = combined_check(a, b, p);
  ASSERT_TRUE(r.used_sat);
  EXPECT_GT(r.sweeper_time_limit, 0.0);
  EXPECT_LE(r.sweeper_time_limit, p.engine.time_limit);
  // The remaining budget is the total minus what the engine consumed.
  EXPECT_LE(r.sweeper_time_limit, p.engine.time_limit - r.engine_seconds + 0.5);

  // A caller-set sweeper limit tighter than the remaining budget wins.
  CombinedParams tight = p;
  tight.sweeper.time_limit = 1e-6;
  const CombinedResult rt = combined_check(a, b, tight);
  ASSERT_TRUE(rt.used_sat);
  EXPECT_LE(rt.sweeper_time_limit, 1e-6);
  EXPECT_EQ(rt.verdict, Verdict::kUndecided);  // no time to decide

  // Unbounded flow: no clamping happens and the field stays 0.
  CombinedParams unbounded = p;
  unbounded.engine.time_limit = 0;
  const CombinedResult ru = combined_check(a, b, unbounded);
  ASSERT_TRUE(ru.used_sat);
  EXPECT_DOUBLE_EQ(ru.sweeper_time_limit, 0.0);
}

TEST(Combined, ExhaustedBudgetShortCircuitsAttempts) {
  // Regression (expired-budget dribble): remaining() used to floor the
  // remainder at 0.05 s, so a spent budget still granted every
  // interleaved-rewriting round and the SAT fallback a 50 ms slice each —
  // up to max_rewrite_rounds+1 extra attempts past the deadline. With the
  // fix, a budget exhausted by the first engine attempt stops the flow
  // cold: exactly ONE engine attempt, no rewrite rounds, no sweeper.
  const Aig a = testutil::random_aig(12, 260, 6, 300);
  const Aig b = opt::resyn_light(a);
  if (aig::miter_proved(aig::make_miter(a, b)))
    GTEST_SKIP() << "strash solved it";
  CombinedParams p = small_combined();
  p.engine.enable_po_phase = false;
  p.engine.enable_global_phase = false;
  p.engine.max_local_phases = 0;
  p.engine.escalate_global = false;
  p.engine.time_limit = 1e-6;  // gone before the first attempt returns
  p.interleave_rewriting = true;
  p.max_rewrite_rounds = 5;  // pre-fix: 5 bonus rounds + the sweeper
  const CombinedResult r = combined_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
  EXPECT_EQ(r.report.count(obs::metric::kEngineAttempts), 1u);
  EXPECT_FALSE(r.used_sat);
  EXPECT_DOUBLE_EQ(r.sat_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.sweeper_time_limit, 0.0);
}

TEST(Combined, ResumedRunChargesElapsedAgainstDeadline) {
  // Regression (deadline plumbing x checkpoint/resume, DESIGN.md §2.8):
  // a resumed run restores the snapshot's wall-clock and charges it
  // against engine.time_limit, so the SAT fallback receives only the TRUE
  // remainder of the original budget — not the full budget restarted.
  // Here the "crashed" run had burned 80% of a 30 s budget; the resumed
  // leg's sweeper may see at most the remaining 6 s.
  const Aig a = testutil::random_aig(12, 260, 6, 300);
  const Aig b = opt::resyn_light(a);
  if (aig::miter_proved(aig::make_miter(a, b)))
    GTEST_SKIP() << "strash solved it";

  ckpt::CheckpointedParams cp;
  cp.combined = small_combined();
  // Same phase gating as above: the SAT fallback is guaranteed.
  cp.combined.engine.enable_po_phase = false;
  cp.combined.engine.enable_global_phase = false;
  cp.combined.engine.max_local_phases = 0;
  cp.combined.engine.escalate_global = false;
  cp.combined.engine.time_limit = 30.0;
  cp.checkpoint_path = ::testing::TempDir() + "simsweep_budget.ckpt";
  std::remove(cp.checkpoint_path.c_str());
  std::remove((cp.checkpoint_path + ".prev").c_str());

  // Hand-craft the crashed run's engine-boundary snapshot: 24 s already
  // spent, miter untouched.
  const aig::Aig miter = aig::make_miter(a, b);
  ckpt::Snapshot snap;
  snap.stage = ckpt::Stage::kEngine;
  snap.fingerprint = ckpt::run_fingerprint(miter, cp.combined);
  snap.elapsed_seconds = 24.0;
  snap.boundary = "G";
  snap.miter = miter;
  snap.engine_stats.initial_ands = miter.num_ands();
  snap.engine_stats.final_ands = miter.num_ands();
  snap.engine_stats.pos_total = miter.num_pos();
  const std::vector<std::uint8_t> bytes = ckpt::serialize(snap);
  {
    std::ofstream out(cp.checkpoint_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  const ckpt::CheckpointedResult r =
      ckpt::checked_combined_check_miter(miter, cp);
  EXPECT_TRUE(r.resumed);
  ASSERT_TRUE(r.combined.used_sat);
  EXPECT_GT(r.combined.sweeper_time_limit, 0.0);
  EXPECT_LE(r.combined.sweeper_time_limit, 6.0);
}

TEST(Portfolio, FirstDecisiveEngineWins) {
  const Aig a = gen::array_multiplier(4);
  const Aig b = gen::wallace_multiplier(4);
  PortfolioParams p;
  p.combined = small_combined();
  const PortfolioResult r = portfolio_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_FALSE(r.winner.empty());
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Portfolio, DisproofWithCex) {
  const Aig a = testutil::random_aig(8, 100, 4, 330);
  const Aig b = testutil::mutate(a, 331);
  if (aig::brute_force_equivalent(a, b)) GTEST_SKIP() << "mutation no-op";
  PortfolioParams p;
  p.combined = small_combined();
  const PortfolioResult r = portfolio_check(a, b, p);
  ASSERT_EQ(r.verdict, Verdict::kNotEquivalent);
  if (r.cex) {
    EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
  }
}

TEST(Portfolio, SubsetOfEnginesStillWorks) {
  const Aig a = gen::ripple_adder(4);
  const Aig b = gen::kogge_stone_adder(4);
  PortfolioParams p;
  p.combined = small_combined();
  p.run_combined = false;
  p.run_sat = false;
  p.run_bdd_sweep = false;  // only the monolithic BDD engine
  const PortfolioResult r = portfolio_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_EQ(r.winner, "bdd");
}

TEST(Portfolio, AllUndecidedReportsUndecided) {
  const Aig a = testutil::random_aig(12, 260, 6, 322);
  const Aig b = opt::resyn_light(a);
  if (aig::miter_proved(aig::make_miter(a, b)))
    GTEST_SKIP() << "strash solved it";
  PortfolioParams p;
  p.run_combined = false;
  p.run_sat = true;
  p.run_bdd = true;
  p.run_bdd_sweep = true;
  p.sweeper.time_limit = 1e-9;
  p.bdd.node_limit = 8;
  p.bdd_sweep.manager_limit = 8;
  const PortfolioResult r = portfolio_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
  EXPECT_TRUE(r.winner.empty());
}

}  // namespace
}  // namespace simsweep::portfolio
