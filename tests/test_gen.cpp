/// \file test_gen.cpp
/// \brief Tests for the benchmark circuit generators: every arithmetic
/// circuit is validated against integer reference math.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "aig/aig_analysis.hpp"
#include "common/random.hpp"
#include "gen/arith.hpp"
#include "gen/control.hpp"
#include "gen/suite.hpp"
#include "gen/transforms.hpp"

namespace simsweep::gen {
namespace {

using aig::Aig;

/// Drives the circuit with integer operands (LSB-first buses) and decodes
/// the outputs as an unsigned integer.
std::uint64_t run(const Aig& a, std::uint64_t input_bits) {
  std::vector<bool> pis(a.num_pis());
  for (unsigned i = 0; i < a.num_pis(); ++i) pis[i] = (input_bits >> i) & 1;
  const auto outs = a.evaluate(pis);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < outs.size(); ++i)
    v |= static_cast<std::uint64_t>(outs[i]) << i;
  return v;
}

TEST(Arith, RippleAdder) {
  const Aig a = ripple_adder(4);
  ASSERT_EQ(a.num_pis(), 8u);
  ASSERT_EQ(a.num_pos(), 5u);
  for (unsigned x = 0; x < 16; ++x)
    for (unsigned y = 0; y < 16; ++y)
      ASSERT_EQ(run(a, x | (y << 4)), x + y) << x << "+" << y;
}

TEST(Arith, KoggeStoneAdder) {
  const Aig a = kogge_stone_adder(5);
  for (unsigned x = 0; x < 32; x += 3)
    for (unsigned y = 0; y < 32; y += 5)
      ASSERT_EQ(run(a, x | (y << 5)), x + y);
}

TEST(Arith, AdderVariantsAreEquivalent) {
  EXPECT_TRUE(
      aig::brute_force_equivalent(ripple_adder(4), kogge_stone_adder(4)));
}

TEST(Arith, ArrayMultiplier) {
  const Aig a = array_multiplier(4);
  ASSERT_EQ(a.num_pos(), 8u);
  for (unsigned x = 0; x < 16; ++x)
    for (unsigned y = 0; y < 16; ++y)
      ASSERT_EQ(run(a, x | (y << 4)), x * y) << x << "*" << y;
}

TEST(Arith, WallaceMultiplier) {
  const Aig a = wallace_multiplier(4);
  for (unsigned x = 0; x < 16; ++x)
    for (unsigned y = 0; y < 16; ++y)
      ASSERT_EQ(run(a, x | (y << 4)), x * y);
}

TEST(Arith, MultiplierVariantsAreEquivalent) {
  EXPECT_TRUE(aig::brute_force_equivalent(array_multiplier(4),
                                          wallace_multiplier(4)));
}

TEST(Arith, Square) {
  const Aig a = square(5);
  ASSERT_EQ(a.num_pis(), 5u);
  ASSERT_EQ(a.num_pos(), 10u);
  for (unsigned x = 0; x < 32; ++x) ASSERT_EQ(run(a, x), x * x);
}

TEST(Arith, Isqrt) {
  const Aig a = isqrt(8);
  ASSERT_EQ(a.num_pos(), 4u);
  for (unsigned x = 0; x < 256; ++x)
    ASSERT_EQ(run(a, x),
              static_cast<std::uint64_t>(std::floor(std::sqrt(x))))
        << "sqrt(" << x << ")";
}

TEST(Arith, Hyp) {
  const Aig a = hyp(4);
  for (unsigned x = 0; x < 16; ++x)
    for (unsigned y = 0; y < 16; ++y) {
      const auto expect = static_cast<std::uint64_t>(
          std::floor(std::sqrt(static_cast<double>(x * x + y * y))));
      ASSERT_EQ(run(a, x | (y << 4)), expect) << "hyp(" << x << "," << y << ")";
    }
}

TEST(Arith, Log2Exponent) {
  const Aig a = log2_approx(16, 4);
  ASSERT_EQ(a.num_pos(), 8u);  // 4 exponent + 4 fraction bits
  for (unsigned x = 1; x < 65536; x = x * 2 + 1) {
    const std::uint64_t out = run(a, x);
    const unsigned exponent = out & 0xF;
    ASSERT_EQ(exponent, static_cast<unsigned>(std::floor(std::log2(x))))
        << "x=" << x;
  }
}

TEST(Arith, Log2Fraction) {
  const Aig a = log2_approx(16, 4);
  // For x = 0b11000 (24): exponent 4; the bits after the leading one of
  // the normalized mantissa are 1,0,0,0. Fraction PO j carries the j-th
  // bit after the leading one, so the packed nibble is 0b0001.
  const std::uint64_t out = run(a, 24);
  EXPECT_EQ(out & 0xF, 4u);
  EXPECT_EQ((out >> 4) & 0xF, 0b0001u);
  // x = 0b101 (5): exponent 2, following bits 0,1 -> nibble 0b0010.
  const std::uint64_t out5 = run(a, 5);
  EXPECT_EQ(out5 & 0xF, 2u);
  EXPECT_EQ((out5 >> 4) & 0xF, 0b0010u);
}

TEST(Arith, Voter) {
  const Aig a = voter(7);
  ASSERT_EQ(a.num_pos(), 1u);
  for (unsigned x = 0; x < 128; ++x) {
    const unsigned ones = static_cast<unsigned>(__builtin_popcount(x));
    ASSERT_EQ(run(a, x), ones >= 4 ? 1u : 0u) << "x=" << x;
  }
}

TEST(Arith, CordicSinApproximatesSine) {
  const unsigned n = 12, fbits = n - 2;
  const Aig a = cordic_sin(n, 10);
  // Angles in [0, pi/2): CORDIC converges within ~2^-(iters-1).
  for (double angle : {0.1, 0.3, 0.7, 1.0, 1.4}) {
    const std::uint64_t zfix =
        static_cast<std::uint64_t>(std::llround(std::ldexp(angle, fbits)));
    std::uint64_t out = run(a, zfix);
    // Interpret as signed fixed point.
    double y = static_cast<double>(out);
    if (out >> (n - 1)) y -= std::ldexp(1.0, n);
    y = std::ldexp(y, -static_cast<int>(fbits));
    EXPECT_NEAR(y, std::sin(angle), 0.02) << "angle " << angle;
  }
}

TEST(Control, DeterministicAndWellFormed) {
  ControlParams p;
  p.num_pis = 64;
  p.num_pos = 48;
  p.seed = 5;
  const Aig a = control_logic(p);
  const Aig b = control_logic(p);
  ASSERT_EQ(a.num_pos(), 48u);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  // Shallow: levels bounded by depth + small gate trees.
  const auto lv = aig::compute_levels(a);
  EXPECT_LE(*std::max_element(lv.begin(), lv.end()), 16u);
}

TEST(Control, ProfilesDiffer) {
  const Aig a = ac97_like(1, 3);
  const Aig v = vga_like(1, 3);
  EXPECT_GT(a.num_pis(), 100u);
  EXPECT_GT(v.num_pis(), 100u);
  EXPECT_NE(a.num_nodes(), v.num_nodes());
}

TEST(Transforms, DoubleCircuit) {
  const Aig base = ripple_adder(3);
  const Aig d = double_circuit(base);
  EXPECT_EQ(d.num_pis(), 2 * base.num_pis());
  EXPECT_EQ(d.num_pos(), 2 * base.num_pos());
  // Both halves behave like the base circuit.
  for (unsigned x = 0; x < 8; ++x)
    for (unsigned y = 0; y < 8; ++y) {
      std::vector<bool> pis(d.num_pis(), false);
      for (unsigned i = 0; i < 3; ++i) pis[i] = (x >> i) & 1;
      for (unsigned i = 0; i < 3; ++i) pis[3 + i] = (y >> i) & 1;
      // Second copy gets different operands to prove independence.
      for (unsigned i = 0; i < 3; ++i) pis[6 + i] = ((x ^ 5) >> i) & 1;
      for (unsigned i = 0; i < 3; ++i) pis[9 + i] = ((y ^ 3) >> i) & 1;
      const auto outs = d.evaluate(pis);
      std::uint64_t s1 = 0, s2 = 0;
      for (unsigned i = 0; i < 4; ++i) s1 |= std::uint64_t{outs[i]} << i;
      for (unsigned i = 0; i < 4; ++i)
        s2 |= std::uint64_t{outs[4 + i]} << i;
      ASSERT_EQ(s1, x + y);
      ASSERT_EQ(s2, (x ^ 5) + (y ^ 3));
    }
}

TEST(Transforms, DoubleKTimes) {
  const Aig base = voter(7);
  const Aig d3 = double_circuit(base, 3);
  EXPECT_EQ(d3.num_pis(), 8 * base.num_pis());
  EXPECT_EQ(d3.num_pos(), 8u);
}

TEST(Suite, FamiliesAndNaming) {
  EXPECT_EQ(table2_families().size(), 9u);
  SuiteParams p;
  p.doublings = 1;
  const BenchCase c = make_case("multiplier", p);
  EXPECT_EQ(c.name, "multiplier_1xd");
  EXPECT_EQ(c.original.num_pis(), c.optimized.num_pis());
  EXPECT_EQ(c.original.num_pos(), c.optimized.num_pos());
  EXPECT_THROW(make_case("nonsense", p), std::invalid_argument);
}

TEST(Suite, PairsAreEquivalentOnSampledPatterns) {
  // Full brute force is too big; sample patterns on every family at
  // doublings=0-equivalent scale (the suite itself uses resyn2, already
  // proven function-preserving in test_opt).
  SuiteParams p;
  p.doublings = 0;
  Rng rng(31);
  for (const std::string& family : table2_families()) {
    const BenchCase c = make_case(family, p);
    for (int trial = 0; trial < 16; ++trial) {
      std::vector<bool> pis(c.original.num_pis());
      for (auto&& b : pis) b = rng.flip();
      ASSERT_EQ(c.original.evaluate(pis), c.optimized.evaluate(pis))
          << family;
    }
  }
}

}  // namespace
}  // namespace simsweep::gen
