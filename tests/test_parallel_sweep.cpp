/// \file test_parallel_sweep.cpp
/// \brief Parallel residue sweeping tests (DESIGN.md §2.5): determinism
/// of the sharded sweep across thread counts and repeated runs, oracle
/// soundness (deterministic and opportunistic modes), dispatcher routing,
/// and tsan-targeted stress of the shared EquivBoard / SharedCexBank.
///
/// Suite names carry the "ParallelSweep" prefix on purpose: the checked-
/// executor leg of tools/run_static_analysis.sh selects them by that
/// regex (together with ThreadPool/StagePlan/Checked).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "gen/arith.hpp"
#include "opt/refactor.hpp"
#include "parallel/thread_pool.hpp"
#include "portfolio/portfolio.hpp"
#include "sweep/parallel_sweeper.hpp"
#include "test_util.hpp"
#include "obs/metric_names.hpp"

namespace simsweep {
namespace {

using aig::Aig;
using aig::Lit;

/// The deterministic core of SweeperStats (sat_sweeper.hpp contract):
/// everything except scheduling telemetry (steals, pairs_pruned, shard
/// breakdown, wall times) and the shards config echo.
using CoreStats = std::tuple<Verdict, std::size_t, std::size_t, std::size_t,
                             std::size_t, std::uint64_t, std::size_t,
                             std::size_t, std::size_t, std::size_t,
                             std::size_t>;

CoreStats core_stats(const sweep::SweepResult& r) {
  const sweep::SweeperStats& s = r.stats;
  return {r.verdict,      s.sat_calls,  s.pairs_proved, s.pairs_disproved,
          s.pairs_undecided, s.conflicts, s.solve_faults, s.chunks,
          s.board_merges, s.cex_shared, s.pairs_sim_resolved};
}

/// A miter the structural front end cannot solve: array vs Wallace
/// multiplier (genuinely different structures, many internal candidate
/// pairs). The inequivalent variant mutates the Wallace side until the
/// mutation provably changes the function.
Aig hard_miter(std::uint64_t seed, bool equivalent) {
  const Aig a = gen::array_multiplier(4);
  Aig b = gen::wallace_multiplier(4);
  if (!equivalent) {
    for (std::uint64_t s = seed;; ++s) {
      Aig c = testutil::mutate(b, s);
      if (!aig::brute_force_equivalent(b, c)) {
        b = std::move(c);
        break;
      }
    }
  }
  return aig::make_miter(a, b);
}

TEST(ParallelSweep, BoardDedupsAndJournals) {
  sweep::EquivBoard board(16);
  EXPECT_TRUE(board.publish(5, aig::kLitTrue));
  EXPECT_TRUE(board.publish(7, 4));
  // Duplicate proofs of the same node count once.
  EXPECT_FALSE(board.publish(5, 6));
  EXPECT_EQ(board.size(), 2u);
  const auto all = board.merges_since(0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, 5u);
  EXPECT_EQ(all[0].second, aig::kLitTrue);
  const auto tail = board.merges_since(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].first, 7u);
  EXPECT_TRUE(board.merges_since(2).empty());
  EXPECT_TRUE(board.merges_since(99).empty());
}

TEST(ParallelSweep, CexBankJournalsAndPacks) {
  sweep::SharedCexBank bank(3);
  bank.publish({true, false, true});
  bank.publish({false, true, false});
  EXPECT_EQ(bank.size(), 2u);
  ASSERT_EQ(bank.rows_since(1).size(), 1u);
  EXPECT_EQ(bank.rows_since(1)[0], (std::vector<bool>{false, true, false}));
  EXPECT_TRUE(bank.rows_since(2).empty());
  const sim::PatternBank packed = bank.pack();
  EXPECT_EQ(packed.num_pis(), 3u);
  ASSERT_GE(packed.num_words(), 1u);
  // Pattern 0 is the first published row.
  EXPECT_EQ(packed.word(0, 0) & 1u, 1u);
  EXPECT_EQ(packed.word(1, 0) & 1u, 0u);
  EXPECT_EQ(packed.word(2, 0) & 1u, 1u);
}

TEST(ParallelSweep, DeterministicAcrossThreadCountsAndRuns) {
  // sim_support_limit 0 forces every pair through the sharded SAT path;
  // the default resolves them by cone simulation. Both must honor the
  // determinism contract.
  for (const unsigned sim_limit : {0u, 12u}) {
    for (const bool equivalent : {true, false}) {
      const Aig m = hard_miter(2024, equivalent);
      sweep::SweeperParams p;
      p.sim_support_limit = sim_limit;
      p.pairs_per_chunk = 4;  // many chunks => real sharding on small miters
      std::vector<CoreStats> runs;
      for (const unsigned threads : {1u, 2u, 4u}) {
        for (int rep = 0; rep < 2; ++rep) {
          p.num_threads = threads;
          runs.push_back(
              core_stats(sweep::ParallelSatSweeper(p).check_miter(m)));
        }
      }
      for (std::size_t i = 1; i < runs.size(); ++i)
        EXPECT_EQ(runs[i], runs[0])
            << "sim_limit=" << sim_limit << " equivalent=" << equivalent
            << " run " << i << " diverged";
    }
  }
}

TEST(ParallelSweep, SimResolutionSettlesSmallSupportPairsWithoutSat) {
  // The multiplier miter has 8 PIs, so with the default support limit
  // every candidate pair fits the simulation window: the whole sweep —
  // including the PO phase, whose cones collapse to constant false
  // through the merges — must finish with zero SAT activity.
  const Aig m = hard_miter(808, /*equivalent=*/true);
  sweep::SweeperParams p;
  p.num_threads = 2;
  const sweep::SweepResult sim = sweep::ParallelSatSweeper(p).check_miter(m);
  EXPECT_EQ(sim.verdict, Verdict::kEquivalent);
  EXPECT_GT(sim.stats.pairs_sim_resolved, 0u);
  EXPECT_EQ(sim.stats.sat_calls, 0u);
  EXPECT_EQ(sim.stats.conflicts, 0u);
  // Disabling the window sends the same pairs to the solvers instead,
  // with the same verdict and merge set.
  p.sim_support_limit = 0;
  const sweep::SweepResult sat = sweep::ParallelSatSweeper(p).check_miter(m);
  EXPECT_EQ(sat.verdict, Verdict::kEquivalent);
  EXPECT_EQ(sat.stats.pairs_sim_resolved, 0u);
  EXPECT_GT(sat.stats.sat_calls, 0u);
  EXPECT_EQ(sat.stats.pairs_proved, sim.stats.pairs_proved);

  // Inequivalent side: simulation finds the distinguishing minterms and
  // the reconstructed CEX patterns drive class refinement to a sound
  // kNotEquivalent.
  const Aig n = hard_miter(809, /*equivalent=*/false);
  sweep::SweeperParams q;
  q.num_threads = 2;
  const sweep::SweepResult r = sweep::ParallelSatSweeper(q).check_miter(n);
  EXPECT_EQ(r.verdict, Verdict::kNotEquivalent);
  EXPECT_GT(r.stats.pairs_sim_resolved, 0u);
}

TEST(ParallelSweep, ShardTelemetryIsPopulated) {
  const Aig m = hard_miter(31337, /*equivalent=*/true);
  sweep::SweeperParams p;
  p.num_threads = 3;
  p.pairs_per_chunk = 2;
  const sweep::SweepResult r = sweep::ParallelSatSweeper(p).check_miter(m);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GE(r.stats.shards, 1u);
  EXPECT_LE(r.stats.shards, 3u);
  EXPECT_GT(r.stats.chunks, 0u);
  // The per-shard vector covers exactly the shards that RAN (the
  // stats.shards high-water mark), not the configured thread count.
  EXPECT_EQ(r.stats.shard.size(), r.stats.shards);
  std::size_t claimed = 0;
  for (const sweep::ShardStats& s : r.stats.shard) claimed += s.chunks;
  EXPECT_GT(claimed, 0u);
  // Every proved pair was published to the board exactly once.
  EXPECT_EQ(r.stats.board_merges, r.stats.pairs_proved);
}

TEST(ParallelSweep, ShardStatsSizedByActualShardsNotThreads) {
  // Regression (shard-stats over-reporting): the per-shard vector was
  // resized to num_threads up front, although only
  // min(num_threads, num_chunks) shards ever run. A run whose pair list
  // fits one chunk then reported three phantom all-zero shards — and the
  // portfolio's publisher emitted sat_sweeper.shard.s1..s3 rows for
  // shards that never existed.
  const Aig m = hard_miter(4242, /*equivalent=*/true);
  sweep::SweeperParams p;
  p.num_threads = 4;
  p.pairs_per_chunk = 100000;  // everything fits one chunk -> one shard
  const sweep::SweepResult r = sweep::ParallelSatSweeper(p).check_miter(m);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_EQ(r.stats.shards, 1u);
  EXPECT_EQ(r.stats.shard.size(), 1u);  // pre-fix: 4, three of them zero
  EXPECT_GT(r.stats.shard[0].chunks, 0u);
}

TEST(ParallelSweep, EmptyPairListReportsZeroShards) {
  // num_chunks == 0 edge of the same fix: a miter with no candidate
  // pairs never starts a shard, so the telemetry must show zero shards
  // and an empty per-shard vector while the PO proving still decides.
  Aig a(1);  // x
  a.add_po(a.pi_lit(0));
  Aig b(1);  // !x — the XOR strashes to constant true: zero AND nodes,
             // zero internal candidate pairs, still a real disproof
  b.add_po(aig::lit_not(b.pi_lit(0)));
  const Aig m = aig::make_miter(a, b);
  sweep::SweeperParams p;
  p.num_threads = 3;
  const sweep::SweepResult r = sweep::ParallelSatSweeper(p).check_miter(m);
  EXPECT_EQ(r.verdict, Verdict::kNotEquivalent);
  // A constant-true miter PO is disproved structurally; when a concrete
  // pattern is materialized it must be a real witness.
  if (r.cex) EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
  EXPECT_EQ(r.stats.shards, 0u);
  EXPECT_TRUE(r.stats.shard.empty());
}

TEST(ParallelSweep, InjectedSharedPoolMatchesPrivatePool) {
  // SweeperParams::pool lets the batch service run every job's sweep on
  // ONE shared pool. Injection must be behaviorally invisible: in
  // deterministic mode the core stats are bit-identical to the
  // private-pool run.
  const Aig m = hard_miter(909, /*equivalent=*/true);
  sweep::SweeperParams p;
  p.num_threads = 3;
  p.pairs_per_chunk = 2;
  const sweep::SweepResult r1 = sweep::ParallelSatSweeper(p).check_miter(m);
  parallel::ThreadPool shared(2);
  p.pool = &shared;
  const sweep::SweepResult r2 = sweep::ParallelSatSweeper(p).check_miter(m);
  EXPECT_EQ(r1.verdict, Verdict::kEquivalent);
  EXPECT_EQ(core_stats(r1), core_stats(r2));
}

class ParallelSweepOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelSweepOracle, AgreesWithBruteForce) {
  const Aig a = testutil::random_aig(7, 80, 5, GetParam());
  const Aig b = testutil::mutate(a, GetParam() * 31 + 7);
  sweep::SweeperParams p;
  p.num_threads = 3;
  p.pairs_per_chunk = 8;
  const sweep::SweepResult r = sweep::sweep_miter(aig::make_miter(a, b), p);
  ASSERT_NE(r.verdict, Verdict::kUndecided);
  EXPECT_EQ(r.verdict == Verdict::kEquivalent,
            aig::brute_force_equivalent(a, b));
  if (r.verdict == Verdict::kNotEquivalent) {
    ASSERT_TRUE(r.cex.has_value());
    EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSweepOracle,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

TEST(ParallelSweep, OpportunisticModeStaysSound) {
  // Opportunistic mode trades determinism for convergence: stats may vary
  // with interleaving, the verdict must not.
  for (const std::uint64_t seed : {401u, 402u, 403u, 404u}) {
    const Aig a = testutil::random_aig(7, 80, 5, seed);
    const Aig b = testutil::mutate(a, seed * 13 + 5);
    sweep::SweeperParams p;
    p.num_threads = 4;
    p.pairs_per_chunk = 2;  // maximal chunk interleaving
    p.deterministic = false;
    const sweep::SweepResult r = sweep::sweep_miter(aig::make_miter(a, b), p);
    ASSERT_NE(r.verdict, Verdict::kUndecided) << "seed " << seed;
    EXPECT_EQ(r.verdict == Verdict::kEquivalent,
              aig::brute_force_equivalent(a, b))
        << "seed " << seed;
    if (r.cex) {
      EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
    }
  }
}

TEST(ParallelSweep, DispatcherRoutesByThreadCount) {
  const Aig m = hard_miter(555, /*equivalent=*/true);
  sweep::SweeperParams p;
  p.num_threads = 1;
  const sweep::SweepResult seq = sweep::sweep_miter(m, p);
  EXPECT_EQ(seq.verdict, Verdict::kEquivalent);
  EXPECT_EQ(seq.stats.shards, 0u);  // sequential path: no shard loops
  EXPECT_EQ(seq.stats.chunks, 0u);
  EXPECT_EQ(seq.stats.parallel_fallbacks, 0u);
  p.num_threads = 2;
  const sweep::SweepResult par = sweep::sweep_miter(m, p);
  EXPECT_EQ(par.verdict, Verdict::kEquivalent);
  EXPECT_GE(par.stats.shards, 1u);
  EXPECT_EQ(par.stats.parallel_fallbacks, 0u);
}

TEST(ParallelSweep, ParallelMatchesSequentialVerdict) {
  for (const std::uint64_t seed : {611u, 612u, 613u}) {
    for (const bool equivalent : {true, false}) {
      const Aig m = hard_miter(seed, equivalent);
      sweep::SweeperParams p;
      const sweep::SweepResult seq = sweep::SatSweeper(p).check_miter(m);
      p.num_threads = 2;
      p.pairs_per_chunk = 4;
      const sweep::SweepResult par = sweep::sweep_miter(m, p);
      EXPECT_EQ(par.verdict, seq.verdict)
          << "seed " << seed << " equivalent=" << equivalent;
    }
  }
}

TEST(ParallelSweep, TimeLimitYieldsUndecided) {
  const Aig a = testutil::random_aig(10, 300, 6, 121);
  const Aig m = aig::make_miter(a, opt::refactor(a));
  if (aig::miter_proved(m)) GTEST_SKIP() << "refactor was the identity";
  sweep::SweeperParams p;
  p.num_threads = 4;
  p.time_limit = 1e-9;  // expires immediately
  const sweep::SweepResult r = sweep::sweep_miter(m, p);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

TEST(ParallelSweep, CancellationYieldsUndecided) {
  const Aig a = testutil::random_aig(10, 300, 6, 121);
  const Aig m = aig::make_miter(a, opt::refactor(a));
  if (aig::miter_proved(m)) GTEST_SKIP() << "refactor was the identity";
  std::atomic<bool> cancel{true};
  sweep::SweeperParams p;
  p.num_threads = 4;
  p.cancel = &cancel;
  const sweep::SweepResult r = sweep::sweep_miter(m, p);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

TEST(ParallelSweep, StructurallySolvedMitersShortCircuit) {
  sweep::SweeperParams p;
  p.num_threads = 4;
  Aig zero(2);
  zero.add_po(aig::kLitFalse);
  EXPECT_EQ(sweep::sweep_miter(zero, p).verdict, Verdict::kEquivalent);
  Aig one(2);
  one.add_po(aig::kLitTrue);
  EXPECT_EQ(sweep::sweep_miter(one, p).verdict, Verdict::kNotEquivalent);
}

TEST(ParallelSweep, StressBoardAndBankUnderContention) {
  // tsan target: hammer both shared channels from concurrent publishers
  // that interleave reads of the journal suffixes — the exact access mix
  // of an opportunistic shard loop.
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 256;
  sweep::EquivBoard board(kThreads * kPerThread + 1);
  sweep::SharedCexBank bank(8);
  std::atomic<std::size_t> dup_rejected{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::size_t board_seen = 0, bank_seen = 0;
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const aig::Var node =
            static_cast<aig::Var>(1 + t * kPerThread + i);
        ASSERT_TRUE(board.publish(node, aig::kLitTrue));
        // Every thread also races on a contended node; exactly one wins.
        if (!board.publish(0, aig::kLitFalse))
          dup_rejected.fetch_add(1, std::memory_order_relaxed);
        bank.publish(std::vector<bool>(8, (i & 1) != 0));
        for (const auto& m : board.merges_since(board_seen)) {
          ASSERT_LT(m.first, board.size() + kThreads * kPerThread);
          ++board_seen;
        }
        for (const auto& row : bank.rows_since(bank_seen)) {
          ASSERT_EQ(row.size(), 8u);
          ++bank_seen;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(board.size(), kThreads * kPerThread + 1);
  EXPECT_EQ(dup_rejected.load(), kThreads * kPerThread - 1);
  EXPECT_EQ(bank.size(), kThreads * kPerThread);
  EXPECT_EQ(bank.pack().num_patterns() % 64, 0u);
}

TEST(ParallelSweep, CombinedFlowPublishesShardCounters) {
  // When the combined flow's sweep phase runs sharded, the v2 run report
  // gains the sat_sweeper.{shards,chunks,...} gauges and the per-shard
  // breakdown; sequential runs keep their historical report shape.
  const aig::Aig a = gen::array_multiplier(4);
  const aig::Aig b = gen::wallace_multiplier(4);
  portfolio::CombinedParams p;
  p.engine.enable_po_phase = false;
  p.engine.k_P = 10;
  p.engine.k_p = 4;
  p.engine.k_g = 5;
  p.engine.k_l = 6;
  p.engine.memory_words = 1 << 16;
  // Expire the engine phases so the whole miter reaches the sweep.
  p.engine.phase_time_limit = 1e-9;
  p.sweeper.num_threads = 2;
  p.sweeper.pairs_per_chunk = 4;
  const portfolio::CombinedResult r = portfolio::combined_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kEquivalent);
  EXPECT_GE(r.report.value(obs::metric::kSweeperShards), 1.0);
  EXPECT_GE(r.report.value(obs::metric::kSweeperChunks), 1.0);
  EXPECT_GT(r.report.value(obs::metric::kSweeperBoardMerges), 0.0);
  EXPECT_DOUBLE_EQ(r.report.value(obs::metric::kSweeperParallelFallbacks), 0.0);
  // Every shard gauge (including the per-shard breakdown) is present.
  EXPECT_NE(r.report.find(obs::metric::kSweeperCexShared), nullptr);
  EXPECT_NE(r.report.find(obs::metric::kSweeperPairsSimResolved), nullptr);
  EXPECT_NE(r.report.find(obs::metric::kSweeperSteals), nullptr);
  EXPECT_NE(r.report.find(obs::metric::kSweeperPairsPruned), nullptr);
  EXPECT_NE(r.report.find("sat_sweeper.shard.s0.busy_seconds"), nullptr);
  EXPECT_NE(r.report.find("sat_sweeper.shard.s1.chunks"), nullptr);
}

TEST(ParallelSweep, ConcurrentSweepsShareNothing) {
  // Two full parallel sweeps in flight at once (the portfolio races a
  // pure-SAT arm against the combined arm): private pools and shared
  // state must not interfere.
  const Aig m1 = hard_miter(777, /*equivalent=*/true);
  const Aig m2 = hard_miter(778, /*equivalent=*/false);
  sweep::SweeperParams p;
  p.num_threads = 2;
  p.pairs_per_chunk = 4;
  sweep::SweepResult r1, r2;
  std::thread a([&] { r1 = sweep::sweep_miter(m1, p); });
  std::thread b([&] { r2 = sweep::sweep_miter(m2, p); });
  a.join();
  b.join();
  EXPECT_EQ(r1.verdict, Verdict::kEquivalent);
  EXPECT_EQ(r2.verdict, Verdict::kNotEquivalent);
}

}  // namespace
}  // namespace simsweep
