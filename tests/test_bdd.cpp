/// \file test_bdd.cpp
/// \brief Tests for the ROBDD package and the BDD-based CEC baseline.

#include "bdd/bdd.hpp"
#include "bdd/bdd_cec.hpp"

#include <gtest/gtest.h>

#include "aig/aig_analysis.hpp"
#include "test_util.hpp"
#include "tt/truth_table.hpp"

namespace simsweep::bdd {
namespace {

using Ref = BddManager::Ref;

TEST(Bdd, Terminals) {
  BddManager m(3);
  EXPECT_TRUE(m.is_const(BddManager::kFalse));
  EXPECT_TRUE(m.is_const(BddManager::kTrue));
  EXPECT_EQ(m.negate(BddManager::kFalse), BddManager::kTrue);
  EXPECT_EQ(m.apply_and(BddManager::kTrue, BddManager::kFalse),
            BddManager::kFalse);
}

TEST(Bdd, Canonicity) {
  BddManager m(3);
  const Ref x = m.var(0), y = m.var(1);
  // x & y built twice, and via De Morgan, must be the same node.
  const Ref a1 = m.apply_and(x, y);
  const Ref a2 = m.apply_and(y, x);
  const Ref a3 = m.negate(m.apply_or(m.negate(x), m.negate(y)));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1, a3);
  // Double negation is the identity.
  EXPECT_EQ(m.negate(m.negate(a1)), a1);
}

TEST(Bdd, XorAndIte) {
  BddManager m(2);
  const Ref x = m.var(0), y = m.var(1);
  const Ref xo = m.apply_xor(x, y);
  EXPECT_EQ(xo, m.ite(x, m.negate(y), y));
  EXPECT_EQ(m.apply_xor(xo, xo), BddManager::kFalse);
  EXPECT_EQ(m.apply_xor(xo, BddManager::kTrue), m.negate(xo));
  EXPECT_EQ(m.ite(x, BddManager::kTrue, BddManager::kFalse), x);
}

TEST(Bdd, EvaluateAgainstTruthTable) {
  // Random 4-var functions via random AIGs, compared pointwise.
  const aig::Aig a = testutil::random_aig(4, 30, 2, 110);
  BddManager m(4);
  std::vector<Ref> ref(a.num_nodes(), BddManager::kFalse);
  for (unsigned i = 0; i < 4; ++i) ref[i + 1] = m.var(i);
  for (aig::Var v = 5; v < a.num_nodes(); ++v) {
    auto lr = [&](aig::Lit l) {
      return aig::lit_compl(l) ? m.negate(ref[aig::lit_var(l)])
                               : ref[aig::lit_var(l)];
    };
    ref[v] = m.apply_and(lr(a.fanin0(v)), lr(a.fanin1(v)));
  }
  for (aig::Var v = 1; v < a.num_nodes(); ++v) {
    const tt::TruthTable t = aig::global_truth_table(a, aig::make_lit(v));
    for (unsigned p = 0; p < 16; ++p) {
      std::vector<bool> assignment(4);
      for (unsigned i = 0; i < 4; ++i) assignment[i] = (p >> i) & 1;
      ASSERT_EQ(m.evaluate(ref[v], assignment), t.get_bit(p))
          << "node " << v << " pattern " << p;
    }
  }
}

TEST(Bdd, SatisfyOne) {
  BddManager m(3);
  const Ref f = m.apply_and(m.var(0), m.negate(m.var(2)));
  const auto sat = m.satisfy_one(f);
  ASSERT_TRUE(sat.has_value());
  EXPECT_TRUE((*sat)[0]);
  EXPECT_FALSE((*sat)[2]);
  EXPECT_FALSE(m.satisfy_one(BddManager::kFalse).has_value());
}

TEST(Bdd, SatCount) {
  BddManager m(4);
  EXPECT_DOUBLE_EQ(m.sat_count(BddManager::kTrue), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(BddManager::kFalse), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(0)), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.apply_and(m.var(0), m.var(3))), 4.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.apply_xor(m.var(1), m.var(2))), 8.0);
}

TEST(Bdd, NodeLimitThrows) {
  BddManager m(16, /*node_limit=*/8);
  EXPECT_THROW(
      {
        Ref acc = BddManager::kTrue;
        for (unsigned i = 0; i < 16; ++i)
          acc = m.apply_xor(acc, m.var(i));
      },
      BddOverflow);
}

TEST(BddCec, EquivalentAndInequivalent) {
  const aig::Aig a = testutil::random_aig(6, 60, 4, 111);
  EXPECT_EQ(bdd_check(a, a).verdict, Verdict::kEquivalent);
  const aig::Aig b = testutil::mutate(a, 112);
  const BddCecResult r = bdd_check(a, b);
  ASSERT_NE(r.verdict, Verdict::kUndecided);
  EXPECT_EQ(r.verdict == Verdict::kEquivalent,
            aig::brute_force_equivalent(a, b));
  if (r.verdict == Verdict::kNotEquivalent) {
    ASSERT_TRUE(r.cex.has_value());
    EXPECT_NE(a.evaluate(*r.cex), b.evaluate(*r.cex));
  }
}

TEST(BddCec, NodeLimitYieldsUndecided) {
  const aig::Aig a = testutil::random_aig(14, 600, 4, 113);
  const aig::Aig b = testutil::mutate(a, 114);
  BddCecParams p;
  p.node_limit = 16;
  const BddCecResult r = bdd_check(a, b, p);
  EXPECT_EQ(r.verdict, Verdict::kUndecided);
}

class BddOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddOracle, AgreesWithBruteForce) {
  const aig::Aig a = testutil::random_aig(6, 50, 3, GetParam());
  const aig::Aig b = testutil::mutate(a, GetParam() + 13);
  const BddCecResult r = bdd_check(a, b);
  ASSERT_NE(r.verdict, Verdict::kUndecided);
  EXPECT_EQ(r.verdict == Verdict::kEquivalent,
            aig::brute_force_equivalent(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddOracle,
                         ::testing::Values(120, 121, 122, 123, 124));

}  // namespace
}  // namespace simsweep::bdd
